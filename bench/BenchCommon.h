//===- bench/BenchCommon.h - Shared bench harness helpers -------*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the per-table/per-figure bench binaries: one-line
/// compilation of a Table I benchmark under a strategy, result caching
/// (google-benchmark re-enters the timing loop), and geometric means —
/// the paper reports the geomean as the last bar of Figures 10 and 11.
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_BENCH_BENCHCOMMON_H
#define SGPU_BENCH_BENCHCOMMON_H

#include "benchmarks/Registry.h"
#include "core/Compiler.h"

#include <cmath>
#include <map>
#include <optional>
#include <string>

namespace sgpu {
namespace bench {

/// Default bench-wide compile options: 16 SMs like the paper's grid, the
/// documented reduced ILP budget (DESIGN.md "Known deviations").
inline CompileOptions benchOptions(Strategy S, int Coarsening) {
  CompileOptions O;
  O.Strat = S;
  O.Coarsening = Coarsening;
  O.Sched.Pmax = 16;
  O.Sched.TimeBudgetSeconds = 2.0;
  return O;
}

/// Compiles (and memoizes) one Table I benchmark under a strategy and
/// coarsening factor.
inline const std::optional<CompileReport> &
compiledReport(const std::string &Name, Strategy S, int Coarsening) {
  static std::map<std::string, std::optional<CompileReport>> Cache;
  std::string Key = Name + "/" + strategyName(S) + "/" +
                    std::to_string(Coarsening);
  auto It = Cache.find(Key);
  if (It != Cache.end())
    return It->second;
  const BenchmarkSpec *Spec = findBenchmark(Name);
  std::optional<CompileReport> R;
  if (Spec) {
    StreamGraph G = flatten(*Spec->Build());
    R = compileForGpu(G, benchOptions(S, Coarsening));
  }
  return Cache.emplace(Key, std::move(R)).first->second;
}

/// Geometric mean of a list of positive values.
inline double geomean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double LogSum = 0.0;
  for (double V : Values)
    LogSum += std::log(V);
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

} // namespace bench
} // namespace sgpu

#endif // SGPU_BENCH_BENCHCOMMON_H
