//===- bench/BenchCommon.h - Shared bench harness helpers -------*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the per-table/per-figure bench binaries: one-line
/// compilation of a Table I benchmark under a strategy, result caching
/// (google-benchmark re-enters the timing loop), and geometric means —
/// the paper reports the geomean as the last bar of Figures 10 and 11.
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_BENCH_BENCHCOMMON_H
#define SGPU_BENCH_BENCHCOMMON_H

#include "benchmarks/Registry.h"
#include "core/Compiler.h"

#include <cmath>
#include <map>
#include <optional>
#include <string>

namespace sgpu {
namespace bench {

/// Default bench-wide compile options: 16 SMs like the paper's grid, the
/// documented reduced ILP budget (DESIGN.md "Known deviations").
inline CompileOptions
benchOptions(Strategy S, int Coarsening,
             TimingModelKind Timing = TimingModelKind::Analytic) {
  CompileOptions O;
  O.Strat = S;
  O.Coarsening = Coarsening;
  O.Timing = Timing;
  O.Sched.Pmax = 16;
  O.Sched.TimeBudgetSeconds = 2.0;
  return O;
}

/// Compiles (and memoizes) one Table I benchmark under a strategy,
/// coarsening factor and timing model.
inline const std::optional<CompileReport> &
compiledReport(const std::string &Name, Strategy S, int Coarsening,
               TimingModelKind Timing = TimingModelKind::Analytic) {
  static std::map<std::string, std::optional<CompileReport>> Cache;
  std::string Key = Name + "/" + strategyName(S) + "/" +
                    std::to_string(Coarsening) + "/" +
                    timingModelKindName(Timing);
  auto It = Cache.find(Key);
  if (It != Cache.end())
    return It->second;
  const BenchmarkSpec *Spec = findBenchmark(Name);
  std::optional<CompileReport> R;
  if (Spec) {
    StreamGraph G = flatten(*Spec->Build());
    R = compileForGpu(G, benchOptions(S, Coarsening, Timing));
  }
  return Cache.emplace(Key, std::move(R)).first->second;
}

/// Replays an SWP report's final schedule through the warp-level cycle
/// simulator and returns the simulated cycles of one kernel invocation
/// (0 for Serial reports, which have no SWP schedule). Cheap next to the
/// compile itself, so the benches print analytic and simulated cycles
/// side by side without compiling twice.
inline double cycleSimKernelCycles(const std::string &Name,
                                   const CompileReport &R) {
  if (R.Strat == Strategy::Serial)
    return 0.0;
  const BenchmarkSpec *Spec = findBenchmark(Name);
  if (!Spec)
    return 0.0;
  StreamGraph G = flatten(*Spec->Build());
  GpuArch Arch = GpuArch::geForce8800GTS512();
  std::unique_ptr<TimingModel> Model =
      createTimingModel(TimingModelKind::Cycle, Arch);
  KernelDesc Desc = buildSwpKernelDesc(Arch, G, R.Config, R.Schedule,
                                       R.Layout, R.Coarsening);
  return Model->simulateKernel(Desc).TotalCycles;
}

/// Geometric mean of a list of positive values.
inline double geomean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double LogSum = 0.0;
  for (double V : Values)
    LogSum += std::log(V);
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

} // namespace bench
} // namespace sgpu

#endif // SGPU_BENCH_BENCHCOMMON_H
