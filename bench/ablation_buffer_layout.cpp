//===- bench/ablation_buffer_layout.cpp - Figures 8/9 ablation ----------------===//
//
// Quantifies the buffer-layout contribution (paper Section IV-D, Figures
// 8 and 9): device-memory transactions per element access for the
// Sequential (natural FIFO) layout vs the 128-thread cluster Shuffled
// layout, sweeping pop rate and thread count. Sequential degrades to one
// transaction per lane as soon as the rate exceeds 1; Shuffled stays at
// 1/16 regardless — "oblivious to the push and pop rates".
//
//===----------------------------------------------------------------------===//

#include "layout/AccessAnalyzer.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace sgpu;

static void BM_LayoutTxns(benchmark::State &State) {
  auto Kind = static_cast<LayoutKind>(State.range(0));
  int64_t Threads = State.range(1);
  int64_t Rate = State.range(2);
  AccessSummary S;
  for (auto _ : State) {
    S = analyzeStridedAccess(Kind, Threads, Rate, Rate);
    benchmark::DoNotOptimize(S.Transactions);
  }
  State.counters["txns_per_access"] = S.transactionsPerAccess();
  State.counters["transactions"] = static_cast<double>(S.Transactions);
}

int main(int argc, char **argv) {
  std::printf("Buffer layout ablation: transactions per element access\n");
  std::printf("%8s %6s %12s %12s %8s\n", "threads", "rate", "sequential",
              "shuffled", "ratio");
  for (int64_t Threads : {128, 256, 512}) {
    for (int64_t Rate : {1, 2, 4, 8, 64}) {
      double Seq = analyzeStridedAccess(LayoutKind::Sequential, Threads,
                                        Rate, Rate)
                       .transactionsPerAccess();
      double Shuf = analyzeStridedAccess(LayoutKind::Shuffled, Threads,
                                         Rate, Rate)
                        .transactionsPerAccess();
      std::printf("%8lld %6lld %12.4f %12.4f %8.1fx\n",
                  static_cast<long long>(Threads),
                  static_cast<long long>(Rate), Seq, Shuf, Seq / Shuf);
    }
  }
  std::printf("\n");

  for (int64_t Kind : {0, 1})
    for (int64_t Threads : {128, 512})
      for (int64_t Rate : {1, 4, 64})
        benchmark::RegisterBenchmark(
            Kind == 0 ? "Layout/Sequential" : "Layout/Shuffled",
            BM_LayoutTxns)
            ->Args({Kind, Threads, Rate});
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
