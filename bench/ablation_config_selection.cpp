//===- bench/ablation_config_selection.cpp - Algorithm 7 ablation -------------===//
//
// Measures what the profile-driven execution-configuration selection
// (paper Fig. 6 + Alg. 7) buys over fixing every filter at one
// configuration: per benchmark, the work-scaled resource II of the
// Alg. 7 winner against the fixed (regs=32, threads=256) and
// (regs=16, threads=512) configurations.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "profile/Profiler.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace sgpu;
using namespace sgpu::bench;

namespace {

const GpuArch Arch = GpuArch::geForce8800GTS512();

/// Work-scaled resource II of a configuration (lower is better).
double scaledIIOf(const SteadyState &SS, const ExecutionConfig &C) {
  GpuSteadyState GSS = computeGpuSteadyState(SS.repetitions(), C.Threads);
  double II = 0.0;
  for (size_t V = 0; V < C.Delay.size(); ++V)
    II += C.Delay[V] * static_cast<double>(GSS.Instances[V]);
  double Work = static_cast<double>(
      std::max<int64_t>(1, SS.outputTokensPerIteration()) *
      GSS.Multiplier);
  return II / Work;
}

struct Row {
  double Alg7 = 0.0, Fixed256 = 0.0, Fixed512 = 0.0;
};

Row evaluate(const BenchmarkSpec &Spec) {
  Row R;
  StreamGraph G = flatten(*Spec.Build());
  auto SS = SteadyState::compute(G);
  if (!SS)
    return R;
  ProfileTable PT = profileGraph(Arch, G, LayoutKind::Shuffled);
  if (auto C = selectExecutionConfig(*SS, PT))
    R.Alg7 = scaledIIOf(*SS, *C);
  if (auto C = makeFixedConfig(*SS, PT, 32, 256))
    R.Fixed256 = scaledIIOf(*SS, *C);
  if (auto C = makeFixedConfig(*SS, PT, 16, 512))
    R.Fixed512 = scaledIIOf(*SS, *C);
  return R;
}

void BM_ConfigSelection(benchmark::State &State,
                        const BenchmarkSpec *Spec) {
  Row R;
  for (auto _ : State) {
    R = evaluate(*Spec);
    benchmark::DoNotOptimize(R.Alg7);
  }
  State.counters["alg7_II"] = R.Alg7;
  State.counters["fixed256_II"] = R.Fixed256;
  State.counters["fixed512_II"] = R.Fixed512;
}

} // namespace

int main(int argc, char **argv) {
  std::printf("Execution-configuration selection ablation "
              "(work-scaled II, lower is better)\n");
  std::printf("%-12s %12s %14s %14s\n", "Benchmark", "Alg7",
              "Fixed(32,256)", "Fixed(16,512)");
  for (const BenchmarkSpec &Spec : allBenchmarks()) {
    Row R = evaluate(Spec);
    std::printf("%-12s %12.4f %14.4f %14.4f\n", Spec.Name.c_str(), R.Alg7,
                R.Fixed256, R.Fixed512);
    benchmark::RegisterBenchmark(("ConfigSel/" + Spec.Name).c_str(),
                                 BM_ConfigSelection, &Spec)
        ->Iterations(1);
  }
  std::printf("\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
