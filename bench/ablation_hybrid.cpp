//===- bench/ablation_hybrid.cpp - Hybrid vs GPU-only machine ------------------===//
//
// Beyond the paper: the same SWP formulation scheduled onto the
// heterogeneous CPU+GPU machine (`--machine=hybrid`) against the
// paper's homogeneous SM array. The hybrid machine helps exactly where
// the GPU model hurts: peek-heavy filters whose sliding windows
// serialize on the G80 coalescer become cheap on a cache-backed host
// core, so pulling them off the SM array shortens the critical II.
// Results land in BENCH_hybrid.json (the CI artifact).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Json.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <vector>

using namespace sgpu;
using namespace sgpu::bench;

namespace {

struct Cell {
  std::string Name;
  bool PeekHeavy = false;
  std::optional<CompileReport> Gpu;
  std::optional<CompileReport> Hybrid;

  bool improved() const {
    return Gpu && Hybrid &&
           Hybrid->SchedStats.FinalII < Gpu->SchedStats.FinalII;
  }
};

std::optional<CompileReport> compileMachine(const BenchmarkSpec &Spec,
                                            MachineMode Machine) {
  StreamGraph G = flatten(*Spec.Build());
  CompileOptions Options = benchOptions(Strategy::Swp, 8);
  Options.Machine = Machine;
  return compileForGpu(G, Options);
}

void BM_Hybrid(benchmark::State &State, const BenchmarkSpec *Spec,
               MachineMode Machine) {
  double II = 0.0;
  for (auto _ : State) {
    auto R = compileMachine(*Spec, Machine);
    II = R ? R->SchedStats.FinalII : 0.0;
    benchmark::DoNotOptimize(II);
  }
  State.counters["final_ii"] = II;
}

} // namespace

int main(int argc, char **argv) {
  std::printf("Hybrid machine ablation: SWP II, GPU-only vs CPU+GPU\n");
  std::printf("%-12s %12s %12s %8s %6s %10s\n", "Benchmark", "gpu II",
              "hybrid II", "ratio", "host", "coarsening");

  std::vector<Cell> Cells;
  for (const BenchmarkSpec &Spec : allBenchmarks()) {
    Cell C;
    C.Name = Spec.Name;
    // The paper's two peek-heavy programs: sliding-window FIR chains.
    C.PeekHeavy = Spec.Name == "Filterbank" || Spec.Name == "FMRadio";
    C.Gpu = compileMachine(Spec, MachineMode::Gpu);
    C.Hybrid = compileMachine(Spec, MachineMode::Hybrid);
    if (C.Gpu && C.Hybrid)
      std::printf("%-12s %12.1f %12.1f %8.2f %6d %10d\n",
                  C.Name.c_str(), C.Gpu->SchedStats.FinalII,
                  C.Hybrid->SchedStats.FinalII,
                  C.Hybrid->SchedStats.FinalII /
                      C.Gpu->SchedStats.FinalII,
                  C.Hybrid->CpuResidentInstances, C.Hybrid->Coarsening);
    else
      std::printf("%-12s %12s\n", C.Name.c_str(), "FAILED");
    Cells.push_back(std::move(C));
  }

  int ImprovedPeekHeavy = 0;
  for (const Cell &C : Cells)
    if (C.PeekHeavy && C.improved())
      ++ImprovedPeekHeavy;
  std::printf("\npeek-heavy benchmarks with strictly better hybrid II: "
              "%d\n\n",
              ImprovedPeekHeavy);

  JsonWriter J;
  J.beginObject();
  J.writeString("bench", "ablation_hybrid");
  J.writeInt("peek_heavy_improved", ImprovedPeekHeavy);
  J.beginArray("benchmarks");
  for (const Cell &C : Cells) {
    J.beginObject();
    J.writeString("name", C.Name);
    J.writeBool("peek_heavy", C.PeekHeavy);
    J.writeBool("ok", C.Gpu.has_value() && C.Hybrid.has_value());
    if (C.Gpu && C.Hybrid) {
      J.beginObject("gpu");
      J.writeDouble("final_ii", C.Gpu->SchedStats.FinalII);
      J.writeDouble("mii", C.Gpu->SchedStats.MII);
      J.writeDouble("kernel_cycles", C.Gpu->KernelSim.TotalCycles);
      J.writeDouble("speedup", C.Gpu->Speedup);
      J.writeInt("coarsening", C.Gpu->Coarsening);
      J.endObject();
      J.beginObject("hybrid");
      J.writeDouble("final_ii", C.Hybrid->SchedStats.FinalII);
      J.writeDouble("mii", C.Hybrid->SchedStats.MII);
      J.writeDouble("kernel_cycles", C.Hybrid->KernelSim.TotalCycles);
      J.writeDouble("speedup", C.Hybrid->Speedup);
      J.writeInt("coarsening", C.Hybrid->Coarsening);
      J.writeInt("cpu_resident_instances",
                 C.Hybrid->CpuResidentInstances);
      J.endObject();
      J.writeDouble("ii_ratio", C.Hybrid->SchedStats.FinalII /
                                    C.Gpu->SchedStats.FinalII);
      J.writeBool("hybrid_improves_ii", C.improved());
    }
    J.endObject();
  }
  J.endArray();
  J.endObject();
  std::ofstream Out("BENCH_hybrid.json");
  Out << J.str() << "\n";
  std::printf("wrote BENCH_hybrid.json\n\n");

  for (const BenchmarkSpec &Spec : allBenchmarks()) {
    benchmark::RegisterBenchmark(("Hybrid/" + Spec.Name + "/gpu").c_str(),
                                 BM_Hybrid, &Spec, MachineMode::Gpu)
        ->Iterations(1);
    benchmark::RegisterBenchmark(
        ("Hybrid/" + Spec.Name + "/hybrid").c_str(), BM_Hybrid, &Spec,
        MachineMode::Hybrid)
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
