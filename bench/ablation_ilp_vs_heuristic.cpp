//===- bench/ablation_ilp_vs_heuristic.cpp - Scheduler ablation ----------------===//
//
// Compares the exact ILP path (our branch & bound over the paper's
// Section III formulation) against the LPT + modulo-scheduling heuristic
// on synthetic pipelines and split-joins small enough for the exact
// solver: achieved II (relative to MII) and solve effort. This ablation
// justifies the heuristic-incumbent design recorded in DESIGN.md.
//
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"
#include "ir/FilterBuilder.h"
#include "profile/ConfigSelection.h"
#include "profile/Profiler.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace sgpu;

namespace {

const GpuArch Arch = GpuArch::geForce8800GTS512();

/// A pipeline of Stages scale filters with mildly unbalanced work.
StreamGraph makePipeline(int Stages) {
  std::vector<StreamPtr> Parts;
  for (int I = 0; I < Stages; ++I) {
    FilterBuilder B("P" + std::to_string(I), TokenType::Float,
                    TokenType::Float);
    B.setRates(1, 1);
    const Expr *V = B.pop();
    for (int J = 0; J <= I % 3; ++J)
      V = B.add(B.mul(V, B.litF(1.0 + J)), B.litF(0.5));
    B.push(V);
    Parts.push_back(filterStream(B.build()));
  }
  return flatten(*pipelineStream(std::move(Parts)));
}

struct Outcome {
  double IIRatio = 0.0; ///< FinalII / MII.
  double Seconds = 0.0;
  int Nodes = 0;
  bool Ok = false;
};

Outcome schedule(const StreamGraph &G, bool UseIlp) {
  Outcome Out;
  auto SS = SteadyState::compute(G);
  if (!SS)
    return Out;
  ProfileTable PT = profileGraph(Arch, G, LayoutKind::Shuffled);
  auto Config = selectExecutionConfig(*SS, PT);
  if (!Config)
    return Out;
  GpuSteadyState GSS =
      computeGpuSteadyState(SS->repetitions(), Config->Threads);
  SchedulerOptions SO;
  SO.Pmax = 4;
  SO.UseIlp = UseIlp;
  SO.IlpEvenIfHeuristicSucceeds = UseIlp;
  SO.TimeBudgetSeconds = 2.0;
  auto R = scheduleSwp(G, *SS, *Config, GSS, SO);
  if (!R)
    return Out;
  Out.IIRatio = R->FinalII / R->MII;
  Out.Seconds = R->SolverSeconds;
  Out.Nodes = R->SolverNodes;
  Out.Ok = true;
  return Out;
}

void BM_Sched(benchmark::State &State, int Stages, bool UseIlp) {
  StreamGraph G = makePipeline(Stages);
  Outcome Out;
  for (auto _ : State) {
    Out = schedule(G, UseIlp);
    benchmark::DoNotOptimize(Out.IIRatio);
  }
  State.counters["II_over_MII"] = Out.IIRatio;
  State.counters["bnb_nodes"] = Out.Nodes;
}

} // namespace

int main(int argc, char **argv) {
  std::printf("Scheduler ablation: exact ILP vs LPT heuristic "
              "(II / MII, 1.00 is optimal)\n");
  std::printf("%8s %12s %12s %12s\n", "stages", "heuristic", "ilp",
              "bnb_nodes");
  for (int Stages : {4, 6, 8, 10}) {
    StreamGraph G1 = makePipeline(Stages);
    Outcome H = schedule(G1, false);
    StreamGraph G2 = makePipeline(Stages);
    Outcome I = schedule(G2, true);
    std::printf("%8d %12.3f %12.3f %12d\n", Stages,
                H.Ok ? H.IIRatio : -1.0, I.Ok ? I.IIRatio : -1.0,
                I.Nodes);
    benchmark::RegisterBenchmark(
        ("Sched/heuristic/" + std::to_string(Stages)).c_str(), BM_Sched,
        Stages, false)
        ->Iterations(1);
    benchmark::RegisterBenchmark(
        ("Sched/ilp/" + std::to_string(Stages)).c_str(), BM_Sched, Stages,
        true)
        ->Iterations(1);
  }
  std::printf("\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
