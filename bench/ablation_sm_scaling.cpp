//===- bench/ablation_sm_scaling.cpp - SM-count sensitivity --------------------===//
//
// Beyond the paper's figures: how the SWP8 speedup scales with the number
// of SMs targeted (the paper fixes 16 blocks for its 16 SMs). Pipeline
// parallelism should scale until either the benchmark runs out of
// schedulable instances per II or the memory bus saturates — the same
// ceilings that make SWPNC collapse.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace sgpu;
using namespace sgpu::bench;

namespace {

double speedupAtSms(const BenchmarkSpec &Spec, int Sms) {
  StreamGraph G = flatten(*Spec.Build());
  CompileOptions Options = benchOptions(Strategy::Swp, 8);
  Options.Sched.Pmax = Sms;
  std::optional<CompileReport> R = compileForGpu(G, Options);
  return R ? R->Speedup : 0.0;
}

void BM_SmScaling(benchmark::State &State, const BenchmarkSpec *Spec,
                  int Sms) {
  double S = 0.0;
  for (auto _ : State) {
    S = speedupAtSms(*Spec, Sms);
    benchmark::DoNotOptimize(S);
  }
  State.counters["speedup"] = S;
}

} // namespace

int main(int argc, char **argv) {
  std::printf("SM scaling ablation: SWP8 speedup vs SMs targeted\n");
  std::printf("%-12s %8s %8s %8s %8s\n", "Benchmark", "2", "4", "8",
              "16");
  const int SmCounts[] = {2, 4, 8, 16};
  for (const BenchmarkSpec &Spec : allBenchmarks()) {
    std::printf("%-12s", Spec.Name.c_str());
    for (int Sms : SmCounts) {
      std::printf(" %8.2f", speedupAtSms(Spec, Sms));
      benchmark::RegisterBenchmark(
          ("SmScaling/" + Spec.Name + "/" + std::to_string(Sms)).c_str(),
          BM_SmScaling, &Spec, Sms)
          ->Iterations(1);
    }
    std::printf("\n");
  }
  std::printf("\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
