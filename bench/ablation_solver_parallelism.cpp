//===- bench/ablation_solver_parallelism.cpp - Engine scaling sweep -----------===//
//
// Sweeps the parallel scheduling engine over 1/2/4/8 workers: every
// Table I benchmark is compiled end-to-end (profiling sweep, speculative
// II window, parallel branch & bound) at each worker count, and a
// synthetic optimization MILP exercises the shared-incumbent branch &
// bound queue directly. Two invariants are checked and recorded:
//
//   * the committed FinalII of every benchmark is identical at every
//     worker count (the speculative window preserves "first feasible II
//     wins"), and
//   * the parallel B&B returns the same objective as the single-threaded
//     search on the synthetic optimization model.
//
// Results land in BENCH_solver.json next to the working directory so the
// compile-path speedup of >= 2 workers vs. 1 is recorded with the repo.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "ilp/BranchAndBound.h"
#include "support/Json.h"
#include "support/Metrics.h"
#include "support/ThreadPool.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

using namespace sgpu;
using namespace sgpu::bench;

namespace {

using Clock = std::chrono::steady_clock;

struct CompileCell {
  std::string Name;
  double Seconds = 0.0;
  double FinalII = 0.0;
  int BnbNodes = 0;
  long long LpSolves = 0;
  long long Pivots = 0;
  bool Ok = false;
};

CompileCell compileOnce(const BenchmarkSpec &Spec, int Workers) {
  CompileCell Cell;
  Cell.Name = Spec.Name;
  StreamGraph G = flatten(*Spec.Build());
  CompileOptions O = benchOptions(Strategy::Swp, 8);
  O.Sched.NumWorkers = Workers;
  // Deterministic effort budgets (mirroring the perf gate): a scaling
  // sweep must give every worker count the exact same work, and a
  // wall-clock cut would make the searched tree depend on machine load.
  O.Sched.TimeBudgetSeconds = 300.0;
  O.Sched.MaxIlpNodes = 400;
  O.Sched.MaxLpIterations = 2000;
  // Engine-effort counters come from the pipeline metrics registry,
  // reset around the compile: they count all work the engine performed
  // (including speculative II-window candidates), not the report's
  // serial-loop-equivalent charge.
  MetricsRegistry &Reg = MetricsRegistry::global();
  Reg.reset();
  auto T0 = Clock::now();
  std::optional<CompileReport> R = compileForGpu(G, O);
  Cell.Seconds = std::chrono::duration<double>(Clock::now() - T0).count();
  if (!R)
    return Cell;
  Cell.FinalII = R->SchedStats.FinalII;
  MetricsRegistry::Snapshot Snap = Reg.snapshot();
  Cell.BnbNodes = static_cast<int>(Snap.Counters["bnb.nodes_solved"]);
  Cell.LpSolves = Snap.Counters["simplex.lp_solves"];
  Cell.Pivots = Snap.Counters["simplex.pivots"];
  Cell.Ok = true;
  return Cell;
}

/// A small but nontrivial optimization MILP (weighted set packing) that
/// forces the branch & bound to search rather than stop at the first
/// feasible point — the shape that exposes the shared-incumbent queue.
LinearProgram makeSearchMilp(int Items) {
  LinearProgram LP;
  std::vector<LinTerm> Obj;
  std::vector<int> Vars(Items);
  for (int I = 0; I < Items; ++I) {
    Vars[I] = LP.addBinaryVar("x" + std::to_string(I));
    Obj.push_back({Vars[I], -double(37 + (I * 29) % 61)});
  }
  for (int I = 0; I + 2 < Items; I += 2)
    LP.addConstraint(
        {{Vars[I], 1}, {Vars[I + 1], 1}, {Vars[I + 2], 1}}, RowSense::LE,
        2);
  std::vector<LinTerm> Budget;
  for (int I = 0; I < Items; ++I)
    Budget.push_back({Vars[I], double(5 + (I * 13) % 23)});
  LP.addConstraint(Budget, RowSense::LE, 6.0 * Items);
  LP.setObjective(std::move(Obj));
  return LP;
}

struct MilpCell {
  double Seconds = 0.0;
  double Objective = 0.0;
  int Nodes = 0;
  long long Steals = 0;
  double Utilization = 0.0;
};

MilpCell solveSearchMilp(int Workers) {
  MilpOptions MO;
  MO.StopAtFirstFeasible = false;
  MO.TimeBudgetSeconds = 60.0;
  MO.NumWorkers = Workers;
  MilpCell Cell;
  MetricsRegistry &Reg = MetricsRegistry::global();
  Reg.reset();
  auto T0 = Clock::now();
  MilpResult R = solveMilp(makeSearchMilp(26), MO);
  Cell.Seconds = std::chrono::duration<double>(Clock::now() - T0).count();
  Cell.Objective = R.Objective;
  MetricsRegistry::Snapshot Snap = Reg.snapshot();
  Cell.Nodes = static_cast<int>(Snap.Counters["bnb.nodes_solved"]);
  Cell.Steals = R.Steals;
  // Busy time over summed per-worker drain-loop spans: idle waiting for
  // work to appear (or be stolen) is charged to the idle worker, so one
  // worker reads 1.0 and any dip below it is real contention.
  Cell.Utilization =
      R.WorkerSeconds > 0 ? R.BusySeconds / R.WorkerSeconds : 0.0;
  return Cell;
}

void BM_CompileAll(benchmark::State &State, int Workers) {
  for (auto _ : State)
    for (const BenchmarkSpec &Spec : allBenchmarks())
      benchmark::DoNotOptimize(compileOnce(Spec, Workers).Seconds);
}

std::vector<std::string> splitList(const char *Csv) {
  std::vector<std::string> Out;
  std::stringstream In(Csv);
  std::string Item;
  while (std::getline(In, Item, ','))
    if (!Item.empty())
      Out.push_back(Item);
  return Out;
}

} // namespace

int main(int argc, char **argv) {
  // Default sweep: 1..4 workers plus one deliberately oversubscribed
  // point. --workers/--benchmarks narrow the sweep (CI runs just
  // Bitonic+DES at 1 and 4).
  std::vector<int> WorkerCounts = {1, 2, 4, 8};
  std::vector<std::string> OnlyBenchmarks;
  for (int I = 1; I < argc; ++I) {
    if (std::strncmp(argv[I], "--workers=", 10) == 0) {
      WorkerCounts.clear();
      for (const std::string &S : splitList(argv[I] + 10))
        if (int W = std::atoi(S.c_str()); W >= 1)
          WorkerCounts.push_back(W);
      if (WorkerCounts.empty()) {
        std::fprintf(stderr, "error: --workers needs a list like 1,2,4\n");
        return 2;
      }
    } else if (std::strncmp(argv[I], "--benchmarks=", 13) == 0) {
      OnlyBenchmarks = splitList(argv[I] + 13);
    }
  }
  auto Wanted = [&](const BenchmarkSpec &Spec) {
    if (OnlyBenchmarks.empty())
      return true;
    for (const std::string &N : OnlyBenchmarks)
      if (N == Spec.Name)
        return true;
    return false;
  };

  // Record the machine truthfully: hardware_concurrency is what the
  // silicon offers (not the SGPU_JOBS-resolved worker default), and any
  // sweep wider than it is flagged as oversubscribed in the JSON so its
  // timings are read as a contention experiment, not a scaling claim.
  int Hardware = static_cast<int>(std::thread::hardware_concurrency());
  if (Hardware <= 0)
    Hardware = 1;
  std::printf("Scheduling-engine parallelism ablation "
              "(hardware_concurrency = %d, default engine workers = %d)\n\n",
              Hardware, resolveWorkerCount(0));

  struct Sweep {
    int Workers;
    double TotalSeconds = 0.0;
    std::vector<CompileCell> Cells;
    MilpCell Milp;
  };
  std::vector<Sweep> Sweeps;
  bool Deterministic = true;

  std::printf("%8s %14s %14s %12s %14s %10s %10s\n", "workers", "compile_s",
              "speedup_vs_1", "bnb_obj", "bnb_s", "bnb_util", "steals");
  for (int W : WorkerCounts) {
    Sweep S;
    S.Workers = W;
    for (const BenchmarkSpec &Spec : allBenchmarks()) {
      if (!Wanted(Spec))
        continue;
      CompileCell Cell = compileOnce(Spec, W);
      S.TotalSeconds += Cell.Seconds;
      S.Cells.push_back(std::move(Cell));
    }
    S.Milp = solveSearchMilp(W);
    Sweeps.push_back(std::move(S));

    const Sweep &Base = Sweeps.front();
    const Sweep &Cur = Sweeps.back();
    for (size_t I = 0; I < Cur.Cells.size(); ++I)
      if (Cur.Cells[I].Ok != Base.Cells[I].Ok ||
          std::fabs(Cur.Cells[I].FinalII - Base.Cells[I].FinalII) > 1e-9)
        Deterministic = false;
    if (std::fabs(Cur.Milp.Objective - Base.Milp.Objective) > 1e-6)
      Deterministic = false;
    std::printf("%8d %14.3f %14.2f %12.1f %14.3f %10.2f %10lld\n", W,
                Cur.TotalSeconds, Base.TotalSeconds / Cur.TotalSeconds,
                Cur.Milp.Objective, Cur.Milp.Seconds, Cur.Milp.Utilization,
                Cur.Milp.Steals);
  }
  std::printf("\nFinalII and B&B objective identical across worker "
              "counts: %s\n\n",
              Deterministic ? "yes" : "NO (regression!)");

  JsonWriter J;
  J.beginObject();
  J.writeInt("hardware_concurrency", Hardware);
  J.writeInt("default_engine_workers", resolveWorkerCount(0));
  J.writeBool("deterministic_across_workers", Deterministic);
  J.beginArray("sweeps");
  for (const Sweep &S : Sweeps) {
    J.beginObject();
    J.writeInt("workers", S.Workers);
    J.writeBool("oversubscribed", S.Workers > Hardware);
    J.writeDouble("compile_total_seconds", S.TotalSeconds);
    J.writeDouble("compile_speedup_vs_1",
                  Sweeps.front().TotalSeconds / S.TotalSeconds);
    J.beginObject("bnb_search_milp");
    J.writeDouble("seconds", S.Milp.Seconds);
    J.writeDouble("objective", S.Milp.Objective);
    J.writeInt("nodes", S.Milp.Nodes);
    J.writeInt("steals", S.Milp.Steals);
    J.writeDouble("worker_utilization", S.Milp.Utilization);
    J.endObject();
    J.beginArray("benchmarks");
    for (const CompileCell &C : S.Cells) {
      J.beginObject();
      J.writeString("name", C.Name);
      J.writeDouble("seconds", C.Seconds);
      J.writeDouble("final_ii", C.FinalII);
      J.writeInt("bnb_nodes", C.BnbNodes);
      J.writeInt("lp_solves", C.LpSolves);
      J.writeInt("pivots", C.Pivots);
      J.writeBool("ok", C.Ok);
      J.endObject();
    }
    J.endArray();
    J.endObject();
  }
  J.endArray();
  J.endObject();
  std::ofstream Out("BENCH_solver.json");
  Out << J.str() << "\n";
  std::printf("wrote BENCH_solver.json\n\n");

  for (int W : WorkerCounts)
    benchmark::RegisterBenchmark(
        ("CompileAll/workers:" + std::to_string(W)).c_str(), BM_CompileAll,
        W)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  // Hide the sweep's own flags from google-benchmark, which rejects
  // flags it does not know.
  std::vector<char *> BenchArgv;
  for (int I = 0; I < argc; ++I)
    if (I == 0 || (std::strncmp(argv[I], "--workers=", 10) != 0 &&
                   std::strncmp(argv[I], "--benchmarks=", 13) != 0))
      BenchArgv.push_back(argv[I]);
  int BenchArgc = static_cast<int>(BenchArgv.size());
  benchmark::Initialize(&BenchArgc, BenchArgv.data());
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
