//===- bench/cyclesim_validation.cpp - Cycle sim vs analytic model ------------===//
//
// Cross-validates the warp-level cycle simulator against the analytic
// timing model on the eight Table I benchmarks: per benchmark, the
// analytic and simulated cycles of one SWP8 kernel invocation, their
// ratio, the simulator's wall time and a bit-determinism check (two
// back-to-back runs must agree exactly). Writes the results to
// BENCH_cyclesim.json (override with --out=FILE) in addition to the
// printed table and the registered google benchmarks.
//
// With --bands=FILE (a JSON file of per-benchmark ratio bands, see
// bench/cyclesim_bands.json) the run becomes the CI timing-fidelity
// gate: every benchmark must compile, be bit-deterministic, have a band,
// and land its analytic/cycle ratio inside it — otherwise exit 1.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Json.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

using namespace sgpu;
using namespace sgpu::bench;

namespace {

struct ValidationRow {
  std::string Name;
  bool Ok = false;
  double AnalyticCycles = 0.0;
  double SimCycles = 0.0;
  double SimWallSeconds = 0.0;
  double Transactions = 0.0;
  double StallFraction = 0.0;
  bool Deterministic = false;
};

ValidationRow validate(const BenchmarkSpec &Spec) {
  ValidationRow Row;
  Row.Name = Spec.Name;
  const std::optional<CompileReport> &R =
      compiledReport(Spec.Name, Strategy::Swp, 8);
  if (!R)
    return Row;

  StreamGraph G = flatten(*Spec.Build());
  GpuArch Arch = GpuArch::geForce8800GTS512();
  std::unique_ptr<TimingModel> Model =
      createTimingModel(TimingModelKind::Cycle, Arch);
  KernelDesc Desc = buildSwpKernelDesc(Arch, G, R->Config, R->Schedule,
                                       R->Layout, R->Coarsening);

  auto T0 = std::chrono::steady_clock::now();
  KernelSimResult Sim = Model->simulateKernel(Desc);
  auto T1 = std::chrono::steady_clock::now();
  KernelSimResult Again = Model->simulateKernel(Desc);

  Row.Ok = true;
  Row.AnalyticCycles = R->KernelSim.TotalCycles;
  Row.SimCycles = Sim.TotalCycles;
  Row.SimWallSeconds =
      std::chrono::duration<double>(T1 - T0).count();
  Row.Transactions = Sim.Transactions;
  double Busy = 0.0, Stall = 0.0;
  for (const SmBreakdown &B : Sim.PerSm) {
    Busy += B.BusyCycles;
    Stall += B.StallCycles;
  }
  Row.StallFraction =
      Busy + Stall > 0.0 ? Stall / (Busy + Stall) : 0.0;
  Row.Deterministic = Sim.TotalCycles == Again.TotalCycles &&
                      Sim.Transactions == Again.Transactions &&
                      Sim.FillCycles == Again.FillCycles;
  return Row;
}

void BM_CycleSim(benchmark::State &State, const BenchmarkSpec *Spec) {
  const std::optional<CompileReport> &R =
      compiledReport(Spec->Name, Strategy::Swp, 8);
  if (!R) {
    State.SkipWithError("compile failed");
    return;
  }
  StreamGraph G = flatten(*Spec->Build());
  GpuArch Arch = GpuArch::geForce8800GTS512();
  std::unique_ptr<TimingModel> Model =
      createTimingModel(TimingModelKind::Cycle, Arch);
  KernelDesc Desc = buildSwpKernelDesc(Arch, G, R->Config, R->Schedule,
                                       R->Layout, R->Coarsening);
  for (auto _ : State)
    benchmark::DoNotOptimize(Model->simulateKernel(Desc).TotalCycles);
}

/// Gates the rows against the per-benchmark ratio bands of \p BandsPath.
/// Returns false (after printing every violation) when any benchmark
/// failed to compile, was non-deterministic, has no band, or has a
/// cycle/analytic ratio outside its [min, max].
bool gateAgainstBands(const std::vector<ValidationRow> &Rows,
                      const std::string &BandsPath) {
  std::ifstream In(BandsPath, std::ios::binary);
  if (!In) {
    std::fprintf(stderr, "error: cannot open bands file '%s'\n",
                 BandsPath.c_str());
    return false;
  }
  std::string Text((std::istreambuf_iterator<char>(In)),
                   std::istreambuf_iterator<char>());
  std::string Err;
  std::optional<JsonValue> Doc = JsonValue::parse(Text, &Err);
  const JsonValue *Bands = Doc ? Doc->find("bands") : nullptr;
  if (!Bands || !Bands->isArray()) {
    std::fprintf(stderr, "error: malformed bands file '%s': %s\n",
                 BandsPath.c_str(), Err.empty() ? "no 'bands' array"
                                                : Err.c_str());
    return false;
  }

  bool Ok = true;
  std::printf("Timing-fidelity gate (%s):\n", BandsPath.c_str());
  for (const ValidationRow &Row : Rows) {
    if (!Row.Ok) {
      std::printf("  FAIL %-12s compile failed\n", Row.Name.c_str());
      Ok = false;
      continue;
    }
    if (!Row.Deterministic) {
      std::printf("  FAIL %-12s not bit-deterministic\n", Row.Name.c_str());
      Ok = false;
      continue;
    }
    const JsonValue *Band = nullptr;
    for (const JsonValue &B : Bands->elements()) {
      const JsonValue *Name = B.find("name");
      if (Name && Name->isString() && Name->asString() == Row.Name) {
        Band = &B;
        break;
      }
    }
    if (!Band) {
      std::printf("  FAIL %-12s no band in %s\n", Row.Name.c_str(),
                  BandsPath.c_str());
      Ok = false;
      continue;
    }
    const JsonValue *Min = Band->find("min");
    const JsonValue *Max = Band->find("max");
    if (!Min || !Max || !Min->isNumber() || !Max->isNumber()) {
      std::printf("  FAIL %-12s malformed band\n", Row.Name.c_str());
      Ok = false;
      continue;
    }
    double Ratio =
        Row.AnalyticCycles > 0.0 ? Row.SimCycles / Row.AnalyticCycles : 0.0;
    if (Ratio < Min->asNumber() || Ratio > Max->asNumber()) {
      std::printf("  FAIL %-12s ratio %.3f outside [%.3f, %.3f]\n",
                  Row.Name.c_str(), Ratio, Min->asNumber(),
                  Max->asNumber());
      Ok = false;
      continue;
    }
    std::printf("  ok   %-12s ratio %.3f in [%.3f, %.3f]\n",
                Row.Name.c_str(), Ratio, Min->asNumber(), Max->asNumber());
  }
  return Ok;
}

} // namespace

int main(int argc, char **argv) {
  std::string OutPath = "BENCH_cyclesim.json";
  std::string BandsPath;
  for (int I = 1; I < argc; ++I) {
    if (std::strncmp(argv[I], "--out=", 6) == 0)
      OutPath = argv[I] + 6;
    else if (std::strncmp(argv[I], "--bands=", 8) == 0)
      BandsPath = argv[I] + 8;
  }

  std::printf("Cycle simulator validation (SWP8 schedules; cycles per "
              "kernel invocation)\n");
  std::printf("%-12s %12s %12s %7s %10s %7s %6s\n", "Benchmark",
              "Analytic", "CycleSim", "Ratio", "SimWall(s)", "Stall%%",
              "Det");
  std::vector<ValidationRow> Rows;
  for (const BenchmarkSpec &Spec : allBenchmarks()) {
    ValidationRow Row = validate(Spec);
    if (Row.Ok)
      std::printf("%-12s %12.0f %12.0f %7.2f %10.4f %6.1f%% %6s\n",
                  Row.Name.c_str(), Row.AnalyticCycles, Row.SimCycles,
                  Row.AnalyticCycles > 0.0
                      ? Row.SimCycles / Row.AnalyticCycles
                      : 0.0,
                  Row.SimWallSeconds, 100.0 * Row.StallFraction,
                  Row.Deterministic ? "yes" : "NO");
    else
      std::printf("%-12s  compile failed\n", Row.Name.c_str());
    Rows.push_back(std::move(Row));
    benchmark::RegisterBenchmark(("CycleSim/" + Spec.Name).c_str(),
                                 BM_CycleSim, &Spec);
  }
  std::printf("\n");

  JsonWriter W;
  W.beginObject();
  W.beginArray("benchmarks");
  for (const ValidationRow &Row : Rows) {
    W.beginObject();
    W.writeString("name", Row.Name);
    W.writeBool("ok", Row.Ok);
    W.writeDouble("analytic_cycles", Row.AnalyticCycles);
    W.writeDouble("cycle_sim_cycles", Row.SimCycles);
    W.writeDouble("ratio", Row.AnalyticCycles > 0.0
                               ? Row.SimCycles / Row.AnalyticCycles
                               : 0.0);
    W.writeDouble("sim_wall_seconds", Row.SimWallSeconds);
    W.writeDouble("transactions", Row.Transactions);
    W.writeDouble("stall_fraction", Row.StallFraction);
    W.writeBool("deterministic", Row.Deterministic);
    W.endObject();
  }
  W.endArray();
  W.endObject();
  std::ofstream Out(OutPath, std::ios::binary);
  if (Out)
    Out << W.str() << "\n";
  else
    std::fprintf(stderr, "warning: cannot write '%s'\n", OutPath.c_str());

  if (!BandsPath.empty() && !gateAgainstBands(Rows, BandsPath)) {
    std::fprintf(stderr, "cyclesim validation gate FAILED\n");
    return 1;
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
