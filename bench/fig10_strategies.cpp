//===- bench/fig10_strategies.cpp - Paper Figure 10 ---------------------------===//
//
// Regenerates Figure 10: speedup over the single-threaded CPU baseline
// for SWPNC (software pipelining without coalescing), Serial (fully data
// parallel SAS, one kernel per filter) and SWP8 (the optimized scheme),
// per benchmark, with the geometric mean as the last row — the paper's
// last bar.
//
// Expected shapes (Section V-B): SWP8 wins everywhere except MatrixMult
// and DCT where Serial is slightly ahead; SWPNC collapses except where
// the working set fits shared memory (Filterbank, FMRadio).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace sgpu;
using namespace sgpu::bench;

namespace {

double speedupOf(const std::string &Name, Strategy S) {
  const std::optional<CompileReport> &R = compiledReport(Name, S, 8);
  return R ? R->Speedup : 0.0;
}

double simCyclesOf(const std::string &Name, Strategy S) {
  const std::optional<CompileReport> &R = compiledReport(Name, S, 8);
  return R ? cycleSimKernelCycles(Name, *R) : 0.0;
}

void BM_Fig10(benchmark::State &State, const BenchmarkSpec *Spec,
              Strategy S) {
  for (auto _ : State)
    benchmark::DoNotOptimize(speedupOf(Spec->Name, S));
  State.counters["speedup"] = speedupOf(Spec->Name, S);
  State.counters["sim_kernel_cycles"] = simCyclesOf(Spec->Name, S);
}

} // namespace

int main(int argc, char **argv) {
  std::printf("Figure 10: Speedup over single-threaded CPU "
              "(SWPNC / Serial / SWP8; Sim* = warp-level simulated "
              "cycles/invocation)\n");
  std::printf("%-12s %10s %10s %10s %12s %12s\n", "Benchmark", "SWPNC",
              "Serial", "SWP8", "SimSWPNC", "SimSWP8");
  std::vector<double> Nc, Ser, Swp;
  for (const BenchmarkSpec &Spec : allBenchmarks()) {
    double A = speedupOf(Spec.Name, Strategy::SwpNoCoalesce);
    double B = speedupOf(Spec.Name, Strategy::Serial);
    double C = speedupOf(Spec.Name, Strategy::Swp);
    Nc.push_back(A);
    Ser.push_back(B);
    Swp.push_back(C);
    std::printf("%-12s %10.2f %10.2f %10.2f %12.0f %12.0f\n",
                Spec.Name.c_str(), A, B, C,
                simCyclesOf(Spec.Name, Strategy::SwpNoCoalesce),
                simCyclesOf(Spec.Name, Strategy::Swp));
    for (Strategy S : {Strategy::SwpNoCoalesce, Strategy::Serial,
                       Strategy::Swp})
      benchmark::RegisterBenchmark(
          ("Fig10/" + Spec.Name + "/" + strategyName(S)).c_str(),
          BM_Fig10, &Spec, S)
          ->Iterations(1);
  }
  std::printf("%-12s %10.2f %10.2f %10.2f\n", "GeoMean", geomean(Nc),
              geomean(Ser), geomean(Swp));
  std::printf("\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
