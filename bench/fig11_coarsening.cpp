//===- bench/fig11_coarsening.cpp - Paper Figure 11 ----------------------------===//
//
// Regenerates Figure 11: the effect of coarsening the granularity of the
// software-pipelined schedule — SWP1/SWP4/SWP8/SWP16 speedups over the
// CPU baseline per benchmark, geometric mean last. The paper's shape:
// gains plateau between SWP4 and SWP8 (launch overhead amortized).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace sgpu;
using namespace sgpu::bench;

namespace {

constexpr int Factors[] = {1, 4, 8, 16};

double speedupOf(const std::string &Name, int Coarsen) {
  const std::optional<CompileReport> &R =
      compiledReport(Name, Strategy::Swp, Coarsen);
  return R ? R->Speedup : 0.0;
}

double simCyclesOf(const std::string &Name, int Coarsen) {
  const std::optional<CompileReport> &R =
      compiledReport(Name, Strategy::Swp, Coarsen);
  return R ? cycleSimKernelCycles(Name, *R) : 0.0;
}

void BM_Fig11(benchmark::State &State, const BenchmarkSpec *Spec,
              int Coarsen) {
  for (auto _ : State)
    benchmark::DoNotOptimize(speedupOf(Spec->Name, Coarsen));
  State.counters["speedup"] = speedupOf(Spec->Name, Coarsen);
  State.counters["sim_kernel_cycles"] = simCyclesOf(Spec->Name, Coarsen);
}

} // namespace

int main(int argc, char **argv) {
  std::printf("Figure 11: SWP coarsening sweep (speedup over CPU; "
              "Sim = warp-level simulated cycles/invocation)\n");
  std::printf("%-12s %9s %9s %9s %9s %12s %12s\n", "Benchmark", "SWP1",
              "SWP4", "SWP8", "SWP16", "SimSWP1", "SimSWP8");
  std::vector<std::vector<double>> Columns(4);
  for (const BenchmarkSpec &Spec : allBenchmarks()) {
    std::printf("%-12s", Spec.Name.c_str());
    for (int I = 0; I < 4; ++I) {
      double S = speedupOf(Spec.Name, Factors[I]);
      Columns[I].push_back(S);
      std::printf(" %9.2f", S);
      benchmark::RegisterBenchmark(
          ("Fig11/" + Spec.Name + "/SWP" + std::to_string(Factors[I]))
              .c_str(),
          BM_Fig11, &Spec, Factors[I])
          ->Iterations(1);
    }
    std::printf(" %12.0f %12.0f", simCyclesOf(Spec.Name, 1),
                simCyclesOf(Spec.Name, 8));
    std::printf("\n");
  }
  std::printf("%-12s", "GeoMean");
  for (int I = 0; I < 4; ++I)
    std::printf(" %9.2f", geomean(Columns[I]));
  std::printf("\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
