//===- bench/fuzz_oracles.cpp - Fuzzing subsystem throughput -------------------===//
//
// Seeds-per-second of the sgpu-fuzz oracle suite, split by stage
// (generation, heuristic-only compile+check, the full differential
// suite). CI budgets its bounded fuzz job — 200 seeds on both timing
// models — from these numbers; a regression here silently shrinks how
// much coverage that fixed wall-clock budget buys.
//
//===----------------------------------------------------------------------===//

#include "testing/GraphGen.h"
#include "testing/Oracles.h"

#include <benchmark/benchmark.h>

using namespace sgpu;
using namespace sgpu::testing;

namespace {

void BM_GenerateAndFlatten(benchmark::State &State) {
  uint64_t Seed = 1;
  for (auto _ : State) {
    StreamGraph G = buildGraph(generateGraphSpec(Seed++));
    benchmark::DoNotOptimize(G.numNodes());
  }
  State.SetItemsProcessed(State.iterations());
}

void BM_OraclesHeuristicOnly(benchmark::State &State) {
  OracleOptions O;
  O.RunIlp = false;
  O.RunMetamorphic = false;
  O.RunTimingOrdering = false;
  uint64_t Seed = 1;
  int64_t Checks = 0;
  for (auto _ : State) {
    OracleReport R = runOracles(Seed++, {}, O);
    Checks += R.ChecksRun;
    benchmark::DoNotOptimize(R.Failures.size());
  }
  State.SetItemsProcessed(State.iterations());
  State.counters["checks/seed"] =
      State.iterations() ? double(Checks) / double(State.iterations()) : 0.0;
}

void BM_OraclesFullSuite(benchmark::State &State) {
  // Everything sgpu-fuzz runs per seed with default flags (analytic
  // timing): ILP variants, metamorphic properties, round trip.
  uint64_t Seed = 1;
  int64_t Checks = 0;
  for (auto _ : State) {
    OracleReport R = runOracles(Seed++);
    Checks += R.ChecksRun;
    benchmark::DoNotOptimize(R.Failures.size());
  }
  State.SetItemsProcessed(State.iterations());
  State.counters["checks/seed"] =
      State.iterations() ? double(Checks) / double(State.iterations()) : 0.0;
}

} // namespace

BENCHMARK(BM_GenerateAndFlatten)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_OraclesHeuristicOnly)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OraclesFullSuite)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
