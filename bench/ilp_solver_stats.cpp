//===- bench/ilp_solver_stats.cpp - Section V solver statistics ---------------===//
//
// Regenerates the paper's Section V compilation-efficiency discussion:
// per benchmark, the MII lower bound (max of ResMII and RecMII; the paper
// notes RecMII was 0 throughout since no benchmark has feedback loops),
// the final II, the relaxation applied (the paper reports <= 5%, 7% for
// FFT/FMRadio), the number of II attempts, and solver effort. Our branch
// & bound is not CPLEX: the heuristic scheduler provides incumbents and
// the exact solver handles small instance counts (DESIGN.md deviations).
//
// Solver-effort counters come from the pipeline metrics registry
// (support/Metrics.h), reset around each compile: unlike the report's
// "solver" section — which charges only the candidates a serial II loop
// would have visited — the registry counts every LP solve, pivot and
// B&B node the engine actually performed, including speculative window
// candidates.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "support/Metrics.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

using namespace sgpu;
using namespace sgpu::bench;

namespace {

/// Registry counter deltas captured around each benchmark's compile.
std::map<std::string, MetricsRegistry::Snapshot> EngineStats;

double counterOf(const MetricsRegistry::Snapshot &S, const char *Name) {
  auto It = S.Counters.find(Name);
  return It != S.Counters.end() ? static_cast<double>(It->second) : 0.0;
}

double stageSecondsOf(const MetricsRegistry::Snapshot &S, const char *Name) {
  auto It = S.Histograms.find(Name);
  return It != S.Histograms.end() ? It->second.Sum : 0.0;
}

} // namespace

static void BM_SolverStats(benchmark::State &State,
                           const BenchmarkSpec *Spec) {
  for (auto _ : State)
    benchmark::DoNotOptimize(compiledReport(Spec->Name, Strategy::Swp, 8));
  const std::optional<CompileReport> &R =
      compiledReport(Spec->Name, Strategy::Swp, 8);
  if (!R)
    return;
  const MetricsRegistry::Snapshot &Snap = EngineStats[Spec->Name];
  State.counters["MII"] = R->SchedStats.MII;
  State.counters["finalII"] = R->SchedStats.FinalII;
  State.counters["relax_pct"] = R->SchedStats.RelaxationPercent;
  State.counters["attempts"] = counterOf(Snap, "scheduler.ii_candidates");
  State.counters["bnb_nodes"] = counterOf(Snap, "bnb.nodes_solved");
  State.counters["lp_solves"] = counterOf(Snap, "simplex.lp_solves");
  State.counters["pivots"] = counterOf(Snap, "simplex.pivots");
  State.counters["solver_s"] = stageSecondsOf(Snap, "stage.core.schedule.seconds");
  State.counters["workers"] = R->SchedStats.WorkersUsed;
  State.counters["instances"] = static_cast<double>(
      R->GSS.totalInstances());
}

int main(int argc, char **argv) {
  std::printf("ILP scheduling statistics (paper Section V)\n");
  std::printf("%-12s %10s %12s %12s %9s %9s %9s %9s %9s %9s %6s\n",
              "Benchmark", "Instances", "MII", "FinalII", "Relax%",
              "Attempts", "BnBNodes", "LpSolves", "Pivots", "SchedS",
              "ILP?");
  for (const BenchmarkSpec &Spec : allBenchmarks()) {
    // The first compiledReport call per key actually compiles, so the
    // reset/snapshot pair brackets exactly this benchmark's engine work.
    MetricsRegistry::global().reset();
    const std::optional<CompileReport> &R =
        compiledReport(Spec.Name, Strategy::Swp, 8);
    EngineStats[Spec.Name] = MetricsRegistry::global().snapshot();
    if (!R) {
      std::printf("%-12s  <failed to compile>\n", Spec.Name.c_str());
      continue;
    }
    const MetricsRegistry::Snapshot &Snap = EngineStats[Spec.Name];
    std::printf("%-12s %10lld %12.1f %12.1f %9.2f %9.0f %9.0f %9.0f %9.0f "
                "%9.3f %6s\n",
                Spec.Name.c_str(),
                static_cast<long long>(R->GSS.totalInstances()),
                R->SchedStats.MII, R->SchedStats.FinalII,
                R->SchedStats.RelaxationPercent,
                counterOf(Snap, "scheduler.ii_candidates"),
                counterOf(Snap, "bnb.nodes_solved"),
                counterOf(Snap, "simplex.lp_solves"),
                counterOf(Snap, "simplex.pivots"),
                stageSecondsOf(Snap, "stage.core.schedule.seconds"),
                R->SchedStats.UsedIlp ? "yes" : "no");
    benchmark::RegisterBenchmark(("IlpStats/" + Spec.Name).c_str(),
                                 BM_SolverStats, &Spec)
        ->Iterations(1);
  }
  std::printf("\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
