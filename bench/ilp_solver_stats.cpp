//===- bench/ilp_solver_stats.cpp - Section V solver statistics ---------------===//
//
// Regenerates the paper's Section V compilation-efficiency discussion:
// per benchmark, the MII lower bound (max of ResMII and RecMII; the paper
// notes RecMII was 0 throughout since no benchmark has feedback loops),
// the final II, the relaxation applied (the paper reports <= 5%, 7% for
// FFT/FMRadio), the number of II attempts, and solver effort. Our branch
// & bound is not CPLEX: the heuristic scheduler provides incumbents and
// the exact solver handles small instance counts (DESIGN.md deviations).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace sgpu;
using namespace sgpu::bench;

static void BM_SolverStats(benchmark::State &State,
                           const BenchmarkSpec *Spec) {
  for (auto _ : State)
    benchmark::DoNotOptimize(compiledReport(Spec->Name, Strategy::Swp, 8));
  const std::optional<CompileReport> &R =
      compiledReport(Spec->Name, Strategy::Swp, 8);
  if (!R)
    return;
  State.counters["MII"] = R->SchedStats.MII;
  State.counters["finalII"] = R->SchedStats.FinalII;
  State.counters["relax_pct"] = R->SchedStats.RelaxationPercent;
  State.counters["attempts"] = R->SchedStats.IIAttempts;
  State.counters["bnb_nodes"] = R->SchedStats.SolverNodes;
  State.counters["lp_solves"] =
      static_cast<double>(R->SchedStats.SolverLpSolves);
  State.counters["pivots"] =
      static_cast<double>(R->SchedStats.SolverPivots);
  State.counters["solver_s"] = R->SchedStats.SolverSeconds;
  State.counters["workers"] = R->SchedStats.WorkersUsed;
  State.counters["instances"] = static_cast<double>(
      R->GSS.totalInstances());
}

int main(int argc, char **argv) {
  std::printf("ILP scheduling statistics (paper Section V)\n");
  std::printf("%-12s %10s %12s %12s %9s %9s %9s %9s %9s %9s %6s\n",
              "Benchmark", "Instances", "MII", "FinalII", "Relax%",
              "Attempts", "BnBNodes", "LpSolves", "Pivots", "SolverS",
              "ILP?");
  for (const BenchmarkSpec &Spec : allBenchmarks()) {
    const std::optional<CompileReport> &R =
        compiledReport(Spec.Name, Strategy::Swp, 8);
    if (!R) {
      std::printf("%-12s  <failed to compile>\n", Spec.Name.c_str());
      continue;
    }
    std::printf("%-12s %10lld %12.1f %12.1f %9.2f %9d %9d %9lld %9lld "
                "%9.3f %6s\n",
                Spec.Name.c_str(),
                static_cast<long long>(R->GSS.totalInstances()),
                R->SchedStats.MII, R->SchedStats.FinalII,
                R->SchedStats.RelaxationPercent, R->SchedStats.IIAttempts,
                R->SchedStats.SolverNodes,
                static_cast<long long>(R->SchedStats.SolverLpSolves),
                static_cast<long long>(R->SchedStats.SolverPivots),
                R->SchedStats.SolverSeconds,
                R->SchedStats.UsedIlp ? "yes" : "no");
    benchmark::RegisterBenchmark(("IlpStats/" + Spec.Name).c_str(),
                                 BM_SolverStats, &Spec)
        ->Iterations(1);
  }
  std::printf("\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
