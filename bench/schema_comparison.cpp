//===- bench/schema_comparison.cpp - Kernel schema cost comparison -----------===//
//
// Compiles the eight Table I benchmarks under every kernel schema mode —
// the paper's global-channel kernel, the warp-specialized persistent
// kernel with shared-memory ring queues, and Auto (compile both, keep
// the faster) — and reports, per benchmark and mode, the schedule II,
// the predicted cycles of one SWP8 kernel invocation, the device
// transactions, and the queue-admission outcome (edges, shared bytes).
// Writes BENCH_schema.json (override with --out=FILE); CI archives it as
// the record of where the warp schema pays off and by how much.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Json.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

using namespace sgpu;
using namespace sgpu::bench;

namespace {

struct ModeResult {
  bool Ok = false;
  double II = 0.0;
  double Cycles = 0.0;
  double Transactions = 0.0;
  int QueueEdges = 0;
  int64_t SharedQueueBytes = 0;
  SchemaKind Selected = SchemaKind::GlobalChannel;
};

struct ComparisonRow {
  std::string Name;
  ModeResult Global, Warp, Auto_;
};

ModeResult compileUnder(const BenchmarkSpec &Spec, SchemaMode Mode) {
  ModeResult M;
  StreamGraph G = flatten(*Spec.Build());
  CompileOptions O = benchOptions(Strategy::Swp, /*Coarsening=*/8);
  O.Schema = Mode;
  std::optional<CompileReport> R = compileForGpu(G, O);
  if (!R)
    return M;
  M.Ok = true;
  M.II = R->Schedule.II;
  M.Cycles = R->KernelSim.TotalCycles;
  M.Transactions = R->KernelSim.Transactions;
  M.QueueEdges = R->Schema.numQueueEdges();
  M.SharedQueueBytes = R->Schema.SharedQueueBytes;
  M.Selected = R->Schema.Kind;
  return M;
}

void writeMode(JsonWriter &W, const char *Key, const ModeResult &M) {
  W.beginObject(Key);
  W.writeBool("ok", M.Ok);
  W.writeDouble("ii", M.II);
  W.writeDouble("predicted_cycles", M.Cycles);
  W.writeDouble("transactions", M.Transactions);
  W.writeInt("queue_edges", M.QueueEdges);
  W.writeInt("shared_queue_bytes", M.SharedQueueBytes);
  W.writeString("selected", schemaKindName(M.Selected));
  W.endObject();
}

} // namespace

int main(int argc, char **argv) {
  std::string OutPath = "BENCH_schema.json";
  for (int I = 1; I < argc; ++I)
    if (std::strncmp(argv[I], "--out=", 6) == 0)
      OutPath = argv[I] + 6;

  std::printf("Kernel schema comparison (SWP8, 16 SMs; cycles per kernel "
              "invocation)\n");
  std::printf("%-12s %12s %12s %12s %6s %8s %6s %8s\n", "Benchmark",
              "Global", "Warp", "AutoPick", "QEdges", "ShBytes", "Auto",
              "Gain%");

  std::vector<ComparisonRow> Rows;
  int AutoWarpWins = 0;
  for (const BenchmarkSpec &Spec : allBenchmarks()) {
    ComparisonRow Row;
    Row.Name = Spec.Name;
    Row.Global = compileUnder(Spec, SchemaMode::Global);
    Row.Warp = compileUnder(Spec, SchemaMode::Warp);
    Row.Auto_ = compileUnder(Spec, SchemaMode::Auto);
    if (Row.Global.Ok && Row.Warp.Ok && Row.Auto_.Ok) {
      const bool WarpWon = Row.Auto_.Selected == SchemaKind::WarpSpecialized;
      AutoWarpWins += WarpWon ? 1 : 0;
      const double Gain =
          Row.Global.Cycles > 0.0
              ? 100.0 * (Row.Global.Cycles - Row.Auto_.Cycles) /
                    Row.Global.Cycles
              : 0.0;
      std::printf("%-12s %12.0f %12.0f %12.0f %6d %8lld %6s %7.2f%%\n",
                  Row.Name.c_str(), Row.Global.Cycles, Row.Warp.Cycles,
                  Row.Auto_.Cycles, Row.Warp.QueueEdges,
                  static_cast<long long>(Row.Warp.SharedQueueBytes),
                  schemaKindName(Row.Auto_.Selected), Gain);
    } else {
      std::printf("%-12s  compile failed\n", Row.Name.c_str());
    }
    Rows.push_back(std::move(Row));
  }
  std::printf("\nAuto picked the warp schema on %d of %zu benchmarks\n",
              AutoWarpWins, Rows.size());

  JsonWriter W;
  W.beginObject();
  W.beginArray("benchmarks");
  for (const ComparisonRow &Row : Rows) {
    W.beginObject();
    W.writeString("name", Row.Name);
    writeMode(W, "global", Row.Global);
    writeMode(W, "warp", Row.Warp);
    writeMode(W, "auto", Row.Auto_);
    const bool Comparable = Row.Global.Ok && Row.Auto_.Ok;
    W.writeString("auto_pick",
                  Comparable ? schemaKindName(Row.Auto_.Selected) : "");
    W.writeDouble("auto_gain_percent",
                  Comparable && Row.Global.Cycles > 0.0
                      ? 100.0 * (Row.Global.Cycles - Row.Auto_.Cycles) /
                            Row.Global.Cycles
                      : 0.0);
    W.endObject();
  }
  W.endArray();
  W.writeInt("auto_warp_wins", AutoWarpWins);
  W.endObject();
  std::ofstream Out(OutPath, std::ios::binary);
  if (Out)
    Out << W.str() << "\n";
  else
    std::fprintf(stderr, "warning: cannot write '%s'\n", OutPath.c_str());
  return 0;
}
