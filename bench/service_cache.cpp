//===- bench/service_cache.cpp - Scheduling-service hot-path costs -----------===//
//
// The per-request overhead budget of sgpu-served: hashing a request into
// its cache key (SHA-256 over the canonical graph form) and hitting the
// in-memory ScheduleCache. Together these are the whole latency of a
// warm request minus transport, so they bound how far below the CI
// smoke job's 50 ms p50-hit requirement the daemon actually sits.
//
//===----------------------------------------------------------------------===//

#include "benchmarks/Registry.h"
#include "service/GraphHash.h"
#include "service/ScheduleCache.h"
#include "support/Sha256.h"

#include <benchmark/benchmark.h>

#include <string>

using namespace sgpu;
using namespace sgpu::service;

namespace {

StreamGraph benchGraph(const char *Name) {
  const bench::BenchmarkSpec *Spec = bench::findBenchmark(Name);
  return flatten(*Spec->Build());
}

/// Raw digest throughput, the floor under every key derivation.
void BM_Sha256Throughput(benchmark::State &State) {
  std::string Data(static_cast<size_t>(State.range(0)), 'k');
  for (auto _ : State)
    benchmark::DoNotOptimize(sha256Hex(Data));
  State.SetBytesProcessed(State.iterations() * State.range(0));
}
BENCHMARK(BM_Sha256Throughput)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

/// Full cache-key derivation (canonicalize + hash) for a small and a
/// large Table I graph.
void BM_GraphHashKey(benchmark::State &State, const char *Name) {
  StreamGraph G = benchGraph(Name);
  CompileOptions Options;
  for (auto _ : State)
    benchmark::DoNotOptimize(graphHash(G, Options));
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK_CAPTURE(BM_GraphHashKey, dct, "DCT");
BENCHMARK_CAPTURE(BM_GraphHashKey, fmradio, "FMRadio");
BENCHMARK_CAPTURE(BM_GraphHashKey, bitonic, "Bitonic");

/// Memory-tier hit latency at a representative fill (the LRU touch
/// dominates; values are typical report sizes).
void BM_CacheMemoryHit(benchmark::State &State) {
  ScheduleCache C({/*MaxBytes=*/256ll << 20, /*Dir=*/""});
  const std::string Value(16 << 10, 'r'); // ~16 KB of report JSON.
  const int N = static_cast<int>(State.range(0));
  for (int I = 0; I < N; ++I)
    C.insert("key" + std::to_string(I), Value);
  int I = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(C.lookup("key" + std::to_string(I)));
    I = (I + 1) % N;
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_CacheMemoryHit)->Arg(16)->Arg(1024);

/// Insert cost including byte-budget eviction churn: the budget holds
/// half the working set, so every insert evicts.
void BM_CacheInsertWithEviction(benchmark::State &State) {
  const std::string Value(16 << 10, 'r');
  ScheduleCache C({/*MaxBytes=*/int64_t(64) * (16 << 10), /*Dir=*/""});
  int64_t I = 0;
  for (auto _ : State)
    C.insert("key" + std::to_string(I++ % 128), Value);
  State.SetItemsProcessed(State.iterations());
  State.counters["evictions"] = double(C.stats().Evictions);
}
BENCHMARK(BM_CacheInsertWithEviction);

} // namespace

BENCHMARK_MAIN();
