//===- bench/table1_benchmarks.cpp - Paper Table I ---------------------------===//
//
// Regenerates Table I: per benchmark, the flattened filter count and the
// number of peeking filters, next to the paper's reported values. Our
// ports preserve graph shapes and peeking structure; flattened node
// counts differ where the StreamIt library expanded differently (see
// DESIGN.md).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace sgpu;
using namespace sgpu::bench;

static void BM_Table1(benchmark::State &State,
                      const BenchmarkSpec *Spec) {
  StreamGraph G = flatten(*Spec->Build());
  for (auto _ : State) {
    benchmark::DoNotOptimize(G.numFilterNodes());
  }
  State.counters["nodes"] = G.numNodes();
  State.counters["filters_paper"] = Spec->PaperFilters;
  State.counters["peeking"] = G.numPeekingFilters();
  State.counters["peeking_paper"] = Spec->PaperPeeking;
}

int main(int argc, char **argv) {
  std::printf("Table I: Benchmarks evaluated\n");
  std::printf("%-12s %8s %14s %9s %15s  %s\n", "Benchmark", "Nodes",
              "Paper-Filters", "Peeking", "Paper-Peeking", "Description");
  for (const BenchmarkSpec &Spec : allBenchmarks()) {
    StreamGraph G = flatten(*Spec.Build());
    std::printf("%-12s %8d %14d %9d %15d  %s\n", Spec.Name.c_str(),
                G.numNodes(), Spec.PaperFilters, G.numPeekingFilters(),
                Spec.PaperPeeking, Spec.Description.c_str());
    benchmark::RegisterBenchmark(("Table1/" + Spec.Name).c_str(),
                                 BM_Table1, &Spec)
        ->Iterations(1);
  }
  std::printf("\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
