//===- bench/table1_benchmarks.cpp - Paper Table I ---------------------------===//
//
// Regenerates Table I: per benchmark, the flattened filter count and the
// number of peeking filters, next to the paper's reported values. Our
// ports preserve graph shapes and peeking structure; flattened node
// counts differ where the StreamIt library expanded differently (see
// DESIGN.md).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace sgpu;
using namespace sgpu::bench;

static void BM_Table1(benchmark::State &State,
                      const BenchmarkSpec *Spec) {
  StreamGraph G = flatten(*Spec->Build());
  for (auto _ : State) {
    benchmark::DoNotOptimize(G.numFilterNodes());
  }
  State.counters["nodes"] = G.numNodes();
  State.counters["filters_paper"] = Spec->PaperFilters;
  State.counters["peeking"] = G.numPeekingFilters();
  State.counters["peeking_paper"] = Spec->PaperPeeking;
  const std::optional<CompileReport> &R =
      compiledReport(Spec->Name, Strategy::Swp, 8);
  if (R) {
    State.counters["analytic_kernel_cycles"] = R->KernelSim.TotalCycles;
    State.counters["sim_kernel_cycles"] =
        cycleSimKernelCycles(Spec->Name, *R);
  }
}

int main(int argc, char **argv) {
  std::printf("Table I: Benchmarks evaluated\n");
  std::printf("%-12s %8s %14s %9s %15s %12s %12s  %s\n", "Benchmark",
              "Nodes", "Paper-Filters", "Peeking", "Paper-Peeking",
              "AnalyticCyc", "SimCyc", "Description");
  for (const BenchmarkSpec &Spec : allBenchmarks()) {
    StreamGraph G = flatten(*Spec.Build());
    // Analytic vs warp-level simulated cycles of one SWP8 kernel
    // invocation of the compiled schedule.
    const std::optional<CompileReport> &R =
        compiledReport(Spec.Name, Strategy::Swp, 8);
    double AnalyticCyc = R ? R->KernelSim.TotalCycles : 0.0;
    double SimCyc = R ? cycleSimKernelCycles(Spec.Name, *R) : 0.0;
    std::printf("%-12s %8d %14d %9d %15d %12.0f %12.0f  %s\n",
                Spec.Name.c_str(), G.numNodes(), Spec.PaperFilters,
                G.numPeekingFilters(), Spec.PaperPeeking, AnalyticCyc,
                SimCyc, Spec.Description.c_str());
    benchmark::RegisterBenchmark(("Table1/" + Spec.Name).c_str(),
                                 BM_Table1, &Spec)
        ->Iterations(1);
  }
  std::printf("\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
