//===- bench/table2_buffers.cpp - Paper Table II ------------------------------===//
//
// Regenerates Table II: the channel-buffer requirement in bytes of the
// optimized software-pipelined schedule coarsened 8 times (SWP8), per
// benchmark. Absolute bytes differ from the paper (our simulator's
// execution configurations and schedules are our own); the magnitudes
// and the per-benchmark ordering are the comparable shape.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace sgpu;
using namespace sgpu::bench;

namespace {

const int64_t PaperBytes[] = {5308416,  4472832, 29360128, 59768832,
                              25165824, 7471104, 1671168,  92602368};

void BM_Table2(benchmark::State &State, const BenchmarkSpec *Spec) {
  for (auto _ : State) {
    const std::optional<CompileReport> &R =
        compiledReport(Spec->Name, Strategy::Swp, 8);
    benchmark::DoNotOptimize(R);
  }
  const std::optional<CompileReport> &R =
      compiledReport(Spec->Name, Strategy::Swp, 8);
  if (R)
    State.counters["buffer_bytes"] = static_cast<double>(R->BufferBytes);
}

} // namespace

int main(int argc, char **argv) {
  std::printf("Table II: Buffer requirements of the SWP8 schedule "
              "(bytes)\n");
  std::printf("%-12s %16s %16s\n", "Benchmark", "Measured", "Paper");
  const auto &Specs = allBenchmarks();
  for (size_t I = 0; I < Specs.size(); ++I) {
    const std::optional<CompileReport> &R =
        compiledReport(Specs[I].Name, Strategy::Swp, 8);
    std::printf("%-12s %16lld %16lld\n", Specs[I].Name.c_str(),
                R ? static_cast<long long>(R->BufferBytes) : -1LL,
                static_cast<long long>(PaperBytes[I]));
    benchmark::RegisterBenchmark(("Table2/" + Specs[I].Name).c_str(),
                                 BM_Table2, &Specs[I])
        ->Iterations(1);
  }
  std::printf("\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
