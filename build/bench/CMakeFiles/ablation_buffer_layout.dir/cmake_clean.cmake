file(REMOVE_RECURSE
  "CMakeFiles/ablation_buffer_layout.dir/ablation_buffer_layout.cpp.o"
  "CMakeFiles/ablation_buffer_layout.dir/ablation_buffer_layout.cpp.o.d"
  "ablation_buffer_layout"
  "ablation_buffer_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_buffer_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
