# Empty dependencies file for ablation_buffer_layout.
# This may be replaced when dependencies are built.
