file(REMOVE_RECURSE
  "CMakeFiles/ablation_config_selection.dir/ablation_config_selection.cpp.o"
  "CMakeFiles/ablation_config_selection.dir/ablation_config_selection.cpp.o.d"
  "ablation_config_selection"
  "ablation_config_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_config_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
