# Empty dependencies file for ablation_config_selection.
# This may be replaced when dependencies are built.
