file(REMOVE_RECURSE
  "CMakeFiles/ablation_ilp_vs_heuristic.dir/ablation_ilp_vs_heuristic.cpp.o"
  "CMakeFiles/ablation_ilp_vs_heuristic.dir/ablation_ilp_vs_heuristic.cpp.o.d"
  "ablation_ilp_vs_heuristic"
  "ablation_ilp_vs_heuristic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ilp_vs_heuristic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
