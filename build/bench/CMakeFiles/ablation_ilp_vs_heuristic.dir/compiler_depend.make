# Empty compiler generated dependencies file for ablation_ilp_vs_heuristic.
# This may be replaced when dependencies are built.
