file(REMOVE_RECURSE
  "CMakeFiles/ablation_sm_scaling.dir/ablation_sm_scaling.cpp.o"
  "CMakeFiles/ablation_sm_scaling.dir/ablation_sm_scaling.cpp.o.d"
  "ablation_sm_scaling"
  "ablation_sm_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sm_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
