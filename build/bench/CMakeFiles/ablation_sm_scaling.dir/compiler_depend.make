# Empty compiler generated dependencies file for ablation_sm_scaling.
# This may be replaced when dependencies are built.
