file(REMOVE_RECURSE
  "CMakeFiles/fig10_strategies.dir/fig10_strategies.cpp.o"
  "CMakeFiles/fig10_strategies.dir/fig10_strategies.cpp.o.d"
  "fig10_strategies"
  "fig10_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
