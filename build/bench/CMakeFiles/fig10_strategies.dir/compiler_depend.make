# Empty compiler generated dependencies file for fig10_strategies.
# This may be replaced when dependencies are built.
