file(REMOVE_RECURSE
  "CMakeFiles/fig11_coarsening.dir/fig11_coarsening.cpp.o"
  "CMakeFiles/fig11_coarsening.dir/fig11_coarsening.cpp.o.d"
  "fig11_coarsening"
  "fig11_coarsening.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_coarsening.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
