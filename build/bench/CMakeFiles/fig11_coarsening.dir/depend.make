# Empty dependencies file for fig11_coarsening.
# This may be replaced when dependencies are built.
