file(REMOVE_RECURSE
  "CMakeFiles/ilp_solver_stats.dir/ilp_solver_stats.cpp.o"
  "CMakeFiles/ilp_solver_stats.dir/ilp_solver_stats.cpp.o.d"
  "ilp_solver_stats"
  "ilp_solver_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilp_solver_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
