# Empty dependencies file for ilp_solver_stats.
# This may be replaced when dependencies are built.
