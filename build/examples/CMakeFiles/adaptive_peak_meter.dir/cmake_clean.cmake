file(REMOVE_RECURSE
  "CMakeFiles/adaptive_peak_meter.dir/adaptive_peak_meter.cpp.o"
  "CMakeFiles/adaptive_peak_meter.dir/adaptive_peak_meter.cpp.o.d"
  "adaptive_peak_meter"
  "adaptive_peak_meter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_peak_meter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
