# Empty dependencies file for adaptive_peak_meter.
# This may be replaced when dependencies are built.
