file(REMOVE_RECURSE
  "CMakeFiles/des_encrypt.dir/des_encrypt.cpp.o"
  "CMakeFiles/des_encrypt.dir/des_encrypt.cpp.o.d"
  "des_encrypt"
  "des_encrypt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/des_encrypt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
