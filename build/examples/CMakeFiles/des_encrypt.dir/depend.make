# Empty dependencies file for des_encrypt.
# This may be replaced when dependencies are built.
