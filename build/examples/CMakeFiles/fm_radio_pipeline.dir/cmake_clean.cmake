file(REMOVE_RECURSE
  "CMakeFiles/fm_radio_pipeline.dir/fm_radio_pipeline.cpp.o"
  "CMakeFiles/fm_radio_pipeline.dir/fm_radio_pipeline.cpp.o.d"
  "fm_radio_pipeline"
  "fm_radio_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fm_radio_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
