# Empty dependencies file for fm_radio_pipeline.
# This may be replaced when dependencies are built.
