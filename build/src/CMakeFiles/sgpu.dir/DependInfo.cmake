
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/benchmarks/Bitonic.cpp" "src/CMakeFiles/sgpu.dir/benchmarks/Bitonic.cpp.o" "gcc" "src/CMakeFiles/sgpu.dir/benchmarks/Bitonic.cpp.o.d"
  "/root/repo/src/benchmarks/BitonicRec.cpp" "src/CMakeFiles/sgpu.dir/benchmarks/BitonicRec.cpp.o" "gcc" "src/CMakeFiles/sgpu.dir/benchmarks/BitonicRec.cpp.o.d"
  "/root/repo/src/benchmarks/Common.cpp" "src/CMakeFiles/sgpu.dir/benchmarks/Common.cpp.o" "gcc" "src/CMakeFiles/sgpu.dir/benchmarks/Common.cpp.o.d"
  "/root/repo/src/benchmarks/Dct.cpp" "src/CMakeFiles/sgpu.dir/benchmarks/Dct.cpp.o" "gcc" "src/CMakeFiles/sgpu.dir/benchmarks/Dct.cpp.o.d"
  "/root/repo/src/benchmarks/Des.cpp" "src/CMakeFiles/sgpu.dir/benchmarks/Des.cpp.o" "gcc" "src/CMakeFiles/sgpu.dir/benchmarks/Des.cpp.o.d"
  "/root/repo/src/benchmarks/Fft.cpp" "src/CMakeFiles/sgpu.dir/benchmarks/Fft.cpp.o" "gcc" "src/CMakeFiles/sgpu.dir/benchmarks/Fft.cpp.o.d"
  "/root/repo/src/benchmarks/Filterbank.cpp" "src/CMakeFiles/sgpu.dir/benchmarks/Filterbank.cpp.o" "gcc" "src/CMakeFiles/sgpu.dir/benchmarks/Filterbank.cpp.o.d"
  "/root/repo/src/benchmarks/FmRadio.cpp" "src/CMakeFiles/sgpu.dir/benchmarks/FmRadio.cpp.o" "gcc" "src/CMakeFiles/sgpu.dir/benchmarks/FmRadio.cpp.o.d"
  "/root/repo/src/benchmarks/MatrixMult.cpp" "src/CMakeFiles/sgpu.dir/benchmarks/MatrixMult.cpp.o" "gcc" "src/CMakeFiles/sgpu.dir/benchmarks/MatrixMult.cpp.o.d"
  "/root/repo/src/benchmarks/Registry.cpp" "src/CMakeFiles/sgpu.dir/benchmarks/Registry.cpp.o" "gcc" "src/CMakeFiles/sgpu.dir/benchmarks/Registry.cpp.o.d"
  "/root/repo/src/codegen/CudaEmitter.cpp" "src/CMakeFiles/sgpu.dir/codegen/CudaEmitter.cpp.o" "gcc" "src/CMakeFiles/sgpu.dir/codegen/CudaEmitter.cpp.o.d"
  "/root/repo/src/core/Compiler.cpp" "src/CMakeFiles/sgpu.dir/core/Compiler.cpp.o" "gcc" "src/CMakeFiles/sgpu.dir/core/Compiler.cpp.o.d"
  "/root/repo/src/core/CpuBaseline.cpp" "src/CMakeFiles/sgpu.dir/core/CpuBaseline.cpp.o" "gcc" "src/CMakeFiles/sgpu.dir/core/CpuBaseline.cpp.o.d"
  "/root/repo/src/core/ExecutionModel.cpp" "src/CMakeFiles/sgpu.dir/core/ExecutionModel.cpp.o" "gcc" "src/CMakeFiles/sgpu.dir/core/ExecutionModel.cpp.o.d"
  "/root/repo/src/core/HeuristicScheduler.cpp" "src/CMakeFiles/sgpu.dir/core/HeuristicScheduler.cpp.o" "gcc" "src/CMakeFiles/sgpu.dir/core/HeuristicScheduler.cpp.o.d"
  "/root/repo/src/core/IlpFormulation.cpp" "src/CMakeFiles/sgpu.dir/core/IlpFormulation.cpp.o" "gcc" "src/CMakeFiles/sgpu.dir/core/IlpFormulation.cpp.o.d"
  "/root/repo/src/core/IlpScheduler.cpp" "src/CMakeFiles/sgpu.dir/core/IlpScheduler.cpp.o" "gcc" "src/CMakeFiles/sgpu.dir/core/IlpScheduler.cpp.o.d"
  "/root/repo/src/core/ReportWriter.cpp" "src/CMakeFiles/sgpu.dir/core/ReportWriter.cpp.o" "gcc" "src/CMakeFiles/sgpu.dir/core/ReportWriter.cpp.o.d"
  "/root/repo/src/core/ScheduleVerifier.cpp" "src/CMakeFiles/sgpu.dir/core/ScheduleVerifier.cpp.o" "gcc" "src/CMakeFiles/sgpu.dir/core/ScheduleVerifier.cpp.o.d"
  "/root/repo/src/gpusim/FunctionalSim.cpp" "src/CMakeFiles/sgpu.dir/gpusim/FunctionalSim.cpp.o" "gcc" "src/CMakeFiles/sgpu.dir/gpusim/FunctionalSim.cpp.o.d"
  "/root/repo/src/gpusim/GpuArch.cpp" "src/CMakeFiles/sgpu.dir/gpusim/GpuArch.cpp.o" "gcc" "src/CMakeFiles/sgpu.dir/gpusim/GpuArch.cpp.o.d"
  "/root/repo/src/gpusim/KernelTiming.cpp" "src/CMakeFiles/sgpu.dir/gpusim/KernelTiming.cpp.o" "gcc" "src/CMakeFiles/sgpu.dir/gpusim/KernelTiming.cpp.o.d"
  "/root/repo/src/gpusim/Occupancy.cpp" "src/CMakeFiles/sgpu.dir/gpusim/Occupancy.cpp.o" "gcc" "src/CMakeFiles/sgpu.dir/gpusim/Occupancy.cpp.o.d"
  "/root/repo/src/ilp/BranchAndBound.cpp" "src/CMakeFiles/sgpu.dir/ilp/BranchAndBound.cpp.o" "gcc" "src/CMakeFiles/sgpu.dir/ilp/BranchAndBound.cpp.o.d"
  "/root/repo/src/ilp/LinearProgram.cpp" "src/CMakeFiles/sgpu.dir/ilp/LinearProgram.cpp.o" "gcc" "src/CMakeFiles/sgpu.dir/ilp/LinearProgram.cpp.o.d"
  "/root/repo/src/ilp/Simplex.cpp" "src/CMakeFiles/sgpu.dir/ilp/Simplex.cpp.o" "gcc" "src/CMakeFiles/sgpu.dir/ilp/Simplex.cpp.o.d"
  "/root/repo/src/ir/Analyzer.cpp" "src/CMakeFiles/sgpu.dir/ir/Analyzer.cpp.o" "gcc" "src/CMakeFiles/sgpu.dir/ir/Analyzer.cpp.o.d"
  "/root/repo/src/ir/Ast.cpp" "src/CMakeFiles/sgpu.dir/ir/Ast.cpp.o" "gcc" "src/CMakeFiles/sgpu.dir/ir/Ast.cpp.o.d"
  "/root/repo/src/ir/AstPrinter.cpp" "src/CMakeFiles/sgpu.dir/ir/AstPrinter.cpp.o" "gcc" "src/CMakeFiles/sgpu.dir/ir/AstPrinter.cpp.o.d"
  "/root/repo/src/ir/Filter.cpp" "src/CMakeFiles/sgpu.dir/ir/Filter.cpp.o" "gcc" "src/CMakeFiles/sgpu.dir/ir/Filter.cpp.o.d"
  "/root/repo/src/ir/FilterBuilder.cpp" "src/CMakeFiles/sgpu.dir/ir/FilterBuilder.cpp.o" "gcc" "src/CMakeFiles/sgpu.dir/ir/FilterBuilder.cpp.o.d"
  "/root/repo/src/ir/Flatten.cpp" "src/CMakeFiles/sgpu.dir/ir/Flatten.cpp.o" "gcc" "src/CMakeFiles/sgpu.dir/ir/Flatten.cpp.o.d"
  "/root/repo/src/ir/Interpreter.cpp" "src/CMakeFiles/sgpu.dir/ir/Interpreter.cpp.o" "gcc" "src/CMakeFiles/sgpu.dir/ir/Interpreter.cpp.o.d"
  "/root/repo/src/ir/Stream.cpp" "src/CMakeFiles/sgpu.dir/ir/Stream.cpp.o" "gcc" "src/CMakeFiles/sgpu.dir/ir/Stream.cpp.o.d"
  "/root/repo/src/ir/StreamGraph.cpp" "src/CMakeFiles/sgpu.dir/ir/StreamGraph.cpp.o" "gcc" "src/CMakeFiles/sgpu.dir/ir/StreamGraph.cpp.o.d"
  "/root/repo/src/ir/Type.cpp" "src/CMakeFiles/sgpu.dir/ir/Type.cpp.o" "gcc" "src/CMakeFiles/sgpu.dir/ir/Type.cpp.o.d"
  "/root/repo/src/layout/AccessAnalyzer.cpp" "src/CMakeFiles/sgpu.dir/layout/AccessAnalyzer.cpp.o" "gcc" "src/CMakeFiles/sgpu.dir/layout/AccessAnalyzer.cpp.o.d"
  "/root/repo/src/layout/BufferLayout.cpp" "src/CMakeFiles/sgpu.dir/layout/BufferLayout.cpp.o" "gcc" "src/CMakeFiles/sgpu.dir/layout/BufferLayout.cpp.o.d"
  "/root/repo/src/parser/Lexer.cpp" "src/CMakeFiles/sgpu.dir/parser/Lexer.cpp.o" "gcc" "src/CMakeFiles/sgpu.dir/parser/Lexer.cpp.o.d"
  "/root/repo/src/parser/Parser.cpp" "src/CMakeFiles/sgpu.dir/parser/Parser.cpp.o" "gcc" "src/CMakeFiles/sgpu.dir/parser/Parser.cpp.o.d"
  "/root/repo/src/profile/ConfigSelection.cpp" "src/CMakeFiles/sgpu.dir/profile/ConfigSelection.cpp.o" "gcc" "src/CMakeFiles/sgpu.dir/profile/ConfigSelection.cpp.o.d"
  "/root/repo/src/profile/Profiler.cpp" "src/CMakeFiles/sgpu.dir/profile/Profiler.cpp.o" "gcc" "src/CMakeFiles/sgpu.dir/profile/Profiler.cpp.o.d"
  "/root/repo/src/sdf/Admissibility.cpp" "src/CMakeFiles/sgpu.dir/sdf/Admissibility.cpp.o" "gcc" "src/CMakeFiles/sgpu.dir/sdf/Admissibility.cpp.o.d"
  "/root/repo/src/sdf/RateSolver.cpp" "src/CMakeFiles/sgpu.dir/sdf/RateSolver.cpp.o" "gcc" "src/CMakeFiles/sgpu.dir/sdf/RateSolver.cpp.o.d"
  "/root/repo/src/sdf/Schedules.cpp" "src/CMakeFiles/sgpu.dir/sdf/Schedules.cpp.o" "gcc" "src/CMakeFiles/sgpu.dir/sdf/Schedules.cpp.o.d"
  "/root/repo/src/sdf/SteadyState.cpp" "src/CMakeFiles/sgpu.dir/sdf/SteadyState.cpp.o" "gcc" "src/CMakeFiles/sgpu.dir/sdf/SteadyState.cpp.o.d"
  "/root/repo/src/support/DotWriter.cpp" "src/CMakeFiles/sgpu.dir/support/DotWriter.cpp.o" "gcc" "src/CMakeFiles/sgpu.dir/support/DotWriter.cpp.o.d"
  "/root/repo/src/support/Json.cpp" "src/CMakeFiles/sgpu.dir/support/Json.cpp.o" "gcc" "src/CMakeFiles/sgpu.dir/support/Json.cpp.o.d"
  "/root/repo/src/support/MathExtras.cpp" "src/CMakeFiles/sgpu.dir/support/MathExtras.cpp.o" "gcc" "src/CMakeFiles/sgpu.dir/support/MathExtras.cpp.o.d"
  "/root/repo/src/support/Rational.cpp" "src/CMakeFiles/sgpu.dir/support/Rational.cpp.o" "gcc" "src/CMakeFiles/sgpu.dir/support/Rational.cpp.o.d"
  "/root/repo/src/support/Rng.cpp" "src/CMakeFiles/sgpu.dir/support/Rng.cpp.o" "gcc" "src/CMakeFiles/sgpu.dir/support/Rng.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
