file(REMOVE_RECURSE
  "libsgpu.a"
)
