# Empty dependencies file for sgpu.
# This may be replaced when dependencies are built.
