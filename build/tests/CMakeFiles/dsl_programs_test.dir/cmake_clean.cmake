file(REMOVE_RECURSE
  "CMakeFiles/dsl_programs_test.dir/dsl_programs_test.cpp.o"
  "CMakeFiles/dsl_programs_test.dir/dsl_programs_test.cpp.o.d"
  "dsl_programs_test"
  "dsl_programs_test.pdb"
  "dsl_programs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsl_programs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
