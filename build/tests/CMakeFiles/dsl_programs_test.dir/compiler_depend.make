# Empty compiler generated dependencies file for dsl_programs_test.
# This may be replaced when dependencies are built.
