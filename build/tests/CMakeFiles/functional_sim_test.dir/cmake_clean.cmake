file(REMOVE_RECURSE
  "CMakeFiles/functional_sim_test.dir/functional_sim_test.cpp.o"
  "CMakeFiles/functional_sim_test.dir/functional_sim_test.cpp.o.d"
  "functional_sim_test"
  "functional_sim_test.pdb"
  "functional_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/functional_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
