# Empty compiler generated dependencies file for functional_sim_test.
# This may be replaced when dependencies are built.
