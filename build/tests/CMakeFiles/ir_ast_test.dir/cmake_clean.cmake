file(REMOVE_RECURSE
  "CMakeFiles/ir_ast_test.dir/ir_ast_test.cpp.o"
  "CMakeFiles/ir_ast_test.dir/ir_ast_test.cpp.o.d"
  "ir_ast_test"
  "ir_ast_test.pdb"
  "ir_ast_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_ast_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
