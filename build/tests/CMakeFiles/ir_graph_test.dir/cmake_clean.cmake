file(REMOVE_RECURSE
  "CMakeFiles/ir_graph_test.dir/ir_graph_test.cpp.o"
  "CMakeFiles/ir_graph_test.dir/ir_graph_test.cpp.o.d"
  "ir_graph_test"
  "ir_graph_test.pdb"
  "ir_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
