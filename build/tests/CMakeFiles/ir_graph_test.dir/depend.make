# Empty dependencies file for ir_graph_test.
# This may be replaced when dependencies are built.
