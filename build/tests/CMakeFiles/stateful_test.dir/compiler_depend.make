# Empty compiler generated dependencies file for stateful_test.
# This may be replaced when dependencies are built.
