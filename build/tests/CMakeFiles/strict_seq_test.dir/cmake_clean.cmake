file(REMOVE_RECURSE
  "CMakeFiles/strict_seq_test.dir/strict_seq_test.cpp.o"
  "CMakeFiles/strict_seq_test.dir/strict_seq_test.cpp.o.d"
  "strict_seq_test"
  "strict_seq_test.pdb"
  "strict_seq_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strict_seq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
