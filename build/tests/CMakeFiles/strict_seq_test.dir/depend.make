# Empty dependencies file for strict_seq_test.
# This may be replaced when dependencies are built.
