# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/ir_ast_test[1]_include.cmake")
include("/root/repo/build/tests/ir_graph_test[1]_include.cmake")
include("/root/repo/build/tests/interpreter_test[1]_include.cmake")
include("/root/repo/build/tests/sdf_test[1]_include.cmake")
include("/root/repo/build/tests/ilp_test[1]_include.cmake")
include("/root/repo/build/tests/layout_test[1]_include.cmake")
include("/root/repo/build/tests/gpusim_test[1]_include.cmake")
include("/root/repo/build/tests/profile_test[1]_include.cmake")
include("/root/repo/build/tests/core_schedule_test[1]_include.cmake")
include("/root/repo/build/tests/functional_sim_test[1]_include.cmake")
include("/root/repo/build/tests/codegen_test[1]_include.cmake")
include("/root/repo/build/tests/benchmarks_test[1]_include.cmake")
include("/root/repo/build/tests/compiler_test[1]_include.cmake")
include("/root/repo/build/tests/stateful_test[1]_include.cmake")
include("/root/repo/build/tests/random_graph_test[1]_include.cmake")
include("/root/repo/build/tests/strict_seq_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/dsl_programs_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
