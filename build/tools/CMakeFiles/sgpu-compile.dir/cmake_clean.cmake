file(REMOVE_RECURSE
  "CMakeFiles/sgpu-compile.dir/sgpu-compile.cpp.o"
  "CMakeFiles/sgpu-compile.dir/sgpu-compile.cpp.o.d"
  "sgpu-compile"
  "sgpu-compile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgpu-compile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
