# Empty dependencies file for sgpu-compile.
# This may be replaced when dependencies are built.
