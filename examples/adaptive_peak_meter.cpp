//===- examples/adaptive_peak_meter.cpp - Stateful filters on the CPU ----------===//
//
// Demonstrates the stateful-filter extension (the paper's Section VII
// future-work item): a signal chain with a stateful peak tracker and a
// stateful IIR smoother. Stateful filters execute on the sequential
// interpreter; compileForGpu correctly refuses them with the paper's
// stateless-only restriction, which this example also shows.
//
// Run:  ./adaptive_peak_meter
//
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"
#include "ir/FilterBuilder.h"
#include "ir/Interpreter.h"
#include "support/Rng.h"

#include <cmath>
#include <cstdio>

using namespace sgpu;

/// Peak tracker with decay: peak = max(|x|, peak * 0.99). Stateful.
static FilterPtr makePeakTracker() {
  FilterBuilder B("PeakTracker", TokenType::Float, TokenType::Float);
  B.setRates(1, 1);
  const VarDecl *Peak = B.stateScalarF("peak", 0.0);
  const VarDecl *X = B.declVar("x", B.callAbs(B.pop()));
  B.assign(Peak, B.callMax(B.ref(X), B.mul(B.ref(Peak), B.litF(0.99))));
  B.push(B.ref(Peak));
  return B.build();
}

/// One-pole IIR smoother: y += 0.125 * (x - y). Stateful.
static FilterPtr makeSmoother() {
  FilterBuilder B("Smoother", TokenType::Float, TokenType::Float);
  B.setRates(1, 1);
  const VarDecl *Y = B.stateScalarF("y", 0.0);
  B.assign(Y, B.add(B.ref(Y),
                    B.mul(B.sub(B.pop(), B.ref(Y)), B.litF(0.125))));
  B.push(B.ref(Y));
  return B.build();
}

int main() {
  std::vector<StreamPtr> Parts;
  Parts.push_back(filterStream(makePeakTracker()));
  Parts.push_back(filterStream(makeSmoother()));
  StreamGraph G = flatten(*pipelineStream(std::move(Parts)));

  std::printf("Graph has stateful filters: %s\n",
              G.hasStatefulFilter() ? "yes" : "no");

  // The GPU compiler enforces the paper's restriction.
  CompileOptions Options;
  Options.Sched.Pmax = 4;
  if (!compileForGpu(G, Options))
    std::printf("compileForGpu: rejected (stateless filters only, "
                "paper Section II-B)\n\n");

  // The sequential interpreter runs it: feed a burst followed by
  // silence and watch the smoothed peak meter decay.
  GraphInterpreter GI(G);
  Rng R(5);
  const int N = 64;
  for (int I = 0; I < N; ++I) {
    double X = I < 16 ? R.nextFloat(1.0f) : 0.0;
    GI.feedInput({Scalar::makeFloat(X)});
  }
  if (!GI.runSteadyState({1, 1}, N)) {
    std::fprintf(stderr, "execution failed\n");
    return 1;
  }

  std::printf("Smoothed peak level (burst for 16 samples, then "
              "silence):\n");
  for (int I = 0; I < N; I += 8) {
    double V = GI.output()[I].asFloat();
    int Bars = static_cast<int>(V * 60.0);
    std::printf("  t=%2d  %6.3f  ", I, V);
    for (int J = 0; J < Bars; ++J)
      std::putchar('#');
    std::putchar('\n');
  }
  double Early = GI.output()[20].asFloat();
  double Late = GI.output()[N - 1].asFloat();
  std::printf("\nDecay check: level(t=20) = %.3f > level(t=%d) = %.3f\n",
              Early, N - 1, Late);
  return Late < Early ? 0 : 1;
}
