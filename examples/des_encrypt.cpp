//===- examples/des_encrypt.cpp - Bit-stream DES on the GPU model --------------===//
//
// Streams plaintext blocks (as bit tokens) through the DES benchmark
// graph, executes the software-pipelined schedule on the functional GPU
// simulator, and cross-checks every output bit against the sequential
// reference — demonstrating that a 16-round Feistel pipeline survives
// the out-of-order, cross-SM software-pipelined execution bit-exactly.
//
// Run:  ./des_encrypt
//
//===----------------------------------------------------------------------===//

#include "benchmarks/Registry.h"
#include "core/Compiler.h"
#include "gpusim/FunctionalSim.h"
#include "support/Rng.h"

#include <cstdio>

using namespace sgpu;
using namespace sgpu::bench;

int main() {
  StreamGraph G = flatten(*buildDes());
  std::printf("DES graph: %d nodes in a 16-round Feistel pipeline\n",
              G.numNodes());

  CompileOptions Options;
  Options.Coarsening = 4;
  Options.Sched.Pmax = 16;
  std::optional<CompileReport> R = compileForGpu(G, Options);
  if (!R) {
    std::fprintf(stderr, "compilation failed\n");
    return 1;
  }
  std::printf("SWP schedule: II=%.1f cycles, %zu instances, speedup "
              "%.2fx\n",
              R->SchedStats.FinalII, R->Schedule.Instances.size(),
              R->Speedup);

  auto SS = SteadyState::compute(G);
  SwpFunctionalSim Sim(G, *SS, R->Config, R->GSS, R->Schedule);
  int64_t Iterations = 1;
  int64_t Need = Sim.inputTokensNeeded(Iterations);
  std::printf("Encrypting %lld plaintext bits (%lld 64-bit blocks)...\n",
              static_cast<long long>(Need),
              static_cast<long long>(Need / 64));

  Rng Rand(99);
  std::vector<Scalar> Input;
  for (int64_t I = 0; I < Need; ++I)
    Input.push_back(Scalar::makeInt(Rand.nextInt(2)));

  if (auto Err = checkScheduleAgainstReference(G, *SS, R->Config, R->GSS,
                                               R->Schedule, Input,
                                               Iterations)) {
    std::fprintf(stderr, "mismatch: %s\n", Err->c_str());
    return 1;
  }
  FunctionalRunResult Run = Sim.run(Input, Iterations);
  std::printf("All %zu ciphertext bits match the sequential reference.\n",
              Run.Output.size());
  std::printf("First 64 ciphertext bits: ");
  for (int I = 0; I < 64 && I < static_cast<int>(Run.Output.size()); ++I)
    std::printf("%lld", static_cast<long long>(Run.Output[I].asInt()));
  std::printf("\n");
  return 0;
}
