//===- examples/fm_radio_pipeline.cpp - The paper's FMRadio workload ----------===//
//
// Compiles the FMRadio benchmark (the paper's best case: 22 peeking
// filters, working sets that fit shared memory) under all three
// execution strategies and prints the Figure 10-style comparison for
// this one program, plus the generated schedule.
//
// Run:  ./fm_radio_pipeline
//
//===----------------------------------------------------------------------===//

#include "benchmarks/Registry.h"
#include "core/Compiler.h"

#include <cstdio>

using namespace sgpu;
using namespace sgpu::bench;

int main() {
  const BenchmarkSpec *Spec = findBenchmark("FMRadio");
  if (!Spec) {
    std::fprintf(stderr, "FMRadio benchmark not registered\n");
    return 1;
  }

  std::printf("FMRadio: %s\n", Spec->Description.c_str());
  StreamGraph G = flatten(*Spec->Build());
  std::printf("Flattened: %d nodes (%d filters, %d peeking)\n\n",
              G.numNodes(), G.numFilterNodes(), G.numPeekingFilters());

  for (Strategy S :
       {Strategy::SwpNoCoalesce, Strategy::Serial, Strategy::Swp}) {
    StreamGraph Graph = flatten(*Spec->Build());
    CompileOptions Options;
    Options.Strat = S;
    Options.Coarsening = 8;
    Options.Sched.Pmax = 16;
    std::optional<CompileReport> R = compileForGpu(Graph, Options);
    if (!R) {
      std::printf("%-7s: compilation failed\n", strategyName(S));
      continue;
    }
    std::printf("%-7s: %8.2fx speedup  (%.0f GPU cycles/iter, buffers "
                "%lld bytes)\n",
                strategyName(S), R->Speedup,
                R->GpuCyclesPerBaseIteration,
                static_cast<long long>(R->BufferBytes));
  }

  // Show where the SWP schedule placed the pipeline.
  StreamGraph Graph = flatten(*Spec->Build());
  CompileOptions Options;
  Options.Coarsening = 8;
  Options.Sched.Pmax = 16;
  std::optional<CompileReport> R = compileForGpu(Graph, Options);
  if (!R)
    return 1;
  std::printf("\nSWP schedule at II=%.1f (stage span %lld):\n",
              R->SchedStats.FinalII,
              static_cast<long long>(R->Schedule.stageSpan()));
  for (int P = 0; P < R->Schedule.Pmax; ++P) {
    auto Order = R->Schedule.smOrder(P);
    if (Order.empty())
      continue;
    std::printf("  SM%-2d:", P);
    for (const ScheduledInstance *SI : Order)
      std::printf(" %s[k%lld,f%lld]", Graph.node(SI->Node).Name.c_str(),
                  static_cast<long long>(SI->K),
                  static_cast<long long>(SI->F));
    std::printf("\n");
  }
  return 0;
}
