//===- examples/matrix_pipeline.cpp - MatrixMult end to end --------------------===//
//
// The paper's MatrixMult benchmark is the case where the Serial scheme
// edges out software pipelining (bandwidth-hungry splitters/joiners with
// little compute between them). This example compiles both, reproduces
// that comparison, and verifies the computed products against a plain
// C++ matrix multiply.
//
// Run:  ./matrix_pipeline
//
//===----------------------------------------------------------------------===//

#include "benchmarks/Registry.h"
#include "core/Compiler.h"
#include "ir/Interpreter.h"
#include "support/Rng.h"

#include <cmath>
#include <cstdio>

using namespace sgpu;
using namespace sgpu::bench;

int main() {
  constexpr int N = 4;
  StreamGraph G = flatten(*buildMatrixMult());
  auto SS = SteadyState::compute(G);
  if (!SS) {
    std::fprintf(stderr, "rate solving failed\n");
    return 1;
  }

  // Feed one block pair and check the product.
  Rng R(7);
  std::vector<double> A(N * N), B(N * N);
  GraphInterpreter GI(G);
  std::vector<Scalar> Input;
  for (double &V : A) {
    V = R.nextFloat(1.0f);
    Input.push_back(Scalar::makeFloat(V));
  }
  for (double &V : B) {
    V = R.nextFloat(1.0f);
    Input.push_back(Scalar::makeFloat(V));
  }
  GI.feedInput(Input);
  if (!GI.runSteadyState(SS->repetitions(), 1)) {
    std::fprintf(stderr, "execution deadlocked\n");
    return 1;
  }
  double MaxErr = 0.0;
  for (int Row = 0; Row < N; ++Row)
    for (int Col = 0; Col < N; ++Col) {
      double Want = 0.0;
      for (int K = 0; K < N; ++K)
        Want += A[Row * N + K] * B[K * N + Col];
      MaxErr = std::max(
          MaxErr, std::fabs(GI.output()[Row * N + Col].asFloat() - Want));
    }
  std::printf("MatrixMult 4x4 correctness: max |error| = %.3g\n\n",
              MaxErr);

  // Compare SWP8 against Serial (the paper: Serial slightly ahead here).
  for (Strategy S : {Strategy::Swp, Strategy::Serial}) {
    StreamGraph Graph = flatten(*buildMatrixMult());
    CompileOptions Options;
    Options.Strat = S;
    Options.Coarsening = 8;
    Options.Sched.Pmax = 16;
    std::optional<CompileReport> Rep = compileForGpu(Graph, Options);
    if (!Rep) {
      std::printf("%-7s: compilation failed\n", strategyName(S));
      continue;
    }
    std::printf("%-7s: %8.2fx speedup over the CPU model\n",
                strategyName(S), Rep->Speedup);
  }
  return MaxErr < 1e-9 ? 0 : 1;
}
