//===- examples/quickstart.cpp - Five-minute tour of the library -------------===//
//
// Builds a tiny StreamIt program with the builder DSL, flattens it,
// compiles it for the simulated GeForce 8800 with the full paper pipeline
// (profile -> Alg. 7 -> ILP software pipelining -> buffer layout), runs
// it functionally against the sequential reference, and prints the
// generated CUDA kernel.
//
// Run:  ./quickstart
//
//===----------------------------------------------------------------------===//

#include "codegen/CudaEmitter.h"
#include "core/Compiler.h"
#include "ir/FilterBuilder.h"
#include "gpusim/FunctionalSim.h"
#include "support/Rng.h"

#include <cstdio>

using namespace sgpu;

/// A moving-average low-pass filter: peeks an 8-token window, pops one,
/// pushes the window mean — the classic StreamIt intro example.
static FilterPtr makeMovingAverage(int Window) {
  FilterBuilder B("MovingAverage", TokenType::Float, TokenType::Float);
  B.setRates(/*Pop=*/1, /*Push=*/1, /*Peek=*/Window);
  const VarDecl *Sum = B.declVar("sum", B.litF(0.0));
  const VarDecl *I = B.beginFor("i", B.litI(0), B.litI(Window));
  B.assign(Sum, B.add(B.ref(Sum), B.peek(B.ref(I))));
  B.endFor();
  B.push(B.div(B.ref(Sum), B.litF(Window)));
  B.popDiscard();
  return B.build();
}

/// Amplifier: pop 1, push 1, scale by a constant field.
static FilterPtr makeAmplifier(double Gain) {
  FilterBuilder B("Amplifier", TokenType::Float, TokenType::Float);
  B.setRates(1, 1);
  const VarDecl *G = B.fieldScalarF("gain", Gain);
  B.push(B.mul(B.pop(), B.ref(G)));
  return B.build();
}

int main() {
  // 1. Compose the program: input -> moving average -> amplifier.
  std::vector<StreamPtr> Stages;
  Stages.push_back(filterStream(makeMovingAverage(8)));
  Stages.push_back(filterStream(makeAmplifier(2.0)));
  StreamPtr Program = pipelineStream(std::move(Stages));

  // 2. Flatten to the multirate stream graph the compiler consumes.
  StreamGraph G = flatten(*Program);
  std::printf("Flattened graph: %d nodes, %d edges, %d peeking filter\n",
              G.numNodes(), G.numEdges(), G.numPeekingFilters());

  // 3. Compile: profiling, Algorithm 7 configuration selection, the
  //    Section III ILP, and the shuffled buffer layout.
  CompileOptions Options;
  Options.Sched.Pmax = 4;
  Options.Coarsening = 8;
  std::optional<CompileReport> Report = compileForGpu(G, Options);
  if (!Report) {
    std::fprintf(stderr, "compilation failed\n");
    return 1;
  }
  std::printf("Execution config: regs<=%d, %d-thread blocks\n",
              Report->Config.RegLimit, Report->Config.NumThreads);
  std::printf("Schedule: II=%.1f cycles (MII %.1f, relaxed %.2f%%), "
              "%zu instances on %d SMs\n",
              Report->SchedStats.FinalII, Report->SchedStats.MII,
              Report->SchedStats.RelaxationPercent,
              Report->Schedule.Instances.size(), Report->Schedule.Pmax);
  std::printf("Estimated speedup over 1-thread CPU: %.2fx\n",
              Report->Speedup);

  // 4. Validate the schedule functionally against the sequential
  //    reference interpreter (bit-exact).
  auto SS = SteadyState::compute(G);
  SwpFunctionalSim Sim(G, *SS, Report->Config, Report->GSS,
                       Report->Schedule);
  Rng R(2026);
  std::vector<Scalar> Input;
  for (int64_t I = 0, E = Sim.inputTokensNeeded(2); I < E; ++I)
    Input.push_back(Scalar::makeFloat(R.nextFloat(1.0f)));
  if (auto Err = checkScheduleAgainstReference(
          G, *SS, Report->Config, Report->GSS, Report->Schedule, Input,
          2)) {
    std::fprintf(stderr, "functional check failed: %s\n", Err->c_str());
    return 1;
  }
  std::printf("Functional check: GPU-scheduled output == reference\n\n");

  // 5. Show the generated CUDA kernel (first lines).
  CudaEmitOptions EmitOpts;
  EmitOpts.Coarsening = Options.Coarsening;
  std::string Cuda = emitCudaSource(G, *SS, Report->Config, Report->GSS,
                                    Report->Schedule, EmitOpts);
  std::printf("Generated CUDA (%zu bytes), excerpt:\n", Cuda.size());
  size_t Shown = 0;
  for (size_t I = 0; I < Cuda.size() && Shown < 30; ++I) {
    std::putchar(Cuda[I]);
    if (Cuda[I] == '\n')
      ++Shown;
  }
  std::printf("...\n");
  return 0;
}
