//===- benchmarks/Bitonic.cpp - Iterative bitonic sorting network -----------===//
//
// Batcher's bitonic network for 8 keys. Every stage pairs elements at a
// fixed distance: a permutation brings each pair adjacent, a round-robin
// split-join runs the four compare-exchange filters in parallel, and the
// inverse permutation restores element order — the flattened shape the
// StreamIt Bitonic benchmark produces.
//
//===----------------------------------------------------------------------===//

#include "benchmarks/Common.h"
#include "benchmarks/Registry.h"

#include <cassert>

using namespace sgpu;
using namespace sgpu::bench;

namespace {

constexpr int SortN = 8;

/// One network stage: compare-exchange all pairs (i, i^Dist) with the
/// direction decided by bit K of the lower index.
StreamPtr makeStage(int Stage, int K, int Dist) {
  // Enumerate pairs in lower-index order.
  std::vector<std::pair<int, int>> Pairs;
  std::vector<bool> Ascending;
  for (int I = 0; I < SortN; ++I) {
    int L = I ^ Dist;
    if (L > I) {
      Pairs.push_back({I, L});
      Ascending.push_back((I & K) == 0);
    }
  }
  assert(Pairs.size() == SortN / 2 && "stage must cover all elements");

  // Forward permutation: out[2m] = in[Pairs[m].first], out[2m+1] = second.
  // After it, position p holds original element Fwd[p]; the restoring
  // permutation therefore reads position i's element from Restore[i],
  // the index of i within Fwd.
  std::vector<int64_t> Fwd(SortN);
  for (size_t M = 0; M < Pairs.size(); ++M) {
    Fwd[2 * M] = Pairs[M].first;
    Fwd[2 * M + 1] = Pairs[M].second;
  }
  std::vector<int64_t> Restore(SortN);
  for (int P = 0; P < SortN; ++P)
    Restore[Fwd[P]] = P;

  std::string Tag = "s" + std::to_string(Stage);
  std::vector<StreamPtr> Branches;
  std::vector<int64_t> W2(Pairs.size(), 2);
  for (size_t M = 0; M < Pairs.size(); ++M)
    Branches.push_back(filterStream(makeCompareExchange(
        "CmpEx_" + Tag + "_" + std::to_string(M), Ascending[M])));

  std::vector<StreamPtr> Stage3;
  Stage3.push_back(
      filterStream(makePermute("Pair_" + Tag, TokenType::Int, Fwd)));
  Stage3.push_back(roundRobinSplitJoin(W2, std::move(Branches), W2));
  Stage3.push_back(
      filterStream(makePermute("Unpair_" + Tag, TokenType::Int, Restore)));
  return pipelineStream(std::move(Stage3));
}

} // namespace

StreamPtr sgpu::bench::buildBitonic() {
  std::vector<StreamPtr> Stages;
  int Stage = 0;
  for (int K = 2; K <= SortN; K <<= 1)
    for (int J = K >> 1; J > 0; J >>= 1)
      Stages.push_back(makeStage(Stage++, K, J));
  return pipelineStream(std::move(Stages));
}
