//===- benchmarks/BitonicRec.cpp - Recursive bitonic sorter -----------------===//
//
// The recursive formulation of the StreamIt BitonicRec benchmark:
// sort(n) splits into an ascending and a descending half-sort feeding a
// bitonic merger; the merger compare-exchanges elements n/2 apart and
// recurses into the two halves. The flattened graph differs from the
// iterative network (more, smaller split-joins), which is exactly why
// the paper evaluates both variants.
//
//===----------------------------------------------------------------------===//

#include "benchmarks/Common.h"
#include "benchmarks/Registry.h"

using namespace sgpu;
using namespace sgpu::bench;

namespace {

constexpr int SortN = 8;

int NameCounter = 0;

std::string uniq(const std::string &Base) {
  return Base + "_" + std::to_string(NameCounter++);
}

/// Compare-exchange of elements (i, i + n/2) for all i < n/2: the
/// round-robin split de-interleaves halves pairwise.
StreamPtr makeMergeStage(int N, bool Ascending) {
  // Pairing permutation: out[2m] = in[m], out[2m+1] = in[m + N/2].
  std::vector<int64_t> Fwd(N), Restore(N);
  for (int M = 0; M < N / 2; ++M) {
    Fwd[2 * M] = M;
    Fwd[2 * M + 1] = M + N / 2;
  }
  for (int P = 0; P < N; ++P)
    Restore[Fwd[P]] = P;

  std::vector<StreamPtr> Branches;
  std::vector<int64_t> W2(N / 2, 2);
  for (int M = 0; M < N / 2; ++M)
    Branches.push_back(
        filterStream(makeCompareExchange(uniq("RCmpEx"), Ascending)));

  std::vector<StreamPtr> Parts;
  Parts.push_back(
      filterStream(makePermute(uniq("RPair"), TokenType::Int, Fwd)));
  Parts.push_back(roundRobinSplitJoin(W2, std::move(Branches), W2));
  Parts.push_back(
      filterStream(makePermute(uniq("RUnpair"), TokenType::Int, Restore)));
  return pipelineStream(std::move(Parts));
}

/// Bitonic merge: one compare-exchange stage, then merge both halves.
StreamPtr makeMerge(int N, bool Ascending) {
  if (N == 2)
    return filterStream(makeCompareExchange(uniq("RCmpEx"), Ascending));
  std::vector<StreamPtr> Parts;
  Parts.push_back(makeMergeStage(N, Ascending));
  std::vector<StreamPtr> Halves;
  Halves.push_back(makeMerge(N / 2, Ascending));
  Halves.push_back(makeMerge(N / 2, Ascending));
  std::vector<int64_t> WH = {N / 2, N / 2};
  Parts.push_back(roundRobinSplitJoin(WH, std::move(Halves), WH));
  return pipelineStream(std::move(Parts));
}

/// Bitonic sort: sort halves in opposite directions, then merge.
StreamPtr makeSort(int N, bool Ascending) {
  if (N == 2)
    return filterStream(makeCompareExchange(uniq("RCmpEx"), Ascending));
  std::vector<StreamPtr> Halves;
  Halves.push_back(makeSort(N / 2, true));
  Halves.push_back(makeSort(N / 2, false));
  std::vector<int64_t> WH = {N / 2, N / 2};
  std::vector<StreamPtr> Parts;
  Parts.push_back(roundRobinSplitJoin(WH, std::move(Halves), WH));
  Parts.push_back(makeMerge(N, Ascending));
  return pipelineStream(std::move(Parts));
}

} // namespace

StreamPtr sgpu::bench::buildBitonicRec() {
  NameCounter = 0;
  return makeSort(SortN, /*Ascending=*/true);
}
