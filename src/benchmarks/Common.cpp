//===- benchmarks/Common.cpp - Shared benchmark building blocks -------------===//

#include "benchmarks/Common.h"

#include <cmath>

using namespace sgpu;
using namespace sgpu::bench;

FilterPtr sgpu::bench::makeIdentity(const std::string &Name, TokenType Ty) {
  FilterBuilder B(Name, Ty, Ty);
  B.setRates(1, 1);
  B.push(B.pop());
  return B.build();
}

FilterPtr sgpu::bench::makePermute(const std::string &Name, TokenType Ty,
                                   const std::vector<int64_t> &Perm) {
  int64_t N = static_cast<int64_t>(Perm.size());
  FilterBuilder B(Name, Ty, Ty);
  B.setRates(N, N, N);
  const VarDecl *P = B.fieldArrayI("perm", Perm);
  const VarDecl *I = B.beginFor("i", B.litI(0), B.litI(N));
  B.push(B.peek(B.index(P, B.ref(I))));
  B.endFor();
  B.popDiscard(N);
  return B.build();
}

FilterPtr sgpu::bench::makeCompareExchange(const std::string &Name,
                                           bool Ascending) {
  FilterBuilder B(Name, TokenType::Int, TokenType::Int);
  B.setRates(2, 2);
  const VarDecl *A = B.declVar("a", B.pop());
  const VarDecl *C = B.declVar("b", B.pop());
  if (Ascending) {
    B.push(B.callMin(B.ref(A), B.ref(C)));
    B.push(B.callMax(B.ref(A), B.ref(C)));
  } else {
    B.push(B.callMax(B.ref(A), B.ref(C)));
    B.push(B.callMin(B.ref(A), B.ref(C)));
  }
  return B.build();
}

FilterPtr sgpu::bench::makeFir(const std::string &Name,
                               const std::vector<double> &Coef,
                               int64_t Decimation) {
  int64_t Taps = static_cast<int64_t>(Coef.size());
  FilterBuilder B(Name, TokenType::Float, TokenType::Float);
  B.setRates(Decimation, 1, Taps);
  const VarDecl *H = B.fieldArrayF("h", Coef);
  const VarDecl *Sum = B.declVar("sum", B.litF(0.0));
  const VarDecl *I = B.beginFor("i", B.litI(0), B.litI(Taps));
  B.assign(Sum, B.add(B.ref(Sum),
                      B.mul(B.index(H, B.ref(I)), B.peek(B.ref(I)))));
  B.endFor();
  B.push(B.ref(Sum));
  B.popDiscard(Decimation);
  return B.build();
}

std::vector<double> sgpu::bench::lowPassCoefficients(double Rate,
                                                     double Cutoff,
                                                     int Taps,
                                                     int Decimation) {
  // Windowed-sinc, as in the StreamIt FMRadio/Filterbank sources.
  std::vector<double> Coef(Taps);
  double M = Taps - 1;
  double W = 2.0 * 3.14159265358979323846 * Cutoff / Rate;
  for (int I = 0; I < Taps; ++I) {
    double H = I - M / 2.0 == 0.0
                   ? W / 3.14159265358979323846
                   : std::sin(W * (I - M / 2.0)) /
                         (3.14159265358979323846 * (I - M / 2.0));
    // Hamming window.
    Coef[I] = H * (0.54 - 0.46 * std::cos(2.0 * 3.14159265358979323846 *
                                          I / M));
    Coef[I] /= Decimation + 1;
  }
  return Coef;
}

FilterPtr sgpu::bench::makeWindowAdder(const std::string &Name,
                                       int64_t Window) {
  FilterBuilder B(Name, TokenType::Float, TokenType::Float);
  B.setRates(Window, 1);
  const VarDecl *Sum = B.declVar("sum", B.litF(0.0));
  const VarDecl *I = B.beginFor("i", B.litI(0), B.litI(Window));
  (void)I;
  B.assign(Sum, B.add(B.ref(Sum), B.pop()));
  B.endFor();
  B.push(B.ref(Sum));
  return B.build();
}

FilterPtr sgpu::bench::makeDownSampler(const std::string &Name, TokenType Ty,
                                       int64_t N) {
  FilterBuilder B(Name, Ty, Ty);
  B.setRates(N, 1);
  B.push(B.pop());
  B.popDiscard(N - 1);
  return B.build();
}

FilterPtr sgpu::bench::makeUpSampler(const std::string &Name, TokenType Ty,
                                     int64_t N) {
  FilterBuilder B(Name, Ty, Ty);
  B.setRates(1, N);
  B.push(B.pop());
  for (int64_t I = 1; I < N; ++I)
    B.push(Ty == TokenType::Int ? B.litI(0) : B.litF(0.0));
  return B.build();
}

FilterPtr sgpu::bench::makeGain(const std::string &Name, double Gain) {
  FilterBuilder B(Name, TokenType::Float, TokenType::Float);
  B.setRates(1, 1);
  B.push(B.mul(B.pop(), B.litF(Gain)));
  return B.build();
}
