//===- benchmarks/Common.h - Shared benchmark building blocks ---*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Filter constructors shared by the StreamIt 2.1.1 benchmark ports of
/// Table I: identity, permutation (peek-reorder-pop), FIR low-pass,
/// compare-exchange, adders and samplers.
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_BENCHMARKS_COMMON_H
#define SGPU_BENCHMARKS_COMMON_H

#include "ir/FilterBuilder.h"
#include "ir/Stream.h"

#include <string>
#include <vector>

namespace sgpu {
namespace bench {

/// pop 1 / push 1 pass-through.
FilterPtr makeIdentity(const std::string &Name, TokenType Ty);

/// pop N / push N window permutation: out[i] = in[Perm[i]].
FilterPtr makePermute(const std::string &Name, TokenType Ty,
                      const std::vector<int64_t> &Perm);

/// Bitonic compare-exchange: pop 2, push (min, max) when Ascending else
/// (max, min).
FilterPtr makeCompareExchange(const std::string &Name, bool Ascending);

/// FIR filter: peek Taps, pop Decimation, push 1; output = sum of
/// Coef[i] * peek(i).
FilterPtr makeFir(const std::string &Name, const std::vector<double> &Coef,
                  int64_t Decimation = 1);

/// Standard low-pass FIR coefficient window (used by Filterbank/FMRadio).
std::vector<double> lowPassCoefficients(double Rate, double Cutoff,
                                        int Taps, int Decimation = 0);

/// pop Window, push 1: sum of a window (joiner-side combiner).
FilterPtr makeWindowAdder(const std::string &Name, int64_t Window);

/// pop N, push 1 (keep the first of every N tokens).
FilterPtr makeDownSampler(const std::string &Name, TokenType Ty, int64_t N);

/// pop 1, push N (the value followed by N-1 zeros).
FilterPtr makeUpSampler(const std::string &Name, TokenType Ty, int64_t N);

/// pop 1, push 1 scale-by-constant.
FilterPtr makeGain(const std::string &Name, double Gain);

} // namespace bench
} // namespace sgpu

#endif // SGPU_BENCHMARKS_COMMON_H
