//===- benchmarks/Dct.cpp - 8x8 two-dimensional DCT -------------------------===//
//
// The separable 2D DCT of the StreamIt DCT benchmark: a round-robin
// split-join applies the 1D 8-point DCT to the eight rows of each 8x8
// block in parallel, a transpose permutation swaps rows and columns, a
// second split-join transforms the columns, and a final transpose
// restores block order. The splitters/joiners move whole rows and do
// little work — the "phased" bandwidth-hungry structure the paper calls
// out when discussing why Serial edges out SWP here.
//
//===----------------------------------------------------------------------===//

#include "benchmarks/Common.h"
#include "benchmarks/Registry.h"

#include <cmath>

using namespace sgpu;
using namespace sgpu::bench;

namespace {

constexpr int Dim = 8;

/// 1D 8-point DCT-II as a matrix multiply against a coefficient field.
FilterPtr makeDct1D(const std::string &Name) {
  std::vector<double> C(Dim * Dim);
  for (int K = 0; K < Dim; ++K)
    for (int J = 0; J < Dim; ++J) {
      double Scale = K == 0 ? std::sqrt(1.0 / Dim) : std::sqrt(2.0 / Dim);
      C[K * Dim + J] =
          Scale * std::cos((2.0 * J + 1.0) * K * 3.14159265358979323846 /
                           (2.0 * Dim));
    }

  FilterBuilder B(Name, TokenType::Float, TokenType::Float);
  B.setRates(Dim, Dim, Dim);
  const VarDecl *Coef = B.fieldArrayF("c", C);
  const VarDecl *K = B.beginFor("k", B.litI(0), B.litI(Dim));
  const VarDecl *Sum = B.declVar("sum", B.litF(0.0));
  const VarDecl *J = B.beginFor("j", B.litI(0), B.litI(Dim));
  B.assign(Sum,
           B.add(B.ref(Sum),
                 B.mul(B.index(Coef, B.add(B.mul(B.ref(K), B.litI(Dim)),
                                           B.ref(J))),
                       B.peek(B.ref(J)))));
  B.endFor();
  B.push(B.ref(Sum));
  B.endFor();
  B.popDiscard(Dim);
  return B.build();
}

/// Block transpose as a 64-element permutation.
FilterPtr makeTranspose(const std::string &Name) {
  std::vector<int64_t> Perm(Dim * Dim);
  for (int R = 0; R < Dim; ++R)
    for (int C = 0; C < Dim; ++C)
      Perm[C * Dim + R] = R * Dim + C;
  return makePermute(Name, TokenType::Float, Perm);
}

/// One transform pass: rows through eight parallel 1D DCTs.
StreamPtr makePass(const std::string &Tag) {
  std::vector<StreamPtr> Rows;
  std::vector<int64_t> W(Dim, Dim);
  for (int R = 0; R < Dim; ++R)
    Rows.push_back(filterStream(
        makeDct1D("DCT1D_" + Tag + "_" + std::to_string(R))));
  return roundRobinSplitJoin(W, std::move(Rows), W);
}

} // namespace

StreamPtr sgpu::bench::buildDct() {
  std::vector<StreamPtr> Parts;
  Parts.push_back(makePass("rows"));
  Parts.push_back(filterStream(makeTranspose("Transpose_a")));
  Parts.push_back(makePass("cols"));
  Parts.push_back(filterStream(makeTranspose("Transpose_b")));
  return pipelineStream(std::move(Parts));
}
