//===- benchmarks/Des.cpp - DES encryption over bit streams -----------------===//
//
// The StreamIt DES benchmark operates on streams of bit tokens (one int
// per bit): an initial permutation, sixteen Feistel rounds (expansion,
// round-key XOR, S-box substitution, P-permutation, half-swap) and a
// final permutation. Round keys, the expansion table and the S-boxes are
// deterministic synthetic stand-ins with the exact rates and table sizes
// of the real cipher (noted in DESIGN.md): the compute/communication
// shape — table-driven bit shuffling with zero floating point — is what
// the evaluation depends on, not the cryptographic values.
//
//===----------------------------------------------------------------------===//

#include "benchmarks/Common.h"
#include "benchmarks/Registry.h"

using namespace sgpu;
using namespace sgpu::bench;

namespace {

constexpr int Block = 64;
constexpr int Half = 32;
constexpr int ExpandBits = 48;

/// One Feistel round: (L, R) -> (R, L ^ f(R, K_round)).
FilterPtr makeFeistelRound(int Round) {
  // Synthetic, deterministic tables with the real structure.
  std::vector<int64_t> Expand(ExpandBits);
  for (int I = 0; I < ExpandBits; ++I)
    Expand[I] = (I * 31 + Round * 5) % Half;
  std::vector<int64_t> Key(ExpandBits);
  for (int I = 0; I < ExpandBits; ++I)
    Key[I] = ((I * 2654435761u + Round * 40503u) >> 7) & 1;
  std::vector<int64_t> Sbox(8 * 64);
  for (int B = 0; B < 8; ++B)
    for (int Idx = 0; Idx < 64; ++Idx)
      Sbox[B * 64 + Idx] =
          ((Idx * 2654435761u + B * 97u + Round * 1013u) >> 11) & 15;
  std::vector<int64_t> Pperm(Half);
  for (int I = 0; I < Half; ++I)
    Pperm[I] = (I * 13 + Round) % Half; // 13 is coprime to 32.

  FilterBuilder B("Feistel_" + std::to_string(Round), TokenType::Int,
                  TokenType::Int);
  B.setRates(Block, Block, Block);
  const VarDecl *E = B.fieldArrayI("etab", Expand);
  const VarDecl *K = B.fieldArrayI("key", Key);
  const VarDecl *S = B.fieldArrayI("sbox", Sbox);
  const VarDecl *P = B.fieldArrayI("pperm", Pperm);

  const VarDecl *L = B.declArray("l", TokenType::Int, Half);
  const VarDecl *R = B.declArray("r", TokenType::Int, Half);
  const VarDecl *X = B.declArray("x", TokenType::Int, ExpandBits);
  const VarDecl *F = B.declArray("f", TokenType::Int, Half);

  // Load the halves through peeks.
  {
    const VarDecl *I = B.beginFor("i", B.litI(0), B.litI(Half));
    B.assignIndex(L, B.ref(I), B.peek(B.ref(I)));
    B.assignIndex(R, B.ref(I), B.peek(B.add(B.ref(I), B.litI(Half))));
    B.endFor();
  }
  // Expansion and round-key XOR: x[j] = r[etab[j]] ^ key[j].
  {
    const VarDecl *J = B.beginFor("j", B.litI(0), B.litI(ExpandBits));
    B.assignIndex(X, B.ref(J),
                  B.bitXor(B.index(R, B.index(E, B.ref(J))),
                           B.index(K, B.ref(J))));
    B.endFor();
  }
  // S-boxes: each consumes 6 bits, produces 4.
  {
    const VarDecl *Bx = B.beginFor("b", B.litI(0), B.litI(8));
    const VarDecl *Idx = B.declVar("idx", B.litI(0));
    const VarDecl *T = B.beginFor("t", B.litI(0), B.litI(6));
    B.assign(Idx, B.add(B.mul(B.ref(Idx), B.litI(2)),
                        B.index(X, B.add(B.mul(B.ref(Bx), B.litI(6)),
                                         B.ref(T)))));
    B.endFor();
    const VarDecl *V = B.declVar(
        "v", B.index(S, B.add(B.mul(B.ref(Bx), B.litI(64)), B.ref(Idx))));
    const VarDecl *U = B.beginFor("u", B.litI(0), B.litI(4));
    B.assignIndex(F, B.add(B.mul(B.ref(Bx), B.litI(4)), B.ref(U)),
                  B.bitAnd(B.shr(B.ref(V), B.sub(B.litI(3), B.ref(U))),
                           B.litI(1)));
    B.endFor();
    B.endFor();
  }
  // Output: new L = old R; new R = L ^ P(f).
  {
    const VarDecl *I = B.beginFor("i", B.litI(0), B.litI(Half));
    B.push(B.index(R, B.ref(I)));
    B.endFor();
  }
  {
    const VarDecl *I = B.beginFor("i", B.litI(0), B.litI(Half));
    B.push(B.bitXor(B.index(L, B.ref(I)),
                    B.index(F, B.index(P, B.ref(I)))));
    B.endFor();
  }
  B.popDiscard(Block);
  return B.build();
}

/// The initial/final 64-bit permutations (synthetic bijections).
FilterPtr makeBitPermute(const std::string &Name, int Mult, int Offset) {
  std::vector<int64_t> Perm(Block);
  for (int I = 0; I < Block; ++I)
    Perm[I] = (I * Mult + Offset) % Block; // Mult coprime to 64.
  return makePermute(Name, TokenType::Int, Perm);
}

} // namespace

StreamPtr sgpu::bench::buildDes() {
  std::vector<StreamPtr> Parts;
  Parts.push_back(filterStream(makeBitPermute("InitialPerm", 5, 3)));
  for (int Round = 0; Round < 16; ++Round)
    Parts.push_back(filterStream(makeFeistelRound(Round)));
  Parts.push_back(filterStream(makeBitPermute("FinalPerm", 13, 1)));
  return pipelineStream(std::move(Parts));
}
