//===- benchmarks/Fft.cpp - Radix-2 decimation-in-time FFT ------------------===//
//
// A 16-point complex FFT over interleaved (re, im) float tokens, in the
// recursive split-join shape of the StreamIt FFT benchmark: bit-reversal
// reordering, round-robin split-joins peeling even/odd sub-transforms,
// and butterfly combine filters with twiddle-factor fields.
//
//===----------------------------------------------------------------------===//

#include "benchmarks/Common.h"
#include "benchmarks/Registry.h"

#include <cmath>

using namespace sgpu;
using namespace sgpu::bench;

namespace {

constexpr int Points = 16; ///< Complex points per frame.
constexpr double Pi = 3.14159265358979323846;

/// Butterfly combine for an M-point transform: input is the two M/2
/// sub-transforms back to back (interleaved complex floats), output the
/// combined spectrum X[j] = E[j] + w^j O[j], X[j+M/2] = E[j] - w^j O[j].
FilterPtr makeCombine(const std::string &Name, int M) {
  int Half = M / 2;
  std::vector<double> Wr(Half), Wi(Half);
  for (int J = 0; J < Half; ++J) {
    Wr[J] = std::cos(-2.0 * Pi * J / M);
    Wi[J] = std::sin(-2.0 * Pi * J / M);
  }

  FilterBuilder B(Name, TokenType::Float, TokenType::Float);
  B.setRates(2 * M, 2 * M, 2 * M);
  const VarDecl *CosT = B.fieldArrayF("wr", Wr);
  const VarDecl *SinT = B.fieldArrayF("wi", Wi);
  const VarDecl *OutRe = B.declArray("outre", TokenType::Float, M);
  const VarDecl *OutIm = B.declArray("outim", TokenType::Float, M);

  const VarDecl *J = B.beginFor("j", B.litI(0), B.litI(Half));
  // E[j] at tokens (2j, 2j+1); O[j] at tokens (M + 2j, M + 2j + 1).
  const VarDecl *Er =
      B.declVar("er", B.peek(B.mul(B.ref(J), B.litI(2))));
  const VarDecl *Ei = B.declVar(
      "ei", B.peek(B.add(B.mul(B.ref(J), B.litI(2)), B.litI(1))));
  const VarDecl *Or = B.declVar(
      "orr", B.peek(B.add(B.mul(B.ref(J), B.litI(2)), B.litI(M))));
  const VarDecl *Oi = B.declVar(
      "oi", B.peek(B.add(B.mul(B.ref(J), B.litI(2)), B.litI(M + 1))));
  const VarDecl *Tr = B.declVar(
      "tr", B.sub(B.mul(B.index(CosT, B.ref(J)), B.ref(Or)),
                  B.mul(B.index(SinT, B.ref(J)), B.ref(Oi))));
  const VarDecl *Ti = B.declVar(
      "ti", B.add(B.mul(B.index(CosT, B.ref(J)), B.ref(Oi)),
                  B.mul(B.index(SinT, B.ref(J)), B.ref(Or))));
  B.assignIndex(OutRe, B.ref(J), B.add(B.ref(Er), B.ref(Tr)));
  B.assignIndex(OutIm, B.ref(J), B.add(B.ref(Ei), B.ref(Ti)));
  B.assignIndex(OutRe, B.add(B.ref(J), B.litI(Half)),
                B.sub(B.ref(Er), B.ref(Tr)));
  B.assignIndex(OutIm, B.add(B.ref(J), B.litI(Half)),
                B.sub(B.ref(Ei), B.ref(Ti)));
  B.endFor();

  const VarDecl *K = B.beginFor("k", B.litI(0), B.litI(M));
  B.push(B.index(OutRe, B.ref(K)));
  B.push(B.index(OutIm, B.ref(K)));
  B.endFor();
  B.popDiscard(2 * M);
  return B.build();
}

/// Recursive DIT decomposition; the frame arrives bit-reversed, so each
/// level's halves are contiguous.
StreamPtr makeFft(int M, int &Counter) {
  std::string Tag = std::to_string(M) + "_" + std::to_string(Counter++);
  if (M == 2)
    return filterStream(makeCombine("Butterfly2_" + Tag, 2));
  std::vector<StreamPtr> Halves;
  Halves.push_back(makeFft(M / 2, Counter));
  Halves.push_back(makeFft(M / 2, Counter));
  std::vector<int64_t> W = {M, M}; // M floats = M/2 complex per half.
  std::vector<StreamPtr> Parts;
  Parts.push_back(roundRobinSplitJoin(W, std::move(Halves), W));
  Parts.push_back(filterStream(makeCombine("Combine" + Tag, M)));
  return pipelineStream(std::move(Parts));
}

} // namespace

StreamPtr sgpu::bench::buildFft() {
  // Bit-reversal permutation over interleaved complex tokens.
  std::vector<int64_t> Perm(2 * Points);
  int Bits = 4;
  for (int I = 0; I < Points; ++I) {
    int R = 0;
    for (int Bit = 0; Bit < Bits; ++Bit)
      if (I & (1 << Bit))
        R |= 1 << (Bits - 1 - Bit);
    Perm[2 * I] = 2 * R;
    Perm[2 * I + 1] = 2 * R + 1;
  }

  int Counter = 0;
  std::vector<StreamPtr> Parts;
  Parts.push_back(
      filterStream(makePermute("BitReverse", TokenType::Float, Perm)));
  Parts.push_back(makeFft(Points, Counter));
  return pipelineStream(std::move(Parts));
}
