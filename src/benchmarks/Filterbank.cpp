//===- benchmarks/Filterbank.cpp - Multirate analysis filter bank -----------===//
//
// The StreamIt Filterbank benchmark: a duplicate splitter fans the input
// into eight band channels; each channel band-passes with a peeking FIR,
// decimates by 8, interpolates by 8, and reconstructs with a second
// peeking FIR; a round-robin joiner interleaves the channels and an
// adder recombines them. The two FIRs per channel are the paper's
// Table I "16 peeking filters".
//
//===----------------------------------------------------------------------===//

#include "benchmarks/Common.h"
#include "benchmarks/Registry.h"

using namespace sgpu;
using namespace sgpu::bench;

namespace {

constexpr int Channels = 8;
constexpr int Taps = 24;

} // namespace

StreamPtr sgpu::bench::buildFilterbank() {
  std::vector<StreamPtr> Branches;
  for (int C = 0; C < Channels; ++C) {
    std::string Tag = std::to_string(C);
    // Band-pass analysis window: shift the low-pass prototype per band.
    std::vector<double> Analysis =
        lowPassCoefficients(250.0, 10.0 + 12.0 * C, Taps);
    std::vector<double> Synthesis =
        lowPassCoefficients(250.0, 12.0 + 12.0 * C, Taps);

    std::vector<StreamPtr> Chain;
    Chain.push_back(filterStream(makeFir("Analysis_" + Tag, Analysis)));
    Chain.push_back(
        filterStream(makeDownSampler("Down_" + Tag, TokenType::Float,
                                     Channels)));
    Chain.push_back(
        filterStream(makeUpSampler("Up_" + Tag, TokenType::Float,
                                   Channels)));
    Chain.push_back(filterStream(makeFir("Synthesis_" + Tag, Synthesis)));
    Branches.push_back(pipelineStream(std::move(Chain)));
  }

  std::vector<int64_t> JoinW(Channels, 1);
  std::vector<StreamPtr> Parts;
  Parts.push_back(
      duplicateSplitJoin(std::move(Branches), std::move(JoinW)));
  Parts.push_back(filterStream(makeWindowAdder("Combine", Channels)));
  return pipelineStream(std::move(Parts));
}
