//===- benchmarks/FmRadio.cpp - Software FM radio with equalizer ------------===//
//
// The StreamIt FMRadio benchmark: a decimating low-pass front end
// (peeking FIR), an FM demodulator that peeks at adjacent samples, and a
// ten-band equalizer — each band subtracts two peeking low-pass filters
// fed by a duplicate splitter and applies a gain; the bands are summed.
// The 1 + 1 + 2*10 = 22 peeking filters match the paper's Table I.
//
//===----------------------------------------------------------------------===//

#include "benchmarks/Common.h"
#include "benchmarks/Registry.h"

using namespace sgpu;
using namespace sgpu::bench;

namespace {

constexpr int Bands = 10;
constexpr int Taps = 24;
constexpr int EqTaps = 24;

/// FM demodulation: combines adjacent samples through a nonlinearity
/// (the StreamIt original uses atan; a sine stands in with the same
/// peek-1-ahead structure and one transcendental per sample).
FilterPtr makeDemodulator() {
  FilterBuilder B("FMDemodulator", TokenType::Float, TokenType::Float);
  B.setRates(1, 1, 2);
  const VarDecl *X = B.declVar(
      "x", B.mul(B.peek(B.litI(0)), B.peek(B.litI(1))));
  B.push(B.mul(B.callSin(B.ref(X)), B.litF(0.5)));
  B.popDiscard();
  return B.build();
}

/// a - b over a round-robin interleaved pair.
FilterPtr makeSubtract(const std::string &Name) {
  FilterBuilder B(Name, TokenType::Float, TokenType::Float);
  B.setRates(2, 1);
  const VarDecl *A = B.declVar("a", B.pop());
  const VarDecl *C = B.declVar("b", B.pop());
  B.push(B.sub(B.ref(C), B.ref(A)));
  return B.build();
}

} // namespace

StreamPtr sgpu::bench::buildFmRadio() {
  std::vector<StreamPtr> Parts;
  Parts.push_back(filterStream(
      makeFir("LowPassFront",
              lowPassCoefficients(250.0, 108.0, Taps, /*Decimation=*/3),
              /*Decimation=*/4)));
  Parts.push_back(filterStream(makeDemodulator()));

  // Equalizer: band i passes [cutoff(i), cutoff(i+1)) as the difference
  // of two low-pass filters.
  std::vector<StreamPtr> BandStreams;
  for (int I = 0; I < Bands; ++I) {
    std::string Tag = std::to_string(I);
    double Lo = 55.0 + 10.0 * I;
    double Hi = 65.0 + 10.0 * I;
    std::vector<StreamPtr> Pair;
    Pair.push_back(filterStream(
        makeFir("BandLow_" + Tag, lowPassCoefficients(250.0, Lo, EqTaps))));
    Pair.push_back(filterStream(
        makeFir("BandHigh_" + Tag, lowPassCoefficients(250.0, Hi, EqTaps))));
    std::vector<StreamPtr> Band;
    Band.push_back(duplicateSplitJoin(std::move(Pair), {1, 1}));
    Band.push_back(filterStream(makeSubtract("BandDiff_" + Tag)));
    Band.push_back(
        filterStream(makeGain("BandGain_" + Tag, 0.5 + 0.1 * I)));
    BandStreams.push_back(pipelineStream(std::move(Band)));
  }
  std::vector<int64_t> JoinW(Bands, 1);
  Parts.push_back(
      duplicateSplitJoin(std::move(BandStreams), std::move(JoinW)));
  Parts.push_back(filterStream(makeWindowAdder("EqCombine", Bands)));
  return pipelineStream(std::move(Parts));
}
