//===- benchmarks/MatrixMult.cpp - Blocked matrix multiply ------------------===//
//
// The StreamIt MatrixMult benchmark: operand blocks A and B arrive
// interleaved on one stream; a round-robin splitter separates them, B is
// transposed, both are replicated so that every (row, column) pairing
// streams past a bank of dot-product filters, and the products emerge in
// row-major order. The replication filters push N times what they pop —
// the splitter/joiner-heavy "phased" structure the paper highlights for
// this benchmark.
//
//===----------------------------------------------------------------------===//

#include "benchmarks/Common.h"
#include "benchmarks/Registry.h"

using namespace sgpu;
using namespace sgpu::bench;

namespace {

constexpr int Dim = 4;
constexpr int Block = Dim * Dim;

/// Repeats each row of the block once per output column:
/// pop N*N, push N*N*N (row r emitted Dim times in sequence).
FilterPtr makeDuplicateRows() {
  FilterBuilder B("DuplicateRows", TokenType::Float, TokenType::Float);
  B.setRates(Block, Block * Dim, Block);
  const VarDecl *R = B.beginFor("r", B.litI(0), B.litI(Dim));
  const VarDecl *C = B.beginFor("c", B.litI(0), B.litI(Dim));
  (void)C;
  const VarDecl *I = B.beginFor("i", B.litI(0), B.litI(Dim));
  B.push(B.peek(B.add(B.mul(B.ref(R), B.litI(Dim)), B.ref(I))));
  B.endFor();
  B.endFor();
  B.endFor();
  B.popDiscard(Block);
  return B.build();
}

/// Repeats the whole (transposed) block once per output row:
/// pop N*N, push N*N*N.
FilterPtr makeDuplicateBlock() {
  FilterBuilder B("DuplicateBlock", TokenType::Float, TokenType::Float);
  B.setRates(Block, Block * Dim, Block);
  const VarDecl *R = B.beginFor("r", B.litI(0), B.litI(Dim));
  (void)R;
  const VarDecl *I = B.beginFor("i", B.litI(0), B.litI(Block));
  B.push(B.peek(B.ref(I)));
  B.endFor();
  B.endFor();
  B.popDiscard(Block);
  return B.build();
}

/// Dot product of a row/column pair delivered as Dim + Dim tokens.
FilterPtr makeDotProduct(const std::string &Name) {
  FilterBuilder B(Name, TokenType::Float, TokenType::Float);
  B.setRates(2 * Dim, 1, 2 * Dim);
  const VarDecl *Sum = B.declVar("sum", B.litF(0.0));
  const VarDecl *I = B.beginFor("i", B.litI(0), B.litI(Dim));
  B.assign(Sum, B.add(B.ref(Sum),
                      B.mul(B.peek(B.ref(I)),
                            B.peek(B.add(B.ref(I), B.litI(Dim))))));
  B.endFor();
  B.push(B.ref(Sum));
  B.popDiscard(2 * Dim);
  return B.build();
}

/// B-block transpose.
FilterPtr makeTransposeB() {
  std::vector<int64_t> Perm(Block);
  for (int R = 0; R < Dim; ++R)
    for (int C = 0; C < Dim; ++C)
      Perm[C * Dim + R] = R * Dim + C;
  return makePermute("TransposeB", TokenType::Float, Perm);
}

} // namespace

StreamPtr sgpu::bench::buildMatrixMult() {
  // Operand separation and replication.
  std::vector<StreamPtr> Operands;
  Operands.push_back(filterStream(makeDuplicateRows()));
  {
    std::vector<StreamPtr> BPath;
    BPath.push_back(filterStream(makeTransposeB()));
    BPath.push_back(filterStream(makeDuplicateBlock()));
    Operands.push_back(pipelineStream(std::move(BPath)));
  }
  std::vector<StreamPtr> Parts;
  Parts.push_back(roundRobinSplitJoin({Block, Block}, std::move(Operands),
                                      {Dim, Dim}));

  // A bank of parallel dot-product filters.
  std::vector<StreamPtr> Dots;
  for (int D = 0; D < Dim; ++D)
    Dots.push_back(
        filterStream(makeDotProduct("Dot_" + std::to_string(D))));
  std::vector<int64_t> SplitW(Dim, 2 * Dim), JoinW(Dim, 1);
  Parts.push_back(
      roundRobinSplitJoin(SplitW, std::move(Dots), JoinW));
  return pipelineStream(std::move(Parts));
}
