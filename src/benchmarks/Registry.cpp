//===- benchmarks/Registry.cpp - Table I benchmark suite --------------------===//

#include "benchmarks/Registry.h"

#include "support/Rng.h"

using namespace sgpu;
using namespace sgpu::bench;

const std::vector<BenchmarkSpec> &sgpu::bench::allBenchmarks() {
  static const std::vector<BenchmarkSpec> Specs = {
      {"Bitonic", "Bitonic sorting network for sorting 8 integers",
       &buildBitonic, TokenType::Int, 58, 0},
      {"BitonicRec",
       "Recursive implementation of the bitonic sorting network",
       &buildBitonicRec, TokenType::Int, 61, 0},
      {"DCT", "8x8 Discrete Cosine Transform", &buildDct, TokenType::Float,
       40, 0},
      {"DES", "Implementation of the DES encryption algorithm", &buildDes,
       TokenType::Int, 55, 0},
      {"FFT", "Fast Fourier Transform", &buildFft, TokenType::Float, 26, 0},
      {"Filterbank", "Filter bank to perform multirate signal processing",
       &buildFilterbank, TokenType::Float, 53, 16},
      {"FMRadio", "Software FM Radio with equalizer", &buildFmRadio,
       TokenType::Float, 67, 22},
      {"MatrixMult", "Blocked matrix multiply", &buildMatrixMult,
       TokenType::Float, 43, 0},
  };
  return Specs;
}

const BenchmarkSpec *sgpu::bench::findBenchmark(const std::string &Name) {
  for (const BenchmarkSpec &S : allBenchmarks())
    if (S.Name == Name)
      return &S;
  return nullptr;
}

std::vector<Scalar> sgpu::bench::makeBenchmarkInput(const BenchmarkSpec &Spec,
                                                    int64_t Tokens,
                                                    uint64_t Seed) {
  Rng R(Seed);
  std::vector<Scalar> Input;
  Input.reserve(Tokens);
  for (int64_t I = 0; I < Tokens; ++I) {
    if (Spec.InputType == TokenType::Int) {
      // DES consumes bit tokens; sorting benchmarks take small ints.
      int64_t V = Spec.Name == "DES" ? R.nextInt(2) : R.nextInt(1000);
      Input.push_back(Scalar::makeInt(V));
    } else {
      Input.push_back(Scalar::makeFloat(R.nextFloat(4.0f)));
    }
  }
  return Input;
}
