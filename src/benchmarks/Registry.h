//===- benchmarks/Registry.h - Table I benchmark suite ----------*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The eight StreamIt 2.1.1 benchmarks of the paper's Table I, ported to
/// the builder DSL: Bitonic, BitonicRec, DCT, DES, FFT, Filterbank,
/// FMRadio and MatrixMult. Graph shapes, rates and peeking structure
/// follow the originals; a few constant tables (DES S-boxes, round keys)
/// are synthetic-but-deterministic stand-ins with identical rates, noted
/// in DESIGN.md.
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_BENCHMARKS_REGISTRY_H
#define SGPU_BENCHMARKS_REGISTRY_H

#include "ir/Stream.h"
#include "ir/Type.h"

#include <functional>
#include <string>
#include <vector>

namespace sgpu {
namespace bench {

/// Bitonic sorting network for 8 integers (iterative network).
StreamPtr buildBitonic();
/// Recursive bitonic sorting network for 8 integers.
StreamPtr buildBitonicRec();
/// 8x8 two-dimensional Discrete Cosine Transform.
StreamPtr buildDct();
/// DES encryption over bit-token streams (16 Feistel rounds).
StreamPtr buildDes();
/// Radix-2 FFT over 16-point complex frames.
StreamPtr buildFft();
/// 8-branch multirate analysis/synthesis filter bank.
StreamPtr buildFilterbank();
/// Software FM radio with a 10-band equalizer.
StreamPtr buildFmRadio();
/// Blocked 4x4 matrix multiply.
StreamPtr buildMatrixMult();

/// One registry entry.
struct BenchmarkSpec {
  std::string Name;
  std::string Description;
  StreamPtr (*Build)();
  TokenType InputType;
  /// Paper Table I reference values, for the Table I bench printout.
  int PaperFilters;
  int PaperPeeking;
};

/// All eight Table I benchmarks in the paper's order.
const std::vector<BenchmarkSpec> &allBenchmarks();

/// Lookup by name; null when unknown.
const BenchmarkSpec *findBenchmark(const std::string &Name);

/// Deterministic program input for a benchmark.
std::vector<Scalar> makeBenchmarkInput(const BenchmarkSpec &Spec,
                                       int64_t Tokens, uint64_t Seed = 42);

} // namespace bench
} // namespace sgpu

#endif // SGPU_BENCHMARKS_REGISTRY_H
