//===- codegen/CudaEmitter.cpp - CUDA C generation ---------------------------===//

#include "codegen/CudaEmitter.h"

#include "ir/AstPrinter.h"
#include "support/Check.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <map>
#include <sstream>

using namespace sgpu;

namespace {

/// Everything the emitter needs about one edge's device buffer.
struct BufferInfo {
  std::string Name;
  int64_t TokensPerIter = 0; ///< Tokens per coarsened GPU iteration.
  int64_t Slots = 0;         ///< Ring slots (stage span + 2).
  int64_t InitTokens = 0;
};

std::string indexMacroName(int Edge) {
  return "IDX_E" + std::to_string(Edge);
}

/// Emits the device index function mapping an absolute token index to a
/// ring-buffer position: the iteration block picks the slot, the paper's
/// cluster shuffle (Eq. 10/11) orders tokens within the block.
void emitIndexFn(std::ostringstream &OS, const BufferInfo &B, int Edge,
                 int64_t Rate, LayoutKind Layout) {
  OS << "__device__ __forceinline__ long " << indexMacroName(Edge)
     << "(long q) {\n"
     << "  long slot = (q / " << B.TokensPerIter << "L) % " << B.Slots
     << "L;\n"
     << "  long r = q % " << B.TokensPerIter << "L;\n";
  if (Layout == LayoutKind::Shuffled && Rate > 0)
    OS << "  long t = r / " << Rate << "L, n = r % " << Rate << "L;\n"
       << "  r = 128L * n + (t / 128L) * 128L * " << Rate
       << "L + (t % 128L);\n";
  OS << "  return slot * " << B.TokensPerIter << "L + r;\n"
     << "}\n\n";
}

} // namespace

std::string sgpu::emitCudaSource(const StreamGraph &G, const SteadyState &SS,
                                 const ExecutionConfig &Config,
                                 const GpuSteadyState &GSS,
                                 const SwpSchedule &Sched,
                                 const CudaEmitOptions &Options) {
  StageTimer Timer("codegen.emit");
  metricCounter("codegen.kernels").add(1);
  std::ostringstream OS;
  OS << "// Auto-generated software-pipelined StreamIt kernel\n"
     << "// schema: switch over blockIdx.x, instances in o-order,\n"
     << "// staging predicates per pipeline stage (kernel-only modulo\n"
     << "// schedule). Buffer indices follow the cluster-shuffle layout.\n"
     << "#include <cuda_runtime.h>\n\n";

  // --- Per-edge buffers.
  std::vector<BufferInfo> Buffers(G.numEdges());
  int64_t Slots = Sched.stageSpan() + 2;
  for (const ChannelEdge &E : G.edges()) {
    BufferInfo &B = Buffers[E.Id];
    B.Name = "buf_e" + std::to_string(E.Id);
    B.TokensPerIter = GSS.Instances[E.Src] * E.ProdRate *
                      Config.Threads[E.Src] * Options.Coarsening;
    B.Slots = Slots;
    B.InitTokens = E.InitTokens;
    int64_t ConsRate = E.ConsRate * Config.Threads[E.Dst];
    (void)ConsRate;
    emitIndexFn(OS, B, E.Id, E.ConsRate, Options.Layout);
  }

  // --- Field constants.
  for (const GraphNode &N : G.nodes())
    if (N.isFilter())
      OS << printFieldConstants(*N.TheFilter,
                                "f" + std::to_string(N.Id) + "_");
  OS << "\n";

  // --- Work functions.
  for (const GraphNode &N : G.nodes()) {
    if (N.isFilter()) {
      const Filter &F = *N.TheFilter;
      const char *InTy = tokenTypeName(F.inputType());
      const char *OutTy = tokenTypeName(F.outputType());
      OS << "__device__ void work_" << N.Id << "_" << F.name() << "(";
      bool NeedComma = false;
      if (F.popRate() > 0) {
        OS << "const " << InTy << " *__in, long __in_q0";
        NeedComma = true;
      }
      if (F.pushRate() > 0) {
        if (NeedComma)
          OS << ", ";
        OS << OutTy << " *__out, long __out_q0";
      }
      OS << ") {\n";
      OS << "  int __pop_idx = 0;\n  int __push_idx = 0;\n";
      OS << "  (void)__pop_idx; (void)__push_idx;\n";

      // Lower the channel primitives. The in/out q0 values are the
      // absolute indices of this firing's first pop/push; the per-edge
      // ring+shuffle function turns them into addresses.
      int InEdge = N.InEdges.empty() ? -1 : N.InEdges[0];
      int OutEdge = N.OutEdges.empty() ? -1 : N.OutEdges[0];
      std::string InFn = InEdge >= 0 ? indexMacroName(InEdge) : "IDX_IN";
      std::string OutFn = OutEdge >= 0 ? indexMacroName(OutEdge) : "IDX_OUT";
      ChannelLowering L;
      L.Pop = [&InFn](const std::string &Ord) {
        return "__in[" + InFn + "(__in_q0 + (" + Ord + "))]";
      };
      L.Peek = [&InFn](const std::string &Depth) {
        return "__in[" + InFn + "(__in_q0 + __pop_idx + (" + Depth + "))]";
      };
      L.Push = [&OutFn](const std::string &Ord, const std::string &V) {
        return "__out[" + OutFn + "(__out_q0 + (" + Ord + "))] = " + V;
      };
      // Fields are referenced with their emitted constant prefix by
      // textual rename: the printer uses the bare name, so emit aliases.
      for (const auto &Fld : F.work().fields())
        OS << "  #define " << Fld->name() << " f" << N.Id << "_"
           << Fld->name() << "\n";
      OS << printWorkBody(F, L, /*Indent=*/2);
      for (const auto &Fld : F.work().fields())
        OS << "  #undef " << Fld->name() << "\n";
      OS << "}\n\n";
      continue;
    }
    // Splitters and joiners: plain copy loops in weight order, one
    // pointer + first-token index parameter per port.
    const char *Ty = tokenTypeName(N.Ty);
    OS << "__device__ void move_" << N.Id << "_" << N.Name << "(";
    for (size_t P = 0; P < N.InEdges.size(); ++P)
      OS << (P ? ", " : "") << "const " << Ty << " *__in" << P
         << ", long __iq" << P;
    for (size_t P = 0; P < N.OutEdges.size(); ++P)
      OS << ", " << Ty << " *__out" << P << ", long __oq" << P;
    OS << ") {\n";
    if (N.isSplitter() && N.SplitKind == SplitterKind::Duplicate) {
      OS << "  " << Ty << " v = __in0[" << indexMacroName(N.InEdges[0])
         << "(__iq0)];\n";
      for (size_t P = 0; P < N.OutEdges.size(); ++P)
        OS << "  __out" << P << "[" << indexMacroName(N.OutEdges[P])
           << "(__oq" << P << ")] = v;\n";
    } else if (N.isSplitter()) {
      int64_t Off = 0;
      for (size_t P = 0; P < N.OutEdges.size(); ++P) {
        OS << "  for (int i = 0; i < " << N.Weights[P] << "; ++i)\n"
           << "    __out" << P << "[" << indexMacroName(N.OutEdges[P])
           << "(__oq" << P << " + i)] = __in0["
           << indexMacroName(N.InEdges[0]) << "(__iq0 + " << Off
           << " + i)];\n";
        Off += N.Weights[P];
      }
    } else {
      int64_t Off = 0;
      for (size_t P = 0; P < N.InEdges.size(); ++P) {
        OS << "  for (int i = 0; i < " << N.Weights[P] << "; ++i)\n"
           << "    __out0[" << indexMacroName(N.OutEdges[0]) << "(__oq0 + "
           << Off << " + i)] = __in" << P << "["
           << indexMacroName(N.InEdges[P]) << "(__iq" << P << " + i)];\n";
        Off += N.Weights[P];
      }
    }
    OS << "}\n\n";
  }

  // --- The software-pipelined kernel.
  OS << "// Staging predicate: instance with stage f runs the work of\n"
     << "// logical iteration (it - f); negative means prologue idle.\n";
  OS << "__global__ void streamit_swp_kernel(";
  {
    bool First = true;
    for (const ChannelEdge &E : G.edges()) {
      if (!First)
        OS << ", ";
      OS << tokenTypeName(E.Ty) << " *" << Buffers[E.Id].Name;
      First = false;
    }
    if (G.entryNode() >= 0)
      OS << (G.numEdges() ? ", " : "") << "const "
         << tokenTypeName(G.node(G.entryNode()).TheFilter->inputType())
         << " *buf_in";
    if (G.exitNode() >= 0)
      OS << ", "
         << tokenTypeName(G.node(G.exitNode()).TheFilter->outputType())
         << " *buf_out";
    OS << ", int it) {\n";
  }
  OS << "  const int tid = threadIdx.x;\n";
  OS << "  switch (blockIdx.x) {\n";
  for (int P = 0; P < Sched.Pmax; ++P) {
    OS << "  case " << P << ": {\n";
    for (const ScheduledInstance *SI : Sched.smOrder(P)) {
      const GraphNode &N = G.node(SI->Node);
      int64_t Threads = Config.Threads[SI->Node];
      OS << "    // o=" << SI->O << " f=" << SI->F << " " << N.Name
         << " instance " << SI->K << "\n";
      OS << "    { int j = it - " << SI->F << ";\n"
         << "      if (j >= 0 && tid < " << Threads << ") {\n"
         << "        for (int c = 0; c < " << Options.Coarsening
         << "; ++c) {\n"
         << "          long b = " << SS.initFirings()[SI->Node]
         << "L + (((long)j * " << Options.Coarsening << " + c) * "
         << GSS.Instances[SI->Node] << "L + " << SI->K << "L) * "
         << Threads << "L + tid;\n";
      if (N.isFilter()) {
        const Filter &F = *N.TheFilter;
        OS << "          work_" << N.Id << "_" << F.name() << "(";
        bool NeedComma = false;
        if (F.popRate() > 0) {
          std::string Buf = SI->Node == G.entryNode()
                                ? "buf_in"
                                : Buffers[N.InEdges[0]].Name;
          OS << Buf << ", b * " << F.popRate() << "L";
          NeedComma = true;
        }
        if (F.pushRate() > 0) {
          if (NeedComma)
            OS << ", ";
          std::string Buf = SI->Node == G.exitNode()
                                ? "buf_out"
                                : Buffers[N.OutEdges[0]].Name;
          OS << Buf << ", b * " << F.pushRate() << "L";
        }
        OS << ");\n";
      } else {
        OS << "          move_" << N.Id << "_" << N.Name << "(";
        for (size_t Port = 0; Port < N.InEdges.size(); ++Port) {
          const ChannelEdge &E = G.edge(N.InEdges[Port]);
          OS << (Port ? ", " : "") << Buffers[E.Id].Name << ", b * "
             << E.ConsRate << "L";
        }
        for (size_t Port = 0; Port < N.OutEdges.size(); ++Port) {
          const ChannelEdge &E = G.edge(N.OutEdges[Port]);
          OS << ", " << Buffers[E.Id].Name << ", " << E.InitTokens
             << "L + b * " << E.ProdRate << "L";
        }
        OS << ");\n";
      }
      OS << "        }\n      }\n    }\n";
    }
    OS << "    break;\n  }\n";
  }
  OS << "  default: break;\n  }\n";
  OS << "  __syncthreads();\n";
  OS << "}\n\n";

  if (!Options.EmitHostDriver) {
    std::string Src = OS.str();
    metricCounter("codegen.bytes").add(static_cast<int64_t>(Src.size()));
    return Src;
  }

  // --- Host driver skeleton with the Eq. 9 input shuffle.
  OS << "// Host driver: allocates ring buffers, shuffles the program\n"
     << "// input per Eq. 9 and launches one grid per steady iteration.\n";
  OS << "void run_streamit_program(int iterations) {\n";
  for (const ChannelEdge &E : G.edges())
    OS << "  " << tokenTypeName(E.Ty) << " *" << Buffers[E.Id].Name
       << "; cudaMalloc(&" << Buffers[E.Id].Name << ", "
       << (Buffers[E.Id].TokensPerIter * Buffers[E.Id].Slots +
           Buffers[E.Id].InitTokens) *
              4
       << "L);\n";
  if (G.entryNode() >= 0) {
    const Filter &F = *G.node(G.entryNode()).TheFilter;
    OS << "  // shuffle_input: host[i] -> dev[128*(i%" << F.popRate()
       << ") + (i/(128*" << F.popRate() << "))*(128*" << F.popRate()
       << ") + ((i/" << F.popRate() << ")%128)]\n";
  }
  OS << "  dim3 grid(" << Sched.Pmax << "), block(" << Config.NumThreads
     << ");\n";
  OS << "  for (int it = 0; it < iterations + " << Sched.stageSpan()
     << "; ++it)\n    streamit_swp_kernel<<<grid, block>>>(";
  {
    bool First = true;
    for (const ChannelEdge &E : G.edges()) {
      if (!First)
        OS << ", ";
      OS << Buffers[E.Id].Name;
      First = false;
    }
    if (G.entryNode() >= 0)
      OS << (G.numEdges() ? ", " : "") << "buf_in";
    if (G.exitNode() >= 0)
      OS << ", buf_out";
    OS << ", it);\n";
  }
  OS << "  cudaDeviceSynchronize();\n";
  OS << "}\n";
  std::string Src = OS.str();
  metricCounter("codegen.bytes").add(static_cast<int64_t>(Src.size()));
  return Src;
}
