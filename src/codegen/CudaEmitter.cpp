//===- codegen/CudaEmitter.cpp - CUDA C generation ---------------------------===//

#include "codegen/CudaEmitter.h"

#include "codegen/schema/GlobalChannelSchema.h"

using namespace sgpu;

std::string sgpu::emitCudaSource(const StreamGraph &G, const SteadyState &SS,
                                 const ExecutionConfig &Config,
                                 const GpuSteadyState &GSS,
                                 const SwpSchedule &Sched,
                                 const CudaEmitOptions &Options) {
  SchemaAssignment AllGlobal;
  AllGlobal.Edges.assign(G.numEdges(), EdgeSchema::GlobalChannel);
  AllGlobal.QueueCapTokens.assign(G.numEdges(), 0);
  return GlobalChannelSchema().emit(G, SS, Config, GSS, Sched, AllGlobal,
                                    Options);
}
