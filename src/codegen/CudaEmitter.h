//===- codegen/CudaEmitter.h - CUDA C generation ----------------*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The historical single-emitter entry point, now a thin veneer over the
/// kernel-schema subsystem (codegen/schema/): emitCudaSource renders the
/// paper's Section IV-C kernel through GlobalChannelSchema with an
/// all-global edge assignment — byte-identical to the pre-schema
/// emitter, as pinned by the golden files. Schema-aware callers should
/// use createKernelSchema()/KernelSchema::emit directly.
///
/// The generated text is what the paper would hand to nvcc; in this
/// reproduction it is verified structurally by tests while execution
/// happens on the simulator from the same schedule object.
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_CODEGEN_CUDAEMITTER_H
#define SGPU_CODEGEN_CUDAEMITTER_H

#include "codegen/schema/KernelSchema.h"

#include <string>

namespace sgpu {

/// Renders the complete .cu translation unit for \p Sched under the
/// paper's global-channel schema (CudaEmitOptions lives in
/// codegen/schema/KernelSchema.h alongside the schema interface).
std::string emitCudaSource(const StreamGraph &G, const SteadyState &SS,
                           const ExecutionConfig &Config,
                           const GpuSteadyState &GSS,
                           const SwpSchedule &Sched,
                           const CudaEmitOptions &Options = {});

} // namespace sgpu

#endif // SGPU_CODEGEN_CUDAEMITTER_H
