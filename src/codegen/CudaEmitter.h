//===- codegen/CudaEmitter.h - CUDA C generation ----------------*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emits the software-pipelined CUDA kernel of the paper's Section IV-C:
/// one __device__ work function per node (channel primitives lowered to
/// the Eq. 10/11 shuffled-buffer index arithmetic, or natural FIFO order
/// for the non-coalesced build), and a single __global__ kernel whose
/// body is a switch over blockIdx.x — one case per SM — executing that
/// SM's instances in increasing o_{k,v} order behind staging predicates
/// (Rau's kernel-only schema [18], predicates as arrays as in [11]).
/// A host driver with Eq. 9 input shuffling is emitted alongside.
///
/// The generated text is what the paper would hand to nvcc; in this
/// reproduction it is verified structurally by tests while execution
/// happens on the simulator from the same schedule object.
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_CODEGEN_CUDAEMITTER_H
#define SGPU_CODEGEN_CUDAEMITTER_H

#include "core/ExecutionModel.h"

#include <string>

namespace sgpu {

/// Codegen knobs.
struct CudaEmitOptions {
  LayoutKind Layout = LayoutKind::Shuffled;
  int Coarsening = 1; ///< SWPn: iterate each instance n times per launch.
  bool EmitHostDriver = true;
};

/// Renders the complete .cu translation unit for \p Sched.
std::string emitCudaSource(const StreamGraph &G, const SteadyState &SS,
                           const ExecutionConfig &Config,
                           const GpuSteadyState &GSS,
                           const SwpSchedule &Sched,
                           const CudaEmitOptions &Options = {});

} // namespace sgpu

#endif // SGPU_CODEGEN_CUDAEMITTER_H
