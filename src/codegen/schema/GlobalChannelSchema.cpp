//===- codegen/schema/GlobalChannelSchema.cpp - Paper's kernel ---------------===//

#include "codegen/schema/GlobalChannelSchema.h"

#include "codegen/schema/SchemaCommon.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <sstream>

using namespace sgpu;
using namespace sgpu::codegen;

std::string GlobalChannelSchema::emit(const StreamGraph &G,
                                      const SteadyState &SS,
                                      const ExecutionConfig &Config,
                                      const GpuSteadyState &GSS,
                                      const SwpSchedule &Sched,
                                      const SchemaAssignment &Schema,
                                      const CudaEmitOptions &Options) const {
  StageTimer Timer("codegen.emit");
  metricCounter("codegen.kernels").add(1);
  metricCounter("codegen.schema.global_kernels").add(1);
  (void)Schema; // All channels are global rings here.
  std::ostringstream OS;
  OS << "// Auto-generated software-pipelined StreamIt kernel\n"
     << "// schema: switch over blockIdx.x, instances in o-order,\n"
     << "// staging predicates per pipeline stage (kernel-only modulo\n"
     << "// schedule). Buffer indices follow the cluster-shuffle layout.\n"
     << "#include <cuda_runtime.h>\n\n";

  // --- Per-edge buffers.
  std::vector<BufferInfo> Buffers(G.numEdges());
  int64_t Slots = Sched.stageSpan() + 2;
  for (const ChannelEdge &E : G.edges()) {
    BufferInfo &B = Buffers[E.Id];
    B.Name = "buf_e" + std::to_string(E.Id);
    B.TokensPerIter = GSS.Instances[E.Src] * E.ProdRate *
                      Config.Threads[E.Src] * Options.Coarsening;
    B.Slots = Slots;
    B.InitTokens = E.InitTokens;
    int64_t ConsRate = E.ConsRate * Config.Threads[E.Dst];
    (void)ConsRate;
    emitGlobalIndexFn(OS, B, E.Id, E.ConsRate, Options.Layout);
  }

  // --- Field constants.
  emitFieldConstants(OS, G);

  // --- Work functions.
  for (const GraphNode &N : G.nodes())
    emitNodeFunction(OS, G, N, allGlobalIndexFns());

  // --- The software-pipelined kernel.
  OS << "// Staging predicate: instance with stage f runs the work of\n"
     << "// logical iteration (it - f); negative means prologue idle.\n";
  OS << "__global__ void streamit_swp_kernel(";
  {
    bool First = true;
    for (const ChannelEdge &E : G.edges()) {
      if (!First)
        OS << ", ";
      OS << tokenTypeName(E.Ty) << " *" << Buffers[E.Id].Name;
      First = false;
    }
    if (G.entryNode() >= 0)
      OS << (G.numEdges() ? ", " : "") << "const "
         << tokenTypeName(G.node(G.entryNode()).TheFilter->inputType())
         << " *buf_in";
    if (G.exitNode() >= 0)
      OS << ", "
         << tokenTypeName(G.node(G.exitNode()).TheFilter->outputType())
         << " *buf_out";
    OS << ", int it) {\n";
  }
  OS << "  const int tid = threadIdx.x;\n";
  OS << "  switch (blockIdx.x) {\n";
  for (int P = 0; P < Sched.Pmax; ++P) {
    OS << "  case " << P << ": {\n";
    for (const ScheduledInstance *SI : Sched.smOrder(P)) {
      const GraphNode &N = G.node(SI->Node);
      int64_t Threads = Config.Threads[SI->Node];
      OS << "    // o=" << SI->O << " f=" << SI->F << " " << N.Name
         << " instance " << SI->K << "\n";
      OS << "    { int j = it - " << SI->F << ";\n"
         << "      if (j >= 0 && tid < " << Threads << ") {\n"
         << "        for (int c = 0; c < " << Options.Coarsening
         << "; ++c) {\n"
         << "          long b = " << SS.initFirings()[SI->Node]
         << "L + (((long)j * " << Options.Coarsening << " + c) * "
         << GSS.Instances[SI->Node] << "L + " << SI->K << "L) * "
         << Threads << "L + tid;\n";
      if (N.isFilter()) {
        const Filter &F = *N.TheFilter;
        OS << "          work_" << N.Id << "_" << F.name() << "(";
        bool NeedComma = false;
        if (F.popRate() > 0) {
          std::string Buf = SI->Node == G.entryNode()
                                ? "buf_in"
                                : Buffers[N.InEdges[0]].Name;
          OS << Buf << ", b * " << F.popRate() << "L";
          NeedComma = true;
        }
        if (F.pushRate() > 0) {
          if (NeedComma)
            OS << ", ";
          std::string Buf = SI->Node == G.exitNode()
                                ? "buf_out"
                                : Buffers[N.OutEdges[0]].Name;
          OS << Buf << ", b * " << F.pushRate() << "L";
        }
        OS << ");\n";
      } else {
        OS << "          move_" << N.Id << "_" << N.Name << "(";
        for (size_t Port = 0; Port < N.InEdges.size(); ++Port) {
          const ChannelEdge &E = G.edge(N.InEdges[Port]);
          OS << (Port ? ", " : "") << Buffers[E.Id].Name << ", b * "
             << E.ConsRate << "L";
        }
        for (size_t Port = 0; Port < N.OutEdges.size(); ++Port) {
          const ChannelEdge &E = G.edge(N.OutEdges[Port]);
          OS << ", " << Buffers[E.Id].Name << ", " << E.InitTokens
             << "L + b * " << E.ProdRate << "L";
        }
        OS << ");\n";
      }
      OS << "        }\n      }\n    }\n";
    }
    OS << "    break;\n  }\n";
  }
  OS << "  default: break;\n  }\n";
  OS << "  __syncthreads();\n";
  OS << "}\n\n";

  if (!Options.EmitHostDriver) {
    std::string Src = OS.str();
    metricCounter("codegen.bytes").add(static_cast<int64_t>(Src.size()));
    return Src;
  }

  // --- Host driver skeleton with the Eq. 9 input shuffle.
  OS << "// Host driver: allocates ring buffers, shuffles the program\n"
     << "// input per Eq. 9 and launches one grid per steady iteration.\n";
  OS << "void run_streamit_program(int iterations) {\n";
  for (const ChannelEdge &E : G.edges())
    OS << "  " << tokenTypeName(E.Ty) << " *" << Buffers[E.Id].Name
       << "; cudaMalloc(&" << Buffers[E.Id].Name << ", "
       << (Buffers[E.Id].TokensPerIter * Buffers[E.Id].Slots +
           Buffers[E.Id].InitTokens) *
              4
       << "L);\n";
  if (G.entryNode() >= 0) {
    const Filter &F = *G.node(G.entryNode()).TheFilter;
    OS << "  // shuffle_input: host[i] -> dev[128*(i%" << F.popRate()
       << ") + (i/(128*" << F.popRate() << "))*(128*" << F.popRate()
       << ") + ((i/" << F.popRate() << ")%128)]\n";
  }
  OS << "  dim3 grid(" << Sched.Pmax << "), block(" << Config.NumThreads
     << ");\n";
  OS << "  for (int it = 0; it < iterations + " << Sched.stageSpan()
     << "; ++it)\n    streamit_swp_kernel<<<grid, block>>>(";
  {
    bool First = true;
    for (const ChannelEdge &E : G.edges()) {
      if (!First)
        OS << ", ";
      OS << Buffers[E.Id].Name;
      First = false;
    }
    if (G.entryNode() >= 0)
      OS << (G.numEdges() ? ", " : "") << "buf_in";
    if (G.exitNode() >= 0)
      OS << ", buf_out";
    OS << ", it);\n";
  }
  OS << "  cudaDeviceSynchronize();\n";
  OS << "}\n";
  std::string Src = OS.str();
  metricCounter("codegen.bytes").add(static_cast<int64_t>(Src.size()));
  return Src;
}
