//===- codegen/schema/GlobalChannelSchema.h - Paper's kernel ----*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Section IV-C kernel shape behind the KernelSchema
/// interface: one __device__ work function per node (channel primitives
/// lowered to the Eq. 10/11 shuffled-buffer index arithmetic, or natural
/// FIFO order for the non-coalesced build), and a single __global__
/// kernel whose body is a switch over blockIdx.x — one case per SM —
/// executing that SM's instances in increasing o_{k,v} order behind
/// staging predicates (Rau's kernel-only schema [18], predicates as
/// arrays as in [11]). A host driver with Eq. 9 input shuffling is
/// emitted alongside. Every channel is a global-memory ring; the
/// SchemaAssignment is ignored (this schema has no queues).
///
/// The emitted text is pinned byte for byte by the golden files of
/// tests/golden/ — this is the refactored body of the original
/// codegen/CudaEmitter.cpp, and emitCudaSource() still routes here.
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_CODEGEN_SCHEMA_GLOBALCHANNELSCHEMA_H
#define SGPU_CODEGEN_SCHEMA_GLOBALCHANNELSCHEMA_H

#include "codegen/schema/KernelSchema.h"

namespace sgpu {

class GlobalChannelSchema final : public KernelSchema {
public:
  SchemaKind kind() const override { return SchemaKind::GlobalChannel; }
  const char *name() const override { return "global"; }

  std::string emit(const StreamGraph &G, const SteadyState &SS,
                   const ExecutionConfig &Config, const GpuSteadyState &GSS,
                   const SwpSchedule &Sched, const SchemaAssignment &Schema,
                   const CudaEmitOptions &Options) const override;
};

} // namespace sgpu

#endif // SGPU_CODEGEN_SCHEMA_GLOBALCHANNELSCHEMA_H
