//===- codegen/schema/KernelSchema.cpp - Kernel schema interface -------------===//

#include "codegen/schema/KernelSchema.h"

#include "codegen/schema/GlobalChannelSchema.h"
#include "codegen/schema/WarpSpecializedSchema.h"
#include "support/Check.h"

#include <cctype>

using namespace sgpu;

std::unique_ptr<KernelSchema> sgpu::createKernelSchema(SchemaKind Kind) {
  switch (Kind) {
  case SchemaKind::GlobalChannel:
    return std::make_unique<GlobalChannelSchema>();
  case SchemaKind::WarpSpecialized:
    return std::make_unique<WarpSpecializedSchema>();
  }
  SGPU_UNREACHABLE("unknown schema kind");
}

const char *sgpu::schemaModeName(SchemaMode M) {
  switch (M) {
  case SchemaMode::Global:
    return "global";
  case SchemaMode::Warp:
    return "warp";
  case SchemaMode::Auto:
    return "auto";
  }
  SGPU_UNREACHABLE("unknown schema mode");
}

std::optional<SchemaMode> sgpu::parseSchemaMode(std::string_view Name) {
  std::string Lower(Name);
  for (char &C : Lower)
    C = static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
  if (Lower == "global")
    return SchemaMode::Global;
  if (Lower == "warp")
    return SchemaMode::Warp;
  if (Lower == "auto")
    return SchemaMode::Auto;
  return std::nullopt;
}

const char *sgpu::schemaKindName(SchemaKind K) {
  switch (K) {
  case SchemaKind::GlobalChannel:
    return "global";
  case SchemaKind::WarpSpecialized:
    return "warp";
  }
  SGPU_UNREACHABLE("unknown schema kind");
}

const char *sgpu::edgeSchemaName(EdgeSchema E) {
  switch (E) {
  case EdgeSchema::GlobalChannel:
    return "global";
  case EdgeSchema::SharedQueue:
    return "queue";
  }
  SGPU_UNREACHABLE("unknown edge schema");
}
