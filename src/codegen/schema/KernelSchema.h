//===- codegen/schema/KernelSchema.h - Kernel schema interface --*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The kernel-schema abstraction of the codegen subsystem: a schema is a
/// complete shape for the generated CUDA translation unit, deciding how
/// inter-filter channels are materialized and how the SWP schedule's
/// instances share the machine. Two schemas exist:
///
///   GlobalChannel    the paper's Section IV-C kernel — a switch over
///                    blockIdx.x, instances serial in o-order, every
///                    channel a global-memory ring with the Eq. 9-11
///                    shuffled layout, one launch per steady iteration.
///
///   WarpSpecialized  the modern SWP style ("Optimal Software Pipelining
///                    and Warp Specialization for Tensor Core GPUs"): one
///                    persistent block per SM, each scheduled instance
///                    owning a dedicated warp group, and intra-SM channels
///                    replaced by bounded shared-memory ring queues with
///                    ticket-based push/pop. Cross-SM channels stay in
///                    global memory behind a software iteration barrier.
///
/// The schema decision is per EDGE, not just per kernel: a
/// `SchemaAssignment` records, for every channel edge, whether it stays a
/// global-memory ring or becomes a shared-memory queue (SchemaSelect.h
/// computes the assignment under the shared-memory budget constraint).
/// The choice is plumbed through the machine model (queue edges cost
/// zero global-memory transactions), both timing models, the functional
/// simulator, the compile report, and the service cache key.
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_CODEGEN_SCHEMA_KERNELSCHEMA_H
#define SGPU_CODEGEN_SCHEMA_KERNELSCHEMA_H

#include "core/ExecutionModel.h"

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace sgpu {

/// The `--schema=` request: which kernel schema to compile under. Auto
/// compiles both assignments and keeps the one the timing model predicts
/// fewer cycles for (ties go to the paper's global schema).
enum class SchemaMode : uint8_t { Global, Warp, Auto };

/// A concrete schema implementation (what Auto resolves to).
enum class SchemaKind : uint8_t { GlobalChannel, WarpSpecialized };

/// Per-edge channel materialization.
enum class EdgeSchema : uint8_t { GlobalChannel, SharedQueue };

/// The per-edge schema decision for one compiled program.
struct SchemaAssignment {
  SchemaKind Kind = SchemaKind::GlobalChannel;
  /// Indexed by edge id; empty means "all global" (a default-constructed
  /// assignment is valid for any graph).
  std::vector<EdgeSchema> Edges;
  /// Ring capacity in tokens of each shared queue (0 for global edges).
  std::vector<int64_t> QueueCapTokens;
  /// Shared-memory bytes all queues occupy together. Every block of the
  /// emitted kernel allocates every queue (one translation unit, static
  /// __shared__ arrays), so the budget constraint is chip-wide, not
  /// per-SM: the sum must fit one block's shared memory.
  int64_t SharedQueueBytes = 0;

  bool isQueue(int Edge) const {
    return Edge >= 0 && static_cast<size_t>(Edge) < Edges.size() &&
           Edges[Edge] == EdgeSchema::SharedQueue;
  }
  int numQueueEdges() const {
    int N = 0;
    for (EdgeSchema E : Edges)
      if (E == EdgeSchema::SharedQueue)
        ++N;
    return N;
  }
};

/// Codegen knobs (kept spelling-compatible with the original
/// codegen/CudaEmitter.h entry point).
struct CudaEmitOptions {
  LayoutKind Layout = LayoutKind::Shuffled;
  int Coarsening = 1; ///< SWPn: iterate each instance n times per launch.
  bool EmitHostDriver = true;
};

/// A kernel schema renders the complete .cu translation unit for one
/// scheduled program under its per-edge assignment.
class KernelSchema {
public:
  virtual ~KernelSchema() = default;

  virtual SchemaKind kind() const = 0;
  virtual const char *name() const = 0;

  /// Renders the translation unit. \p Schema must either be empty (all
  /// global) or sized to G.numEdges(); GlobalChannelSchema ignores queue
  /// entries (it has no queues), WarpSpecializedSchema honours them.
  virtual std::string emit(const StreamGraph &G, const SteadyState &SS,
                           const ExecutionConfig &Config,
                           const GpuSteadyState &GSS,
                           const SwpSchedule &Sched,
                           const SchemaAssignment &Schema,
                           const CudaEmitOptions &Options) const = 0;
};

/// Instantiates the schema implementation of the given kind.
std::unique_ptr<KernelSchema> createKernelSchema(SchemaKind Kind);

/// Canonical option spellings: "global" / "warp" / "auto". The mode
/// spelling is what `--schema=` takes and what the service cache key is
/// derived from (service/GraphHash.h).
const char *schemaModeName(SchemaMode M);

/// Inverse of schemaModeName, case-insensitive. Returns std::nullopt for
/// unknown names.
std::optional<SchemaMode> parseSchemaMode(std::string_view Name);

/// "global" / "warp".
const char *schemaKindName(SchemaKind K);

/// "global" / "queue".
const char *edgeSchemaName(EdgeSchema E);

} // namespace sgpu

#endif // SGPU_CODEGEN_SCHEMA_KERNELSCHEMA_H
