//===- codegen/schema/SchemaCommon.cpp - Shared emission helpers -------------===//

#include "codegen/schema/SchemaCommon.h"

#include "ir/AstPrinter.h"

using namespace sgpu;
using namespace sgpu::codegen;

std::string sgpu::codegen::globalIndexFnName(int Edge) {
  return "IDX_E" + std::to_string(Edge);
}

std::string sgpu::codegen::queueIndexFnName(int Edge) {
  return "IDX_Q_E" + std::to_string(Edge);
}

std::function<std::string(int)> sgpu::codegen::allGlobalIndexFns() {
  return [](int Edge) { return globalIndexFnName(Edge); };
}

void sgpu::codegen::emitGlobalIndexFn(std::ostringstream &OS,
                                      const BufferInfo &B, int Edge,
                                      int64_t Rate, LayoutKind Layout) {
  OS << "__device__ __forceinline__ long " << globalIndexFnName(Edge)
     << "(long q) {\n"
     << "  long slot = (q / " << B.TokensPerIter << "L) % " << B.Slots
     << "L;\n"
     << "  long r = q % " << B.TokensPerIter << "L;\n";
  if (Layout == LayoutKind::Shuffled && Rate > 0)
    OS << "  long t = r / " << Rate << "L, n = r % " << Rate << "L;\n"
       << "  r = 128L * n + (t / 128L) * 128L * " << Rate
       << "L + (t % 128L);\n";
  OS << "  return slot * " << B.TokensPerIter << "L + r;\n"
     << "}\n\n";
}

void sgpu::codegen::emitFieldConstants(std::ostringstream &OS,
                                       const StreamGraph &G) {
  for (const GraphNode &N : G.nodes())
    if (N.isFilter())
      OS << printFieldConstants(*N.TheFilter,
                                "f" + std::to_string(N.Id) + "_");
  OS << "\n";
}

void sgpu::codegen::emitNodeFunction(
    std::ostringstream &OS, const StreamGraph &G, const GraphNode &N,
    const std::function<std::string(int)> &IndexFn) {
  if (N.isFilter()) {
    const Filter &F = *N.TheFilter;
    const char *InTy = tokenTypeName(F.inputType());
    const char *OutTy = tokenTypeName(F.outputType());
    OS << "__device__ void work_" << N.Id << "_" << F.name() << "(";
    bool NeedComma = false;
    if (F.popRate() > 0) {
      OS << "const " << InTy << " *__in, long __in_q0";
      NeedComma = true;
    }
    if (F.pushRate() > 0) {
      if (NeedComma)
        OS << ", ";
      OS << OutTy << " *__out, long __out_q0";
    }
    OS << ") {\n";
    OS << "  int __pop_idx = 0;\n  int __push_idx = 0;\n";
    OS << "  (void)__pop_idx; (void)__push_idx;\n";

    // Lower the channel primitives. The in/out q0 values are the
    // absolute indices of this firing's first pop/push; the per-edge
    // ring+shuffle function turns them into addresses.
    int InEdge = N.InEdges.empty() ? -1 : N.InEdges[0];
    int OutEdge = N.OutEdges.empty() ? -1 : N.OutEdges[0];
    std::string InFn = InEdge >= 0 ? IndexFn(InEdge) : "IDX_IN";
    std::string OutFn = OutEdge >= 0 ? IndexFn(OutEdge) : "IDX_OUT";
    ChannelLowering L;
    L.Pop = [&InFn](const std::string &Ord) {
      return "__in[" + InFn + "(__in_q0 + (" + Ord + "))]";
    };
    L.Peek = [&InFn](const std::string &Depth) {
      return "__in[" + InFn + "(__in_q0 + __pop_idx + (" + Depth + "))]";
    };
    L.Push = [&OutFn](const std::string &Ord, const std::string &V) {
      return "__out[" + OutFn + "(__out_q0 + (" + Ord + "))] = " + V;
    };
    // Fields are referenced with their emitted constant prefix by
    // textual rename: the printer uses the bare name, so emit aliases.
    for (const auto &Fld : F.work().fields())
      OS << "  #define " << Fld->name() << " f" << N.Id << "_"
         << Fld->name() << "\n";
    OS << printWorkBody(F, L, /*Indent=*/2);
    for (const auto &Fld : F.work().fields())
      OS << "  #undef " << Fld->name() << "\n";
    OS << "}\n\n";
    return;
  }
  // Splitters and joiners: plain copy loops in weight order, one
  // pointer + first-token index parameter per port.
  const char *Ty = tokenTypeName(N.Ty);
  OS << "__device__ void move_" << N.Id << "_" << N.Name << "(";
  for (size_t P = 0; P < N.InEdges.size(); ++P)
    OS << (P ? ", " : "") << "const " << Ty << " *__in" << P
       << ", long __iq" << P;
  for (size_t P = 0; P < N.OutEdges.size(); ++P)
    OS << ", " << Ty << " *__out" << P << ", long __oq" << P;
  OS << ") {\n";
  if (N.isSplitter() && N.SplitKind == SplitterKind::Duplicate) {
    OS << "  " << Ty << " v = __in0[" << IndexFn(N.InEdges[0])
       << "(__iq0)];\n";
    for (size_t P = 0; P < N.OutEdges.size(); ++P)
      OS << "  __out" << P << "[" << IndexFn(N.OutEdges[P]) << "(__oq" << P
         << ")] = v;\n";
  } else if (N.isSplitter()) {
    int64_t Off = 0;
    for (size_t P = 0; P < N.OutEdges.size(); ++P) {
      OS << "  for (int i = 0; i < " << N.Weights[P] << "; ++i)\n"
         << "    __out" << P << "[" << IndexFn(N.OutEdges[P]) << "(__oq" << P
         << " + i)] = __in0[" << IndexFn(N.InEdges[0]) << "(__iq0 + " << Off
         << " + i)];\n";
      Off += N.Weights[P];
    }
  } else {
    int64_t Off = 0;
    for (size_t P = 0; P < N.InEdges.size(); ++P) {
      OS << "  for (int i = 0; i < " << N.Weights[P] << "; ++i)\n"
         << "    __out0[" << IndexFn(N.OutEdges[0]) << "(__oq0 + " << Off
         << " + i)] = __in" << P << "[" << IndexFn(N.InEdges[P]) << "(__iq"
         << P << " + i)];\n";
      Off += N.Weights[P];
    }
  }
  OS << "}\n\n";
  (void)G;
}
