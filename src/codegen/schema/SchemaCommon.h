//===- codegen/schema/SchemaCommon.h - Shared emission helpers --*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emission machinery shared by the kernel schemas: per-edge buffer
/// bookkeeping, the ring+shuffle index functions, and the per-node
/// work/move device functions. The work-function emitter is
/// parameterized by an edge -> index-function-name mapping so the
/// warp-specialized schema can route queue edges through their
/// shared-memory ring indexers while everything else keeps the global
/// Eq. 10/11 form byte for byte.
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_CODEGEN_SCHEMA_SCHEMACOMMON_H
#define SGPU_CODEGEN_SCHEMA_SCHEMACOMMON_H

#include "codegen/schema/KernelSchema.h"

#include <functional>
#include <sstream>
#include <string>
#include <vector>

namespace sgpu {
namespace codegen {

/// Everything the emitters need about one edge's device buffer.
struct BufferInfo {
  std::string Name;
  int64_t TokensPerIter = 0; ///< Tokens per coarsened GPU iteration.
  int64_t Slots = 0;         ///< Ring slots (stage span + 2).
  int64_t InitTokens = 0;
};

/// "IDX_E<edge>": the global ring+shuffle index function.
std::string globalIndexFnName(int Edge);

/// "IDX_Q_E<edge>": the shared-memory queue ring index function.
std::string queueIndexFnName(int Edge);

/// Maps every edge to its global index function (the GlobalChannel
/// schema's routing).
std::function<std::string(int)> allGlobalIndexFns();

/// Emits the device index function mapping an absolute token index to a
/// ring-buffer position: the iteration block picks the slot, the paper's
/// cluster shuffle (Eq. 10/11) orders tokens within the block.
void emitGlobalIndexFn(std::ostringstream &OS, const BufferInfo &B, int Edge,
                       int64_t Rate, LayoutKind Layout);

/// Emits the field constants of every filter node ("f<id>_" prefixed).
void emitFieldConstants(std::ostringstream &OS, const StreamGraph &G);

/// Emits the __device__ work function of filter node \p N (channel
/// primitives lowered through IndexFn(edge)) or the move function of a
/// splitter/joiner node.
void emitNodeFunction(std::ostringstream &OS, const StreamGraph &G,
                      const GraphNode &N,
                      const std::function<std::string(int)> &IndexFn);

} // namespace codegen
} // namespace sgpu

#endif // SGPU_CODEGEN_SCHEMA_SCHEMACOMMON_H
