//===- codegen/schema/SchemaSelect.cpp - Per-edge schema decision ------------===//

#include "codegen/schema/SchemaSelect.h"

#include "layout/AccessAnalyzer.h"
#include "support/Check.h"

#include <algorithm>
#include <limits>

using namespace sgpu;

namespace {

/// One edge that passed the structural eligibility tests, priced for the
/// greedy budget admission.
struct QueueCandidate {
  int Edge = -1;
  int64_t CapTokens = 0;
  int64_t Bytes = 0;
  double SavedTxns = 0.0; ///< Global transactions saved per invocation.
};

/// Stage distance of edge \p E under \p Sched: how many pipeline
/// iterations of backlog the ring must retain. Negative (consumer stage
/// earlier than producer) disqualifies the edge.
int64_t stageDistance(const ChannelEdge &E, const SwpSchedule &Sched) {
  int64_t MinSrcF = std::numeric_limits<int64_t>::max();
  int64_t MaxDstF = std::numeric_limits<int64_t>::min();
  for (const ScheduledInstance &SI : Sched.Instances) {
    if (SI.Node == E.Src)
      MinSrcF = std::min(MinSrcF, SI.F);
    if (SI.Node == E.Dst)
      MaxDstF = std::max(MaxDstF, SI.F);
  }
  return MaxDstF - MinSrcF;
}

/// The single SM hosting every instance of \p Node, or -1 when the
/// instances are spread across SMs.
int soleSm(int Node, const SwpSchedule &Sched) {
  int Sm = -1;
  for (const ScheduledInstance &SI : Sched.Instances) {
    if (SI.Node != Node)
      continue;
    if (Sm < 0)
      Sm = SI.Sm;
    else if (Sm != SI.Sm)
      return -1;
  }
  return Sm;
}

} // namespace

SchemaAssignment sgpu::selectSchemaAssignment(
    const GpuArch &Arch, const StreamGraph &G, const SteadyState &SS,
    const ExecutionConfig &Config, const GpuSteadyState &GSS,
    const SwpSchedule &Sched, SchemaKind Kind, int Coarsening,
    const MachineModel *Machine) {
  SchemaAssignment A;
  A.Kind = Kind;
  A.Edges.assign(G.numEdges(), EdgeSchema::GlobalChannel);
  A.QueueCapTokens.assign(G.numEdges(), 0);
  if (Kind == SchemaKind::GlobalChannel)
    return A;

  std::vector<QueueCandidate> Candidates;
  for (const ChannelEdge &E : G.edges()) {
    // The ring cannot be pre-seeded from the host: no initial tokens, no
    // peek slack (a sliding window reads back into drained ring slots),
    // no init-phase firings on either endpoint.
    if (E.InitTokens != 0 || E.PeekRate != E.ConsRate)
      continue;
    if (SS.initFirings()[E.Src] != 0 || SS.initFirings()[E.Dst] != 0)
      continue;
    // Block-local shared memory: both endpoints wholly on one SM.
    int SrcSm = soleSm(E.Src, Sched);
    if (SrcSm < 0 || SrcSm != soleSm(E.Dst, Sched))
      continue;
    // Hybrid machines: a CPU core has no shared-memory ring — edges
    // resident on the host side are never queue candidates.
    if (Machine && SrcSm >= Machine->numGpuSms())
      continue;
    int64_t Dist = stageDistance(E, Sched);
    if (Dist < 0)
      continue;

    // Ring capacity: the stage-distance backlog (tokens of `Dist` whole
    // coarsened iterations coexist in the ring) plus a double-buffered
    // coarsening step for the producer/consumer overlap.
    int64_t TokensPerStep =
        GSS.Instances[E.Src] * E.ProdRate * Config.Threads[E.Src];
    int64_t TokensPerIter = TokensPerStep * Coarsening;
    if (TokensPerStep <= 0)
      continue;
    QueueCandidate C;
    C.Edge = E.Id;
    C.CapTokens = Dist * TokensPerIter + 2 * TokensPerStep;
    C.Bytes = C.CapTokens * tokenSizeBytes(E.Ty) + QueueTicketBytes;
    // One coalesced write + one coalesced read per token per invocation
    // would have hit the bus: credit both half-warp transaction shares.
    C.SavedTxns =
        2.0 * static_cast<double>(TokensPerIter) / HalfWarpSize;
    Candidates.push_back(C);
  }

  // Greedy admission: best saved-transactions-per-byte first, edge id
  // breaking ties, under the chip-wide budget (every block of the single
  // translation unit allocates every __shared__ ring).
  std::sort(Candidates.begin(), Candidates.end(),
            [](const QueueCandidate &A, const QueueCandidate &B) {
              double Ra = A.SavedTxns / static_cast<double>(A.Bytes);
              double Rb = B.SavedTxns / static_cast<double>(B.Bytes);
              if (Ra != Rb)
                return Ra > Rb;
              return A.Edge < B.Edge;
            });
  int64_t Budget = Arch.SharedMemPerSM - SchemaSharedReserveBytes;
  for (const QueueCandidate &C : Candidates) {
    if (A.SharedQueueBytes + C.Bytes > Budget)
      continue;
    A.Edges[C.Edge] = EdgeSchema::SharedQueue;
    A.QueueCapTokens[C.Edge] = C.CapTokens;
    A.SharedQueueBytes += C.Bytes;
  }
  return A;
}

QueueTraffic sgpu::nodeQueueTraffic(const StreamGraph &G, const GraphNode &N,
                                    const WorkEstimate &WE,
                                    const SchemaAssignment &Schema) {
  QueueTraffic Q;
  if (N.isFilter()) {
    // A filter's channel ops all follow its single in/out edge, so a
    // queued edge reroutes the whole side (re-reads included).
    if (!N.InEdges.empty() && Schema.isQueue(N.InEdges[0]))
      Q.Reads = WE.ChannelReads;
    if (!N.OutEdges.empty() && Schema.isQueue(N.OutEdges[0]))
      Q.Writes = WE.ChannelWrites;
    return Q;
  }
  // Splitters/joiners move one token per channel op: count the queued
  // ports' rates.
  for (int EId : N.InEdges)
    if (Schema.isQueue(EId))
      Q.Reads += G.edge(EId).ConsRate;
  for (int EId : N.OutEdges)
    if (Schema.isQueue(EId))
      Q.Writes += G.edge(EId).ProdRate;
  return Q;
}
