//===- codegen/schema/SchemaSelect.h - Per-edge schema decision -*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Computes the per-edge schema assignment for a scheduled program, in
/// the spirit of the memory-constrained mapping decisions of
/// "Memory-constrained Vectorization and Scheduling of Dataflow Graphs
/// for Hybrid CPU-GPU Platforms": after the ILP has pinned every
/// instance to an SM and a stage, a channel edge may trade its
/// global-memory ring for a bounded shared-memory queue when
///
///   - every scheduled instance of both endpoints lives on ONE SM (the
///     queue is block-local shared memory),
///   - the edge carries no initial tokens, no peek slack, and neither
///     endpoint fires in the init phase (the ring cannot be pre-seeded
///     from the host),
///   - the consumer's stage is not earlier than the producer's, and
///   - the ring fits the shared-memory budget: capacity is the
///     stage-distance backlog plus a double-buffered coarsening step,
///     and the sum over all queues (every block allocates every queue)
///     must fit SharedMemPerSM minus a fixed staging reservation.
///
/// Queue edges are credited with ZERO global-memory transactions; the
/// greedy admission maximizes saved transactions per shared byte, with
/// edge-id order breaking ties so the assignment is deterministic.
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_CODEGEN_SCHEMA_SCHEMASELECT_H
#define SGPU_CODEGEN_SCHEMA_SCHEMASELECT_H

#include "codegen/schema/KernelSchema.h"

namespace sgpu {

/// Shared-memory bytes withheld from the queue budget: staging buffers,
/// kernel parameters and the ticket spill the emitted kernel needs
/// outside the rings themselves.
inline constexpr int64_t SchemaSharedReserveBytes = 2048;

/// Shared bytes per queue for its head/tail ticket pair.
inline constexpr int64_t QueueTicketBytes = 16;

/// Computes the per-edge assignment for \p Kind. GlobalChannel returns
/// the all-global assignment; WarpSpecialized admits eligible edges
/// greedily under the shared-memory budget as described above. The
/// result is a pure function of its inputs (bit-deterministic).
/// A hybrid \p Machine excludes CPU-resident endpoints: shared-memory
/// ring queues only exist inside an SM's thread block, so an edge whose
/// nodes live on a CPU core can never be a queue candidate.
SchemaAssignment selectSchemaAssignment(const GpuArch &Arch,
                                        const StreamGraph &G,
                                        const SteadyState &SS,
                                        const ExecutionConfig &Config,
                                        const GpuSteadyState &GSS,
                                        const SwpSchedule &Sched,
                                        SchemaKind Kind, int Coarsening,
                                        const MachineModel *Machine = nullptr);

/// Per-firing channel tokens of node \p N that \p Schema reroutes
/// through shared-memory queues: for a filter, all of its channel ops
/// follow its single in/out edge; for splitters and joiners, the queued
/// ports' rates. Feeds core/ExecutionModel's QueueTraffic cost rebate.
QueueTraffic nodeQueueTraffic(const StreamGraph &G, const GraphNode &N,
                              const WorkEstimate &WE,
                              const SchemaAssignment &Schema);

} // namespace sgpu

#endif // SGPU_CODEGEN_SCHEMA_SCHEMASELECT_H
