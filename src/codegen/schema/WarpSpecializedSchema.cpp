//===- codegen/schema/WarpSpecializedSchema.cpp - Warp SWP kernel ------------===//

#include "codegen/schema/WarpSpecializedSchema.h"

#include "codegen/schema/SchemaCommon.h"
#include "support/Check.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <map>
#include <sstream>

using namespace sgpu;
using namespace sgpu::codegen;

namespace {

/// Warp-group placement of one scheduled instance inside its SM's block.
struct WarpRange {
  int FirstWarp = 0;
  int NumWarps = 0;
};

std::string ticketName(int Edge, const char *Side) {
  return "qt_e" + std::to_string(Edge) + "_" + Side;
}

std::string queueBufName(int Edge) { return "q_e" + std::to_string(Edge); }

} // namespace

std::string WarpSpecializedSchema::emit(const StreamGraph &G,
                                        const SteadyState &SS,
                                        const ExecutionConfig &Config,
                                        const GpuSteadyState &GSS,
                                        const SwpSchedule &Sched,
                                        const SchemaAssignment &Schema,
                                        const CudaEmitOptions &Options) const {
  StageTimer Timer("codegen.emit");
  metricCounter("codegen.kernels").add(1);
  metricCounter("codegen.schema.warp_kernels").add(1);
  metricCounter("codegen.schema.queue_edges").add(Schema.numQueueEdges());
  std::ostringstream OS;
  OS << "// Auto-generated warp-specialized software-pipelined StreamIt "
        "kernel\n"
     << "// schema: one persistent block per SM; each scheduled instance\n"
     << "// owns a dedicated warp group, so producers and consumers run\n"
     << "// concurrently. Intra-SM channels are bounded shared-memory ring\n"
     << "// queues with ticket-based push/pop (zero global-memory\n"
     << "// transactions); cross-SM channels keep the global\n"
     << "// cluster-shuffle rings, separated per pipeline iteration by a\n"
     << "// software grid barrier.\n"
     << "#include <cuda_runtime.h>\n\n";

  // --- Per-edge buffers. Global edges keep the ring+shuffle indexers;
  // queue edges index their shared ring directly (shared memory needs no
  // coalescing, so no Eq. 10/11 shuffle).
  std::vector<BufferInfo> Buffers(G.numEdges());
  int64_t Slots = Sched.stageSpan() + 2;
  bool AnyQueue = false;
  for (const ChannelEdge &E : G.edges()) {
    BufferInfo &B = Buffers[E.Id];
    B.TokensPerIter = GSS.Instances[E.Src] * E.ProdRate *
                      Config.Threads[E.Src] * Options.Coarsening;
    B.Slots = Slots;
    B.InitTokens = E.InitTokens;
    if (Schema.isQueue(E.Id)) {
      AnyQueue = true;
      B.Name = queueBufName(E.Id);
      int64_t Cap = Schema.QueueCapTokens[E.Id];
      assert(Cap > 0 && "shared-queue edge without a ring capacity");
      OS << "__device__ __forceinline__ long " << queueIndexFnName(E.Id)
         << "(long q) {\n"
         << "  return q % " << Cap << "L; // shared ring, shuffle-free\n"
         << "}\n\n";
    } else {
      B.Name = "buf_e" + std::to_string(E.Id);
      emitGlobalIndexFn(OS, B, E.Id, E.ConsRate, Options.Layout);
    }
  }

  // --- Queue ticket primitives.
  if (AnyQueue)
    OS << "// Bounded ring queue tickets: monotonic 64-bit token counts.\n"
       << "// A producer spins until the consumer's head ticket frees ring\n"
       << "// space, writes its tokens, then publishes a new tail; a\n"
       << "// consumer spins on the tail, reads, then releases the head.\n"
       << "// Publication is chained in token order: each publishing lane\n"
       << "// first spins until the ticket reaches its own warp's base\n"
       << "// token index, so warps (and concurrent node instances) of\n"
       << "// unordered warp groups cannot publish a tail that covers\n"
       << "// another warp's not-yet-written ring slots. A ticket value t\n"
       << "// therefore proves every token below t is resident.\n"
       << "// q_wait ends with a block fence (acquire) pairing with the\n"
       << "// publisher's pre-publish __threadfence_block (release), so\n"
       << "// ring accesses cannot be reordered above the observed spin.\n"
       << "__device__ __forceinline__ void q_wait(volatile long long "
          "*ticket, long long need) {\n"
       << "  while (*ticket < need) { }\n"
       << "  __threadfence_block();\n"
       << "}\n"
       << "__device__ __forceinline__ void q_publish(long long *ticket, "
          "long long from, long long to) {\n"
       << "  while (*(volatile long long *)ticket < from) { }\n"
       << "  atomicMax((unsigned long long *)ticket, (unsigned long long)"
          "to);\n"
       << "}\n\n";

  // --- Software grid barrier separating pipeline iterations (the
  // persistent kernel replaces the paper's per-iteration launches).
  OS << "// Software grid barrier: block 0..gridDim-1 arrive, everyone\n"
     << "// spins until the arrival count reaches the per-iteration goal.\n"
     << "// Release/acquire pair: the fence before the arrival add\n"
     << "// publishes this SM's ring writes; the fence after the spin\n"
     << "// keeps the next iteration's cross-SM ring reads from seeing\n"
     << "// stale pre-barrier data in a non-coherent L1.\n"
     << "__device__ unsigned int swp_barrier_arrived = 0u;\n"
     << "__device__ void global_barrier(unsigned int goal) {\n"
     << "  __syncthreads();\n"
     << "  if (threadIdx.x == 0) {\n"
     << "    __threadfence();\n"
     << "    atomicAdd(&swp_barrier_arrived, 1u);\n"
     << "    while (((volatile unsigned int *)&swp_barrier_arrived)[0] < "
        "goal) { }\n"
     << "    __threadfence();\n"
     << "  }\n"
     << "  __syncthreads();\n"
     << "}\n\n";

  // --- Field constants.
  emitFieldConstants(OS, G);

  // --- Work functions: queue edges route through their shared-ring
  // indexer, everything else through the global ring+shuffle form.
  auto IndexFn = [&Schema](int Edge) {
    return Schema.isQueue(Edge) ? queueIndexFnName(Edge)
                                : globalIndexFnName(Edge);
  };
  for (const GraphNode &N : G.nodes())
    emitNodeFunction(OS, G, N, IndexFn);

  // --- Warp-group placement: walk each SM's o-order and hand every
  // instance ceil(threads/32) consecutive warps. Block size is the
  // widest SM's total.
  std::map<const ScheduledInstance *, WarpRange> Ranges;
  int BlockWarps = 1;
  for (int P = 0; P < Sched.Pmax; ++P) {
    int Cursor = 0;
    for (const ScheduledInstance *SI : Sched.smOrder(P)) {
      WarpRange R;
      R.FirstWarp = Cursor;
      R.NumWarps =
          static_cast<int>((Config.Threads[SI->Node] + 31) / 32);
      Cursor += R.NumWarps;
      Ranges[SI] = R;
    }
    BlockWarps = std::max(BlockWarps, Cursor);
  }
  int BlockThreads = BlockWarps * 32;

  // --- The persistent warp-specialized kernel.
  OS << "// Staging predicate: instance with stage f runs the work of\n"
     << "// logical iteration (it - f); negative means prologue idle.\n";
  OS << "__global__ void streamit_swp_kernel(";
  {
    bool First = true;
    for (const ChannelEdge &E : G.edges()) {
      if (Schema.isQueue(E.Id))
        continue; // Lives in shared memory below.
      if (!First)
        OS << ", ";
      OS << tokenTypeName(E.Ty) << " *" << Buffers[E.Id].Name;
      First = false;
    }
    if (G.entryNode() >= 0)
      OS << (First ? "" : ", ") << "const "
         << tokenTypeName(G.node(G.entryNode()).TheFilter->inputType())
         << " *buf_in";
    if (G.exitNode() >= 0)
      OS << ", "
         << tokenTypeName(G.node(G.exitNode()).TheFilter->outputType())
         << " *buf_out";
    OS << ", int iterations) {\n";
  }
  for (const ChannelEdge &E : G.edges()) {
    if (!Schema.isQueue(E.Id))
      continue;
    OS << "  __shared__ " << tokenTypeName(E.Ty) << " "
       << queueBufName(E.Id) << "[" << Schema.QueueCapTokens[E.Id]
       << "];\n"
       << "  __shared__ long long " << ticketName(E.Id, "head") << ", "
       << ticketName(E.Id, "tail") << ";\n";
  }
  if (AnyQueue) {
    OS << "  if (threadIdx.x == 0) {\n";
    for (const ChannelEdge &E : G.edges())
      if (Schema.isQueue(E.Id))
        OS << "    " << ticketName(E.Id, "head") << " = 0LL; "
           << ticketName(E.Id, "tail") << " = 0LL;\n";
    OS << "  }\n  __syncthreads();\n";
  }
  OS << "  for (int it = 0; it < iterations; ++it) {\n";
  OS << "  switch (blockIdx.x) {\n";
  for (int P = 0; P < Sched.Pmax; ++P) {
    OS << "  case " << P << ": {\n";
    std::vector<const ScheduledInstance *> Order = Sched.smOrder(P);
    for (const ScheduledInstance *SI : Order) {
      const GraphNode &N = G.node(SI->Node);
      int64_t Threads = Config.Threads[SI->Node];
      const WarpRange &WR = Ranges[SI];
      OS << "    // o=" << SI->O << " f=" << SI->F << " " << N.Name
         << " instance " << SI->K << "  warps [" << WR.FirstWarp << ", "
         << WR.FirstWarp + WR.NumWarps << ")\n";
      OS << "    { int j = it - " << SI->F << ";\n"
         << "      int tid = (int)threadIdx.x - " << WR.FirstWarp * 32
         << ";\n"
         << "      if (j >= 0 && tid >= 0 && tid < " << Threads
         << ") {\n"
         << "        for (int c = 0; c < " << Options.Coarsening
         << "; ++c) {\n"
         << "          long b = " << SS.initFirings()[SI->Node]
         << "L + (((long)j * " << Options.Coarsening << " + c) * "
         << GSS.Instances[SI->Node] << "L + " << SI->K << "L) * "
         << Threads << "L + tid;\n";

      // Ticket flow control: reserve ring space on queue out-edges,
      // wait for published tokens on queue in-edges.
      auto EmitWaits = [&]() {
        for (int EId : N.InEdges) {
          const ChannelEdge &E = G.edge(EId);
          if (!Schema.isQueue(EId))
            continue;
          OS << "          q_wait(&" << ticketName(EId, "tail")
             << ", (b + 1L) * " << E.ConsRate << "L);\n";
        }
        for (int EId : N.OutEdges) {
          const ChannelEdge &E = G.edge(EId);
          if (!Schema.isQueue(EId))
            continue;
          OS << "          q_wait(&" << ticketName(EId, "head")
             << ", (b + 1L) * " << E.ProdRate << "L - "
             << Schema.QueueCapTokens[EId] << "L);\n";
        }
      };
      auto EmitPublishes = [&]() {
        bool AnyPub = false;
        for (int EId : N.OutEdges)
          if (Schema.isQueue(EId))
            AnyPub = true;
        for (int EId : N.InEdges)
          if (Schema.isQueue(EId))
            AnyPub = true;
        if (!AnyPub)
          return;
        // Release the warp's ring accesses (writes on out-edges, reads
        // on in-edges) to the block before lane 31 moves any ticket.
        OS << "          __threadfence_block(); __syncwarp();\n";
        // Chained publish: the warp's base token index (b - lane) gates
        // each publish, so tickets advance strictly in token order even
        // though warps and concurrent node instances run unordered.
        for (int EId : N.OutEdges) {
          const ChannelEdge &E = G.edge(EId);
          if (!Schema.isQueue(EId))
            continue;
          OS << "          if ((threadIdx.x & 31) == 31 || tid == "
             << Threads - 1 << ") q_publish(&" << ticketName(EId, "tail")
             << ", (b - (tid & 31)) * " << E.ProdRate << "L, (b + 1L) * "
             << E.ProdRate << "L);\n";
        }
        for (int EId : N.InEdges) {
          const ChannelEdge &E = G.edge(EId);
          if (!Schema.isQueue(EId))
            continue;
          OS << "          if ((threadIdx.x & 31) == 31 || tid == "
             << Threads - 1 << ") q_publish(&" << ticketName(EId, "head")
             << ", (b - (tid & 31)) * " << E.ConsRate << "L, (b + 1L) * "
             << E.ConsRate << "L);\n";
        }
      };
      EmitWaits();

      if (N.isFilter()) {
        const Filter &F = *N.TheFilter;
        OS << "          work_" << N.Id << "_" << F.name() << "(";
        bool NeedComma = false;
        if (F.popRate() > 0) {
          std::string Buf = SI->Node == G.entryNode()
                                ? "buf_in"
                                : Buffers[N.InEdges[0]].Name;
          OS << Buf << ", b * " << F.popRate() << "L";
          NeedComma = true;
        }
        if (F.pushRate() > 0) {
          if (NeedComma)
            OS << ", ";
          std::string Buf = SI->Node == G.exitNode()
                                ? "buf_out"
                                : Buffers[N.OutEdges[0]].Name;
          OS << Buf << ", b * " << F.pushRate() << "L";
        }
        OS << ");\n";
      } else {
        OS << "          move_" << N.Id << "_" << N.Name << "(";
        for (size_t Port = 0; Port < N.InEdges.size(); ++Port) {
          const ChannelEdge &E = G.edge(N.InEdges[Port]);
          OS << (Port ? ", " : "") << Buffers[E.Id].Name << ", b * "
             << E.ConsRate << "L";
        }
        for (size_t Port = 0; Port < N.OutEdges.size(); ++Port) {
          const ChannelEdge &E = G.edge(N.OutEdges[Port]);
          OS << ", " << Buffers[E.Id].Name << ", " << E.InitTokens
             << "L + b * " << E.ProdRate << "L";
        }
        OS << ");\n";
      }
      EmitPublishes();
      OS << "        }\n      }\n    }\n";

      // Same-stage global edges consumed on this SM still rely on
      // o-order; warp groups run concurrently, so pin the order with a
      // block barrier exactly where the dependency exists.
      bool NeedsOrderBarrier = false;
      for (int EId : N.OutEdges) {
        if (Schema.isQueue(EId))
          continue;
        const ChannelEdge &E = G.edge(EId);
        for (const ScheduledInstance *SJ : Order)
          if (SJ->Node == E.Dst && SJ->F == SI->F)
            NeedsOrderBarrier = true;
      }
      if (NeedsOrderBarrier)
        OS << "    // o-order: a global edge is consumed at this stage "
              "on this SM\n"
           << "    __syncthreads();\n";
    }
    OS << "    break;\n  }\n";
  }
  OS << "  default: break;\n  }\n";
  OS << "  global_barrier(" << Sched.Pmax
     << "u * (unsigned int)(it + 1));\n";
  OS << "  }\n";
  OS << "}\n\n";

  if (!Options.EmitHostDriver) {
    std::string Src = OS.str();
    metricCounter("codegen.bytes").add(static_cast<int64_t>(Src.size()));
    return Src;
  }

  // --- Host driver: global rings only (queues live in shared memory);
  // one persistent launch, iterations advance behind the grid barrier.
  OS << "// Host driver: allocates the global ring buffers (queue edges\n"
     << "// live in shared memory), shuffles the program input per Eq. 9\n"
     << "// and launches the persistent kernel once.\n";
  OS << "void run_streamit_program(int iterations) {\n";
  for (const ChannelEdge &E : G.edges()) {
    if (Schema.isQueue(E.Id))
      continue;
    OS << "  " << tokenTypeName(E.Ty) << " *" << Buffers[E.Id].Name
       << "; cudaMalloc(&" << Buffers[E.Id].Name << ", "
       << (Buffers[E.Id].TokensPerIter * Buffers[E.Id].Slots +
           Buffers[E.Id].InitTokens) *
              4
       << "L);\n";
  }
  if (G.entryNode() >= 0) {
    const Filter &F = *G.node(G.entryNode()).TheFilter;
    OS << "  // shuffle_input: host[i] -> dev[128*(i%" << F.popRate()
       << ") + (i/(128*" << F.popRate() << "))*(128*" << F.popRate()
       << ") + ((i/" << F.popRate() << ")%128)]\n";
  }
  OS << "  dim3 grid(" << Sched.Pmax << "), block(" << BlockThreads
     << ");\n";
  OS << "  streamit_swp_kernel<<<grid, block>>>(";
  {
    bool First = true;
    for (const ChannelEdge &E : G.edges()) {
      if (Schema.isQueue(E.Id))
        continue;
      if (!First)
        OS << ", ";
      OS << Buffers[E.Id].Name;
      First = false;
    }
    if (G.entryNode() >= 0)
      OS << (First ? "" : ", ") << "buf_in";
    if (G.exitNode() >= 0)
      OS << ", buf_out";
    OS << ", iterations + " << Sched.stageSpan() << ");\n";
  }
  OS << "  cudaDeviceSynchronize();\n";
  OS << "}\n";
  std::string Src = OS.str();
  metricCounter("codegen.bytes").add(static_cast<int64_t>(Src.size()));
  return Src;
}
