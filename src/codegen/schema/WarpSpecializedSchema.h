//===- codegen/schema/WarpSpecializedSchema.h - Warp SWP kernel -*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The warp-specialized kernel schema: one persistent block per SM for
/// the whole run, each scheduled instance owning a dedicated warp group,
/// so producer and consumer filter groups execute concurrently the way
/// modern SWP kernels do ("Optimal Software Pipelining and Warp
/// Specialization for Tensor Core GPUs"). Channel edges whose endpoints
/// are wholly co-resident on one SM become bounded shared-memory ring
/// queues with ticket-based push/pop — a producer reserves ring space by
/// spinning until the consumer's head ticket frees capacity, then
/// publishes a new tail; tickets are monotonic 64-bit token counts, so
/// the ring never wraps ambiguously. Queue traffic never touches the
/// DRAM bus. Cross-SM channels keep the global-memory cluster-shuffle
/// rings of the paper's schema, separated per pipeline iteration by a
/// software grid barrier (the persistent kernel replaces the paper's
/// one-launch-per-iteration global barrier).
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_CODEGEN_SCHEMA_WARPSPECIALIZEDSCHEMA_H
#define SGPU_CODEGEN_SCHEMA_WARPSPECIALIZEDSCHEMA_H

#include "codegen/schema/KernelSchema.h"

namespace sgpu {

class WarpSpecializedSchema final : public KernelSchema {
public:
  SchemaKind kind() const override { return SchemaKind::WarpSpecialized; }
  const char *name() const override { return "warp"; }

  std::string emit(const StreamGraph &G, const SteadyState &SS,
                   const ExecutionConfig &Config, const GpuSteadyState &GSS,
                   const SwpSchedule &Sched, const SchemaAssignment &Schema,
                   const CudaEmitOptions &Options) const override;
};

} // namespace sgpu

#endif // SGPU_CODEGEN_SCHEMA_WARPSPECIALIZEDSCHEMA_H
