//===- core/Compiler.cpp - End-to-end compilation driver --------------------===//

#include "core/Compiler.h"

#include "codegen/schema/SchemaSelect.h"
#include "gpusim/Occupancy.h"
#include "profile/Profiler.h"
#include "sdf/Schedules.h"
#include "support/Check.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <algorithm>
#include <cctype>
#include <cmath>

using namespace sgpu;

LayoutKind sgpu::layoutFor(Strategy S) {
  return S == Strategy::SwpNoCoalesce ? LayoutKind::Sequential
                                      : LayoutKind::Shuffled;
}

const char *sgpu::strategyName(Strategy S) {
  switch (S) {
  case Strategy::Swp:
    return "SWP";
  case Strategy::SwpNoCoalesce:
    return "SWPNC";
  case Strategy::Serial:
    return "Serial";
  }
  SGPU_UNREACHABLE("unknown strategy");
}

const char *sgpu::strategyOptionName(Strategy S) {
  switch (S) {
  case Strategy::Swp:
    return "swp";
  case Strategy::SwpNoCoalesce:
    return "swpnc";
  case Strategy::Serial:
    return "serial";
  }
  SGPU_UNREACHABLE("unknown strategy");
}

std::optional<Strategy> sgpu::parseStrategyName(std::string_view Name) {
  std::string Lower(Name);
  for (char &C : Lower)
    C = static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
  if (Lower == "swp")
    return Strategy::Swp;
  if (Lower == "swpnc")
    return Strategy::SwpNoCoalesce;
  if (Lower == "serial" || Lower == "sas")
    return Strategy::Serial;
  return std::nullopt;
}

const char *sgpu::configSelectModeName(ConfigSelectMode M) {
  switch (M) {
  case ConfigSelectMode::Auto:
    return "auto";
  case ConfigSelectMode::Analytic:
    return "analytic";
  case ConfigSelectMode::Cycle:
    return "cycle";
  }
  SGPU_UNREACHABLE("unknown config-select mode");
}

std::optional<ConfigSelectMode>
sgpu::parseConfigSelectMode(std::string_view Name) {
  if (Name == "auto")
    return ConfigSelectMode::Auto;
  if (Name == "analytic")
    return ConfigSelectMode::Analytic;
  if (Name == "cycle")
    return ConfigSelectMode::Cycle;
  return std::nullopt;
}

namespace {

/// Per-node timing-model instances under a given config; a non-null
/// \p Schema splits queue-routed channel traffic into ViaQueue streams.
std::vector<SimInstance> buildNodeInstances(const GpuArch &Arch,
                                            const StreamGraph &G,
                                            const ExecutionConfig &Config,
                                            LayoutKind Layout,
                                            const SchemaAssignment *Schema);

} // namespace

KernelDesc sgpu::buildSwpKernelDesc(const GpuArch &Arch, const StreamGraph &G,
                                    const ExecutionConfig &Config,
                                    const SwpSchedule &Schedule,
                                    LayoutKind Layout, int Coarsening,
                                    const SchemaAssignment *Schema,
                                    const MachineModel *Machine) {
  const bool Hybrid = Machine && Machine->hasCpu();
  const int NumGpuSms = Hybrid ? Machine->numGpuSms() : Schedule.Pmax;
  KernelDesc Desc;
  Desc.Instances = buildNodeInstances(Arch, G, Config, Layout, Schema);
  Desc.StageSpan = Schedule.stageSpan();
  Desc.SmStreams.resize(NumGpuSms);
  if (Hybrid) {
    Desc.HostStreams.resize(Schedule.Pmax - NumGpuSms);
    for (size_t V = 0; V < Desc.Instances.size() &&
                       V < Config.CpuDelay.size();
         ++V)
      Desc.Instances[V].HostCycles = Config.CpuDelay[V];
  }
  for (int P = 0; P < Schedule.Pmax; ++P)
    for (const ScheduledInstance *SI : Schedule.smOrder(P)) {
      SmWorkItem Item{SI->Node, static_cast<int64_t>(Coarsening)};
      if (P < NumGpuSms)
        Desc.SmStreams[P].push_back(Item);
      else
        Desc.HostStreams[P - NumGpuSms].push_back(Item);
    }
  return Desc;
}

namespace {

/// Per-node timing-model instances under a given config; a non-null
/// \p Schema splits queue-routed channel traffic into ViaQueue streams.
std::vector<SimInstance> buildNodeInstances(const GpuArch &Arch,
                                            const StreamGraph &G,
                                            const ExecutionConfig &Config,
                                            LayoutKind Layout,
                                            const SchemaAssignment *Schema) {
  std::vector<SimInstance> Insts;
  Insts.reserve(G.numNodes());
  for (const GraphNode &N : G.nodes()) {
    WorkEstimate WE = nodeWorkEstimate(N);
    QueueTraffic Q;
    if (Schema)
      Q = nodeQueueTraffic(G, N, WE, *Schema);
    Insts.push_back(buildSimInstance(Arch, N, WE, Config.Threads[N.Id],
                                     Config.RegLimit, Layout, Q));
  }
  return Insts;
}

/// The model kind the profile sweep / Alg. 7 selection runs under.
TimingModelKind profileTimingKind(const CompileOptions &Options) {
  switch (Options.ConfigSelect) {
  case ConfigSelectMode::Auto:
    return Options.Timing;
  case ConfigSelectMode::Analytic:
    return TimingModelKind::Analytic;
  case ConfigSelectMode::Cycle:
    return TimingModelKind::Cycle;
  }
  SGPU_UNREACHABLE("unknown config-select mode");
}

/// Channel-buffer bytes of a software-pipelined schedule: each edge holds
/// (stage span + 2) coarsened iterations of tokens in flight plus its
/// initial tokens and peek slack; program I/O buffers hold one kernel
/// batch each.
int64_t swpBufferBytes(const StreamGraph &G, const SteadyState &SS,
                       const ExecutionConfig &Config,
                       const GpuSteadyState &GSS, const SwpSchedule &Sched,
                       int Coarsening, const SchemaAssignment &Schema) {
  int64_t SlotsInFlight = Sched.stageSpan() + 2;
  int64_t Bytes = 0;
  for (const ChannelEdge &E : G.edges()) {
    // Queue-assigned edges live in on-chip shared memory
    // (SchemaAssignment::SharedQueueBytes), not device channel buffers.
    if (Schema.isQueue(E.Id))
      continue;
    int64_t TokensPerGpuIter = GSS.Instances[E.Src] * E.ProdRate *
                               Config.Threads[E.Src] * Coarsening;
    int64_t Slack = E.InitTokens + (E.PeekRate - E.ConsRate);
    Bytes += (TokensPerGpuIter * SlotsInFlight + Slack) *
             tokenSizeBytes(E.Ty);
  }
  int64_t BatchBaseIters = GSS.Multiplier * Coarsening;
  Bytes += SS.inputTokensPerIteration() * BatchBaseIters * 4;
  Bytes += SS.outputTokensPerIteration() * BatchBaseIters * 4;
  return Bytes;
}

std::optional<CompileReport> compileSwp(const StreamGraph &G,
                                        const SteadyState &SS,
                                        const CompileOptions &Options) {
  LayoutKind Layout = layoutFor(Options.Strat);
  std::unique_ptr<TimingModel> Model =
      createTimingModel(Options.Timing, Options.Arch, Options.WarpSched);

  // Fig. 6 profiling under the strategy's layout, then Alg. 7. The
  // sweep shares the scheduler's worker budget; `--config-select` may
  // pin it to a different model than the invocation timing below.
  TimingModelKind ProfKind = profileTimingKind(Options);
  std::unique_ptr<TimingModel> ProfOwned;
  TimingModel *ProfModel = Model.get();
  if (ProfKind != Options.Timing) {
    ProfOwned = createTimingModel(ProfKind, Options.Arch, Options.WarpSched);
    ProfModel = ProfOwned.get();
  }
  ProfileTable PT =
      profileGraph(Options.Arch, G, Layout, Options.Sched.NumWorkers,
                   /*NumFirings=*/0, ProfModel);
  std::optional<ExecutionConfig> Config = selectExecutionConfig(SS, PT);
  if (!Config)
    return std::nullopt;

  GpuSteadyState GSS = computeGpuSteadyState(SS.repetitions(),
                                             Config->Threads);

  SchedulerOptions SO = Options.Sched;
  SO.Pmax = std::min(SO.Pmax, Options.Arch.NumSMs);

  // Hybrid machine: the SM array plus the CPU cores of Options.Cpu, the
  // flat processor space covering both. CPU delays land in the config
  // (GPU clock domain) and the requested coarsening becomes the cap of
  // the per-class memory-bounded decision variable.
  const bool Hybrid = Options.Machine == MachineMode::Hybrid;
  MachineModel Machine;
  const MachineModel *MachinePtr = nullptr;
  if (Hybrid) {
    Machine = MachineModel::hybrid(Options.Arch, SO.Pmax, Options.Cpu,
                                   Options.Coarsening);
    computeCpuDelays(*Config, G, Options.Cpu, Options.Arch);
    SO.Pmax = Machine.totalProcs();
    MachinePtr = &Machine;
  }

  std::optional<ScheduleResult> SR =
      scheduleSwp(G, SS, *Config, GSS, SO, MachinePtr);
  if (!SR)
    return std::nullopt;

  // Deployed SWPn factor: the solved per-class coarsening values, taken
  // at their min — the SDF rates force one uniform batch per invocation
  // across classes. GPU mode keeps the requested factor untouched.
  int Coarsening = Options.Coarsening;
  if (Hybrid && !SR->Schedule.ClassCoarsening.empty()) {
    int64_t C = SR->Schedule.ClassCoarsening[0];
    for (int64_t V : SR->Schedule.ClassCoarsening)
      C = std::min(C, V);
    Coarsening = static_cast<int>(std::max<int64_t>(1, C));
  }

  // Per-edge kernel-schema decision (codegen/schema/): which channels
  // the emitted kernel keeps in shared-memory ring queues. The schedule
  // is fixed first — the schema only changes how the channels are
  // realized, never the II. Auto simulates both realizations and keeps
  // the faster one, global winning ties.
  SchemaAssignment Schema;
  Schema.Edges.assign(G.numEdges(), EdgeSchema::GlobalChannel);
  Schema.QueueCapTokens.assign(G.numEdges(), 0);
  if (Options.Schema != SchemaMode::Global) {
    metricCounter("codegen.schema.requests").add(1);
    SchemaAssignment Warp = selectSchemaAssignment(
        Options.Arch, G, SS, *Config, GSS, SR->Schedule,
        SchemaKind::WarpSpecialized, Coarsening, MachinePtr);
    if (Options.Schema == SchemaMode::Warp) {
      Schema = std::move(Warp);
    } else if (Warp.numQueueEdges() > 0) {
      KernelDesc GlobalDesc =
          buildSwpKernelDesc(Options.Arch, G, *Config, SR->Schedule, Layout,
                             Coarsening, /*Schema=*/nullptr, MachinePtr);
      KernelDesc WarpDesc =
          buildSwpKernelDesc(Options.Arch, G, *Config, SR->Schedule, Layout,
                             Coarsening, &Warp, MachinePtr);
      double GlobalCycles = Model->simulateKernel(GlobalDesc).TotalCycles;
      double WarpCycles = Model->simulateKernel(WarpDesc).TotalCycles;
      if (WarpCycles < GlobalCycles)
        Schema = std::move(Warp);
    }
    if (Schema.Kind == SchemaKind::WarpSpecialized) {
      metricCounter("codegen.schema.warp_selected").add(1);
      metricCounter("codegen.schema.queue_edges").add(Schema.numQueueEdges());
      metricGauge("codegen.schema.shared_queue_bytes")
          .set(static_cast<double>(Schema.SharedQueueBytes));
    }
  }

  // Time one kernel invocation: each SM executes its instances serially,
  // each instance iterated `Coarsening` times (the SWPn schemes); the
  // whole grid shares the memory bus; one launch per invocation.
  KernelDesc Desc = buildSwpKernelDesc(Options.Arch, G, *Config,
                                       SR->Schedule, Layout,
                                       Coarsening, &Schema, MachinePtr);
  KernelSimResult Sim = Model->simulateKernel(Desc);
  double Kernel = Sim.TotalCycles;
  double BatchBaseIters =
      static_cast<double>(GSS.Multiplier) *
      static_cast<double>(Coarsening);

  CompileReport R;
  R.Strat = Options.Strat;
  R.Coarsening = Coarsening;
  R.Machine = Options.Machine;
  if (Hybrid) {
    R.MachineDesc = Machine;
    for (const ScheduledInstance &SI : SR->Schedule.Instances)
      if (Machine.isCpu(SI.Sm))
        ++R.CpuResidentInstances;
  }
  R.Layout = Layout;
  R.Timing = Options.Timing;
  R.WarpSched = Options.WarpSched;
  R.Config = std::move(*Config);
  R.GSS = GSS;
  R.SchedStats = *SR;
  R.Schedule = std::move(SR->Schedule);
  R.RequestedSchema = Options.Schema;
  R.Schema = std::move(Schema);
  R.GpuCyclesPerBaseIteration = Kernel / BatchBaseIters;
  R.CpuCyclesPerBaseIteration = cpuCyclesPerBaseIteration(SS, Options.Cpu);
  R.Speedup = speedupOverCpu(R.CpuCyclesPerBaseIteration,
                             Options.Cpu.ClockGHz,
                             R.GpuCyclesPerBaseIteration,
                             Options.Arch.CoreClockGHz);
  R.BufferBytes = swpBufferBytes(G, SS, R.Config, GSS, R.Schedule,
                                 Coarsening, R.Schema);
  // Fill + drain: the pipeline holds stageSpan() extra invocations in
  // flight, so first-token latency is the kernel plus the fill cost the
  // timing model reports.
  R.PipelineLatencyCycles = Kernel + Sim.FillCycles;
  double OutPerBaseIter =
      static_cast<double>(SS.outputTokensPerIteration());
  R.TokensPerKiloCycle =
      R.GpuCyclesPerBaseIteration > 0
          ? 1000.0 * OutPerBaseIter / R.GpuCyclesPerBaseIteration
          : 0.0;
  R.KernelSim = std::move(Sim);
  return R;
}

std::optional<CompileReport> compileSerial(const StreamGraph &G,
                                           const SteadyState &SS,
                                           const CompileOptions &Options) {
  // The Serial scheme: every filter runs as its own fully data-parallel
  // kernel in SAS order, NumSMs blocks, coalesced accesses (Section V).
  std::unique_ptr<TimingModel> Model =
      createTimingModel(Options.Timing, Options.Arch, Options.WarpSched);
  TimingModelKind ProfKind = profileTimingKind(Options);
  std::unique_ptr<TimingModel> ProfOwned;
  TimingModel *ProfModel = Model.get();
  if (ProfKind != Options.Timing) {
    ProfOwned = createTimingModel(ProfKind, Options.Arch, Options.WarpSched);
    ProfModel = ProfOwned.get();
  }
  ProfileTable PT = profileGraph(Options.Arch, G, LayoutKind::Shuffled,
                                 Options.Sched.NumWorkers,
                                 /*NumFirings=*/0, ProfModel);
  std::optional<ExecutionConfig> Config;
  for (int Threads :
       {Options.SerialThreads, 128, 256, 384, 512}) {
    for (int Regs : {32, 64, 20, 16}) {
      Config = makeFixedConfig(SS, PT, Regs, Threads);
      if (Config)
        break;
    }
    if (Config)
      break;
  }
  if (!Config)
    return std::nullopt;

  GpuSteadyState GSS = computeGpuSteadyState(SS.repetitions(),
                                             Config->Threads);
  std::vector<SimInstance> Insts = buildNodeInstances(
      Options.Arch, G, *Config, LayoutKind::Shuffled, /*Schema=*/nullptr);

  // One kernel per node per batch; blocks spread across the SMs in
  // waves (firings balanced, leftovers to the lowest SM indices). Batch
  // size matches the SWP comparison's coarsening.
  int64_t Batch = Options.Coarsening;
  int NumSMs = Options.Arch.NumSMs;
  double TotalCycles = 0.0;
  KernelSimResult Agg;
  Agg.PerSm.resize(NumSMs);
  for (const GraphNode &N : G.nodes()) {
    int64_t GpuFirings = GSS.Instances[N.Id] * Batch;
    KernelDesc Desc;
    Desc.Instances.push_back(Insts[N.Id]);
    Desc.SmStreams.resize(NumSMs);
    int64_t PerSm = GpuFirings / NumSMs;
    int64_t Rem = GpuFirings % NumSMs;
    for (int S = 0; S < NumSMs; ++S) {
      int64_t Iter = PerSm + (S < Rem ? 1 : 0);
      if (Iter > 0)
        Desc.SmStreams[S].push_back({0, Iter});
    }
    KernelSimResult Sim = Model->simulateKernel(Desc);
    TotalCycles += Sim.TotalCycles;
    Agg.TotalCycles += Sim.TotalCycles;
    Agg.Transactions += Sim.Transactions;
    for (size_t S = 0; S < Sim.PerSm.size(); ++S) {
      Agg.PerSm[S].BusyCycles += Sim.PerSm[S].BusyCycles;
      Agg.PerSm[S].StallCycles += Sim.PerSm[S].StallCycles;
      Agg.PerSm[S].TotalCycles += Sim.PerSm[S].TotalCycles;
      Agg.PerSm[S].FetchBusyCycles += Sim.PerSm[S].FetchBusyCycles;
      Agg.PerSm[S].FetchStallCycles += Sim.PerSm[S].FetchStallCycles;
      Agg.PerSm[S].OperandStallCycles += Sim.PerSm[S].OperandStallCycles;
      Agg.PerSm[S].MemStallCycles += Sim.PerSm[S].MemStallCycles;
      Agg.PerSm[S].WarpInstrs += Sim.PerSm[S].WarpInstrs;
      Agg.PerSm[S].Transactions += Sim.PerSm[S].Transactions;
    }
  }
  double BatchBaseIters = static_cast<double>(GSS.Multiplier) *
                          static_cast<double>(Batch);

  CompileReport R;
  R.Strat = Strategy::Serial;
  R.Coarsening = Options.Coarsening;
  R.Layout = LayoutKind::Shuffled;
  R.Timing = Options.Timing;
  R.WarpSched = Options.WarpSched;
  R.KernelSim = std::move(Agg);
  R.Config = std::move(*Config);
  R.GSS = GSS;
  // Serial has no pipeline to specialize: record the request, keep the
  // all-global assignment.
  R.RequestedSchema = Options.Schema;
  R.Schema.Edges.assign(G.numEdges(), EdgeSchema::GlobalChannel);
  R.Schema.QueueCapTokens.assign(G.numEdges(), 0);
  R.GpuCyclesPerBaseIteration = TotalCycles / BatchBaseIters;
  R.CpuCyclesPerBaseIteration = cpuCyclesPerBaseIteration(SS, Options.Cpu);
  R.Speedup = speedupOverCpu(R.CpuCyclesPerBaseIteration,
                             Options.Cpu.ClockGHz,
                             R.GpuCyclesPerBaseIteration,
                             Options.Arch.CoreClockGHz);

  double OutPerBaseIter =
      static_cast<double>(SS.outputTokensPerIteration());
  R.TokensPerKiloCycle =
      R.GpuCyclesPerBaseIteration > 0
          ? 1000.0 * OutPerBaseIter / R.GpuCyclesPerBaseIteration
          : 0.0;

  // SAS buffering (the paper's Table II SWP schedule is the cap; the
  // serial scheme reports its own SAS occupancy here).
  if (std::optional<SequentialSchedule> SAS =
          buildSingleAppearanceSchedule(SS)) {
    std::vector<int64_t> Occ = computeBufferOccupancy(SS, *SAS);
    // Scale base-token occupancy to one coarsened batch.
    R.BufferBytes =
        totalBufferBytes(G, Occ) * GSS.Multiplier * Options.Coarsening;
  }
  return R;
}

} // namespace

std::optional<CompileReport>
sgpu::compileForGpu(const StreamGraph &G, const CompileOptions &Options) {
  StageTimer Timer("compile.total");
  TraceSpan &Span = Timer.span();
  Span.argStr("strategy", strategyName(Options.Strat));
  Span.argInt("coarsening", Options.Coarsening);
  metricCounter("compile.requests").add(1);
  if (G.validate())
    return std::nullopt; // Structural error.
  if (G.hasStatefulFilter())
    return std::nullopt; // Paper Section II-B: stateless filters only.
  if (validateGraphRates(G))
    return std::nullopt; // Declared rates disagree with the work AST.
  std::optional<SteadyState> SS = SteadyState::compute(G);
  if (!SS)
    return std::nullopt; // Rate-inconsistent.
  std::optional<CompileReport> R = Options.Strat == Strategy::Serial
                                       ? compileSerial(G, *SS, Options)
                                       : compileSwp(G, *SS, Options);
  if (R) {
    metricCounter("compile.success").add(1);
    metricGauge("compile.speedup").set(R->Speedup);
    metricGauge("compile.buffer_bytes")
        .set(static_cast<double>(R->BufferBytes));
  }
  return R;
}
