//===- core/Compiler.h - End-to-end compilation driver ----------*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public entry point tying the whole trajectory of the paper's
/// Figure 5 together: flatten -> steady state -> profile (Fig. 6) ->
/// configuration selection (Alg. 7) -> ILP software pipelining (Section
/// III) -> timing on the simulated GeForce 8800 — under one of the
/// paper's three execution strategies:
///
///   Swp           optimized software pipelining, shuffled buffers;
///   SwpNoCoalesce the same schedule but sequential buffer layout
///                 (shared-memory staging when the working set fits);
///   Serial        a Single Appearance Schedule, one kernel per filter,
///                 fully data parallel, coalesced.
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_CORE_COMPILER_H
#define SGPU_CORE_COMPILER_H

#include "codegen/schema/KernelSchema.h"
#include "core/CpuBaseline.h"
#include "core/IlpScheduler.h"
#include "gpusim/TimingModel.h"
#include "profile/ConfigSelection.h"

#include <optional>
#include <string>
#include <string_view>

namespace sgpu {

/// Execution strategies compared in the paper's Figures 10 and 11.
enum class Strategy : uint8_t { Swp, SwpNoCoalesce, Serial };

/// Which timing model drives the Fig. 6 profile sweep and Alg. 7
/// configuration selection (`--config-select`). Kernel invocations are
/// always timed by CompileOptions::Timing; this only decouples the model
/// the CONFIG SEARCH trusts, for graphs where the analytic error band is
/// wide (peek-heavy sliding windows):
///
///   auto      follow CompileOptions::Timing (the historical behaviour);
///   analytic  select configs from the closed-form model, fast;
///   cycle     select configs from the staged-pipeline cycle simulator.
enum class ConfigSelectMode : uint8_t { Auto, Analytic, Cycle };

/// Canonical option spelling: "auto" / "analytic" / "cycle".
const char *configSelectModeName(ConfigSelectMode M);

/// Inverse of configSelectModeName; nullopt for unknown names.
std::optional<ConfigSelectMode> parseConfigSelectMode(std::string_view Name);

/// Compilation knobs.
struct CompileOptions {
  GpuArch Arch = GpuArch::geForce8800GTS512();
  SchedulerOptions Sched;
  CpuModel Cpu;
  Strategy Strat = Strategy::Swp;
  /// Which machine the SWP strategies schedule onto (`--machine`): the
  /// paper's homogeneous SM array (the default, bit-identical to the
  /// historical pipeline) or the hybrid CPU+GPU processor set, where
  /// `Cpu` supplies the host cores and the coarsening below becomes the
  /// cap of a per-class memory-bounded decision variable.
  MachineMode Machine = MachineMode::Gpu;
  /// The SWPn coarsening factor: each instance iterates n times inside
  /// the kernel (paper Figure 11; SWP8 is the headline configuration).
  /// Hybrid machines treat it as MachineModel::MaxCoarsen and deploy
  /// the solved per-class values instead.
  int Coarsening = 8;
  /// Threads per block for the Serial scheme (blocks fixed at NumSMs).
  int SerialThreads = 256;
  /// The timing model costing the profile sweep and the kernel
  /// invocations: the closed-form analytic model (the historical
  /// default) or the staged-pipeline warp-level cycle simulator.
  TimingModelKind Timing = TimingModelKind::Analytic;
  /// Warp-scheduler policy of the cycle simulator (`--warp-sched`);
  /// ignored by the analytic model.
  WarpSchedPolicy WarpSched = WarpSchedPolicy::RoundRobin;
  /// Which model the profile sweep / config selection trusts
  /// (`--config-select`); Auto follows `Timing`.
  ConfigSelectMode ConfigSelect = ConfigSelectMode::Auto;
  /// Which kernel schema the SWP strategies emit (`--schema`): the
  /// paper's global-channel kernel, the warp-specialized persistent
  /// kernel with shared-memory ring queues on eligible same-SM edges,
  /// or Auto — simulate both and keep the faster one (tie: global).
  /// The Serial strategy has no pipeline to specialize and ignores it.
  SchemaMode Schema = SchemaMode::Global;
};

/// Everything the benches and tests need about one compiled program.
struct CompileReport {
  Strategy Strat = Strategy::Swp;
  /// Deployed SWPn factor. GPU mode echoes CompileOptions::Coarsening;
  /// hybrid mode deploys min over the solved per-class values (the SDF
  /// rates force one uniform batch across classes).
  int Coarsening = 1;
  LayoutKind Layout = LayoutKind::Shuffled;
  TimingModelKind Timing = TimingModelKind::Analytic;
  WarpSchedPolicy WarpSched = WarpSchedPolicy::RoundRobin;

  /// The machine the schedule targets; MachineDesc is meaningful (and
  /// CpuResidentInstances possibly non-zero) only for Hybrid.
  MachineMode Machine = MachineMode::Gpu;
  MachineModel MachineDesc;
  int CpuResidentInstances = 0; ///< Scheduled instances on CPU cores.

  ExecutionConfig Config;
  GpuSteadyState GSS;
  SwpSchedule Schedule;     ///< Meaningful for the SWP strategies.
  ScheduleResult SchedStats;

  /// The schema mode the caller asked for (CompileOptions::Schema).
  SchemaMode RequestedSchema = SchemaMode::Global;
  /// The per-edge schema decision actually taken (all-global unless the
  /// warp-specialized schema was requested or won the Auto comparison).
  SchemaAssignment Schema;

  double GpuCyclesPerBaseIteration = 0.0;
  double CpuCyclesPerBaseIteration = 0.0;
  double Speedup = 0.0;     ///< Wall-clock, vs. the CPU model.
  int64_t BufferBytes = 0;  ///< Channel buffer footprint (Table II).

  /// Pipeline latency: cycles from a token entering the pipeline until
  /// its results emerge, i.e. (stage span + 1) kernel invocations. Zero
  /// for the Serial scheme (no software pipeline).
  double PipelineLatencyCycles = 0.0;
  /// Program throughput: output tokens per thousand GPU cycles.
  double TokensPerKiloCycle = 0.0;

  /// The timing model's view of one kernel invocation (for the Serial
  /// scheme, the element-wise sum over the per-node kernels). PerSm
  /// carries the per-SM busy/stall/total breakdown — the cycle simulator
  /// fills every field; the analytic model only totals and transactions.
  KernelSimResult KernelSim;
};

/// Compiles \p G under \p Options. Returns std::nullopt when the graph is
/// rate-inconsistent, no execution configuration is feasible, or no
/// schedule exists within the II relaxation limit.
std::optional<CompileReport> compileForGpu(const StreamGraph &G,
                                           const CompileOptions &Options);

/// Assembles the per-SM instance streams of one SWP kernel invocation
/// under \p Schedule: each SM runs its scheduled instances in slot
/// order, each iterated \p Coarsening times (SWPn). StageSpan comes
/// from the schedule, so simulateKernel can surface the
/// prologue/epilogue fill cost. A non-null \p Schema reroutes the
/// queue-assigned edges' traffic off the DRAM bus (ViaQueue streams,
/// ticket overhead in the compute budget). A hybrid \p Machine splits
/// the schedule's processors: SMs fill SmStreams, CPU cores fill
/// HostStreams timed from ExecutionConfig::CpuDelay (no coalescer, no
/// DRAM-bus share).
KernelDesc buildSwpKernelDesc(const GpuArch &Arch, const StreamGraph &G,
                              const ExecutionConfig &Config,
                              const SwpSchedule &Schedule, LayoutKind Layout,
                              int Coarsening,
                              const SchemaAssignment *Schema = nullptr,
                              const MachineModel *Machine = nullptr);

/// The layout a strategy uses.
LayoutKind layoutFor(Strategy S);

/// Human-readable strategy name ("SWP", "SWPNC", "Serial").
const char *strategyName(Strategy S);

/// Canonical lowercase option spelling ("swp", "swpnc", "serial") — the
/// spelling `--strategy=` takes and the one the service's cache keys are
/// derived from (service/GraphHash.h).
const char *strategyOptionName(Strategy S);

/// Inverse of strategyOptionName, case-insensitive, also accepting the
/// strategyName() display spellings and the paper's "sas" alias for
/// Serial. This is the single parsing/canonicalization path shared by
/// `sgpu-compile --strategy=`, the service protocol, and GraphHash — so
/// textually different but equivalent spellings ("SWP", "swp") cannot
/// produce different cache keys. Returns std::nullopt for unknown names.
std::optional<Strategy> parseStrategyName(std::string_view Name);

} // namespace sgpu

#endif // SGPU_CORE_COMPILER_H
