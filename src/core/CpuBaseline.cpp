//===- core/CpuBaseline.cpp - Single-threaded CPU cost model ----------------===//

#include "core/CpuBaseline.h"

#include "core/ExecutionModel.h"

using namespace sgpu;

double sgpu::cpuCyclesPerFiring(const GraphNode &N, const CpuModel &Model) {
  WorkEstimate WE = nodeWorkEstimate(N);
  return Model.CyclesPerAluOp *
             static_cast<double>(WE.IntOps + WE.FloatOps +
                                 WE.LocalArrayAccesses) +
         Model.CyclesPerTransc * static_cast<double>(WE.TranscOps) +
         Model.CyclesPerChannelOp *
             static_cast<double>(WE.ChannelReads + WE.ChannelWrites) +
         Model.CyclesPerFiring;
}

double sgpu::cpuCyclesPerBaseIteration(const SteadyState &SS,
                                       const CpuModel &Model) {
  const StreamGraph &G = SS.graph();
  double Total = 0.0;
  for (const GraphNode &N : G.nodes())
    Total += cpuCyclesPerFiring(N, Model) *
             static_cast<double>(SS.repetitionsOf(N.Id));
  return Total;
}

double sgpu::speedupOverCpu(double CpuCycles, double CpuClockGHz,
                            double GpuCycles, double GpuClockGHz) {
  double CpuSeconds = CpuCycles / (CpuClockGHz * 1e9);
  double GpuSeconds = GpuCycles / (GpuClockGHz * 1e9);
  return GpuSeconds > 0.0 ? CpuSeconds / GpuSeconds : 0.0;
}
