//===- core/CpuBaseline.h - Single-threaded CPU cost model ------*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's baseline is the StreamIt uniprocessor backend compiled
/// with gcc -O3 on a 2.83 GHz Xeon, single threaded. Our stand-in is a
/// calibrated scalar cost model over the same filter ASTs: one ALU op
/// per cycle, cache-resident channel traffic at a small per-op cost,
/// slow transcendentals, and a per-firing overhead for the scheduler
/// loop. Speedups divide wall-clock times, i.e. cycles over clock rates.
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_CORE_CPUBASELINE_H
#define SGPU_CORE_CPUBASELINE_H

#include "sdf/SteadyState.h"

namespace sgpu {

/// Parameters of the scalar CPU model (defaults: the paper's Xeon).
/// Besides the single-threaded baseline, the same rates seed the hybrid
/// machine model (core/ExecutionModel MachineModel): each CPU core runs
/// scheduled instances at these per-op costs.
struct CpuModel {
  double ClockGHz = 2.83;
  double CyclesPerAluOp = 1.0;
  double CyclesPerTransc = 30.0;
  double CyclesPerChannelOp = 2.0;
  double CyclesPerFiring = 12.0; ///< Call/dispatch overhead per firing.
  /// Cores the hybrid machine model may schedule onto (the paper-era
  /// Xeon host). Ignored by the single-threaded baseline.
  int NumCores = 8;
  /// Per-core cache slice bounding a CPU-resident instance's working
  /// set — the hybrid coarsening variable's memory budget on this class.
  int64_t CacheBytesPerCore = 2 * 1024 * 1024;
};

/// CPU cycles for one firing of node \p N under \p Model: the per-op
/// costs over the node's work estimate plus the dispatch overhead. The
/// per-node building block of both the serial baseline below and the
/// hybrid machine model's CPU-class delays.
double cpuCyclesPerFiring(const GraphNode &N, const CpuModel &Model);

/// CPU cycles to execute one base steady-state iteration of \p SS.
double cpuCyclesPerBaseIteration(const SteadyState &SS,
                                 const CpuModel &Model = CpuModel());

/// Wall-clock speedup of a GPU execution over the CPU baseline:
/// (cpuCycles / cpuClock) / (gpuCycles / gpuClock), per base iteration.
double speedupOverCpu(double CpuCycles, double CpuClockGHz, double GpuCycles,
                      double GpuClockGHz);

} // namespace sgpu

#endif // SGPU_CORE_CPUBASELINE_H
