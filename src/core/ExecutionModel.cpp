//===- core/ExecutionModel.cpp - Schedules and cost mapping -----------------===//

#include "core/ExecutionModel.h"

#include "gpusim/cyclesim/Coalescer.h"
#include "support/Check.h"
#include "support/MathExtras.h"

#include <algorithm>

using namespace sgpu;

const char *sgpu::machineModeName(MachineMode M) {
  switch (M) {
  case MachineMode::Gpu:
    return "gpu";
  case MachineMode::Hybrid:
    return "hybrid";
  }
  SGPU_UNREACHABLE("unknown machine mode");
}

std::optional<MachineMode> sgpu::parseMachineMode(std::string_view Name) {
  if (Name == "gpu")
    return MachineMode::Gpu;
  if (Name == "hybrid")
    return MachineMode::Hybrid;
  return std::nullopt;
}

const char *sgpu::procClassKindName(ProcClassKind K) {
  switch (K) {
  case ProcClassKind::GpuSm:
    return "sm";
  case ProcClassKind::CpuCore:
    return "cpu";
  }
  SGPU_UNREACHABLE("unknown processor class kind");
}

MachineModel MachineModel::gpuOnly(const GpuArch &Arch, int Pmax) {
  MachineModel M;
  M.Classes.push_back(
      {ProcClassKind::GpuSm, Pmax, Arch.DramBytes / Arch.NumSMs});
  return M;
}

MachineModel MachineModel::hybrid(const GpuArch &Arch, int Pmax,
                                  const CpuModel &Cpu, int64_t MaxCoarsen) {
  MachineModel M;
  // SM channels stream through device memory (the paper's DRAM-resident
  // buffers), so an SM's working-set budget is its DRAM share; host
  // cores are bounded by their cache so coarsening never thrashes it.
  M.Classes.push_back(
      {ProcClassKind::GpuSm, Pmax, Arch.DramBytes / Arch.NumSMs});
  M.Classes.push_back(
      {ProcClassKind::CpuCore, Cpu.NumCores, Cpu.CacheBytesPerCore});
  M.MaxCoarsen = std::max<int64_t>(1, MaxCoarsen);
  return M;
}

double sgpu::procDelay(const ExecutionConfig &Config,
                       const MachineModel *Machine, int Node, int Proc) {
  if (Machine && Proc >= Machine->numGpuSms() &&
      static_cast<size_t>(Node) < Config.CpuDelay.size())
    return Config.CpuDelay[Node];
  return Config.Delay[Node];
}

void sgpu::computeCpuDelays(ExecutionConfig &Config, const StreamGraph &G,
                            const CpuModel &Cpu, const GpuArch &Arch) {
  double ClockRatio = Arch.CoreClockGHz / Cpu.ClockGHz;
  Config.CpuDelay.resize(G.numNodes());
  for (const GraphNode &N : G.nodes())
    Config.CpuDelay[N.Id] = cpuCyclesPerFiring(N, Cpu) *
                            static_cast<double>(Config.Threads[N.Id]) *
                            ClockRatio;
}

GpuSteadyState
sgpu::computeGpuSteadyState(const std::vector<int64_t> &BaseReps,
                            const std::vector<int64_t> &Threads) {
  assert(BaseReps.size() == Threads.size() && "vector size mismatch");
  GpuSteadyState SS;
  int64_t M = 1;
  for (size_t V = 0; V < BaseReps.size(); ++V) {
    assert(Threads[V] > 0 && BaseReps[V] > 0 && "bad configuration");
    // Need Threads[v] | BaseReps[v] * M.
    int64_t Need = Threads[V] / gcd64(Threads[V], BaseReps[V]);
    M = lcm64(M, Need);
  }
  SS.Multiplier = M;
  SS.Instances.resize(BaseReps.size());
  for (size_t V = 0; V < BaseReps.size(); ++V)
    SS.Instances[V] = BaseReps[V] * M / Threads[V];
  return SS;
}

int64_t SwpSchedule::stageSpan() const {
  if (Instances.empty())
    return 0;
  int64_t Lo = Instances.front().F, Hi = Instances.front().F;
  for (const ScheduledInstance &SI : Instances) {
    Lo = std::min(Lo, SI.F);
    Hi = std::max(Hi, SI.F);
  }
  return Hi - Lo;
}

std::vector<const ScheduledInstance *> SwpSchedule::smOrder(int Sm) const {
  std::vector<const ScheduledInstance *> Out;
  for (const ScheduledInstance &SI : Instances)
    if (SI.Sm == Sm)
      Out.push_back(&SI);
  std::sort(Out.begin(), Out.end(),
            [](const ScheduledInstance *A, const ScheduledInstance *B) {
              if (A->O != B->O)
                return A->O < B->O;
              if (A->Node != B->Node)
                return A->Node < B->Node;
              return A->K < B->K;
            });
  return Out;
}

const ScheduledInstance &SwpSchedule::instance(int Node, int64_t K) const {
  for (const ScheduledInstance &SI : Instances)
    if (SI.Node == Node && SI.K == K)
      return SI;
  SGPU_UNREACHABLE("instance not present in schedule");
}

WorkEstimate sgpu::nodeWorkEstimate(const GraphNode &N) {
  if (N.isFilter())
    return analyzeFilter(*N.TheFilter);
  // Splitters and joiners "only move data around, without any
  // computation" (Section V-B): channel traffic plus index bookkeeping.
  WorkEstimate WE;
  WE.ChannelReads = N.totalPopPerFiring();
  WE.ChannelWrites = N.totalPushPerFiring();
  WE.IntOps = WE.ChannelReads + WE.ChannelWrites; // Address arithmetic.
  WE.Registers = 10;
  return WE;
}

int64_t sgpu::nodeChannelTraffic(const GraphNode &N) {
  return N.totalPopPerFiring() + N.totalPushPerFiring();
}

InstanceCost sgpu::buildInstanceCost(const GpuArch &Arch, const GraphNode &N,
                                     const WorkEstimate &WE, int64_t Threads,
                                     int RegLimit, LayoutKind Layout,
                                     double TxnsPerAccess,
                                     const QueueTraffic &Queue) {
  // Channel ops rerouted through shared-memory queues by the schema
  // assignment never touch the DRAM bus: price them as shared accesses
  // plus the ticket handshake, and keep them out of the global side.
  int64_t QueueOps = Queue.Reads + Queue.Writes;
  assert(QueueOps <= WE.ChannelReads + WE.ChannelWrites &&
         "queue traffic exceeds the node's channel ops");
  InstanceCost C;
  C.Threads = Threads;
  C.ComputeOps = WE.IntOps + WE.FloatOps + WE.LocalArrayAccesses;
  if (Queue.Reads > 0)
    C.ComputeOps += QueueTicketOpsPerSide;
  if (Queue.Writes > 0)
    C.ComputeOps += QueueTicketOpsPerSide;
  C.SfuOps = WE.TranscOps;
  C.GlobalAccesses =
      std::max<int64_t>(0, WE.ChannelReads + WE.ChannelWrites - QueueOps);
  C.SharedAccesses = QueueOps;

  // Register pressure beyond the compile-time limit spills (the paper's
  // profiling compiles each filter under {16,20,32,64}-register limits
  // and lets nvcc generate spill code). Two device accesses per spilled
  // register per firing, plus local-array traffic.
  int Spilled = std::max(0, WE.Registers - RegLimit);
  C.SpillAccesses = 2 * Spilled + 2 * WE.LocalArrayAccesses;

  if (TxnsPerAccess >= 0.0) {
    C.TxnsPerAccess = TxnsPerAccess;
    return C;
  }

  int64_t PopR = N.totalPopPerFiring();
  int64_t PushR = N.totalPushPerFiring();
  int64_t PeekR = N.isFilter() ? N.TheFilter->peekRate() : PopR;
  bool Staged = false;
  if (Layout == LayoutKind::Shuffled) {
    // Eq. 10/11 accesses are WarpBase + laneId by construction.
    C.TxnsPerAccess = 1.0 / HalfWarpSize;
  } else {
    // Sequential layout (the SWPNC scheme): check the shared-memory
    // staging escape hatch first — when the whole working set of all
    // threads fits in 16 KB, SWPNC streams it through shared memory with
    // coalesced global accesses (Section V-B explains Filterbank/FMRadio).
    int64_t WorkingSetBytes = (PeekR + PushR) * 4 * Threads;
    if (WorkingSetBytes > 0 && WorkingSetBytes <= Arch.SharedMemPerSM) {
      Staged = true;
      C.TxnsPerAccess = 1.0 / HalfWarpSize;
      // Every channel element also crosses shared memory; strided shared
      // accesses conflict, but a conflict costs ~1 cycle per extra lane.
      C.SharedAccesses += C.GlobalAccesses;
      std::vector<int64_t> Addrs;
      int64_t R = std::max<int64_t>(PopR, 1);
      for (int Lane = 0; Lane < HalfWarpSize; ++Lane)
        Addrs.push_back(naturalIndex(Lane, 0, R));
      C.SharedConflictDegree =
          static_cast<double>(sharedMemoryConflictDegree(Addrs));
    } else {
      // Plain uncoalesced traffic: measure the strided pattern.
      double Total = 0.0;
      int64_t Sides = 0;
      if (PopR > 0) {
        Total += analyzeStridedAccess(LayoutKind::Sequential, Threads, PopR,
                                      PopR)
                     .transactionsPerAccess();
        ++Sides;
      }
      if (PushR > 0) {
        Total += analyzeStridedAccess(LayoutKind::Sequential, Threads, PushR,
                                      PushR)
                     .transactionsPerAccess();
        ++Sides;
      }
      C.TxnsPerAccess = Sides > 0 ? Total / static_cast<double>(Sides) : 0.0;
    }
  }

  // Peek-serialization surcharge: a sliding window (peek > pop) makes
  // each thread read into its neighbour's region, so the half-warp
  // accesses of the read stream stop lining up with the layout and the
  // per-access pricing above undercounts. Charge the exact excess from
  // the Coalescer over the real buffer addresses — this is what closed
  // the Filterbank 12x / FMRadio 8.5x analytic-vs-cycle gaps. Staged
  // streams are exempt (the global side coalesces by construction).
  if (!Staged && PeekR > PopR && WE.ChannelReads > 0 && Queue.Reads == 0) {
    MemStream R;
    R.Count = WE.ChannelReads;
    R.KeyRate = std::max<int64_t>(PopR, 1);
    R.Window = std::max<int64_t>({PeekR, PopR, 1});
    R.Layout = Layout;
    double Exact = static_cast<double>(streamTransactions(R, Threads));
    double Priced = static_cast<double>(Threads) *
                    static_cast<double>(WE.ChannelReads) * C.TxnsPerAccess;
    C.PeekSerialTxns = std::max(0.0, Exact - Priced);
  }
  return C;
}

SimInstance sgpu::buildSimInstance(const GpuArch &Arch, const GraphNode &N,
                                   const WorkEstimate &WE, int64_t Threads,
                                   int RegLimit, LayoutKind Layout,
                                   const QueueTraffic &Queue) {
  SimInstance Inst;
  Inst.Node = N.Id;
  Inst.Cost =
      buildInstanceCost(Arch, N, WE, Threads, RegLimit, Layout, -1.0, Queue);

  int64_t PopR = N.totalPopPerFiring();
  int64_t PushR = N.totalPushPerFiring();
  int64_t PeekR = N.isFilter() ? N.TheFilter->peekRate() : PopR;

  // Mirror buildInstanceCost's SWPNC decision: sequential layout stages
  // through shared memory when the whole working set fits in 16 KB, and
  // then the global side streams coalesced.
  bool Staged = false;
  if (Layout == LayoutKind::Sequential) {
    int64_t WorkingSetBytes = (PeekR + PushR) * 4 * Threads;
    Staged = WorkingSetBytes > 0 && WorkingSetBytes <= Arch.SharedMemPerSM;
  }

  // Queue-routed portions split off into ViaQueue streams: the cycle
  // simulator keeps them off the DRAM bus and coalescer (their issue
  // cost already sits in the shared-access compute budget of the cost).
  int64_t GlobalReads = std::max<int64_t>(0, WE.ChannelReads - Queue.Reads);
  int64_t GlobalWrites = std::max<int64_t>(0, WE.ChannelWrites - Queue.Writes);
  if (GlobalReads > 0) {
    MemStream R;
    R.Count = GlobalReads;
    R.KeyRate = std::max<int64_t>(PopR, 1);
    // A thread addresses its peek window (at least its popped tokens);
    // reads beyond that re-load the same buffer positions.
    R.Window = std::max<int64_t>({PeekR, PopR, 1});
    R.Layout = Layout;
    R.ViaShared = Staged;
    Inst.Streams.push_back(R);
  }
  if (Queue.Reads > 0) {
    MemStream R;
    R.Count = Queue.Reads;
    R.KeyRate = std::max<int64_t>(PopR, 1);
    R.Window = std::max<int64_t>(PopR, 1);
    R.Layout = Layout;
    R.ViaQueue = true;
    Inst.Streams.push_back(R);
  }
  if (GlobalWrites > 0) {
    MemStream W;
    W.Count = GlobalWrites;
    W.KeyRate = std::max<int64_t>(PushR, 1);
    W.Window = std::max<int64_t>(PushR, 1);
    W.Layout = Layout;
    W.ViaShared = Staged;
    W.IsWrite = true;
    Inst.Streams.push_back(W);
  }
  if (Queue.Writes > 0) {
    MemStream W;
    W.Count = Queue.Writes;
    W.KeyRate = std::max<int64_t>(PushR, 1);
    W.Window = std::max<int64_t>(PushR, 1);
    W.Layout = Layout;
    W.ViaQueue = true;
    W.IsWrite = true;
    Inst.Streams.push_back(W);
  }
  return Inst;
}
