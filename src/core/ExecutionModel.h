//===- core/ExecutionModel.h - Schedules and cost mapping -------*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared vocabulary of the compilation pipeline: execution
/// configurations (the profiling phase's product), the coarsened "GPU
/// steady state" whose firings are the ILP's schedulable instances, the
/// software-pipelined schedule itself (w/o/f of Section III), and the
/// translation from filter work estimates to the simulator's cost model.
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_CORE_EXECUTIONMODEL_H
#define SGPU_CORE_EXECUTIONMODEL_H

#include "core/CpuBaseline.h"
#include "gpusim/GpuArch.h"
#include "gpusim/KernelTiming.h"
#include "gpusim/TimingModel.h"
#include "ir/Analyzer.h"
#include "ir/StreamGraph.h"
#include "layout/AccessAnalyzer.h"
#include "sdf/SteadyState.h"

#include <optional>
#include <string_view>
#include <vector>

namespace sgpu {

/// The register limits the paper profiles with (Fig. 6).
inline constexpr int ProfileRegLimits[] = {16, 20, 32, 64};
/// The thread counts the paper profiles with (Fig. 6).
inline constexpr int ProfileThreadCounts[] = {128, 256, 384, 512};

/// The execution configuration selected by profiling (paper Alg. 7):
/// one global register limit and block size, plus the per-node active
/// thread count k <= NumThreads.
struct ExecutionConfig {
  int RegLimit = 32;
  int NumThreads = 256;
  std::vector<int64_t> Threads; ///< Active threads per graph node.
  std::vector<double> Delay;    ///< d(v): cycles per GPU instance firing.
  /// d_cpu(v): GPU-clock cycles for one *coarsened* instance of v
  /// (Threads[v] base firings, run serially) on one CPU core. Empty in
  /// GPU-only mode; filled by computeCpuDelays for hybrid machines.
  std::vector<double> CpuDelay;
};

//===----------------------------------------------------------------------===//
// Heterogeneous machine model (hybrid CPU+GPU scheduling)
//===----------------------------------------------------------------------===//

/// Which machine the compile targets (`--machine=`): the paper's
/// homogeneous SM array, or the hybrid CPU+GPU processor set of the
/// memory-constrained vectorization formulation (arXiv 1711.11154).
enum class MachineMode : uint8_t { Gpu, Hybrid };

/// Canonical option spelling: "gpu" / "hybrid".
const char *machineModeName(MachineMode M);

/// Inverse of machineModeName; nullopt for unknown names.
std::optional<MachineMode> parseMachineMode(std::string_view Name);

/// The processor classes a schedule may assign instances to.
enum class ProcClassKind : uint8_t { GpuSm, CpuCore };

/// "sm" / "cpu" — used in verifier diagnostics and report JSON.
const char *procClassKindName(ProcClassKind K);

/// One class of identical processors with a per-processor memory
/// budget (an SM's share of the DRAM-resident channel store, a cache
/// slice for a CPU core). The budget bounds the class's coarsening
/// decision variable.
struct ProcessorClass {
  ProcClassKind Kind = ProcClassKind::GpuSm;
  int Count = 0;
  int64_t MemBytes = 0;
};

/// The machine the scheduler targets: an ordered list of processor
/// classes flattened into one processor index space. GPU SMs always come
/// first, so a GPU-only machine's indices coincide with the paper's SM
/// numbering and ScheduledInstance::Sm keeps its meaning (it is simply a
/// flat processor index now).
struct MachineModel {
  std::vector<ProcessorClass> Classes;
  /// Upper bound on every class's coarsening decision variable (the SWPn
  /// sweep cap the variable replaces).
  int64_t MaxCoarsen = 1;

  int totalProcs() const {
    int N = 0;
    for (const ProcessorClass &C : Classes)
      N += C.Count;
    return N;
  }
  int numGpuSms() const {
    int N = 0;
    for (const ProcessorClass &C : Classes)
      if (C.Kind == ProcClassKind::GpuSm)
        N += C.Count;
    return N;
  }
  bool hasCpu() const {
    for (const ProcessorClass &C : Classes)
      if (C.Kind == ProcClassKind::CpuCore && C.Count > 0)
        return true;
    return false;
  }
  /// Class of flat processor \p Proc.
  int classIndexOf(int Proc) const {
    for (size_t I = 0; I < Classes.size(); ++I) {
      if (Proc < Classes[I].Count)
        return static_cast<int>(I);
      Proc -= Classes[I].Count;
    }
    return -1;
  }
  const ProcessorClass &classOf(int Proc) const {
    return Classes[static_cast<size_t>(classIndexOf(Proc))];
  }
  bool isCpu(int Proc) const {
    return classOf(Proc).Kind == ProcClassKind::CpuCore;
  }

  /// The paper's machine: \p Pmax identical SMs, DRAM-share budget.
  static MachineModel gpuOnly(const GpuArch &Arch, int Pmax);
  /// \p Pmax SMs plus \p Cpu.NumCores CPU cores with per-core cache
  /// budgets; \p MaxCoarsen caps the coarsening decision variable.
  static MachineModel hybrid(const GpuArch &Arch, int Pmax,
                             const CpuModel &Cpu, int64_t MaxCoarsen);
};

/// Delay of one coarsened instance of \p Node on flat processor \p Proc:
/// the profiled GPU delay on an SM, the CPU-class delay on a core.
/// \p Machine may be null (GPU-only), in which case the GPU delay rules.
double procDelay(const ExecutionConfig &Config, const MachineModel *Machine,
                 int Node, int Proc);

/// Fills \p Config.CpuDelay: per coarsened instance, Threads[v] serial
/// base firings at the CpuModel rates, converted into GPU shader cycles
/// (cpu_cycles * GpuClock / CpuClock) so both classes share one clock
/// domain in the schedule arithmetic.
void computeCpuDelays(ExecutionConfig &Config, const StreamGraph &G,
                      const CpuModel &Cpu, const GpuArch &Arch);

/// The coarsened steady state: one GPU firing of node v covers
/// Threads[v] base firings, so the instance counts shrink accordingly
/// (Section IV-B: "the firing rates ... are different from the
/// corresponding firing rates in the original StreamIt program").
struct GpuSteadyState {
  /// GPU instances per node: k_v^gpu = k_v * Multiplier / Threads[v].
  std::vector<int64_t> Instances;
  /// How many base steady states one GPU steady state covers.
  int64_t Multiplier = 1;

  int64_t totalInstances() const {
    int64_t N = 0;
    for (int64_t I : Instances)
      N += I;
    return N;
  }
};

/// Computes the GPU steady state from the base repetition vector and the
/// per-node thread counts: the smallest M with Threads[v] | k_v * M.
GpuSteadyState computeGpuSteadyState(const std::vector<int64_t> &BaseReps,
                                     const std::vector<int64_t> &Threads);

/// One scheduled instance: the ILP solution's w (SM), o (slot) and f
/// (stage) for instance K of node Node.
struct ScheduledInstance {
  int Node = -1;
  int64_t K = 0;
  int Sm = 0;
  double O = 0.0;
  int64_t F = 0;
};

/// A complete software-pipelined schedule at initiation interval II.
/// Pmax counts *all* processors of the machine (flat index space); for
/// the paper's GPU-only machine that is exactly the SM count.
struct SwpSchedule {
  double II = 0.0;
  int Pmax = 0;
  std::vector<ScheduledInstance> Instances;
  /// Hybrid machines only: the per-class coarsening decision variable's
  /// solved value (memory-bounded SWPn factor). Empty in GPU-only mode.
  std::vector<int64_t> ClassCoarsening;

  /// sigma = II*F + O, the linear-form start time (paper Eq. 3 at j=0).
  static double sigma(double II, const ScheduledInstance &SI) {
    return II * static_cast<double>(SI.F) + SI.O;
  }

  /// max F - min F: how many iterations the pipeline holds in flight.
  int64_t stageSpan() const;

  /// Instances of SM \p Sm in execution (o, then node/k) order.
  std::vector<const ScheduledInstance *> smOrder(int Sm) const;

  const ScheduledInstance &instance(int Node, int64_t K) const;
};

/// Per-node work summary used to cost instances (filters analyzed
/// statically; splitters/joiners are pure data movers).
WorkEstimate nodeWorkEstimate(const GraphNode &N);

/// Per-firing channel tokens a warp-specialized schema assignment
/// (codegen/schema/) reroutes through shared-memory ring queues. Queue
/// tokens never touch the DRAM bus: they are subtracted from the
/// instance's global accesses and priced as shared-memory accesses plus
/// the ticket bookkeeping below.
struct QueueTraffic {
  int64_t Reads = 0;  ///< Queue-consumed channel ops per base firing.
  int64_t Writes = 0; ///< Queue-produced channel ops per base firing.
};

/// Integer ops per firing per queued side for the ticket handshake (the
/// emitted q_wait/q_publish pair: compare, branch, add, atomicMax). The
/// publisher's in-order chain spin and the block fences run on one lane
/// per warp, amortized below an op per firing, and are not charged.
inline constexpr int64_t QueueTicketOpsPerSide = 4;

/// Channel tokens read + written by one base firing of node \p N.
int64_t nodeChannelTraffic(const GraphNode &N);

/// Builds the simulator cost of one GPU instance of \p N running
/// \p Threads base firings under \p Layout with register limit
/// \p RegLimit. \p TxnsPerAccess comes from the access analyzer; pass a
/// negative value to derive it from the layout (coalesced for Shuffled,
/// strided analysis for Sequential, shared-memory staging when the
/// working set fits, per the paper's SWPNC description).
/// \p Queue reroutes that many channel ops through shared-memory queues
/// (zero global transactions, ticket overhead added to the compute ops).
InstanceCost buildInstanceCost(const GpuArch &Arch, const GraphNode &N,
                               const WorkEstimate &WE, int64_t Threads,
                               int RegLimit, LayoutKind Layout,
                               double TxnsPerAccess = -1.0,
                               const QueueTraffic &Queue = {});

/// Builds the full timing-model instance of one GPU instance of \p N:
/// the analytic cost of buildInstanceCost plus the per-thread memory
/// streams the cycle simulator replays against the actual buffer
/// layouts (read stream keyed by the pop rate, write stream by the push
/// rate; both flagged ViaShared when the SWPNC shared-memory staging
/// escape applies). \p Queue splits the streams: queue-routed ops become
/// ViaQueue streams the cycle simulator keeps off the DRAM bus.
SimInstance buildSimInstance(const GpuArch &Arch, const GraphNode &N,
                             const WorkEstimate &WE, int64_t Threads,
                             int RegLimit, LayoutKind Layout,
                             const QueueTraffic &Queue = {});

} // namespace sgpu

#endif // SGPU_CORE_EXECUTIONMODEL_H
