//===- core/ExecutionModel.h - Schedules and cost mapping -------*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared vocabulary of the compilation pipeline: execution
/// configurations (the profiling phase's product), the coarsened "GPU
/// steady state" whose firings are the ILP's schedulable instances, the
/// software-pipelined schedule itself (w/o/f of Section III), and the
/// translation from filter work estimates to the simulator's cost model.
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_CORE_EXECUTIONMODEL_H
#define SGPU_CORE_EXECUTIONMODEL_H

#include "gpusim/GpuArch.h"
#include "gpusim/KernelTiming.h"
#include "gpusim/TimingModel.h"
#include "ir/Analyzer.h"
#include "ir/StreamGraph.h"
#include "layout/AccessAnalyzer.h"
#include "sdf/SteadyState.h"

#include <vector>

namespace sgpu {

/// The register limits the paper profiles with (Fig. 6).
inline constexpr int ProfileRegLimits[] = {16, 20, 32, 64};
/// The thread counts the paper profiles with (Fig. 6).
inline constexpr int ProfileThreadCounts[] = {128, 256, 384, 512};

/// The execution configuration selected by profiling (paper Alg. 7):
/// one global register limit and block size, plus the per-node active
/// thread count k <= NumThreads.
struct ExecutionConfig {
  int RegLimit = 32;
  int NumThreads = 256;
  std::vector<int64_t> Threads; ///< Active threads per graph node.
  std::vector<double> Delay;    ///< d(v): cycles per GPU instance firing.
};

/// The coarsened steady state: one GPU firing of node v covers
/// Threads[v] base firings, so the instance counts shrink accordingly
/// (Section IV-B: "the firing rates ... are different from the
/// corresponding firing rates in the original StreamIt program").
struct GpuSteadyState {
  /// GPU instances per node: k_v^gpu = k_v * Multiplier / Threads[v].
  std::vector<int64_t> Instances;
  /// How many base steady states one GPU steady state covers.
  int64_t Multiplier = 1;

  int64_t totalInstances() const {
    int64_t N = 0;
    for (int64_t I : Instances)
      N += I;
    return N;
  }
};

/// Computes the GPU steady state from the base repetition vector and the
/// per-node thread counts: the smallest M with Threads[v] | k_v * M.
GpuSteadyState computeGpuSteadyState(const std::vector<int64_t> &BaseReps,
                                     const std::vector<int64_t> &Threads);

/// One scheduled instance: the ILP solution's w (SM), o (slot) and f
/// (stage) for instance K of node Node.
struct ScheduledInstance {
  int Node = -1;
  int64_t K = 0;
  int Sm = 0;
  double O = 0.0;
  int64_t F = 0;
};

/// A complete software-pipelined schedule at initiation interval II.
struct SwpSchedule {
  double II = 0.0;
  int Pmax = 0;
  std::vector<ScheduledInstance> Instances;

  /// sigma = II*F + O, the linear-form start time (paper Eq. 3 at j=0).
  static double sigma(double II, const ScheduledInstance &SI) {
    return II * static_cast<double>(SI.F) + SI.O;
  }

  /// max F - min F: how many iterations the pipeline holds in flight.
  int64_t stageSpan() const;

  /// Instances of SM \p Sm in execution (o, then node/k) order.
  std::vector<const ScheduledInstance *> smOrder(int Sm) const;

  const ScheduledInstance &instance(int Node, int64_t K) const;
};

/// Per-node work summary used to cost instances (filters analyzed
/// statically; splitters/joiners are pure data movers).
WorkEstimate nodeWorkEstimate(const GraphNode &N);

/// Per-firing channel tokens a warp-specialized schema assignment
/// (codegen/schema/) reroutes through shared-memory ring queues. Queue
/// tokens never touch the DRAM bus: they are subtracted from the
/// instance's global accesses and priced as shared-memory accesses plus
/// the ticket bookkeeping below.
struct QueueTraffic {
  int64_t Reads = 0;  ///< Queue-consumed channel ops per base firing.
  int64_t Writes = 0; ///< Queue-produced channel ops per base firing.
};

/// Integer ops per firing per queued side for the ticket handshake (the
/// emitted q_wait/q_publish pair: compare, branch, add, atomicMax). The
/// publisher's in-order chain spin and the block fences run on one lane
/// per warp, amortized below an op per firing, and are not charged.
inline constexpr int64_t QueueTicketOpsPerSide = 4;

/// Channel tokens read + written by one base firing of node \p N.
int64_t nodeChannelTraffic(const GraphNode &N);

/// Builds the simulator cost of one GPU instance of \p N running
/// \p Threads base firings under \p Layout with register limit
/// \p RegLimit. \p TxnsPerAccess comes from the access analyzer; pass a
/// negative value to derive it from the layout (coalesced for Shuffled,
/// strided analysis for Sequential, shared-memory staging when the
/// working set fits, per the paper's SWPNC description).
/// \p Queue reroutes that many channel ops through shared-memory queues
/// (zero global transactions, ticket overhead added to the compute ops).
InstanceCost buildInstanceCost(const GpuArch &Arch, const GraphNode &N,
                               const WorkEstimate &WE, int64_t Threads,
                               int RegLimit, LayoutKind Layout,
                               double TxnsPerAccess = -1.0,
                               const QueueTraffic &Queue = {});

/// Builds the full timing-model instance of one GPU instance of \p N:
/// the analytic cost of buildInstanceCost plus the per-thread memory
/// streams the cycle simulator replays against the actual buffer
/// layouts (read stream keyed by the pop rate, write stream by the push
/// rate; both flagged ViaShared when the SWPNC shared-memory staging
/// escape applies). \p Queue splits the streams: queue-routed ops become
/// ViaQueue streams the cycle simulator keeps off the DRAM bus.
SimInstance buildSimInstance(const GpuArch &Arch, const GraphNode &N,
                             const WorkEstimate &WE, int64_t Threads,
                             int RegLimit, LayoutKind Layout,
                             const QueueTraffic &Queue = {});

} // namespace sgpu

#endif // SGPU_CORE_EXECUTIONMODEL_H
