//===- core/HeuristicScheduler.cpp - LPT + modulo scheduling ----------------===//

#include "core/HeuristicScheduler.h"

#include <algorithm>
#include <cmath>

using namespace sgpu;

std::optional<SwpSchedule>
sgpu::buildHeuristicSchedule(const StreamGraph &G, const SteadyState &SS,
                             const ExecutionConfig &Config,
                             const GpuSteadyState &GSS, int Pmax, double T,
                             int64_t MaxStages,
                             const MachineModel *Machine) {
  const bool Hyb = Machine && Machine->hasCpu();
  const int NumGpuSms = Hyb ? Machine->numGpuSms() : Pmax;

  int N = G.numNodes();
  std::vector<int64_t> Base(N);
  int64_t Count = 0;
  for (int V = 0; V < N; ++V) {
    Base[V] = Count;
    Count += GSS.Instances[V];
  }

  std::vector<int> InstNode(Count);
  std::vector<int64_t> InstK(Count);
  std::vector<double> Delay(Count);
  std::vector<double> CpuD;
  if (Hyb)
    CpuD.resize(Count);
  for (int V = 0; V < N; ++V)
    for (int64_t K = 0; K < GSS.Instances[V]; ++K) {
      int64_t I = Base[V] + K;
      InstNode[I] = V;
      InstK[I] = K;
      Delay[I] = Config.Delay[V];
      if (Hyb)
        CpuD[I] = Config.CpuDelay[V];
      double MinD = Hyb ? std::min(Delay[I], CpuD[I]) : Delay[I];
      if (MinD >= T)
        return std::nullopt; // No slot can hold this instance.
    }

  // d_{i,p} on flat processor P (SMs first, then CPU cores).
  auto DelayAt = [&](int64_t I, int P) {
    return Hyb && P >= NumGpuSms ? CpuD[I] : Delay[I];
  };

  // --- Assignment: longest processing time first onto the least loaded
  // SM, with a producer-affinity tie-break that keeps communicating
  // instances together when loads allow (fewer cross-SM iteration
  // delays).
  std::vector<int64_t> ByDelay(Count);
  for (int64_t I = 0; I < Count; ++I)
    ByDelay[I] = I;
  std::stable_sort(ByDelay.begin(), ByDelay.end(),
                   [&](int64_t A, int64_t B) { return Delay[A] > Delay[B]; });

  std::vector<double> Load(Pmax, 0.0);
  std::vector<int> Sm(Count, -1);

  // Producer lookup for affinity: node -> its producers.
  std::vector<std::vector<int>> Producers(N);
  for (const ChannelEdge &E : G.edges())
    Producers[E.Dst].push_back(E.Src);

  for (int64_t I : ByDelay) {
    int BestP = 0;
    if (!Hyb) {
      // Least-loaded SM.
      for (int P = 1; P < Pmax; ++P)
        if (Load[P] < Load[BestP])
          BestP = P;
      // Affinity: an SM already hosting one of this node's producers
      // wins when its load stays within 105% of the least load.
      for (int V : Producers[InstNode[I]])
        for (int64_t K = 0; K < GSS.Instances[V]; ++K) {
          int P = Sm[Base[V] + K];
          if (P >= 0 && Load[P] + Delay[I] <= T &&
              Load[P] <= Load[BestP] + 0.05 * T)
            BestP = P;
        }
    } else {
      // Hybrid: earliest completion over eligible processors — the
      // class-indexed delay folds straight into the packing metric.
      BestP = -1;
      for (int P = 0; P < Pmax; ++P) {
        if (DelayAt(I, P) >= T)
          continue;
        if (BestP < 0 ||
            Load[P] + DelayAt(I, P) < Load[BestP] + DelayAt(I, BestP))
          BestP = P;
      }
      if (BestP < 0)
        return std::nullopt;
      for (int V : Producers[InstNode[I]])
        for (int64_t K = 0; K < GSS.Instances[V]; ++K) {
          int P = Sm[Base[V] + K];
          if (P >= 0 && DelayAt(I, P) < T && Load[P] + DelayAt(I, P) <= T &&
              Load[P] + DelayAt(I, P) <=
                  Load[BestP] + DelayAt(I, BestP) + 0.05 * T)
            BestP = P;
        }
    }
    Sm[I] = BestP;
    Load[BestP] += DelayAt(I, BestP);
  }

  // Local improvement: migrate instances off the most loaded SM while it
  // shrinks the makespan (LPT alone can be ~30% off the packing optimum,
  // which the II relaxation loop would otherwise pay for).
  for (int Round = 0; Round < 4 * Pmax; ++Round) {
    int Max = 0, Min = 0;
    for (int P = 1; P < Pmax; ++P) {
      if (Load[P] > Load[Max])
        Max = P;
      if (Load[P] < Load[Min])
        Min = P;
    }
    bool Moved = false;
    for (int64_t I = 0; I < Count && !Moved; ++I) {
      if (Sm[I] != Max)
        continue;
      if (Hyb && DelayAt(I, Min) >= T)
        continue; // The instance cannot run on the target class at all.
      if (Load[Min] + DelayAt(I, Min) < Load[Max] - 1e-9) {
        Load[Max] -= DelayAt(I, Max);
        Load[Min] += DelayAt(I, Min);
        Sm[I] = Min;
        Moved = true;
      }
    }
    if (!Moved)
      break;
  }
  for (int P = 0; P < Pmax; ++P)
    if (Load[P] > T + 1e-9)
      return std::nullopt; // Packing failed at this II (constraint 2).

  // --- Start times: monotone fixpoint over (8a)/(8b). The producer
  // delay is priced at the class its assignment landed on.
  struct Dep {
    int64_t Cons, Prod;
    int64_t JLag;
    double ProdDelay;
  };
  std::vector<Dep> Deps;
  for (const CoarsenedEdge &E : coarsenEdges(G, SS, Config)) {
    int64_t Ku = GSS.Instances[E.Src];
    int64_t Kv = GSS.Instances[E.Dst];
    for (int64_t K = 0; K < Kv; ++K)
      for (const InstanceDep &D :
           computeInstanceDeps(E.Iuv, E.Peek, E.Ouv, E.Muv, Ku, K)) {
        int64_t Prod = Base[E.Src] + D.KProd;
        Deps.push_back({Base[E.Dst] + K, Prod, D.JLag,
                        DelayAt(Prod, Sm[Prod])});
      }
  }

  std::vector<double> Sigma(Count, 0.0);
  double Horizon = static_cast<double>(MaxStages + 1) * T;

  auto StageOf = [&](int64_t I) {
    return static_cast<int64_t>(std::floor(Sigma[I] / T + 1e-9));
  };
  // Keep o within [0, T - d]: bump to the next stage boundary otherwise.
  auto Normalize = [&](int64_t I) {
    int64_t F = StageOf(I);
    double O = Sigma[I] - static_cast<double>(F) * T;
    if (O + DelayAt(I, Sm[I]) > T + 1e-9)
      Sigma[I] = static_cast<double>(F + 1) * T;
  };

  for (int64_t I = 0; I < Count; ++I)
    Normalize(I);

  bool Changed = true;
  int64_t Rounds = 0;
  while (Changed) {
    if (++Rounds > Count * (MaxStages + 2) + 16)
      return std::nullopt; // Cannot settle within the stage budget.
    Changed = false;
    for (const Dep &D : Deps) {
      double Lag = static_cast<double>(D.JLag);
      double Req = Sigma[D.Prod] + D.ProdDelay + T * Lag; // (8a)
      if (Sm[D.Cons] != Sm[D.Prod]) {
        double Req2 =
            (static_cast<double>(StageOf(D.Prod) + D.JLag + 1)) * T; // (8b)
        Req = std::max(Req, Req2);
      }
      if (Sigma[D.Cons] + 1e-9 < Req) {
        Sigma[D.Cons] = Req;
        Normalize(D.Cons);
        if (Sigma[D.Cons] > Horizon)
          return std::nullopt;
        Changed = true;
      }
    }
  }

  SwpSchedule S;
  S.II = T;
  S.Pmax = Pmax;
  S.Instances.reserve(Count);
  for (int64_t I = 0; I < Count; ++I) {
    ScheduledInstance SI;
    SI.Node = InstNode[I];
    SI.K = InstK[I];
    SI.Sm = Sm[I];
    SI.F = StageOf(I);
    SI.O = Sigma[I] - static_cast<double>(SI.F) * T;
    if (SI.O < 0)
      SI.O = 0;
    S.Instances.push_back(SI);
  }
  // Hybrid: the heuristic takes each class's memory-optimal coarsening
  // (exactly what the ILP's objective drives C_c to).
  if (Hyb) {
    auto Bounds = computeClassCoarsening(G, Config, *Machine);
    if (!Bounds)
      return std::nullopt; // Some class cannot hold one unit.
    S.ClassCoarsening = std::move(*Bounds);
  }
  return S;
}
