//===- core/HeuristicScheduler.h - LPT + modulo scheduling ------*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fast schedule constructor used two ways: as the incumbent generator
/// for the branch & bound (our CPLEX stand-in needs a warm start the
/// paper's solver did not), and as the fallback for graphs whose ILP is
/// too large for the time budget. Assignment is longest-processing-time
/// bin packing onto the SMs; start times then follow from a monotone
/// fixpoint over the paper's dependence constraints (8a)/(8b), bumping an
/// instance to the next pipeline stage whenever its slot would overrun
/// the II (constraint 4).
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_CORE_HEURISTICSCHEDULER_H
#define SGPU_CORE_HEURISTICSCHEDULER_H

#include "core/IlpFormulation.h"

#include <optional>

namespace sgpu {

/// Attempts to build a valid schedule at initiation interval \p T.
/// Returns std::nullopt when the LPT packing exceeds T on some SM or the
/// dependence fixpoint needs more than \p MaxStages pipeline stages.
///
/// A hybrid \p Machine (CPU cores after the SMs, Pmax ==
/// Machine->totalProcs()) switches the packing to class-indexed delays:
/// each instance lands on the processor minimizing its completed load,
/// and the dependence fixpoint prices producers at their assigned
/// class. Null or GPU-only machines reproduce the paper's behavior
/// exactly.
std::optional<SwpSchedule>
buildHeuristicSchedule(const StreamGraph &G, const SteadyState &SS,
                       const ExecutionConfig &Config,
                       const GpuSteadyState &GSS, int Pmax, double T,
                       int64_t MaxStages,
                       const MachineModel *Machine = nullptr);

} // namespace sgpu

#endif // SGPU_CORE_HEURISTICSCHEDULER_H
