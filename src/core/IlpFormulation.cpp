//===- core/IlpFormulation.cpp - Paper Section III ILP ----------------------===//

#include "core/IlpFormulation.h"

#include "support/Check.h"
#include "support/MathExtras.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <algorithm>
#include <cmath>
#include <map>

using namespace sgpu;

namespace {

/// True when \p Machine switches on the class-indexed hybrid model.
bool hybridMachine(const MachineModel *Machine) {
  return Machine && Machine->hasCpu();
}

/// The cheapest class delay of node \p V — what the MII lower bounds and
/// the II-infeasibility early-outs may assume.
double minClassDelay(const ExecutionConfig &Config,
                     const MachineModel *Machine, int V) {
  double D = Config.Delay[V];
  if (hybridMachine(Machine) &&
      static_cast<size_t>(V) < Config.CpuDelay.size())
    D = std::min(D, Config.CpuDelay[V]);
  return D;
}

} // namespace

std::vector<CoarsenedEdge> sgpu::coarsenEdges(const StreamGraph &G,
                                              const SteadyState &SS,
                                              const ExecutionConfig &Config) {
  std::vector<CoarsenedEdge> Out;
  Out.reserve(G.numEdges());
  for (const ChannelEdge &E : G.edges()) {
    CoarsenedEdge C;
    C.Src = E.Src;
    C.Dst = E.Dst;
    C.Ouv = E.ProdRate * Config.Threads[E.Src];
    C.Iuv = E.ConsRate * Config.Threads[E.Dst];
    // A GPU firing's last base firing peeks (Threads-1)*I + peek deep.
    C.Peek = C.Iuv + (E.PeekRate - E.ConsRate);
    // Tokens left on the edge after the initialization phase.
    C.Muv = E.InitTokens + SS.initFirings()[E.Src] * E.ProdRate -
            SS.initFirings()[E.Dst] * E.ConsRate;
    assert(C.Muv >= 0 && "init phase left a negative channel balance");
    Out.push_back(C);
  }
  return Out;
}

double sgpu::computeResMII(const ExecutionConfig &Config,
                           const GpuSteadyState &GSS, int Pmax,
                           const MachineModel *Machine) {
  double Total = 0.0;
  double MaxDelay = 0.0;
  for (size_t V = 0; V < Config.Delay.size(); ++V) {
    double D = minClassDelay(Config, Machine, static_cast<int>(V));
    Total += D * static_cast<double>(GSS.Instances[V]);
    MaxDelay = std::max(MaxDelay, D);
  }
  return std::max(Total / static_cast<double>(Pmax), MaxDelay);
}

double sgpu::computeCoarsenedRecMII(const StreamGraph &G,
                                    const SteadyState &SS,
                                    const ExecutionConfig &Config,
                                    const GpuSteadyState &GSS,
                                    const MachineModel *Machine) {
  // Build the coarsened instance dependence graph and run the cycle-ratio
  // search directly (mirrors sdf::computeRecMII but over GPU instances).
  std::vector<CoarsenedEdge> Edges = coarsenEdges(G, SS, Config);

  std::vector<int64_t> Base(G.numNodes());
  int64_t NumVerts = 0;
  for (int V = 0; V < G.numNodes(); ++V) {
    Base[V] = NumVerts;
    NumVerts += GSS.Instances[V];
  }
  struct Arc {
    int64_t From, To;
    double Delay;
    int64_t Distance;
  };
  std::vector<Arc> Arcs;
  for (const CoarsenedEdge &E : Edges) {
    int64_t Ku = GSS.Instances[E.Src];
    int64_t Kv = GSS.Instances[E.Dst];
    double SrcDelay = minClassDelay(Config, Machine, E.Src);
    for (int64_t K = 0; K < Kv; ++K)
      for (const InstanceDep &D :
           computeInstanceDeps(E.Iuv, E.Peek, E.Ouv, E.Muv, Ku, K))
        Arcs.push_back({Base[E.Src] + D.KProd, Base[E.Dst] + K,
                        SrcDelay, -D.JLag});
  }

  auto HasPositiveCycle = [&](double R) {
    std::vector<double> Dist(NumVerts, 0.0);
    for (int64_t It = 0; It < NumVerts; ++It) {
      bool Changed = false;
      for (const Arc &A : Arcs) {
        double W = A.Delay - R * static_cast<double>(A.Distance);
        if (Dist[A.From] + W > Dist[A.To] + 1e-9) {
          Dist[A.To] = Dist[A.From] + W;
          Changed = true;
        }
      }
      if (!Changed)
        return false;
    }
    return true;
  };

  if (!HasPositiveCycle(0.0))
    return 0.0;
  double Lo = 0.0, Hi = 1.0;
  for (const Arc &A : Arcs)
    Hi += A.Delay;
  for (int It = 0; It < 60 && Hi - Lo > 1e-6 * std::max(1.0, Hi); ++It) {
    double Mid = 0.5 * (Lo + Hi);
    if (HasPositiveCycle(Mid))
      Lo = Mid;
    else
      Hi = Mid;
  }
  return Hi;
}

std::optional<std::vector<int64_t>>
sgpu::computeClassCoarsening(const StreamGraph &G,
                             const ExecutionConfig &Config,
                             const MachineModel &Machine) {
  // One coarsening unit's working set: the largest per-instance channel
  // footprint (tokens touched by one coarsened firing, 4 bytes each).
  int64_t WsBytes = 0;
  for (const GraphNode &N : G.nodes())
    WsBytes = std::max(WsBytes,
                       nodeChannelTraffic(N) * Config.Threads[N.Id] * 4);
  std::vector<int64_t> Bounds;
  Bounds.reserve(Machine.Classes.size());
  for (const ProcessorClass &C : Machine.Classes) {
    int64_t Cap = WsBytes > 0 ? C.MemBytes / WsBytes : Machine.MaxCoarsen;
    if (Cap < 1)
      return std::nullopt; // Class cannot hold even one unit.
    Bounds.push_back(std::min(Cap, Machine.MaxCoarsen));
  }
  return Bounds;
}

SwpSchedule IlpModel::decode(const std::vector<double> &X) const {
  SwpSchedule S;
  S.II = T;
  S.Pmax = Pmax;
  S.Instances.reserve(NumInstances);
  for (int I = 0; I < NumInstances; ++I) {
    ScheduledInstance SI;
    SI.Node = InstNode[I];
    SI.K = InstK[I];
    SI.Sm = 0;
    for (int P = 0; P < Pmax; ++P)
      if (X[wVar(I, P)] > 0.5) {
        SI.Sm = P;
        break;
      }
    SI.O = X[OVar[I]];
    SI.F = static_cast<int64_t>(std::llround(X[FVar[I]]));
    S.Instances.push_back(SI);
  }
  for (int V : CoarsenVar)
    S.ClassCoarsening.push_back(static_cast<int64_t>(std::llround(X[V])));
  return S;
}

std::vector<double> IlpModel::encode(const SwpSchedule &S) const {
  std::vector<double> X(LP.numVars(), 0.0);
  std::vector<int> SmOf(NumInstances, 0);
  for (const ScheduledInstance &SI : S.Instances) {
    int I = instanceId(SI.Node, SI.K);
    X[wVar(I, SI.Sm)] = 1.0;
    X[OVar[I]] = SI.O;
    X[FVar[I]] = static_cast<double>(SI.F);
    SmOf[I] = SI.Sm;
  }
  // g = 1 exactly when the endpoints sit on different SMs: (7) forces
  // g >= 1 then, and g = 1 only weakens row (8b), so this assignment is
  // canonical.
  for (const IlpDep &D : Deps)
    X[D.GVar] = SmOf[D.ConsInst] == SmOf[D.ProdInst] ? 0.0 : 1.0;
  // Strict-sequencing extension variables (absent in the paper's model):
  // s follows co-location; y orders by the schedule's o values.
  for (const SeqPair &P : SeqPairs) {
    X[P.SVar] = SmOf[P.InstA] == SmOf[P.InstB] ? 1.0 : 0.0;
    X[P.YVar] = X[OVar[P.InstA]] <= X[OVar[P.InstB]] ? 1.0 : 0.0;
  }
  // Coarsening decision variables: the incumbent schedule's value when
  // it carries one, otherwise the memory bound (their optimum).
  for (size_t C = 0; C < CoarsenVar.size(); ++C)
    X[CoarsenVar[C]] = static_cast<double>(
        C < S.ClassCoarsening.size() ? S.ClassCoarsening[C]
                                     : CoarsenBound[C]);
  return X;
}

std::optional<IlpModel>
sgpu::buildSwpIlp(const StreamGraph &G, const SteadyState &SS,
                  const ExecutionConfig &Config, const GpuSteadyState &GSS,
                  int Pmax, double T, int64_t MaxStages,
                  bool StrictIntraSm, const MachineModel *Machine) {
  assert(Pmax > 0 && T > 0 && "bad scheduling parameters");
  StageTimer Timer("ilp.formulate");
  metricCounter("ilp.models").add(1);
  IlpModel M;
  M.T = T;
  M.Pmax = Pmax;
  M.MaxStages = MaxStages;
  M.StrictIntraSm = StrictIntraSm;
  M.Hybrid = hybridMachine(Machine);
  M.NumGpuSms = M.Hybrid ? Machine->numGpuSms() : Pmax;
  assert((!M.Hybrid || Machine->totalProcs() == Pmax) &&
         "hybrid Pmax must cover the whole machine");

  // The hybrid coarsening decision variable's memory bounds; a class
  // that cannot hold one unit makes every II infeasible.
  if (M.Hybrid) {
    auto Bounds = computeClassCoarsening(G, Config, *Machine);
    if (!Bounds)
      return std::nullopt;
    M.CoarsenBound = std::move(*Bounds);
  }

  int N = G.numNodes();
  M.InstBase.resize(N);
  int64_t Count = 0;
  for (int V = 0; V < N; ++V) {
    M.InstBase[V] = Count;
    Count += GSS.Instances[V];
  }
  M.NumInstances = static_cast<int>(Count);
  M.InstNode.resize(Count);
  M.InstK.resize(Count);
  M.InstDelay.resize(Count);
  if (M.Hybrid)
    M.InstCpuDelay.resize(Count);
  for (int V = 0; V < N; ++V)
    for (int64_t K = 0; K < GSS.Instances[V]; ++K) {
      int I = M.instanceId(V, K);
      M.InstNode[I] = V;
      M.InstK[I] = K;
      M.InstDelay[I] = Config.Delay[V];
      if (M.Hybrid)
        M.InstCpuDelay[I] = Config.CpuDelay[V];
      if (minClassDelay(Config, Machine, V) >= T)
        return std::nullopt; // (4) is unsatisfiable at this II.
    }

  // Variables.
  M.WBase.resize(Count);
  M.OVar.resize(Count);
  M.FVar.resize(Count);
  for (int I = 0; I < M.NumInstances; ++I) {
    std::string Tag =
        "v" + std::to_string(M.InstNode[I]) + "k" + std::to_string(M.InstK[I]);
    M.WBase[I] = M.LP.numVars();
    for (int P = 0; P < Pmax; ++P)
      M.LP.addBinaryVar("w_" + Tag + "_p" + std::to_string(P));
    // (4): o + d < T as a bound. A hair below T - d keeps it strict.
    // Under the hybrid model only the cheapest class fits the bound;
    // the assignment-dependent row (4') below supplies the rest.
    double OMax =
        T - (M.Hybrid ? std::min(M.InstDelay[I], M.InstCpuDelay[I])
                      : M.InstDelay[I]);
    M.OVar[I] = M.LP.addContinuousVar("o_" + Tag, 0.0, OMax);
    M.FVar[I] = M.LP.addIntVar("f_" + Tag, 0.0,
                               static_cast<double>(MaxStages));
  }
  // Hybrid: one integer coarsening variable per class, maximized by the
  // objective within its memory bound (ws * C_c <= MemBytes_c).
  if (M.Hybrid)
    for (size_t C = 0; C < M.CoarsenBound.size(); ++C)
      M.CoarsenVar.push_back(
          M.LP.addIntVar("coarsen_c" + std::to_string(C), 1.0,
                         static_cast<double>(M.CoarsenBound[C])));

  // (1): each instance on exactly one SM.
  for (int I = 0; I < M.NumInstances; ++I) {
    std::vector<LinTerm> Terms;
    for (int P = 0; P < Pmax; ++P)
      Terms.push_back({M.wVar(I, P), 1.0});
    M.LP.addConstraint(std::move(Terms), RowSense::EQ, 1.0,
                       "assign_i" + std::to_string(I));
  }

  // (2): per-SM work fits within the II (class-indexed delays when
  // hybrid: an instance costs d_{v,p} on the processor that hosts it).
  for (int P = 0; P < Pmax; ++P) {
    std::vector<LinTerm> Terms;
    for (int I = 0; I < M.NumInstances; ++I)
      Terms.push_back({M.wVar(I, P), M.delayAt(I, P)});
    M.LP.addConstraint(std::move(Terms), RowSense::LE, T,
                       "res_p" + std::to_string(P));
  }

  // (4') hybrid only: o_i + sum_p d_{i,p} w_{i,p} <= T closes the gap
  // the min-delay OMax bound leaves for the costlier class.
  if (M.Hybrid)
    for (int I = 0; I < M.NumInstances; ++I) {
      if (M.InstCpuDelay[I] == M.InstDelay[I])
        continue; // The bound already covers both classes.
      std::vector<LinTerm> Terms;
      Terms.push_back({M.OVar[I], 1.0});
      for (int P = 0; P < Pmax; ++P)
        Terms.push_back({M.wVar(I, P), M.delayAt(I, P)});
      M.LP.addConstraint(std::move(Terms), RowSense::LE, T,
                         "slot_i" + std::to_string(I));
    }

  // Dependences: one g per distinct (consumer inst, producer inst, lag).
  std::vector<CoarsenedEdge> Edges = coarsenEdges(G, SS, Config);
  std::map<std::tuple<int, int, int64_t>, int> GIndex;
  for (const CoarsenedEdge &E : Edges) {
    int64_t Ku = GSS.Instances[E.Src];
    int64_t Kv = GSS.Instances[E.Dst];
    for (int64_t K = 0; K < Kv; ++K) {
      int Cons = M.instanceId(E.Dst, K);
      for (const InstanceDep &D :
           computeInstanceDeps(E.Iuv, E.Peek, E.Ouv, E.Muv, Ku, K)) {
        int Prod = M.instanceId(E.Src, D.KProd);
        auto Key = std::make_tuple(Cons, Prod, D.JLag);
        if (GIndex.count(Key))
          continue;
        IlpDep Dep;
        Dep.ConsInst = Cons;
        Dep.ProdInst = Prod;
        Dep.JLag = D.JLag;
        Dep.ProdDelay = Config.Delay[E.Src];
        Dep.GVar = M.LP.addBinaryVar(
            "g_c" + std::to_string(Cons) + "_p" + std::to_string(Prod) +
            "_l" + std::to_string(D.JLag));
        GIndex[Key] = static_cast<int>(M.Deps.size());
        M.Deps.push_back(Dep);
      }
    }
  }

  for (const IlpDep &D : M.Deps) {
    // (7): g >= w_cons,p - w_prod,p and g >= w_prod,p - w_cons,p.
    for (int P = 0; P < Pmax; ++P) {
      M.LP.addConstraint({{D.GVar, 1.0},
                          {M.wVar(D.ConsInst, P), -1.0},
                          {M.wVar(D.ProdInst, P), 1.0}},
                         RowSense::GE, 0.0);
      M.LP.addConstraint({{D.GVar, 1.0},
                          {M.wVar(D.ConsInst, P), 1.0},
                          {M.wVar(D.ProdInst, P), -1.0}},
                         RowSense::GE, 0.0);
    }
    double Lag = static_cast<double>(D.JLag);
    // (8a): T f_v + o_v - T f_u - o_u >= T jlag + d(u).
    // (8a') hybrid: the producer delay is class-dependent, so it moves
    // into the LHS through the assignment (exact because sum_p w = 1):
    //   T f_v + o_v - T f_u - o_u - sum_p d_{u,p} w_{u,p} >= T jlag.
    if (M.Hybrid) {
      std::vector<LinTerm> Terms = {{M.FVar[D.ConsInst], T},
                                    {M.OVar[D.ConsInst], 1.0},
                                    {M.FVar[D.ProdInst], -T},
                                    {M.OVar[D.ProdInst], -1.0}};
      for (int P = 0; P < Pmax; ++P)
        Terms.push_back({M.wVar(D.ProdInst, P), -M.delayAt(D.ProdInst, P)});
      M.LP.addConstraint(std::move(Terms), RowSense::GE, T * Lag);
    } else {
      M.LP.addConstraint({{M.FVar[D.ConsInst], T},
                          {M.OVar[D.ConsInst], 1.0},
                          {M.FVar[D.ProdInst], -T},
                          {M.OVar[D.ProdInst], -1.0}},
                         RowSense::GE, T * Lag + D.ProdDelay);
    }
    // (8b): T f_v + o_v - T f_u - T g >= T jlag.
    M.LP.addConstraint({{M.FVar[D.ConsInst], T},
                        {M.OVar[D.ConsInst], 1.0},
                        {M.FVar[D.ProdInst], -T},
                        {D.GVar, -T}},
                       RowSense::GE, T * Lag);
  }

  // Strict-sequencing extension: disjoint o-windows per SM.
  if (StrictIntraSm) {
    for (int A = 0; A < M.NumInstances; ++A)
      for (int B = A + 1; B < M.NumInstances; ++B) {
        SeqPair P;
        P.InstA = A;
        P.InstB = B;
        P.SVar = M.LP.addBinaryVar("s_" + std::to_string(A) + "_" +
                                   std::to_string(B));
        P.YVar = M.LP.addBinaryVar("y_" + std::to_string(A) + "_" +
                                   std::to_string(B));
        // Co-location: s >= w_A,p + w_B,p - 1 for every SM p.
        for (int Q = 0; Q < Pmax; ++Q)
          M.LP.addConstraint({{P.SVar, 1.0},
                              {M.wVar(A, Q), -1.0},
                              {M.wVar(B, Q), -1.0}},
                             RowSense::GE, -1.0);
        // Disjunction (big-M = 2T covers any o difference plus a delay):
        //   o_A + d_A <= o_B + 2T(1 - y) + 2T(1 - s)
        //   o_B + d_B <= o_A + 2T y     + 2T(1 - s)
        double BigM = 2.0 * T;
        // Hybrid: the window width depends on the host class; the max
        // over classes keeps the disjunction sound for either host.
        double DelayA =
            M.Hybrid ? std::max(M.InstDelay[A], M.InstCpuDelay[A])
                     : M.InstDelay[A];
        double DelayB =
            M.Hybrid ? std::max(M.InstDelay[B], M.InstCpuDelay[B])
                     : M.InstDelay[B];
        M.LP.addConstraint({{M.OVar[A], 1.0},
                            {M.OVar[B], -1.0},
                            {P.YVar, BigM},
                            {P.SVar, BigM}},
                           RowSense::LE,
                           2.0 * BigM - DelayA);
        M.LP.addConstraint({{M.OVar[B], 1.0},
                            {M.OVar[A], -1.0},
                            {P.YVar, -BigM},
                            {P.SVar, BigM}},
                           RowSense::LE, BigM - DelayB);
        M.SeqPairs.push_back(P);
      }
  }

  // Feasibility problem: a gentle objective pulling stages down keeps the
  // LP relaxations from drifting and shrinks the pipeline prologue.
  std::vector<LinTerm> Obj;
  for (int I = 0; I < M.NumInstances; ++I)
    Obj.push_back({M.FVar[I], 1.0});
  // Hybrid: maximize the coarsening decision variables within their
  // memory bounds (small weight so stages still dominate).
  for (int C : M.CoarsenVar)
    Obj.push_back({C, -1e-3});
  M.LP.setObjective(std::move(Obj));

  metricCounter("ilp.vars").add(M.LP.numVars());
  metricCounter("ilp.constraints").add(M.LP.numConstraints());
  return M;
}
