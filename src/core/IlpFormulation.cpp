//===- core/IlpFormulation.cpp - Paper Section III ILP ----------------------===//

#include "core/IlpFormulation.h"

#include "support/Check.h"
#include "support/MathExtras.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <algorithm>
#include <cmath>
#include <map>

using namespace sgpu;

std::vector<CoarsenedEdge> sgpu::coarsenEdges(const StreamGraph &G,
                                              const SteadyState &SS,
                                              const ExecutionConfig &Config) {
  std::vector<CoarsenedEdge> Out;
  Out.reserve(G.numEdges());
  for (const ChannelEdge &E : G.edges()) {
    CoarsenedEdge C;
    C.Src = E.Src;
    C.Dst = E.Dst;
    C.Ouv = E.ProdRate * Config.Threads[E.Src];
    C.Iuv = E.ConsRate * Config.Threads[E.Dst];
    // A GPU firing's last base firing peeks (Threads-1)*I + peek deep.
    C.Peek = C.Iuv + (E.PeekRate - E.ConsRate);
    // Tokens left on the edge after the initialization phase.
    C.Muv = E.InitTokens + SS.initFirings()[E.Src] * E.ProdRate -
            SS.initFirings()[E.Dst] * E.ConsRate;
    assert(C.Muv >= 0 && "init phase left a negative channel balance");
    Out.push_back(C);
  }
  return Out;
}

double sgpu::computeResMII(const ExecutionConfig &Config,
                           const GpuSteadyState &GSS, int Pmax) {
  double Total = 0.0;
  double MaxDelay = 0.0;
  for (size_t V = 0; V < Config.Delay.size(); ++V) {
    Total += Config.Delay[V] * static_cast<double>(GSS.Instances[V]);
    MaxDelay = std::max(MaxDelay, Config.Delay[V]);
  }
  return std::max(Total / static_cast<double>(Pmax), MaxDelay);
}

double sgpu::computeCoarsenedRecMII(const StreamGraph &G,
                                    const SteadyState &SS,
                                    const ExecutionConfig &Config,
                                    const GpuSteadyState &GSS) {
  // Build the coarsened instance dependence graph and run the cycle-ratio
  // search directly (mirrors sdf::computeRecMII but over GPU instances).
  std::vector<CoarsenedEdge> Edges = coarsenEdges(G, SS, Config);

  std::vector<int64_t> Base(G.numNodes());
  int64_t NumVerts = 0;
  for (int V = 0; V < G.numNodes(); ++V) {
    Base[V] = NumVerts;
    NumVerts += GSS.Instances[V];
  }
  struct Arc {
    int64_t From, To;
    double Delay;
    int64_t Distance;
  };
  std::vector<Arc> Arcs;
  for (const CoarsenedEdge &E : Edges) {
    int64_t Ku = GSS.Instances[E.Src];
    int64_t Kv = GSS.Instances[E.Dst];
    for (int64_t K = 0; K < Kv; ++K)
      for (const InstanceDep &D :
           computeInstanceDeps(E.Iuv, E.Peek, E.Ouv, E.Muv, Ku, K))
        Arcs.push_back({Base[E.Src] + D.KProd, Base[E.Dst] + K,
                        Config.Delay[E.Src], -D.JLag});
  }

  auto HasPositiveCycle = [&](double R) {
    std::vector<double> Dist(NumVerts, 0.0);
    for (int64_t It = 0; It < NumVerts; ++It) {
      bool Changed = false;
      for (const Arc &A : Arcs) {
        double W = A.Delay - R * static_cast<double>(A.Distance);
        if (Dist[A.From] + W > Dist[A.To] + 1e-9) {
          Dist[A.To] = Dist[A.From] + W;
          Changed = true;
        }
      }
      if (!Changed)
        return false;
    }
    return true;
  };

  if (!HasPositiveCycle(0.0))
    return 0.0;
  double Lo = 0.0, Hi = 1.0;
  for (const Arc &A : Arcs)
    Hi += A.Delay;
  for (int It = 0; It < 60 && Hi - Lo > 1e-6 * std::max(1.0, Hi); ++It) {
    double Mid = 0.5 * (Lo + Hi);
    if (HasPositiveCycle(Mid))
      Lo = Mid;
    else
      Hi = Mid;
  }
  return Hi;
}

SwpSchedule IlpModel::decode(const std::vector<double> &X) const {
  SwpSchedule S;
  S.II = T;
  S.Pmax = Pmax;
  S.Instances.reserve(NumInstances);
  for (int I = 0; I < NumInstances; ++I) {
    ScheduledInstance SI;
    SI.Node = InstNode[I];
    SI.K = InstK[I];
    SI.Sm = 0;
    for (int P = 0; P < Pmax; ++P)
      if (X[wVar(I, P)] > 0.5) {
        SI.Sm = P;
        break;
      }
    SI.O = X[OVar[I]];
    SI.F = static_cast<int64_t>(std::llround(X[FVar[I]]));
    S.Instances.push_back(SI);
  }
  return S;
}

std::vector<double> IlpModel::encode(const SwpSchedule &S) const {
  std::vector<double> X(LP.numVars(), 0.0);
  std::vector<int> SmOf(NumInstances, 0);
  for (const ScheduledInstance &SI : S.Instances) {
    int I = instanceId(SI.Node, SI.K);
    X[wVar(I, SI.Sm)] = 1.0;
    X[OVar[I]] = SI.O;
    X[FVar[I]] = static_cast<double>(SI.F);
    SmOf[I] = SI.Sm;
  }
  // g = 1 exactly when the endpoints sit on different SMs: (7) forces
  // g >= 1 then, and g = 1 only weakens row (8b), so this assignment is
  // canonical.
  for (const IlpDep &D : Deps)
    X[D.GVar] = SmOf[D.ConsInst] == SmOf[D.ProdInst] ? 0.0 : 1.0;
  // Strict-sequencing extension variables (absent in the paper's model):
  // s follows co-location; y orders by the schedule's o values.
  for (const SeqPair &P : SeqPairs) {
    X[P.SVar] = SmOf[P.InstA] == SmOf[P.InstB] ? 1.0 : 0.0;
    X[P.YVar] = X[OVar[P.InstA]] <= X[OVar[P.InstB]] ? 1.0 : 0.0;
  }
  return X;
}

std::optional<IlpModel>
sgpu::buildSwpIlp(const StreamGraph &G, const SteadyState &SS,
                  const ExecutionConfig &Config, const GpuSteadyState &GSS,
                  int Pmax, double T, int64_t MaxStages,
                  bool StrictIntraSm) {
  assert(Pmax > 0 && T > 0 && "bad scheduling parameters");
  StageTimer Timer("ilp.formulate");
  metricCounter("ilp.models").add(1);
  IlpModel M;
  M.T = T;
  M.Pmax = Pmax;
  M.MaxStages = MaxStages;
  M.StrictIntraSm = StrictIntraSm;

  int N = G.numNodes();
  M.InstBase.resize(N);
  int64_t Count = 0;
  for (int V = 0; V < N; ++V) {
    M.InstBase[V] = Count;
    Count += GSS.Instances[V];
  }
  M.NumInstances = static_cast<int>(Count);
  M.InstNode.resize(Count);
  M.InstK.resize(Count);
  M.InstDelay.resize(Count);
  for (int V = 0; V < N; ++V)
    for (int64_t K = 0; K < GSS.Instances[V]; ++K) {
      int I = M.instanceId(V, K);
      M.InstNode[I] = V;
      M.InstK[I] = K;
      M.InstDelay[I] = Config.Delay[V];
      if (Config.Delay[V] >= T)
        return std::nullopt; // (4) is unsatisfiable at this II.
    }

  // Variables.
  M.WBase.resize(Count);
  M.OVar.resize(Count);
  M.FVar.resize(Count);
  for (int I = 0; I < M.NumInstances; ++I) {
    std::string Tag =
        "v" + std::to_string(M.InstNode[I]) + "k" + std::to_string(M.InstK[I]);
    M.WBase[I] = M.LP.numVars();
    for (int P = 0; P < Pmax; ++P)
      M.LP.addBinaryVar("w_" + Tag + "_p" + std::to_string(P));
    // (4): o + d < T as a bound. A hair below T - d keeps it strict.
    double OMax = T - M.InstDelay[I];
    M.OVar[I] = M.LP.addContinuousVar("o_" + Tag, 0.0, OMax);
    M.FVar[I] = M.LP.addIntVar("f_" + Tag, 0.0,
                               static_cast<double>(MaxStages));
  }

  // (1): each instance on exactly one SM.
  for (int I = 0; I < M.NumInstances; ++I) {
    std::vector<LinTerm> Terms;
    for (int P = 0; P < Pmax; ++P)
      Terms.push_back({M.wVar(I, P), 1.0});
    M.LP.addConstraint(std::move(Terms), RowSense::EQ, 1.0,
                       "assign_i" + std::to_string(I));
  }

  // (2): per-SM work fits within the II.
  for (int P = 0; P < Pmax; ++P) {
    std::vector<LinTerm> Terms;
    for (int I = 0; I < M.NumInstances; ++I)
      Terms.push_back({M.wVar(I, P), M.InstDelay[I]});
    M.LP.addConstraint(std::move(Terms), RowSense::LE, T,
                       "res_p" + std::to_string(P));
  }

  // Dependences: one g per distinct (consumer inst, producer inst, lag).
  std::vector<CoarsenedEdge> Edges = coarsenEdges(G, SS, Config);
  std::map<std::tuple<int, int, int64_t>, int> GIndex;
  for (const CoarsenedEdge &E : Edges) {
    int64_t Ku = GSS.Instances[E.Src];
    int64_t Kv = GSS.Instances[E.Dst];
    for (int64_t K = 0; K < Kv; ++K) {
      int Cons = M.instanceId(E.Dst, K);
      for (const InstanceDep &D :
           computeInstanceDeps(E.Iuv, E.Peek, E.Ouv, E.Muv, Ku, K)) {
        int Prod = M.instanceId(E.Src, D.KProd);
        auto Key = std::make_tuple(Cons, Prod, D.JLag);
        if (GIndex.count(Key))
          continue;
        IlpDep Dep;
        Dep.ConsInst = Cons;
        Dep.ProdInst = Prod;
        Dep.JLag = D.JLag;
        Dep.ProdDelay = Config.Delay[E.Src];
        Dep.GVar = M.LP.addBinaryVar(
            "g_c" + std::to_string(Cons) + "_p" + std::to_string(Prod) +
            "_l" + std::to_string(D.JLag));
        GIndex[Key] = static_cast<int>(M.Deps.size());
        M.Deps.push_back(Dep);
      }
    }
  }

  for (const IlpDep &D : M.Deps) {
    // (7): g >= w_cons,p - w_prod,p and g >= w_prod,p - w_cons,p.
    for (int P = 0; P < Pmax; ++P) {
      M.LP.addConstraint({{D.GVar, 1.0},
                          {M.wVar(D.ConsInst, P), -1.0},
                          {M.wVar(D.ProdInst, P), 1.0}},
                         RowSense::GE, 0.0);
      M.LP.addConstraint({{D.GVar, 1.0},
                          {M.wVar(D.ConsInst, P), 1.0},
                          {M.wVar(D.ProdInst, P), -1.0}},
                         RowSense::GE, 0.0);
    }
    double Lag = static_cast<double>(D.JLag);
    // (8a): T f_v + o_v - T f_u - o_u >= T jlag + d(u).
    M.LP.addConstraint({{M.FVar[D.ConsInst], T},
                        {M.OVar[D.ConsInst], 1.0},
                        {M.FVar[D.ProdInst], -T},
                        {M.OVar[D.ProdInst], -1.0}},
                       RowSense::GE, T * Lag + D.ProdDelay);
    // (8b): T f_v + o_v - T f_u - T g >= T jlag.
    M.LP.addConstraint({{M.FVar[D.ConsInst], T},
                        {M.OVar[D.ConsInst], 1.0},
                        {M.FVar[D.ProdInst], -T},
                        {D.GVar, -T}},
                       RowSense::GE, T * Lag);
  }

  // Strict-sequencing extension: disjoint o-windows per SM.
  if (StrictIntraSm) {
    for (int A = 0; A < M.NumInstances; ++A)
      for (int B = A + 1; B < M.NumInstances; ++B) {
        SeqPair P;
        P.InstA = A;
        P.InstB = B;
        P.SVar = M.LP.addBinaryVar("s_" + std::to_string(A) + "_" +
                                   std::to_string(B));
        P.YVar = M.LP.addBinaryVar("y_" + std::to_string(A) + "_" +
                                   std::to_string(B));
        // Co-location: s >= w_A,p + w_B,p - 1 for every SM p.
        for (int Q = 0; Q < Pmax; ++Q)
          M.LP.addConstraint({{P.SVar, 1.0},
                              {M.wVar(A, Q), -1.0},
                              {M.wVar(B, Q), -1.0}},
                             RowSense::GE, -1.0);
        // Disjunction (big-M = 2T covers any o difference plus a delay):
        //   o_A + d_A <= o_B + 2T(1 - y) + 2T(1 - s)
        //   o_B + d_B <= o_A + 2T y     + 2T(1 - s)
        double BigM = 2.0 * T;
        M.LP.addConstraint({{M.OVar[A], 1.0},
                            {M.OVar[B], -1.0},
                            {P.YVar, BigM},
                            {P.SVar, BigM}},
                           RowSense::LE,
                           2.0 * BigM - M.InstDelay[A]);
        M.LP.addConstraint({{M.OVar[B], 1.0},
                            {M.OVar[A], -1.0},
                            {P.YVar, -BigM},
                            {P.SVar, BigM}},
                           RowSense::LE, BigM - M.InstDelay[B]);
        M.SeqPairs.push_back(P);
      }
  }

  // Feasibility problem: a gentle objective pulling stages down keeps the
  // LP relaxations from drifting and shrinks the pipeline prologue.
  std::vector<LinTerm> Obj;
  for (int I = 0; I < M.NumInstances; ++I)
    Obj.push_back({M.FVar[I], 1.0});
  M.LP.setObjective(std::move(Obj));

  metricCounter("ilp.vars").add(M.LP.numVars());
  metricCounter("ilp.constraints").add(M.LP.numConstraints());
  return M;
}
