//===- core/IlpFormulation.h - Paper Section III ILP -------------*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates the paper's scheduling ILP for a candidate initiation
/// interval T:
///
///  (1) sum_p w_{k,v,p} = 1                 -- each instance on one SM
///  (2) sum_{k,v} w_{k,v,p} d(v) <= T       -- SM work fits the II
///  (4) o_{k,v} + d(v) < T                  -- encoded as variable bounds
///  (7) g >= w_{k,v,p} - w_{k',u,p} and the symmetric row, for all p
///  (8) T f_v + o_v >= T (jlag + f_u) + o_u + d(u)
///      T f_v + o_v >= T (jlag + f_u + g)
///
/// over the *coarsened* instances of the GPU steady state (one GPU firing
/// = Threads[v] base firings) with post-initialization initial tokens.
/// w and g are binary, f integer, o continuous within its (4) bounds —
/// o's integrality never matters for feasibility since all other terms
/// are integer multiples of cycles.
///
/// Hybrid extension (arXiv 1711.11154, `--machine=hybrid`): with a
/// MachineModel carrying CPU cores, the processor index p ranges over
/// the flat CPU+GPU processor set and the delay becomes class-indexed,
/// d_{v,p} (the profiled GPU delay on SMs, ExecutionConfig::CpuDelay on
/// cores). Constraints (2)/(4)/(8a) pick the delay through the
/// assignment:
///
///  (2')  sum_{k,v} w_{k,v,p} d_{v,p} <= T
///  (4')  o_{k,v} + sum_p d_{v,p} w_{k,v,p} <= T   (explicit row; the
///        bound encoding keeps only the min-class delay)
///  (8a') T f_v + o_v - T f_u - o_u - sum_p d_{u,p} w_{k',u,p} >= T jlag
///
/// plus one *coarsening decision variable* C_c per class, bounded by the
/// class's per-processor memory budget over the graph's largest
/// per-coarsening-unit working set: ws * C_c <= MemBytes_c, 1 <= C_c <=
/// MaxCoarsen, with a small negative objective weight so the solver
/// maximizes it (the memory-bounded replacement for the fixed SWPn
/// sweep). GPU-only builds emit byte-identical models to before.
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_CORE_ILPFORMULATION_H
#define SGPU_CORE_ILPFORMULATION_H

#include "core/ExecutionModel.h"
#include "ilp/LinearProgram.h"
#include "sdf/Admissibility.h"

#include <optional>
#include <vector>

namespace sgpu {

/// Edge rates after coarsening to GPU firings and after discounting the
/// initialization phase.
struct CoarsenedEdge {
  int Src = -1, Dst = -1;
  int64_t Iuv = 0;  ///< Tokens consumed per GPU firing of Dst.
  int64_t Peek = 0; ///< Peek reach per GPU firing of Dst (>= Iuv).
  int64_t Ouv = 0;  ///< Tokens produced per GPU firing of Src.
  int64_t Muv = 0;  ///< Initial tokens after the init phase.
};

/// Computes the coarsened edges of \p G under \p Config and \p SS's
/// initialization firings.
std::vector<CoarsenedEdge> coarsenEdges(const StreamGraph &G,
                                        const SteadyState &SS,
                                        const ExecutionConfig &Config);

/// One instance-level dependence with its ILP metadata.
struct IlpDep {
  int ConsInst = -1; ///< Dense consumer instance id.
  int ProdInst = -1; ///< Dense producer instance id.
  int64_t JLag = 0;  ///< Iteration lag (<= 0).
  double ProdDelay = 0.0;
  int GVar = -1; ///< The g_{l,k,u,v} binary (shared per (cons, prod, lag)).
};

/// One strict-sequencing pair (the extension in buildSwpIlp): when
/// instances I and J share an SM (SVar = 1), the order binary YVar picks
/// which one runs first and the big-M rows keep their o-windows disjoint.
struct SeqPair {
  int InstA = -1, InstB = -1;
  int SVar = -1; ///< Co-location indicator.
  int YVar = -1; ///< 1 when A precedes B.
};

/// The generated model plus the variable map needed to read solutions
/// back and to inject incumbents.
struct IlpModel {
  LinearProgram LP;
  double T = 0.0;
  int Pmax = 0;
  int64_t MaxStages = 0;
  bool StrictIntraSm = false;

  /// Hybrid extension: processors [0, NumGpuSms) are SMs, the rest CPU
  /// cores with the per-instance delays of InstCpuDelay. GPU-only models
  /// leave Hybrid false and NumGpuSms == Pmax.
  bool Hybrid = false;
  int NumGpuSms = 0;
  std::vector<double> InstCpuDelay;  ///< Empty unless Hybrid.
  std::vector<int> CoarsenVar;       ///< C_c per class (hybrid only).
  std::vector<int64_t> CoarsenBound; ///< Memory-derived C_c upper bounds.

  /// Dense instance ids: instance (Node, K) is InstBase[Node] + K.
  std::vector<int64_t> InstBase;
  int NumInstances = 0;
  std::vector<int> InstNode;   ///< Node of each dense instance.
  std::vector<int64_t> InstK;  ///< K of each dense instance.
  std::vector<double> InstDelay;

  /// Variable indices.
  std::vector<int> WBase; ///< w_{i,p} = WBase[i] + p.
  std::vector<int> OVar;  ///< o_i.
  std::vector<int> FVar;  ///< f_i.
  std::vector<IlpDep> Deps;
  std::vector<SeqPair> SeqPairs; ///< Strict-sequencing extension only.

  int wVar(int Inst, int Sm) const { return WBase[Inst] + Sm; }
  int instanceId(int Node, int64_t K) const {
    return static_cast<int>(InstBase[Node] + K);
  }
  /// d_{i,p}: the instance's delay on flat processor \p Proc.
  double delayAt(int Inst, int Proc) const {
    return Hybrid && Proc >= NumGpuSms ? InstCpuDelay[Inst]
                                       : InstDelay[Inst];
  }

  /// Decodes an LP solution vector into a schedule.
  SwpSchedule decode(const std::vector<double> &X) const;

  /// Encodes a schedule as a full variable assignment (for incumbents).
  std::vector<double> encode(const SwpSchedule &S) const;
};

/// Builds the ILP at initiation interval \p T. Returns nullopt when some
/// instance's delay alone exceeds T (no schedule can exist at this II).
///
/// \p StrictIntraSm enables an extension beyond the paper: the original
/// formulation lets two instances on the same SM occupy overlapping
/// [o, o+d) windows (execution then serializes in o-order at runtime,
/// stretching past the o the solver assumed). With the flag, disjunctive
/// big-M rows force co-located windows apart, making o exact at the
/// cost of O(instances^2) extra binaries.
/// A hybrid \p Machine (with CPU cores) switches the model to the
/// class-indexed formulation above; \p Pmax must then equal
/// Machine->totalProcs(). A null or GPU-only machine reproduces the
/// paper's model bit for bit.
std::optional<IlpModel>
buildSwpIlp(const StreamGraph &G, const SteadyState &SS,
            const ExecutionConfig &Config, const GpuSteadyState &GSS,
            int Pmax, double T, int64_t MaxStages,
            bool StrictIntraSm = false,
            const MachineModel *Machine = nullptr);

/// The memory bound of the hybrid coarsening decision variable: per
/// class, the largest C with ws * C <= MemBytes (capped at
/// Machine.MaxCoarsen), where ws is the graph's largest per-instance
/// channel working set for one coarsening unit. Returns nullopt when
/// some class cannot hold even one unit (class-capacity infeasibility).
std::optional<std::vector<int64_t>>
computeClassCoarsening(const StreamGraph &G, const ExecutionConfig &Config,
                       const MachineModel &Machine);

/// Resource-constrained minimum II: total instance work spread over the
/// SMs, and no instance shorter than its own delay. A hybrid \p Machine
/// uses each instance's cheapest class (a valid lower bound).
double computeResMII(const ExecutionConfig &Config,
                     const GpuSteadyState &GSS, int Pmax,
                     const MachineModel *Machine = nullptr);

/// Recurrence-constrained minimum II over the coarsened instance graph.
/// A hybrid \p Machine prices each producer at its cheapest class.
double computeCoarsenedRecMII(const StreamGraph &G, const SteadyState &SS,
                              const ExecutionConfig &Config,
                              const GpuSteadyState &GSS,
                              const MachineModel *Machine = nullptr);

} // namespace sgpu

#endif // SGPU_CORE_ILPFORMULATION_H
