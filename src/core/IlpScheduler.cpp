//===- core/IlpScheduler.cpp - II search driving the ILP --------------------===//

#include "core/IlpScheduler.h"

#include <algorithm>
#include <cmath>

using namespace sgpu;

std::optional<ScheduleResult>
sgpu::scheduleSwp(const StreamGraph &G, const SteadyState &SS,
                  const ExecutionConfig &Config, const GpuSteadyState &GSS,
                  const SchedulerOptions &Options) {
  ScheduleResult Res;
  Res.ResMII = computeResMII(Config, GSS, Options.Pmax);
  Res.RecMII = computeCoarsenedRecMII(G, SS, Config, GSS);
  Res.MII = std::max(Res.ResMII, Res.RecMII);
  if (Res.MII <= 0.0)
    return std::nullopt;

  double T = Res.MII;
  double Limit = Res.MII * Options.MaxRelaxFactor;
  int IlpAttempts = 0;

  while (T <= Limit) {
    ++Res.IIAttempts;

    std::optional<SwpSchedule> Heur = buildHeuristicSchedule(
        G, SS, Config, GSS, Options.Pmax, T, Options.MaxStages);
    if (Heur && verifySchedule(G, SS, Config, GSS, *Heur))
      Heur.reset(); // The verifier rejected it; treat as absent.

    bool WantIlp =
        Options.UseIlp &&
        GSS.totalInstances() <= Options.MaxIlpInstances &&
        IlpAttempts < Options.MaxIlpAttempts &&
        (!Heur || Options.IlpEvenIfHeuristicSucceeds);

    if (WantIlp) {
      ++IlpAttempts;
      if (std::optional<IlpModel> M = buildSwpIlp(
              G, SS, Config, GSS, Options.Pmax, T, Options.MaxStages)) {
        MilpOptions MO;
        MO.TimeBudgetSeconds = Options.TimeBudgetSeconds;
        std::optional<std::vector<double>> Incumbent;
        if (Heur)
          Incumbent = M->encode(*Heur);
        MilpResult MR = solveMilp(M->LP, MO, Incumbent);
        Res.SolverSeconds += MR.Seconds;
        Res.SolverNodes += MR.NodesExplored;
        if (MR.hasSolution()) {
          SwpSchedule S = M->decode(MR.X);
          if (!verifySchedule(G, SS, Config, GSS, S)) {
            Res.Schedule = std::move(S);
            Res.UsedIlp = true;
            Res.FinalII = T;
            Res.RelaxationPercent = (T / Res.MII - 1.0) * 100.0;
            return Res;
          }
        }
      }
    }

    if (Heur) {
      Res.Schedule = std::move(*Heur);
      Res.UsedHeuristic = true;
      Res.FinalII = T;
      Res.RelaxationPercent = (T / Res.MII - 1.0) * 100.0;
      return Res;
    }

    // Paper Section V: "the II is relaxed by 0.5% and the process is
    // repeated until a feasible solution was found".
    T = std::max(T * Options.RelaxFactor, T + 1e-6);
  }
  return std::nullopt;
}
