//===- core/IlpScheduler.cpp - II search driving the ILP --------------------===//

#include "core/IlpScheduler.h"

#include "support/Metrics.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <algorithm>
#include <chrono>
#include <cmath>

using namespace sgpu;

namespace {

using Clock = std::chrono::steady_clock;

/// Everything one candidate II produced. Evaluations are independent —
/// each builds its own heuristic schedule and MILP — so a window of them
/// can run concurrently.
struct CandidateOutcome {
  bool Feasible = false;
  SwpSchedule Schedule;
  bool UsedIlp = false;
  bool UsedHeuristic = false;
  bool DidIlp = false; ///< The exact solver was actually invoked.
  double SolverSeconds = 0.0;
  int SolverNodes = 0;
  long long LpSolves = 0;
  long long SimplexIters = 0;
  long long Pivots = 0;
  double BusySeconds = 0.0;
  double WorkerSeconds = 0.0;
  long long Steals = 0;
  long long WarmStarts = 0;
  double WallSeconds = 0.0;
};

/// Evaluates one candidate II exactly the way the paper's serial loop
/// does: heuristic first (it doubles as the MILP incumbent), then the
/// exact solver when allowed, ILP solution preferred over the heuristic.
CandidateOutcome evaluateCandidate(const StreamGraph &G,
                                   const SteadyState &SS,
                                   const ExecutionConfig &Config,
                                   const GpuSteadyState &GSS,
                                   const SchedulerOptions &Options, double T,
                                   bool AllowIlp, int MilpWorkers,
                                   const SimplexBasis *Seed,
                                   const MachineModel *Machine) {
  CandidateOutcome Out;
  TraceSpan Span("ii.candidate", "schedule");
  Span.argNum("ii", T);
  metricCounter("scheduler.ii_candidates").add(1);
  auto WallStart = Clock::now();

  std::optional<SwpSchedule> Heur = buildHeuristicSchedule(
      G, SS, Config, GSS, Options.Pmax, T, Options.MaxStages, Machine);
  if (Heur && verifySchedule(G, SS, Config, GSS, *Heur, Machine))
    Heur.reset(); // The verifier rejected it; treat as absent.

  bool WantIlp = AllowIlp && Options.UseIlp &&
                 GSS.totalInstances() <= Options.MaxIlpInstances &&
                 (!Heur || Options.IlpEvenIfHeuristicSucceeds);

  if (WantIlp) {
    Out.DidIlp = true; // Counts against MaxIlpAttempts even if the
                       // model below fails to build.
    if (std::optional<IlpModel> M =
            buildSwpIlp(G, SS, Config, GSS, Options.Pmax, T,
                        Options.MaxStages, false, Machine)) {
      MilpOptions MO;
      MO.TimeBudgetSeconds = Options.TimeBudgetSeconds;
      MO.MaxNodes = Options.MaxIlpNodes;
      MO.LpIterationLimit = Options.MaxLpIterations;
      MO.NumWorkers = MilpWorkers;
      if (Seed)
        MO.WarmBasis = *Seed; // Same LP shape at every candidate II.
      std::optional<std::vector<double>> Incumbent;
      if (Heur)
        Incumbent = M->encode(*Heur);
      MilpResult MR = solveMilp(M->LP, MO, Incumbent);
      Out.SolverSeconds = MR.Seconds;
      Out.SolverNodes = MR.NodesExplored;
      Out.LpSolves = MR.LpSolves;
      Out.SimplexIters = MR.SimplexIterations;
      Out.Pivots = MR.Pivots;
      Out.BusySeconds = MR.BusySeconds;
      Out.WorkerSeconds = MR.WorkerSeconds;
      Out.Steals = MR.Steals;
      Out.WarmStarts = MR.WarmLpStarts;
      if (MR.hasSolution()) {
        SwpSchedule S = M->decode(MR.X);
        if (!verifySchedule(G, SS, Config, GSS, S, Machine)) {
          Out.Schedule = std::move(S);
          Out.UsedIlp = true;
          Out.Feasible = true;
        }
      }
    }
  }

  if (!Out.Feasible && Heur) {
    Out.Schedule = std::move(*Heur);
    Out.UsedHeuristic = true;
    Out.Feasible = true;
  }
  Out.WallSeconds =
      std::chrono::duration<double>(Clock::now() - WallStart).count();
  Span.argInt("feasible", Out.Feasible ? 1 : 0);
  Span.argStr("via", Out.UsedIlp ? "ilp"
                                 : (Out.UsedHeuristic ? "heuristic" : "none"));
  if (Out.Feasible)
    metricCounter("scheduler.ii_feasible").add(1);
  return Out;
}

/// Folds one visited candidate's solver effort into the search totals.
void accumulate(ScheduleResult &Res, const CandidateOutcome &Out) {
  ++Res.IIAttempts;
  Res.SolverSeconds += Out.SolverSeconds;
  Res.SolverNodes += Out.SolverNodes;
  Res.SolverLpSolves += Out.LpSolves;
  Res.SolverSimplexIters += Out.SimplexIters;
  Res.SolverPivots += Out.Pivots;
  Res.SolverBusySeconds += Out.BusySeconds;
  Res.SolverWorkerSeconds += Out.WorkerSeconds;
  Res.SolverSteals += Out.Steals;
  Res.SolverWarmStarts += Out.WarmStarts;
  Res.IIWallSeconds.push_back(Out.WallSeconds);
}

/// The paper's relaxation step: "the II is relaxed by 0.5% and the
/// process is repeated until a feasible solution was found" (Section V).
double nextCandidate(double T, const SchedulerOptions &Options) {
  return std::max(T * Options.RelaxFactor, T + 1e-6);
}

void commit(ScheduleResult &Res, CandidateOutcome &&Out, double T) {
  Res.Schedule = std::move(Out.Schedule);
  Res.UsedIlp = Out.UsedIlp;
  Res.UsedHeuristic = Out.UsedHeuristic;
  Res.FinalII = T;
  Res.RelaxationPercent = (T / Res.MII - 1.0) * 100.0;
  metricGauge("scheduler.final_ii").set(T);
}

} // namespace

std::optional<ScheduleResult>
sgpu::scheduleSwp(const StreamGraph &G, const SteadyState &SS,
                  const ExecutionConfig &Config, const GpuSteadyState &GSS,
                  const SchedulerOptions &Options,
                  const MachineModel *Machine) {
  StageTimer Timer("core.schedule");
  metricCounter("scheduler.runs").add(1);
  ScheduleResult Res;
  Res.ResMII = computeResMII(Config, GSS, Options.Pmax, Machine);
  Res.RecMII = computeCoarsenedRecMII(G, SS, Config, GSS, Machine);
  Res.MII = std::max(Res.ResMII, Res.RecMII);
  if (Res.MII <= 0.0)
    return std::nullopt;

  int Workers = resolveWorkerCount(Options.NumWorkers);
  int Window = Options.IIWindow > 0 ? Options.IIWindow
                                    : std::min(4, Workers);
  Window = std::max(1, Window);
  Res.WorkersUsed = Workers;

  double T = Res.MII;
  double Limit = Res.MII * Options.MaxRelaxFactor;
  int IlpAttempts = 0;

  // Seed solve: one serial LP relaxation at T = MII whose final basis
  // warm-starts the root of every candidate's branch & bound — the
  // candidate LPs differ from the seed only in coefficient values (the
  // II appears in constraint (8) and the OMax bounds), not in shape, so
  // one basis serves the whole window. Running it before the window
  // also keeps the basis identical however many candidates run
  // concurrently, preserving bit-identical results across --jobs.
  SimplexBasis SeedBasis;
  if (Options.UseIlp && GSS.totalInstances() <= Options.MaxIlpInstances) {
    if (std::optional<IlpModel> M =
            buildSwpIlp(G, SS, Config, GSS, Options.Pmax, T,
                        Options.MaxStages, false, Machine)) {
      auto SeedStart = Clock::now();
      LpResult Seed = solveLpRelaxation(M->LP, Options.MaxLpIterations,
                                        Options.TimeBudgetSeconds);
      Res.SolverSeconds +=
          std::chrono::duration<double>(Clock::now() - SeedStart).count();
      ++Res.SolverLpSolves;
      Res.SolverSimplexIters += Seed.Iterations;
      Res.SolverPivots += Seed.Pivots;
      SeedBasis = std::move(Seed.Basis); // Usable whatever the status.
      metricCounter("scheduler.seed_lps").add(1);
    }
  }

  while (T <= Limit) {
    // Materialize the next window of candidate IIs (window 1 == the
    // paper's serial loop).
    std::vector<double> Candidates;
    double Tw = T;
    for (int I = 0; I < Window && Tw <= Limit; ++I) {
      Candidates.push_back(Tw);
      Tw = nextCandidate(Tw, Options);
    }
    int W = static_cast<int>(Candidates.size());
    if (W == 0)
      break;

    // ILP permission per slot mirrors the serial gate: along a failed
    // prefix every candidate costs one exact-solver attempt, so slot I
    // is allowed the ILP only while IlpAttempts + I stays under the cap.
    // The branch & bound splits the engine's workers with the window.
    int MilpWorkers = std::max(1, Workers / W);
    std::vector<CandidateOutcome> Outcomes(W);
    parallelFor(0, W, std::min(W, Workers), [&](int I) {
      Outcomes[I] = evaluateCandidate(G, SS, Config, GSS, Options,
                                      Candidates[I],
                                      IlpAttempts + I < Options.MaxIlpAttempts,
                                      MilpWorkers,
                                      SeedBasis.empty() ? nullptr : &SeedBasis,
                                      Machine);
    });

    // Commit the smallest feasible candidate — "first feasible II wins"
    // — charging the search only for candidates the serial loop would
    // have visited (the committed one and everything below it).
    for (int I = 0; I < W; ++I) {
      accumulate(Res, Outcomes[I]);
      if (Outcomes[I].DidIlp)
        ++IlpAttempts;
      if (Outcomes[I].Feasible) {
        commit(Res, std::move(Outcomes[I]), Candidates[I]);
        return Res;
      }
    }
    T = Tw;
  }
  return std::nullopt;
}
