//===- core/IlpScheduler.h - II search driving the ILP ----------*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's scheduling loop (Section V): start at the lower bound
/// max(ResMII, RecMII), give the solver a fixed time budget at each
/// candidate II, and relax the II by 0.5% until a feasible schedule
/// appears. Our solver additionally receives the heuristic scheduler's
/// schedule as an incumbent (see HeuristicScheduler.h) and skips the
/// exact search for models beyond a size threshold, falling back to the
/// heuristic — both deviations recorded in DESIGN.md.
///
/// With NumWorkers > 1 the loop turns speculative: a window of
/// consecutive candidate IIs is evaluated concurrently and the smallest
/// feasible candidate is committed, discarding any larger II that
/// happened to finish first — exactly the paper's "first feasible II
/// wins" rule, just computed ahead of time (DESIGN.md "Solver
/// engineering").
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_CORE_ILPSCHEDULER_H
#define SGPU_CORE_ILPSCHEDULER_H

#include "core/HeuristicScheduler.h"
#include "core/ScheduleVerifier.h"
#include "ilp/BranchAndBound.h"

#include <optional>

namespace sgpu {

/// Scheduling knobs.
struct SchedulerOptions {
  int Pmax = 16;                   ///< SMs to target (paper: 16 blocks).
  double TimeBudgetSeconds = 2.0;  ///< Per-II solver budget (paper: 20 s).
  /// Per-II node budget for the branch & bound and simplex iteration
  /// cap per node. Unlike the wall-clock budget these cut the search at
  /// the same point on any machine; perf_gate relies on that for
  /// run-to-run determinism.
  int MaxIlpNodes = 200000;
  int MaxLpIterations = 50000;
  double RelaxFactor = 1.005;      ///< II relaxation step (paper: 0.5%).
  double MaxRelaxFactor = 4.0;     ///< Give up beyond MII * this.
  /// Pipeline stage bound for the f variables. Deep graphs need roughly
  /// one stage per cross-SM hop on their longest path, so this is sized
  /// for the Table I benchmarks; it only costs buffering, not II.
  int64_t MaxStages = 64;
  bool UseIlp = true;              ///< Run the exact solver at all.
  /// Beyond this many instances the ILP is skipped in favour of the
  /// heuristic (our branch & bound is not CPLEX).
  int MaxIlpInstances = 48;
  /// The exact solver is invoked on at most this many candidate IIs; the
  /// paper ran CPLEX at every candidate, but each of our budget-limited
  /// attempts costs the full budget when it fails, so the search falls
  /// back to the heuristic after this many tries (see DESIGN.md).
  int MaxIlpAttempts = 3;
  /// Force the exact solver even when the heuristic already found a
  /// schedule at this II (used by the ILP-vs-heuristic ablation).
  bool IlpEvenIfHeuristicSucceeds = false;
  /// Total workers for the scheduling engine: the speculative II window,
  /// the branch & bound queue and the profiling sweep all draw from this
  /// count. 0 resolves via SGPU_JOBS, then hardware_concurrency.
  int NumWorkers = 0;
  /// Candidate IIs evaluated concurrently. 0 picks min(4, workers);
  /// 1 forces the serial one-II-at-a-time loop.
  int IIWindow = 0;
};

/// Outcome of the II search.
struct ScheduleResult {
  SwpSchedule Schedule;
  double ResMII = 0.0;
  double RecMII = 0.0;
  double MII = 0.0;
  double FinalII = 0.0;
  double RelaxationPercent = 0.0;
  int IIAttempts = 0;
  bool UsedIlp = false;       ///< The accepted schedule came from B&B.
  bool UsedHeuristic = false; ///< The accepted schedule came from LPT.

  // Solver telemetry, aggregated over the candidate IIs the (serial)
  // search would have visited: committed candidate and everything below.
  double SolverSeconds = 0.0;      ///< B&B wall-clock, summed.
  int SolverNodes = 0;             ///< B&B nodes, summed.
  long long SolverLpSolves = 0;    ///< LP relaxations solved.
  long long SolverSimplexIters = 0;///< Simplex iterations (flips included).
  long long SolverPivots = 0;      ///< Simplex basis changes.
  double SolverBusySeconds = 0.0;  ///< Sum of B&B worker busy time.
  /// Sum of B&B worker drain-loop wall spans; utilization is
  /// SolverBusySeconds / SolverWorkerSeconds (1.0 for one worker).
  double SolverWorkerSeconds = 0.0;
  long long SolverSteals = 0;      ///< B&B subproblems stolen across deques.
  long long SolverWarmStarts = 0;  ///< Node LPs resumed from a carried basis.
  int WorkersUsed = 1;             ///< Resolved engine worker count.
  std::vector<double> IIWallSeconds; ///< Wall time per candidate II tried.
};

/// Runs the II search. Returns std::nullopt when no schedule exists up to
/// MaxRelaxFactor * MII (e.g. an instance's delay exceeds every tried II).
///
/// A hybrid \p Machine (with Options.Pmax == Machine->totalProcs())
/// switches every layer — MII bounds, heuristic, ILP, verifier — to the
/// class-indexed hybrid formulation. A null machine is the paper's
/// GPU-only search, bit for bit.
std::optional<ScheduleResult>
scheduleSwp(const StreamGraph &G, const SteadyState &SS,
            const ExecutionConfig &Config, const GpuSteadyState &GSS,
            const SchedulerOptions &Options = {},
            const MachineModel *Machine = nullptr);

} // namespace sgpu

#endif // SGPU_CORE_ILPSCHEDULER_H
