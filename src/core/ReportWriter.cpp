//===- core/ReportWriter.cpp - Compile report serialization ------------------===//

#include "core/ReportWriter.h"

#include "support/Json.h"
#include "support/Metrics.h"

using namespace sgpu;

std::string sgpu::reportToJson(const StreamGraph &G,
                               const CompileReport &R) {
  JsonWriter W;
  W.beginObject();
  W.writeString("strategy", strategyName(R.Strat));
  W.writeInt("coarsening", R.Coarsening);
  W.writeString("layout", R.Layout == LayoutKind::Shuffled ? "shuffled"
                                                           : "sequential");
  W.writeString("timing_model", timingModelKindName(R.Timing));

  // Machine model: which processor set the schedule targets. Hybrid
  // compiles additionally surface the class layout, the solved per-class
  // coarsening values and how many instances landed on the host.
  W.beginObject("machine");
  W.writeString("mode", machineModeName(R.Machine));
  if (R.Machine == MachineMode::Hybrid) {
    W.beginArray("classes");
    for (size_t C = 0; C < R.MachineDesc.Classes.size(); ++C) {
      const ProcessorClass &PC = R.MachineDesc.Classes[C];
      W.beginObject();
      W.writeString("kind", procClassKindName(PC.Kind));
      W.writeInt("count", PC.Count);
      W.writeInt("mem_bytes", PC.MemBytes);
      if (C < R.Schedule.ClassCoarsening.size())
        W.writeInt("coarsening", R.Schedule.ClassCoarsening[C]);
      W.endObject();
    }
    W.endArray();
    W.writeInt("cpu_resident_instances", R.CpuResidentInstances);
  }
  W.endObject();

  // Kernel-schema decision (codegen/schema/): what was requested, what
  // was chosen, and which edges became shared-memory queues.
  W.beginObject("schema");
  W.writeString("requested", schemaModeName(R.RequestedSchema));
  W.writeString("selected", schemaKindName(R.Schema.Kind));
  W.writeInt("queue_edges", R.Schema.numQueueEdges());
  W.writeInt("shared_queue_bytes", R.Schema.SharedQueueBytes);
  W.beginArray("edges");
  for (size_t E = 0; E < R.Schema.Edges.size(); ++E) {
    W.beginObject();
    W.writeInt("edge", static_cast<int64_t>(E));
    W.writeString("schema", edgeSchemaName(R.Schema.Edges[E]));
    if (R.Schema.isQueue(static_cast<int>(E)))
      W.writeInt("cap_tokens", R.Schema.QueueCapTokens[E]);
    W.endObject();
  }
  W.endArray();
  W.endObject();

  W.beginObject("graph");
  W.writeInt("nodes", G.numNodes());
  W.writeInt("edges", G.numEdges());
  W.writeInt("filters", G.numFilterNodes());
  W.writeInt("peeking_filters", G.numPeekingFilters());
  W.endObject();

  W.beginObject("execution_config");
  W.writeInt("reg_limit", R.Config.RegLimit);
  W.writeInt("block_threads", R.Config.NumThreads);
  W.beginArray("per_node_threads");
  for (int64_t T : R.Config.Threads)
    W.writeInt(T);
  W.endArray();
  W.endObject();

  W.beginObject("scheduling");
  W.writeDouble("res_mii", R.SchedStats.ResMII);
  W.writeDouble("rec_mii", R.SchedStats.RecMII);
  W.writeDouble("final_ii", R.SchedStats.FinalII);
  W.writeDouble("relaxation_percent", R.SchedStats.RelaxationPercent);
  W.writeInt("ii_attempts", R.SchedStats.IIAttempts);
  W.writeInt("bnb_nodes", R.SchedStats.SolverNodes);
  W.writeBool("used_ilp", R.SchedStats.UsedIlp);
  W.writeInt("stage_span", R.Schedule.stageSpan());

  // Solver-engine telemetry (see DESIGN.md "Solver engineering").
  W.beginObject("solver");
  W.writeInt("lp_solves", R.SchedStats.SolverLpSolves);
  W.writeInt("simplex_iterations", R.SchedStats.SolverSimplexIters);
  W.writeInt("pivots", R.SchedStats.SolverPivots);
  W.writeDouble("seconds", R.SchedStats.SolverSeconds);
  W.writeDouble("busy_seconds", R.SchedStats.SolverBusySeconds);
  W.writeDouble("worker_seconds", R.SchedStats.SolverWorkerSeconds);
  W.writeInt("workers", R.SchedStats.WorkersUsed);
  W.writeInt("steals", R.SchedStats.SolverSteals);
  W.writeInt("warm_starts", R.SchedStats.SolverWarmStarts);
  // Busy over per-worker drain-loop spans: ramp-up and drain idle is
  // charged to the worker that sat idle, so one worker reads 1.0.
  W.writeDouble("worker_utilization",
                R.SchedStats.SolverWorkerSeconds > 0.0
                    ? R.SchedStats.SolverBusySeconds /
                          R.SchedStats.SolverWorkerSeconds
                    : 0.0);
  W.beginArray("ii_wall_seconds");
  for (double S : R.SchedStats.IIWallSeconds)
    W.writeDouble(S);
  W.endArray();
  W.endObject();
  W.endObject();

  W.beginArray("instances");
  for (const ScheduledInstance &SI : R.Schedule.Instances) {
    W.beginObject();
    W.writeString("node", G.node(SI.Node).Name);
    W.writeInt("k", SI.K);
    W.writeInt("sm", SI.Sm);
    if (R.Machine == MachineMode::Hybrid)
      W.writeString("class",
                    procClassKindName(R.MachineDesc.classOf(SI.Sm).Kind));
    W.writeDouble("o", SI.O);
    W.writeInt("f", SI.F);
    W.endObject();
  }
  W.endArray();

  W.beginObject("metrics");
  W.writeDouble("gpu_cycles_per_base_iter", R.GpuCyclesPerBaseIteration);
  W.writeDouble("cpu_cycles_per_base_iter", R.CpuCyclesPerBaseIteration);
  W.writeDouble("speedup", R.Speedup);
  W.writeInt("buffer_bytes", R.BufferBytes);
  W.writeDouble("pipeline_latency_cycles", R.PipelineLatencyCycles);
  W.writeDouble("tokens_per_kilocycle", R.TokensPerKiloCycle);
  W.endObject();

  W.beginObject("kernel_sim");
  W.writeDouble("total_cycles", R.KernelSim.TotalCycles);
  W.writeDouble("fill_cycles", R.KernelSim.FillCycles);
  W.writeDouble("transactions", R.KernelSim.Transactions);
  W.writeString("warp_sched", warpSchedPolicyName(R.WarpSched));
  W.beginArray("per_sm");
  for (const SmBreakdown &B : R.KernelSim.PerSm) {
    W.beginObject();
    W.writeDouble("busy_cycles", B.BusyCycles);
    W.writeDouble("stall_cycles", B.StallCycles);
    W.writeDouble("total_cycles", B.TotalCycles);
    W.writeDouble("fetch_busy_cycles", B.FetchBusyCycles);
    W.writeDouble("fetch_stall_cycles", B.FetchStallCycles);
    W.writeDouble("operand_stall_cycles", B.OperandStallCycles);
    W.writeDouble("mem_stall_cycles", B.MemStallCycles);
    W.writeInt("warp_instrs", B.WarpInstrs);
    W.writeInt("transactions", B.Transactions);
    W.endObject();
  }
  W.endArray();
  W.endObject();

  // Process-wide observability counters accumulated so far (see
  // DESIGN.md "Observability"). Callers that want per-compile deltas
  // reset the registry before compiling, as perf_gate does.
  W.beginObject("pipeline_metrics");
  MetricsRegistry::global().writeJson(W);
  W.endObject();

  W.endObject();
  return W.str();
}
