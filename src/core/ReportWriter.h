//===- core/ReportWriter.h - Compile report serialization -------*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes a CompileReport (configuration, II search statistics, the
/// full per-instance schedule, speedup/latency metrics) to JSON so
/// external tooling can plot schedules and compare runs.
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_CORE_REPORTWRITER_H
#define SGPU_CORE_REPORTWRITER_H

#include "core/Compiler.h"

#include <string>

namespace sgpu {

/// Renders \p R (compiled from \p G) as a JSON document.
std::string reportToJson(const StreamGraph &G, const CompileReport &R);

} // namespace sgpu

#endif // SGPU_CORE_REPORTWRITER_H
