//===- core/ScheduleVerifier.cpp - Independent schedule checks --------------===//

#include "core/ScheduleVerifier.h"

#include <cmath>
#include <sstream>

using namespace sgpu;

std::optional<std::string>
sgpu::verifySchedule(const StreamGraph &G, const SteadyState &SS,
                     const ExecutionConfig &Config,
                     const GpuSteadyState &GSS, const SwpSchedule &S,
                     const MachineModel *Machine) {
  constexpr double Tol = 1e-6;
  double T = S.II;
  int N = G.numNodes();
  const bool Hyb = Machine && Machine->hasCpu();

  // "SM 3 (class sm)" / "cpu core 1 (class cpu)" for hybrid diagnostics.
  auto ProcDesc = [&](int Proc) {
    std::ostringstream OS;
    int Cls = Machine->classIndexOf(Proc);
    const ProcessorClass &PC = Machine->Classes[Cls];
    int Local = Proc;
    for (int C = 0; C < Cls; ++C)
      Local -= Machine->Classes[C].Count;
    if (PC.Kind == ProcClassKind::CpuCore)
      OS << "cpu core " << Local;
    else
      OS << "SM " << Local;
    OS << " (class " << procClassKindName(PC.Kind) << ")";
    return OS.str();
  };

  // Index instances densely and check completeness / uniqueness.
  std::vector<int64_t> Base(N);
  int64_t Count = 0;
  for (int V = 0; V < N; ++V) {
    Base[V] = Count;
    Count += GSS.Instances[V];
  }
  std::vector<const ScheduledInstance *> ById(Count, nullptr);
  for (const ScheduledInstance &SI : S.Instances) {
    if (SI.Node < 0 || SI.Node >= N)
      return "instance references an unknown node";
    if (SI.K < 0 || SI.K >= GSS.Instances[SI.Node])
      return "instance index out of range for node " +
             G.node(SI.Node).Name;
    int64_t Id = Base[SI.Node] + SI.K;
    if (ById[Id])
      return "duplicate instance in schedule";
    ById[Id] = &SI;
  }
  for (int64_t I = 0; I < Count; ++I)
    if (!ById[I])
      return "schedule is missing instances";

  // Hybrid: the machine and schedule must agree on the processor count,
  // and the per-class coarsening values must respect the memory bounds.
  if (Hyb) {
    if (S.Pmax != Machine->totalProcs())
      return "hybrid schedule Pmax does not cover the machine's "
             "processor set";
    auto Bounds = computeClassCoarsening(G, Config, *Machine);
    if (!Bounds)
      return "some machine class cannot hold one coarsening unit of the "
             "graph's working set";
    if (S.ClassCoarsening.size() != Bounds->size())
      return "hybrid schedule is missing per-class coarsening values";
    for (size_t C = 0; C < Bounds->size(); ++C)
      if (S.ClassCoarsening[C] < 1 || S.ClassCoarsening[C] > (*Bounds)[C]) {
        std::ostringstream OS;
        OS << "coarsening value " << S.ClassCoarsening[C] << " for class "
           << procClassKindName(Machine->Classes[C].Kind)
           << " outside its memory bound [1, " << (*Bounds)[C] << "]";
        return OS.str();
      }
  }

  // (1) SM range, (4) o bounds, f sanity.
  std::vector<double> SmLoad(S.Pmax, 0.0);
  for (const ScheduledInstance &SI : S.Instances) {
    if (SI.Sm < 0 || SI.Sm >= S.Pmax)
      return "instance assigned outside [0, Pmax)";
    double D = Hyb ? procDelay(Config, Machine, SI.Node, SI.Sm)
                   : Config.Delay[SI.Node];
    if (SI.O < -Tol || SI.O + D > T + Tol) {
      std::ostringstream OS;
      OS << "constraint (4) violated: o=" << SI.O << " d=" << D
         << " II=" << T << " at " << G.node(SI.Node).Name;
      if (Hyb)
        OS << " (instance k=" << SI.K << " on " << ProcDesc(SI.Sm) << ")";
      return OS.str();
    }
    if (SI.F < 0)
      return "negative pipeline stage";
    SmLoad[SI.Sm] += D;
  }

  // (2) per-processor resource fit.
  for (int P = 0; P < S.Pmax; ++P)
    if (SmLoad[P] > T + Tol) {
      std::ostringstream OS;
      if (Hyb)
        OS << "constraint (2) violated: " << ProcDesc(P) << " load "
           << SmLoad[P] << " > II " << T;
      else
        OS << "constraint (2) violated: SM " << P << " load " << SmLoad[P]
           << " > II " << T;
      return OS.str();
    }

  // (8) dependence constraints over the coarsened instance graph.
  for (const CoarsenedEdge &E : coarsenEdges(G, SS, Config)) {
    int64_t Ku = GSS.Instances[E.Src];
    int64_t Kv = GSS.Instances[E.Dst];
    for (int64_t K = 0; K < Kv; ++K) {
      const ScheduledInstance &Cons = *ById[Base[E.Dst] + K];
      for (const InstanceDep &D :
           computeInstanceDeps(E.Iuv, E.Peek, E.Ouv, E.Muv, Ku, K)) {
        const ScheduledInstance &Prod = *ById[Base[E.Src] + D.KProd];
        double SigmaC = SwpSchedule::sigma(T, Cons);
        double SigmaP = SwpSchedule::sigma(T, Prod);
        double Lag = static_cast<double>(D.JLag);
        double ProdDelay = Hyb
                               ? procDelay(Config, Machine, E.Src, Prod.Sm)
                               : Config.Delay[E.Src];
        if (SigmaC + Tol < SigmaP + ProdDelay + T * Lag) {
          std::ostringstream OS;
          OS << "constraint (8a) violated on edge "
             << G.node(E.Src).Name << " -> " << G.node(E.Dst).Name
             << " (k=" << K << ", k'=" << D.KProd << ", jlag=" << D.JLag
             << ")";
          if (Hyb)
            OS << " with producer on " << ProcDesc(Prod.Sm);
          return OS.str();
        }
        if (Cons.Sm != Prod.Sm &&
            Cons.F < Prod.F + D.JLag + 1) {
          std::ostringstream OS;
          OS << "constraint (8b) violated (cross-SM data used in the "
                "same iteration) on edge "
             << G.node(E.Src).Name << " -> " << G.node(E.Dst).Name;
          return OS.str();
        }
      }
    }
  }
  return std::nullopt;
}
