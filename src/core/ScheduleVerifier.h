//===- core/ScheduleVerifier.h - Independent schedule checks ----*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checks a software-pipelined schedule against the paper's constraint
/// system directly (without going through the LP), so that ILP solutions,
/// heuristic schedules and hand-written test schedules are all judged by
/// one independent arbiter:
///
///  - every instance sits on exactly one SM in [0, Pmax);
///  - per-SM work fits within the II (constraint 2);
///  - o + d(v) <= T per instance (constraint 4);
///  - for every instance dependence, sigma_cons >= sigma_prod + d + T*jlag
///    (8a), and when the endpoints sit on different SMs additionally
///    f_cons >= f_prod + jlag + 1 (8b with g = 1): cross-SM data is only
///    reliable in the next steady-state iteration (Section III-C).
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_CORE_SCHEDULEVERIFIER_H
#define SGPU_CORE_SCHEDULEVERIFIER_H

#include "core/IlpFormulation.h"

#include <optional>
#include <string>

namespace sgpu {

/// Verifies \p S against the coarsened dependence structure. Returns an
/// error description, or std::nullopt when the schedule is valid.
///
/// A hybrid \p Machine makes the check class-aware: instance delays are
/// priced at the hosting processor's class, constraint (2) is checked
/// per flat processor, the per-class coarsening values must sit within
/// their memory bounds, and diagnostics name the offending instance and
/// processor class. A null machine reproduces the paper's GPU-only
/// check (and its exact messages) unchanged.
std::optional<std::string>
verifySchedule(const StreamGraph &G, const SteadyState &SS,
               const ExecutionConfig &Config, const GpuSteadyState &GSS,
               const SwpSchedule &S, const MachineModel *Machine = nullptr);

} // namespace sgpu

#endif // SGPU_CORE_SCHEDULEVERIFIER_H
