//===- gpusim/FunctionalSim.cpp - Functional SWP execution ------------------===//

#include "gpusim/FunctionalSim.h"

#include "codegen/schema/KernelSchema.h"
#include "support/Check.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <algorithm>
#include <limits>
#include <sstream>

using namespace sgpu;

namespace {

/// Provenance of one written token.
struct WriteTag {
  int64_t Iter = -2; ///< Kernel invocation; -1 = init phase / initial.
  int Sm = -1;
  int64_t Seq = -1; ///< Execution order within (Iter, Sm).
  bool Written = false;
};

/// One channel edge's materialized token store, absolute FIFO indexing.
struct EdgeTokens {
  std::vector<Scalar> Tokens;
  std::vector<WriteTag> Tags;

  void resizeFor(int64_t Count, TokenType Ty) {
    Tokens.assign(Count, Ty == TokenType::Int ? Scalar::makeInt(0)
                                              : Scalar::makeFloat(0.0));
    Tags.assign(Count, WriteTag());
  }
};

/// Reader context used by the visibility rule.
struct ReadCtx {
  int64_t Iter;
  int Sm;
  int64_t Seq;
};

bool isVisible(const WriteTag &W, const ReadCtx &R) {
  if (!W.Written)
    return false;
  if (W.Iter < R.Iter)
    return true;
  // Same invocation: only earlier work of the same SM is reliable
  // (Section III-C: cross-SM data is usable only next iteration).
  return W.Iter == R.Iter && W.Sm == R.Sm && W.Seq < R.Seq;
}

} // namespace

struct SwpFunctionalSim::EdgeState {};

SwpFunctionalSim::SwpFunctionalSim(const StreamGraph &G,
                                   const SteadyState &SS,
                                   const ExecutionConfig &Config,
                                   const GpuSteadyState &GSS,
                                   const SwpSchedule &Sched,
                                   const SchemaAssignment *Schema)
    : G(G), SS(SS), Config(Config), GSS(GSS), Sched(Sched), Schema(Schema) {}

int64_t SwpFunctionalSim::inputTokensNeeded(int64_t Iterations) const {
  int Entry = G.entryNode();
  if (Entry < 0)
    return 0;
  const Filter &F = *G.node(Entry).TheFilter;
  int64_t BaseFirings =
      SS.initFirings()[Entry] +
      Iterations * GSS.Instances[Entry] * Config.Threads[Entry];
  return BaseFirings * F.popRate() + (F.peekRate() - F.popRate());
}

FunctionalRunResult SwpFunctionalSim::run(const std::vector<Scalar> &Input,
                                          int64_t Iterations) {
  StageTimer Timer("gpusim.functional_run");
  Timer.span().argInt("iterations", Iterations);
  metricCounter("gpusim.runs").add(1);
  int64_t Firings = 0;
  FunctionalRunResult Res;
  int N = G.numNodes();

  if (static_cast<int64_t>(Input.size()) < inputTokensNeeded(Iterations)) {
    Res.Error = "insufficient program input for the requested iterations";
    return Res;
  }

  // Total base firings per node over init + all iterations.
  std::vector<int64_t> TotalFirings(N);
  for (int V = 0; V < N; ++V)
    TotalFirings[V] = SS.initFirings()[V] +
                      Iterations * GSS.Instances[V] * Config.Threads[V];

  // Names an edge's assigned schema for diagnostics.
  auto EdgeSchemaStr = [&](int EId) -> const char * {
    return Schema && Schema->isQueue(EId)
               ? edgeSchemaName(EdgeSchema::SharedQueue)
               : edgeSchemaName(EdgeSchema::GlobalChannel);
  };

  // Queue-assigned edges must satisfy the structural eligibility rules
  // before any token moves: a violation is a schema-selection bug, and
  // replaying it would mis-attribute the failure to data visibility.
  if (Schema)
    for (const ChannelEdge &E : G.edges()) {
      if (!Schema->isQueue(E.Id))
        continue;
      std::ostringstream OS;
      OS << "edge " << E.Id << " (schema '" << EdgeSchemaStr(E.Id) << "') ";
      if (E.InitTokens != 0 || E.PeekRate != E.ConsRate) {
        OS << "carries init tokens or peek slack; a shared ring cannot be "
              "pre-seeded";
        Res.Error = OS.str();
        return Res;
      }
      if (SS.initFirings()[E.Src] != 0 || SS.initFirings()[E.Dst] != 0) {
        OS << "has init-phase firings on an endpoint; the ring does not "
              "exist before the persistent kernel launches";
        Res.Error = OS.str();
        return Res;
      }
      int Sm = -1;
      bool Spread = false;
      for (const ScheduledInstance &SI : Sched.Instances) {
        if (SI.Node != E.Src && SI.Node != E.Dst)
          continue;
        if (Sm < 0)
          Sm = SI.Sm;
        else if (SI.Sm != Sm)
          Spread = true;
      }
      if (Spread) {
        OS << "spans multiple SMs; shared-memory queues are block-local";
        Res.Error = OS.str();
        return Res;
      }
      int64_t MinSrcF = std::numeric_limits<int64_t>::max();
      int64_t MaxDstF = std::numeric_limits<int64_t>::min();
      for (const ScheduledInstance &SI : Sched.Instances) {
        if (SI.Node == E.Src)
          MinSrcF = std::min(MinSrcF, SI.F);
        if (SI.Node == E.Dst)
          MaxDstF = std::max(MaxDstF, SI.F);
      }
      if (MaxDstF < MinSrcF) {
        OS << "has its consumer staged before its producer";
        Res.Error = OS.str();
        return Res;
      }
      if (Schema->QueueCapTokens[E.Id] <= 0) {
        OS << "has no ring capacity";
        Res.Error = OS.str();
        return Res;
      }
    }

  // Materialize every edge's token stream.
  std::vector<EdgeTokens> Edges(G.numEdges());
  // FIFO high-water marks for the ring-capacity check: tokens produced
  // into / freed from each edge so far.
  std::vector<int64_t> Produced(G.numEdges(), 0);
  std::vector<int64_t> Consumed(G.numEdges(), 0);
  for (const ChannelEdge &E : G.edges()) {
    int64_t Count = E.InitTokens + TotalFirings[E.Src] * E.ProdRate;
    Edges[E.Id].resizeFor(Count, E.Ty);
    Produced[E.Id] = E.InitTokens;
    for (int64_t I = 0; I < E.InitTokens; ++I) {
      Edges[E.Id].Tags[I].Written = true;
      Edges[E.Id].Tags[I].Iter = -1;
    }
  }

  int Exit = G.exitNode();
  int64_t OutCount =
      Exit >= 0 ? TotalFirings[Exit] * G.node(Exit).TheFilter->pushRate()
                : 0;
  Res.Output.assign(OutCount, Scalar::makeFloat(0.0));
  std::vector<bool> OutWritten(OutCount, false);

  std::string Error;

  // Fires base firing `B` of node `V` in reader/writer context `Ctx`.
  auto FireBase = [&](int V, int64_t B, const ReadCtx &Ctx) -> bool {
    ++Firings;
    const GraphNode &Node = G.node(V);

    // Gather inputs into per-port scratch FIFOs, checking visibility.
    std::vector<ChannelBuffer> InBufs;
    std::vector<ChannelBuffer> OutBufs;

    auto GatherIn = [&](const ChannelEdge &E, int64_t Want) -> bool {
      InBufs.emplace_back(E.Ty);
      int64_t Base = B * E.ConsRate;
      for (int64_t I = 0; I < Want; ++I) {
        int64_t Idx = Base + I;
        if (Idx >= static_cast<int64_t>(Edges[E.Id].Tokens.size())) {
          // Peek slack beyond the materialized range can only occur on
          // the very last firings; pad with zeros (never consumed).
          InBufs.back().push(E.Ty == TokenType::Int
                                 ? Scalar::makeInt(0)
                                 : Scalar::makeFloat(0.0));
          continue;
        }
        if (!isVisible(Edges[E.Id].Tags[Idx], Ctx)) {
          std::ostringstream OS;
          OS << "node '" << Node.Name << "' firing " << B
             << " reads token " << Idx << " of edge " << E.Id
             << " before it is reliably visible (invocation " << Ctx.Iter
             << ", SM " << Ctx.Sm << ")";
          Error = OS.str();
          return false;
        }
        InBufs.back().push(Edges[E.Id].Tokens[Idx]);
      }
      // Firing B frees the popped portion of the window (peek re-reads
      // keep earlier tokens resident, but queue edges have no slack).
      Consumed[E.Id] = std::max(Consumed[E.Id], (B + 1) * E.ConsRate);
      return true;
    };

    if (Node.isFilter()) {
      const Filter &F = *Node.TheFilter;
      ChannelBuffer EntryBuf(F.inputType());
      ChannelBuffer *In = nullptr;
      if (F.popRate() > 0) {
        if (V == G.entryNode()) {
          int64_t Base = B * F.popRate();
          for (int64_t I = 0; I < F.peekRate(); ++I) {
            int64_t Idx = Base + I;
            EntryBuf.push(Idx < static_cast<int64_t>(Input.size())
                              ? Input[Idx]
                              : (F.inputType() == TokenType::Int
                                     ? Scalar::makeInt(0)
                                     : Scalar::makeFloat(0.0)));
          }
          In = &EntryBuf;
        } else {
          const ChannelEdge &E = G.edge(Node.InEdges[0]);
          if (!GatherIn(E, F.peekRate() + (E.ConsRate - F.popRate())))
            return false;
          In = &InBufs.back();
        }
      }
      ChannelBuffer OutBuf(F.outputType());
      fireFilter(F, In, F.pushRate() > 0 ? &OutBuf : nullptr);
      // Scatter outputs.
      if (F.pushRate() > 0) {
        if (V == G.exitNode()) {
          int64_t Base = B * F.pushRate();
          for (int64_t M = 0; !OutBuf.empty(); ++M) {
            if (Base + M >= OutCount) {
              std::ostringstream OS;
              OS << "node '" << Node.Name << "' firing " << B
                 << " writes program-output token " << (Base + M)
                 << " past the " << OutCount << "-token output capacity";
              Error = OS.str();
              return false;
            }
            Res.Output[Base + M] = OutBuf.pop();
            OutWritten[Base + M] = true;
          }
        } else {
          const ChannelEdge &E = G.edge(Node.OutEdges[0]);
          int64_t Base = E.InitTokens + B * E.ProdRate;
          for (int64_t M = 0; !OutBuf.empty(); ++M) {
            if (Base + M >=
                static_cast<int64_t>(Edges[E.Id].Tokens.size())) {
              std::ostringstream OS;
              OS << "node '" << Node.Name << "' firing " << B
                 << " writes token " << (Base + M) << " past the "
                 << Edges[E.Id].Tokens.size() << "-token capacity of edge "
                 << E.Id << " (schema '" << EdgeSchemaStr(E.Id) << "')";
              Error = OS.str();
              return false;
            }
            Edges[E.Id].Tokens[Base + M] = OutBuf.pop();
            WriteTag &Tag = Edges[E.Id].Tags[Base + M];
            Tag.Written = true;
            Tag.Iter = Ctx.Iter;
            Tag.Sm = Ctx.Sm;
            Tag.Seq = Ctx.Seq;
            Produced[E.Id] = std::max(Produced[E.Id], Base + M + 1);
          }
        }
      }
      return true;
    }

    // Splitter / joiner.
    std::vector<ChannelBuffer *> Ins, Outs;
    for (int EId : Node.InEdges) {
      const ChannelEdge &E = G.edge(EId);
      if (!GatherIn(E, E.ConsRate))
        return false;
    }
    for (ChannelBuffer &CB : InBufs)
      Ins.push_back(&CB);
    OutBufs.reserve(Node.OutEdges.size());
    for (int EId : Node.OutEdges)
      OutBufs.emplace_back(G.edge(EId).Ty);
    for (ChannelBuffer &CB : OutBufs)
      Outs.push_back(&CB);
    fireSplitterJoiner(Node, Ins, Outs);
    for (size_t P = 0; P < Node.OutEdges.size(); ++P) {
      const ChannelEdge &E = G.edge(Node.OutEdges[P]);
      int64_t Base = E.InitTokens + B * E.ProdRate;
      for (int64_t M = 0; !OutBufs[P].empty(); ++M) {
        if (Base + M >= static_cast<int64_t>(Edges[E.Id].Tokens.size())) {
          std::ostringstream OS;
          OS << "node '" << Node.Name << "' firing " << B
             << " writes token " << (Base + M) << " past the "
             << Edges[E.Id].Tokens.size() << "-token capacity of edge "
             << E.Id << " (schema '" << EdgeSchemaStr(E.Id) << "')";
          Error = OS.str();
          return false;
        }
        Edges[E.Id].Tokens[Base + M] = OutBufs[P].pop();
        WriteTag &Tag = Edges[E.Id].Tags[Base + M];
        Tag.Written = true;
        Tag.Iter = Ctx.Iter;
        Tag.Sm = Ctx.Sm;
        Tag.Seq = Ctx.Seq;
        Produced[E.Id] = std::max(Produced[E.Id], Base + M + 1);
      }
    }
    return true;
  };

  // --- Init phase: sequential, always-visible writes.
  std::optional<std::vector<int>> Order = G.topologicalOrder();
  if (!Order) {
    Res.Error = "graph has a token-free cycle";
    return Res;
  }
  // The init phase is sequential: every firing sees all earlier init
  // writes, so the sequence number advances per firing.
  int64_t InitSeq = 0;
  for (int V : *Order)
    for (int64_t B = 0; B < SS.initFirings()[V]; ++B) {
      ReadCtx InitCtx{-1, -1, ++InitSeq};
      if (!FireBase(V, B, InitCtx)) {
        Res.Error = Error;
        return Res;
      }
    }

  // --- Pipelined invocations. Instance with stage F performs the work of
  // logical iteration (t - F) during invocation t.
  int64_t Span = Sched.stageSpan();
  for (int64_t T = 0; T < Iterations + Span; ++T) {
    for (int P = 0; P < Sched.Pmax; ++P) {
      int64_t Seq = 0;
      for (const ScheduledInstance *SI : Sched.smOrder(P)) {
        int64_t J = T - SI->F;
        if (J < 0 || J >= Iterations) {
          ++Seq;
          continue;
        }
        int V = SI->Node;
        int64_t Threads = Config.Threads[V];
        int64_t FirstBase =
            SS.initFirings()[V] +
            (J * GSS.Instances[V] + SI->K) * Threads;
        ReadCtx Ctx{T, P, Seq};
        for (int64_t Th = 0; Th < Threads; ++Th)
          if (!FireBase(V, FirstBase + Th, Ctx)) {
            Res.Error = Error;
            return Res;
          }
        ++Seq;
      }
    }

    // Ring-capacity check at the invocation boundary: the sequential
    // replay overshoots transiently inside an invocation (real warps
    // back-pressure each other through the tickets), but at the barrier
    // every ring's resident tokens must fit its declared capacity.
    if (Schema)
      for (const ChannelEdge &E : G.edges()) {
        if (!Schema->isQueue(E.Id))
          continue;
        int64_t InFlight = Produced[E.Id] - Consumed[E.Id];
        if (InFlight > Schema->QueueCapTokens[E.Id]) {
          std::ostringstream OS;
          OS << "shared queue on edge " << E.Id << " (schema '"
             << EdgeSchemaStr(E.Id) << "') holds " << InFlight
             << " tokens at the end of invocation " << T
             << ", exceeding its " << Schema->QueueCapTokens[E.Id]
             << "-token ring capacity";
          Res.Error = OS.str();
          return Res;
        }
      }
  }

  for (int64_t I = 0; I < OutCount; ++I)
    if (!OutWritten[I]) {
      Res.Error = "output token " + std::to_string(I) + " never produced";
      return Res;
    }
  metricCounter("gpusim.firings").add(Firings);
  Res.Ok = true;
  return Res;
}

std::optional<std::string> sgpu::checkScheduleAgainstReference(
    const StreamGraph &G, const SteadyState &SS,
    const ExecutionConfig &Config, const GpuSteadyState &GSS,
    const SwpSchedule &Sched, const std::vector<Scalar> &Input,
    int64_t Iterations, const SchemaAssignment *Schema) {
  SwpFunctionalSim Sim(G, SS, Config, GSS, Sched, Schema);
  FunctionalRunResult R = Sim.run(Input, Iterations);
  if (!R.Ok)
    return "functional run failed: " + R.Error;

  // Sequential reference over the same base firings.
  GraphInterpreter Ref(G);
  Ref.feedInput(Input);
  std::optional<std::vector<int>> Order = G.topologicalOrder();
  if (!Order)
    return "graph has a token-free cycle";
  for (int V : *Order)
    if (Ref.fireNode(V, SS.initFirings()[V]) != SS.initFirings()[V])
      return "reference init phase deadlocked";
  int64_t BaseIters = Iterations * GSS.Multiplier;
  if (!Ref.runSteadyState(SS.repetitions(), BaseIters))
    return "reference steady state deadlocked";

  if (Ref.output().size() != R.Output.size())
    return "output size mismatch: reference " +
           std::to_string(Ref.output().size()) + " vs SWP " +
           std::to_string(R.Output.size());
  for (size_t I = 0; I < R.Output.size(); ++I)
    if (!(Ref.output()[I] == R.Output[I]))
      return "output token " + std::to_string(I) +
             " differs: reference " + Ref.output()[I].str() + " vs SWP " +
             R.Output[I].str();
  return std::nullopt;
}
