//===- gpusim/FunctionalSim.h - Functional SWP execution --------*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a software-pipelined schedule the way the GPU would and
/// checks that it computes the right answer. Kernel invocations proceed
/// iteration by iteration; within an invocation the SMs run concurrently,
/// so a token written by another SM in the same invocation is NOT visible
/// (the paper's Section III-C reliability rule) — reading one is a
/// schedule bug this simulator reports. Tokens written earlier by the
/// same SM in the same invocation are visible (o-order serial execution
/// within an SM). The init phase for peeking filters runs sequentially
/// up front, mirroring StreamIt's initialization schedule.
///
/// Data semantics come from the same AST interpreter as the CPU
/// baseline, so outputs can be compared exactly.
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_GPUSIM_FUNCTIONALSIM_H
#define SGPU_GPUSIM_FUNCTIONALSIM_H

#include "core/ExecutionModel.h"
#include "ir/Interpreter.h"

#include <optional>
#include <string>
#include <vector>

namespace sgpu {

struct SchemaAssignment;

/// Result of a functional run.
struct FunctionalRunResult {
  bool Ok = false;
  std::string Error;           ///< Set when a visibility/firing rule broke.
  std::vector<Scalar> Output;  ///< Program output tokens, FIFO order.
};

/// Runs \p Iterations GPU steady-state iterations of \p Sched over
/// \p Input. The input must cover the init phase plus all iterations
/// (see SwpFunctionalSim::inputTokensNeeded).
///
/// A non-null \p Schema additionally validates the warp-specialized
/// queue semantics: every queue-assigned edge must satisfy the
/// structural eligibility rules (codegen/schema/SchemaSelect.h), and at
/// every invocation boundary the tokens resident in each ring must fit
/// its declared capacity — violations are reported with the offending
/// edge and its schema, never asserted.
class SwpFunctionalSim {
public:
  SwpFunctionalSim(const StreamGraph &G, const SteadyState &SS,
                   const ExecutionConfig &Config, const GpuSteadyState &GSS,
                   const SwpSchedule &Sched,
                   const SchemaAssignment *Schema = nullptr);

  /// Program input tokens needed for \p Iterations GPU iterations.
  int64_t inputTokensNeeded(int64_t Iterations) const;

  /// Executes the init phase plus \p Iterations pipelined iterations.
  /// Note: the software pipeline drains naturally — every instance runs
  /// in every invocation with its own stage offset, so iteration j of
  /// stage-f instances consumes data of base iteration j - f; the final
  /// `stageSpan` iterations of output are produced by running extra
  /// invocations, which this method performs so that exactly
  /// `Iterations` iterations' worth of output is returned.
  FunctionalRunResult run(const std::vector<Scalar> &Input,
                          int64_t Iterations);

private:
  struct EdgeState;

  const StreamGraph &G;
  const SteadyState &SS;
  const ExecutionConfig &Config;
  const GpuSteadyState &GSS;
  const SwpSchedule &Sched;
  const SchemaAssignment *Schema = nullptr;
};

/// Convenience: compare a functional SWP run against the sequential
/// GraphInterpreter reference on the same input. Returns std::nullopt on
/// success or a mismatch description. A non-null \p Schema enables the
/// queue-semantics validation described on SwpFunctionalSim.
std::optional<std::string>
checkScheduleAgainstReference(const StreamGraph &G, const SteadyState &SS,
                              const ExecutionConfig &Config,
                              const GpuSteadyState &GSS,
                              const SwpSchedule &Sched,
                              const std::vector<Scalar> &Input,
                              int64_t Iterations,
                              const SchemaAssignment *Schema = nullptr);

} // namespace sgpu

#endif // SGPU_GPUSIM_FUNCTIONALSIM_H
