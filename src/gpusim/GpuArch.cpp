//===- gpusim/GpuArch.cpp - Simulated GPU architecture ----------------------===//

#include "gpusim/GpuArch.h"

// GpuArch is an aggregate of parameters; this file anchors the TU.
