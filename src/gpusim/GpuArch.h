//===- gpusim/GpuArch.h - Simulated GPU architecture ------------*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parameters of the simulated GPU. The defaults model the GeForce 8800
/// GTS 512 the paper evaluates on (Section II-A): 16 SMs of 8 scalar
/// units, 8192 registers and 16 KB shared memory per SM, up to 768
/// resident threads and 8 blocks per SM, 32-thread warps, 512-thread
/// blocks, a 400-600 cycle device memory and 1-cycle shared memory.
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_GPUSIM_GPUARCH_H
#define SGPU_GPUSIM_GPUARCH_H

#include <cstdint>

namespace sgpu {

/// Machine description of the simulated device.
struct GpuArch {
  int NumSMs = 16;
  int ScalarUnitsPerSM = 8;
  int WarpSize = 32;
  int MaxThreadsPerSM = 768;
  int MaxThreadsPerBlock = 512;
  int MaxBlocksPerSM = 8;
  int RegistersPerSM = 8192;
  int64_t SharedMemPerSM = 16384;

  /// Device memory (8800 GTS 512: 512 MiB GDDR3). Channel buffers are
  /// DRAM-resident, so one SM's share of this bounds the working set a
  /// hybrid machine lets the coarsening variable grow to.
  int64_t DramBytes = 512ll << 20;

  /// Shader clock, used only to convert cycle ratios into CPU-relative
  /// speedups (8800 GTS 512 shader domain: 1.625 GHz).
  double CoreClockGHz = 1.625;

  /// Round-trip device-memory latency in shader cycles (paper: 400-600).
  int MemLatencyCycles = 500;

  /// Chip-wide memory service cycles per 64-byte transaction; derived
  /// from the 256-bit GDDR3 bus (~62 GB/s, ~1.6e9 cycles/s).
  double ChipCyclesPerTxn = 1.7;

  /// Issue cycles per warp instruction (32 lanes over 8 scalar units).
  double CyclesPerWarpInstr = 4.0;

  /// Extra issue-cycle factor for SFU (transcendental) warp instructions.
  double SfuCyclesPerWarpInstr = 16.0;

  /// Per-thread memory-level parallelism assumed when computing the
  /// exposed-latency term (outstanding loads of one warp).
  double MemoryLevelParallelism = 4.0;

  /// Fixed cost of dispatching a kernel (driver + launch), in shader
  /// cycles (~5 us at 1.6 GHz). Amortized by the paper's coarsening.
  int64_t KernelLaunchCycles = 9000;

  /// Returns the paper's evaluation device.
  static GpuArch geForce8800GTS512() { return GpuArch(); }
};

} // namespace sgpu

#endif // SGPU_GPUSIM_GPUARCH_H
