//===- gpusim/KernelTiming.cpp - Analytic kernel timing ---------------------===//

#include "gpusim/KernelTiming.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace sgpu;

double sgpu::instanceTransactions(const InstanceCost &Cost) {
  double ChannelTxns = static_cast<double>(Cost.Threads) *
                       static_cast<double>(Cost.GlobalAccesses) *
                       Cost.TxnsPerAccess;
  // Spill/local traffic is thread-private and laid out contiguously per
  // lane by the compiler, so it coalesces.
  double SpillTxns = static_cast<double>(Cost.Threads) *
                     static_cast<double>(Cost.SpillAccesses) / 16.0;
  return ChannelTxns + SpillTxns + Cost.PeekSerialTxns;
}

double sgpu::instanceIssueCycles(const GpuArch &Arch,
                                 const InstanceCost &Cost) {
  assert(Cost.Threads > 0 && "instance with no threads");
  double Warps = std::ceil(static_cast<double>(Cost.Threads) /
                           static_cast<double>(Arch.WarpSize));

  // One warp's issue time: ALU + SFU + shared (with conflict replays) +
  // the issue slots of its memory instructions.
  double MemInstr = static_cast<double>(Cost.GlobalAccesses) +
                    static_cast<double>(Cost.SpillAccesses);
  double CWarp =
      Arch.CyclesPerWarpInstr *
          (static_cast<double>(Cost.ComputeOps) + MemInstr +
           static_cast<double>(Cost.SharedAccesses) *
               Cost.SharedConflictDegree) +
      Arch.SfuCyclesPerWarpInstr * static_cast<double>(Cost.SfuOps);

  // One warp's exposed memory latency, overlapped by in-thread MLP.
  double SWarp = MemInstr * static_cast<double>(Arch.MemLatencyCycles) /
                 Arch.MemoryLevelParallelism;

  double Throughput = Warps * CWarp;
  double Chain = CWarp + SWarp;
  return std::max(Throughput, Chain);
}

double sgpu::instanceCycles(const GpuArch &Arch, const InstanceCost &Cost) {
  // Per-SM memory bandwidth share when all SMs stream concurrently.
  double SmCyclesPerTxn = Arch.ChipCyclesPerTxn * Arch.NumSMs;
  double MemTime = instanceTransactions(Cost) * SmCyclesPerTxn;
  return std::max(instanceIssueCycles(Arch, Cost), MemTime);
}

double sgpu::kernelCycles(const GpuArch &Arch, const KernelWork &Work) {
  // SMs run concurrently: elapsed = slowest SM; but all SMs share the
  // memory bus, so the chip-wide transaction stream bounds it from below.
  double Bandwidth = Work.TotalTxns * Arch.ChipCyclesPerTxn;
  return std::max(Work.MaxSmCycles, Bandwidth) +
         static_cast<double>(Arch.KernelLaunchCycles);
}
