//===- gpusim/KernelTiming.h - Analytic kernel timing -----------*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analytic timing model that stands in for executing CUDA kernels on
/// a GeForce 8800. One filter instance (all its threads firing once, or
/// `Coarsening` times under the paper's SWPn scheme) is timed as
///
///   T = max( W * C_warp,                 -- SM issue throughput
///            C_warp + S_warp,            -- a single warp's critical path
///            Txns * SmCyclesPerTxn )     -- memory bandwidth share
///
/// where C_warp is the warp's issue time, S_warp its exposed memory
/// latency (divided by the assumed memory-level parallelism) and W the
/// resident warp count. This reproduces the mechanisms the paper's
/// results hinge on: SMT latency hiding that saturates (why more threads
/// stop helping), bandwidth collapse on uncoalesced access (SWPNC), and
/// launch overhead amortized by coarsening (SWP1 vs SWP8).
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_GPUSIM_KERNELTIMING_H
#define SGPU_GPUSIM_KERNELTIMING_H

#include "gpusim/GpuArch.h"

#include <cstdint>

namespace sgpu {

/// Per-thread, per-firing cost of one filter instance execution.
struct InstanceCost {
  int64_t Threads = 0;        ///< Active threads of this instance.
  int64_t ComputeOps = 0;     ///< Int+float ALU ops per thread-firing.
  int64_t SfuOps = 0;         ///< Transcendental ops per thread-firing.
  int64_t GlobalAccesses = 0; ///< Device-memory element accesses.
  /// Transactions per element access after coalescing analysis:
  /// 1/16 when perfectly coalesced, 1.0 when fully serialized.
  double TxnsPerAccess = 1.0 / 16.0;
  int64_t SharedAccesses = 0; ///< Shared-memory element accesses.
  double SharedConflictDegree = 1.0;
  /// Extra per-thread global traffic due to register spills or local
  /// arrays (already includes both directions).
  int64_t SpillAccesses = 0;
  /// Peek-serialization surcharge, in transactions for the WHOLE
  /// instance (not per thread): the excess of the Coalescer's exact
  /// transaction count for a sliding-window read stream (peek > pop,
  /// where each thread's window slides into its neighbour's region and
  /// the half-warp accesses stop lining up) over the TxnsPerAccess-priced
  /// baseline. Zero for non-peeking filters. Computed by
  /// core/ExecutionModel from the real buffer addresses.
  double PeekSerialTxns = 0.0;
};

/// Cycles for one execution of an instance on one SM with no co-resident
/// work (the SWP kernel runs its instances back to back on each SM).
/// Includes the bandwidth-share term — the right notion of time for a
/// Fig. 6 profile run, where one instance owns an SM and 1/NumSMs of the
/// bus while every SM streams.
double instanceCycles(const GpuArch &Arch, const InstanceCost &Cost);

/// Issue-side cycles of one execution: max(W * C_warp, C_warp + S_warp)
/// WITHOUT the memory-bandwidth term. This is the term to sum serially
/// per SM inside a kernel invocation — bandwidth is charged once,
/// chip-wide, by kernelCycles; charging each instance its per-SM
/// bandwidth share inside the serial sum double-counts it (the FFT
/// 0.61x underprediction, see EXPERIMENTS.md).
double instanceIssueCycles(const GpuArch &Arch, const InstanceCost &Cost);

/// Device-memory transactions issued by one execution of the instance
/// (for the chip-wide bandwidth bound across concurrent SMs).
double instanceTransactions(const InstanceCost &Cost);

/// Combines per-SM serial workloads into one kernel invocation's cycles:
/// the slowest SM, bounded below by the chip bandwidth needed by all SMs
/// together, plus the launch overhead.
struct KernelWork {
  double MaxSmCycles = 0.0; ///< max over SMs of the serial instance sum.
  double TotalTxns = 0.0;   ///< all transactions of the invocation.
};

double kernelCycles(const GpuArch &Arch, const KernelWork &Work);

} // namespace sgpu

#endif // SGPU_GPUSIM_KERNELTIMING_H
