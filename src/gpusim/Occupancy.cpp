//===- gpusim/Occupancy.cpp - SM occupancy calculator -----------------------===//

#include "gpusim/Occupancy.h"

#include <algorithm>
#include <cassert>

using namespace sgpu;

Occupancy sgpu::computeOccupancy(const GpuArch &Arch, int ThreadsPerBlock,
                                 int RegsPerThread,
                                 int64_t SharedBytesPerBlock) {
  Occupancy O;
  // Degenerate launches (no threads, no registers, negative shared
  // memory) are infeasible, not programmer errors: profiling sweeps
  // probe arbitrary configurations and expect a graceful answer.
  if (ThreadsPerBlock <= 0 || RegsPerThread <= 0 || SharedBytesPerBlock < 0)
    return O;
  if (ThreadsPerBlock > Arch.MaxThreadsPerBlock)
    return O;
  // Register file: one block must fit, or the launch fails outright.
  int64_t RegsPerBlock =
      static_cast<int64_t>(RegsPerThread) * ThreadsPerBlock;
  if (RegsPerBlock > Arch.RegistersPerSM)
    return O;
  if (SharedBytesPerBlock > Arch.SharedMemPerSM)
    return O;

  int ByThreads = Arch.MaxThreadsPerSM / ThreadsPerBlock;
  int ByRegs = static_cast<int>(Arch.RegistersPerSM / RegsPerBlock);
  int ByShared =
      SharedBytesPerBlock > 0
          ? static_cast<int>(Arch.SharedMemPerSM / SharedBytesPerBlock)
          : Arch.MaxBlocksPerSM;
  int Blocks = std::min({Arch.MaxBlocksPerSM, ByThreads, ByRegs, ByShared});
  if (Blocks < 1)
    return O;

  O.Feasible = true;
  O.BlocksPerSM = Blocks;
  O.ThreadsPerSM = Blocks * ThreadsPerBlock;
  O.WarpsPerSM = (O.ThreadsPerSM + Arch.WarpSize - 1) / Arch.WarpSize;
  return O;
}
