//===- gpusim/Occupancy.h - SM occupancy calculator -------------*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Computes how many blocks/warps of a kernel fit on one SM given its
/// register, shared-memory and thread limits, and whether an execution
/// configuration is feasible at all — the feasibility notion of the
/// paper's profiling sweep (Fig. 6): "if the number of registers required
/// per thread is greater than the available number of registers, then the
/// kernel execution fails and the configuration is not feasible."
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_GPUSIM_OCCUPANCY_H
#define SGPU_GPUSIM_OCCUPANCY_H

#include "gpusim/GpuArch.h"

namespace sgpu {

/// Residency of one kernel on one SM.
struct Occupancy {
  bool Feasible = false;
  int BlocksPerSM = 0;
  int ThreadsPerSM = 0;
  int WarpsPerSM = 0;
};

/// Computes the occupancy of a kernel with \p ThreadsPerBlock threads,
/// \p RegsPerThread registers and \p SharedBytesPerBlock bytes of shared
/// memory per block on \p Arch.
Occupancy computeOccupancy(const GpuArch &Arch, int ThreadsPerBlock,
                           int RegsPerThread, int64_t SharedBytesPerBlock);

} // namespace sgpu

#endif // SGPU_GPUSIM_OCCUPANCY_H
