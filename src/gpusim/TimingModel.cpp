//===- gpusim/TimingModel.cpp - Kernel timing model interface ----------------===//

#include "gpusim/TimingModel.h"

#include "gpusim/cyclesim/CycleSim.h"
#include "support/Check.h"

#include <algorithm>

using namespace sgpu;

namespace {

/// The closed-form model of KernelTiming.{h,cpp} behind the interface.
/// The per-SM stream cost is the serial sum of issue-side instance
/// cycles (instanceIssueCycles — bandwidth deliberately excluded, since
/// kernelCycles charges the chip-wide transaction stream exactly once);
/// the chip is bounded by max(slowest SM, bandwidth) plus one launch.
class AnalyticTimingModel final : public TimingModel {
public:
  explicit AnalyticTimingModel(const GpuArch &A) : TimingModel(A) {}

  const char *name() const override { return "analytic"; }
  TimingModelKind kind() const override { return TimingModelKind::Analytic; }

  double instanceCycles(const SimInstance &Inst) const override {
    return sgpu::instanceCycles(Arch, Inst.Cost);
  }

  double instanceTransactions(const SimInstance &Inst) const override {
    return sgpu::instanceTransactions(Inst.Cost);
  }

  double profileRunCycles(const SimInstance &Inst,
                          int64_t Iterations) const override {
    return static_cast<double>(Arch.KernelLaunchCycles) +
           static_cast<double>(Iterations) * instanceCycles(Inst);
  }

  KernelSimResult simulateKernel(const KernelDesc &Desc) const override {
    KernelSimResult R;
    R.PerSm.resize(Desc.SmStreams.size());
    KernelWork Work;
    for (size_t P = 0; P < Desc.SmStreams.size(); ++P) {
      double SmCycles = 0.0, SmTxns = 0.0;
      for (const SmWorkItem &Item : Desc.SmStreams[P]) {
        const SimInstance &Inst = Desc.Instances[Item.Instance];
        double Iter = static_cast<double>(Item.Iterations);
        // Issue-side cycles only: summing the full instanceCycles here
        // would charge each instance its per-SM bandwidth share AND the
        // chip-wide bandwidth bound below — a double count that showed
        // up as the FFT 0.61x underprediction of the overall ratio.
        SmCycles += sgpu::instanceIssueCycles(Arch, Inst.Cost) * Iter;
        SmTxns += instanceTransactions(Inst) * Iter;
      }
      R.PerSm[P].TotalCycles = SmCycles;
      R.PerSm[P].Transactions = static_cast<int64_t>(SmTxns);
      Work.MaxSmCycles = std::max(Work.MaxSmCycles, SmCycles);
      Work.TotalTxns += SmTxns;
    }
    R.TotalCycles = kernelCycles(Arch, Work);
    R.Transactions = Work.TotalTxns;
    R.FillCycles = static_cast<double>(Desc.StageSpan) * R.TotalCycles;
    applyHostStreams(Desc, R);
    return R;
  }
};

} // namespace

void sgpu::applyHostStreams(const KernelDesc &Desc, KernelSimResult &R) {
  if (Desc.HostStreams.empty())
    return;
  double HostMax = 0.0;
  for (const std::vector<SmWorkItem> &Stream : Desc.HostStreams) {
    double Cycles = 0.0;
    for (const SmWorkItem &Item : Stream)
      Cycles += Desc.Instances[Item.Instance].HostCycles *
                static_cast<double>(Item.Iterations);
    HostMax = std::max(HostMax, Cycles);
  }
  if (HostMax > R.TotalCycles)
    R.TotalCycles = HostMax;
  R.FillCycles = static_cast<double>(Desc.StageSpan) * R.TotalCycles;
}

std::unique_ptr<TimingModel>
sgpu::createTimingModel(TimingModelKind Kind, const GpuArch &Arch,
                        WarpSchedPolicy WarpSched) {
  switch (Kind) {
  case TimingModelKind::Analytic:
    return std::make_unique<AnalyticTimingModel>(Arch);
  case TimingModelKind::Cycle:
    return std::make_unique<CycleTimingModel>(Arch, WarpSched);
  }
  SGPU_UNREACHABLE("unknown timing model kind");
}

const char *sgpu::timingModelKindName(TimingModelKind Kind) {
  switch (Kind) {
  case TimingModelKind::Analytic:
    return "analytic";
  case TimingModelKind::Cycle:
    return "cycle";
  }
  SGPU_UNREACHABLE("unknown timing model kind");
}

std::optional<TimingModelKind>
sgpu::parseTimingModelKind(std::string_view Name) {
  if (Name == "analytic")
    return TimingModelKind::Analytic;
  if (Name == "cycle")
    return TimingModelKind::Cycle;
  return std::nullopt;
}
