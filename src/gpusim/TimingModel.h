//===- gpusim/TimingModel.h - Kernel timing model interface -----*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The timing-model seam of the simulator: everything that turns filter
/// instances into GPU cycles goes through the `TimingModel` interface, so
/// the profiling sweep (Fig. 6), the configuration selection (Alg. 7) and
/// the kernel-invocation timing of `core/Compiler` can run against either
///
///   analytic  the three-term closed-form model of KernelTiming.{h,cpp}
///             (fast, the historical default), or
///   cycle     the event-driven warp-level simulator of gpusim/cyclesim/
///             (cycle-approximate, derives memory transactions from the
///             actual Eq. 9-11 buffer addresses).
///
/// A `SimInstance` carries what both models need about one GPU instance:
/// the aggregate op counts of the analytic model (`InstanceCost`) plus
/// the per-thread memory streams the cycle simulator replays against the
/// real buffer layouts. A `KernelDesc` assembles instances into the
/// per-SM serial streams of one kernel invocation.
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_GPUSIM_TIMINGMODEL_H
#define SGPU_GPUSIM_TIMINGMODEL_H

#include "gpusim/KernelTiming.h"
#include "gpusim/cyclesim/WarpScheduler.h"
#include "layout/BufferLayout.h"

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

namespace sgpu {

/// Which implementation a `createTimingModel` call returns.
enum class TimingModelKind : uint8_t { Analytic, Cycle };

/// One ordered channel-access stream of an instance: every thread
/// performs `Count` accesses per firing, thread Tid's n-th access
/// touching buffer position layoutPosition(Layout, naturalIndex(Tid,
/// n % Window, KeyRate), KeyRate). The window is the span of distinct
/// tokens a thread actually addresses per firing: re-reads of a popped
/// token wrap around (they hit the same buffer position, exactly as the
/// generated code re-loads it), while a peeking filter's window exceeds
/// `KeyRate` and slides into the neighbour thread's region.
struct MemStream {
  int64_t Count = 0;   ///< Accesses per thread per firing.
  int64_t KeyRate = 1; ///< Rate the buffer layout is keyed with.
  /// Distinct tokens per thread per firing (max(peek, pop) for reads,
  /// push for writes); 0 defaults to Count.
  int64_t Window = 0;
  LayoutKind Layout = LayoutKind::Shuffled;
  /// Staged through shared memory (the SWPNC escape hatch): the global
  /// side coalesces; the bank-conflict replays are already in
  /// InstanceCost::SharedAccesses.
  bool ViaShared = false;
  /// Routed through a shared-memory ring queue by the warp-specialized
  /// schema: zero device-memory transactions, and the issue cost already
  /// sits in InstanceCost::SharedAccesses/ComputeOps — the cycle
  /// simulator must not also replay it as load/store ops.
  bool ViaQueue = false;
  bool IsWrite = false;
};

/// Everything a timing model needs about one GPU instance (one node
/// firing `Cost.Threads` base firings).
struct SimInstance {
  InstanceCost Cost;              ///< Aggregate per-thread op counts.
  std::vector<MemStream> Streams; ///< Channel traffic, reads then writes.
  int Node = -1;                  ///< Graph node id, for attribution.
  /// Hybrid machines only: GPU-clock cycles of one execution of this
  /// instance on a CPU core (serial base firings at the CpuModel rates).
  /// Host-resident instances never touch the coalescer or the DRAM bus.
  double HostCycles = 0.0;
};

/// One entry of an SM's serial instance stream.
struct SmWorkItem {
  int Instance = 0;       ///< Index into KernelDesc::Instances.
  int64_t Iterations = 1; ///< Back-to-back repeats (SWPn coarsening).
};

/// One kernel invocation: per-SM serial streams over a shared DRAM bus.
struct KernelDesc {
  std::vector<SimInstance> Instances;
  std::vector<std::vector<SmWorkItem>> SmStreams;
  /// Hybrid machines only: per-CPU-core serial streams running
  /// concurrently with the device. Host work is timed from
  /// SimInstance::HostCycles, shares no DRAM-bus bandwidth with the SMs,
  /// and stretches the invocation only when it outlasts the device side.
  std::vector<std::vector<SmWorkItem>> HostStreams;
  /// SWP stage span of the schedule; the pipeline needs this many extra
  /// invocations to fill (prologue) and drain (epilogue), surfaced as
  /// KernelSimResult::FillCycles.
  int64_t StageSpan = 0;
};

/// Per-SM cycle breakdown of one simulated invocation. The per-stage
/// fields are populated by the staged pipeline of gpusim/cyclesim
/// (SmPipeline.{h,cpp}); the analytic model leaves them zero.
struct SmBreakdown {
  double BusyCycles = 0.0;  ///< Execute-port occupancy.
  double StallCycles = 0.0; ///< Port idle with work pending (mem stalls).
  double TotalCycles = 0.0; ///< Start of the stream to last drain.
  /// Fetch-stage latch occupancy: fetch of an op until the operand stage
  /// accepted it (>= one latch per op).
  double FetchBusyCycles = 0.0;
  /// Fetch latch held past its depth because the operand stage was busy —
  /// back-pressure from downstream structural hazards.
  double FetchStallCycles = 0.0;
  /// Operand/scoreboard stage holds: cycles an otherwise fetch-ready op
  /// waited for outstanding loads (scoreboard full or RAW on a load).
  double OperandStallCycles = 0.0;
  /// Writeback/memory latch holds: an executed memory op waiting for the
  /// memory stage to accept it (DRAM bus saturated).
  double MemStallCycles = 0.0;
  int64_t WarpInstrs = 0;   ///< Warp instructions issued.
  int64_t Transactions = 0; ///< Device-memory transactions.
};

/// Chip-level outcome of one simulated kernel invocation.
struct KernelSimResult {
  double TotalCycles = 0.0; ///< One invocation, launch overhead included.
  double FillCycles = 0.0;  ///< SWP prologue/epilogue drain (per II).
  double Transactions = 0.0;
  std::vector<SmBreakdown> PerSm;
};

/// The timing-model interface. Implementations are pure functions of
/// their inputs (bit-deterministic run to run and across worker counts);
/// the profiling sweep calls them concurrently from many threads.
class TimingModel {
public:
  virtual ~TimingModel() = default;

  virtual const char *name() const = 0;
  virtual TimingModelKind kind() const = 0;

  /// Cycles for one execution of \p Inst on one SM with no co-resident
  /// work (the SWP kernel runs its instances back to back on each SM).
  virtual double instanceCycles(const SimInstance &Inst) const = 0;

  /// Device-memory transactions of one execution of \p Inst.
  virtual double instanceTransactions(const SimInstance &Inst) const = 0;

  /// Cycles of one Fig. 6 profile run: \p Iterations back-to-back
  /// executions of \p Inst on one otherwise idle SM, plus one kernel
  /// launch.
  virtual double profileRunCycles(const SimInstance &Inst,
                                  int64_t Iterations) const = 0;

  /// Times one whole kernel invocation over \p Desc's per-SM streams.
  virtual KernelSimResult simulateKernel(const KernelDesc &Desc) const = 0;

  const GpuArch &arch() const { return Arch; }

protected:
  explicit TimingModel(const GpuArch &A) : Arch(A) {}
  GpuArch Arch;
};

/// Folds \p Desc's host-side streams (hybrid machines) into a device
/// result: the invocation lasts max(device, slowest core) and the fill
/// cost rescales accordingly. Host work adds no memory transactions.
/// A no-op when HostStreams is empty, so both timing models call it
/// unconditionally.
void applyHostStreams(const KernelDesc &Desc, KernelSimResult &R);

/// Instantiates the model of the given kind for \p Arch. \p WarpSched
/// selects the cycle model's warp-scheduler policy (`--warp-sched`); the
/// analytic model has no warps to schedule and ignores it.
std::unique_ptr<TimingModel>
createTimingModel(TimingModelKind Kind, const GpuArch &Arch,
                  WarpSchedPolicy WarpSched = WarpSchedPolicy::RoundRobin);

/// "analytic" / "cycle".
const char *timingModelKindName(TimingModelKind Kind);

/// Inverse of timingModelKindName; nullopt for unknown names.
std::optional<TimingModelKind> parseTimingModelKind(std::string_view Name);

} // namespace sgpu

#endif // SGPU_GPUSIM_TIMINGMODEL_H
