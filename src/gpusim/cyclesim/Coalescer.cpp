//===- gpusim/cyclesim/Coalescer.cpp - Warp-level coalescing -----------------===//

#include "gpusim/cyclesim/Coalescer.h"

#include "layout/AccessAnalyzer.h"

#include <algorithm>
#include <cassert>
#include <vector>

using namespace sgpu;

int64_t sgpu::warpAccessTransactions(const MemStream &S, int64_t BaseThread,
                                     int64_t Lanes, int64_t N) {
  assert(Lanes > 0 && N >= 0 && S.KeyRate > 0 && "bad access");
  // Ring-queue traffic lives entirely in shared memory: no device
  // transactions at all.
  if (S.ViaQueue)
    return 0;
  // Shared-memory staging: the global side streams through coalesced
  // half-warp transactions regardless of the logical channel pattern.
  if (S.ViaShared)
    return (Lanes + HalfWarpSize - 1) / HalfWarpSize;

  // Re-reads wrap to the same token of the thread's window; only a
  // window wider than the key rate (peeking) leaves the region.
  int64_t Window = S.Window > 0 ? S.Window : std::max<int64_t>(S.Count, 1);
  int64_t Offset = N % Window;

  int64_t Txns = 0;
  std::vector<int64_t> Addrs;
  Addrs.reserve(HalfWarpSize);
  for (int64_t HwBase = 0; HwBase < Lanes; HwBase += HalfWarpSize) {
    int64_t HwLanes = std::min<int64_t>(HalfWarpSize, Lanes - HwBase);
    Addrs.clear();
    for (int64_t L = 0; L < HwLanes; ++L) {
      int64_t Q = naturalIndex(BaseThread + HwBase + L, Offset, S.KeyRate);
      Addrs.push_back(layoutPosition(S.Layout, Q, S.KeyRate));
    }
    Txns += countHalfWarpTransactions(Addrs);
  }
  return Txns;
}

int64_t sgpu::streamTransactions(const MemStream &S, int64_t Threads) {
  assert(Threads > 0 && "stream with no threads");
  int64_t Txns = 0;
  for (int64_t Base = 0; Base < Threads; Base += HalfWarpSize) {
    int64_t Lanes = std::min<int64_t>(HalfWarpSize, Threads - Base);
    for (int64_t N = 0; N < S.Count; ++N)
      Txns += warpAccessTransactions(S, Base, Lanes, N);
  }
  return Txns;
}
