//===- gpusim/cyclesim/Coalescer.h - Warp-level coalescing ------*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cycle simulator's memory stage front end: derives the device
/// transaction count of each warp-level channel access from the *actual*
/// buffer addresses the generated code would touch — thread Tid's n-th
/// access sits at layoutPosition(Layout, naturalIndex(Tid, n, KeyRate),
/// KeyRate), the shuffled Eq. 9-11 layout or the natural sequential one —
/// and applies the G80 half-warp coalescing rule through the same
/// `countHalfWarpTransactions` the static layout analysis uses. By
/// construction the simulator and `layout/AccessAnalyzer` agree exactly
/// on whole strided patterns (asserted by tests/cyclesim_test.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_GPUSIM_CYCLESIM_COALESCER_H
#define SGPU_GPUSIM_CYCLESIM_COALESCER_H

#include "gpusim/TimingModel.h"

#include <cstdint>

namespace sgpu {

/// Device transactions of the \p N-th simultaneous access of \p S by the
/// warp whose first thread is \p BaseThread with \p Lanes active lanes
/// (both half-warps coalesce independently, per Section II-A).
int64_t warpAccessTransactions(const MemStream &S, int64_t BaseThread,
                               int64_t Lanes, int64_t N);

/// Total device transactions of \p S for one firing of a block of
/// \p Threads threads. Equals analyzeStridedAccess(...).Transactions for
/// plain strided patterns (Count == KeyRate, not staged).
int64_t streamTransactions(const MemStream &S, int64_t Threads);

} // namespace sgpu

#endif // SGPU_GPUSIM_CYCLESIM_COALESCER_H
