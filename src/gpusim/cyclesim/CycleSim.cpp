//===- gpusim/cyclesim/CycleSim.cpp - Staged-pipeline warp simulator ---------===//

#include "gpusim/cyclesim/CycleSim.h"

#include "gpusim/cyclesim/SmPipeline.h"
#include "gpusim/cyclesim/WarpProgram.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

using namespace sgpu;

namespace {

/// Single-SM run of one instance repeated \p Iterations times, with the
/// SM's bandwidth share (every SM streams during a profile run).
KernelSimResult simulateSingleSm(const GpuArch &Arch,
                                 const SimInstance &Inst,
                                 int64_t Iterations,
                                 WarpSchedPolicy Policy) {
  KernelDesc Desc;
  Desc.Instances.push_back(Inst);
  Desc.SmStreams.push_back({SmWorkItem{0, Iterations}});
  PipelineOptions Opts;
  Opts.BusCyclesPerTxn =
      Arch.ChipCyclesPerTxn * static_cast<double>(Arch.NumSMs);
  Opts.Policy = Policy;
  return runChipPipeline(Arch, Desc, Opts);
}

} // namespace

double CycleTimingModel::instanceCycles(const SimInstance &Inst) const {
  KernelSimResult R = simulateSingleSm(Arch, Inst, 1, WarpSched);
  return R.TotalCycles - static_cast<double>(Arch.KernelLaunchCycles);
}

double
CycleTimingModel::instanceTransactions(const SimInstance &Inst) const {
  // Transactions derived from the real addresses, one firing of every
  // warp (plus the coalesced spill traffic the warp programs carry).
  std::vector<WarpProgram> Progs = buildWarpPrograms(Arch, Inst);
  int64_t Txns = 0;
  for (const WarpProgram &P : Progs)
    Txns += P.transactionsPerFiring();
  return static_cast<double>(Txns);
}

double CycleTimingModel::profileRunCycles(const SimInstance &Inst,
                                          int64_t Iterations) const {
  assert(Iterations > 0 && "profile run with no iterations");
  metricCounter("cyclesim.profile_runs").add(1);
  int64_t SimIters = std::min(Iterations, MaxSimulatedProfileIterations);
  double Launch = static_cast<double>(Arch.KernelLaunchCycles);
  double Sim =
      simulateSingleSm(Arch, Inst, SimIters, WarpSched).TotalCycles - Launch;
  if (SimIters == Iterations)
    return Launch + Sim;
  // Steady marginal cost of one more back-to-back firing; the warmup
  // transient is entirely inside the simulated prefix.
  double Prev =
      simulateSingleSm(Arch, Inst, SimIters - 1, WarpSched).TotalCycles -
      Launch;
  double PerIter = std::max(Sim - Prev, 0.0);
  return Launch + Sim +
         static_cast<double>(Iterations - SimIters) * PerIter;
}

KernelSimResult
CycleTimingModel::simulateKernel(const KernelDesc &Desc) const {
  TraceSpan Span("cyclesim.kernel", "gpusim");
  PipelineOptions Opts;
  Opts.BusCyclesPerTxn = Arch.ChipCyclesPerTxn;
  Opts.Policy = WarpSched;
  KernelSimResult R = runChipPipeline(Arch, Desc, Opts);
  applyHostStreams(Desc, R);

  int64_t Instances = 0;
  for (const std::vector<SmWorkItem> &S : Desc.SmStreams)
    Instances += static_cast<int64_t>(S.size());
  int64_t WarpInstrs = 0;
  double Stalls = 0.0;
  double FetchStalls = 0.0;
  for (const SmBreakdown &B : R.PerSm) {
    WarpInstrs += B.WarpInstrs;
    Stalls += B.StallCycles;
    FetchStalls += B.FetchStallCycles;
  }
  metricCounter("cyclesim.kernels").add(1);
  metricCounter("cyclesim.instances").add(Instances);
  metricCounter("cyclesim.warps_issued").add(WarpInstrs);
  metricCounter("cyclesim.transactions")
      .add(static_cast<int64_t>(R.Transactions));
  metricCounter("cyclesim.stall_cycles")
      .add(static_cast<int64_t>(std::llround(Stalls)));
  metricCounter("cyclesim.fetch_stall_cycles")
      .add(static_cast<int64_t>(std::llround(FetchStalls)));
  Span.argNum("total_cycles", R.TotalCycles);
  Span.argNum("fill_cycles", R.FillCycles);
  Span.argInt("warp_instrs", WarpInstrs);
  Span.argInt("transactions", static_cast<int64_t>(R.Transactions));
  Span.argStr("warp_sched", warpSchedPolicyName(WarpSched));
  return R;
}
