//===- gpusim/cyclesim/CycleSim.cpp - Event-driven warp simulator ------------===//

#include "gpusim/cyclesim/CycleSim.h"

#include "gpusim/cyclesim/WarpProgram.h"
#include "support/Check.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>
#include <vector>

using namespace sgpu;

namespace {

/// One warp's execution state within the current instance.
struct WarpState {
  const WarpProgram *Prog = nullptr;
  size_t PC = 0;
  int64_t IterationsLeft = 0;
  double ReadyAt = 0.0;   ///< Earliest next issue.
  double Completed = 0.0; ///< All issued work drained (loads + stores).
  std::deque<double> Outstanding; ///< FIFO of load return times.

  bool done() const { return IterationsLeft == 0; }
  const WarpOp &op() const { return Prog->Ops[PC]; }
  void advance() {
    if (++PC == Prog->Ops.size()) {
      PC = 0;
      --IterationsLeft;
    }
  }
};

/// One SM: a serial stream of work items, each expanded into concurrent
/// warps over the single issue port.
struct SmState {
  const std::vector<SmWorkItem> *Stream = nullptr;
  size_t Item = 0;        ///< Next stream entry to start.
  double StreamClock = 0.0; ///< When the current item started.
  double PortFree = 0.0;
  int RRNext = 0; ///< Round-robin scan start.
  std::vector<WarpState> Warps;
  SmBreakdown Stats;

  bool warpsDone() const {
    for (const WarpState &W : Warps)
      if (!W.done())
        return false;
    return true;
  }
  double drainTime() const {
    double T = StreamClock;
    for (const WarpState &W : Warps)
      T = std::max(T, W.Completed);
    return T;
  }
};

/// The chip: SMs sharing one FIFO DRAM bus. `BusCyclesPerTxn` is the
/// service rate seen by the simulated streams — the chip-wide rate for
/// whole-kernel simulations, scaled by NumSMs for single-SM profile runs
/// (that SM owns 1/NumSMs of the bandwidth while every SM streams).
class ChipEngine {
public:
  ChipEngine(const GpuArch &Arch, const KernelDesc &Desc,
             double BusCyclesPerTxn)
      : Arch(Arch), Desc(Desc), BusCyclesPerTxn(BusCyclesPerTxn),
        MlpCap(std::max(1, static_cast<int>(Arch.MemoryLevelParallelism))) {
    Programs.resize(Desc.Instances.size());
    Sms.resize(Desc.SmStreams.size());
    for (size_t P = 0; P < Sms.size(); ++P) {
      Sms[P].Stream = &Desc.SmStreams[P];
      startNextItem(Sms[P], 0.0);
    }
  }

  KernelSimResult run();

private:
  const GpuArch &Arch;
  const KernelDesc &Desc;
  double BusCyclesPerTxn;
  int MlpCap;
  double BusFree = 0.0;
  std::vector<SmState> Sms;
  /// Warp programs, built lazily once per distinct instance.
  std::vector<std::vector<WarpProgram>> Programs;

  const std::vector<WarpProgram> &programsFor(int Instance) {
    std::vector<WarpProgram> &P = Programs[Instance];
    if (P.empty())
      P = buildWarpPrograms(Arch, Desc.Instances[Instance]);
    return P;
  }

  /// Installs the next stream item's warps; skips empty programs. When
  /// the stream is exhausted, StreamClock keeps \p Now (the final drain
  /// time), which is what drainTime() reports once no warps remain.
  void startNextItem(SmState &Sm, double Now) {
    Sm.Warps.clear();
    Sm.RRNext = 0;
    Sm.StreamClock = Now;
    Sm.PortFree = Now;
    while (Sm.Item < Sm.Stream->size()) {
      const SmWorkItem &Item = (*Sm.Stream)[Sm.Item++];
      const std::vector<WarpProgram> &Progs = programsFor(Item.Instance);
      for (const WarpProgram &P : Progs) {
        if (P.Ops.empty())
          continue;
        WarpState W;
        W.Prog = &P;
        W.IterationsLeft = Item.Iterations;
        W.ReadyAt = Now;
        W.Completed = Now;
        Sm.Warps.push_back(W);
      }
      if (!Sm.Warps.empty())
        return;
    }
  }

  /// Earliest cycle warp \p W could issue its next op.
  double candidateTime(const SmState &Sm, const WarpState &W) const {
    const WarpOp &Op = W.op();
    double T = std::max(W.ReadyAt, Sm.PortFree);
    switch (Op.K) {
    case WarpOp::Kind::Load:
      // Scoreboard full: the oldest load must return and free its slot.
      if (static_cast<int>(W.Outstanding.size()) >= MlpCap)
        T = std::max(T, W.Outstanding.front());
      break;
    case WarpOp::Kind::Compute:
      // Consumes every outstanding load; returns are FIFO-monotonic, so
      // the last one is the latest.
      if (!W.Outstanding.empty())
        T = std::max(T, W.Outstanding.back());
      break;
    case WarpOp::Kind::Store:
      break;
    }
    return T;
  }

  void execute(SmState &Sm, WarpState &W, double Start) {
    const WarpOp Op = W.op();
    // Port idle time with this instance resident is a memory stall.
    double Idle = Start - std::max(Sm.PortFree, Sm.StreamClock);
    if (Idle > 0.0)
      Sm.Stats.StallCycles += Idle;

    double IssueEnd = Start + Op.IssueCycles;
    Sm.PortFree = IssueEnd;
    W.ReadyAt = IssueEnd;
    W.Completed = std::max(W.Completed, IssueEnd);
    Sm.Stats.BusyCycles += Op.IssueCycles;
    Sm.Stats.WarpInstrs += 1;

    switch (Op.K) {
    case WarpOp::Kind::Load: {
      if (static_cast<int>(W.Outstanding.size()) >= MlpCap)
        W.Outstanding.pop_front();
      double BusStart = std::max(IssueEnd, BusFree);
      double BusEnd =
          BusStart + static_cast<double>(Op.Transactions) * BusCyclesPerTxn;
      BusFree = BusEnd;
      double Return = BusEnd + static_cast<double>(Arch.MemLatencyCycles);
      W.Outstanding.push_back(Return);
      W.Completed = std::max(W.Completed, Return);
      Sm.Stats.Transactions += Op.Transactions;
      break;
    }
    case WarpOp::Kind::Store: {
      double BusStart = std::max(IssueEnd, BusFree);
      double BusEnd =
          BusStart + static_cast<double>(Op.Transactions) * BusCyclesPerTxn;
      BusFree = BusEnd;
      W.Completed = std::max(W.Completed, BusEnd);
      Sm.Stats.Transactions += Op.Transactions;
      break;
    }
    case WarpOp::Kind::Compute:
      W.Outstanding.clear();
      break;
    }
    W.advance();
  }
};

KernelSimResult ChipEngine::run() {
  // Greedy discrete-event loop: always issue the globally earliest
  // possible warp instruction. Ties resolve by SM index, then by each
  // SM's round-robin order, so the simulation is fully deterministic.
  for (;;) {
    SmState *BestSm = nullptr;
    WarpState *BestWarp = nullptr;
    int BestWarpIdx = 0;
    double BestTime = 0.0;
    for (SmState &Sm : Sms) {
      if (Sm.Warps.empty())
        continue;
      int N = static_cast<int>(Sm.Warps.size());
      for (int I = 0; I < N; ++I) {
        int Idx = (Sm.RRNext + I) % N;
        WarpState &W = Sm.Warps[Idx];
        if (W.done())
          continue;
        double T = candidateTime(Sm, W);
        if (!BestWarp || T < BestTime) {
          BestSm = &Sm;
          BestWarp = &W;
          BestWarpIdx = Idx;
          BestTime = T;
        }
      }
    }
    if (!BestWarp)
      break;
    execute(*BestSm, *BestWarp, BestTime);
    BestSm->RRNext =
        (BestWarpIdx + 1) % static_cast<int>(BestSm->Warps.size());
    if (BestSm->warpsDone())
      startNextItem(*BestSm, BestSm->drainTime());
  }

  KernelSimResult R;
  R.PerSm.reserve(Sms.size());
  double End = 0.0;
  for (SmState &Sm : Sms) {
    Sm.Stats.TotalCycles = Sm.drainTime();
    End = std::max(End, Sm.Stats.TotalCycles);
    R.Transactions += static_cast<double>(Sm.Stats.Transactions);
    R.PerSm.push_back(Sm.Stats);
  }
  R.TotalCycles = End + static_cast<double>(Arch.KernelLaunchCycles);
  R.FillCycles = static_cast<double>(Desc.StageSpan) * R.TotalCycles;
  return R;
}

/// Single-SM run of one instance repeated \p Iterations times, with the
/// SM's bandwidth share (every SM streams during a profile run).
KernelSimResult simulateSingleSm(const GpuArch &Arch,
                                 const SimInstance &Inst,
                                 int64_t Iterations) {
  KernelDesc Desc;
  Desc.Instances.push_back(Inst);
  Desc.SmStreams.push_back({SmWorkItem{0, Iterations}});
  double SmShareCyclesPerTxn =
      Arch.ChipCyclesPerTxn * static_cast<double>(Arch.NumSMs);
  return ChipEngine(Arch, Desc, SmShareCyclesPerTxn).run();
}

} // namespace

double CycleTimingModel::instanceCycles(const SimInstance &Inst) const {
  KernelSimResult R = simulateSingleSm(Arch, Inst, 1);
  return R.TotalCycles - static_cast<double>(Arch.KernelLaunchCycles);
}

double
CycleTimingModel::instanceTransactions(const SimInstance &Inst) const {
  // Transactions derived from the real addresses, one firing of every
  // warp (plus the coalesced spill traffic the warp programs carry).
  std::vector<WarpProgram> Progs = buildWarpPrograms(Arch, Inst);
  int64_t Txns = 0;
  for (const WarpProgram &P : Progs)
    Txns += P.transactionsPerFiring();
  return static_cast<double>(Txns);
}

double CycleTimingModel::profileRunCycles(const SimInstance &Inst,
                                          int64_t Iterations) const {
  assert(Iterations > 0 && "profile run with no iterations");
  metricCounter("cyclesim.profile_runs").add(1);
  int64_t SimIters = std::min(Iterations, MaxSimulatedProfileIterations);
  double Launch = static_cast<double>(Arch.KernelLaunchCycles);
  double Sim =
      simulateSingleSm(Arch, Inst, SimIters).TotalCycles - Launch;
  if (SimIters == Iterations)
    return Launch + Sim;
  // Steady marginal cost of one more back-to-back firing; the warmup
  // transient is entirely inside the simulated prefix.
  double Prev =
      simulateSingleSm(Arch, Inst, SimIters - 1).TotalCycles - Launch;
  double PerIter = std::max(Sim - Prev, 0.0);
  return Launch + Sim +
         static_cast<double>(Iterations - SimIters) * PerIter;
}

KernelSimResult
CycleTimingModel::simulateKernel(const KernelDesc &Desc) const {
  TraceSpan Span("cyclesim.kernel", "gpusim");
  KernelSimResult R = ChipEngine(Arch, Desc, Arch.ChipCyclesPerTxn).run();

  int64_t Instances = 0;
  for (const std::vector<SmWorkItem> &S : Desc.SmStreams)
    Instances += static_cast<int64_t>(S.size());
  int64_t WarpInstrs = 0;
  double Stalls = 0.0;
  for (const SmBreakdown &B : R.PerSm) {
    WarpInstrs += B.WarpInstrs;
    Stalls += B.StallCycles;
  }
  metricCounter("cyclesim.kernels").add(1);
  metricCounter("cyclesim.instances").add(Instances);
  metricCounter("cyclesim.warps_issued").add(WarpInstrs);
  metricCounter("cyclesim.transactions")
      .add(static_cast<int64_t>(R.Transactions));
  metricCounter("cyclesim.stall_cycles")
      .add(static_cast<int64_t>(std::llround(Stalls)));
  Span.argNum("total_cycles", R.TotalCycles);
  Span.argNum("fill_cycles", R.FillCycles);
  Span.argInt("warp_instrs", WarpInstrs);
  Span.argInt("transactions", static_cast<int64_t>(R.Transactions));
  return R;
}
