//===- gpusim/cyclesim/CycleSim.h - Staged-pipeline warp simulator -*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cycle-approximate TimingModel backed by the staged SM pipeline of
/// SmPipeline.{h,cpp}: per SM, fetch -> operand/scoreboard -> execute ->
/// writeback stages joined by capacity-one latches, a pluggable warp
/// scheduler (round-robin or greedy-then-oldest, `--warp-sched`) feeding
/// fetch, a scoreboard capping outstanding loads per warp at
/// MemoryLevelParallelism, memory transaction counts from the actual
/// buffer addresses (Coalescer), and one chip-wide FIFO DRAM bus of
/// finite bandwidth shared by every SM. Instances of an SM's stream run
/// back to back (the SWP kernel's structure); the SWP prologue/epilogue
/// drain is surfaced per II as KernelSimResult::FillCycles.
///
/// The paper's headline mechanisms *emerge* here instead of being
/// asserted by formula: SMT latency hiding saturates once the execute
/// port is busy, uncoalesced access collapses against the bus and
/// back-pressures through the latches into fetch, and launch overhead is
/// amortized by coarsening. Everything is a pure function of the inputs
/// — bit-deterministic run to run and across `--jobs` worker counts
/// (asserted by tests/cyclesim_test.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_GPUSIM_CYCLESIM_CYCLESIM_H
#define SGPU_GPUSIM_CYCLESIM_CYCLESIM_H

#include "gpusim/TimingModel.h"
#include "gpusim/cyclesim/WarpScheduler.h"

namespace sgpu {

/// The staged-pipeline implementation of the TimingModel interface.
class CycleTimingModel final : public TimingModel {
public:
  explicit CycleTimingModel(
      const GpuArch &A,
      WarpSchedPolicy WarpSched = WarpSchedPolicy::RoundRobin)
      : TimingModel(A), WarpSched(WarpSched) {}

  const char *name() const override { return "cycle"; }
  TimingModelKind kind() const override { return TimingModelKind::Cycle; }

  WarpSchedPolicy warpSchedPolicy() const { return WarpSched; }

  double instanceCycles(const SimInstance &Inst) const override;
  double instanceTransactions(const SimInstance &Inst) const override;
  double profileRunCycles(const SimInstance &Inst,
                          int64_t Iterations) const override;
  KernelSimResult simulateKernel(const KernelDesc &Desc) const override;

  /// profileRunCycles simulates at most this many back-to-back firings
  /// and extrapolates the rest from the steady marginal cost — Fig. 6
  /// runs repeat one instance thousands of times and the marginal cost
  /// is constant after the pipeline warms up (see DESIGN.md
  /// "Cycle-approximate timing").
  static constexpr int64_t MaxSimulatedProfileIterations = 4;

private:
  WarpSchedPolicy WarpSched;
};

} // namespace sgpu

#endif // SGPU_GPUSIM_CYCLESIM_CYCLESIM_H
