//===- gpusim/cyclesim/CycleSim.h - Event-driven warp simulator -*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A cycle-approximate, event-driven simulator of one kernel invocation
/// on the GeForce-8800-class chip of GpuArch: per-SM round-robin warp
/// schedulers over a single issue port, a scoreboard capping outstanding
/// loads per warp at MemoryLevelParallelism, a memory stage whose
/// transaction counts come from the actual buffer addresses (Coalescer),
/// and one chip-wide FIFO DRAM bus of finite bandwidth shared by every
/// SM. Instances of an SM's stream run back to back (the SWP kernel's
/// structure); the SWP prologue/epilogue drain is surfaced per II as
/// KernelSimResult::FillCycles.
///
/// The paper's headline mechanisms *emerge* here instead of being
/// asserted by formula: SMT latency hiding saturates once the issue port
/// is busy, uncoalesced access collapses against the bus, and launch
/// overhead is amortized by coarsening. Everything is a pure function of
/// the inputs — bit-deterministic run to run and across `--jobs` worker
/// counts (asserted by tests/cyclesim_test.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_GPUSIM_CYCLESIM_CYCLESIM_H
#define SGPU_GPUSIM_CYCLESIM_CYCLESIM_H

#include "gpusim/TimingModel.h"

namespace sgpu {

/// The event-driven implementation of the TimingModel interface.
class CycleTimingModel final : public TimingModel {
public:
  explicit CycleTimingModel(const GpuArch &A) : TimingModel(A) {}

  const char *name() const override { return "cycle"; }
  TimingModelKind kind() const override { return TimingModelKind::Cycle; }

  double instanceCycles(const SimInstance &Inst) const override;
  double instanceTransactions(const SimInstance &Inst) const override;
  double profileRunCycles(const SimInstance &Inst,
                          int64_t Iterations) const override;
  KernelSimResult simulateKernel(const KernelDesc &Desc) const override;

  /// profileRunCycles simulates at most this many back-to-back firings
  /// and extrapolates the rest from the steady marginal cost — Fig. 6
  /// runs repeat one instance thousands of times and the marginal cost
  /// is constant after the pipeline warms up (see DESIGN.md
  /// "Cycle-approximate timing").
  static constexpr int64_t MaxSimulatedProfileIterations = 4;
};

} // namespace sgpu

#endif // SGPU_GPUSIM_CYCLESIM_CYCLESIM_H
