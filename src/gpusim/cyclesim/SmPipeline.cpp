//===- gpusim/cyclesim/SmPipeline.cpp - Staged SM pipeline engine ------------===//

#include "gpusim/cyclesim/SmPipeline.h"

#include "support/Check.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <limits>

using namespace sgpu;

namespace {

constexpr double Inf = std::numeric_limits<double>::infinity();

/// One warp's execution state within the current work item.
struct WarpState {
  const WarpProgram *Prog = nullptr;
  size_t PC = 0;
  int64_t IterationsLeft = 0;
  double ReadyAt = 0.0;   ///< Earliest next fetch (in-order per warp).
  double Completed = 0.0; ///< All issued work drained (loads + stores).
  std::deque<double> Outstanding; ///< FIFO of load return times.

  bool done() const { return IterationsLeft == 0; }
  const WarpOp &op() const { return Prog->Ops[PC]; }
  void advance() {
    if (++PC == Prog->Ops.size()) {
      PC = 0;
      --IterationsLeft;
    }
  }
};

/// One stream entry with its warp programs already resolved.
struct ResolvedItem {
  const std::vector<WarpProgram> *Progs = nullptr;
  int64_t Iterations = 1;
};

/// One SM: the four stage latches as free-times on the cycle axis, a
/// warp scheduler feeding fetch, and a serial stream of work items each
/// expanded into concurrent warps.
struct SmState {
  std::vector<ResolvedItem> Stream;
  size_t Item = 0;          ///< Next stream entry to start.
  double StreamClock = 0.0; ///< When the current item started.
  double FetchFree = 0.0;   ///< Fetch latch free (next fetch may start).
  double OperandFree = 0.0; ///< Operand latch free.
  double PortFree = 0.0;    ///< Execute port free.
  double MemFree = 0.0;     ///< Writeback/memory latch free.
  WarpScheduler Sched;
  std::vector<WarpState> Warps;
  std::vector<double> Cands; ///< Per-warp candidate times (scratch).
  SmBreakdown Stats;

  bool warpsDone() const {
    for (const WarpState &W : Warps)
      if (!W.done())
        return false;
    return true;
  }
  double drainTime() const {
    double T = StreamClock;
    for (const WarpState &W : Warps)
      T = std::max(T, W.Completed);
    return T;
  }
};

/// The chip: SMs sharing one FIFO DRAM bus.
class ChipPipeline {
public:
  ChipPipeline(const GpuArch &Arch, const PipelineOptions &Opts,
               size_t NumSms)
      : Arch(Arch), Opts(Opts),
        MlpCap(std::max(1, static_cast<int>(Arch.MemoryLevelParallelism))) {
    Sms.resize(NumSms);
    for (SmState &Sm : Sms)
      Sm.Sched = WarpScheduler(Opts.Policy);
  }

  std::vector<ResolvedItem> &stream(size_t Sm) { return Sms[Sm].Stream; }

  /// Runs every SM stream to completion. TotalCycles of the result is
  /// the chip-wide drain time, with NO launch overhead and FillCycles
  /// unset — the callers layer those on.
  KernelSimResult run();

private:
  const GpuArch &Arch;
  PipelineOptions Opts;
  int MlpCap;
  double BusFree = 0.0;
  std::vector<SmState> Sms;

  void startNextItem(SmState &Sm, double Now);
  double candidateTime(const SmState &Sm, const WarpState &W) const;
  void issue(SmState &Sm, WarpState &W, double FetchStart);
};

/// Installs the next stream item's warps; skips empty programs. When the
/// stream is exhausted, StreamClock keeps \p Now (the final drain time),
/// which is what drainTime() reports once no warps remain.
void ChipPipeline::startNextItem(SmState &Sm, double Now) {
  Sm.Warps.clear();
  Sm.Sched.reset();
  Sm.StreamClock = Now;
  Sm.FetchFree = Now;
  Sm.OperandFree = Now;
  Sm.PortFree = Now;
  Sm.MemFree = Now;
  while (Sm.Item < Sm.Stream.size()) {
    const ResolvedItem &Item = Sm.Stream[Sm.Item++];
    for (const WarpProgram &P : *Item.Progs) {
      if (P.Ops.empty())
        continue;
      WarpState W;
      W.Prog = &P;
      W.IterationsLeft = Item.Iterations;
      W.ReadyAt = Now;
      W.Completed = Now;
      Sm.Warps.push_back(W);
    }
    if (!Sm.Warps.empty())
      return;
  }
}

/// Earliest cycle warp \p W's next op could enter the fetch latch. The
/// warp is in-order (fetch waits for its previous op to leave execute)
/// and the operand scoreboard holds are folded in here so the scheduler
/// never picks a warp that would only sit in the operand latch.
double ChipPipeline::candidateTime(const SmState &Sm,
                                   const WarpState &W) const {
  const WarpOp &Op = W.op();
  double T = std::max(W.ReadyAt, Sm.FetchFree);
  switch (Op.K) {
  case WarpOp::Kind::Load:
    // Scoreboard full: the oldest load must return and free its slot.
    if (static_cast<int>(W.Outstanding.size()) >= MlpCap)
      T = std::max(T, W.Outstanding.front());
    break;
  case WarpOp::Kind::Compute:
    // Consumes every outstanding load; returns are FIFO-monotonic, so
    // the last one is the latest.
    if (!W.Outstanding.empty())
      T = std::max(T, W.Outstanding.back());
    break;
  case WarpOp::Kind::Store:
    break;
  }
  return T;
}

/// Advances one instruction of warp \p W through the four stages,
/// starting its fetch at \p FetchStart (the candidate time the scheduler
/// selected). Each stage holds its latch until the next stage accepts,
/// so downstream congestion back-pressures here automatically.
void ChipPipeline::issue(SmState &Sm, WarpState &W, double FetchStart) {
  const WarpOp Op = W.op();

  // Scoreboard holds beyond plain fetch availability are operand-stage
  // waits (the warp sat on a load dependence, not on a latch).
  double FetchReady = std::max(W.ReadyAt, Sm.FetchFree);
  Sm.Stats.OperandStallCycles += FetchStart - FetchReady;

  // Fetch: one latch, then hand to the operand stage once it frees.
  double FetchDone = FetchStart + PipelineLatchCycles;
  double OperandStart = std::max(FetchDone, Sm.OperandFree);
  Sm.Stats.FetchBusyCycles += OperandStart - FetchStart;
  Sm.Stats.FetchStallCycles += OperandStart - FetchDone;
  Sm.FetchFree = OperandStart;

  // Operand/scoreboard: one latch, then wait for the execute port. The
  // operand latch stays occupied until execute accepts the op.
  double OperandDone = OperandStart + PipelineLatchCycles;
  double ExecStart = std::max(OperandDone, Sm.PortFree);
  Sm.OperandFree = ExecStart;

  // Execute-port idle time with this item resident is a memory stall.
  double Idle = ExecStart - std::max(Sm.PortFree, Sm.StreamClock);
  if (Idle > 0.0)
    Sm.Stats.StallCycles += Idle;

  double ExecEnd = ExecStart + Op.IssueCycles;
  Sm.Stats.BusyCycles += Op.IssueCycles;
  Sm.Stats.WarpInstrs += 1;
  W.ReadyAt = ExecEnd;
  W.Completed = std::max(W.Completed, ExecEnd);

  switch (Op.K) {
  case WarpOp::Kind::Load: {
    if (static_cast<int>(W.Outstanding.size()) >= MlpCap)
      W.Outstanding.pop_front();
    // Writeback: the executed load occupies the memory latch until the
    // DRAM bus accepts its request; a saturated bus therefore keeps the
    // execute port busy (PortFree = MemStart), which is the structural
    // hazard the latch tests pin down.
    double MemStart = std::max(ExecEnd, Sm.MemFree);
    Sm.Stats.MemStallCycles += MemStart - ExecEnd;
    Sm.PortFree = MemStart;
    double BusStart = std::max(MemStart, BusFree);
    double BusEnd = BusStart + static_cast<double>(Op.Transactions) *
                                   Opts.BusCyclesPerTxn;
    BusFree = BusEnd;
    Sm.MemFree = BusStart;
    double Return = BusEnd + static_cast<double>(Arch.MemLatencyCycles);
    W.Outstanding.push_back(Return);
    W.Completed = std::max(W.Completed, Return);
    Sm.Stats.Transactions += Op.Transactions;
    break;
  }
  case WarpOp::Kind::Store: {
    double MemStart = std::max(ExecEnd, Sm.MemFree);
    Sm.Stats.MemStallCycles += MemStart - ExecEnd;
    Sm.PortFree = MemStart;
    double BusStart = std::max(MemStart, BusFree);
    double BusEnd = BusStart + static_cast<double>(Op.Transactions) *
                                   Opts.BusCyclesPerTxn;
    BusFree = BusEnd;
    Sm.MemFree = BusStart;
    W.Completed = std::max(W.Completed, BusEnd);
    Sm.Stats.Transactions += Op.Transactions;
    break;
  }
  case WarpOp::Kind::Compute:
    Sm.PortFree = ExecEnd;
    W.Outstanding.clear();
    break;
  }
  W.advance();
}

KernelSimResult ChipPipeline::run() {
  for (SmState &Sm : Sms)
    startNextItem(Sm, 0.0);

  // Greedy discrete-event loop: always issue the globally earliest
  // fetchable warp instruction. Each SM's WarpScheduler breaks ties
  // among its own equally-early warps; cross-SM ties resolve by SM
  // index, so the simulation is fully deterministic.
  for (;;) {
    SmState *BestSm = nullptr;
    int BestWarp = -1;
    double BestTime = Inf;
    for (SmState &Sm : Sms) {
      if (Sm.Warps.empty())
        continue;
      size_t N = Sm.Warps.size();
      Sm.Cands.resize(N);
      for (size_t I = 0; I < N; ++I) {
        const WarpState &W = Sm.Warps[I];
        Sm.Cands[I] = W.done() ? Inf : candidateTime(Sm, W);
      }
      int Pick = Sm.Sched.pick(Sm.Cands);
      if (Pick < 0)
        SGPU_UNREACHABLE("SM with live warps has no candidate");
      if (!BestSm || Sm.Cands[Pick] < BestTime) {
        BestSm = &Sm;
        BestWarp = Pick;
        BestTime = Sm.Cands[Pick];
      }
    }
    if (!BestSm)
      break;
    issue(*BestSm, BestSm->Warps[BestWarp], BestTime);
    BestSm->Sched.issued(BestWarp, static_cast<int>(BestSm->Warps.size()));
    if (BestSm->warpsDone())
      startNextItem(*BestSm, BestSm->drainTime());
  }

  KernelSimResult R;
  R.PerSm.reserve(Sms.size());
  double End = 0.0;
  for (SmState &Sm : Sms) {
    Sm.Stats.TotalCycles = Sm.drainTime();
    End = std::max(End, Sm.Stats.TotalCycles);
    R.Transactions += static_cast<double>(Sm.Stats.Transactions);
    R.PerSm.push_back(Sm.Stats);
  }
  R.TotalCycles = End;
  return R;
}

} // namespace

KernelSimResult sgpu::runChipPipeline(const GpuArch &Arch,
                                      const KernelDesc &Desc,
                                      const PipelineOptions &Opts) {
  // Resolve every referenced instance's warp programs once up front.
  std::vector<std::vector<WarpProgram>> Programs(Desc.Instances.size());
  std::vector<char> Built(Desc.Instances.size(), 0);
  ChipPipeline Chip(Arch, Opts, Desc.SmStreams.size());
  for (size_t S = 0; S < Desc.SmStreams.size(); ++S) {
    std::vector<ResolvedItem> &Stream = Chip.stream(S);
    Stream.reserve(Desc.SmStreams[S].size());
    for (const SmWorkItem &Item : Desc.SmStreams[S]) {
      if (!Built[Item.Instance]) {
        Programs[Item.Instance] =
            buildWarpPrograms(Arch, Desc.Instances[Item.Instance]);
        Built[Item.Instance] = 1;
      }
      Stream.push_back({&Programs[Item.Instance], Item.Iterations});
    }
  }
  KernelSimResult Out = Chip.run();
  Out.TotalCycles += static_cast<double>(Arch.KernelLaunchCycles);
  Out.FillCycles = static_cast<double>(Desc.StageSpan) * Out.TotalCycles;
  return Out;
}

SmBreakdown sgpu::simulateSmPipeline(const GpuArch &Arch,
                                     const std::vector<WarpProgram> &Warps,
                                     int64_t Iterations,
                                     const PipelineOptions &Opts) {
  ChipPipeline Chip(Arch, Opts, 1);
  Chip.stream(0).push_back({&Warps, Iterations});
  KernelSimResult R = Chip.run();
  assert(R.PerSm.size() == 1 && "single-SM run produced no breakdown");
  return R.PerSm[0];
}
