//===- gpusim/cyclesim/SmPipeline.h - Staged SM pipeline engine -*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The staged SM pipeline at the heart of the cycle-approximate timing
/// model (Cyclesim v2). Each SM models four stages joined by capacity-one
/// latches:
///
///   fetch -> operand/scoreboard -> execute -> writeback/memory
///
/// A warp instruction occupies the fetch latch for PipelineLatchCycles,
/// then advances one latch per stage. A stage that cannot drain — the
/// execute port busy, or a memory op waiting for the chip-wide DRAM bus —
/// holds its latch, and the hold back-pressures upstream: a saturated bus
/// keeps the memory latch full, which keeps the execute port occupied,
/// which stalls the operand latch, which freezes fetch within the latch
/// depth (asserted by tests/cyclesim_pipeline_test.cpp). Which resident
/// warp fetches next is a pluggable WarpScheduler policy.
///
/// The engine is event-driven, not clocked: every latch is a free-time on
/// the continuous cycle axis and each instruction's traversal is computed
/// as a max-cascade over them, so whole SWP kernels (millions of cycles)
/// simulate in milliseconds while latch occupancy, back-pressure and the
/// per-stage stall attribution of SmBreakdown remain exact. Everything is
/// a pure function of the inputs — bit-deterministic run to run and
/// across `--jobs` worker counts.
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_GPUSIM_CYCLESIM_SMPIPELINE_H
#define SGPU_GPUSIM_CYCLESIM_SMPIPELINE_H

#include "gpusim/TimingModel.h"
#include "gpusim/cyclesim/WarpProgram.h"
#include "gpusim/cyclesim/WarpScheduler.h"

#include <cstdint>
#include <vector>

namespace sgpu {

/// Depth of one pipeline latch, in cycles. Fetch and operand each hold an
/// instruction for (at least) one latch before handing it downstream.
constexpr double PipelineLatchCycles = 1.0;

/// Knobs of one pipeline simulation.
struct PipelineOptions {
  /// DRAM bus service rate seen by the simulated streams: the chip-wide
  /// rate (GpuArch::ChipCyclesPerTxn) for whole-kernel runs, scaled by
  /// NumSMs for single-SM profile runs (that SM owns 1/NumSMs of the
  /// bandwidth while every SM streams).
  double BusCyclesPerTxn = 0.0;
  /// Warp-selection policy of every SM's fetch stage (`--warp-sched`).
  WarpSchedPolicy Policy = WarpSchedPolicy::RoundRobin;
};

/// Simulates one whole kernel invocation over \p Desc's per-SM streams.
/// TotalCycles includes the kernel launch overhead; FillCycles is the
/// SWP prologue/epilogue drain (StageSpan invocations' worth).
KernelSimResult runChipPipeline(const GpuArch &Arch, const KernelDesc &Desc,
                                const PipelineOptions &Opts);

/// Runs hand-built warp programs back to back \p Iterations times on one
/// otherwise idle SM — the unit-test entry point for latch/back-pressure
/// behaviour. TotalCycles of the returned breakdown is the drain time of
/// the stream (no launch overhead).
SmBreakdown simulateSmPipeline(const GpuArch &Arch,
                               const std::vector<WarpProgram> &Warps,
                               int64_t Iterations,
                               const PipelineOptions &Opts);

} // namespace sgpu

#endif // SGPU_GPUSIM_CYCLESIM_SMPIPELINE_H
