//===- gpusim/cyclesim/WarpProgram.cpp - Warp instruction traces -------------===//

#include "gpusim/cyclesim/WarpProgram.h"

#include "gpusim/cyclesim/Coalescer.h"
#include "layout/AccessAnalyzer.h"

#include <algorithm>
#include <cassert>

using namespace sgpu;

double WarpProgram::issueCyclesPerFiring() const {
  double C = 0.0;
  for (const WarpOp &Op : Ops)
    C += Op.IssueCycles;
  return C;
}

int64_t WarpProgram::transactionsPerFiring() const {
  int64_t T = 0;
  for (const WarpOp &Op : Ops)
    T += Op.Transactions;
  return T;
}

std::vector<WarpProgram> sgpu::buildWarpPrograms(const GpuArch &Arch,
                                                 const SimInstance &Inst) {
  const InstanceCost &Cost = Inst.Cost;
  assert(Cost.Threads > 0 && "instance with no threads");
  int64_t NumWarps =
      (Cost.Threads + Arch.WarpSize - 1) / Arch.WarpSize;
  int MlpCap = std::max(1, static_cast<int>(Arch.MemoryLevelParallelism));

  std::vector<WarpProgram> Progs(NumWarps);
  for (int64_t W = 0; W < NumWarps; ++W) {
    int64_t Base = W * Arch.WarpSize;
    int64_t Lanes = std::min<int64_t>(Arch.WarpSize, Cost.Threads - Base);
    // Per-warp coalesced transaction count of thread-private (spill)
    // traffic: contiguous per lane, so one transaction per half-warp.
    int64_t PrivateTxns = (Lanes + HalfWarpSize - 1) / HalfWarpSize;

    std::vector<WarpOp> Loads, Stores;
    for (const MemStream &S : Inst.Streams) {
      // Queue-routed streams never become load/store ops: their issue
      // cost is already in the shared-access compute budget below.
      if (S.ViaQueue)
        continue;
      for (int64_t N = 0; N < S.Count; ++N) {
        WarpOp Op;
        Op.K = S.IsWrite ? WarpOp::Kind::Store : WarpOp::Kind::Load;
        Op.IssueCycles = Arch.CyclesPerWarpInstr;
        Op.Transactions = warpAccessTransactions(S, Base, Lanes, N);
        (S.IsWrite ? Stores : Loads).push_back(Op);
      }
    }
    // Spill traffic: alternating load/store, coalesced per half-warp.
    for (int64_t I = 0; I < Cost.SpillAccesses; ++I) {
      WarpOp Op;
      Op.K = (I % 2 == 0) ? WarpOp::Kind::Load : WarpOp::Kind::Store;
      Op.IssueCycles = Arch.CyclesPerWarpInstr;
      Op.Transactions = PrivateTxns;
      (Op.K == WarpOp::Kind::Load ? Loads : Stores).push_back(Op);
    }

    // Compute issue budget for the firing: ALU + SFU + shared accesses
    // with their conflict replays (the same terms C_warp charges).
    double ComputeCycles =
        Arch.CyclesPerWarpInstr *
            (static_cast<double>(Cost.ComputeOps) +
             static_cast<double>(Cost.SharedAccesses) *
                 Cost.SharedConflictDegree) +
        Arch.SfuCyclesPerWarpInstr * static_cast<double>(Cost.SfuOps);

    // Interleave: loads in scoreboard-sized groups, one compute chunk
    // after each group consuming its values, stores at the end.
    int64_t NumGroups =
        Loads.empty() ? 0
                      : (static_cast<int64_t>(Loads.size()) + MlpCap - 1) /
                            MlpCap;
    int64_t NumChunks = std::max<int64_t>(NumGroups, 1);
    double ChunkCycles = ComputeCycles / static_cast<double>(NumChunks);

    WarpProgram &P = Progs[W];
    size_t Next = 0;
    for (int64_t G = 0; G < NumGroups; ++G) {
      for (int M = 0; M < MlpCap && Next < Loads.size(); ++M)
        P.Ops.push_back(Loads[Next++]);
      if (ChunkCycles > 0.0) {
        WarpOp C;
        C.K = WarpOp::Kind::Compute;
        C.IssueCycles = ChunkCycles;
        P.Ops.push_back(C);
      }
    }
    if (NumGroups == 0 && ComputeCycles > 0.0) {
      WarpOp C;
      C.K = WarpOp::Kind::Compute;
      C.IssueCycles = ComputeCycles;
      P.Ops.push_back(C);
    }
    for (const WarpOp &S : Stores)
      P.Ops.push_back(S);
  }
  return Progs;
}
