//===- gpusim/cyclesim/WarpProgram.h - Warp instruction traces --*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthesizes the per-warp instruction trace the event engine executes
/// for one firing of a `SimInstance`. The trace reproduces the shape a
/// filter kernel compiles to:
///
///   - channel reads, issued in groups of up to MemoryLevelParallelism
///     outstanding loads (nvcc hoists loads; the scoreboard caps them);
///   - compute, split into chunks interleaved between the load groups so
///     dependent arithmetic waits on the scoreboard — shared-memory
///     accesses and their bank-conflict replays issue here;
///   - spill traffic (register pressure beyond the compile limit),
///     alternating coalesced load/store pairs;
///   - channel writes last, fire-and-forget but draining the bus.
///
/// Load/store transaction counts come from the Coalescer over the actual
/// buffer addresses; a warp covers both of its half-warps.
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_GPUSIM_CYCLESIM_WARPPROGRAM_H
#define SGPU_GPUSIM_CYCLESIM_WARPPROGRAM_H

#include "gpusim/TimingModel.h"

#include <cstdint>
#include <vector>

namespace sgpu {

/// One warp instruction of the trace.
struct WarpOp {
  enum class Kind : uint8_t {
    Compute, ///< Occupies the issue port; consumes outstanding loads.
    Load,    ///< Issues transactions; tracked by the scoreboard.
    Store    ///< Issues transactions; completion only gates the drain.
  };
  Kind K = Kind::Compute;
  double IssueCycles = 0.0;  ///< Issue-port occupancy.
  int64_t Transactions = 0;  ///< Device transactions (memory ops only).
};

/// The trace of one warp for ONE firing; iterations replay it.
struct WarpProgram {
  std::vector<WarpOp> Ops;

  double issueCyclesPerFiring() const;
  int64_t transactionsPerFiring() const;
};

/// Builds the traces of every warp of \p Inst (warp w covers threads
/// [w*WarpSize, ...)); deterministic in its inputs.
std::vector<WarpProgram> buildWarpPrograms(const GpuArch &Arch,
                                           const SimInstance &Inst);

} // namespace sgpu

#endif // SGPU_GPUSIM_CYCLESIM_WARPPROGRAM_H
