//===- gpusim/cyclesim/WarpScheduler.cpp - Warp selection policies -----------===//

#include "gpusim/cyclesim/WarpScheduler.h"

#include "support/Check.h"

#include <limits>

using namespace sgpu;

const char *sgpu::warpSchedPolicyName(WarpSchedPolicy P) {
  switch (P) {
  case WarpSchedPolicy::RoundRobin:
    return "rr";
  case WarpSchedPolicy::GreedyThenOldest:
    return "gto";
  }
  SGPU_UNREACHABLE("unknown warp scheduler policy");
}

std::optional<WarpSchedPolicy>
sgpu::parseWarpSchedPolicy(std::string_view Name) {
  if (Name == "rr" || Name == "round-robin")
    return WarpSchedPolicy::RoundRobin;
  if (Name == "gto" || Name == "greedy-then-oldest")
    return WarpSchedPolicy::GreedyThenOldest;
  return std::nullopt;
}

int WarpScheduler::pick(const std::vector<double> &CandidateTimes) const {
  int N = static_cast<int>(CandidateTimes.size());
  double MinTime = std::numeric_limits<double>::infinity();
  for (double T : CandidateTimes)
    MinTime = T < MinTime ? T : MinTime;
  if (MinTime == std::numeric_limits<double>::infinity())
    return -1;

  switch (Policy) {
  case WarpSchedPolicy::RoundRobin:
    // First warp at the minimum, scanning from one past the last issue.
    for (int I = 0; I < N; ++I) {
      int Idx = (RRNext + I) % N;
      if (CandidateTimes[Idx] == MinTime)
        return Idx;
    }
    break;
  case WarpSchedPolicy::GreedyThenOldest:
    // Stick with the last warp while it stays among the earliest-ready;
    // once it stalls (or retires), fall back to the oldest ready warp.
    // Warps of one work item all start together, so age is index order.
    if (Last >= 0 && Last < N && CandidateTimes[Last] == MinTime)
      return Last;
    for (int Idx = 0; Idx < N; ++Idx)
      if (CandidateTimes[Idx] == MinTime)
        return Idx;
    break;
  }
  SGPU_UNREACHABLE("minimum candidate not found");
}
