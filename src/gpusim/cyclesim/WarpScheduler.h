//===- gpusim/cyclesim/WarpScheduler.h - Warp selection policies -*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pluggable warp-selection policy of the staged SM pipeline
/// (SmPipeline.{h,cpp}). Each SM owns one WarpScheduler; every time the
/// fetch stage has a free slot the engine asks it which resident warp to
/// fetch from, given the earliest cycle each warp could issue.
///
///   rr   round-robin: rotate through the warps, starting one past the
///        last warp issued (the G80's fair scheduler and the historical
///        behaviour of the event engine);
///   gto  greedy-then-oldest: keep issuing from the last warp as long as
///        it is among the earliest-ready, otherwise fall back to the
///        oldest (lowest-index) ready warp — the classic GTO policy of
///        the sim literature, which trades fairness for locality.
///
/// Policies only break ties between equally-ready warps, so both are
/// work-conserving and bit-deterministic: selection is a pure function
/// of the candidate times and the scheduler's own issue history.
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_GPUSIM_CYCLESIM_WARPSCHEDULER_H
#define SGPU_GPUSIM_CYCLESIM_WARPSCHEDULER_H

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

namespace sgpu {

/// Which warp the staged pipeline fetches next (`--warp-sched`).
enum class WarpSchedPolicy : uint8_t { RoundRobin, GreedyThenOldest };

/// Canonical option spelling: "rr" / "gto".
const char *warpSchedPolicyName(WarpSchedPolicy P);

/// Inverse of warpSchedPolicyName, also accepting the long spellings
/// "round-robin" and "greedy-then-oldest"; nullopt for unknown names.
std::optional<WarpSchedPolicy> parseWarpSchedPolicy(std::string_view Name);

/// Per-SM warp-selection state. `pick` chooses among the warps whose
/// candidate time equals the minimum (the engine never skips ahead of a
/// strictly earlier warp — policies are tie-breakers, not reorderers).
class WarpScheduler {
public:
  explicit WarpScheduler(WarpSchedPolicy P = WarpSchedPolicy::RoundRobin)
      : Policy(P) {}

  WarpSchedPolicy policy() const { return Policy; }

  /// Forgets the issue history (a new work item installs new warps).
  void reset() {
    RRNext = 0;
    Last = -1;
  }

  /// Picks the warp to fetch next. \p CandidateTimes holds, per resident
  /// warp, the earliest cycle its next op could start fetching — or
  /// +infinity for warps that have retired. Returns -1 when every warp
  /// has retired.
  int pick(const std::vector<double> &CandidateTimes) const;

  /// Records that \p WarpIdx (of \p NumWarps resident) was issued.
  void issued(int WarpIdx, int NumWarps) {
    RRNext = (WarpIdx + 1) % NumWarps;
    Last = WarpIdx;
  }

private:
  WarpSchedPolicy Policy;
  int RRNext = 0; ///< Round-robin scan start.
  int Last = -1;  ///< Last warp issued (GTO greediness).
};

} // namespace sgpu

#endif // SGPU_GPUSIM_CYCLESIM_WARPSCHEDULER_H
