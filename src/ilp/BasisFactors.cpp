//===- ilp/BasisFactors.cpp - Factorized simplex basis ----------------------===//

#include "ilp/BasisFactors.h"

#include <cassert>
#include <cmath>
#include <limits>

using namespace sgpu;

bool BasisFactorization::factor(int NumRows,
                                const std::vector<int> &BasisCols,
                                const ColumnFn &Column) {
  Factored = false;
  M = NumRows;
  FactorEtas.clear();
  FIdx.clear();
  FVal.clear();
  UpdateEtas.clear();
  UIdx.clear();
  UVal.clear();
  PermPos.assign(M, -1);
  if (static_cast<int>(BasisCols.size()) != M)
    return false;
  if (M == 0) {
    Factored = true;
    return true;
  }

  // Working copy of the basis columns, transformed in place by each
  // Gauss-Jordan step: eta k zeroes pivot column k in every other row,
  // so each remaining column holds its fully transformed entries —
  // including scaled entries and fill in already-pivoted rows, which
  // later etas need. Active* bookkeeping counts only entries in
  // not-yet-pivoted rows, which is what pivot selection looks at.
  std::vector<SparseCol> Work(M);
  std::vector<int> ActiveLen(M, 0);
  std::vector<char> RowDone(M, 0), ColDone(M, 0);
  std::vector<int> RowCount(M, 0); ///< Active columns touching the row.
  // Columns ever holding an entry in row r; entries go stale when a
  // cancellation removes them, so users re-verify against Work.
  std::vector<std::vector<int>> RowCols(M);
  for (int K = 0; K < M; ++K) {
    Column(BasisCols[K], Work[K]);
    for (const auto &[R, V] : Work[K]) {
      if (R < 0 || R >= M)
        return false;
      ++RowCount[R];
      RowCols[R].push_back(K);
    }
    ActiveLen[K] = static_cast<int>(Work[K].size());
    if (ActiveLen[K] == 0)
      return false; // Empty column: structurally singular.
  }

  std::vector<int> ColQ, RowQ; // Singleton candidates (lazily verified).
  for (int K = 0; K < M; ++K)
    if (ActiveLen[K] == 1)
      ColQ.push_back(K);
  for (int R = 0; R < M; ++R)
    if (RowCount[R] == 1)
      RowQ.push_back(R);

  auto emitEta = [&](int PivRow, double PivVal, const SparseCol &C) {
    Eta E;
    E.Piv = PivRow;
    E.InvPiv = 1.0 / PivVal;
    E.Start = static_cast<int>(FIdx.size());
    for (const auto &[R, V] : C)
      if (R != PivRow) {
        FIdx.push_back(R);
        FVal.push_back(V);
      }
    E.End = static_cast<int>(FIdx.size());
    FactorEtas.push_back(E);
  };

  // Dense scratch for elimination.
  std::vector<double> Dense(M, 0.0);
  std::vector<char> InPiv(M, 0), Merged(M, 0);
  SparseCol NewCol;

  for (int Done = 0; Done < M; ++Done) {
    int PivCol = -1, PivRow = -1;
    double PivVal = 0.0;

    // Pivot selection, cheapest eliminations first: a singleton column
    // (one active entry) pins the pivot row; a singleton row (one
    // active column) has no other column to update; the residual bump
    // picks the shortest active column and, within it, the largest
    // magnitude for stability.
    while (!ColQ.empty()) {
      int K = ColQ.back();
      ColQ.pop_back();
      if (!ColDone[K] && ActiveLen[K] == 1) {
        PivCol = K;
        break;
      }
    }
    if (PivCol >= 0) {
      for (const auto &[R, V] : Work[PivCol])
        if (!RowDone[R]) {
          PivRow = R;
          PivVal = V;
          break;
        }
    } else {
      while (!RowQ.empty()) {
        int R = RowQ.back();
        RowQ.pop_back();
        if (RowDone[R] || RowCount[R] != 1)
          continue;
        for (int C : RowCols[R]) {
          if (ColDone[C])
            continue;
          for (const auto &[R2, V2] : Work[C])
            if (R2 == R) {
              PivCol = C;
              PivVal = V2;
              break;
            }
          if (PivCol >= 0)
            break;
        }
        if (PivCol >= 0) {
          PivRow = R;
          break;
        }
      }
      if (PivCol < 0) {
        int BestLen = std::numeric_limits<int>::max();
        for (int K = 0; K < M; ++K)
          if (!ColDone[K] && ActiveLen[K] < BestLen) {
            BestLen = ActiveLen[K];
            PivCol = K;
          }
        if (PivCol < 0)
          return false;
        for (const auto &[R, V] : Work[PivCol])
          if (!RowDone[R] && std::fabs(V) > std::fabs(PivVal)) {
            PivRow = R;
            PivVal = V;
          }
      }
    }
    if (PivRow < 0 || std::fabs(PivVal) < SingTol)
      return false;
    emitEta(PivRow, PivVal, Work[PivCol]);

    // Apply the eta to every other active column with a pivot-row
    // entry CR: its pivot-row entry becomes CR / PivVal and every
    // other row r gains -(CR / PivVal) * PivColumn[r] — cancellation
    // in rows the column already touches, fill in rows it does not
    // (fill lands in pivoted rows too; later etas need it).
    for (const auto &[R, V] : Work[PivCol]) {
      Dense[R] = V;
      InPiv[R] = 1;
    }
    for (int C : RowCols[PivRow]) {
      if (ColDone[C] || C == PivCol)
        continue;
      double CR = 0.0;
      bool Has = false;
      for (const auto &[R2, V2] : Work[C])
        if (R2 == PivRow) {
          CR = V2;
          Has = true;
          break;
        }
      if (!Has)
        continue; // Stale RowCols entry.
      double F = CR / PivVal;
      NewCol.clear();
      for (const auto &[R2, V2] : Work[C]) {
        if (R2 == PivRow) {
          if (std::fabs(F) > DropTol)
            NewCol.emplace_back(R2, F);
          continue;
        }
        if (InPiv[R2]) {
          Merged[R2] = 1;
          double NV = V2 - F * Dense[R2];
          if (std::fabs(NV) > DropTol)
            NewCol.emplace_back(R2, NV);
          else if (!RowDone[R2] && --RowCount[R2] == 1)
            RowQ.push_back(R2); // Cancellation removed an active entry.
        } else {
          NewCol.emplace_back(R2, V2);
        }
      }
      for (const auto &[R2, V2] : Work[PivCol]) {
        if (R2 == PivRow || Merged[R2]) {
          Merged[R2] = 0;
          continue;
        }
        double NV = -F * V2;
        if (std::fabs(NV) > DropTol) {
          NewCol.emplace_back(R2, NV);
          if (!RowDone[R2]) {
            ++RowCount[R2];
            RowCols[R2].push_back(C);
          }
        }
      }
      Work[C].swap(NewCol);
      int Active = 0;
      for (const auto &[R2, V2] : Work[C])
        if (!RowDone[R2] && R2 != PivRow)
          ++Active;
      ActiveLen[C] = Active;
      if (Active == 0)
        return false; // No pivotable entry left: singular.
      if (Active == 1)
        ColQ.push_back(C);
    }
    // The pivot column leaves the active set: rows it touched have one
    // fewer active column.
    for (const auto &[R, V] : Work[PivCol]) {
      Dense[R] = 0.0;
      InPiv[R] = 0;
      if (R != PivRow && !RowDone[R] && --RowCount[R] == 1)
        RowQ.push_back(R);
    }

    RowDone[PivRow] = 1;
    ColDone[PivCol] = 1;
    PermPos[PivRow] = PivCol;
  }

  Factored = true;
  return true;
}

void BasisFactorization::ftran(std::vector<double> &X) {
  assert(Factored && static_cast<int>(X.size()) == M);
  for (const Eta &E : FactorEtas) {
    double T = X[E.Piv];
    if (T == 0.0)
      continue;
    T *= E.InvPiv;
    X[E.Piv] = T;
    for (int I = E.Start; I < E.End; ++I)
      X[FIdx[I]] -= FVal[I] * T;
  }
  Tmp.resize(M);
  for (int R = 0; R < M; ++R)
    Tmp[PermPos[R]] = X[R];
  X.swap(Tmp);
  for (const Eta &E : UpdateEtas) {
    double T = X[E.Piv];
    if (T == 0.0)
      continue;
    T *= E.InvPiv;
    X[E.Piv] = T;
    for (int I = E.Start; I < E.End; ++I)
      X[UIdx[I]] -= UVal[I] * T;
  }
}

void BasisFactorization::btran(std::vector<double> &X) {
  assert(Factored && static_cast<int>(X.size()) == M);
  for (auto It = UpdateEtas.rbegin(); It != UpdateEtas.rend(); ++It) {
    double S = X[It->Piv];
    for (int I = It->Start; I < It->End; ++I)
      S -= UVal[I] * X[UIdx[I]];
    X[It->Piv] = S * It->InvPiv;
  }
  Tmp.resize(M);
  for (int R = 0; R < M; ++R)
    Tmp[R] = X[PermPos[R]];
  X.swap(Tmp);
  for (auto It = FactorEtas.rbegin(); It != FactorEtas.rend(); ++It) {
    double S = X[It->Piv];
    for (int I = It->Start; I < It->End; ++I)
      S -= FVal[I] * X[FIdx[I]];
    X[It->Piv] = S * It->InvPiv;
  }
}

bool BasisFactorization::update(const std::vector<double> &W, int PivotPos) {
  assert(Factored && static_cast<int>(W.size()) == M);
  if (std::fabs(W[PivotPos]) < SingTol)
    return false;
  Eta E;
  E.Piv = PivotPos;
  E.InvPiv = 1.0 / W[PivotPos];
  E.Start = static_cast<int>(UIdx.size());
  for (int I = 0; I < M; ++I)
    if (I != PivotPos && std::fabs(W[I]) > DropTol) {
      UIdx.push_back(I);
      UVal.push_back(W[I]);
    }
  E.End = static_cast<int>(UIdx.size());
  UpdateEtas.push_back(E);
  return true;
}
