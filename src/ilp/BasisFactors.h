//===- ilp/BasisFactors.h - Factorized simplex basis ------------*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Product-form factorization of a simplex basis as a Gauss-Jordan eta
/// file, with Forrest-Tomlin-style O(basis sparsity) updates after each
/// pivot and periodic refactorization for numerical stability. The
/// revised simplex (Simplex.cpp) represents B^-1 through this class
/// instead of maintaining an explicit tableau: FTRAN solves B x = a_j
/// for the entering column, BTRAN solves B^T y = c_B for pricing, and a
/// basis change appends one eta built from the already-FTRAN'd entering
/// column instead of touching every tableau row.
///
/// Factorization is sparse Gauss-Jordan elimination with a
/// triangularity-seeking pivot order: singleton columns first (their
/// etas are cheapest — scheduling bases are dominated by slack
/// columns), then singleton rows (no other column needs updating), and
/// only the residual "bump" pays for general elimination with fill.
/// On a triangular basis no fill occurs at all. See DESIGN.md "Solver
/// engineering".
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_ILP_BASISFACTORS_H
#define SGPU_ILP_BASISFACTORS_H

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace sgpu {

/// Sparse (row, value) entries of one constraint-matrix column.
using SparseCol = std::vector<std::pair<int, double>>;

/// Product-form factorization of a square basis matrix B. After a
/// successful factor(), ftran/btran apply B^-1 / B^-T in time
/// proportional to the eta file's nonzeros, and update() absorbs one
/// basis change. Callers refactorize when needsRefactor() turns true
/// (eta file grew past its budget) or update() rejects a pivot.
class BasisFactorization {
public:
  /// Produces column \p Col of the constraint matrix (row space) into
  /// \p Out. Entries must carry distinct rows.
  using ColumnFn = std::function<void(int Col, SparseCol &Out)>;

  /// Factorizes the basis whose position-k column is \p BasisCols[k].
  /// Returns false when the basis is (numerically) singular; the
  /// factorization is invalid until the next successful factor().
  bool factor(int NumRows, const std::vector<int> &BasisCols,
              const ColumnFn &Column);

  /// Solves B x = rhs in place. \p X enters in row space (size m) and
  /// leaves in basis-position space: X[k] belongs to BasisCols[k].
  void ftran(std::vector<double> &X);

  /// Solves B^T y = c in place. \p X enters in basis-position space
  /// (X[k] is the cost of BasisCols[k]) and leaves in row space.
  void btran(std::vector<double> &X);

  /// Absorbs the basis change that installs the entering column at
  /// position \p PivotPos. \p W is that column passed through ftran()
  /// (so W[PivotPos] is the pivot element). Returns false when the
  /// pivot is too small to absorb — the caller must refactorize.
  bool update(const std::vector<double> &W, int PivotPos);

  bool valid() const { return Factored; }
  /// True once the eta file outgrew its budget; solves stay correct but
  /// the caller should refactorize at the next convenient point.
  bool needsRefactor() const {
    return static_cast<int>(UpdateEtas.size()) >= MaxUpdates;
  }
  int numUpdates() const { return static_cast<int>(UpdateEtas.size()); }

private:
  /// One elimination step: scale the pivot position by InvPiv, then
  /// subtract the off-diagonal entries in [Start, End) of the pool.
  struct Eta {
    int Piv;
    double InvPiv;
    int Start, End;
  };

  /// Pivots below this magnitude make factor()/update() report failure.
  static constexpr double SingTol = 1e-10;
  /// Eta off-diagonal entries below this are dropped as exact zeros.
  static constexpr double DropTol = 1e-12;
  /// Update-eta budget before needsRefactor() trips.
  static constexpr int MaxUpdates = 64;

  int M = 0;
  bool Factored = false;
  std::vector<Eta> FactorEtas; ///< Row-space etas, applied in order.
  std::vector<int> FIdx;
  std::vector<double> FVal;
  std::vector<Eta> UpdateEtas; ///< Position-space etas, applied after.
  std::vector<int> UIdx;
  std::vector<double> UVal;
  /// PermPos[r] = basis position pivoted at row r: ftran permutes
  /// row-space results into position space through this map.
  std::vector<int> PermPos;
  std::vector<double> Tmp; ///< Permutation scratch.
};

} // namespace sgpu

#endif // SGPU_ILP_BASISFACTORS_H
