//===- ilp/BranchAndBound.cpp - MILP branch & bound --------------------------===//

#include "ilp/BranchAndBound.h"

#include "support/Metrics.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>

using namespace sgpu;

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point T0) {
  return std::chrono::duration<double>(Clock::now() - T0).count();
}

/// One tightened variable bound relative to the root LP.
struct BoundsPatch {
  int Var;
  double Lo, Hi;
};

/// A pending node of the search tree. Patches accumulate root-to-node
/// (later entries override earlier ones for the same variable, and are
/// always tighter). Path records the branch directions taken from the
/// root and serves as the node's deterministic id. Warm carries the
/// parent relaxation's final basis: only bounds changed on the way
/// down, so it stays dual feasible and the child LP is usually a few
/// dual pivots (Simplex.h), independent of which worker runs the node.
struct Subproblem {
  std::vector<BoundsPatch> Patches;
  std::vector<uint8_t> Path;
  SimplexBasis Warm;
};

class BnbSearch {
public:
  BnbSearch(LinearProgram LP, const MilpOptions &Opt)
      : Root(std::move(LP)), Opt(Opt),
        FeasibilityOnly(Root.objective().empty()) {}

  MilpResult run(const std::optional<std::vector<double>> &Incumbent) {
    TraceSpan Span("bnb.solve", "ilp");
    Start = Clock::now();
    int Workers = resolveWorkerCount(Opt.NumWorkers);
    Span.argInt("workers", Workers);
    metricCounter("bnb.solves").add(1);
    metricGauge("bnb.workers").set(Workers);

    if (Incumbent && Root.isFeasible(*Incumbent, Opt.IntegralityTol)) {
      Best = *Incumbent;
      BestObj = Root.objectiveValue(*Incumbent);
      BestPath.clear();
      HaveBest = true;
      if (Opt.StopAtFirstFeasible)
        return finish(MilpResult::Status::Optimal, Workers);
    }

    Deques.resize(Workers);
    for (int W = 0; W < Workers; ++W)
      Deques[W] = std::make_unique<WorkerDeque>();
    {
      Subproblem RootNode;
      RootNode.Warm = Opt.WarmBasis;
      Outstanding.store(1);
      Queued.store(1);
      std::lock_guard<std::mutex> Lock(Deques[0]->Mu);
      Deques[0]->Dq.push_back(std::move(RootNode));
    }
    CEnqueued.add(1);

    if (Workers <= 1) {
      workerLoop(0);
    } else {
      ThreadPool Pool(Workers);
      for (int W = 0; W < Workers; ++W)
        Pool.submit([this, W] { workerLoop(W); });
      Pool.wait();
    }

    bool Complete = Outstanding.load() == 0 && !Truncated && !FoundStop;
    if (HaveBest)
      return finish(Complete ? MilpResult::Status::Optimal
                             : MilpResult::Status::Feasible,
                    Workers);
    return finish(Complete ? MilpResult::Status::Infeasible
                           : MilpResult::Status::BudgetExceeded,
                  Workers);
  }

private:
  struct WorkerDeque {
    std::mutex Mu;
    std::deque<Subproblem> Dq; ///< Owner works the back, thieves the front.
  };

  /// Pops from the worker's own deque (LIFO: the depth-first dive), or
  /// steals the front — the shallowest node, hence the largest stealable
  /// subtree — of a sibling's deque, scanning victims round-robin from
  /// the worker's own index so the scan order is a pure function of the
  /// worker id.
  std::optional<Subproblem> takeWork(int Wi, long long &LocalSteals) {
    {
      WorkerDeque &D = *Deques[Wi];
      std::lock_guard<std::mutex> Lock(D.Mu);
      if (!D.Dq.empty()) {
        Subproblem Node = std::move(D.Dq.back());
        D.Dq.pop_back();
        Queued.fetch_sub(1, std::memory_order_relaxed);
        return Node;
      }
    }
    int W = static_cast<int>(Deques.size());
    for (int Off = 1; Off < W; ++Off) {
      WorkerDeque &V = *Deques[(Wi + Off) % W];
      std::lock_guard<std::mutex> Lock(V.Mu);
      if (!V.Dq.empty()) {
        Subproblem Node = std::move(V.Dq.front());
        V.Dq.pop_front();
        Queued.fetch_sub(1, std::memory_order_relaxed);
        ++LocalSteals;
        CSteals.add(1);
        return Node;
      }
    }
    return std::nullopt;
  }

  /// Each worker owns a private copy of the root LP; subproblem bounds
  /// are applied before the relaxation and restored afterwards.
  void workerLoop(int Wi) {
    TraceSpan Span("bnb.worker", "ilp");
    auto SpanStart = Clock::now();
    LinearProgram LP = Root;
    long long LocalLpSolves = 0, LocalIters = 0, LocalPivots = 0;
    long long LocalNodes = 0, LocalSteals = 0, LocalWarm = 0;
    double LocalIdle = 0.0;

    for (;;) {
      std::optional<Subproblem> Node = takeWork(Wi, LocalSteals);
      if (!Node) {
        auto IdleStart = Clock::now();
        std::unique_lock<std::mutex> Lock(IdleMu);
        if (StopAll.load() || Outstanding.load() == 0)
          break;
        IdleCv.wait(Lock, [this] {
          return StopAll.load() || Outstanding.load() == 0 ||
                 Queued.load(std::memory_order_relaxed) > 0;
        });
        LocalIdle += secondsSince(IdleStart);
        continue;
      }

      processNode(LP, *Node, Wi, LocalLpSolves, LocalIters, LocalPivots,
                  LocalWarm);
      ++LocalNodes;

      if (Outstanding.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> Lock(IdleMu);
        IdleCv.notify_all();
      }
    }
    // Busy time is the drain-loop span minus time spent blocked waiting
    // for work: a worker that never waits — every single-worker search —
    // reads utilization exactly 1.0, and any dip is genuine starvation.
    double SpanSeconds = secondsSince(SpanStart);
    double LocalBusy = std::max(0.0, SpanSeconds - LocalIdle);

    Span.argInt("nodes", LocalNodes);
    Span.argInt("steals", LocalSteals);
    Span.argNum("busy_seconds", LocalBusy);

    std::lock_guard<std::mutex> StatsLock(StatsMu);
    LpSolves += LocalLpSolves;
    SimplexIters += LocalIters;
    SimplexPivots += LocalPivots;
    BusySeconds += LocalBusy;
    WorkerSeconds += SpanSeconds;
    Steals += LocalSteals;
    WarmLpStarts += LocalWarm;
  }

  void processNode(LinearProgram &LP, Subproblem &Node, int Wi,
                   long long &LocalLpSolves, long long &LocalIters,
                   long long &LocalPivots, long long &LocalWarm) {
    if (StopAll)
      return; // Raced with a cut; the caller still decrements Outstanding.
    long long NodeNum = ++Nodes;
    if (NodeNum > Opt.MaxNodes || timedOut()) {
      cutSearch();
      return;
    }

    for (const BoundsPatch &P : Node.Patches)
      LP.setBounds(P.Var, P.Lo, P.Hi);
    evaluate(LP, Node, Wi, LocalLpSolves, LocalIters, LocalPivots, LocalWarm);
    for (const BoundsPatch &P : Node.Patches)
      LP.setBounds(P.Var, Root.lowerBound(P.Var), Root.upperBound(P.Var));
  }

  void evaluate(LinearProgram &LP, Subproblem &Node, int Wi,
                long long &LocalLpSolves, long long &LocalIters,
                long long &LocalPivots, long long &LocalWarm) {
    double Remaining = Opt.TimeBudgetSeconds - secondsSince(Start);
    if (Remaining <= 0) {
      cutSearch();
      return;
    }
    LpResult R =
        solveLpRelaxation(LP, Opt.LpIterationLimit, Remaining,
                          Node.Warm.empty() ? nullptr : &Node.Warm);
    ++LocalLpSolves;
    LocalIters += R.Iterations;
    LocalPivots += R.Pivots;
    if (!Node.Warm.empty() && R.StartKind != LpResult::Start::Cold)
      ++LocalWarm;
    CSolved.add(1);
    if (R.Status == LpStatus::Infeasible) {
      CPrunedInfeas.add(1);
      return; // Pruned exactly.
    }
    if (R.Status != LpStatus::Optimal) {
      // Numerical trouble: give up on proving this subtree.
      Truncated = true;
      return;
    }

    // Bound pruning against the shared incumbent. Feasibility-only
    // models (empty objective) are pruned by the first-found incumbent:
    // no node can improve on an objective of zero.
    {
      std::lock_guard<std::mutex> Lock(IncumbentMu);
      if (HaveBest &&
          (FeasibilityOnly || R.Objective >= BestObj - Opt.BoundPruneTol)) {
        CPrunedBound.add(1);
        return;
      }
    }

    // Find the most fractional integer variable.
    int BranchVar = -1;
    double BestFrac = Opt.IntegralityTol;
    for (int V = 0; V < LP.numVars(); ++V) {
      if (!LP.isIntegral(V))
        continue;
      double F = R.X[V] - std::floor(R.X[V]);
      double Dist = std::min(F, 1.0 - F);
      if (Dist > BestFrac) {
        BestFrac = Dist;
        BranchVar = V;
      }
    }

    if (BranchVar < 0) {
      // Integral solution. Round integer vars exactly.
      std::vector<double> X = R.X;
      for (int V = 0; V < LP.numVars(); ++V)
        if (LP.isIntegral(V))
          X[V] = std::round(X[V]);
      if (LP.isFeasible(X, 1e-5)) {
        double Obj = LP.objectiveValue(X);
        offerIncumbent(std::move(X), Obj, Node.Path);
      }
      // Either way this subtree is fully explored.
      return;
    }

    double Val = R.X[BranchVar];
    double Lo = LP.lowerBound(BranchVar);
    double Hi = LP.upperBound(BranchVar);

    // Branch down (x <= floor) and up (x >= ceil). For 0-1 assignment
    // problems the side nearer the fractional value finds schedules
    // faster, so it is explored first: pushed last, popped first. Both
    // children inherit this node's final basis as their warm start.
    bool UpFirst = Val - std::floor(Val) >= 0.5;
    int Pushed = 0;
    Subproblem Children[2];
    for (int Side = 1; Side >= 0; --Side) {
      bool Up = (Side == 0) == UpFirst;
      double NewLo = Up ? std::ceil(Val - Opt.IntegralityTol) : Lo;
      double NewHi = Up ? Hi : std::floor(Val + Opt.IntegralityTol);
      if (NewLo > NewHi + 1e-12)
        continue;
      Subproblem &Child = Children[Pushed];
      Child.Patches = Node.Patches;
      Child.Patches.push_back({BranchVar, NewLo, NewHi});
      Child.Path = Node.Path;
      Child.Path.push_back(Up ? 1 : 0);
      ++Pushed;
    }
    if (Pushed == 0)
      return;
    // Reuse the basis without copying where possible.
    if (Pushed == 2)
      Children[0].Warm = R.Basis;
    Children[Pushed - 1].Warm = std::move(R.Basis);

    Outstanding.fetch_add(Pushed);
    Queued.fetch_add(Pushed, std::memory_order_relaxed);
    {
      WorkerDeque &D = *Deques[Wi];
      std::lock_guard<std::mutex> Lock(D.Mu);
      for (int I = 0; I < Pushed; ++I)
        D.Dq.push_back(std::move(Children[I]));
    }
    CEnqueued.add(Pushed);
    if (static_cast<int>(Deques.size()) > 1) {
      std::lock_guard<std::mutex> Lock(IdleMu);
      IdleCv.notify_all();
    }
  }

  /// Installs a new incumbent under the shared lock. Ties on objective
  /// break towards the lexicographically smallest branch path, so the
  /// reported objective — and, when the search runs to completion, the
  /// chosen incumbent — do not depend on worker timing or steal order.
  void offerIncumbent(std::vector<double> X, double Obj,
                      const std::vector<uint8_t> &Path) {
    std::lock_guard<std::mutex> Lock(IncumbentMu);
    bool Better = !HaveBest || Obj < BestObj - 1e-12 ||
                  (Obj <= BestObj + 1e-12 && Path < BestPath);
    if (Better) {
      Best = std::move(X);
      BestObj = Obj;
      BestPath = Path;
      HaveBest = true;
      CIncumbents.add(1);
    }
    if (Opt.StopAtFirstFeasible) {
      FoundStop = true;
      cutSearch();
    }
  }

  /// Stops all workers: pending subproblems in every deque are dropped
  /// (the search is recorded as truncated unless the stop came from
  /// StopAtFirstFeasible).
  void cutSearch() {
    if (!FoundStop)
      Truncated = true;
    bool First = !StopAll.exchange(true);
    long long Dropped = 0;
    for (auto &D : Deques) {
      std::lock_guard<std::mutex> Lock(D->Mu);
      Dropped += static_cast<long long>(D->Dq.size());
      D->Dq.clear();
    }
    if (Dropped > 0) {
      Outstanding.fetch_sub(Dropped);
      Queued.fetch_sub(Dropped, std::memory_order_relaxed);
    }
    if (First)
      CCuts.add(1);
    {
      std::lock_guard<std::mutex> Lock(IdleMu);
    }
    IdleCv.notify_all();
  }

  bool timedOut() const { return secondsSince(Start) > Opt.TimeBudgetSeconds; }

  MilpResult finish(MilpResult::Status S, int Workers) {
    MilpResult Res;
    Res.Outcome = S;
    Res.NodesExplored = static_cast<int>(Nodes.load());
    Res.Seconds = secondsSince(Start);
    Res.LpSolves = static_cast<int>(LpSolves);
    Res.SimplexIterations = SimplexIters;
    Res.Pivots = SimplexPivots;
    Res.WorkersUsed = Workers;
    Res.BusySeconds = BusySeconds;
    Res.WorkerSeconds = WorkerSeconds;
    Res.Steals = Steals;
    Res.WarmLpStarts = WarmLpStarts;
    metricHistogram("bnb.solve.seconds").record(Res.Seconds);
    metricHistogram("bnb.busy.seconds").record(BusySeconds);
    metricHistogram("bnb.worker.seconds").record(WorkerSeconds);
    if (HaveBest) {
      Res.X = Best;
      Res.Objective = BestObj;
      if (S == MilpResult::Status::Infeasible ||
          S == MilpResult::Status::BudgetExceeded)
        Res.Outcome = MilpResult::Status::Feasible;
    }
    return Res;
  }

  LinearProgram Root;
  MilpOptions Opt;
  bool FeasibilityOnly;
  Clock::time_point Start;

  // Work-stealing deques, one per worker. Outstanding counts queued +
  // in-flight nodes across all deques; the search is drained when it
  // reaches zero. Queued is a wake hint for idle workers.
  std::vector<std::unique_ptr<WorkerDeque>> Deques;
  std::atomic<long long> Outstanding{0};
  std::atomic<long long> Queued{0};
  std::mutex IdleMu;
  std::condition_variable IdleCv;
  std::atomic<bool> StopAll{false};

  // Shared incumbent.
  std::mutex IncumbentMu;
  bool HaveBest = false;
  std::vector<double> Best;
  std::vector<uint8_t> BestPath;
  double BestObj = 0.0;

  std::atomic<long long> Nodes{0};
  std::atomic<bool> Truncated{false};
  std::atomic<bool> FoundStop{false};

  std::mutex StatsMu;
  long long LpSolves = 0, SimplexIters = 0, SimplexPivots = 0;
  long long Steals = 0, WarmLpStarts = 0;
  double BusySeconds = 0.0;
  double WorkerSeconds = 0.0;

  // Node-lifecycle counters in the process-wide registry. Looked up once
  // per search; the references stay valid across MetricsRegistry::reset().
  Counter &CEnqueued = metricCounter("bnb.nodes_enqueued");
  Counter &CSolved = metricCounter("bnb.nodes_solved");
  Counter &CPrunedInfeas = metricCounter("bnb.pruned_infeasible");
  Counter &CPrunedBound = metricCounter("bnb.pruned_bound");
  Counter &CIncumbents = metricCounter("bnb.incumbents");
  Counter &CCuts = metricCounter("bnb.budget_cuts");
  Counter &CSteals = metricCounter("bnb.steals");
};

} // namespace

MilpResult sgpu::solveMilp(LinearProgram LP, const MilpOptions &Options,
                           const std::optional<std::vector<double>> &Incumbent) {
  BnbSearch S(std::move(LP), Options);
  return S.run(Incumbent);
}
