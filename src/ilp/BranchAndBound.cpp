//===- ilp/BranchAndBound.cpp - MILP branch & bound --------------------------===//

#include "ilp/BranchAndBound.h"

#include "support/Metrics.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <mutex>

using namespace sgpu;

namespace {

using Clock = std::chrono::steady_clock;

/// One tightened variable bound relative to the root LP.
struct BoundsPatch {
  int Var;
  double Lo, Hi;
};

/// A pending node of the search tree. Patches accumulate root-to-node
/// (later entries override earlier ones for the same variable, and are
/// always tighter). Path records the branch directions taken from the
/// root and serves as the node's deterministic id.
struct Subproblem {
  std::vector<BoundsPatch> Patches;
  std::vector<uint8_t> Path;
};

class BnbSearch {
public:
  BnbSearch(LinearProgram LP, const MilpOptions &Opt)
      : Root(std::move(LP)), Opt(Opt),
        FeasibilityOnly(Root.objective().empty()) {}

  MilpResult run(const std::optional<std::vector<double>> &Incumbent) {
    TraceSpan Span("bnb.solve", "ilp");
    Start = Clock::now();
    int Workers = resolveWorkerCount(Opt.NumWorkers);
    Span.argInt("workers", Workers);
    metricCounter("bnb.solves").add(1);
    metricGauge("bnb.workers").set(Workers);

    if (Incumbent && Root.isFeasible(*Incumbent, Opt.IntegralityTol)) {
      Best = *Incumbent;
      BestObj = Root.objectiveValue(*Incumbent);
      BestPath.clear();
      HaveBest = true;
      if (Opt.StopAtFirstFeasible)
        return finish(MilpResult::Status::Optimal, Workers);
    }

    {
      std::lock_guard<std::mutex> Lock(QueueMu);
      Queue.push_back(Subproblem{});
      Outstanding = 1;
    }
    CEnqueued.add(1);

    if (Workers <= 1) {
      workerLoop();
    } else {
      ThreadPool Pool(Workers);
      for (int W = 0; W < Workers; ++W)
        Pool.submit([this] { workerLoop(); });
      Pool.wait();
    }

    bool Complete;
    {
      std::lock_guard<std::mutex> Lock(QueueMu);
      Complete = Queue.empty() && Outstanding == 0 && !Truncated && !FoundStop;
    }
    if (HaveBest)
      return finish(Complete ? MilpResult::Status::Optimal
                             : MilpResult::Status::Feasible,
                    Workers);
    return finish(Complete ? MilpResult::Status::Infeasible
                           : MilpResult::Status::BudgetExceeded,
                  Workers);
  }

private:
  /// Each worker owns a private copy of the root LP; subproblem bounds
  /// are applied before the relaxation and restored afterwards.
  void workerLoop() {
    TraceSpan Span("bnb.worker", "ilp");
    LinearProgram LP = Root;
    long long LocalLpSolves = 0, LocalIters = 0, LocalPivots = 0;
    long long LocalNodes = 0;
    double LocalBusy = 0.0;

    std::unique_lock<std::mutex> Lock(QueueMu);
    for (;;) {
      QueueCv.wait(Lock, [this] {
        return StopAll || !Queue.empty() || Outstanding == 0;
      });
      if (Queue.empty()) {
        if (StopAll || Outstanding == 0)
          break;
        continue;
      }
      // LIFO: with one worker this reproduces depth-first diving; with
      // several it keeps the frontier small and memory bounded.
      Subproblem Node = std::move(Queue.back());
      Queue.pop_back();
      Lock.unlock();

      auto NodeStart = Clock::now();
      processNode(LP, Node, LocalLpSolves, LocalIters, LocalPivots);
      ++LocalNodes;
      LocalBusy += std::chrono::duration<double>(Clock::now() - NodeStart)
                       .count();

      Lock.lock();
      if (--Outstanding == 0 || StopAll)
        QueueCv.notify_all();
    }
    Lock.unlock();

    Span.argInt("nodes", LocalNodes);
    Span.argNum("busy_seconds", LocalBusy);

    std::lock_guard<std::mutex> StatsLock(StatsMu);
    LpSolves += LocalLpSolves;
    SimplexIters += LocalIters;
    SimplexPivots += LocalPivots;
    BusySeconds += LocalBusy;
  }

  void processNode(LinearProgram &LP, const Subproblem &Node,
                   long long &LocalLpSolves, long long &LocalIters,
                   long long &LocalPivots) {
    if (StopAll)
      return; // Raced with a cut; the caller still decrements Outstanding.
    long long NodeNum = ++Nodes;
    if (NodeNum > Opt.MaxNodes || timedOut()) {
      cutSearch();
      return;
    }

    for (const BoundsPatch &P : Node.Patches)
      LP.setBounds(P.Var, P.Lo, P.Hi);
    evaluate(LP, Node, LocalLpSolves, LocalIters, LocalPivots);
    for (const BoundsPatch &P : Node.Patches)
      LP.setBounds(P.Var, Root.lowerBound(P.Var), Root.upperBound(P.Var));
  }

  void evaluate(LinearProgram &LP, const Subproblem &Node,
                long long &LocalLpSolves, long long &LocalIters,
                long long &LocalPivots) {
    double Remaining = Opt.TimeBudgetSeconds -
                       std::chrono::duration<double>(Clock::now() - Start)
                           .count();
    if (Remaining <= 0) {
      cutSearch();
      return;
    }
    LpResult R = solveLpRelaxation(LP, Opt.LpIterationLimit, Remaining);
    ++LocalLpSolves;
    LocalIters += R.Iterations;
    LocalPivots += R.Pivots;
    CSolved.add(1);
    if (R.Status == LpStatus::Infeasible) {
      CPrunedInfeas.add(1);
      return; // Pruned exactly.
    }
    if (R.Status != LpStatus::Optimal) {
      // Numerical trouble: give up on proving this subtree.
      Truncated = true;
      return;
    }

    // Bound pruning against the shared incumbent. Feasibility-only
    // models (empty objective) are pruned by the first-found incumbent:
    // no node can improve on an objective of zero.
    {
      std::lock_guard<std::mutex> Lock(IncumbentMu);
      if (HaveBest &&
          (FeasibilityOnly || R.Objective >= BestObj - Opt.BoundPruneTol)) {
        CPrunedBound.add(1);
        return;
      }
    }

    // Find the most fractional integer variable.
    int BranchVar = -1;
    double BestFrac = Opt.IntegralityTol;
    for (int V = 0; V < LP.numVars(); ++V) {
      if (!LP.isIntegral(V))
        continue;
      double F = R.X[V] - std::floor(R.X[V]);
      double Dist = std::min(F, 1.0 - F);
      if (Dist > BestFrac) {
        BestFrac = Dist;
        BranchVar = V;
      }
    }

    if (BranchVar < 0) {
      // Integral solution. Round integer vars exactly.
      std::vector<double> X = R.X;
      for (int V = 0; V < LP.numVars(); ++V)
        if (LP.isIntegral(V))
          X[V] = std::round(X[V]);
      if (LP.isFeasible(X, 1e-5)) {
        double Obj = LP.objectiveValue(X);
        offerIncumbent(std::move(X), Obj, Node.Path);
      }
      // Either way this subtree is fully explored.
      return;
    }

    double Val = R.X[BranchVar];
    double Lo = LP.lowerBound(BranchVar);
    double Hi = LP.upperBound(BranchVar);

    // Branch down (x <= floor) and up (x >= ceil). For 0-1 assignment
    // problems the side nearer the fractional value finds schedules
    // faster, so it is explored first: pushed last, popped first.
    bool UpFirst = Val - std::floor(Val) >= 0.5;
    int Pushed = 0;
    std::unique_lock<std::mutex> Lock(QueueMu, std::defer_lock);
    for (int Side = 1; Side >= 0; --Side) {
      bool Up = (Side == 0) == UpFirst;
      double NewLo = Up ? std::ceil(Val - Opt.IntegralityTol) : Lo;
      double NewHi = Up ? Hi : std::floor(Val + Opt.IntegralityTol);
      if (NewLo > NewHi + 1e-12)
        continue;
      Subproblem Child;
      Child.Patches = Node.Patches;
      Child.Patches.push_back({BranchVar, NewLo, NewHi});
      Child.Path = Node.Path;
      Child.Path.push_back(Up ? 1 : 0);
      if (!Lock.owns_lock())
        Lock.lock();
      Queue.push_back(std::move(Child));
      ++Outstanding;
      ++Pushed;
    }
    if (Lock.owns_lock())
      Lock.unlock();
    if (Pushed > 0) {
      CEnqueued.add(Pushed);
      QueueCv.notify_all();
    }
  }

  /// Installs a new incumbent under the shared lock. Ties on objective
  /// break towards the lexicographically smallest branch path, so the
  /// reported objective — and, when the search runs to completion, the
  /// chosen incumbent — do not depend on worker timing.
  void offerIncumbent(std::vector<double> X, double Obj,
                      const std::vector<uint8_t> &Path) {
    std::lock_guard<std::mutex> Lock(IncumbentMu);
    bool Better = !HaveBest || Obj < BestObj - 1e-12 ||
                  (Obj <= BestObj + 1e-12 && Path < BestPath);
    if (Better) {
      Best = std::move(X);
      BestObj = Obj;
      BestPath = Path;
      HaveBest = true;
      CIncumbents.add(1);
    }
    if (Opt.StopAtFirstFeasible) {
      FoundStop = true;
      cutSearch();
    }
  }

  /// Stops all workers: pending subproblems are dropped (the search is
  /// recorded as truncated unless the stop came from StopAtFirstFeasible).
  void cutSearch() {
    if (!FoundStop)
      Truncated = true;
    std::lock_guard<std::mutex> Lock(QueueMu);
    Outstanding -= static_cast<long long>(Queue.size());
    Queue.clear();
    if (!StopAll)
      CCuts.add(1);
    StopAll = true;
    QueueCv.notify_all();
  }

  bool timedOut() const {
    return std::chrono::duration<double>(Clock::now() - Start).count() >
           Opt.TimeBudgetSeconds;
  }

  MilpResult finish(MilpResult::Status S, int Workers) {
    MilpResult Res;
    Res.Outcome = S;
    Res.NodesExplored = static_cast<int>(Nodes.load());
    Res.Seconds = std::chrono::duration<double>(Clock::now() - Start).count();
    Res.LpSolves = static_cast<int>(LpSolves);
    Res.SimplexIterations = SimplexIters;
    Res.Pivots = SimplexPivots;
    Res.WorkersUsed = Workers;
    Res.BusySeconds = BusySeconds;
    metricHistogram("bnb.solve.seconds").record(Res.Seconds);
    metricHistogram("bnb.busy.seconds").record(BusySeconds);
    if (HaveBest) {
      Res.X = Best;
      Res.Objective = BestObj;
      if (S == MilpResult::Status::Infeasible ||
          S == MilpResult::Status::BudgetExceeded)
        Res.Outcome = MilpResult::Status::Feasible;
    }
    return Res;
  }

  LinearProgram Root;
  MilpOptions Opt;
  bool FeasibilityOnly;
  Clock::time_point Start;

  // Subproblem queue. Outstanding counts queued + in-flight nodes; the
  // search is drained when it reaches zero.
  std::mutex QueueMu;
  std::condition_variable QueueCv;
  std::vector<Subproblem> Queue;
  long long Outstanding = 0;
  std::atomic<bool> StopAll{false};

  // Shared incumbent.
  std::mutex IncumbentMu;
  bool HaveBest = false;
  std::vector<double> Best;
  std::vector<uint8_t> BestPath;
  double BestObj = 0.0;

  std::atomic<long long> Nodes{0};
  std::atomic<bool> Truncated{false};
  std::atomic<bool> FoundStop{false};

  std::mutex StatsMu;
  long long LpSolves = 0, SimplexIters = 0, SimplexPivots = 0;
  double BusySeconds = 0.0;

  // Node-lifecycle counters in the process-wide registry. Looked up once
  // per search; the references stay valid across MetricsRegistry::reset().
  Counter &CEnqueued = metricCounter("bnb.nodes_enqueued");
  Counter &CSolved = metricCounter("bnb.nodes_solved");
  Counter &CPrunedInfeas = metricCounter("bnb.pruned_infeasible");
  Counter &CPrunedBound = metricCounter("bnb.pruned_bound");
  Counter &CIncumbents = metricCounter("bnb.incumbents");
  Counter &CCuts = metricCounter("bnb.budget_cuts");
};

} // namespace

MilpResult sgpu::solveMilp(LinearProgram LP, const MilpOptions &Options,
                           const std::optional<std::vector<double>> &Incumbent) {
  BnbSearch S(std::move(LP), Options);
  return S.run(Incumbent);
}
