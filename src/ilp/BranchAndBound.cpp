//===- ilp/BranchAndBound.cpp - MILP branch & bound --------------------------===//

#include "ilp/BranchAndBound.h"

#include <chrono>
#include <cmath>

using namespace sgpu;

namespace {

using Clock = std::chrono::steady_clock;

struct BoundsPatch {
  int Var;
  double Lo, Hi;
};

class BnbSearch {
public:
  BnbSearch(LinearProgram LP, const MilpOptions &Opt) : LP(std::move(LP)),
                                                        Opt(Opt) {}

  MilpResult run(const std::optional<std::vector<double>> &Incumbent) {
    Start = Clock::now();
    if (Incumbent && LP.isFeasible(*Incumbent, Opt.IntegralityTol)) {
      Best = *Incumbent;
      BestObj = LP.objectiveValue(*Incumbent);
      HaveBest = true;
      if (Opt.StopAtFirstFeasible)
        return finish(MilpResult::Status::Optimal);
    }
    bool Complete = dive();
    if (HaveBest)
      return finish(Complete ? MilpResult::Status::Optimal
                             : MilpResult::Status::Feasible);
    return finish(Complete ? MilpResult::Status::Infeasible
                           : MilpResult::Status::BudgetExceeded);
  }

private:
  /// Depth-first search. Returns true when the subtree was fully explored
  /// (so absence of an incumbent proves infeasibility).
  bool dive() {
    ++Nodes;
    if (Nodes > Opt.MaxNodes || timedOut())
      return false;

    double Remaining = Opt.TimeBudgetSeconds -
                       std::chrono::duration<double>(Clock::now() - Start)
                           .count();
    if (Remaining <= 0)
      return false;
    LpResult R = solveLpRelaxation(LP, Opt.LpIterationLimit, Remaining);
    if (R.Status == LpStatus::Infeasible)
      return true; // Pruned exactly.
    if (R.Status != LpStatus::Optimal)
      return false; // Numerical trouble: give up on proving this subtree.

    // Bound pruning.
    if (HaveBest && R.Objective >= BestObj - 1e-9 &&
        !LP.objective().empty())
      return true;

    // Find the most fractional integer variable.
    int BranchVar = -1;
    double BestFrac = Opt.IntegralityTol;
    for (int V = 0; V < LP.numVars(); ++V) {
      if (!LP.isIntegral(V))
        continue;
      double F = R.X[V] - std::floor(R.X[V]);
      double Dist = std::min(F, 1.0 - F);
      if (Dist > BestFrac) {
        BestFrac = Dist;
        BranchVar = V;
      }
    }

    if (BranchVar < 0) {
      // Integral solution. Round integer vars exactly.
      std::vector<double> X = R.X;
      for (int V = 0; V < LP.numVars(); ++V)
        if (LP.isIntegral(V))
          X[V] = std::round(X[V]);
      if (LP.isFeasible(X, 1e-5)) {
        double Obj = LP.objectiveValue(X);
        if (!HaveBest || Obj < BestObj) {
          Best = std::move(X);
          BestObj = Obj;
          HaveBest = true;
        }
        if (Opt.StopAtFirstFeasible)
          FoundStop = true;
        return true;
      }
      // LP numerics lied; treat as explored.
      return true;
    }

    double Val = R.X[BranchVar];
    double Lo = LP.lowerBound(BranchVar);
    double Hi = LP.upperBound(BranchVar);

    // Branch down first (x <= floor), then up (x >= ceil). For 0-1
    // assignment problems branching up first often finds schedules
    // faster, so pick the side nearer the fractional value first.
    bool UpFirst = Val - std::floor(Val) >= 0.5;
    bool Complete = true;
    for (int Side = 0; Side < 2; ++Side) {
      bool Up = (Side == 0) == UpFirst;
      double NewLo = Up ? std::ceil(Val - Opt.IntegralityTol) : Lo;
      double NewHi = Up ? Hi : std::floor(Val + Opt.IntegralityTol);
      if (NewLo > NewHi + 1e-12)
        continue;
      LP.setBounds(BranchVar, NewLo, NewHi);
      bool SubComplete = dive();
      LP.setBounds(BranchVar, Lo, Hi);
      Complete = Complete && SubComplete;
      if (FoundStop || timedOut() || Nodes > Opt.MaxNodes)
        break;
    }
    return Complete && !FoundStop;
  }

  bool timedOut() const {
    return std::chrono::duration<double>(Clock::now() - Start).count() >
           Opt.TimeBudgetSeconds;
  }

  MilpResult finish(MilpResult::Status S) {
    MilpResult Res;
    Res.Outcome = S;
    Res.NodesExplored = Nodes;
    Res.Seconds = std::chrono::duration<double>(Clock::now() - Start).count();
    if (HaveBest) {
      Res.X = Best;
      Res.Objective = BestObj;
      if (S == MilpResult::Status::Infeasible ||
          S == MilpResult::Status::BudgetExceeded)
        Res.Outcome = MilpResult::Status::Feasible;
    }
    return Res;
  }

  LinearProgram LP;
  MilpOptions Opt;
  Clock::time_point Start;
  int Nodes = 0;
  bool HaveBest = false;
  bool FoundStop = false;
  std::vector<double> Best;
  double BestObj = 0.0;
};

} // namespace

MilpResult sgpu::solveMilp(LinearProgram LP, const MilpOptions &Options,
                           const std::optional<std::vector<double>> &Incumbent) {
  BnbSearch S(std::move(LP), Options);
  return S.run(Incumbent);
}
