//===- ilp/BranchAndBound.h - MILP branch & bound ----------------*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Branch & bound over the LP relaxation, with a wall-clock budget. The
/// paper allots CPLEX 20 seconds per candidate II and relaxes the II by
/// 0.5% on timeout (Section V); IlpScheduler drives this solver through
/// the same loop. An incumbent can be injected (from the heuristic
/// scheduler) so the search starts with a bound and, for pure
/// feasibility problems, can return immediately.
///
/// Each worker owns a deque of subproblems drained LIFO (depth-first
/// dive; a single worker reproduces the serial order exactly) and
/// steals the shallowest — largest — subtree from a sibling when its
/// own deque runs dry, so deep dives spawn stealable work instead of
/// funnelling through one shared queue. Every node carries its parent's
/// optimal basis: bound changes leave the basis dual feasible, so the
/// child's relaxation is a few dual simplex pivots instead of a solve
/// from scratch (Simplex.h).
///
/// The incumbent is shared under a mutex so bound pruning on any worker
/// sees the best objective found anywhere. Every subproblem carries its
/// branch path as a deterministic node id: among equal-objective
/// incumbents the lexicographically smallest path wins, making the
/// reported objective (and, for exhaustive searches, the incumbent
/// choice) independent of worker timing and steal order. Time/node
/// budgets are global across workers.
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_ILP_BRANCHANDBOUND_H
#define SGPU_ILP_BRANCHANDBOUND_H

#include "ilp/Simplex.h"

#include <optional>

namespace sgpu {

/// Knobs for the MILP search.
struct MilpOptions {
  double TimeBudgetSeconds = 2.0;  ///< Wall-clock budget (paper: 20 s).
  int MaxNodes = 200000;           ///< Branch & bound node cap (global).
  int LpIterationLimit = 50000;    ///< Simplex iteration cap per node.
  double IntegralityTol = 1e-6;
  /// Slack when pruning a node whose relaxation bound cannot beat the
  /// incumbent: prune when bound >= incumbent - BoundPruneTol.
  double BoundPruneTol = 1e-9;
  /// Stop at the first integral feasible solution (the paper's
  /// formulation "is a constraint problem, rather than an optimization
  /// problem" — Section IV-B).
  bool StopAtFirstFeasible = true;
  /// Workers draining the subproblem deques. 1 keeps the search on the
  /// calling thread; 0 resolves via SGPU_JOBS / hardware_concurrency.
  int NumWorkers = 1;
  /// Warm-start basis for the root relaxation (e.g. the II search's
  /// seed solve at MII); empty means a cold root. Children always
  /// inherit their parent's final basis regardless.
  SimplexBasis WarmBasis;
};

/// Result of a MILP solve.
struct MilpResult {
  enum class Status : uint8_t {
    Optimal,       ///< Proven optimal (or feasible when feasibility-only).
    Feasible,      ///< Incumbent found but search was cut short.
    Infeasible,    ///< Proven infeasible.
    BudgetExceeded ///< No incumbent before hitting a limit.
  };

  Status Outcome = Status::BudgetExceeded;
  std::vector<double> X;
  double Objective = 0.0;
  int NodesExplored = 0;
  double Seconds = 0.0;

  // Solver-core telemetry, aggregated across all workers.
  int LpSolves = 0;               ///< LP relaxations solved.
  long long SimplexIterations = 0; ///< Simplex iterations (flips included).
  long long Pivots = 0;           ///< Simplex basis changes.
  int WorkersUsed = 1;            ///< Workers that drained the deques.
  /// Sum over workers of time spent processing subproblems.
  double BusySeconds = 0.0;
  /// Sum over workers of each worker's wall-clock span inside its drain
  /// loop (ramp-up/steal/drain idle included); utilization is
  /// BusySeconds / WorkerSeconds, which reads 1.0 for a single worker.
  double WorkerSeconds = 0.0;
  long long Steals = 0;        ///< Subproblems taken from another deque.
  long long WarmLpStarts = 0;  ///< Node LPs warm-started (incl. repaired).

  bool hasSolution() const {
    return Outcome == Status::Optimal || Outcome == Status::Feasible;
  }
};

/// Solves \p LP to integrality. \p Incumbent, when given and feasible,
/// seeds the search (and satisfies StopAtFirstFeasible immediately).
MilpResult solveMilp(LinearProgram LP, const MilpOptions &Options = {},
                     const std::optional<std::vector<double>> &Incumbent =
                         std::nullopt);

} // namespace sgpu

#endif // SGPU_ILP_BRANCHANDBOUND_H
