//===- ilp/LinearProgram.cpp - MILP model representation --------------------===//

#include "ilp/LinearProgram.h"

#include <cmath>

using namespace sgpu;

int LinearProgram::addVar(const std::string &Name, double LoV, double HiV,
                          VarDomain Domain) {
  assert(LoV <= HiV && "empty variable domain");
  Domains.push_back(Domain);
  Lo.push_back(LoV);
  Hi.push_back(HiV);
  Names.push_back(Name);
  return numVars() - 1;
}

int LinearProgram::addConstraint(std::vector<LinTerm> Terms, RowSense Sense,
                                 double Rhs, const std::string &Name) {
  for ([[maybe_unused]] const LinTerm &T : Terms)
    assert(T.Var >= 0 && T.Var < numVars() && "term references unknown var");
  RowConstraint R;
  R.Terms = std::move(Terms);
  R.Sense = Sense;
  R.Rhs = Rhs;
  R.Name = Name;
  Rows.push_back(std::move(R));
  return numConstraints() - 1;
}

double LinearProgram::objectiveValue(const std::vector<double> &X) const {
  double V = 0.0;
  for (const LinTerm &T : Objective)
    V += T.Coef * X[T.Var];
  return V;
}

bool LinearProgram::isFeasible(const std::vector<double> &X,
                               double Tol) const {
  if (X.size() != static_cast<size_t>(numVars()))
    return false;
  for (int V = 0; V < numVars(); ++V) {
    if (X[V] < Lo[V] - Tol || X[V] > Hi[V] + Tol)
      return false;
    if (isIntegral(V) && std::fabs(X[V] - std::round(X[V])) > Tol)
      return false;
  }
  for (const RowConstraint &R : Rows) {
    double S = 0.0;
    for (const LinTerm &T : R.Terms)
      S += T.Coef * X[T.Var];
    switch (R.Sense) {
    case RowSense::LE:
      if (S > R.Rhs + Tol)
        return false;
      break;
    case RowSense::GE:
      if (S < R.Rhs - Tol)
        return false;
      break;
    case RowSense::EQ:
      if (std::fabs(S - R.Rhs) > Tol)
        return false;
      break;
    }
  }
  return true;
}
