//===- ilp/LinearProgram.h - MILP model representation ----------*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A mixed integer linear program: bounded variables, linear row
/// constraints and an optional linear objective. The paper hands its
/// scheduling formulation (Section III) to CPLEX; this model plus
/// Simplex.h / BranchAndBound.h is our self-contained replacement.
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_ILP_LINEARPROGRAM_H
#define SGPU_ILP_LINEARPROGRAM_H

#include <cassert>
#include <limits>
#include <string>
#include <vector>

namespace sgpu {

/// Variable domains.
enum class VarDomain : uint8_t {
  Continuous, ///< Real within bounds.
  Integer,    ///< Integral within bounds.
  Binary      ///< {0, 1}.
};

/// Constraint senses.
enum class RowSense : uint8_t { LE, GE, EQ };

/// One linear term: coefficient times variable.
struct LinTerm {
  int Var;
  double Coef;
};

/// One row constraint: sum of terms (sense) rhs.
struct RowConstraint {
  std::vector<LinTerm> Terms;
  RowSense Sense = RowSense::LE;
  double Rhs = 0.0;
  std::string Name;
};

/// A MILP model under construction.
class LinearProgram {
public:
  static constexpr double Infinity = std::numeric_limits<double>::infinity();

  /// Adds a variable, returning its index.
  int addVar(const std::string &Name, double Lo, double Hi,
             VarDomain Domain);

  int addBinaryVar(const std::string &Name) {
    return addVar(Name, 0.0, 1.0, VarDomain::Binary);
  }
  int addIntVar(const std::string &Name, double Lo, double Hi) {
    return addVar(Name, Lo, Hi, VarDomain::Integer);
  }
  int addContinuousVar(const std::string &Name, double Lo, double Hi) {
    return addVar(Name, Lo, Hi, VarDomain::Continuous);
  }

  /// Adds a row constraint, returning its index.
  int addConstraint(std::vector<LinTerm> Terms, RowSense Sense, double Rhs,
                    const std::string &Name = "");

  /// Sets the (minimization) objective; empty means pure feasibility.
  void setObjective(std::vector<LinTerm> Terms) {
    Objective = std::move(Terms);
  }

  int numVars() const { return static_cast<int>(Domains.size()); }
  int numConstraints() const { return static_cast<int>(Rows.size()); }

  const std::vector<RowConstraint> &rows() const { return Rows; }
  const std::vector<LinTerm> &objective() const { return Objective; }
  VarDomain domain(int Var) const { return Domains[Var]; }
  double lowerBound(int Var) const { return Lo[Var]; }
  double upperBound(int Var) const { return Hi[Var]; }
  const std::string &varName(int Var) const { return Names[Var]; }

  /// Tightens a variable's bounds (used by branch & bound).
  void setBounds(int Var, double NewLo, double NewHi) {
    Lo[Var] = NewLo;
    Hi[Var] = NewHi;
  }

  bool isIntegral(int Var) const {
    return Domains[Var] != VarDomain::Continuous;
  }

  /// Evaluates the objective at \p X.
  double objectiveValue(const std::vector<double> &X) const;

  /// Returns true if \p X satisfies all rows and bounds within \p Tol
  /// (integrality of integer variables included).
  bool isFeasible(const std::vector<double> &X, double Tol = 1e-6) const;

private:
  std::vector<VarDomain> Domains;
  std::vector<double> Lo, Hi;
  std::vector<std::string> Names;
  std::vector<RowConstraint> Rows;
  std::vector<LinTerm> Objective;
};

} // namespace sgpu

#endif // SGPU_ILP_LINEARPROGRAM_H
