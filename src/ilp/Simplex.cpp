//===- ilp/Simplex.cpp - Bounded-variable primal simplex --------------------===//

#include "ilp/Simplex.h"

#include "support/Check.h"
#include "support/Metrics.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <vector>

using namespace sgpu;

namespace {

constexpr double Eps = 1e-7;
constexpr double Inf = LinearProgram::Infinity;
/// Entries below this magnitude are treated as exact zeros when the
/// pivot update sweeps the pivot row's support.
constexpr double DropTol = 1e-12;

/// Column-major sparse copy of the structural part of A. Slack columns
/// are unit vectors and artificials are created on demand, so only the
/// structural columns need explicit storage.
struct SparseColumns {
  std::vector<int> Start; ///< Column J's entries are [Start[J], Start[J+1]).
  std::vector<int> Row;
  std::vector<double> Val;

  void build(const LinearProgram &LP) {
    int NumStruct = LP.numVars();
    int NumRows = LP.numConstraints();
    // Combine duplicate (row, var) terms through a dense scratch row.
    std::vector<double> Scratch(NumStruct, 0.0);
    std::vector<int> Touched;
    std::vector<int> Count(NumStruct, 0);
    std::vector<std::pair<int, double>> Cells; // (packed col, val) per row.
    std::vector<int> RowStart(NumRows + 1, 0);
    for (int R = 0; R < NumRows; ++R) {
      Touched.clear();
      for (const LinTerm &T : LP.rows()[R].Terms) {
        if (Scratch[T.Var] == 0.0)
          Touched.push_back(T.Var);
        Scratch[T.Var] += T.Coef;
      }
      for (int V : Touched) {
        if (Scratch[V] != 0.0) {
          Cells.emplace_back(V, Scratch[V]);
          ++Count[V];
        }
        Scratch[V] = 0.0;
      }
      RowStart[R + 1] = static_cast<int>(Cells.size());
    }
    Start.assign(NumStruct + 1, 0);
    for (int V = 0; V < NumStruct; ++V)
      Start[V + 1] = Start[V] + Count[V];
    Row.resize(Cells.size());
    Val.resize(Cells.size());
    std::vector<int> Fill(Start.begin(), Start.end() - 1);
    for (int R = 0; R < NumRows; ++R)
      for (int I = RowStart[R]; I < RowStart[R + 1]; ++I) {
        int V = Cells[I].first;
        Row[Fill[V]] = R;
        Val[Fill[V]] = Cells[I].second;
        ++Fill[V];
      }
  }
};

/// Flat-tableau bounded-variable simplex over rows A x = b with
/// l <= x <= u. Columns: structural vars, then one slack per row, then
/// artificials.
class SimplexSolver {
public:
  SimplexSolver(const LinearProgram &LP, int MaxIterations,
                double TimeLimitSeconds)
      : LP(LP), MaxIters(MaxIterations),
        Deadline(std::chrono::steady_clock::now() +
                 std::chrono::duration_cast<
                     std::chrono::steady_clock::duration>(
                     std::chrono::duration<double>(
                         std::min(TimeLimitSeconds, 1e6)))) {}

  LpResult run() {
    buildStandardForm();

    // Phase 1: minimize the sum of artificial variables.
    if (NumArt > 0) {
      std::vector<double> Phase1Cost(NumCols, 0.0);
      for (int J = ArtBase; J < NumCols; ++J)
        Phase1Cost[J] = 1.0;
      LpStatus S = optimize(Phase1Cost);
      if (S == LpStatus::IterLimit)
        return finish(S);
      recomputeBasicValues();
      double ArtSum = 0.0;
      for (int R = 0; R < NumRows; ++R)
        if (Basis[R] >= ArtBase)
          ArtSum += std::fabs(XB[R]);
      if (ArtSum > 1e-5)
        return finish(LpStatus::Infeasible);
      // Pin artificials to zero for phase 2 (nonbasic ones already rest
      // at their zero lower bound).
      for (int J = ArtBase; J < NumCols; ++J)
        Hi[J] = 0.0;
    }

    // Phase 2: the real objective.
    std::vector<double> Cost(NumCols, 0.0);
    for (const LinTerm &T : LP.objective())
      Cost[T.Var] += T.Coef;
    LpStatus S = optimize(Cost);
    return finish(S);
  }

private:
  double &at(int R, int J) { return Tab[static_cast<size_t>(R) * Stride + J]; }
  double at(int R, int J) const {
    return Tab[static_cast<size_t>(R) * Stride + J];
  }
  double *rowPtr(int R) { return Tab.data() + static_cast<size_t>(R) * Stride; }
  const double *rowPtr(int R) const {
    return Tab.data() + static_cast<size_t>(R) * Stride;
  }

  /// Builds bounds, the sparse copy of A, decides per row whether the
  /// slack can be basic or an artificial is needed, and materializes the
  /// flat tableau in one allocation (the artificial count is known
  /// before the tableau is laid out, so columns never grow).
  void buildStandardForm() {
    NumStruct = LP.numVars();
    NumRows = LP.numConstraints();
    int SlackBase = NumStruct;
    ArtBase = NumStruct + NumRows;

    Cols.build(LP);

    Lo.assign(ArtBase, 0.0);
    Hi.assign(ArtBase, 0.0);
    for (int V = 0; V < NumStruct; ++V) {
      Lo[V] = LP.lowerBound(V);
      Hi[V] = LP.upperBound(V);
      assert(Lo[V] > -Inf && "variables must be bounded below");
    }
    B.assign(NumRows, 0.0);
    for (int R = 0; R < NumRows; ++R) {
      const RowConstraint &Row = LP.rows()[R];
      B[R] = Row.Rhs;
      int S = SlackBase + R;
      switch (Row.Sense) {
      case RowSense::LE: // a.x + s = rhs, s >= 0.
        Lo[S] = 0.0;
        Hi[S] = Inf;
        break;
      case RowSense::GE: // a.x + s = rhs, s <= 0.
        Lo[S] = -Inf;
        Hi[S] = 0.0;
        break;
      case RowSense::EQ: // s fixed at 0.
        Lo[S] = 0.0;
        Hi[S] = 0.0;
        break;
      }
    }

    // Row residuals with every column at rest. Slacks always rest at
    // zero, so only structural columns with a nonzero rest value
    // contribute — walked sparsely through the column-major copy.
    std::vector<double> Resid = B;
    for (int V = 0; V < NumStruct; ++V) {
      double RV = Lo[V]; // Structural vars are bounded below; rest there.
      if (RV == 0.0)
        continue;
      for (int I = Cols.Start[V]; I < Cols.Start[V + 1]; ++I)
        Resid[Cols.Row[I]] -= Cols.Val[I] * RV;
    }

    // Decide basic slack vs. artificial per row, so NumCols is final
    // before the tableau is allocated.
    AtUpper.assign(ArtBase, false);
    IsBasic.assign(ArtBase, false);
    Basis.assign(NumRows, -1);
    XB.assign(NumRows, 0.0);
    std::vector<int> ArtRow; // Rows receiving an artificial, in order.
    NumArt = 0;
    for (int R = 0; R < NumRows; ++R) {
      int SlackJ = SlackBase + R;
      if (Resid[R] >= Lo[SlackJ] - Eps && Resid[R] <= Hi[SlackJ] + Eps) {
        Basis[R] = SlackJ;
        IsBasic[SlackJ] = true;
        XB[R] = Resid[R];
        continue;
      }
      // The slack rests at its bound nearest the feasible region; an
      // artificial with the residual's sign becomes basic.
      AtUpper[SlackJ] = Lo[SlackJ] == -Inf;
      ArtRow.push_back(R);
      ++NumArt;
    }

    NumCols = ArtBase + NumArt;
    Stride = NumCols;
    Tab.assign(static_cast<size_t>(NumRows) * Stride, 0.0);
    Trhs = B;
    for (int R = 0; R < NumRows; ++R) {
      double *Row = rowPtr(R);
      Row[SlackBase + R] = 1.0;
    }
    for (int V = 0; V < NumStruct; ++V)
      for (int I = Cols.Start[V]; I < Cols.Start[V + 1]; ++I)
        at(Cols.Row[I], V) += Cols.Val[I];
    Lo.resize(NumCols, 0.0);
    Hi.resize(NumCols, Inf);
    AtUpper.resize(NumCols, false);
    IsBasic.resize(NumCols, false);
    for (int K = 0; K < NumArt; ++K) {
      int R = ArtRow[K];
      int ArtJ = ArtBase + K;
      at(R, ArtJ) = Resid[R] >= 0 ? 1.0 : -1.0;
      Basis[R] = ArtJ;
      IsBasic[ArtJ] = true;
      XB[R] = std::fabs(Resid[R]);
    }
  }

  double restValue(int J) const {
    if (IsBasic[J])
      return 0.0; // Not used for basic vars.
    if (AtUpper[J]) {
      assert(Hi[J] < Inf && "nonbasic at an infinite upper bound");
      return Hi[J];
    }
    assert(Lo[J] > -Inf && "nonbasic at an infinite lower bound");
    return Lo[J];
  }

  /// Recomputes the basic-variable values from scratch: XB = Trhs minus
  /// the tableau columns of nonbasic variables resting away from zero.
  /// Used to reset the incrementally-maintained XB (pivot updates drift
  /// numerically) at phase boundaries and every RefreshInterval pivots.
  void recomputeBasicValues() {
    NZRestCols.clear();
    for (int J = 0; J < NumCols; ++J) {
      if (IsBasic[J])
        continue;
      double RV = restValue(J);
      if (RV != 0.0)
        NZRestCols.emplace_back(J, RV);
    }
    for (int R = 0; R < NumRows; ++R) {
      const double *Row = rowPtr(R);
      double V = Trhs[R];
      for (const auto &[J, RV] : NZRestCols)
        V -= Row[J] * RV;
      XB[R] = V;
    }
  }

  /// Reduced costs d = c - y^T T, accumulated row-wise: only rows whose
  /// basic variable carries a nonzero cost contribute, which is the
  /// sparse common case (feasibility LPs have all-zero phase-2 costs,
  /// and phase-1 costs vanish as artificials leave the basis).
  void reducedCosts(const std::vector<double> &Cost) {
    D = Cost;
    for (int R = 0; R < NumRows; ++R) {
      double CB = Cost[Basis[R]];
      if (CB == 0.0)
        continue;
      const double *Row = rowPtr(R);
      for (int J = 0; J < NumCols; ++J)
        D[J] -= CB * Row[J];
    }
  }

  LpStatus optimize(const std::vector<double> &Cost) {
    recomputeBasicValues();
    int StallCount = 0;
    int SinceRefresh = 0;
    for (; Iters < MaxIters; ++Iters) {
      if ((Iters & 15) == 0 &&
          std::chrono::steady_clock::now() > Deadline)
        return LpStatus::IterLimit;
      reducedCosts(Cost);

      // Entering variable: nonbasic at lower with d < 0, or at upper with
      // d > 0. Dantzig rule; Bland (lowest index) when stalling.
      bool UseBland = StallCount > 2 * (NumRows + 8);
      int Enter = -1;
      double BestScore = Eps;
      for (int J = 0; J < NumCols; ++J) {
        if (IsBasic[J] || Lo[J] == Hi[J])
          continue;
        double Score = AtUpper[J] ? D[J] : -D[J];
        if (Score > BestScore) {
          Enter = J;
          if (UseBland)
            break;
          BestScore = Score;
        }
      }
      if (Enter < 0)
        return LpStatus::Optimal;

      // Direction: +1 if increasing from lower bound, -1 if decreasing
      // from upper bound.
      double Dir = AtUpper[Enter] ? -1.0 : 1.0;

      // Ratio test over the entering column, skipping structural zeros.
      double Limit = Hi[Enter] - Lo[Enter]; // Bound-flip distance.
      bool LimitIsFlip = true;
      int LeaveRow = -1;
      bool LeaveToUpper = false;
      for (int R = 0; R < NumRows; ++R) {
        double Alpha = at(R, Enter) * Dir;
        if (std::fabs(Alpha) <= Eps)
          continue;
        int BV = Basis[R];
        double Step;
        bool ToUpper;
        if (Alpha > 0) {
          // Basic value decreases towards its lower bound.
          if (Lo[BV] == -Inf)
            continue;
          Step = (XB[R] - Lo[BV]) / Alpha;
          ToUpper = false;
        } else {
          if (Hi[BV] == Inf)
            continue;
          Step = (XB[R] - Hi[BV]) / Alpha;
          ToUpper = true;
        }
        if (Step < -1e-9)
          Step = 0.0;
        if (Step < Limit - 1e-12) {
          Limit = Step;
          LimitIsFlip = false;
          LeaveRow = R;
          LeaveToUpper = ToUpper;
        }
      }

      if (Limit == Inf)
        return LpStatus::Unbounded;
      if (Limit <= Eps)
        ++StallCount;
      else
        StallCount = 0;

      // The entering variable moves by Dir * Limit; follow the basic
      // values incrementally down the entering column.
      if (Limit != 0.0)
        for (int R = 0; R < NumRows; ++R) {
          double Alpha = at(R, Enter);
          if (Alpha != 0.0)
            XB[R] -= Alpha * Dir * Limit;
        }

      if (LimitIsFlip) {
        // Bound flip: the entering variable swaps bounds, no basis change.
        AtUpper[Enter] = !AtUpper[Enter];
        continue;
      }

      double EnterValue = restValue(Enter) + Dir * Limit;
      pivot(LeaveRow, Enter, LeaveToUpper);
      XB[LeaveRow] = EnterValue;
      if (++SinceRefresh >= RefreshInterval) {
        SinceRefresh = 0;
        recomputeBasicValues();
      }
    }
    return LpStatus::IterLimit;
  }

  void pivot(int Row, int Enter, bool LeavingGoesToUpper) {
    int Leave = Basis[Row];
    double *PivRow = rowPtr(Row);
    double Piv = PivRow[Enter];
    assert(std::fabs(Piv) > 1e-12 && "numerically singular pivot");

    double InvPiv = 1.0 / Piv;
    // Scale the pivot row and collect its support once; every other
    // row's update then touches only those columns.
    PivSupport.clear();
    for (int J = 0; J < NumCols; ++J) {
      PivRow[J] *= InvPiv;
      if (std::fabs(PivRow[J]) > DropTol)
        PivSupport.push_back(J);
      else
        PivRow[J] = 0.0;
    }
    PivRow[Enter] = 1.0;
    Trhs[Row] *= InvPiv;
    for (int R = 0; R < NumRows; ++R) {
      if (R == Row)
        continue;
      double *Dst = rowPtr(R);
      double Factor = Dst[Enter];
      if (Factor == 0.0)
        continue;
      for (int J : PivSupport)
        Dst[J] -= Factor * PivRow[J];
      Dst[Enter] = 0.0;
      Trhs[R] -= Factor * Trhs[Row];
    }

    IsBasic[Leave] = false;
    AtUpper[Leave] = LeavingGoesToUpper;
    IsBasic[Enter] = true;
    AtUpper[Enter] = false;
    Basis[Row] = Enter;
    ++Pivots;
  }

  LpResult finish(LpStatus S) {
    LpResult Res;
    Res.Status = S;
    Res.Iterations = Iters;
    Res.Pivots = Pivots;
    if (S != LpStatus::Optimal)
      return Res;
    recomputeBasicValues();
    std::vector<double> X(NumCols, 0.0);
    for (int J = 0; J < NumCols; ++J)
      if (!IsBasic[J])
        X[J] = restValue(J);
    for (int R = 0; R < NumRows; ++R)
      X[Basis[R]] = XB[R];
    Res.X.assign(X.begin(), X.begin() + NumStruct);
    // Clamp tiny numerical noise into the bounds.
    for (int V = 0; V < NumStruct; ++V) {
      Res.X[V] = std::max(Res.X[V], LP.lowerBound(V));
      Res.X[V] = std::min(Res.X[V], LP.upperBound(V));
    }
    Res.Objective = LP.objectiveValue(Res.X);
    return Res;
  }

  /// Pivots between full XB refreshes; frequent enough that incremental
  /// drift stays well under the feasibility tolerances.
  static constexpr int RefreshInterval = 32;

  const LinearProgram &LP;
  int MaxIters;
  std::chrono::steady_clock::time_point Deadline;
  int Iters = 0;
  int Pivots = 0;

  int NumStruct = 0, NumRows = 0, NumCols = 0, ArtBase = 0, NumArt = 0;
  int Stride = 0;
  SparseColumns Cols;
  std::vector<double> Tab; ///< Flat row-major tableau, NumRows x Stride.
  std::vector<double> B, Trhs;
  std::vector<double> Lo, Hi;
  std::vector<double> XB; ///< Basic values, maintained incrementally.
  std::vector<double> D;  ///< Reduced-cost workspace.
  std::vector<std::pair<int, double>> NZRestCols;
  std::vector<int> PivSupport;
  std::vector<bool> AtUpper, IsBasic;
  std::vector<int> Basis;
};

} // namespace

LpResult sgpu::solveLpRelaxation(const LinearProgram &LP, int MaxIterations,
                                 double TimeLimitSeconds) {
  // Hot path: instruments are looked up once (references are stable for
  // the process lifetime) and bumped with one relaxed atomic each.
  static Counter &CSolves = metricCounter("simplex.lp_solves");
  static Counter &CIters = metricCounter("simplex.iterations");
  static Counter &CPivots = metricCounter("simplex.pivots");
  SimplexSolver S(LP, MaxIterations, TimeLimitSeconds);
  LpResult R = S.run();
  CSolves.add(1);
  CIters.add(R.Iterations);
  CPivots.add(R.Pivots);
  return R;
}
