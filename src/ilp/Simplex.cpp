//===- ilp/Simplex.cpp - Bounded-variable revised simplex -------------------===//
//
// Solve paths (see DESIGN.md "Solver engineering"):
//
//   warm basis supplied --> refactorize --> primal feasible? --> phase 2
//                                 |               |
//                                 | singular      | no: dual simplex repair
//                                 v               v    (stall -> cold)
//   cold: all-slack basis --> dual phase 1 --> primal phase 2
//                                 |
//                                 | stall (cycling guard)
//                                 v
//          artificial-variable primal phase 1 (classical backstop)
//
// The dual simplex doubles as phase 1 (zero costs are trivially dual
// feasible) and as the warm-start repair after branch & bound tightens
// bounds: bound changes leave reduced costs untouched, so the parent's
// optimal basis stays dual feasible and a few dual pivots restore primal
// feasibility — or prove the child infeasible without any phase 1.
//
//===----------------------------------------------------------------------===//

#include "ilp/Simplex.h"

#include "ilp/BasisFactors.h"
#include "support/Metrics.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <vector>

using namespace sgpu;

namespace {

constexpr double Eps = 1e-7;
constexpr double FeasTol = 1e-6;
/// Dual-entering admission tolerance: pivots with |alpha| below this are
/// never entered, so an "infeasible" verdict is backed by a row whose
/// every usable column is essentially zero.
constexpr double AlphaTol = 1e-9;
constexpr double Inf = LinearProgram::Infinity;

/// Column-major sparse copy of the structural part of A. Slack columns
/// are unit vectors and artificials are created on demand, so only the
/// structural columns need explicit storage.
struct SparseColumns {
  std::vector<int> Start; ///< Column J's entries are [Start[J], Start[J+1]).
  std::vector<int> Row;
  std::vector<double> Val;

  void build(const LinearProgram &LP) {
    int NumStruct = LP.numVars();
    int NumRows = LP.numConstraints();
    // Combine duplicate (row, var) terms through a dense scratch row.
    std::vector<double> Scratch(NumStruct, 0.0);
    std::vector<int> Touched;
    std::vector<int> Count(NumStruct, 0);
    std::vector<std::pair<int, double>> Cells; // (packed col, val) per row.
    std::vector<int> RowStart(NumRows + 1, 0);
    for (int R = 0; R < NumRows; ++R) {
      Touched.clear();
      for (const LinTerm &T : LP.rows()[R].Terms) {
        if (Scratch[T.Var] == 0.0)
          Touched.push_back(T.Var);
        Scratch[T.Var] += T.Coef;
      }
      for (int V : Touched) {
        if (Scratch[V] != 0.0) {
          Cells.emplace_back(V, Scratch[V]);
          ++Count[V];
        }
        Scratch[V] = 0.0;
      }
      RowStart[R + 1] = static_cast<int>(Cells.size());
    }
    Start.assign(NumStruct + 1, 0);
    for (int V = 0; V < NumStruct; ++V)
      Start[V + 1] = Start[V] + Count[V];
    Row.resize(Cells.size());
    Val.resize(Cells.size());
    std::vector<int> Fill(Start.begin(), Start.end() - 1);
    for (int R = 0; R < NumRows; ++R)
      for (int I = RowStart[R]; I < RowStart[R + 1]; ++I) {
        int V = Cells[I].first;
        Row[Fill[V]] = R;
        Val[Fill[V]] = Cells[I].second;
        ++Fill[V];
      }
  }
};

class RevisedSimplex {
public:
  RevisedSimplex(const LinearProgram &LP, int MaxIterations,
                 double TimeLimitSeconds, const SimplexBasis *Warm)
      : LP(LP), Warm(Warm), MaxIters(MaxIterations),
        Deadline(std::chrono::steady_clock::now() +
                 std::chrono::duration_cast<
                     std::chrono::steady_clock::duration>(
                     std::chrono::duration<double>(
                         std::min(TimeLimitSeconds, 1e6)))) {}

  LpResult run() {
    buildBase();
    using Start = LpResult::Start;

    if (Warm && !Warm->empty() && installWarmBasis()) {
      computeXB();
      if (primalFeasible())
        return finish(primal(), Start::Warm);
      bool RealCost = HaveCost && dualFeasible();
      DualOutcome D = dualRepair(RealCost);
      if (D == DualOutcome::Infeasible)
        return finish(LpStatus::Infeasible, Start::WarmRepaired);
      if (D == DualOutcome::Limit)
        return finish(LpStatus::IterLimit, Start::WarmRepaired);
      if (D == DualOutcome::Feasible)
        return finish(primal(), Start::WarmRepaired);
      // Stalled: fall through to the cold path below.
    }

    installSlackBasis();
    if (!refactor())
      return finish(LpStatus::IterLimit, Start::Cold); // Unreachable: diagonal.
    computeXB();
    if (!primalFeasible()) {
      DualOutcome D = dualRepair(/*UseRealCost=*/false);
      if (D == DualOutcome::Infeasible)
        return finish(LpStatus::Infeasible, Start::Cold);
      if (D == DualOutcome::Limit)
        return finish(LpStatus::IterLimit, Start::Cold);
      if (D == DualOutcome::Stalled) {
        LpStatus S1 = artificialPhase1();
        if (S1 != LpStatus::Optimal)
          return finish(S1, Start::Cold);
      }
    }
    return finish(primal(), Start::Cold);
  }

private:
  enum class DualOutcome : uint8_t { Feasible, Infeasible, Limit, Stalled };

  /// Bounds, rhs, costs and the sparse copy of A for the standard form
  /// A x = b over structural-then-slack columns. Artificials appear only
  /// if the backstop phase 1 runs.
  void buildBase() {
    NumStruct = LP.numVars();
    NumRows = LP.numConstraints();
    ArtBase = NumStruct + NumRows;
    NumCols = ArtBase;

    Cols.build(LP);

    Lo.assign(NumCols, 0.0);
    Hi.assign(NumCols, 0.0);
    for (int V = 0; V < NumStruct; ++V) {
      Lo[V] = LP.lowerBound(V);
      Hi[V] = LP.upperBound(V);
      assert(Lo[V] > -Inf && "variables must be bounded below");
    }
    Bvec.assign(NumRows, 0.0);
    for (int R = 0; R < NumRows; ++R) {
      const RowConstraint &Row = LP.rows()[R];
      Bvec[R] = Row.Rhs;
      int S = NumStruct + R;
      switch (Row.Sense) {
      case RowSense::LE: // a.x + s = rhs, s >= 0.
        Lo[S] = 0.0;
        Hi[S] = Inf;
        break;
      case RowSense::GE: // a.x + s = rhs, s <= 0.
        Lo[S] = -Inf;
        Hi[S] = 0.0;
        break;
      case RowSense::EQ: // s fixed at 0.
        Lo[S] = 0.0;
        Hi[S] = 0.0;
        break;
      }
    }

    AtUpper.assign(NumCols, 0);
    IsBasic.assign(NumCols, 0);
    Basis.assign(NumRows, -1);
    XB.assign(NumRows, 0.0);

    Cost.assign(NumCols, 0.0);
    for (const LinTerm &T : LP.objective())
      Cost[T.Var] += T.Coef;
    HaveCost = false;
    for (double C : Cost)
      if (C != 0.0) {
        HaveCost = true;
        break;
      }
  }

  /// Appends column \p J of the standard-form matrix (row space).
  void appendColumn(int J, SparseCol &Out) const {
    Out.clear();
    if (J < NumStruct) {
      for (int I = Cols.Start[J]; I < Cols.Start[J + 1]; ++I)
        Out.emplace_back(Cols.Row[I], Cols.Val[I]);
    } else if (J < ArtBase) {
      Out.emplace_back(J - NumStruct, 1.0);
    } else {
      Out.emplace_back(ArtRow[J - ArtBase], ArtSign[J - ArtBase]);
    }
  }

  /// Row-space dot product y . a_J, skipping structural zeros.
  double colDot(const std::vector<double> &Y, int J) const {
    if (J < NumStruct) {
      double S = 0.0;
      for (int I = Cols.Start[J]; I < Cols.Start[J + 1]; ++I)
        S += Y[Cols.Row[I]] * Cols.Val[I];
      return S;
    }
    if (J < ArtBase)
      return Y[J - NumStruct];
    return Y[ArtRow[J - ArtBase]] * ArtSign[J - ArtBase];
  }

  /// V += Scale * a_J in row space.
  void addColTo(std::vector<double> &V, int J, double Scale) const {
    if (J < NumStruct) {
      for (int I = Cols.Start[J]; I < Cols.Start[J + 1]; ++I)
        V[Cols.Row[I]] += Cols.Val[I] * Scale;
    } else if (J < ArtBase) {
      V[J - NumStruct] += Scale;
    } else {
      V[ArtRow[J - ArtBase]] += ArtSign[J - ArtBase] * Scale;
    }
  }

  double restValue(int J) const {
    if (IsBasic[J])
      return 0.0; // Not used for basic vars.
    if (AtUpper[J]) {
      assert(Hi[J] < Inf && "nonbasic at an infinite upper bound");
      return Hi[J];
    }
    assert(Lo[J] > -Inf && "nonbasic at an infinite lower bound");
    return Lo[J];
  }

  bool refactor() {
    ++Refactorizations;
    return F.factor(NumRows, Basis, [this](int J, SparseCol &Out) {
      appendColumn(J, Out);
    });
  }

  /// Recomputes the basic values XB = B^-1 (b - A_N x_N) from scratch.
  /// Used after (re)factorization and every RefreshInterval pivots to
  /// wash out incremental drift.
  void computeXB() {
    Rhs = Bvec;
    for (int J = 0; J < NumCols; ++J) {
      if (IsBasic[J])
        continue;
      double RV = restValue(J);
      if (RV != 0.0)
        addColTo(Rhs, J, -RV);
    }
    F.ftran(Rhs);
    XB.swap(Rhs);
  }

  bool primalFeasible() const {
    for (int K = 0; K < NumRows; ++K) {
      int BV = Basis[K];
      if (XB[K] > Hi[BV] + FeasTol || XB[K] < Lo[BV] - FeasTol)
        return false;
    }
    return true;
  }

  /// Checks dual feasibility of the real objective at the current basis:
  /// no nonbasic variable prices as an improving move.
  bool dualFeasible() {
    Y.assign(NumRows, 0.0);
    for (int K = 0; K < NumRows; ++K)
      Y[K] = Cost[Basis[K]];
    F.btran(Y);
    for (int J = 0; J < NumCols; ++J) {
      if (IsBasic[J] || Lo[J] == Hi[J])
        continue;
      double D = Cost[J] - colDot(Y, J);
      if (AtUpper[J] ? D > Eps : D < -Eps)
        return false;
    }
    return true;
  }

  bool installWarmBasis() {
    int NB = NumStruct + NumRows;
    if (static_cast<int>(Warm->Basic.size()) != NumRows ||
        static_cast<int>(Warm->AtUpper.size()) != NB)
      return false;
    std::vector<char> Seen(NB, 0);
    for (int K = 0; K < NumRows; ++K) {
      int J = Warm->Basic[K];
      if (J < 0 || J >= NB || Seen[J])
        return false;
      Seen[J] = 1;
    }
    for (int J = 0; J < NB; ++J) {
      IsBasic[J] = 0;
      AtUpper[J] = 0;
    }
    for (int K = 0; K < NumRows; ++K) {
      Basis[K] = Warm->Basic[K];
      IsBasic[Basis[K]] = 1;
    }
    // Rest flags: honour the saved side when it is still representable
    // under the (possibly tightened) bounds of this solve.
    for (int J = 0; J < NB; ++J) {
      if (IsBasic[J])
        continue;
      if (Warm->AtUpper[J] && Hi[J] < Inf)
        AtUpper[J] = 1;
      else if (Lo[J] > -Inf)
        AtUpper[J] = 0;
      else if (Hi[J] < Inf)
        AtUpper[J] = 1;
      else
        return false; // Free nonbasic variable: no rest value.
    }
    return refactor();
  }

  void installSlackBasis() {
    for (int J = 0; J < NumCols; ++J) {
      IsBasic[J] = 0;
      AtUpper[J] = 0;
    }
    for (int R = 0; R < NumRows; ++R) {
      Basis[R] = NumStruct + R;
      IsBasic[NumStruct + R] = 1;
    }
  }

  /// Primal simplex on the real objective (phase 2). Assumes a primal
  /// feasible basis; Dantzig pricing with Bland's rule under stalling.
  LpStatus primal() { return primalWith(Cost); }

  LpStatus primalWith(const std::vector<double> &C) {
    computeXB();
    int StallCount = 0;
    int SinceRefresh = 0;
    for (; Iters < MaxIters; ++Iters) {
      if ((Iters & 15) == 0 &&
          std::chrono::steady_clock::now() > Deadline)
        return LpStatus::IterLimit;
      if (F.needsRefactor()) {
        if (!refactor())
          return LpStatus::IterLimit;
        computeXB();
        SinceRefresh = 0;
      }

      // Pricing: y = B^-T c_B by one BTRAN, then d_J = c_J - y.a_J per
      // nonbasic column, walked sparsely. Entering variable: nonbasic at
      // lower with d < 0, or at upper with d > 0. Dantzig rule; Bland
      // (lowest index) when stalling.
      bool AnyCost = false;
      Y.assign(NumRows, 0.0);
      for (int K = 0; K < NumRows; ++K) {
        double CB = C[Basis[K]];
        Y[K] = CB;
        if (CB != 0.0)
          AnyCost = true;
      }
      if (AnyCost)
        F.btran(Y);

      bool UseBland = StallCount > 2 * (NumRows + 8);
      int Enter = -1;
      double BestScore = Eps;
      for (int J = 0; J < NumCols; ++J) {
        if (IsBasic[J] || Lo[J] == Hi[J])
          continue;
        double D = C[J];
        if (AnyCost)
          D -= colDot(Y, J);
        double Score = AtUpper[J] ? D : -D;
        if (Score > BestScore) {
          Enter = J;
          if (UseBland)
            break;
          BestScore = Score;
        }
      }
      if (Enter < 0)
        return LpStatus::Optimal;

      // Direction: +1 if increasing from lower bound, -1 if decreasing
      // from upper bound.
      double Dir = AtUpper[Enter] ? -1.0 : 1.0;

      // FTRAN the entering column, then the bounded ratio test over it.
      W.assign(NumRows, 0.0);
      addColTo(W, Enter, 1.0);
      F.ftran(W);

      double Limit = Hi[Enter] - Lo[Enter]; // Bound-flip distance.
      bool LimitIsFlip = true;
      int LeaveRow = -1;
      bool LeaveToUpper = false;
      for (int R = 0; R < NumRows; ++R) {
        double Alpha = W[R] * Dir;
        if (std::fabs(Alpha) <= Eps)
          continue;
        int BV = Basis[R];
        double Step;
        bool ToUpper;
        if (Alpha > 0) {
          // Basic value decreases towards its lower bound.
          if (Lo[BV] == -Inf)
            continue;
          Step = (XB[R] - Lo[BV]) / Alpha;
          ToUpper = false;
        } else {
          if (Hi[BV] == Inf)
            continue;
          Step = (XB[R] - Hi[BV]) / Alpha;
          ToUpper = true;
        }
        if (Step < -1e-9)
          Step = 0.0;
        if (Step < Limit - 1e-12) {
          Limit = Step;
          LimitIsFlip = false;
          LeaveRow = R;
          LeaveToUpper = ToUpper;
        }
      }

      if (Limit == Inf)
        return LpStatus::Unbounded;
      if (Limit <= Eps)
        ++StallCount;
      else
        StallCount = 0;

      // The entering variable moves by Dir * Limit; follow the basic
      // values incrementally down the entering column.
      if (Limit != 0.0)
        for (int R = 0; R < NumRows; ++R)
          if (W[R] != 0.0)
            XB[R] -= W[R] * Dir * Limit;

      if (LimitIsFlip) {
        // Bound flip: the entering variable swaps bounds, no basis change.
        AtUpper[Enter] = !AtUpper[Enter];
        continue;
      }

      double EnterValue = restValue(Enter) + Dir * Limit;
      int Leave = Basis[LeaveRow];
      IsBasic[Leave] = 0;
      AtUpper[Leave] = LeaveToUpper;
      IsBasic[Enter] = 1;
      AtUpper[Enter] = 0;
      Basis[LeaveRow] = Enter;
      XB[LeaveRow] = EnterValue;
      ++Pivots;
      if (F.update(W, LeaveRow)) {
        ++EtaUpdates;
        if (++SinceRefresh >= RefreshInterval) {
          SinceRefresh = 0;
          computeXB();
        }
      } else {
        if (!refactor())
          return LpStatus::IterLimit;
        computeXB();
        SinceRefresh = 0;
      }
    }
    return LpStatus::IterLimit;
  }

  /// Dual simplex until primal feasibility: picks the most-violated
  /// basic variable, prices its BTRAN'd row and enters the column that
  /// keeps the reduced costs dual feasible (zero costs make every ratio
  /// zero, so the largest |alpha| wins for stability — Bland-ish lowest
  /// index under stalling as the anti-cycling rule). Doubles as phase 1
  /// from the all-slack basis and as the warm-start repair after bound
  /// changes. \p UseRealCost keeps the real objective's dual feasibility
  /// through the repair so the following phase 2 terminates immediately.
  DualOutcome dualRepair(bool UseRealCost) {
    computeXB();
    int DualIters = 0;
    int BadPivots = 0;
    const int Cap = 20 * (NumRows + NumStruct) + 1000;
    int SinceRefresh = 0;
    for (; Iters < MaxIters; ++Iters) {
      if ((Iters & 15) == 0 &&
          std::chrono::steady_clock::now() > Deadline)
        return DualOutcome::Limit;
      if (F.needsRefactor()) {
        if (!refactor())
          return DualOutcome::Stalled;
        computeXB();
        SinceRefresh = 0;
      }

      // Leaving variable: the basic position with the largest bound
      // violation.
      int P = -1;
      double BestV = FeasTol;
      bool AboveHi = false;
      for (int K = 0; K < NumRows; ++K) {
        int BV = Basis[K];
        double VHi = XB[K] - Hi[BV];
        double VLo = Lo[BV] - XB[K];
        if (VHi > BestV) {
          BestV = VHi;
          P = K;
          AboveHi = true;
        }
        if (VLo > BestV) {
          BestV = VLo;
          P = K;
          AboveHi = false;
        }
      }
      if (P < 0)
        return DualOutcome::Feasible;
      if (++DualIters > Cap)
        return DualOutcome::Stalled;

      // Row P of B^-1 A via one BTRAN of the unit vector.
      Rho.assign(NumRows, 0.0);
      Rho[P] = 1.0;
      F.btran(Rho);
      if (UseRealCost) {
        Y.assign(NumRows, 0.0);
        for (int K = 0; K < NumRows; ++K)
          Y[K] = Cost[Basis[K]];
        F.btran(Y);
      }

      // Entering candidates: moving one in its admissible direction
      // must push XB[P] towards the violated bound; the dual ratio
      // |d_J| / |alpha_J| orders them so entering preserves dual
      // feasibility.
      bool PreferIndex = DualIters > 2 * (NumRows + 8);
      Cands.clear();
      for (int J = 0; J < NumCols; ++J) {
        if (IsBasic[J] || Lo[J] == Hi[J])
          continue;
        double Alpha = colDot(Rho, J);
        double DirJ = AtUpper[J] ? -1.0 : 1.0;
        double Impact = -Alpha * DirJ; // d XB[P] per unit move of x_J.
        if (AboveHi ? Impact >= -AlphaTol : Impact <= AlphaTol)
          continue;
        double D = 0.0;
        if (UseRealCost)
          D = Cost[J] - colDot(Y, J);
        Cands.push_back({J, Alpha, std::fabs(D) / std::fabs(Alpha)});
        if (PreferIndex)
          break; // Bland-ish: the lowest admissible index, no flips.
      }
      if (Cands.empty())
        return DualOutcome::Infeasible;
      if (!PreferIndex)
        std::sort(Cands.begin(), Cands.end(),
                  [](const DualCand &A, const DualCand &B) {
                    if (A.Ratio != B.Ratio)
                      return A.Ratio < B.Ratio;
                    double FA = std::fabs(A.Alpha), FB = std::fabs(B.Alpha);
                    if (FA != FB)
                      return FA > FB; // Harris-like stability preference.
                    return A.J < B.J;
                  });

      int LeaveVar = Basis[P];
      double Bound = AboveHi ? Hi[LeaveVar] : Lo[LeaveVar];

      // Bound-flipping ratio test (long-step dual): a candidate whose
      // full bound-to-bound flip cannot close the violation is flipped
      // outright — no basis change, no repricing — and the walk moves
      // to the next candidate; only the one that crosses zero enters.
      // The II LPs start with violations of the II's magnitude against
      // unit-range assignment columns, so without this every flip would
      // cost a full dual iteration. Flipped rest values are folded into
      // XB with a single accumulated FTRAN.
      double V = XB[P] - Bound;
      Acc.assign(NumRows, 0.0);
      bool AnyFlip = false;
      int Enter = -1;
      for (const DualCand &Cd : Cands) {
        double CDir = AtUpper[Cd.J] ? -1.0 : 1.0;
        double Impact = -Cd.Alpha * CDir;
        double Range = Hi[Cd.J] - Lo[Cd.J];
        if (Range < Inf &&
            std::fabs(Impact) * Range < std::fabs(V) - FeasTol) {
          V += Impact * Range;
          addColTo(Acc, Cd.J, CDir * Range);
          AtUpper[Cd.J] = !AtUpper[Cd.J];
          AnyFlip = true;
          continue;
        }
        Enter = Cd.J;
        break;
      }
      if (AnyFlip) {
        F.ftran(Acc);
        for (int K = 0; K < NumRows; ++K)
          if (Acc[K] != 0.0)
            XB[K] -= Acc[K];
      }
      if (Enter < 0)
        continue; // Violation shrunk by flips alone; re-select a row.

      W.assign(NumRows, 0.0);
      addColTo(W, Enter, 1.0);
      F.ftran(W);
      double AlphaP = W[P]; // Fresher than the Rho-based estimate.
      double DirJ = AtUpper[Enter] ? -1.0 : 1.0;
      if (AboveHi ? -AlphaP * DirJ >= 0.0 : -AlphaP * DirJ <= 0.0) {
        // The FTRAN'd pivot disagrees with the priced row: the eta file
        // has drifted. Refactorize and retry (bounded; the flips above
        // remain valid state and keep their progress).
        if (++BadPivots > 3 || !refactor())
          return DualOutcome::Stalled;
        computeXB();
        continue;
      }
      BadPivots = 0;
      double T = (XB[P] - Bound) / (AlphaP * DirJ); // > 0 by the sign check.
      double Range = Hi[Enter] - Lo[Enter];
      if (T > Range + 1e-12) {
        // The entering variable hits its opposite bound first: flip it,
        // shrink the violation, and keep the basis unchanged.
        for (int K = 0; K < NumRows; ++K)
          if (W[K] != 0.0)
            XB[K] -= W[K] * DirJ * Range;
        AtUpper[Enter] = !AtUpper[Enter];
        continue;
      }

      double EnterValue = restValue(Enter) + DirJ * T;
      for (int K = 0; K < NumRows; ++K)
        if (W[K] != 0.0)
          XB[K] -= W[K] * DirJ * T;
      IsBasic[LeaveVar] = 0;
      AtUpper[LeaveVar] = AboveHi; // Leaves at the bound it violated.
      IsBasic[Enter] = 1;
      AtUpper[Enter] = 0;
      Basis[P] = Enter;
      XB[P] = EnterValue;
      ++Pivots;
      if (F.update(W, P)) {
        ++EtaUpdates;
        if (++SinceRefresh >= RefreshInterval) {
          SinceRefresh = 0;
          computeXB();
        }
      } else {
        if (!refactor())
          return DualOutcome::Stalled;
        computeXB();
        SinceRefresh = 0;
      }
    }
    return DualOutcome::Limit;
  }

  /// Classical two-phase backstop: artificial variables make the basis
  /// trivially feasible, a primal pass minimizes their sum, and success
  /// pins them at zero for phase 2. Only runs when the dual phase 1
  /// stalls (its anti-cycling guard tripped), which keeps the guarantee
  /// of the pre-revised solver without paying for artificials in the
  /// common case.
  LpStatus artificialPhase1() {
    // Every column rests at a bound again (structural at lower).
    installSlackBasis();

    // Row residuals with every column at rest; rows whose slack cannot
    // absorb the residual receive an artificial.
    Rhs = Bvec;
    for (int V = 0; V < NumStruct; ++V) {
      double RV = Lo[V];
      if (RV == 0.0)
        continue;
      for (int I = Cols.Start[V]; I < Cols.Start[V + 1]; ++I)
        Rhs[Cols.Row[I]] -= Cols.Val[I] * RV;
    }

    ArtRow.clear();
    ArtSign.clear();
    for (int R = 0; R < NumRows; ++R) {
      int SlackJ = NumStruct + R;
      if (Rhs[R] >= Lo[SlackJ] - Eps && Rhs[R] <= Hi[SlackJ] + Eps)
        continue;
      // The slack rests at its bound nearest the feasible region; an
      // artificial with the residual's sign becomes basic.
      AtUpper[SlackJ] = Lo[SlackJ] == -Inf;
      IsBasic[SlackJ] = 0;
      ArtRow.push_back(R);
      ArtSign.push_back(Rhs[R] >= 0 ? 1.0 : -1.0);
    }
    int NumArt = static_cast<int>(ArtRow.size());
    NumCols = ArtBase + NumArt;
    Lo.resize(NumCols, 0.0);
    Hi.resize(NumCols, Inf);
    AtUpper.resize(NumCols, 0);
    IsBasic.resize(NumCols, 0);
    Cost.resize(NumCols, 0.0);
    for (int K = 0; K < NumArt; ++K) {
      int ArtJ = ArtBase + K;
      Basis[ArtRow[K]] = ArtJ;
      IsBasic[ArtJ] = 1;
    }
    if (!refactor())
      return LpStatus::IterLimit; // Unreachable: diagonal basis.

    if (NumArt > 0) {
      std::vector<double> Phase1Cost(NumCols, 0.0);
      for (int J = ArtBase; J < NumCols; ++J)
        Phase1Cost[J] = 1.0;
      LpStatus S = primalWith(Phase1Cost);
      if (S != LpStatus::Optimal)
        return S == LpStatus::Unbounded ? LpStatus::IterLimit : S;
      computeXB();
      double ArtSum = 0.0;
      for (int R = 0; R < NumRows; ++R)
        if (Basis[R] >= ArtBase)
          ArtSum += std::fabs(XB[R]);
      if (ArtSum > 1e-5)
        return LpStatus::Infeasible;
      // Pin artificials to zero for phase 2 (nonbasic ones already rest
      // at their zero lower bound).
      for (int J = ArtBase; J < NumCols; ++J)
        Hi[J] = 0.0;
    }
    return LpStatus::Optimal;
  }

  /// Exports the final basis in struct+slack indices. A basic artificial
  /// (degenerate at zero) is mapped to its row's slack; if that makes
  /// the set singular, the next importer's refactorization rejects it
  /// and falls back to a cold start.
  void exportBasis(SimplexBasis &Out) const {
    if (!F.valid())
      return;
    int NB = NumStruct + NumRows;
    Out.Basic.resize(NumRows);
    for (int K = 0; K < NumRows; ++K) {
      int J = Basis[K];
      if (J >= ArtBase)
        J = NumStruct + ArtRow[J - ArtBase];
      Out.Basic[K] = J;
    }
    Out.AtUpper.assign(AtUpper.begin(), AtUpper.begin() + NB);
  }

  LpResult finish(LpStatus S, LpResult::Start K) {
    LpResult Res;
    Res.Status = S;
    Res.Iterations = Iters;
    Res.Pivots = Pivots;
    Res.Refactorizations = Refactorizations;
    Res.EtaUpdates = EtaUpdates;
    Res.StartKind = K;
    exportBasis(Res.Basis);
    if (S != LpStatus::Optimal)
      return Res;
    computeXB();
    std::vector<double> X(NumCols, 0.0);
    for (int J = 0; J < NumCols; ++J)
      if (!IsBasic[J])
        X[J] = restValue(J);
    for (int R = 0; R < NumRows; ++R)
      X[Basis[R]] = XB[R];
    Res.X.assign(X.begin(), X.begin() + NumStruct);
    // Clamp tiny numerical noise into the bounds.
    for (int V = 0; V < NumStruct; ++V) {
      Res.X[V] = std::max(Res.X[V], LP.lowerBound(V));
      Res.X[V] = std::min(Res.X[V], LP.upperBound(V));
    }
    Res.Objective = LP.objectiveValue(Res.X);
    return Res;
  }

  /// Pivots between full XB refreshes; frequent enough that incremental
  /// drift stays well under the feasibility tolerances.
  static constexpr int RefreshInterval = 32;

  const LinearProgram &LP;
  const SimplexBasis *Warm;
  int MaxIters;
  std::chrono::steady_clock::time_point Deadline;
  int Iters = 0;
  int Pivots = 0;
  int Refactorizations = 0;
  int EtaUpdates = 0;

  int NumStruct = 0, NumRows = 0, NumCols = 0, ArtBase = 0;
  SparseColumns Cols;
  std::vector<int> ArtRow;
  std::vector<double> ArtSign;
  std::vector<double> Bvec;
  std::vector<double> Lo, Hi;
  std::vector<double> Cost;
  bool HaveCost = false;
  std::vector<uint8_t> AtUpper, IsBasic;
  std::vector<int> Basis;
  std::vector<double> XB;
  BasisFactorization F;
  std::vector<double> W, Y, Rho, Rhs; ///< FTRAN/BTRAN workspaces.

  /// One admissible entering candidate for the dual ratio test.
  struct DualCand {
    int J;
    double Alpha;
    double Ratio;
  };
  std::vector<DualCand> Cands; ///< Dual ratio-test scratch.
  std::vector<double> Acc;     ///< Bound-flip accumulator (row space).
};

} // namespace

LpResult sgpu::solveLpRelaxation(const LinearProgram &LP, int MaxIterations,
                                 double TimeLimitSeconds,
                                 const SimplexBasis *Warm) {
  // Hot path: instruments are looked up once (references are stable for
  // the process lifetime) and bumped with one relaxed atomic each.
  static Counter &CSolves = metricCounter("simplex.lp_solves");
  static Counter &CIters = metricCounter("simplex.iterations");
  static Counter &CPivots = metricCounter("simplex.pivots");
  static Counter &CRefactor = metricCounter("simplex.refactorizations");
  static Counter &CEtas = metricCounter("simplex.eta_updates");
  static Counter &CWarm = metricCounter("simplex.warm_starts");
  static Counter &CRepaired = metricCounter("simplex.warm_repairs");
  static Counter &CRejected = metricCounter("simplex.warm_rejected");
  RevisedSimplex S(LP, MaxIterations, TimeLimitSeconds, Warm);
  LpResult R = S.run();
  CSolves.add(1);
  CIters.add(R.Iterations);
  CPivots.add(R.Pivots);
  CRefactor.add(R.Refactorizations);
  CEtas.add(R.EtaUpdates);
  if (Warm && !Warm->empty()) {
    if (R.StartKind == LpResult::Start::Warm)
      CWarm.add(1);
    else if (R.StartKind == LpResult::Start::WarmRepaired)
      CRepaired.add(1);
    else
      CRejected.add(1);
  }
  return R;
}
