//===- ilp/Simplex.cpp - Bounded-variable primal simplex --------------------===//

#include "ilp/Simplex.h"

#include "support/Check.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <vector>

using namespace sgpu;

namespace {

constexpr double Eps = 1e-7;
constexpr double Inf = LinearProgram::Infinity;

/// Dense bounded-variable simplex over rows A x = b with l <= x <= u.
/// Columns: structural vars, then one slack per row, then artificials.
class SimplexSolver {
public:
  SimplexSolver(const LinearProgram &LP, int MaxIterations,
                double TimeLimitSeconds)
      : LP(LP), MaxIters(MaxIterations),
        Deadline(std::chrono::steady_clock::now() +
                 std::chrono::duration_cast<
                     std::chrono::steady_clock::duration>(
                     std::chrono::duration<double>(
                         std::min(TimeLimitSeconds, 1e6)))) {}

  LpResult run() {
    buildStandardForm();
    installInitialBasis();

    // Phase 1: minimize the sum of artificial variables.
    if (NumArt > 0) {
      std::vector<double> Phase1Cost(NumCols, 0.0);
      for (int J = ArtBase; J < NumCols; ++J)
        Phase1Cost[J] = 1.0;
      LpStatus S = optimize(Phase1Cost);
      if (S == LpStatus::IterLimit)
        return finish(S);
      double ArtSum = 0.0;
      std::vector<double> X = currentValues();
      for (int J = ArtBase; J < NumCols; ++J)
        ArtSum += X[J];
      if (ArtSum > 1e-5)
        return finish(LpStatus::Infeasible);
      // Pin artificials to zero for phase 2.
      for (int J = ArtBase; J < NumCols; ++J)
        Hi[J] = 0.0;
    }

    // Phase 2: the real objective.
    std::vector<double> Cost(NumCols, 0.0);
    for (const LinTerm &T : LP.objective())
      Cost[T.Var] += T.Coef;
    LpStatus S = optimize(Cost);
    return finish(S);
  }

private:
  void buildStandardForm() {
    NumStruct = LP.numVars();
    NumRows = LP.numConstraints();
    int SlackBase = NumStruct;
    ArtBase = NumStruct + NumRows;
    NumCols = ArtBase; // Artificials appended below as needed.

    Lo.assign(ArtBase, 0.0);
    Hi.assign(ArtBase, 0.0);
    for (int V = 0; V < NumStruct; ++V) {
      Lo[V] = LP.lowerBound(V);
      Hi[V] = LP.upperBound(V);
      assert(Lo[V] > -Inf && "variables must be bounded below");
    }

    A.assign(NumRows, std::vector<double>(ArtBase, 0.0));
    B.assign(NumRows, 0.0);
    for (int R = 0; R < NumRows; ++R) {
      const RowConstraint &Row = LP.rows()[R];
      for (const LinTerm &T : Row.Terms)
        A[R][T.Var] += T.Coef;
      B[R] = Row.Rhs;
      int S = SlackBase + R;
      A[R][S] = 1.0;
      switch (Row.Sense) {
      case RowSense::LE: // a.x + s = rhs, s >= 0.
        Lo[S] = 0.0;
        Hi[S] = Inf;
        break;
      case RowSense::GE: // a.x + s = rhs, s <= 0.
        Lo[S] = -Inf;
        Hi[S] = 0.0;
        break;
      case RowSense::EQ: // s fixed at 0.
        Lo[S] = 0.0;
        Hi[S] = 0.0;
        break;
      }
    }
  }

  /// Starts with all structural/slack vars nonbasic at their finite bound
  /// closest to zero; rows whose residual cannot be absorbed by their
  /// slack get an artificial basic variable.
  void installInitialBasis() {
    AtUpper.assign(NumCols, false);
    IsBasic.assign(NumCols, false);
    Basis.assign(NumRows, -1);

    auto RestValue = [&](int J) {
      if (Lo[J] > -Inf)
        return Lo[J];
      assert(Hi[J] < Inf && "free variable unsupported");
      return Hi[J]; // GE slacks rest at their zero upper bound.
    };

    // Residual per row with all columns at rest, excluding the slack.
    NumArt = 0;
    for (int R = 0; R < NumRows; ++R) {
      double Resid = B[R];
      for (int J = 0; J < NumCols; ++J) {
        int SlackJ = NumStruct + R;
        if (J == SlackJ)
          continue;
        if (A[R][J] != 0.0)
          Resid -= A[R][J] * RestValue(J);
      }
      int SlackJ = NumStruct + R;
      if (Resid >= Lo[SlackJ] - Eps && Resid <= Hi[SlackJ] + Eps) {
        // The slack itself can be basic.
        Basis[R] = SlackJ;
        IsBasic[SlackJ] = true;
        continue;
      }
      // Need an artificial absorbing the residual's sign. The slack
      // rests at zero (its bound nearest the feasible region).
      AtUpper[SlackJ] = Lo[SlackJ] == -Inf;
      int ArtJ = NumCols++;
      Lo.push_back(0.0);
      Hi.push_back(Inf);
      AtUpper.push_back(false);
      IsBasic.push_back(true);
      for (int R2 = 0; R2 < NumRows; ++R2)
        A[R2].push_back(0.0);
      A[R][ArtJ] = Resid >= 0 ? 1.0 : -1.0;
      Basis[R] = ArtJ;
      ++NumArt;
    }

    // Tableau starts as A (basis columns are unit by construction for
    // slacks/artificials).
    T = A;
    Trhs = B;
  }

  double restValue(int J) const {
    if (IsBasic[J])
      return 0.0; // Not used for basic vars.
    if (AtUpper[J]) {
      assert(Hi[J] < Inf && "nonbasic at an infinite upper bound");
      return Hi[J];
    }
    assert(Lo[J] > -Inf && "nonbasic at an infinite lower bound");
    return Lo[J];
  }

  /// Basic variable values implied by the nonbasic rest values.
  std::vector<double> basicValues() const {
    std::vector<double> XB(NumRows);
    for (int R = 0; R < NumRows; ++R) {
      double V = Trhs[R];
      for (int J = 0; J < NumCols; ++J) {
        if (IsBasic[J])
          continue;
        double RV = restValue(J);
        if (RV != 0.0 && T[R][J] != 0.0)
          V -= T[R][J] * RV;
      }
      XB[R] = V;
    }
    return XB;
  }

  std::vector<double> currentValues() const {
    std::vector<double> X(NumCols);
    for (int J = 0; J < NumCols; ++J)
      if (!IsBasic[J])
        X[J] = restValue(J);
    std::vector<double> XB = basicValues();
    for (int R = 0; R < NumRows; ++R)
      X[Basis[R]] = XB[R];
    return X;
  }

  /// Reduced costs for \p Cost given the current tableau.
  std::vector<double> reducedCosts(const std::vector<double> &Cost) const {
    // y = c_B, d_j = c_j - y . T_j (T already is B^{-1}A).
    std::vector<double> D(NumCols);
    for (int J = 0; J < NumCols; ++J) {
      if (IsBasic[J]) {
        D[J] = 0.0;
        continue;
      }
      double V = Cost[J];
      for (int R = 0; R < NumRows; ++R)
        if (T[R][J] != 0.0 && Cost[Basis[R]] != 0.0)
          V -= Cost[Basis[R]] * T[R][J];
      D[J] = V;
    }
    return D;
  }

  LpStatus optimize(const std::vector<double> &Cost) {
    int StallCount = 0;
    for (; Iters < MaxIters; ++Iters) {
      // A dense iteration is expensive; poll the deadline sparsely.
      if ((Iters & 15) == 0 &&
          std::chrono::steady_clock::now() > Deadline)
        return LpStatus::IterLimit;
      std::vector<double> D = reducedCosts(Cost);

      // Entering variable: nonbasic at lower with d < 0, or at upper with
      // d > 0. Dantzig rule; Bland (lowest index) when stalling.
      bool UseBland = StallCount > 2 * (NumRows + 8);
      int Enter = -1;
      double BestScore = Eps;
      for (int J = 0; J < NumCols; ++J) {
        if (IsBasic[J] || Lo[J] == Hi[J])
          continue;
        bool Upper = AtUpper[J];
        double Score = Upper ? D[J] : -D[J];
        if (Score > BestScore) {
          Enter = J;
          if (UseBland)
            break;
          BestScore = Score;
        }
      }
      if (Enter < 0)
        return LpStatus::Optimal;

      // Direction: +1 if increasing from lower bound, -1 if decreasing
      // from upper bound.
      double Dir = AtUpper[Enter] ? -1.0 : 1.0;

      // Ratio test.
      std::vector<double> XB = basicValues();
      double Limit = Hi[Enter] - Lo[Enter]; // Bound-flip distance.
      bool LimitIsFlip = true;
      int LeaveRow = -1;
      bool LeaveToUpper = false;
      for (int R = 0; R < NumRows; ++R) {
        double Alpha = T[R][Enter] * Dir;
        if (std::fabs(Alpha) <= Eps)
          continue;
        int BV = Basis[R];
        double Step;
        bool ToUpper;
        if (Alpha > 0) {
          // Basic value decreases towards its lower bound.
          if (Lo[BV] == -Inf)
            continue;
          Step = (XB[R] - Lo[BV]) / Alpha;
          ToUpper = false;
        } else {
          if (Hi[BV] == Inf)
            continue;
          Step = (XB[R] - Hi[BV]) / Alpha;
          ToUpper = true;
        }
        if (Step < -1e-9)
          Step = 0.0;
        if (Step < Limit - 1e-12) {
          Limit = Step;
          LimitIsFlip = false;
          LeaveRow = R;
          LeaveToUpper = ToUpper;
        }
      }

      if (Limit == Inf)
        return LpStatus::Unbounded;
      if (Limit <= Eps)
        ++StallCount;
      else
        StallCount = 0;

      if (LimitIsFlip) {
        // Bound flip: the entering variable swaps bounds, no basis change.
        AtUpper[Enter] = !AtUpper[Enter];
        continue;
      }

      pivot(LeaveRow, Enter, LeaveToUpper);
    }
    return LpStatus::IterLimit;
  }

  void pivot(int Row, int Enter, bool LeavingGoesToUpper) {
    int Leave = Basis[Row];
    double Piv = T[Row][Enter];
    assert(std::fabs(Piv) > 1e-12 && "numerically singular pivot");

    for (int J = 0; J < NumCols; ++J)
      T[Row][J] /= Piv;
    Trhs[Row] /= Piv;
    for (int R = 0; R < NumRows; ++R) {
      if (R == Row)
        continue;
      double Factor = T[R][Enter];
      if (Factor == 0.0)
        continue;
      for (int J = 0; J < NumCols; ++J)
        T[R][J] -= Factor * T[Row][J];
      Trhs[R] -= Factor * Trhs[Row];
    }

    IsBasic[Leave] = false;
    AtUpper[Leave] = LeavingGoesToUpper;
    IsBasic[Enter] = true;
    AtUpper[Enter] = false;
    Basis[Row] = Enter;
  }

  LpResult finish(LpStatus S) {
    LpResult Res;
    Res.Status = S;
    Res.Iterations = Iters;
    if (S != LpStatus::Optimal)
      return Res;
    std::vector<double> X = currentValues();
    Res.X.assign(X.begin(), X.begin() + NumStruct);
    // Clamp tiny numerical noise into the bounds.
    for (int V = 0; V < NumStruct; ++V) {
      Res.X[V] = std::max(Res.X[V], LP.lowerBound(V));
      Res.X[V] = std::min(Res.X[V], LP.upperBound(V));
    }
    Res.Objective = LP.objectiveValue(Res.X);
    return Res;
  }

  const LinearProgram &LP;
  int MaxIters;
  std::chrono::steady_clock::time_point Deadline;
  int Iters = 0;

  int NumStruct = 0, NumRows = 0, NumCols = 0, ArtBase = 0, NumArt = 0;
  std::vector<std::vector<double>> A, T;
  std::vector<double> B, Trhs;
  std::vector<double> Lo, Hi;
  std::vector<bool> AtUpper, IsBasic;
  std::vector<int> Basis;
};

} // namespace

LpResult sgpu::solveLpRelaxation(const LinearProgram &LP, int MaxIterations,
                                 double TimeLimitSeconds) {
  SimplexSolver S(LP, MaxIterations, TimeLimitSeconds);
  return S.run();
}
