//===- ilp/Simplex.h - Bounded-variable primal simplex ----------*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dense two-phase primal simplex with bounded variables (nonbasic
/// variables rest at either bound; upper bounds never become rows). This
/// solves the LP relaxations inside the branch & bound that replaces
/// CPLEX in the paper's toolchain. Dense tableaus keep the code simple
/// and robust; the scheduling ILPs it must handle are small because the
/// heuristic scheduler supplies incumbents for the big ones.
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_ILP_SIMPLEX_H
#define SGPU_ILP_SIMPLEX_H

#include "ilp/LinearProgram.h"

namespace sgpu {

/// Outcome of an LP solve.
enum class LpStatus : uint8_t { Optimal, Infeasible, Unbounded, IterLimit };

/// Solution of an LP relaxation.
struct LpResult {
  LpStatus Status = LpStatus::IterLimit;
  std::vector<double> X; ///< Structural variable values (valid if Optimal).
  double Objective = 0.0;
  int Iterations = 0;
};

/// Solves the LP relaxation of \p LP (integrality dropped, bounds kept).
/// \p TimeLimitSeconds bounds wall-clock time (checked periodically);
/// exceeding either limit yields LpStatus::IterLimit.
LpResult solveLpRelaxation(const LinearProgram &LP, int MaxIterations = 50000,
                           double TimeLimitSeconds = 1e30);

} // namespace sgpu

#endif // SGPU_ILP_SIMPLEX_H
