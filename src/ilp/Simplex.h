//===- ilp/Simplex.h - Bounded-variable primal simplex ----------*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A two-phase primal simplex with bounded variables (nonbasic variables
/// rest at either bound; upper bounds never become rows). This solves
/// the LP relaxations inside the branch & bound that replaces CPLEX in
/// the paper's toolchain. The tableau is stored as one flat row-major
/// array (contiguous row operations vectorize and stay cache-resident),
/// and the constraint matrix A is additionally kept as a sparse
/// column-major copy: the scheduling LPs are overwhelmingly sparse —
/// constraints (2), (4), (8) each touch a handful of variables — so
/// standard-form setup, initial residuals, pricing and the pivot update
/// all skip structural zeros. See DESIGN.md "Solver engineering".
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_ILP_SIMPLEX_H
#define SGPU_ILP_SIMPLEX_H

#include "ilp/LinearProgram.h"

namespace sgpu {

/// Outcome of an LP solve.
enum class LpStatus : uint8_t { Optimal, Infeasible, Unbounded, IterLimit };

/// Solution of an LP relaxation.
struct LpResult {
  LpStatus Status = LpStatus::IterLimit;
  std::vector<double> X; ///< Structural variable values (valid if Optimal).
  double Objective = 0.0;
  /// Simplex iterations across both phases (bound flips included).
  int Iterations = 0;
  /// Basis changes (proper pivots) across both phases; always
  /// <= Iterations, the difference being bound flips.
  int Pivots = 0;
};

/// Solves the LP relaxation of \p LP (integrality dropped, bounds kept).
/// \p TimeLimitSeconds bounds wall-clock time (checked periodically);
/// exceeding either limit yields LpStatus::IterLimit.
LpResult solveLpRelaxation(const LinearProgram &LP, int MaxIterations = 50000,
                           double TimeLimitSeconds = 1e30);

} // namespace sgpu

#endif // SGPU_ILP_SIMPLEX_H
