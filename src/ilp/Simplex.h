//===- ilp/Simplex.h - Bounded-variable revised simplex ---------*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded-variable revised simplex over a factorized basis
/// (BasisFactors.h). This solves the LP relaxations inside the branch &
/// bound that replaces CPLEX in the paper's toolchain. Per-pivot cost
/// scales with basis sparsity — one FTRAN for the entering column, one
/// BTRAN for pricing, one eta update — instead of the width of a full
/// tableau, and the constraint matrix A is kept as a sparse column-major
/// copy (the scheduling LPs are overwhelmingly sparse: constraints (2),
/// (4), (8) each touch a handful of variables).
///
/// Solves can be warm-started from a previously returned basis: the
/// basis is refactorized against the (possibly re-valued) matrix, and a
/// dual simplex pass repairs primal feasibility lost to bound changes —
/// the branch & bound hands each child its parent's optimal basis, and
/// the II search seeds every candidate from one serial root solve. A
/// cold solve starts from the all-slack basis with a dual phase 1, with
/// the classical artificial-variable primal phase 1 as the backstop.
/// See DESIGN.md "Solver engineering".
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_ILP_SIMPLEX_H
#define SGPU_ILP_SIMPLEX_H

#include "ilp/LinearProgram.h"

namespace sgpu {

/// Outcome of an LP solve.
enum class LpStatus : uint8_t { Optimal, Infeasible, Unbounded, IterLimit };

/// A resumable simplex basis in standard-form column indices: structural
/// variables first, then one slack per row. Valid across LPs with the
/// same shape (variable and row counts), which is what the II search
/// exploits — candidate IIs change matrix coefficients, not structure.
struct SimplexBasis {
  std::vector<int32_t> Basic;   ///< Basic column per row position.
  std::vector<uint8_t> AtUpper; ///< Nonbasic-at-upper flag per column.

  bool empty() const { return Basic.empty(); }
};

/// Solution of an LP relaxation.
struct LpResult {
  /// How the solve started (warm-start accounting).
  enum class Start : uint8_t {
    Cold,        ///< All-slack (or artificial) start.
    Warm,        ///< Supplied basis was primal feasible; phase 2 only.
    WarmRepaired ///< Supplied basis repaired by the dual simplex.
  };

  LpStatus Status = LpStatus::IterLimit;
  std::vector<double> X; ///< Structural variable values (valid if Optimal).
  double Objective = 0.0;
  /// Simplex iterations across all phases (bound flips included).
  int Iterations = 0;
  /// Basis changes (proper pivots) across all phases; always
  /// <= Iterations, the difference being bound flips.
  int Pivots = 0;
  int Refactorizations = 0; ///< Basis factorizations performed.
  int EtaUpdates = 0;       ///< Pivots absorbed as eta updates.
  Start StartKind = Start::Cold;
  /// Final basis, exported whenever the solve ends holding a valid
  /// factorization (including IterLimit, so a capped solve can resume).
  SimplexBasis Basis;
};

/// Solves the LP relaxation of \p LP (integrality dropped, bounds kept).
/// \p TimeLimitSeconds bounds wall-clock time (checked periodically);
/// exceeding either limit yields LpStatus::IterLimit. \p Warm, when
/// given and structurally compatible, resumes from that basis instead of
/// solving from scratch (silently falling back to a cold start when the
/// basis is stale or singular).
LpResult solveLpRelaxation(const LinearProgram &LP, int MaxIterations = 50000,
                           double TimeLimitSeconds = 1e30,
                           const SimplexBasis *Warm = nullptr);

} // namespace sgpu

#endif // SGPU_ILP_SIMPLEX_H
