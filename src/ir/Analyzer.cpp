//===- ir/Analyzer.cpp - Static work/register analysis ---------------------===//

#include "ir/Analyzer.h"

#include "support/Check.h"

#include <string>

#include <algorithm>

using namespace sgpu;

/// Default trip count assumed for loops with non-constant bounds.
static constexpr int64_t DefaultTripCount = 16;

std::optional<int64_t> sgpu::tryEvalConstInt(const Filter &F, const Expr *E) {
  switch (E->kind()) {
  case Expr::Kind::IntLiteral:
    return cast<IntLiteral>(E)->value();
  case Expr::Kind::VarRef: {
    const VarDecl *D = cast<VarRef>(E)->decl();
    if (!D->isField() || D->isArray() || D->type() != TokenType::Int)
      return std::nullopt;
    return F.fieldValues(D->slot())[0].asInt();
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    std::optional<int64_t> L = tryEvalConstInt(F, B->lhs());
    std::optional<int64_t> R = tryEvalConstInt(F, B->rhs());
    if (!L || !R)
      return std::nullopt;
    switch (B->op()) {
    case BinOpKind::Add:
      return *L + *R;
    case BinOpKind::Sub:
      return *L - *R;
    case BinOpKind::Mul:
      return *L * *R;
    case BinOpKind::Div:
      return *R == 0 ? std::nullopt : std::optional<int64_t>(*L / *R);
    case BinOpKind::Rem:
      return *R == 0 ? std::nullopt : std::optional<int64_t>(*L % *R);
    case BinOpKind::Shl:
      return *L << (*R & 31);
    case BinOpKind::Shr:
      return *L >> (*R & 31);
    default:
      return std::nullopt;
    }
  }
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    std::optional<int64_t> V = tryEvalConstInt(F, U->operand());
    if (!V)
      return std::nullopt;
    switch (U->op()) {
    case UnOpKind::Neg:
      return -*V;
    case UnOpKind::BitNot:
      return ~*V;
    case UnOpKind::LogicalNot:
      return *V == 0 ? 1 : 0;
    }
    return std::nullopt;
  }
  default:
    return std::nullopt;
  }
}

namespace {

/// Walks the AST accumulating a WorkEstimate. Loop bodies are scaled by
/// the (constant-folded) trip count; if-branches contribute the max of
/// the two arms (a conservative per-firing bound).
class WorkAnalyzer {
public:
  explicit WorkAnalyzer(const Filter &F) : F(F) {}

  WorkEstimate run() {
    WorkEstimate WE = analyzeBlock(F.work().body());

    // Register model: a fixed overhead for addresses/indices, one register
    // per scalar local, small constant-size arrays promoted to registers,
    // plus live expression temporaries.
    int Regs = 6;
    for (const auto &L : F.work().locals()) {
      if (!L->isArray()) {
        ++Regs;
        continue;
      }
      if (L->arraySize() <= MaxRegisterArrayElems)
        Regs += static_cast<int>(L->arraySize());
      else
        WE.LocalArrayBytes += L->arraySize() * tokenSizeBytes(L->type());
    }
    Regs += std::min(MaxTempDepth, 8);
    WE.Registers = Regs;
    return WE;
  }

private:
  WorkEstimate analyzeBlock(const BlockStmt *B) {
    WorkEstimate WE;
    for (const Stmt *S : B->body())
      accumulate(WE, analyzeStmt(S));
    return WE;
  }

  WorkEstimate analyzeStmt(const Stmt *S) {
    switch (S->kind()) {
    case Stmt::Kind::Assign: {
      const auto *A = cast<AssignStmt>(S);
      WorkEstimate WE = analyzeExpr(A->value(), 1);
      accumulate(WE, analyzeExpr(A->target(), 1));
      return WE;
    }
    case Stmt::Kind::Push: {
      WorkEstimate WE = analyzeExpr(cast<PushStmt>(S)->value(), 1);
      ++WE.ChannelWrites;
      return WE;
    }
    case Stmt::Kind::ExprStmt:
      return analyzeExpr(cast<ExprStmt>(S)->expr(), 1);
    case Stmt::Kind::If: {
      const auto *I = cast<IfStmt>(S);
      WorkEstimate Cond = analyzeExpr(I->cond(), 1);
      WorkEstimate Then = analyzeBlock(I->thenBlock());
      WorkEstimate Else =
          I->elseBlock() ? analyzeBlock(I->elseBlock()) : WorkEstimate();
      // Take the more expensive arm as the per-firing bound.
      WorkEstimate &Big = Then.totalOps() >= Else.totalOps() ? Then : Else;
      accumulate(Cond, Big);
      // Channel I/O must match across arms for a valid static-rate filter;
      // keep the max anyway (computeStaticRates flags mismatches).
      return Cond;
    }
    case Stmt::Kind::For: {
      const auto *L = cast<ForStmt>(S);
      WorkEstimate Bounds = analyzeExpr(L->begin(), 1);
      accumulate(Bounds, analyzeExpr(L->end(), 1));
      int64_t Trip = tripCount(L, Bounds);
      WorkEstimate Body = analyzeBlock(L->body());
      scale(Body, Trip);
      // Loop overhead: one compare + one increment per iteration.
      Body.IntOps += 2 * Trip;
      accumulate(Bounds, Body);
      return Bounds;
    }
    case Stmt::Kind::Block:
      return analyzeBlock(cast<BlockStmt>(S));
    }
    SGPU_UNREACHABLE("unknown statement kind");
  }

  int64_t tripCount(const ForStmt *L, WorkEstimate &WE) {
    std::optional<int64_t> Begin = tryEvalConstInt(F, L->begin());
    std::optional<int64_t> End = tryEvalConstInt(F, L->end());
    std::optional<int64_t> Step = tryEvalConstInt(F, L->step());
    if (!Begin || !End || !Step || *Step <= 0) {
      WE.Approximate = true;
      return DefaultTripCount;
    }
    if (*End <= *Begin)
      return 0;
    return (*End - *Begin + *Step - 1) / *Step;
  }

  WorkEstimate analyzeExpr(const Expr *E, int Depth) {
    MaxTempDepth = std::max(MaxTempDepth, Depth);
    WorkEstimate WE;
    switch (E->kind()) {
    case Expr::Kind::IntLiteral:
    case Expr::Kind::FloatLiteral:
      return WE;
    case Expr::Kind::VarRef:
      return WE;
    case Expr::Kind::ArrayRef: {
      const auto *A = cast<ArrayRef>(E);
      WE = analyzeExpr(A->index(), Depth + 1);
      ++WE.IntOps; // Address computation.
      if (A->decl()->isArray() && !A->decl()->isField() &&
          A->decl()->arraySize() > MaxRegisterArrayElems)
        ++WE.LocalArrayAccesses;
      return WE;
    }
    case Expr::Kind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      WE = analyzeExpr(B->lhs(), Depth + 1);
      accumulate(WE, analyzeExpr(B->rhs(), Depth + 1));
      if (B->lhs()->type() == TokenType::Float)
        ++WE.FloatOps;
      else
        ++WE.IntOps;
      return WE;
    }
    case Expr::Kind::Unary: {
      const auto *U = cast<UnaryExpr>(E);
      WE = analyzeExpr(U->operand(), Depth + 1);
      if (U->operand()->type() == TokenType::Float)
        ++WE.FloatOps;
      else
        ++WE.IntOps;
      return WE;
    }
    case Expr::Kind::Call: {
      const auto *C = cast<CallExpr>(E);
      for (const Expr *A : C->args())
        accumulate(WE, analyzeExpr(A, Depth + 1));
      switch (C->callee()) {
      case BuiltinFn::Sin:
      case BuiltinFn::Cos:
      case BuiltinFn::Sqrt:
      case BuiltinFn::Exp:
      case BuiltinFn::Log:
      case BuiltinFn::Pow:
        ++WE.TranscOps;
        break;
      default:
        if (C->type() == TokenType::Float)
          ++WE.FloatOps;
        else
          ++WE.IntOps;
        break;
      }
      return WE;
    }
    case Expr::Kind::Cast: {
      WE = analyzeExpr(cast<CastExpr>(E)->operand(), Depth + 1);
      ++WE.IntOps; // Conversion instruction.
      return WE;
    }
    case Expr::Kind::Select: {
      const auto *S = cast<SelectExpr>(E);
      WE = analyzeExpr(S->cond(), Depth + 1);
      accumulate(WE, analyzeExpr(S->trueVal(), Depth + 1));
      accumulate(WE, analyzeExpr(S->falseVal(), Depth + 1));
      ++WE.IntOps;
      return WE;
    }
    case Expr::Kind::Pop:
      ++WE.ChannelReads;
      return WE;
    case Expr::Kind::Peek: {
      WE = analyzeExpr(cast<PeekExpr>(E)->depth(), Depth + 1);
      ++WE.ChannelReads;
      return WE;
    }
    }
    SGPU_UNREACHABLE("unknown expression kind");
  }

  static void accumulate(WorkEstimate &To, const WorkEstimate &From) {
    To.IntOps += From.IntOps;
    To.FloatOps += From.FloatOps;
    To.TranscOps += From.TranscOps;
    To.ChannelReads += From.ChannelReads;
    To.ChannelWrites += From.ChannelWrites;
    To.LocalArrayAccesses += From.LocalArrayAccesses;
    To.LocalArrayBytes += From.LocalArrayBytes;
    To.Approximate = To.Approximate || From.Approximate;
  }

  static void scale(WorkEstimate &WE, int64_t Factor) {
    WE.IntOps *= Factor;
    WE.FloatOps *= Factor;
    WE.TranscOps *= Factor;
    WE.ChannelReads *= Factor;
    WE.ChannelWrites *= Factor;
    WE.LocalArrayAccesses *= Factor;
  }

  const Filter &F;
  int MaxTempDepth = 0;
};

/// Counts pops/pushes along every path; nullopt when arms disagree.
class RateCounter {
public:
  explicit RateCounter(const Filter &F) : F(F) {}

  StaticRates run() {
    auto R = countBlock(F.work().body());
    StaticRates Out;
    if (R) {
      Out.Pops = R->first;
      Out.Pushes = R->second;
    }
    return Out;
  }

private:
  using Counts = std::optional<std::pair<int64_t, int64_t>>;

  Counts countBlock(const BlockStmt *B) {
    int64_t Pops = 0, Pushes = 0;
    for (const Stmt *S : B->body()) {
      Counts C = countStmt(S);
      if (!C)
        return std::nullopt;
      Pops += C->first;
      Pushes += C->second;
    }
    return std::make_pair(Pops, Pushes);
  }

  Counts countStmt(const Stmt *S) {
    switch (S->kind()) {
    case Stmt::Kind::Assign: {
      const auto *A = cast<AssignStmt>(S);
      return addCounts(countExpr(A->target()), countExpr(A->value()));
    }
    case Stmt::Kind::Push: {
      Counts C = countExpr(cast<PushStmt>(S)->value());
      if (!C)
        return std::nullopt;
      return std::make_pair(C->first, C->second + 1);
    }
    case Stmt::Kind::ExprStmt:
      return countExpr(cast<ExprStmt>(S)->expr());
    case Stmt::Kind::If: {
      const auto *I = cast<IfStmt>(S);
      Counts Cond = countExpr(I->cond());
      Counts Then = countBlock(I->thenBlock());
      Counts Else = I->elseBlock() ? countBlock(I->elseBlock())
                                   : Counts(std::make_pair(0, 0));
      if (!Cond || !Then || !Else || *Then != *Else)
        return std::nullopt;
      return addCounts(Cond, Then);
    }
    case Stmt::Kind::For: {
      const auto *L = cast<ForStmt>(S);
      std::optional<int64_t> Begin = tryEvalConstInt(F, L->begin());
      std::optional<int64_t> End = tryEvalConstInt(F, L->end());
      std::optional<int64_t> Step = tryEvalConstInt(F, L->step());
      Counts Body = countBlock(L->body());
      if (!Body)
        return std::nullopt;
      if (Body->first == 0 && Body->second == 0)
        return std::make_pair(int64_t(0), int64_t(0));
      if (!Begin || !End || !Step || *Step <= 0)
        return std::nullopt;
      int64_t Trip = *End <= *Begin ? 0 : (*End - *Begin + *Step - 1) / *Step;
      return std::make_pair(Body->first * Trip, Body->second * Trip);
    }
    case Stmt::Kind::Block:
      return countBlock(cast<BlockStmt>(S));
    }
    SGPU_UNREACHABLE("unknown statement kind");
  }

  Counts countExpr(const Expr *E) {
    switch (E->kind()) {
    case Expr::Kind::IntLiteral:
    case Expr::Kind::FloatLiteral:
    case Expr::Kind::VarRef:
      return std::make_pair(int64_t(0), int64_t(0));
    case Expr::Kind::ArrayRef:
      return countExpr(cast<ArrayRef>(E)->index());
    case Expr::Kind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      // Short-circuit RHS must be pop-free to have static rates.
      if (B->op() == BinOpKind::LAnd || B->op() == BinOpKind::LOr) {
        Counts R = countExpr(B->rhs());
        if (!R || R->first != 0 || R->second != 0)
          return std::nullopt;
      }
      return addCounts(countExpr(B->lhs()), countExpr(B->rhs()));
    }
    case Expr::Kind::Unary:
      return countExpr(cast<UnaryExpr>(E)->operand());
    case Expr::Kind::Call: {
      Counts Total = std::make_pair(int64_t(0), int64_t(0));
      for (const Expr *A : cast<CallExpr>(E)->args())
        Total = addCounts(Total, countExpr(A));
      return Total;
    }
    case Expr::Kind::Cast:
      return countExpr(cast<CastExpr>(E)->operand());
    case Expr::Kind::Select: {
      const auto *S = cast<SelectExpr>(E);
      Counts T = countExpr(S->trueVal());
      Counts Fa = countExpr(S->falseVal());
      if (!T || !Fa || *T != *Fa)
        return std::nullopt;
      return addCounts(countExpr(S->cond()), T);
    }
    case Expr::Kind::Pop:
      return std::make_pair(int64_t(1), int64_t(0));
    case Expr::Kind::Peek:
      return countExpr(cast<PeekExpr>(E)->depth());
    }
    SGPU_UNREACHABLE("unknown expression kind");
  }

  static Counts addCounts(Counts A, Counts B) {
    if (!A || !B)
      return std::nullopt;
    return std::make_pair(A->first + B->first, A->second + B->second);
  }

  const Filter &F;
};

} // namespace

WorkEstimate sgpu::analyzeFilter(const Filter &F) {
  return WorkAnalyzer(F).run();
}

StaticRates sgpu::computeStaticRates(const Filter &F) {
  return RateCounter(F).run();
}

std::optional<std::string> sgpu::validateFilterRates(const Filter &F) {
  StaticRates R = computeStaticRates(F);
  if (!R.Pops || !R.Pushes)
    return "filter '" + F.name() +
           "' has control-flow dependent channel rates";
  if (*R.Pops != F.popRate())
    return "filter '" + F.name() + "' declares pop rate " +
           std::to_string(F.popRate()) + " but its work function pops " +
           std::to_string(*R.Pops);
  if (*R.Pushes != F.pushRate())
    return "filter '" + F.name() + "' declares push rate " +
           std::to_string(F.pushRate()) + " but its work function pushes " +
           std::to_string(*R.Pushes);
  return std::nullopt;
}

std::optional<std::string> sgpu::validateGraphRates(const StreamGraph &G) {
  for (const GraphNode &N : G.nodes())
    if (N.isFilter())
      if (std::optional<std::string> Err = validateFilterRates(*N.TheFilter))
        return Err;
  return std::nullopt;
}
