//===- ir/Analyzer.h - Static work/register analysis ------------*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static analysis over filter work functions. Substitutes for what the
/// paper obtains from nvcc and hardware profiling: per-firing operation
/// counts (the compute side of the profile cost model) and a register
/// requirement estimate (which decides whether a filter fits a given
/// register limit of the {16, 20, 32, 64} profiling sweep, and how much
/// spill traffic it incurs when it does not).
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_IR_ANALYZER_H
#define SGPU_IR_ANALYZER_H

#include "ir/StreamGraph.h"

#include <optional>

namespace sgpu {

/// Per-firing static cost estimate of one filter.
struct WorkEstimate {
  int64_t IntOps = 0;    ///< Integer ALU operations.
  int64_t FloatOps = 0;  ///< Floating point operations.
  int64_t TranscOps = 0; ///< sin/cos/sqrt/exp/log/pow (SFU on the GPU).
  int64_t ChannelReads = 0;  ///< pop() + peek() evaluations.
  int64_t ChannelWrites = 0; ///< push() executions.
  int64_t LocalArrayAccesses = 0; ///< Accesses to spilled local arrays.
  int64_t LocalArrayBytes = 0;    ///< Bytes of per-thread local arrays.
  /// Virtual registers needed: scalar locals + live temporaries +
  /// small arrays promoted to registers + fixed overhead.
  int Registers = 0;
  /// True when some loop bound was not compile-time constant and a
  /// default trip-count estimate was used.
  bool Approximate = false;

  /// Total dynamic "instructions" per firing (compute + channel I/O),
  /// the d(v) building block before the machine model scales it.
  int64_t totalOps() const {
    return IntOps + FloatOps + TranscOps + ChannelReads + ChannelWrites +
           LocalArrayAccesses;
  }
};

/// Statically derived pop/push counts (for validating declared rates).
struct StaticRates {
  std::optional<int64_t> Pops;   ///< nullopt if branch-dependent.
  std::optional<int64_t> Pushes; ///< nullopt if branch-dependent.
};

/// Largest local array size (elements) still promoted to registers; bigger
/// arrays live in (simulated) local memory like nvcc's dynamic-indexed
/// local arrays.
inline constexpr int64_t MaxRegisterArrayElems = 8;

/// Analyzes \p F and returns its per-firing work estimate.
WorkEstimate analyzeFilter(const Filter &F);

/// Computes the pop/push counts implied by the AST, when they are
/// control-flow independent.
StaticRates computeStaticRates(const Filter &F);

/// Evaluates \p E to a compile-time integer if possible. Fields are
/// constants and fold; locals and channel reads do not.
std::optional<int64_t> tryEvalConstInt(const Filter &F, const Expr *E);

/// Validates one filter's declared rates against its AST: statically
/// countable pops/pushes must match popRate()/pushRate(). Returns an
/// error message or std::nullopt. Filters whose counts are control-flow
/// dependent are rejected too — StreamIt rates are fixed at compile time
/// (paper Section II-B).
std::optional<std::string> validateFilterRates(const Filter &F);

/// Runs validateFilterRates over every filter of a flattened graph.
std::optional<std::string> validateGraphRates(const StreamGraph &G);

} // namespace sgpu

#endif // SGPU_IR_ANALYZER_H
