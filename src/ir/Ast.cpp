//===- ir/Ast.cpp - Filter work-function AST -------------------------------===//

#include "ir/Ast.h"

#include "support/Check.h"

using namespace sgpu;

const VarDecl *WorkFunction::makeVar(std::string Name, TokenType Ty,
                                     int64_t ArraySize, VarStorage Storage) {
  auto &Pool = Storage == VarStorage::Field
                   ? Fields
                   : (Storage == VarStorage::State ? StateVars : Locals);
  int Slot = static_cast<int>(Pool.size());
  Pool.push_back(std::make_unique<VarDecl>(std::move(Name), Ty, ArraySize,
                                           Storage, Slot));
  return Pool.back().get();
}

const char *sgpu::binOpSpelling(BinOpKind Op) {
  switch (Op) {
  case BinOpKind::Add:
    return "+";
  case BinOpKind::Sub:
    return "-";
  case BinOpKind::Mul:
    return "*";
  case BinOpKind::Div:
    return "/";
  case BinOpKind::Rem:
    return "%";
  case BinOpKind::And:
    return "&";
  case BinOpKind::Or:
    return "|";
  case BinOpKind::Xor:
    return "^";
  case BinOpKind::Shl:
    return "<<";
  case BinOpKind::Shr:
    return ">>";
  case BinOpKind::Lt:
    return "<";
  case BinOpKind::Le:
    return "<=";
  case BinOpKind::Gt:
    return ">";
  case BinOpKind::Ge:
    return ">=";
  case BinOpKind::Eq:
    return "==";
  case BinOpKind::Ne:
    return "!=";
  case BinOpKind::LAnd:
    return "&&";
  case BinOpKind::LOr:
    return "||";
  }
  SGPU_UNREACHABLE("unknown binary operator");
}

const char *sgpu::unOpSpelling(UnOpKind Op) {
  switch (Op) {
  case UnOpKind::Neg:
    return "-";
  case UnOpKind::BitNot:
    return "~";
  case UnOpKind::LogicalNot:
    return "!";
  }
  SGPU_UNREACHABLE("unknown unary operator");
}

const char *sgpu::builtinName(BuiltinFn Fn) {
  switch (Fn) {
  case BuiltinFn::Sin:
    return "sinf";
  case BuiltinFn::Cos:
    return "cosf";
  case BuiltinFn::Sqrt:
    return "sqrtf";
  case BuiltinFn::Abs:
    return "fabsf";
  case BuiltinFn::Exp:
    return "expf";
  case BuiltinFn::Log:
    return "logf";
  case BuiltinFn::Floor:
    return "floorf";
  case BuiltinFn::Pow:
    return "powf";
  case BuiltinFn::Min:
    return "min";
  case BuiltinFn::Max:
    return "max";
  }
  SGPU_UNREACHABLE("unknown builtin");
}
