//===- ir/Ast.h - Filter work-function AST ----------------------*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The typed AST for filter work functions. A StreamIt filter body is a
/// straight-line imperative program over scalar locals, constant-size local
/// arrays, read-only fields, and the three channel primitives pop(),
/// peek(n) and push(v) (paper Section II-B). The same AST feeds four
/// consumers: the interpreter (CPU baseline and functional GPU simulation),
/// the static work/register analyzer (profiling substitute for nvcc), the
/// CUDA C emitter, and the rate checker.
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_IR_AST_H
#define SGPU_IR_AST_H

#include "ir/Type.h"
#include "support/Casting.h"

#include <memory>
#include <string>
#include <vector>

namespace sgpu {

class WorkFunction;

//===----------------------------------------------------------------------===//
// Variables
//===----------------------------------------------------------------------===//

/// Storage classes a variable declaration can live in.
enum class VarStorage : uint8_t {
  Local, ///< Per-firing local (register candidate on the GPU).
  Field, ///< Per-filter read-only constant, bound at graph build time.
  State  ///< Mutable per-filter state persisting across firings. Makes
         ///< the filter stateful: its instances must fire in order, and
         ///< the GPU compiler rejects it (paper Section II-B / future
         ///< work); the interpreters execute it.
};

/// A variable declaration: a scalar or constant-size array.
class VarDecl {
public:
  VarDecl(std::string Name, TokenType Ty, int64_t ArraySize,
          VarStorage Storage, int Slot)
      : Name(std::move(Name)), Ty(Ty), ArraySize(ArraySize), Storage(Storage),
        Slot(Slot) {}

  const std::string &name() const { return Name; }
  TokenType type() const { return Ty; }
  bool isArray() const { return ArraySize > 0; }
  int64_t arraySize() const { return ArraySize; }
  VarStorage storage() const { return Storage; }
  bool isField() const { return Storage == VarStorage::Field; }
  bool isState() const { return Storage == VarStorage::State; }
  /// Dense index within the owning work function's locals or fields.
  int slot() const { return Slot; }

private:
  std::string Name;
  TokenType Ty;
  int64_t ArraySize; ///< 0 for scalars.
  VarStorage Storage;
  int Slot;
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// Binary operators. Arithmetic ops are overloaded on Int/Float; bitwise
/// and shift ops require Int; comparisons yield Int (0/1).
enum class BinOpKind : uint8_t {
  Add, Sub, Mul, Div, Rem,
  And, Or, Xor, Shl, Shr,
  Lt, Le, Gt, Ge, Eq, Ne,
  LAnd, LOr
};

/// Unary operators.
enum class UnOpKind : uint8_t { Neg, BitNot, LogicalNot };

/// Built-in math functions available on both the CPU and the device.
enum class BuiltinFn : uint8_t {
  Sin, Cos, Sqrt, Abs, Exp, Log, Floor, Pow, Min, Max
};

/// Base expression node. Nodes are owned by the enclosing WorkFunction's
/// arena; child pointers are non-owning.
class Expr {
public:
  enum class Kind : uint8_t {
    IntLiteral,
    FloatLiteral,
    VarRef,
    ArrayRef,
    Binary,
    Unary,
    Call,
    Cast,
    Select,
    Pop,
    Peek
  };

  Kind kind() const { return K; }
  TokenType type() const { return Ty; }

protected:
  Expr(Kind K, TokenType Ty) : K(K), Ty(Ty) {}

private:
  Kind K;
  TokenType Ty;
};

/// An integer literal.
class IntLiteral : public Expr {
public:
  explicit IntLiteral(int64_t Value)
      : Expr(Kind::IntLiteral, TokenType::Int), Value(Value) {}

  int64_t value() const { return Value; }

  static bool classof(const Expr *E) { return E->kind() == Kind::IntLiteral; }

private:
  int64_t Value;
};

/// A floating point literal.
class FloatLiteral : public Expr {
public:
  explicit FloatLiteral(double Value)
      : Expr(Kind::FloatLiteral, TokenType::Float), Value(Value) {}

  double value() const { return Value; }

  static bool classof(const Expr *E) {
    return E->kind() == Kind::FloatLiteral;
  }

private:
  double Value;
};

/// A reference to a scalar variable.
class VarRef : public Expr {
public:
  explicit VarRef(const VarDecl *Var) : Expr(Kind::VarRef, Var->type()),
                                        Var(Var) {}

  const VarDecl *decl() const { return Var; }

  static bool classof(const Expr *E) { return E->kind() == Kind::VarRef; }

private:
  const VarDecl *Var;
};

/// An indexed reference into an array variable.
class ArrayRef : public Expr {
public:
  ArrayRef(const VarDecl *Var, const Expr *Index)
      : Expr(Kind::ArrayRef, Var->type()), Var(Var), Index(Index) {}

  const VarDecl *decl() const { return Var; }
  const Expr *index() const { return Index; }

  static bool classof(const Expr *E) { return E->kind() == Kind::ArrayRef; }

private:
  const VarDecl *Var;
  const Expr *Index;
};

/// A binary operation.
class BinaryExpr : public Expr {
public:
  BinaryExpr(BinOpKind Op, TokenType Ty, const Expr *LHS, const Expr *RHS)
      : Expr(Kind::Binary, Ty), Op(Op), LHS(LHS), RHS(RHS) {}

  BinOpKind op() const { return Op; }
  const Expr *lhs() const { return LHS; }
  const Expr *rhs() const { return RHS; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Binary; }

private:
  BinOpKind Op;
  const Expr *LHS;
  const Expr *RHS;
};

/// A unary operation.
class UnaryExpr : public Expr {
public:
  UnaryExpr(UnOpKind Op, TokenType Ty, const Expr *Operand)
      : Expr(Kind::Unary, Ty), Op(Op), Operand(Operand) {}

  UnOpKind op() const { return Op; }
  const Expr *operand() const { return Operand; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Unary; }

private:
  UnOpKind Op;
  const Expr *Operand;
};

/// A call to a built-in math function.
class CallExpr : public Expr {
public:
  CallExpr(BuiltinFn Fn, TokenType Ty, std::vector<const Expr *> Args)
      : Expr(Kind::Call, Ty), Fn(Fn), Args(std::move(Args)) {}

  BuiltinFn callee() const { return Fn; }
  const std::vector<const Expr *> &args() const { return Args; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Call; }

private:
  BuiltinFn Fn;
  std::vector<const Expr *> Args;
};

/// An explicit int<->float conversion.
class CastExpr : public Expr {
public:
  CastExpr(TokenType To, const Expr *Operand)
      : Expr(Kind::Cast, To), Operand(Operand) {}

  const Expr *operand() const { return Operand; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Cast; }

private:
  const Expr *Operand;
};

/// A ternary select: cond ? t : f. The condition is Int-typed.
class SelectExpr : public Expr {
public:
  SelectExpr(const Expr *Cond, const Expr *TrueVal, const Expr *FalseVal)
      : Expr(Kind::Select, TrueVal->type()), Cond(Cond), TrueVal(TrueVal),
        FalseVal(FalseVal) {}

  const Expr *cond() const { return Cond; }
  const Expr *trueVal() const { return TrueVal; }
  const Expr *falseVal() const { return FalseVal; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Select; }

private:
  const Expr *Cond;
  const Expr *TrueVal;
  const Expr *FalseVal;
};

/// pop(): consumes and yields the next input token.
class PopExpr : public Expr {
public:
  explicit PopExpr(TokenType Ty) : Expr(Kind::Pop, Ty) {}

  static bool classof(const Expr *E) { return E->kind() == Kind::Pop; }
};

/// peek(depth): inspects the input FIFO without consuming (paper II-B).
class PeekExpr : public Expr {
public:
  PeekExpr(TokenType Ty, const Expr *Depth) : Expr(Kind::Peek, Ty),
                                              Depth(Depth) {}

  const Expr *depth() const { return Depth; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Peek; }

private:
  const Expr *Depth;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

/// Base statement node, owned by the enclosing WorkFunction's arena.
class Stmt {
public:
  enum class Kind : uint8_t { Assign, Push, ExprStmt, If, For, Block };

  Kind kind() const { return K; }

protected:
  explicit Stmt(Kind K) : K(K) {}

private:
  Kind K;
};

/// An assignment to a scalar variable or an array element. The target is a
/// VarRef or ArrayRef expression over a Local variable.
class AssignStmt : public Stmt {
public:
  AssignStmt(const Expr *Target, const Expr *Value)
      : Stmt(Kind::Assign), Target(Target), Value(Value) {}

  const Expr *target() const { return Target; }
  const Expr *value() const { return Value; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Assign; }

private:
  const Expr *Target;
  const Expr *Value;
};

/// push(v): appends a token to the output FIFO.
class PushStmt : public Stmt {
public:
  explicit PushStmt(const Expr *Value) : Stmt(Kind::Push), Value(Value) {}

  const Expr *value() const { return Value; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Push; }

private:
  const Expr *Value;
};

/// An expression evaluated for its side effect (a discarded pop()).
class ExprStmt : public Stmt {
public:
  explicit ExprStmt(const Expr *E) : Stmt(Kind::ExprStmt), E(E) {}

  const Expr *expr() const { return E; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::ExprStmt; }

private:
  const Expr *E;
};

/// A list of statements.
class BlockStmt : public Stmt {
public:
  explicit BlockStmt(std::vector<const Stmt *> Body)
      : Stmt(Kind::Block), Body(std::move(Body)) {}

  const std::vector<const Stmt *> &body() const { return Body; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Block; }

private:
  std::vector<const Stmt *> Body;
};

/// if (cond) Then else Else. Else may be null.
class IfStmt : public Stmt {
public:
  IfStmt(const Expr *Cond, const BlockStmt *Then, const BlockStmt *Else)
      : Stmt(Kind::If), Cond(Cond), Then(Then), Else(Else) {}

  const Expr *cond() const { return Cond; }
  const BlockStmt *thenBlock() const { return Then; }
  const BlockStmt *elseBlock() const { return Else; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::If; }

private:
  const Expr *Cond;
  const BlockStmt *Then;
  const BlockStmt *Else;
};

/// for (iv = Begin; iv < End; iv += Step) Body. The induction variable is
/// an Int scalar local; bounds are Int expressions.
class ForStmt : public Stmt {
public:
  ForStmt(const VarDecl *Induction, const Expr *Begin, const Expr *End,
          const Expr *Step, const BlockStmt *Body)
      : Stmt(Kind::For), Induction(Induction), Begin(Begin), End(End),
        Step(Step), Body(Body) {}

  const VarDecl *induction() const { return Induction; }
  const Expr *begin() const { return Begin; }
  const Expr *end() const { return End; }
  const Expr *step() const { return Step; }
  const BlockStmt *body() const { return Body; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::For; }

private:
  const VarDecl *Induction;
  const Expr *Begin;
  const Expr *End;
  const Expr *Step;
  const BlockStmt *Body;
};

//===----------------------------------------------------------------------===//
// WorkFunction
//===----------------------------------------------------------------------===//

/// Owns every AST node and variable of one filter work function.
class WorkFunction {
public:
  WorkFunction() = default;
  WorkFunction(WorkFunction &&) = default;
  WorkFunction &operator=(WorkFunction &&) = default;

  /// Allocates an expression node in the arena.
  template <typename T, typename... Args> const T *makeExpr(Args &&...A) {
    Exprs.push_back(std::make_unique<T>(std::forward<Args>(A)...));
    return static_cast<const T *>(Exprs.back().get());
  }

  /// Allocates a statement node in the arena.
  template <typename T, typename... Args> const T *makeStmt(Args &&...A) {
    Stmts.push_back(std::make_unique<T>(std::forward<Args>(A)...));
    return static_cast<const T *>(Stmts.back().get());
  }

  /// Declares a variable; slots are dense per storage class.
  const VarDecl *makeVar(std::string Name, TokenType Ty, int64_t ArraySize,
                         VarStorage Storage);

  const BlockStmt *body() const { return Body; }
  void setBody(const BlockStmt *B) { Body = B; }

  const std::vector<std::unique_ptr<VarDecl>> &locals() const {
    return Locals;
  }
  const std::vector<std::unique_ptr<VarDecl>> &fields() const {
    return Fields;
  }
  const std::vector<std::unique_ptr<VarDecl>> &stateVars() const {
    return StateVars;
  }

  int numLocalSlots() const { return static_cast<int>(Locals.size()); }
  int numFieldSlots() const { return static_cast<int>(Fields.size()); }
  int numStateSlots() const { return static_cast<int>(StateVars.size()); }

private:
  std::vector<std::unique_ptr<Expr>> Exprs;
  std::vector<std::unique_ptr<Stmt>> Stmts;
  std::vector<std::unique_ptr<VarDecl>> Locals;
  std::vector<std::unique_ptr<VarDecl>> Fields;
  std::vector<std::unique_ptr<VarDecl>> StateVars;
  const BlockStmt *Body = nullptr;
};

/// Returns the C spelling of a binary operator ("+", "<<", ...).
const char *binOpSpelling(BinOpKind Op);

/// Returns the C spelling of a unary operator ("-", "~", "!").
const char *unOpSpelling(UnOpKind Op);

/// Returns the name of a builtin ("sinf", "sqrtf", ...), CUDA spelling.
const char *builtinName(BuiltinFn Fn);

} // namespace sgpu

#endif // SGPU_IR_AST_H
