//===- ir/AstPrinter.cpp - C-like AST rendering -----------------------------===//

#include "ir/AstPrinter.h"

#include "support/Check.h"

#include <set>
#include <sstream>

using namespace sgpu;

ChannelLowering sgpu::symbolicChannelLowering() {
  ChannelLowering L;
  L.Pop = [](const std::string &) { return std::string("pop()"); };
  L.Peek = [](const std::string &D) { return "peek(" + D + ")"; };
  L.Push = [](const std::string &, const std::string &V) {
    return "push(" + V + ")";
  };
  return L;
}

namespace {

/// Precedence levels (C-like), larger binds tighter.
int binOpPrecedence(BinOpKind Op) {
  switch (Op) {
  case BinOpKind::Mul:
  case BinOpKind::Div:
  case BinOpKind::Rem:
    return 10;
  case BinOpKind::Add:
  case BinOpKind::Sub:
    return 9;
  case BinOpKind::Shl:
  case BinOpKind::Shr:
    return 8;
  case BinOpKind::Lt:
  case BinOpKind::Le:
  case BinOpKind::Gt:
  case BinOpKind::Ge:
    return 7;
  case BinOpKind::Eq:
  case BinOpKind::Ne:
    return 6;
  case BinOpKind::And:
    return 5;
  case BinOpKind::Xor:
    return 4;
  case BinOpKind::Or:
    return 3;
  case BinOpKind::LAnd:
    return 2;
  case BinOpKind::LOr:
    return 1;
  }
  SGPU_UNREACHABLE("unknown binary operator");
}

class Printer {
public:
  Printer(const Filter *F, const ChannelLowering &L) : F(F), L(L) {}

  std::string body(int Indent) {
    assert(F && "body() requires a filter context");
    std::ostringstream OS;
    // Locals first; the induction variables are declared by their loops.
    collectInductionVars(F->work().body());
    for (const auto &V : F->work().locals()) {
      if (InductionVars.count(V.get()))
        continue;
      OS << std::string(Indent, ' ') << tokenTypeName(V->type()) << " "
         << V->name();
      if (V->isArray())
        OS << "[" << V->arraySize() << "]";
      OS << ";\n";
    }
    printBlock(OS, F->work().body(), Indent);
    return OS.str();
  }

  std::string expr(const Expr *E) { return printExprP(E, 0); }

private:
  void collectInductionVars(const Stmt *S) {
    switch (S->kind()) {
    case Stmt::Kind::For: {
      const auto *Fo = cast<ForStmt>(S);
      InductionVars.insert(Fo->induction());
      collectInductionVars(Fo->body());
      return;
    }
    case Stmt::Kind::If: {
      const auto *I = cast<IfStmt>(S);
      collectInductionVars(I->thenBlock());
      if (I->elseBlock())
        collectInductionVars(I->elseBlock());
      return;
    }
    case Stmt::Kind::Block:
      for (const Stmt *C : cast<BlockStmt>(S)->body())
        collectInductionVars(C);
      return;
    default:
      return;
    }
  }

  void printBlock(std::ostringstream &OS, const BlockStmt *B, int Indent) {
    for (const Stmt *S : B->body())
      printStmt(OS, S, Indent);
  }

  void printStmt(std::ostringstream &OS, const Stmt *S, int Indent) {
    std::string Pad(Indent, ' ');
    switch (S->kind()) {
    case Stmt::Kind::Assign: {
      const auto *A = cast<AssignStmt>(S);
      OS << Pad << printExprP(A->target(), 0) << " = "
         << printExprP(A->value(), 0) << ";\n";
      return;
    }
    case Stmt::Kind::Push: {
      const auto *P = cast<PushStmt>(S);
      OS << Pad << L.Push("__push_idx++", printExprP(P->value(), 0))
         << ";\n";
      return;
    }
    case Stmt::Kind::ExprStmt:
      OS << Pad << printExprP(cast<ExprStmt>(S)->expr(), 0) << ";\n";
      return;
    case Stmt::Kind::If: {
      const auto *I = cast<IfStmt>(S);
      OS << Pad << "if (" << printExprP(I->cond(), 0) << ") {\n";
      printBlock(OS, I->thenBlock(), Indent + 2);
      if (I->elseBlock()) {
        OS << Pad << "} else {\n";
        printBlock(OS, I->elseBlock(), Indent + 2);
      }
      OS << Pad << "}\n";
      return;
    }
    case Stmt::Kind::For: {
      const auto *Fo = cast<ForStmt>(S);
      const std::string IV = Fo->induction()->name();
      OS << Pad << "for (int " << IV << " = " << printExprP(Fo->begin(), 0)
         << "; " << IV << " < " << printExprP(Fo->end(), 0) << "; " << IV
         << " += " << printExprP(Fo->step(), 0) << ") {\n";
      printBlock(OS, Fo->body(), Indent + 2);
      OS << Pad << "}\n";
      return;
    }
    case Stmt::Kind::Block:
      printBlock(OS, cast<BlockStmt>(S), Indent);
      return;
    }
    SGPU_UNREACHABLE("unknown statement kind");
  }

  std::string printExprP(const Expr *E, int ParentPrec) {
    switch (E->kind()) {
    case Expr::Kind::IntLiteral:
      return std::to_string(cast<IntLiteral>(E)->value());
    case Expr::Kind::FloatLiteral: {
      std::ostringstream OS;
      double V = cast<FloatLiteral>(E)->value();
      OS << V;
      std::string S = OS.str();
      if (S.find('.') == std::string::npos &&
          S.find('e') == std::string::npos &&
          S.find("inf") == std::string::npos &&
          S.find("nan") == std::string::npos)
        S += ".0";
      return S + "f";
    }
    case Expr::Kind::VarRef:
      return cast<VarRef>(E)->decl()->name();
    case Expr::Kind::ArrayRef: {
      const auto *A = cast<ArrayRef>(E);
      return A->decl()->name() + "[" + printExprP(A->index(), 0) + "]";
    }
    case Expr::Kind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      int Prec = binOpPrecedence(B->op());
      std::string S = printExprP(B->lhs(), Prec) + " " +
                      binOpSpelling(B->op()) + " " +
                      printExprP(B->rhs(), Prec + 1);
      return Prec < ParentPrec ? "(" + S + ")" : S;
    }
    case Expr::Kind::Unary: {
      const auto *U = cast<UnaryExpr>(E);
      return std::string(unOpSpelling(U->op())) + "(" +
             printExprP(U->operand(), 0) + ")";
    }
    case Expr::Kind::Call: {
      const auto *C = cast<CallExpr>(E);
      std::string S = builtinName(C->callee());
      S += "(";
      for (size_t I = 0; I < C->args().size(); ++I) {
        if (I)
          S += ", ";
        S += printExprP(C->args()[I], 0);
      }
      return S + ")";
    }
    case Expr::Kind::Cast: {
      const auto *C = cast<CastExpr>(E);
      return std::string("(") + tokenTypeName(C->type()) + ")(" +
             printExprP(C->operand(), 0) + ")";
    }
    case Expr::Kind::Select: {
      const auto *S = cast<SelectExpr>(E);
      return "(" + printExprP(S->cond(), 0) + " ? " +
             printExprP(S->trueVal(), 0) + " : " +
             printExprP(S->falseVal(), 0) + ")";
    }
    case Expr::Kind::Pop:
      return L.Pop("__pop_idx++");
    case Expr::Kind::Peek:
      return L.Peek(printExprP(cast<PeekExpr>(E)->depth(), 0));
    }
    SGPU_UNREACHABLE("unknown expression kind");
  }

  const Filter *F;
  const ChannelLowering &L;
  std::set<const VarDecl *> InductionVars;
};

} // namespace

std::string sgpu::printWorkBody(const Filter &F,
                                const ChannelLowering &Lowering, int Indent) {
  Printer P(&F, Lowering);
  return P.body(Indent);
}

std::string sgpu::printExpr(const Expr *E, const ChannelLowering &Lowering) {
  // Expression rendering never touches the filter context.
  Printer P(nullptr, Lowering);
  return P.expr(E);
}

/// Renders a float constant with an explicit decimal point and 'f'
/// suffix so the emitted CUDA is well formed ("1.0f", not "1f").
static std::string floatConstant(double V) {
  std::ostringstream OS;
  OS << V;
  std::string S = OS.str();
  if (S.find('.') == std::string::npos &&
      S.find('e') == std::string::npos)
    S += ".0";
  return S + "f";
}

std::string sgpu::printFieldConstants(const Filter &F,
                                      const std::string &Prefix) {
  std::ostringstream OS;
  for (const auto &V : F.work().fields()) {
    const std::vector<Scalar> &Vals = F.fieldValues(V->slot());
    OS << "__device__ const " << tokenTypeName(V->type()) << " " << Prefix
       << V->name();
    if (V->isArray()) {
      OS << "[" << V->arraySize() << "] = {";
      for (size_t I = 0; I < Vals.size(); ++I) {
        if (I)
          OS << ", ";
        if (V->type() == TokenType::Int)
          OS << Vals[I].asInt();
        else
          OS << floatConstant(Vals[I].asFloat());
      }
      OS << "};\n";
    } else {
      OS << " = ";
      if (V->type() == TokenType::Int)
        OS << Vals[0].asInt();
      else
        OS << floatConstant(Vals[0].asFloat());
      OS << ";\n";
    }
  }
  return OS.str();
}
