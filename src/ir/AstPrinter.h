//===- ir/AstPrinter.h - C-like AST rendering -------------------*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders work-function ASTs as C code. The channel primitives pop(),
/// peek(n) and push(v) are rendered through caller-supplied hooks: the
/// debug printer leaves them symbolic while the CUDA emitter expands them
/// into buffer index arithmetic following the paper's Eqs. 10-11.
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_IR_ASTPRINTER_H
#define SGPU_IR_ASTPRINTER_H

#include "ir/Filter.h"

#include <functional>
#include <string>

namespace sgpu {

/// Customization hooks for the channel primitives.
struct ChannelLowering {
  /// Renders the value of the N-th dynamic pop. The running pop ordinal
  /// is not statically known, so the hook receives a C expression that
  /// evaluates to it at runtime ("__pop_idx++").
  std::function<std::string(const std::string &PopOrdinalExpr)> Pop;
  /// Renders peek(DepthExpr).
  std::function<std::string(const std::string &DepthExpr)> Peek;
  /// Renders push(ValueExpr) as a statement (without trailing ';').
  std::function<std::string(const std::string &PushOrdinalExpr,
                            const std::string &ValueExpr)>
      Push;
};

/// Returns a default lowering that keeps primitives symbolic:
/// pop() -> "pop()", peek(e) -> "peek(e)", push(v) -> "push(v)".
ChannelLowering symbolicChannelLowering();

/// Renders \p F's work function body as C statements indented by
/// \p Indent spaces, using \p Lowering for channel primitives. Declares
/// the filter's locals at the top.
std::string printWorkBody(const Filter &F, const ChannelLowering &Lowering,
                          int Indent = 2);

/// Renders one expression (mostly for tests/diagnostics).
std::string printExpr(const Expr *E, const ChannelLowering &Lowering);

/// Renders the field constant declarations of \p F as C global constants
/// with the given symbol prefix.
std::string printFieldConstants(const Filter &F, const std::string &Prefix);

} // namespace sgpu

#endif // SGPU_IR_ASTPRINTER_H
