//===- ir/Filter.cpp - StreamIt filter definition --------------------------===//

#include "ir/Filter.h"

// Filter is header-only apart from anchoring this translation unit; the
// definition object is immutable after FilterBuilder::build().
