//===- ir/Filter.h - StreamIt filter definition -----------------*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A StreamIt filter: declared pop/push/peek rates, read-only fields, and a
/// work-function AST. The paper considers stateless filters only (Section
/// II-B); fields here are constants bound when the graph is built, never
/// mutated by work(), so different instances of a filter may fire out of
/// order or in parallel across SMs.
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_IR_FILTER_H
#define SGPU_IR_FILTER_H

#include "ir/Ast.h"
#include "ir/Type.h"

#include <memory>
#include <string>
#include <vector>

namespace sgpu {

/// An immutable filter definition. Build one with FilterBuilder; share it
/// between graph nodes with shared_ptr (each node is a separate instance
/// stream-graph-wise, the definition is reused).
class Filter {
public:
  friend class FilterBuilder;

  const std::string &name() const { return Name; }
  TokenType inputType() const { return InType; }
  TokenType outputType() const { return OutType; }

  /// Tokens consumed from the input FIFO per firing.
  int64_t popRate() const { return PopRate; }
  /// Tokens produced onto the output FIFO per firing.
  int64_t pushRate() const { return PushRate; }
  /// Depth up to which work() may peek(); always >= popRate.
  int64_t peekRate() const { return PeekRate; }
  /// True when the filter inspects beyond what it pops (Table I column).
  bool isPeeking() const { return PeekRate > PopRate; }

  bool isSource() const { return PopRate == 0; }
  bool isSink() const { return PushRate == 0; }

  /// True when the filter carries mutable state across firings. Stateful
  /// filters serialize their instances and cannot be data-parallelized
  /// on the GPU (the paper considers stateless programs only and lists
  /// stateful handling as future work; compileForGpu rejects them).
  bool isStateful() const { return !StateInit.empty(); }

  const WorkFunction &work() const { return Work; }

  /// Constant values of field \p Slot (size 1 for scalar fields).
  const std::vector<Scalar> &fieldValues(int Slot) const {
    assert(Slot >= 0 && Slot < static_cast<int>(FieldValues.size()) &&
           "field slot out of range");
    return FieldValues[Slot];
  }

  /// Initial values of state variable \p Slot (size 1 for scalars).
  const std::vector<Scalar> &stateInit(int Slot) const {
    assert(Slot >= 0 && Slot < static_cast<int>(StateInit.size()) &&
           "state slot out of range");
    return StateInit[Slot];
  }

private:
  Filter() = default;

  std::string Name;
  TokenType InType = TokenType::Float;
  TokenType OutType = TokenType::Float;
  int64_t PopRate = 0;
  int64_t PushRate = 0;
  int64_t PeekRate = 0;
  WorkFunction Work;
  std::vector<std::vector<Scalar>> FieldValues;
  std::vector<std::vector<Scalar>> StateInit;
};

using FilterPtr = std::shared_ptr<const Filter>;

} // namespace sgpu

#endif // SGPU_IR_FILTER_H
