//===- ir/FilterBuilder.cpp - IRBuilder-style filter construction ----------===//

#include "ir/FilterBuilder.h"

#include "support/Check.h"

using namespace sgpu;

/// A block under construction plus the control statement that will own it.
struct FilterBuilder::OpenBlock {
  enum class Kind { Top, ForBody, IfThen, IfElse };

  Kind K = Kind::Top;
  std::vector<const Stmt *> Stmts;

  // ForBody payload.
  const VarDecl *Induction = nullptr;
  const Expr *Begin = nullptr;
  const Expr *End = nullptr;
  const Expr *Step = nullptr;

  // IfThen / IfElse payload.
  const Expr *Cond = nullptr;
  const BlockStmt *ThenBlock = nullptr;
};

FilterBuilder::FilterBuilder(std::string Name, TokenType InType,
                             TokenType OutType)
    : F(new Filter()) {
  F->Name = std::move(Name);
  F->InType = InType;
  F->OutType = OutType;
  BlockStack.emplace_back();
}

FilterBuilder::~FilterBuilder() = default;

void FilterBuilder::setRates(int64_t Pop, int64_t Push, int64_t Peek) {
  assert(Pop >= 0 && Push >= 0 && "rates must be non-negative");
  if (Peek < 0)
    Peek = Pop;
  assert(Peek >= Pop && "peek depth must be >= pop rate (paper II-B)");
  F->PopRate = Pop;
  F->PushRate = Push;
  F->PeekRate = Peek;
}

//===----------------------------------------------------------------------===//
// Fields
//===----------------------------------------------------------------------===//

const VarDecl *FilterBuilder::fieldScalarI(const std::string &Name,
                                           int64_t Value) {
  const VarDecl *V =
      F->Work.makeVar(Name, TokenType::Int, /*ArraySize=*/0,
                      VarStorage::Field);
  F->FieldValues.push_back({Scalar::makeInt(Value)});
  return V;
}

const VarDecl *FilterBuilder::fieldScalarF(const std::string &Name,
                                           double Value) {
  const VarDecl *V =
      F->Work.makeVar(Name, TokenType::Float, /*ArraySize=*/0,
                      VarStorage::Field);
  F->FieldValues.push_back({Scalar::makeFloat(Value)});
  return V;
}

const VarDecl *FilterBuilder::fieldArrayI(const std::string &Name,
                                          const std::vector<int64_t> &Values) {
  assert(!Values.empty() && "field array must be non-empty");
  const VarDecl *V = F->Work.makeVar(
      Name, TokenType::Int, static_cast<int64_t>(Values.size()),
      VarStorage::Field);
  std::vector<Scalar> Init;
  Init.reserve(Values.size());
  for (int64_t X : Values)
    Init.push_back(Scalar::makeInt(X));
  F->FieldValues.push_back(std::move(Init));
  return V;
}

const VarDecl *FilterBuilder::fieldArrayF(const std::string &Name,
                                          const std::vector<double> &Values) {
  assert(!Values.empty() && "field array must be non-empty");
  const VarDecl *V = F->Work.makeVar(
      Name, TokenType::Float, static_cast<int64_t>(Values.size()),
      VarStorage::Field);
  std::vector<Scalar> Init;
  Init.reserve(Values.size());
  for (double X : Values)
    Init.push_back(Scalar::makeFloat(X));
  F->FieldValues.push_back(std::move(Init));
  return V;
}

//===----------------------------------------------------------------------===//
// State
//===----------------------------------------------------------------------===//

const VarDecl *FilterBuilder::stateScalarI(const std::string &Name,
                                           int64_t Init) {
  const VarDecl *V = F->Work.makeVar(Name, TokenType::Int, /*ArraySize=*/0,
                                     VarStorage::State);
  F->StateInit.push_back({Scalar::makeInt(Init)});
  return V;
}

const VarDecl *FilterBuilder::stateScalarF(const std::string &Name,
                                           double Init) {
  const VarDecl *V = F->Work.makeVar(Name, TokenType::Float,
                                     /*ArraySize=*/0, VarStorage::State);
  F->StateInit.push_back({Scalar::makeFloat(Init)});
  return V;
}

const VarDecl *FilterBuilder::stateArrayF(const std::string &Name,
                                          const std::vector<double> &Init) {
  assert(!Init.empty() && "state array must be non-empty");
  const VarDecl *V = F->Work.makeVar(
      Name, TokenType::Float, static_cast<int64_t>(Init.size()),
      VarStorage::State);
  std::vector<Scalar> Vals;
  for (double X : Init)
    Vals.push_back(Scalar::makeFloat(X));
  F->StateInit.push_back(std::move(Vals));
  return V;
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

const Expr *FilterBuilder::litI(int64_t V) {
  return F->Work.makeExpr<IntLiteral>(V);
}

const Expr *FilterBuilder::litF(double V) {
  return F->Work.makeExpr<FloatLiteral>(V);
}

const Expr *FilterBuilder::ref(const VarDecl *Var) {
  assert(!Var->isArray() && "use index() for arrays");
  return F->Work.makeExpr<VarRef>(Var);
}

const Expr *FilterBuilder::index(const VarDecl *Array, const Expr *Idx) {
  assert(Array->isArray() && "index() requires an array variable");
  assert(Idx->type() == TokenType::Int && "array index must be int");
  return F->Work.makeExpr<ArrayRef>(Array, Idx);
}

TokenType FilterBuilder::commonType(const Expr *L, const Expr *R) const {
  if (L->type() == R->type())
    return L->type();
  return TokenType::Float;
}

const Expr *FilterBuilder::binary(BinOpKind Op, const Expr *L, const Expr *R) {
  switch (Op) {
  case BinOpKind::And:
  case BinOpKind::Or:
  case BinOpKind::Xor:
  case BinOpKind::Shl:
  case BinOpKind::Shr:
  case BinOpKind::LAnd:
  case BinOpKind::LOr:
    assert(L->type() == TokenType::Int && R->type() == TokenType::Int &&
           "bitwise/logical operators require int operands");
    return F->Work.makeExpr<BinaryExpr>(Op, TokenType::Int, L, R);
  case BinOpKind::Rem:
    assert(L->type() == TokenType::Int && R->type() == TokenType::Int &&
           "% requires int operands");
    return F->Work.makeExpr<BinaryExpr>(Op, TokenType::Int, L, R);
  case BinOpKind::Lt:
  case BinOpKind::Le:
  case BinOpKind::Gt:
  case BinOpKind::Ge:
  case BinOpKind::Eq:
  case BinOpKind::Ne: {
    TokenType Ty = commonType(L, R);
    if (L->type() != Ty)
      L = F->Work.makeExpr<CastExpr>(Ty, L);
    if (R->type() != Ty)
      R = F->Work.makeExpr<CastExpr>(Ty, R);
    return F->Work.makeExpr<BinaryExpr>(Op, TokenType::Int, L, R);
  }
  case BinOpKind::Add:
  case BinOpKind::Sub:
  case BinOpKind::Mul:
  case BinOpKind::Div: {
    TokenType Ty = commonType(L, R);
    if (L->type() != Ty)
      L = F->Work.makeExpr<CastExpr>(Ty, L);
    if (R->type() != Ty)
      R = F->Work.makeExpr<CastExpr>(Ty, R);
    return F->Work.makeExpr<BinaryExpr>(Op, Ty, L, R);
  }
  }
  SGPU_UNREACHABLE("unknown binary operator");
}

const Expr *FilterBuilder::add(const Expr *L, const Expr *R) {
  return binary(BinOpKind::Add, L, R);
}
const Expr *FilterBuilder::sub(const Expr *L, const Expr *R) {
  return binary(BinOpKind::Sub, L, R);
}
const Expr *FilterBuilder::mul(const Expr *L, const Expr *R) {
  return binary(BinOpKind::Mul, L, R);
}
const Expr *FilterBuilder::div(const Expr *L, const Expr *R) {
  return binary(BinOpKind::Div, L, R);
}
const Expr *FilterBuilder::rem(const Expr *L, const Expr *R) {
  return binary(BinOpKind::Rem, L, R);
}
const Expr *FilterBuilder::bitAnd(const Expr *L, const Expr *R) {
  return binary(BinOpKind::And, L, R);
}
const Expr *FilterBuilder::bitOr(const Expr *L, const Expr *R) {
  return binary(BinOpKind::Or, L, R);
}
const Expr *FilterBuilder::bitXor(const Expr *L, const Expr *R) {
  return binary(BinOpKind::Xor, L, R);
}
const Expr *FilterBuilder::shl(const Expr *L, const Expr *R) {
  return binary(BinOpKind::Shl, L, R);
}
const Expr *FilterBuilder::shr(const Expr *L, const Expr *R) {
  return binary(BinOpKind::Shr, L, R);
}
const Expr *FilterBuilder::lt(const Expr *L, const Expr *R) {
  return binary(BinOpKind::Lt, L, R);
}
const Expr *FilterBuilder::le(const Expr *L, const Expr *R) {
  return binary(BinOpKind::Le, L, R);
}
const Expr *FilterBuilder::gt(const Expr *L, const Expr *R) {
  return binary(BinOpKind::Gt, L, R);
}
const Expr *FilterBuilder::ge(const Expr *L, const Expr *R) {
  return binary(BinOpKind::Ge, L, R);
}
const Expr *FilterBuilder::eq(const Expr *L, const Expr *R) {
  return binary(BinOpKind::Eq, L, R);
}
const Expr *FilterBuilder::ne(const Expr *L, const Expr *R) {
  return binary(BinOpKind::Ne, L, R);
}
const Expr *FilterBuilder::logicalAnd(const Expr *L, const Expr *R) {
  return binary(BinOpKind::LAnd, L, R);
}
const Expr *FilterBuilder::logicalOr(const Expr *L, const Expr *R) {
  return binary(BinOpKind::LOr, L, R);
}

const Expr *FilterBuilder::unary(UnOpKind Op, const Expr *E) {
  if (Op != UnOpKind::Neg)
    assert(E->type() == TokenType::Int && "~ and ! require int operands");
  return F->Work.makeExpr<UnaryExpr>(Op, E->type(), E);
}

const Expr *FilterBuilder::neg(const Expr *E) {
  return unary(UnOpKind::Neg, E);
}
const Expr *FilterBuilder::bitNot(const Expr *E) {
  return unary(UnOpKind::BitNot, E);
}
const Expr *FilterBuilder::logicalNot(const Expr *E) {
  return unary(UnOpKind::LogicalNot, E);
}

static const Expr *makeUnaryCall(WorkFunction &W, BuiltinFn Fn,
                                 const Expr *E) {
  assert(E->type() == TokenType::Float && "math builtin requires float");
  return W.makeExpr<CallExpr>(Fn, TokenType::Float,
                              std::vector<const Expr *>{E});
}

const Expr *FilterBuilder::callSin(const Expr *E) {
  return makeUnaryCall(F->Work, BuiltinFn::Sin, E);
}
const Expr *FilterBuilder::callCos(const Expr *E) {
  return makeUnaryCall(F->Work, BuiltinFn::Cos, E);
}
const Expr *FilterBuilder::callSqrt(const Expr *E) {
  return makeUnaryCall(F->Work, BuiltinFn::Sqrt, E);
}
const Expr *FilterBuilder::callAbs(const Expr *E) {
  if (E->type() == TokenType::Int)
    return F->Work.makeExpr<CallExpr>(BuiltinFn::Abs, TokenType::Int,
                                      std::vector<const Expr *>{E});
  return makeUnaryCall(F->Work, BuiltinFn::Abs, E);
}
const Expr *FilterBuilder::callExp(const Expr *E) {
  return makeUnaryCall(F->Work, BuiltinFn::Exp, E);
}
const Expr *FilterBuilder::callLog(const Expr *E) {
  return makeUnaryCall(F->Work, BuiltinFn::Log, E);
}
const Expr *FilterBuilder::callFloor(const Expr *E) {
  return makeUnaryCall(F->Work, BuiltinFn::Floor, E);
}
const Expr *FilterBuilder::callPow(const Expr *Base, const Expr *Exp) {
  assert(Base->type() == TokenType::Float && Exp->type() == TokenType::Float &&
         "pow requires float operands");
  return F->Work.makeExpr<CallExpr>(BuiltinFn::Pow, TokenType::Float,
                                    std::vector<const Expr *>{Base, Exp});
}
const Expr *FilterBuilder::callMin(const Expr *L, const Expr *R) {
  assert(L->type() == R->type() && "min requires matching types");
  return F->Work.makeExpr<CallExpr>(BuiltinFn::Min, L->type(),
                                    std::vector<const Expr *>{L, R});
}
const Expr *FilterBuilder::callMax(const Expr *L, const Expr *R) {
  assert(L->type() == R->type() && "max requires matching types");
  return F->Work.makeExpr<CallExpr>(BuiltinFn::Max, L->type(),
                                    std::vector<const Expr *>{L, R});
}

const Expr *FilterBuilder::castToInt(const Expr *E) {
  if (E->type() == TokenType::Int)
    return E;
  return F->Work.makeExpr<CastExpr>(TokenType::Int, E);
}

const Expr *FilterBuilder::castToFloat(const Expr *E) {
  if (E->type() == TokenType::Float)
    return E;
  return F->Work.makeExpr<CastExpr>(TokenType::Float, E);
}

const Expr *FilterBuilder::select(const Expr *Cond, const Expr *T,
                                  const Expr *Fv) {
  assert(Cond->type() == TokenType::Int && "select condition must be int");
  assert(T->type() == Fv->type() && "select arms must have matching types");
  return F->Work.makeExpr<SelectExpr>(Cond, T, Fv);
}

const Expr *FilterBuilder::pop() {
  return F->Work.makeExpr<PopExpr>(F->InType);
}

const Expr *FilterBuilder::peek(const Expr *Depth) {
  assert(Depth->type() == TokenType::Int && "peek depth must be int");
  return F->Work.makeExpr<PeekExpr>(F->InType, Depth);
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

void FilterBuilder::appendStmt(const Stmt *S) {
  assert(!Finalized && "builder already finalized");
  BlockStack.back().Stmts.push_back(S);
}

const VarDecl *FilterBuilder::declVar(const std::string &Name,
                                      const Expr *Init) {
  const VarDecl *V =
      F->Work.makeVar(Name, Init->type(), /*ArraySize=*/0, VarStorage::Local);
  appendStmt(
      F->Work.makeStmt<AssignStmt>(F->Work.makeExpr<VarRef>(V), Init));
  return V;
}

const VarDecl *FilterBuilder::declVar(const std::string &Name, TokenType Ty) {
  return F->Work.makeVar(Name, Ty, /*ArraySize=*/0, VarStorage::Local);
}

const VarDecl *FilterBuilder::declArray(const std::string &Name, TokenType Ty,
                                        int64_t Size) {
  assert(Size > 0 && "local array must have positive constant size");
  return F->Work.makeVar(Name, Ty, Size, VarStorage::Local);
}

void FilterBuilder::assign(const VarDecl *Var, const Expr *Value) {
  assert(!Var->isField() && "fields are read-only");
  assert(!Var->isArray() && "use assignIndex for arrays");
  const Expr *V =
      Var->type() == Value->type()
          ? Value
          : F->Work.makeExpr<CastExpr>(Var->type(), Value);
  appendStmt(F->Work.makeStmt<AssignStmt>(F->Work.makeExpr<VarRef>(Var), V));
}

void FilterBuilder::assignIndex(const VarDecl *Array, const Expr *Idx,
                                const Expr *Value) {
  assert(!Array->isField() && "fields are read-only");
  assert(Array->isArray() && "assignIndex requires an array");
  const Expr *V =
      Array->type() == Value->type()
          ? Value
          : F->Work.makeExpr<CastExpr>(Array->type(), Value);
  appendStmt(F->Work.makeStmt<AssignStmt>(
      F->Work.makeExpr<ArrayRef>(Array, Idx), V));
}

void FilterBuilder::push(const Expr *Value) {
  const Expr *V =
      F->OutType == Value->type()
          ? Value
          : F->Work.makeExpr<CastExpr>(F->OutType, Value);
  appendStmt(F->Work.makeStmt<PushStmt>(V));
}

void FilterBuilder::popDiscard() {
  appendStmt(F->Work.makeStmt<ExprStmt>(pop()));
}

void FilterBuilder::popDiscard(int64_t N) {
  assert(N >= 0 && "cannot pop a negative count");
  for (int64_t I = 0; I < N; ++I)
    popDiscard();
}

const VarDecl *FilterBuilder::beginFor(const std::string &Name,
                                       const Expr *Begin, const Expr *End,
                                       const Expr *Step) {
  assert(Begin->type() == TokenType::Int && End->type() == TokenType::Int &&
         "loop bounds must be int");
  const VarDecl *IV =
      F->Work.makeVar(Name, TokenType::Int, /*ArraySize=*/0,
                      VarStorage::Local);
  OpenBlock B;
  B.K = OpenBlock::Kind::ForBody;
  B.Induction = IV;
  B.Begin = Begin;
  B.End = End;
  B.Step = Step ? Step : litI(1);
  BlockStack.push_back(std::move(B));
  return IV;
}

void FilterBuilder::endFor() {
  assert(BlockStack.size() > 1 &&
         BlockStack.back().K == OpenBlock::Kind::ForBody &&
         "endFor without matching beginFor");
  OpenBlock B = std::move(BlockStack.back());
  BlockStack.pop_back();
  const BlockStmt *Body = F->Work.makeStmt<BlockStmt>(std::move(B.Stmts));
  appendStmt(F->Work.makeStmt<ForStmt>(B.Induction, B.Begin, B.End, B.Step,
                                       Body));
}

void FilterBuilder::beginIf(const Expr *Cond) {
  assert(Cond->type() == TokenType::Int && "if condition must be int");
  OpenBlock B;
  B.K = OpenBlock::Kind::IfThen;
  B.Cond = Cond;
  BlockStack.push_back(std::move(B));
}

void FilterBuilder::beginElse() {
  assert(BlockStack.size() > 1 &&
         BlockStack.back().K == OpenBlock::Kind::IfThen &&
         "beginElse without open if");
  OpenBlock Then = std::move(BlockStack.back());
  BlockStack.pop_back();
  OpenBlock B;
  B.K = OpenBlock::Kind::IfElse;
  B.Cond = Then.Cond;
  B.ThenBlock = F->Work.makeStmt<BlockStmt>(std::move(Then.Stmts));
  BlockStack.push_back(std::move(B));
}

void FilterBuilder::endIf() {
  assert(BlockStack.size() > 1 && "endIf without open if");
  OpenBlock B = std::move(BlockStack.back());
  BlockStack.pop_back();
  if (B.K == OpenBlock::Kind::IfThen) {
    const BlockStmt *Then = F->Work.makeStmt<BlockStmt>(std::move(B.Stmts));
    appendStmt(F->Work.makeStmt<IfStmt>(B.Cond, Then, nullptr));
    return;
  }
  assert(B.K == OpenBlock::Kind::IfElse && "endIf on a non-if block");
  const BlockStmt *Else = F->Work.makeStmt<BlockStmt>(std::move(B.Stmts));
  appendStmt(F->Work.makeStmt<IfStmt>(B.Cond, B.ThenBlock, Else));
}

FilterPtr FilterBuilder::build() {
  assert(!Finalized && "builder already finalized");
  assert(BlockStack.size() == 1 && "unclosed for/if block at build()");
  assert((F->PopRate + F->PushRate) > 0 && "filter with no I/O");
  Finalized = true;
  F->Work.setBody(
      F->Work.makeStmt<BlockStmt>(std::move(BlockStack.back().Stmts)));
  BlockStack.clear();
  return FilterPtr(F.release());
}
