//===- ir/FilterBuilder.h - IRBuilder-style filter construction -*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fluent builder for filter work functions, playing the role StreamIt
/// source syntax plays in the paper's toolchain. Typical usage:
///
/// \code
///   FilterBuilder B("LowPass", TokenType::Float, TokenType::Float);
///   B.setRates(/*Pop=*/1, /*Push=*/1, /*Peek=*/Taps);
///   const VarDecl *H = B.fieldArrayF("h", Coefficients);
///   const VarDecl *Sum = B.declVar("sum", B.litF(0.0f));
///   const VarDecl *I = B.beginFor("i", B.litI(0), B.litI(Taps));
///   B.assign(Sum, B.add(B.ref(Sum),
///                       B.mul(B.index(H, B.ref(I)), B.peek(B.ref(I)))));
///   B.endFor();
///   B.push(B.ref(Sum));
///   B.popDiscard();
///   FilterPtr F = B.build();
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_IR_FILTERBUILDER_H
#define SGPU_IR_FILTERBUILDER_H

#include "ir/Filter.h"

#include <memory>
#include <string>
#include <vector>

namespace sgpu {

/// Builds one Filter. Statement-emitting calls append to the innermost
/// open block (beginFor/beginIf open blocks). build() finalizes and
/// invalidates the builder.
class FilterBuilder {
public:
  FilterBuilder(std::string Name, TokenType InType, TokenType OutType);
  ~FilterBuilder();

  FilterBuilder(const FilterBuilder &) = delete;
  FilterBuilder &operator=(const FilterBuilder &) = delete;

  /// Declares the pop/push/peek rates. Peek defaults to the pop rate.
  void setRates(int64_t Pop, int64_t Push, int64_t Peek = -1);

  //===--------------------------------------------------------------------===//
  // Fields (read-only constants bound at build time)
  //===--------------------------------------------------------------------===//

  const VarDecl *fieldScalarI(const std::string &Name, int64_t Value);
  const VarDecl *fieldScalarF(const std::string &Name, double Value);
  const VarDecl *fieldArrayI(const std::string &Name,
                             const std::vector<int64_t> &Values);
  const VarDecl *fieldArrayF(const std::string &Name,
                             const std::vector<double> &Values);

  //===--------------------------------------------------------------------===//
  // State (mutable across firings; makes the filter stateful)
  //===--------------------------------------------------------------------===//

  const VarDecl *stateScalarI(const std::string &Name, int64_t Init);
  const VarDecl *stateScalarF(const std::string &Name, double Init);
  const VarDecl *stateArrayF(const std::string &Name,
                             const std::vector<double> &Init);

  //===--------------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------------===//

  const Expr *litI(int64_t V);
  const Expr *litF(double V);
  const Expr *ref(const VarDecl *Var);
  const Expr *index(const VarDecl *Array, const Expr *Idx);

  const Expr *add(const Expr *L, const Expr *R);
  const Expr *sub(const Expr *L, const Expr *R);
  const Expr *mul(const Expr *L, const Expr *R);
  const Expr *div(const Expr *L, const Expr *R);
  const Expr *rem(const Expr *L, const Expr *R);
  const Expr *bitAnd(const Expr *L, const Expr *R);
  const Expr *bitOr(const Expr *L, const Expr *R);
  const Expr *bitXor(const Expr *L, const Expr *R);
  const Expr *shl(const Expr *L, const Expr *R);
  const Expr *shr(const Expr *L, const Expr *R);
  const Expr *lt(const Expr *L, const Expr *R);
  const Expr *le(const Expr *L, const Expr *R);
  const Expr *gt(const Expr *L, const Expr *R);
  const Expr *ge(const Expr *L, const Expr *R);
  const Expr *eq(const Expr *L, const Expr *R);
  const Expr *ne(const Expr *L, const Expr *R);
  const Expr *logicalAnd(const Expr *L, const Expr *R);
  const Expr *logicalOr(const Expr *L, const Expr *R);

  const Expr *neg(const Expr *E);
  const Expr *bitNot(const Expr *E);
  const Expr *logicalNot(const Expr *E);

  const Expr *callSin(const Expr *E);
  const Expr *callCos(const Expr *E);
  const Expr *callSqrt(const Expr *E);
  const Expr *callAbs(const Expr *E);
  const Expr *callExp(const Expr *E);
  const Expr *callLog(const Expr *E);
  const Expr *callFloor(const Expr *E);
  const Expr *callPow(const Expr *Base, const Expr *Exp);
  const Expr *callMin(const Expr *L, const Expr *R);
  const Expr *callMax(const Expr *L, const Expr *R);

  const Expr *castToInt(const Expr *E);
  const Expr *castToFloat(const Expr *E);
  const Expr *select(const Expr *Cond, const Expr *T, const Expr *F);

  /// pop() as an expression (also counts towards the actual pop rate).
  const Expr *pop();
  /// peek(Depth) where Depth is an Int expression.
  const Expr *peek(const Expr *Depth);

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//

  /// Declares a scalar local, optionally initialized. Type is taken from
  /// Init when given, else \p Ty.
  const VarDecl *declVar(const std::string &Name, const Expr *Init);
  const VarDecl *declVar(const std::string &Name, TokenType Ty);
  /// Declares a constant-size local array (zero initialized).
  const VarDecl *declArray(const std::string &Name, TokenType Ty,
                           int64_t Size);

  void assign(const VarDecl *Var, const Expr *Value);
  void assignIndex(const VarDecl *Array, const Expr *Idx, const Expr *Value);
  void push(const Expr *Value);
  /// Emits `pop();` discarding the value.
  void popDiscard();
  /// Emits \p N discarding pops.
  void popDiscard(int64_t N);

  /// Opens `for (Name = Begin; Name < End; Name += Step)`; returns the
  /// induction variable. Close with endFor().
  const VarDecl *beginFor(const std::string &Name, const Expr *Begin,
                          const Expr *End, const Expr *Step = nullptr);
  void endFor();

  /// Opens `if (Cond)`. Optionally call beginElse() before endIf().
  void beginIf(const Expr *Cond);
  void beginElse();
  void endIf();

  /// Finalizes the filter. The builder must not be reused afterwards.
  FilterPtr build();

private:
  struct OpenBlock;

  const Expr *binary(BinOpKind Op, const Expr *L, const Expr *R);
  const Expr *unary(UnOpKind Op, const Expr *E);
  void appendStmt(const Stmt *S);
  TokenType commonType(const Expr *L, const Expr *R) const;

  std::unique_ptr<Filter> F;
  std::vector<OpenBlock> BlockStack;
  bool Finalized = false;
};

} // namespace sgpu

#endif // SGPU_IR_FILTERBUILDER_H
