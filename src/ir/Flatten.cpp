//===- ir/Flatten.cpp - Hierarchy flattening --------------------------------===//
//
// Flattens the hierarchical Pipeline / SplitJoin / FeedbackLoop composition
// into the flat node-and-channel StreamGraph the scheduler works on,
// following the StreamIt flattening of [6] referenced in the paper.
//
//===----------------------------------------------------------------------===//

#include "ir/StreamGraph.h"

#include "ir/FilterBuilder.h"
#include "support/Check.h"
#include "support/Metrics.h"
#include "support/Trace.h"

using namespace sgpu;

namespace {

/// Entry/exit node ids of a flattened sub-stream; -1 when the sub-stream
/// has no external input (a source) or output (a sink).
struct Endpoints {
  int Entry = -1;
  int Exit = -1;
};

/// Recursive flattener appending into one StreamGraph.
class Flattener {
public:
  explicit Flattener(StreamGraph &G) : G(G) {}

  Endpoints flattenStream(const Stream &S) {
    switch (S.kind()) {
    case Stream::Kind::Filter:
      return flattenFilter(*cast<FilterStream>(&S));
    case Stream::Kind::Pipeline:
      return flattenPipeline(*cast<PipelineStream>(&S));
    case Stream::Kind::SplitJoin:
      return flattenSplitJoin(*cast<SplitJoinStream>(&S));
    case Stream::Kind::FeedbackLoop:
      return flattenFeedbackLoop(*cast<FeedbackLoopStream>(&S));
    }
    SGPU_UNREACHABLE("unknown stream kind");
  }

private:
  Endpoints flattenFilter(const FilterStream &S) {
    const FilterPtr &F = S.filter();
    int Id = G.addFilterNode(F, "#" + std::to_string(NextInstance++));
    Endpoints E;
    if (F->popRate() > 0)
      E.Entry = Id;
    if (F->pushRate() > 0)
      E.Exit = Id;
    return E;
  }

  Endpoints flattenPipeline(const PipelineStream &S) {
    Endpoints Whole;
    int PrevExit = -1;
    bool First = true;
    for (const StreamPtr &Child : S.children()) {
      Endpoints E = flattenStream(*Child);
      if (First) {
        Whole.Entry = E.Entry;
        First = false;
      } else {
        assert(PrevExit >= 0 && "pipeline stage after a sink");
        assert(E.Entry >= 0 && "pipeline stage after the first is a source");
        G.addEdge(PrevExit, E.Entry);
      }
      PrevExit = E.Exit;
    }
    Whole.Exit = PrevExit;
    return Whole;
  }

  Endpoints flattenSplitJoin(const SplitJoinStream &S) {
    // The splitter/joiner token type is dictated by the branches.
    TokenType InTy = branchInputType(*S.children().front());
    TokenType OutTy = branchOutputType(*S.children().front());

    int Split = G.addSplitter(S.splitterKind(), S.splitterWeights(), InTy,
                              "split#" + std::to_string(NextInstance++));
    int Join = G.addJoiner(S.joinerWeights(), OutTy,
                           "join#" + std::to_string(NextInstance++));
    for (const StreamPtr &Child : S.children()) {
      Endpoints E = flattenStream(*Child);
      assert(E.Entry >= 0 && E.Exit >= 0 &&
             "split-join branches must consume and produce");
      G.addEdge(Split, E.Entry);
      G.addEdge(E.Exit, Join);
    }
    return {Split, Join};
  }

  Endpoints flattenFeedbackLoop(const FeedbackLoopStream &S) {
    Endpoints Body = flattenStream(*S.body());
    Endpoints Loop = flattenStream(*S.loop());
    assert(Body.Entry >= 0 && Body.Exit >= 0 && "loop body must be a pipe");
    assert(Loop.Entry >= 0 && Loop.Exit >= 0 && "loop stream must be a pipe");

    TokenType BodyTy = branchInputType(*S.body());
    TokenType SplitTy = branchOutputType(*S.body());
    int Join = G.addJoiner(S.joinerWeights(), BodyTy,
                           "loopjoin#" + std::to_string(NextInstance++));
    int Split =
        G.addSplitter(SplitterKind::RoundRobin, S.splitterWeights(), SplitTy,
                      "loopsplit#" + std::to_string(NextInstance++));

    G.addEdge(Join, Body.Entry);
    G.addEdge(Body.Exit, Split);
    // Splitter port 0 is the loop's external output (connected by the
    // parent); port 1 feeds the loop stream. Joiner port 0 is the external
    // input; port 1 receives the feedback with the initial tokens.
    G.addEdgeAt(Split, /*SrcPort=*/1, Loop.Entry, /*DstPort=*/0);
    G.addEdgeAt(Loop.Exit, /*SrcPort=*/0, Join, /*DstPort=*/1,
                S.initTokens());
    return {Join, Split};
  }

  /// The token type entering / leaving an arbitrary sub-stream.
  static TokenType branchInputType(const Stream &S) {
    switch (S.kind()) {
    case Stream::Kind::Filter:
      return cast<FilterStream>(&S)->filter()->inputType();
    case Stream::Kind::Pipeline:
      return branchInputType(*cast<PipelineStream>(&S)->children().front());
    case Stream::Kind::SplitJoin:
      return branchInputType(*cast<SplitJoinStream>(&S)->children().front());
    case Stream::Kind::FeedbackLoop:
      return branchInputType(*cast<FeedbackLoopStream>(&S)->body());
    }
    SGPU_UNREACHABLE("unknown stream kind");
  }

  static TokenType branchOutputType(const Stream &S) {
    switch (S.kind()) {
    case Stream::Kind::Filter:
      return cast<FilterStream>(&S)->filter()->outputType();
    case Stream::Kind::Pipeline:
      return branchOutputType(*cast<PipelineStream>(&S)->children().back());
    case Stream::Kind::SplitJoin:
      return branchOutputType(*cast<SplitJoinStream>(&S)->children().front());
    case Stream::Kind::FeedbackLoop:
      return branchOutputType(*cast<FeedbackLoopStream>(&S)->body());
    }
    SGPU_UNREACHABLE("unknown stream kind");
  }

  StreamGraph &G;
  int NextInstance = 0;
};

} // namespace

/// Builds a pop-1/push-1 identity filter of type \p Ty.
static FilterPtr makeBoundaryIdentity(const std::string &Name,
                                      TokenType Ty) {
  FilterBuilder B(Name, Ty, Ty);
  B.setRates(1, 1);
  B.push(B.pop());
  return B.build();
}

StreamGraph sgpu::flatten(const Stream &Root) {
  StageTimer Timer("ir.flatten");
  StreamGraph G;
  Flattener F(G);
  Endpoints E = F.flattenStream(Root);

  // Program I/O attaches to filter nodes (the entry pops the program
  // input buffer, the exit pushes the output buffer). When the hierarchy
  // starts or ends with a splitter/joiner, wrap it with an identity
  // filter, as the StreamIt flattener does with its implicit I/O nodes.
  if (E.Entry >= 0 && !G.node(E.Entry).isFilter()) {
    int Id = G.addFilterNode(
        makeBoundaryIdentity("__input", G.node(E.Entry).Ty));
    G.addEdge(Id, E.Entry);
    E.Entry = Id;
  }
  if (E.Exit >= 0 && !G.node(E.Exit).isFilter()) {
    int Id = G.addFilterNode(
        makeBoundaryIdentity("__output", G.node(E.Exit).Ty));
    G.addEdge(E.Exit, Id);
    E.Exit = Id;
  }
  G.setExternalPorts(E.Entry, E.Exit);
  return G;
}
