//===- ir/Interpreter.cpp - Work-function and graph interpreter ------------===//

#include "ir/Interpreter.h"

#include "support/Check.h"

#include <cmath>

using namespace sgpu;

namespace {

/// Wraps to 32-bit two's complement, matching device `int` semantics.
int64_t wrap32(int64_t V) { return static_cast<int32_t>(V); }

/// Evaluates one firing of a work function.
class WorkEvaluator {
public:
  WorkEvaluator(const Filter &F, ChannelBuffer *In, ChannelBuffer *Out,
                FiringStats *Stats, FilterState *State)
      : F(F), In(In), Out(Out), Stats(Stats), State(State) {
    const WorkFunction &W = F.work();
    LocalSlots.resize(W.locals().size());
    for (const auto &L : W.locals()) {
      Scalar Zero = L->type() == TokenType::Int ? Scalar::makeInt(0)
                                                : Scalar::makeFloat(0.0);
      LocalSlots[L->slot()].assign(L->isArray() ? L->arraySize() : 1, Zero);
    }
  }

  void run() { execBlock(F.work().body()); }

private:
  //===------------------------------------------------------------------===//
  // Statements
  //===------------------------------------------------------------------===//

  void execBlock(const BlockStmt *B) {
    for (const Stmt *S : B->body())
      execStmt(S);
  }

  void execStmt(const Stmt *S) {
    switch (S->kind()) {
    case Stmt::Kind::Assign: {
      const auto *A = cast<AssignStmt>(S);
      Scalar V = eval(A->value());
      storeTo(A->target(), V);
      return;
    }
    case Stmt::Kind::Push: {
      const auto *P = cast<PushStmt>(S);
      assert(Out && "push in a filter with no output");
      Out->push(eval(P->value()));
      if (Stats)
        ++Stats->Pushes;
      return;
    }
    case Stmt::Kind::ExprStmt:
      (void)eval(cast<ExprStmt>(S)->expr());
      return;
    case Stmt::Kind::If: {
      const auto *I = cast<IfStmt>(S);
      if (eval(I->cond()).asInt() != 0)
        execBlock(I->thenBlock());
      else if (I->elseBlock())
        execBlock(I->elseBlock());
      return;
    }
    case Stmt::Kind::For: {
      const auto *L = cast<ForStmt>(S);
      int64_t Begin = eval(L->begin()).asInt();
      int64_t End = eval(L->end()).asInt();
      int64_t Step = eval(L->step()).asInt();
      assert(Step > 0 && "for step must be positive");
      std::vector<Scalar> &IV = LocalSlots[L->induction()->slot()];
      for (int64_t I = Begin; I < End; I += Step) {
        IV[0] = Scalar::makeInt(I);
        execBlock(L->body());
      }
      return;
    }
    case Stmt::Kind::Block:
      execBlock(cast<BlockStmt>(S));
      return;
    }
    SGPU_UNREACHABLE("unknown statement kind");
  }

  std::vector<Scalar> &mutableSlot(const VarDecl *D) {
    assert(!D->isField() && "store to read-only field");
    if (D->isState()) {
      assert(State && "stateful filter fired without a FilterState");
      return State->Slots[D->slot()];
    }
    return LocalSlots[D->slot()];
  }

  void storeTo(const Expr *Target, Scalar V) {
    if (const auto *R = dyn_cast<VarRef>(Target)) {
      mutableSlot(R->decl())[0] = V;
      return;
    }
    const auto *A = cast<ArrayRef>(Target);
    int64_t Idx = eval(A->index()).asInt();
    std::vector<Scalar> &Slot = mutableSlot(A->decl());
    assert(Idx >= 0 && Idx < static_cast<int64_t>(Slot.size()) &&
           "array store out of bounds");
    Slot[Idx] = V;
  }

  //===------------------------------------------------------------------===//
  // Expressions
  //===------------------------------------------------------------------===//

  Scalar load(const VarDecl *D, int64_t Idx) const {
    assert((!D->isState() || State) &&
           "stateful filter fired without a FilterState");
    const std::vector<Scalar> &Slot =
        D->isField() ? F.fieldValues(D->slot())
                     : (D->isState() ? State->Slots[D->slot()]
                                     : LocalSlots[D->slot()]);
    assert(Idx >= 0 && Idx < static_cast<int64_t>(Slot.size()) &&
           "array load out of bounds");
    return Slot[Idx];
  }

  Scalar eval(const Expr *E) {
    switch (E->kind()) {
    case Expr::Kind::IntLiteral:
      return Scalar::makeInt(cast<IntLiteral>(E)->value());
    case Expr::Kind::FloatLiteral:
      return Scalar::makeFloat(cast<FloatLiteral>(E)->value());
    case Expr::Kind::VarRef:
      return load(cast<VarRef>(E)->decl(), 0);
    case Expr::Kind::ArrayRef: {
      const auto *A = cast<ArrayRef>(E);
      return load(A->decl(), eval(A->index()).asInt());
    }
    case Expr::Kind::Binary:
      return evalBinary(cast<BinaryExpr>(E));
    case Expr::Kind::Unary:
      return evalUnary(cast<UnaryExpr>(E));
    case Expr::Kind::Call:
      return evalCall(cast<CallExpr>(E));
    case Expr::Kind::Cast: {
      const auto *C = cast<CastExpr>(E);
      Scalar V = eval(C->operand());
      if (C->type() == V.Ty)
        return V;
      if (C->type() == TokenType::Int)
        return Scalar::makeInt(wrap32(static_cast<int64_t>(V.asFloat())));
      return Scalar::makeFloat(static_cast<double>(V.asInt()));
    }
    case Expr::Kind::Select: {
      const auto *S = cast<SelectExpr>(E);
      return eval(S->cond()).asInt() != 0 ? eval(S->trueVal())
                                          : eval(S->falseVal());
    }
    case Expr::Kind::Pop: {
      assert(In && "pop in a filter with no input");
      if (Stats)
        ++Stats->Pops;
      return In->pop();
    }
    case Expr::Kind::Peek: {
      const auto *P = cast<PeekExpr>(E);
      assert(In && "peek in a filter with no input");
      int64_t Depth = eval(P->depth()).asInt();
      assert(Depth < F.peekRate() &&
             "peek deeper than the declared peek rate");
      if (Stats) {
        ++Stats->Peeks;
        if (Depth > Stats->MaxPeekDepth)
          Stats->MaxPeekDepth = Depth;
      }
      return In->peek(Depth);
    }
    }
    SGPU_UNREACHABLE("unknown expression kind");
  }

  void countOp(TokenType Ty) {
    if (!Stats)
      return;
    if (Ty == TokenType::Int)
      ++Stats->IntOps;
    else
      ++Stats->FloatOps;
  }

  Scalar evalBinary(const BinaryExpr *B) {
    // Short-circuit forms first.
    if (B->op() == BinOpKind::LAnd) {
      countOp(TokenType::Int);
      if (eval(B->lhs()).asInt() == 0)
        return Scalar::makeInt(0);
      return Scalar::makeInt(eval(B->rhs()).asInt() != 0 ? 1 : 0);
    }
    if (B->op() == BinOpKind::LOr) {
      countOp(TokenType::Int);
      if (eval(B->lhs()).asInt() != 0)
        return Scalar::makeInt(1);
      return Scalar::makeInt(eval(B->rhs()).asInt() != 0 ? 1 : 0);
    }

    Scalar L = eval(B->lhs());
    Scalar R = eval(B->rhs());
    countOp(L.Ty);

    switch (B->op()) {
    case BinOpKind::Add:
      if (L.Ty == TokenType::Int)
        return Scalar::makeInt(wrap32(L.asInt() + R.asInt()));
      return Scalar::makeFloat(L.asFloat() + R.asFloat());
    case BinOpKind::Sub:
      if (L.Ty == TokenType::Int)
        return Scalar::makeInt(wrap32(L.asInt() - R.asInt()));
      return Scalar::makeFloat(L.asFloat() - R.asFloat());
    case BinOpKind::Mul:
      if (L.Ty == TokenType::Int)
        return Scalar::makeInt(wrap32(L.asInt() * R.asInt()));
      return Scalar::makeFloat(L.asFloat() * R.asFloat());
    case BinOpKind::Div:
      if (L.Ty == TokenType::Int) {
        assert(R.asInt() != 0 && "integer division by zero");
        return Scalar::makeInt(wrap32(L.asInt() / R.asInt()));
      }
      return Scalar::makeFloat(L.asFloat() / R.asFloat());
    case BinOpKind::Rem:
      assert(R.asInt() != 0 && "integer remainder by zero");
      return Scalar::makeInt(wrap32(L.asInt() % R.asInt()));
    case BinOpKind::And:
      return Scalar::makeInt(wrap32(L.asInt() & R.asInt()));
    case BinOpKind::Or:
      return Scalar::makeInt(wrap32(L.asInt() | R.asInt()));
    case BinOpKind::Xor:
      return Scalar::makeInt(wrap32(L.asInt() ^ R.asInt()));
    case BinOpKind::Shl:
      return Scalar::makeInt(
          wrap32(static_cast<int64_t>(static_cast<uint32_t>(L.asInt())
                                      << (R.asInt() & 31))));
    case BinOpKind::Shr:
      // Arithmetic shift on a 32-bit value, like device `int`.
      return Scalar::makeInt(
          wrap32(static_cast<int32_t>(L.asInt()) >> (R.asInt() & 31)));
    case BinOpKind::Lt:
      return cmpResult(L, R, [](auto A, auto B2) { return A < B2; });
    case BinOpKind::Le:
      return cmpResult(L, R, [](auto A, auto B2) { return A <= B2; });
    case BinOpKind::Gt:
      return cmpResult(L, R, [](auto A, auto B2) { return A > B2; });
    case BinOpKind::Ge:
      return cmpResult(L, R, [](auto A, auto B2) { return A >= B2; });
    case BinOpKind::Eq:
      return cmpResult(L, R, [](auto A, auto B2) { return A == B2; });
    case BinOpKind::Ne:
      return cmpResult(L, R, [](auto A, auto B2) { return A != B2; });
    case BinOpKind::LAnd:
    case BinOpKind::LOr:
      break; // Handled above.
    }
    SGPU_UNREACHABLE("unknown binary operator");
  }

  template <typename Cmp>
  static Scalar cmpResult(Scalar L, Scalar R, Cmp C) {
    bool V = L.Ty == TokenType::Int ? C(L.asInt(), R.asInt())
                                    : C(L.asFloat(), R.asFloat());
    return Scalar::makeInt(V ? 1 : 0);
  }

  Scalar evalUnary(const UnaryExpr *U) {
    Scalar V = eval(U->operand());
    countOp(V.Ty);
    switch (U->op()) {
    case UnOpKind::Neg:
      if (V.Ty == TokenType::Int)
        return Scalar::makeInt(wrap32(-V.asInt()));
      return Scalar::makeFloat(-V.asFloat());
    case UnOpKind::BitNot:
      return Scalar::makeInt(wrap32(~V.asInt()));
    case UnOpKind::LogicalNot:
      return Scalar::makeInt(V.asInt() == 0 ? 1 : 0);
    }
    SGPU_UNREACHABLE("unknown unary operator");
  }

  Scalar evalCall(const CallExpr *C) {
    const auto &Args = C->args();
    switch (C->callee()) {
    case BuiltinFn::Sin:
    case BuiltinFn::Cos:
    case BuiltinFn::Sqrt:
    case BuiltinFn::Exp:
    case BuiltinFn::Log:
    case BuiltinFn::Pow:
      if (Stats)
        ++Stats->TranscOps;
      break;
    default:
      countOp(C->type());
      break;
    }
    switch (C->callee()) {
    case BuiltinFn::Sin:
      return Scalar::makeFloat(std::sin(eval(Args[0]).asFloat()));
    case BuiltinFn::Cos:
      return Scalar::makeFloat(std::cos(eval(Args[0]).asFloat()));
    case BuiltinFn::Sqrt:
      return Scalar::makeFloat(std::sqrt(eval(Args[0]).asFloat()));
    case BuiltinFn::Abs: {
      Scalar V = eval(Args[0]);
      if (V.Ty == TokenType::Int)
        return Scalar::makeInt(V.asInt() < 0 ? wrap32(-V.asInt())
                                             : V.asInt());
      return Scalar::makeFloat(std::fabs(V.asFloat()));
    }
    case BuiltinFn::Exp:
      return Scalar::makeFloat(std::exp(eval(Args[0]).asFloat()));
    case BuiltinFn::Log:
      return Scalar::makeFloat(std::log(eval(Args[0]).asFloat()));
    case BuiltinFn::Floor:
      return Scalar::makeFloat(std::floor(eval(Args[0]).asFloat()));
    case BuiltinFn::Pow:
      return Scalar::makeFloat(
          std::pow(eval(Args[0]).asFloat(), eval(Args[1]).asFloat()));
    case BuiltinFn::Min: {
      Scalar L = eval(Args[0]), R = eval(Args[1]);
      if (L.Ty == TokenType::Int)
        return Scalar::makeInt(std::min(L.asInt(), R.asInt()));
      return Scalar::makeFloat(std::min(L.asFloat(), R.asFloat()));
    }
    case BuiltinFn::Max: {
      Scalar L = eval(Args[0]), R = eval(Args[1]);
      if (L.Ty == TokenType::Int)
        return Scalar::makeInt(std::max(L.asInt(), R.asInt()));
      return Scalar::makeFloat(std::max(L.asFloat(), R.asFloat()));
    }
    }
    SGPU_UNREACHABLE("unknown builtin");
  }

  const Filter &F;
  ChannelBuffer *In;
  ChannelBuffer *Out;
  FiringStats *Stats;
  FilterState *State;
  std::vector<std::vector<Scalar>> LocalSlots;
};

} // namespace

FilterState FilterState::initFor(const Filter &F) {
  FilterState S;
  S.Slots.resize(F.work().stateVars().size());
  for (const auto &V : F.work().stateVars())
    S.Slots[V->slot()] = F.stateInit(V->slot());
  return S;
}

void sgpu::fireFilter(const Filter &F, ChannelBuffer *In, ChannelBuffer *Out,
                      FiringStats *Stats, FilterState *State) {
  assert((In || F.popRate() == 0) && "filter needs an input channel");
  assert((Out || F.pushRate() == 0) && "filter needs an output channel");
  assert((State || !F.isStateful()) &&
         "stateful filter fired without a FilterState");
  WorkEvaluator E(F, In, Out, Stats, State);
  E.run();
}

void sgpu::fireSplitterJoiner(const GraphNode &N,
                              std::vector<ChannelBuffer *> In,
                              std::vector<ChannelBuffer *> Out) {
  if (N.isSplitter()) {
    assert(In.size() == 1 && "splitter has one input");
    if (N.SplitKind == SplitterKind::Duplicate) {
      Scalar V = In[0]->pop();
      for (ChannelBuffer *O : Out)
        O->push(V);
      return;
    }
    assert(Out.size() == N.Weights.size() && "splitter arity mismatch");
    for (size_t P = 0; P < Out.size(); ++P)
      for (int64_t I = 0; I < N.Weights[P]; ++I)
        Out[P]->push(In[0]->pop());
    return;
  }
  assert(N.isJoiner() && "expected splitter or joiner");
  assert(Out.size() == 1 && "joiner has one output");
  assert(In.size() == N.Weights.size() && "joiner arity mismatch");
  for (size_t P = 0; P < In.size(); ++P)
    for (int64_t I = 0; I < N.Weights[P]; ++I)
      Out[0]->push(In[P]->pop());
}

//===----------------------------------------------------------------------===//
// GraphInterpreter
//===----------------------------------------------------------------------===//

GraphInterpreter::GraphInterpreter(const StreamGraph &G) : G(G) {
  Channels.reserve(G.numEdges());
  for (const ChannelEdge &E : G.edges()) {
    Channels.emplace_back(E.Ty);
    for (int64_t I = 0; I < E.InitTokens; ++I)
      Channels.back().push(E.Ty == TokenType::Int ? Scalar::makeInt(0)
                                                  : Scalar::makeFloat(0.0));
  }
  Stats.resize(G.numNodes());
  NodeState.resize(G.numNodes());
  for (const GraphNode &N : G.nodes())
    if (N.isFilter() && N.TheFilter->isStateful())
      NodeState[N.Id] = FilterState::initFor(*N.TheFilter);
}

void GraphInterpreter::feedInput(const std::vector<Scalar> &Tokens) {
  for (const Scalar &T : Tokens)
    InputBuffer.push(T);
}

bool GraphInterpreter::canFire(int NodeId) const {
  const GraphNode &N = G.node(NodeId);
  if (N.isFilter()) {
    if (N.TheFilter->popRate() == 0)
      return true;
    const ChannelBuffer &In =
        NodeId == G.entryNode() ? InputBuffer : Channels[N.InEdges[0]];
    return In.size() >= N.TheFilter->peekRate();
  }
  for (size_t P = 0; P < N.InEdges.size(); ++P) {
    const ChannelEdge &E = G.edge(N.InEdges[P]);
    if (Channels[E.Id].size() < E.ConsRate)
      return false;
  }
  return true;
}

int64_t GraphInterpreter::fireNode(int NodeId, int64_t Firings) {
  const GraphNode &N = G.node(NodeId);
  int64_t Fired = 0;
  for (; Fired < Firings; ++Fired) {
    if (!canFire(NodeId))
      break;
    if (N.isFilter()) {
      ChannelBuffer *In = nullptr;
      if (N.TheFilter->popRate() > 0)
        In = NodeId == G.entryNode() ? &InputBuffer
                                     : &Channels[N.InEdges[0]];
      ChannelBuffer *Out = nullptr;
      if (N.TheFilter->pushRate() > 0)
        Out = NodeId == G.exitNode() ? &OutputSink : &Channels[N.OutEdges[0]];
      fireFilter(*N.TheFilter, In, Out, &Stats[NodeId],
                 N.TheFilter->isStateful() ? &NodeState[NodeId] : nullptr);
    } else {
      std::vector<ChannelBuffer *> In, Out;
      for (int E : N.InEdges)
        In.push_back(&Channels[E]);
      for (int E : N.OutEdges)
        Out.push_back(&Channels[E]);
      fireSplitterJoiner(N, std::move(In), std::move(Out));
    }
    for (int E : N.OutEdges)
      Channels[E].noteOccupancy();
  }
  // Drain the program output sink into the observable output vector.
  while (!OutputSink.empty())
    Output.push_back(OutputSink.pop());
  return Fired;
}

bool GraphInterpreter::runSteadyState(const std::vector<int64_t> &Repetitions,
                                      int64_t Iterations) {
  assert(Repetitions.size() == static_cast<size_t>(G.numNodes()) &&
         "repetition vector size mismatch");
  std::optional<std::vector<int>> Order = G.topologicalOrder();
  if (!Order)
    return false;
  for (int64_t It = 0; It < Iterations; ++It)
    for (int NodeId : *Order)
      if (fireNode(NodeId, Repetitions[NodeId]) != Repetitions[NodeId])
        return false;
  return true;
}
