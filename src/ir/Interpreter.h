//===- ir/Interpreter.h - Work-function and graph interpreter ---*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes filter work functions and whole stream graphs functionally.
/// The interpreter is the single source of data semantics in the project:
/// the CPU baseline runs it directly, and the GPU functional simulation
/// runs the same code per simulated thread, so CPU and GPU outputs can be
/// compared exactly.
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_IR_INTERPRETER_H
#define SGPU_IR_INTERPRETER_H

#include "ir/StreamGraph.h"

#include <deque>
#include <optional>
#include <string>
#include <vector>

namespace sgpu {

/// A FIFO channel buffer with firing-rule inspection helpers.
class ChannelBuffer {
public:
  ChannelBuffer() = default;
  explicit ChannelBuffer(TokenType Ty) : Ty(Ty) {}

  TokenType type() const { return Ty; }
  int64_t size() const { return static_cast<int64_t>(Data.size()); }
  bool empty() const { return Data.empty(); }

  void push(Scalar V) {
    Data.push_back(V);
    ++TotalPushed;
  }

  Scalar pop() {
    assert(!Data.empty() && "pop from empty channel (firing rule violated)");
    Scalar V = Data.front();
    Data.pop_front();
    ++TotalPopped;
    return V;
  }

  Scalar peek(int64_t Depth) const {
    assert(Depth >= 0 && Depth < size() &&
           "peek beyond available tokens (firing rule violated)");
    return Data[Depth];
  }

  /// Lifetime counters, used to validate steady-state balance.
  int64_t totalPushed() const { return TotalPushed; }
  int64_t totalPopped() const { return TotalPopped; }

  /// High-water mark of the buffered token count.
  int64_t maxOccupancy() const { return MaxOccupancy; }
  void noteOccupancy() {
    if (size() > MaxOccupancy)
      MaxOccupancy = size();
  }

private:
  TokenType Ty = TokenType::Float;
  std::deque<Scalar> Data;
  int64_t TotalPushed = 0;
  int64_t TotalPopped = 0;
  int64_t MaxOccupancy = 0;
};

/// Dynamic statistics of one firing, used by the rate checker and the
/// profiling cost model.
struct FiringStats {
  int64_t Pops = 0;
  int64_t Pushes = 0;
  int64_t Peeks = 0;
  int64_t MaxPeekDepth = -1; ///< Deepest peek() index observed.
  int64_t IntOps = 0;
  int64_t FloatOps = 0;
  int64_t TranscOps = 0; ///< sin/cos/exp/log/pow/sqrt.
};

/// Mutable state of one stateful filter node, persisting across firings.
/// Stateless filters need none (pass nullptr).
struct FilterState {
  std::vector<std::vector<Scalar>> Slots; ///< Indexed by state-var slot.

  /// Initializes state storage from \p F's declared initial values.
  static FilterState initFor(const Filter &F);
};

/// Fires \p F once. \p In may be null only when popRate()==0, \p Out only
/// when pushRate()==0. Statistics are accumulated into \p Stats if given.
/// Stateful filters require \p State.
void fireFilter(const Filter &F, ChannelBuffer *In, ChannelBuffer *Out,
                FiringStats *Stats = nullptr, FilterState *State = nullptr);

/// Fires a splitter/joiner node once, moving tokens between the node's
/// channel buffers per its weights.
void fireSplitterJoiner(const GraphNode &N, std::vector<ChannelBuffer *> In,
                        std::vector<ChannelBuffer *> Out);

/// Executes a whole stream graph for \p Iterations steady-state
/// iterations in a demand-driven order and returns the program output.
/// Also the reference executor for correctness checks.
class GraphInterpreter {
public:
  explicit GraphInterpreter(const StreamGraph &G);

  /// Supplies program input tokens (consumed by the entry node).
  void feedInput(const std::vector<Scalar> &Tokens);

  /// Runs \p Firings firings of node \p NodeId if its firing rule allows;
  /// returns the number actually fired.
  int64_t fireNode(int NodeId, int64_t Firings);

  /// Runs \p Iterations steady-state iterations given the repetition
  /// vector \p Repetitions (kv per node), in topological order. Returns
  /// false if some firing rule could not be satisfied.
  bool runSteadyState(const std::vector<int64_t> &Repetitions,
                      int64_t Iterations = 1);

  /// Tokens pushed by the exit node so far.
  const std::vector<Scalar> &output() const { return Output; }

  /// Channel buffer for edge \p EdgeId (for inspection in tests).
  const ChannelBuffer &channel(int EdgeId) const {
    assert(EdgeId >= 0 && EdgeId < static_cast<int>(Channels.size()));
    return Channels[EdgeId];
  }

  /// Per-node accumulated firing statistics.
  const FiringStats &stats(int NodeId) const {
    assert(NodeId >= 0 && NodeId < static_cast<int>(Stats.size()));
    return Stats[NodeId];
  }

private:
  bool canFire(int NodeId) const;

  const StreamGraph &G;
  std::vector<ChannelBuffer> Channels;
  ChannelBuffer InputBuffer;
  ChannelBuffer OutputSink;
  std::vector<Scalar> Output;
  std::vector<FiringStats> Stats;
  std::vector<FilterState> NodeState; ///< Per node; empty for stateless.
};

} // namespace sgpu

#endif // SGPU_IR_INTERPRETER_H
