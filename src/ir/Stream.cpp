//===- ir/Stream.cpp - Hierarchical StreamIt constructs --------------------===//

#include "ir/Stream.h"

using namespace sgpu;

Stream::~Stream() = default;

StreamPtr sgpu::filterStream(FilterPtr F) {
  return std::make_unique<FilterStream>(std::move(F));
}

StreamPtr sgpu::pipelineStream(std::vector<StreamPtr> Children) {
  return std::make_unique<PipelineStream>(std::move(Children));
}

StreamPtr sgpu::duplicateSplitJoin(std::vector<StreamPtr> Children,
                                   std::vector<int64_t> JoinWeights) {
  std::vector<int64_t> SplitWeights(Children.size(), 1);
  return std::make_unique<SplitJoinStream>(
      SplitterKind::Duplicate, std::move(SplitWeights), std::move(Children),
      std::move(JoinWeights));
}

StreamPtr sgpu::roundRobinSplitJoin(std::vector<int64_t> SplitWeights,
                                    std::vector<StreamPtr> Children,
                                    std::vector<int64_t> JoinWeights) {
  return std::make_unique<SplitJoinStream>(
      SplitterKind::RoundRobin, std::move(SplitWeights), std::move(Children),
      std::move(JoinWeights));
}

StreamPtr sgpu::feedbackLoopStream(std::vector<int64_t> JoinWeights,
                                   StreamPtr Body,
                                   std::vector<int64_t> SplitWeights,
                                   StreamPtr Loop, int64_t InitTokens) {
  return std::make_unique<FeedbackLoopStream>(
      std::move(JoinWeights), std::move(Body), std::move(SplitWeights),
      std::move(Loop), InitTokens);
}
