//===- ir/Stream.h - Hierarchical StreamIt constructs -----------*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three StreamIt composition constructs of the paper's Figure 3:
/// Pipeline, SplitJoin (duplicate or round-robin splitter, round-robin
/// joiner) and FeedbackLoop. A hierarchical Stream is flattened (Flatten.h)
/// into a StreamGraph of filter/splitter/joiner nodes before scheduling.
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_IR_STREAM_H
#define SGPU_IR_STREAM_H

#include "ir/Filter.h"
#include "support/Casting.h"

#include <memory>
#include <vector>

namespace sgpu {

class Stream;
using StreamPtr = std::unique_ptr<Stream>;

/// How a splitter distributes its input (paper Section II-B).
enum class SplitterKind : uint8_t {
  Duplicate, ///< Copies every input token to each output.
  RoundRobin ///< Sends W[i] consecutive tokens to output i, cyclically.
};

/// Base class of the hierarchical stream constructs.
class Stream {
public:
  enum class Kind : uint8_t { Filter, Pipeline, SplitJoin, FeedbackLoop };

  virtual ~Stream();

  Kind kind() const { return K; }

protected:
  explicit Stream(Kind K) : K(K) {}

private:
  Kind K;
};

/// A leaf: one instance of a filter definition.
class FilterStream : public Stream {
public:
  explicit FilterStream(FilterPtr F)
      : Stream(Kind::Filter), TheFilter(std::move(F)) {}

  const FilterPtr &filter() const { return TheFilter; }

  static bool classof(const Stream *S) { return S->kind() == Kind::Filter; }

private:
  FilterPtr TheFilter;
};

/// A sequence of child streams connected head to tail (Figure 3a).
class PipelineStream : public Stream {
public:
  explicit PipelineStream(std::vector<StreamPtr> Children)
      : Stream(Kind::Pipeline), Children(std::move(Children)) {
    assert(!this->Children.empty() && "empty pipeline");
  }

  const std::vector<StreamPtr> &children() const { return Children; }

  static bool classof(const Stream *S) { return S->kind() == Kind::Pipeline; }

private:
  std::vector<StreamPtr> Children;
};

/// A splitter feeding N parallel children merged by a joiner (Figure 3b).
/// Splitter weights are all 1 for Duplicate; for RoundRobin they give the
/// token counts per output. Joiner weights give token counts per input.
class SplitJoinStream : public Stream {
public:
  SplitJoinStream(SplitterKind SplitKind, std::vector<int64_t> SplitWeights,
                  std::vector<StreamPtr> Children,
                  std::vector<int64_t> JoinWeights)
      : Stream(Kind::SplitJoin), SplitKind(SplitKind),
        SplitWeights(std::move(SplitWeights)),
        Children(std::move(Children)), JoinWeights(std::move(JoinWeights)) {
    assert(!this->Children.empty() && "empty split-join");
    assert(this->SplitWeights.size() == this->Children.size() &&
           "one splitter weight per branch");
    assert(this->JoinWeights.size() == this->Children.size() &&
           "one joiner weight per branch");
  }

  SplitterKind splitterKind() const { return SplitKind; }
  const std::vector<int64_t> &splitterWeights() const { return SplitWeights; }
  const std::vector<StreamPtr> &children() const { return Children; }
  const std::vector<int64_t> &joinerWeights() const { return JoinWeights; }

  static bool classof(const Stream *S) {
    return S->kind() == Kind::SplitJoin;
  }

private:
  SplitterKind SplitKind;
  std::vector<int64_t> SplitWeights;
  std::vector<StreamPtr> Children;
  std::vector<int64_t> JoinWeights;
};

/// A feedback loop (Figure 3c): the joiner merges external input (weight
/// [0]) with the loop stream's output (weight [1]); the body's output is
/// split between the external output (weight [0]) and the loop (weight
/// [1]). InitTokens are enqueued on the loop->joiner edge so the graph can
/// start (StreamIt `enqueue`).
class FeedbackLoopStream : public Stream {
public:
  FeedbackLoopStream(std::vector<int64_t> JoinWeights, StreamPtr Body,
                     std::vector<int64_t> SplitWeights, StreamPtr Loop,
                     int64_t InitTokens)
      : Stream(Kind::FeedbackLoop), JoinWeights(std::move(JoinWeights)),
        Body(std::move(Body)), SplitWeights(std::move(SplitWeights)),
        Loop(std::move(Loop)), InitTokens(InitTokens) {
    assert(this->JoinWeights.size() == 2 && this->SplitWeights.size() == 2 &&
           "feedback loop joiner/splitter are binary");
    assert(InitTokens >= 0 && "negative initial tokens");
  }

  const std::vector<int64_t> &joinerWeights() const { return JoinWeights; }
  const Stream *body() const { return Body.get(); }
  const std::vector<int64_t> &splitterWeights() const { return SplitWeights; }
  const Stream *loop() const { return Loop.get(); }
  int64_t initTokens() const { return InitTokens; }

  static bool classof(const Stream *S) {
    return S->kind() == Kind::FeedbackLoop;
  }

private:
  std::vector<int64_t> JoinWeights;
  StreamPtr Body;
  std::vector<int64_t> SplitWeights;
  StreamPtr Loop;
  int64_t InitTokens;
};

//===----------------------------------------------------------------------===//
// Convenience constructors
//===----------------------------------------------------------------------===//

/// Wraps a filter definition as a leaf stream.
StreamPtr filterStream(FilterPtr F);

/// Builds a pipeline from a list of children.
StreamPtr pipelineStream(std::vector<StreamPtr> Children);

/// Builds a duplicate split-join with the given joiner weights.
StreamPtr duplicateSplitJoin(std::vector<StreamPtr> Children,
                             std::vector<int64_t> JoinWeights);

/// Builds a round-robin split-join.
StreamPtr roundRobinSplitJoin(std::vector<int64_t> SplitWeights,
                              std::vector<StreamPtr> Children,
                              std::vector<int64_t> JoinWeights);

/// Builds a feedback loop.
StreamPtr feedbackLoopStream(std::vector<int64_t> JoinWeights, StreamPtr Body,
                             std::vector<int64_t> SplitWeights,
                             StreamPtr Loop, int64_t InitTokens);

} // namespace sgpu

#endif // SGPU_IR_STREAM_H
