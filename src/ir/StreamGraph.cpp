//===- ir/StreamGraph.cpp - Flattened stream graph -------------------------===//

#include "ir/StreamGraph.h"

#include "support/Check.h"
#include "support/DotWriter.h"

#include <numeric>
#include <sstream>

using namespace sgpu;

int64_t GraphNode::totalPopPerFiring() const {
  switch (Kind) {
  case NodeKind::Filter:
    return TheFilter->popRate();
  case NodeKind::Splitter:
    if (SplitKind == SplitterKind::Duplicate)
      return 1;
    return std::accumulate(Weights.begin(), Weights.end(), int64_t(0));
  case NodeKind::Joiner:
    return std::accumulate(Weights.begin(), Weights.end(), int64_t(0));
  }
  SGPU_UNREACHABLE("unknown node kind");
}

int64_t GraphNode::totalPushPerFiring() const {
  switch (Kind) {
  case NodeKind::Filter:
    return TheFilter->pushRate();
  case NodeKind::Splitter:
    if (SplitKind == SplitterKind::Duplicate)
      return static_cast<int64_t>(Weights.size());
    return std::accumulate(Weights.begin(), Weights.end(), int64_t(0));
  case NodeKind::Joiner:
    return std::accumulate(Weights.begin(), Weights.end(), int64_t(0));
  }
  SGPU_UNREACHABLE("unknown node kind");
}

int StreamGraph::addFilterNode(FilterPtr F, const std::string &NameSuffix) {
  assert(F && "null filter");
  GraphNode N;
  N.Id = static_cast<int>(Nodes.size());
  N.Kind = NodeKind::Filter;
  N.Name = F->name() + NameSuffix;
  N.TheFilter = std::move(F);
  Nodes.push_back(std::move(N));
  return Nodes.back().Id;
}

int StreamGraph::addSplitter(SplitterKind Kind, std::vector<int64_t> Weights,
                             TokenType Ty, const std::string &Name) {
  assert(!Weights.empty() && "splitter with no outputs");
  GraphNode N;
  N.Id = static_cast<int>(Nodes.size());
  N.Kind = NodeKind::Splitter;
  N.Name = Name;
  N.SplitKind = Kind;
  N.Weights = std::move(Weights);
  N.Ty = Ty;
  Nodes.push_back(std::move(N));
  return Nodes.back().Id;
}

int StreamGraph::addJoiner(std::vector<int64_t> Weights, TokenType Ty,
                           const std::string &Name) {
  assert(!Weights.empty() && "joiner with no inputs");
  GraphNode N;
  N.Id = static_cast<int>(Nodes.size());
  N.Kind = NodeKind::Joiner;
  N.Name = Name;
  N.Weights = std::move(Weights);
  N.Ty = Ty;
  Nodes.push_back(std::move(N));
  return Nodes.back().Id;
}

int64_t StreamGraph::prodRateFor(const GraphNode &N, int Port) const {
  switch (N.Kind) {
  case NodeKind::Filter:
    assert(Port == 0 && "filters have one output port");
    return N.TheFilter->pushRate();
  case NodeKind::Splitter:
    assert(Port < static_cast<int>(N.Weights.size()) &&
           "splitter port out of range");
    return N.SplitKind == SplitterKind::Duplicate ? 1 : N.Weights[Port];
  case NodeKind::Joiner:
    assert(Port == 0 && "joiners have one output port");
    return std::accumulate(N.Weights.begin(), N.Weights.end(), int64_t(0));
  }
  SGPU_UNREACHABLE("unknown node kind");
}

int64_t StreamGraph::consRateFor(const GraphNode &N, int Port) const {
  switch (N.Kind) {
  case NodeKind::Filter:
    assert(Port == 0 && "filters have one input port");
    return N.TheFilter->popRate();
  case NodeKind::Splitter:
    assert(Port == 0 && "splitters have one input port");
    return N.SplitKind == SplitterKind::Duplicate
               ? 1
               : std::accumulate(N.Weights.begin(), N.Weights.end(),
                                 int64_t(0));
  case NodeKind::Joiner:
    assert(Port < static_cast<int>(N.Weights.size()) &&
           "joiner port out of range");
    return N.Weights[Port];
  }
  SGPU_UNREACHABLE("unknown node kind");
}

int64_t StreamGraph::peekRateFor(const GraphNode &N, int Port) const {
  if (N.Kind == NodeKind::Filter) {
    assert(Port == 0 && "filters have one input port");
    return N.TheFilter->peekRate();
  }
  return consRateFor(N, Port);
}

TokenType StreamGraph::outTypeFor(const GraphNode &N) const {
  return N.Kind == NodeKind::Filter ? N.TheFilter->outputType() : N.Ty;
}

TokenType StreamGraph::inTypeFor(const GraphNode &N) const {
  return N.Kind == NodeKind::Filter ? N.TheFilter->inputType() : N.Ty;
}

/// Returns the first slot holding -1, growing the vector by one if full.
static int claimFreePort(std::vector<int> &Ports) {
  for (size_t I = 0; I < Ports.size(); ++I)
    if (Ports[I] == -1)
      return static_cast<int>(I);
  Ports.push_back(-1);
  return static_cast<int>(Ports.size()) - 1;
}

/// Grows \p Ports so that \p Port is addressable, padding with -1.
static void reservePort(std::vector<int> &Ports, int Port) {
  if (Port >= static_cast<int>(Ports.size()))
    Ports.resize(Port + 1, -1);
  assert(Ports[Port] == -1 && "port already connected");
}

int StreamGraph::addEdge(int Src, int Dst, int64_t InitTokens) {
  assert(Src >= 0 && Src < numNodes() && "bad source node id");
  assert(Dst >= 0 && Dst < numNodes() && "bad destination node id");
  int SrcPort = claimFreePort(Nodes[Src].OutEdges);
  int DstPort = claimFreePort(Nodes[Dst].InEdges);
  // Undo the claims; addEdgeAt re-reserves them.
  Nodes[Src].OutEdges[SrcPort] = -1;
  Nodes[Dst].InEdges[DstPort] = -1;
  return addEdgeAt(Src, SrcPort, Dst, DstPort, InitTokens);
}

int StreamGraph::addEdgeAt(int Src, int SrcPort, int Dst, int DstPort,
                           int64_t InitTokens) {
  assert(Src >= 0 && Src < numNodes() && "bad source node id");
  assert(Dst >= 0 && Dst < numNodes() && "bad destination node id");
  GraphNode &S = Nodes[Src];
  GraphNode &D = Nodes[Dst];
  reservePort(S.OutEdges, SrcPort);
  reservePort(D.InEdges, DstPort);

  ChannelEdge E;
  E.Id = static_cast<int>(Edges.size());
  E.Src = Src;
  E.Dst = Dst;
  E.Ty = outTypeFor(S);
  assert(E.Ty == inTypeFor(D) && "channel type mismatch between endpoints");
  E.ProdRate = prodRateFor(S, SrcPort);
  E.ConsRate = consRateFor(D, DstPort);
  E.PeekRate = peekRateFor(D, DstPort);
  E.InitTokens = InitTokens;
  assert(E.ProdRate > 0 && "producer pushes nothing onto this edge");
  assert(E.ConsRate > 0 && "consumer pops nothing from this edge");

  S.OutEdges[SrcPort] = E.Id;
  D.InEdges[DstPort] = E.Id;
  Edges.push_back(E);
  return E.Id;
}

std::vector<int> StreamGraph::sourceNodes() const {
  std::vector<int> Out;
  for (const GraphNode &N : Nodes)
    if (N.InEdges.empty())
      Out.push_back(N.Id);
  return Out;
}

std::vector<int> StreamGraph::sinkNodes() const {
  std::vector<int> Out;
  for (const GraphNode &N : Nodes)
    if (N.OutEdges.empty())
      Out.push_back(N.Id);
  return Out;
}

int StreamGraph::numFilterNodes() const {
  int Count = 0;
  for (const GraphNode &N : Nodes)
    if (N.isFilter())
      ++Count;
  return Count;
}

bool StreamGraph::hasStatefulFilter() const {
  for (const GraphNode &N : Nodes)
    if (N.isFilter() && N.TheFilter->isStateful())
      return true;
  return false;
}

int StreamGraph::numPeekingFilters() const {
  int Count = 0;
  for (const GraphNode &N : Nodes)
    if (N.isFilter() && N.TheFilter->isPeeking())
      ++Count;
  return Count;
}

std::optional<std::string> StreamGraph::validate() const {
  for (const GraphNode &N : Nodes) {
    switch (N.Kind) {
    case NodeKind::Filter: {
      const Filter &F = *N.TheFilter;
      // The entry (exit) node's input (output) is the external program
      // buffer, not a channel edge.
      size_t WantIn = F.popRate() > 0 && N.Id != EntryNode ? 1 : 0;
      size_t WantOut = F.pushRate() > 0 && N.Id != ExitNode ? 1 : 0;
      if (N.InEdges.size() != WantIn)
        return "filter '" + N.Name + "' has wrong input arity";
      if (N.OutEdges.size() != WantOut)
        return "filter '" + N.Name + "' has wrong output arity";
      break;
    }
    case NodeKind::Splitter:
      if (N.InEdges.size() != 1)
        return "splitter '" + N.Name + "' must have exactly one input";
      if (N.OutEdges.size() != N.Weights.size())
        return "splitter '" + N.Name + "' output arity mismatch";
      break;
    case NodeKind::Joiner:
      if (N.OutEdges.size() != 1)
        return "joiner '" + N.Name + "' must have exactly one output";
      if (N.InEdges.size() != N.Weights.size())
        return "joiner '" + N.Name + "' input arity mismatch";
      break;
    }
    if (N.InEdges.empty() && N.OutEdges.empty() && Nodes.size() > 1)
      return "node '" + N.Name + "' is disconnected";
    for (int EId : N.InEdges)
      if (EId < 0)
        return "node '" + N.Name + "' has an unconnected input port";
    for (int EId : N.OutEdges)
      if (EId < 0)
        return "node '" + N.Name + "' has an unconnected output port";
  }
  for (const ChannelEdge &E : Edges) {
    if (E.PeekRate < E.ConsRate)
      return "edge " + std::to_string(E.Id) + " peeks less than it pops";
    if (E.InitTokens < 0)
      return "edge " + std::to_string(E.Id) + " has negative initial tokens";
  }
  return std::nullopt;
}

std::optional<std::vector<int>> StreamGraph::topologicalOrder() const {
  // Kahn's algorithm. An edge is a dependence unless its initial tokens
  // already satisfy the consumer's first firing (a loop-breaking delay).
  auto IsDependence = [&](const ChannelEdge &E) {
    return E.InitTokens < E.PeekRate;
  };

  std::vector<int> InDegree(Nodes.size(), 0);
  for (const ChannelEdge &E : Edges)
    if (IsDependence(E))
      ++InDegree[E.Dst];

  std::vector<int> Work;
  for (const GraphNode &N : Nodes)
    if (InDegree[N.Id] == 0)
      Work.push_back(N.Id);

  std::vector<int> Order;
  Order.reserve(Nodes.size());
  for (size_t I = 0; I < Work.size(); ++I) {
    int Id = Work[I];
    Order.push_back(Id);
    for (int EId : Nodes[Id].OutEdges) {
      const ChannelEdge &E = Edges[EId];
      if (IsDependence(E) && --InDegree[E.Dst] == 0)
        Work.push_back(E.Dst);
    }
  }
  if (Order.size() != Nodes.size())
    return std::nullopt;
  return Order;
}

std::string StreamGraph::toDot(const std::string &Name) const {
  DotWriter W(Name);
  for (const GraphNode &N : Nodes) {
    std::ostringstream Label;
    Label << N.Name;
    if (N.isFilter())
      Label << "\\npop " << N.TheFilter->popRate() << " push "
            << N.TheFilter->pushRate();
    const char *Shape = N.isFilter() ? "box" : "diamond";
    W.addNode(N.Id, Label.str(), std::string("shape=") + Shape);
  }
  for (const ChannelEdge &E : Edges) {
    std::ostringstream Label;
    Label << E.ProdRate << ":" << E.ConsRate;
    if (E.InitTokens > 0)
      Label << " (+" << E.InitTokens << ")";
    W.addEdge(E.Src, E.Dst, Label.str());
  }
  return W.str();
}
