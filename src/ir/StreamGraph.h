//===- ir/StreamGraph.h - Flattened stream graph ----------------*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flattened multirate stream graph: nodes (filters, splitters,
/// joiners) connected by FIFO channel edges carrying the SDF rates the
/// paper's ILP formulation consumes — I_uv, O_uv and the initial token
/// counts m_uv of Section III-A. Splitters and joiners are explicit nodes
/// (as in StreamIt's flattening [6]); they move data without computing.
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_IR_STREAMGRAPH_H
#define SGPU_IR_STREAMGRAPH_H

#include "ir/Filter.h"
#include "ir/Stream.h"

#include <optional>
#include <string>
#include <vector>

namespace sgpu {

/// Kinds of flattened graph nodes.
enum class NodeKind : uint8_t { Filter, Splitter, Joiner };

/// A FIFO channel between two node ports.
struct ChannelEdge {
  int Id = -1;
  int Src = -1; ///< Producer node id.
  int Dst = -1; ///< Consumer node id.
  TokenType Ty = TokenType::Float;
  int64_t ProdRate = 0;   ///< O_uv: tokens produced per firing of Src.
  int64_t ConsRate = 0;   ///< I_uv: tokens consumed per firing of Dst.
  int64_t PeekRate = 0;   ///< Peek depth of Dst on this edge; >= ConsRate.
  int64_t InitTokens = 0; ///< m_uv: tokens initially present on the edge.
};

/// One flattened node. Filter nodes reference a (possibly shared) filter
/// definition; splitter/joiner nodes carry their kind and weights.
struct GraphNode {
  int Id = -1;
  NodeKind Kind = NodeKind::Filter;
  std::string Name;

  /// Filter nodes only.
  FilterPtr TheFilter;

  /// Splitter/joiner nodes only.
  SplitterKind SplitKind = SplitterKind::RoundRobin;
  std::vector<int64_t> Weights;
  TokenType Ty = TokenType::Float; ///< Token type moved by splitter/joiner.

  /// Edge ids in port order.
  std::vector<int> InEdges;
  std::vector<int> OutEdges;

  bool isFilter() const { return Kind == NodeKind::Filter; }
  bool isSplitter() const { return Kind == NodeKind::Splitter; }
  bool isJoiner() const { return Kind == NodeKind::Joiner; }

  /// Total tokens consumed per firing (all input ports).
  int64_t totalPopPerFiring() const;
  /// Total tokens produced per firing (all output ports).
  int64_t totalPushPerFiring() const;
};

/// The flattened stream graph. Nodes and edges are stored densely and
/// addressed by id; ids are stable once created.
class StreamGraph {
public:
  /// Adds a filter node; in/out edges are attached later via addEdge.
  int addFilterNode(FilterPtr F, const std::string &NameSuffix = "");

  /// Adds a splitter node moving tokens of type \p Ty.
  int addSplitter(SplitterKind Kind, std::vector<int64_t> Weights,
                  TokenType Ty, const std::string &Name);

  /// Adds a round-robin joiner node moving tokens of type \p Ty.
  int addJoiner(std::vector<int64_t> Weights, TokenType Ty,
                const std::string &Name);

  /// Connects \p Src's first free output port to \p Dst's first free input
  /// port and derives the edge rates from the endpoint node definitions.
  /// Returns the edge id.
  int addEdge(int Src, int Dst, int64_t InitTokens = 0);

  /// Like addEdge, but pins the ports. Needed when an inner construct must
  /// occupy a later port before the outer construct fills an earlier one
  /// (the feedback-loop joiner's loop input is port 1, its external input
  /// port 0 is connected by the parent afterwards).
  int addEdgeAt(int Src, int SrcPort, int Dst, int DstPort,
                int64_t InitTokens = 0);

  const std::vector<GraphNode> &nodes() const { return Nodes; }
  const std::vector<ChannelEdge> &edges() const { return Edges; }
  const GraphNode &node(int Id) const {
    assert(Id >= 0 && Id < static_cast<int>(Nodes.size()));
    return Nodes[Id];
  }
  const ChannelEdge &edge(int Id) const {
    assert(Id >= 0 && Id < static_cast<int>(Edges.size()));
    return Edges[Id];
  }

  int numNodes() const { return static_cast<int>(Nodes.size()); }
  int numEdges() const { return static_cast<int>(Edges.size()); }

  /// External program I/O: the entry node pops from the program input
  /// buffer (the buffer the paper's Eq. 9 shuffle is applied to) and the
  /// exit node pushes to the program output buffer. Either may be -1 when
  /// the graph starts with a pure source / ends with a pure sink filter.
  void setExternalPorts(int Entry, int Exit) {
    EntryNode = Entry;
    ExitNode = Exit;
  }
  int entryNode() const { return EntryNode; }
  int exitNode() const { return ExitNode; }

  /// Node ids with no input edges (sources) / no output edges (sinks).
  std::vector<int> sourceNodes() const;
  std::vector<int> sinkNodes() const;

  /// Number of filter nodes (Table I "Filters" column counts these plus
  /// splitters and joiners, matching StreamIt's flattened node count).
  int numFilterNodes() const;
  /// Number of filter nodes whose peek depth exceeds their pop rate.
  int numPeekingFilters() const;

  /// Checks structural invariants: port arities match node definitions,
  /// edge types line up, every node is connected. Returns an error
  /// message, or std::nullopt when the graph is valid.
  std::optional<std::string> validate() const;

  /// Topological order ignoring back edges that carry enough initial
  /// tokens to break the cycle. Returns std::nullopt when a token-free
  /// cycle exists (an unschedulable graph).
  std::optional<std::vector<int>> topologicalOrder() const;

  /// Returns true when the graph contains a stateful filter. The GPU
  /// compiler rejects such graphs (the paper considers only stateless
  /// filters; Section VII lists stateful handling as future work), but
  /// the interpreters execute them.
  bool hasStatefulFilter() const;

  /// DOT rendering of the graph (nodes labelled with rates).
  std::string toDot(const std::string &Name = "stream") const;

private:
  /// Expected production rate of node \p N on output port \p Port.
  int64_t prodRateFor(const GraphNode &N, int Port) const;
  /// Expected consumption rate of node \p N on input port \p Port.
  int64_t consRateFor(const GraphNode &N, int Port) const;
  /// Peek depth of node \p N on input port \p Port.
  int64_t peekRateFor(const GraphNode &N, int Port) const;
  /// Token type on the given port.
  TokenType outTypeFor(const GraphNode &N) const;
  TokenType inTypeFor(const GraphNode &N) const;

  std::vector<GraphNode> Nodes;
  std::vector<ChannelEdge> Edges;
  int EntryNode = -1;
  int ExitNode = -1;
};

/// Flattens a hierarchical stream into a StreamGraph (paper Section I,
/// citing [6]). Asserts that the hierarchy is well formed.
StreamGraph flatten(const Stream &Root);

} // namespace sgpu

#endif // SGPU_IR_STREAMGRAPH_H
