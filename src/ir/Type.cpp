//===- ir/Type.cpp - Token types and scalar runtime values ----------------===//

#include "ir/Type.h"

#include "support/Check.h"

#include <cstdio>

using namespace sgpu;

const char *sgpu::tokenTypeName(TokenType Ty) {
  switch (Ty) {
  case TokenType::Int:
    return "int";
  case TokenType::Float:
    return "float";
  }
  SGPU_UNREACHABLE("unknown token type");
}

std::string Scalar::str() const {
  char Buf[48];
  if (Ty == TokenType::Int)
    std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(I));
  else
    std::snprintf(Buf, sizeof(Buf), "%g", F);
  return Buf;
}
