//===- ir/Type.h - Token types and scalar runtime values -------*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token types carried on StreamIt FIFO channels and the tagged scalar used
/// by the interpreter. The paper's benchmarks use int (Bitonic, DES) and
/// float (DCT, FFT, Filterbank, FMRadio, MatrixMult) tokens; both are four
/// bytes wide on the GPU, which is what the buffer-size math (Table II)
/// depends on.
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_IR_TYPE_H
#define SGPU_IR_TYPE_H

#include <cassert>
#include <cstdint>
#include <string>

namespace sgpu {

/// A channel token / expression type.
enum class TokenType : uint8_t {
  Int,  ///< 32-bit integer on the device; int64 in the interpreter.
  Float ///< 32-bit float on the device; double in the interpreter.
};

/// Returns the CUDA C spelling of \p Ty ("int" or "float").
const char *tokenTypeName(TokenType Ty);

/// Size in bytes of a token of type \p Ty in device memory.
constexpr int64_t tokenSizeBytes(TokenType) { return 4; }

/// A tagged scalar value as manipulated by the interpreter.
struct Scalar {
  TokenType Ty = TokenType::Int;
  union {
    int64_t I;
    double F;
  };

  Scalar() : I(0) {}

  static Scalar makeInt(int64_t V) {
    Scalar S;
    S.Ty = TokenType::Int;
    S.I = V;
    return S;
  }

  static Scalar makeFloat(double V) {
    Scalar S;
    S.Ty = TokenType::Float;
    S.F = V;
    return S;
  }

  int64_t asInt() const {
    assert(Ty == TokenType::Int && "scalar is not an int");
    return I;
  }

  double asFloat() const {
    assert(Ty == TokenType::Float && "scalar is not a float");
    return F;
  }

  /// Numeric value as double regardless of tag (for diagnostics).
  double numeric() const { return Ty == TokenType::Int ? double(I) : F; }

  bool operator==(const Scalar &RHS) const {
    if (Ty != RHS.Ty)
      return false;
    return Ty == TokenType::Int ? I == RHS.I : F == RHS.F;
  }

  std::string str() const;
};

} // namespace sgpu

#endif // SGPU_IR_TYPE_H
