//===- layout/AccessAnalyzer.cpp - Coalescing & bank conflicts --------------===//

#include "layout/AccessAnalyzer.h"

#include <algorithm>
#include <array>
#include <cassert>

using namespace sgpu;

int sgpu::countHalfWarpTransactions(const std::vector<int64_t> &Addrs) {
  assert(!Addrs.empty() &&
         static_cast<int>(Addrs.size()) <= HalfWarpSize &&
         "a half-warp has 1..16 lanes");
  bool Coalesced = Addrs[0] % HalfWarpSize == 0;
  for (size_t I = 1; Coalesced && I < Addrs.size(); ++I)
    Coalesced = Addrs[I] == Addrs[0] + static_cast<int64_t>(I);
  if (Coalesced)
    return 1;
  // G80 issues one transaction per lane when the pattern breaks.
  return static_cast<int>(Addrs.size());
}

int sgpu::sharedMemoryConflictDegree(const std::vector<int64_t> &Addrs) {
  assert(!Addrs.empty() &&
         static_cast<int>(Addrs.size()) <= HalfWarpSize &&
         "a half-warp has 1..16 lanes");
  // Broadcast: all lanes read the very same word.
  if (std::all_of(Addrs.begin(), Addrs.end(),
                  [&](int64_t A) { return A == Addrs[0]; }))
    return 1;
  std::array<int, SharedMemoryBanks> Hits{};
  for (int64_t A : Addrs)
    ++Hits[static_cast<int>(((A % SharedMemoryBanks) + SharedMemoryBanks) %
                            SharedMemoryBanks)];
  return *std::max_element(Hits.begin(), Hits.end());
}

AccessSummary sgpu::analyzeStridedAccess(LayoutKind Kind, int64_t NumThreads,
                                         int64_t Rate, int64_t KeyRate) {
  assert(NumThreads > 0 && Rate > 0 && KeyRate > 0 && "bad parameters");
  AccessSummary S;
  std::vector<int64_t> Addrs;
  Addrs.reserve(HalfWarpSize);
  for (int64_t Base = 0; Base < NumThreads; Base += HalfWarpSize) {
    int64_t Lanes = std::min<int64_t>(HalfWarpSize, NumThreads - Base);
    // All lanes execute the same instruction: the n-th pop happens
    // simultaneously across the half-warp.
    for (int64_t N = 0; N < Rate; ++N) {
      Addrs.clear();
      for (int64_t Lane = 0; Lane < Lanes; ++Lane) {
        int64_t Q = naturalIndex(Base + Lane, N, Rate);
        Addrs.push_back(layoutPosition(Kind, Q, KeyRate));
      }
      ++S.HalfWarps;
      S.Accesses += Lanes;
      S.Transactions += countHalfWarpTransactions(Addrs);
    }
  }
  return S;
}
