//===- layout/AccessAnalyzer.h - Coalescing & bank conflicts ----*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Counts device-memory transactions and shared-memory bank conflicts for
/// the simultaneous accesses of a half-warp, under the GeForce 8800 rules
/// the paper states in Section II-A: thread N of a warp must access
/// WarpBaseAddress + N (with the base bank-aligned) for the accesses to
/// coalesce into a single transaction; otherwise they serialize.
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_LAYOUT_ACCESSANALYZER_H
#define SGPU_LAYOUT_ACCESSANALYZER_H

#include "layout/BufferLayout.h"

#include <cstdint>
#include <vector>

namespace sgpu {

/// Half-warp width on G80-class hardware (coalescing granularity).
inline constexpr int HalfWarpSize = 16;
/// Shared-memory banks on G80.
inline constexpr int SharedMemoryBanks = 16;

/// Number of device-memory transactions needed by one half-warp whose
/// lane i accesses element address \p Addrs[i] (word granularity).
/// Returns 1 when the accesses are perfectly coalesced (Addrs[i] ==
/// Addrs[0] + i and the base is 16-word aligned); otherwise each lane's
/// access is issued separately (G80 has no partial coalescing).
int countHalfWarpTransactions(const std::vector<int64_t> &Addrs);

/// Shared-memory conflict degree of one half-warp: the maximum number of
/// lanes hitting the same bank (1 = conflict free). Broadcasts (all lanes
/// on one address) count as 1, matching hardware.
int sharedMemoryConflictDegree(const std::vector<int64_t> &Addrs);

/// Summary of one filter's per-firing channel traffic for a whole block
/// of threads under a given layout.
struct AccessSummary {
  int64_t HalfWarps = 0;     ///< Half-warps analyzed.
  int64_t Accesses = 0;      ///< Total element accesses.
  int64_t Transactions = 0;  ///< Device-memory transactions issued.
  double transactionsPerAccess() const {
    return Accesses == 0 ? 0.0
                         : static_cast<double>(Transactions) /
                               static_cast<double>(Accesses);
  }
};

/// Analyzes the read traffic of a filter whose threads each pop
/// \p Rate tokens (thread \p Tid's n-th pop sits at layoutPosition(Kind,
/// naturalIndex(Tid, n, Rate), KeyRate)), for \p NumThreads threads.
/// \p KeyRate is the rate the shuffled layout is keyed with (the
/// consumer's rate for reads; may differ from \p Rate on the producer
/// side of a rate-mismatched edge).
AccessSummary analyzeStridedAccess(LayoutKind Kind, int64_t NumThreads,
                                   int64_t Rate, int64_t KeyRate);

} // namespace sgpu

#endif // SGPU_LAYOUT_ACCESSANALYZER_H
