//===- layout/BufferLayout.cpp - Channel buffer layouts ---------------------===//

#include "layout/BufferLayout.h"

// All layout math is constexpr in the header; this file anchors the
// translation unit and hosts nothing else.
