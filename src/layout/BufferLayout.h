//===- layout/BufferLayout.h - Channel buffer layouts -----------*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's buffer layout optimization (Section IV-D). A channel
/// buffer holds one steady state's tokens in "natural" FIFO order q =
/// thread*rate + n under the Sequential layout (Figure 8), which makes
/// simultaneous accesses by a half-warp hit the same banks and serialize.
/// The Shuffled layout groups threads into clusters of 128 (the gcd of
/// the considered block sizes) and stores each thread's n-th token at
///
///   pos = 128*n + floor(tid/128)*128*rate + (tid mod 128)     (Eq. 10/11)
///
/// so every warp accesses WarpBaseAddress + laneId — fully coalesced.
/// A buffer's layout is keyed to its consumer's pop rate (the paper's
/// Figure 9 lays the A->B buffer out so that "the first 128 elements ...
/// contain the first popped elements for each of the 128 threads"); the
/// producer's push() computes positions through the same permutation, per
/// the paper's remark that push()/pop() are modified to keep interior
/// buffers consistent. Only the program's first input buffer is shuffled
/// physically (Eq. 9).
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_LAYOUT_BUFFERLAYOUT_H
#define SGPU_LAYOUT_BUFFERLAYOUT_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace sgpu {

/// Thread cluster size: gcd of the candidate block sizes
/// {128, 256, 384, 512} (paper Section IV-D).
inline constexpr int64_t ThreadClusterSize = 128;

/// Available channel-buffer layouts.
enum class LayoutKind : uint8_t {
  Sequential, ///< Natural FIFO order (Figure 8; the SWPNC scheme).
  Shuffled    ///< 128-thread cluster shuffle (Figure 9; the SWP scheme).
};

/// Natural FIFO index of the \p N-th token of thread \p Tid at \p Rate
/// tokens per thread: q = Tid*Rate + N.
constexpr int64_t naturalIndex(int64_t Tid, int64_t N, int64_t Rate) {
  return Tid * Rate + N;
}

/// Eq. 10/11: buffer position of the \p N-th pop/push of thread \p Tid
/// under the shuffled layout keyed at \p Rate tokens per thread.
constexpr int64_t shuffledIndex(int64_t Tid, int64_t N, int64_t Rate) {
  return ThreadClusterSize * N +
         (Tid / ThreadClusterSize) * ThreadClusterSize * Rate +
         (Tid % ThreadClusterSize);
}

/// The per-edge cluster-shuffle permutation: position of natural index
/// \p Q in a buffer keyed at \p Rate tokens per thread. Equals
/// shuffledIndex(Q / Rate, Q % Rate, Rate).
constexpr int64_t shuffledPosition(int64_t Q, int64_t Rate) {
  return shuffledIndex(Q / Rate, Q % Rate, Rate);
}

/// Inverse permutation: natural index stored at position \p Pos.
constexpr int64_t naturalFromShuffled(int64_t Pos, int64_t Rate) {
  int64_t Block = Pos / (ThreadClusterSize * Rate);
  int64_t Within = Pos % (ThreadClusterSize * Rate);
  int64_t N = Within / ThreadClusterSize;
  int64_t Lane = Within % ThreadClusterSize;
  return (Block * ThreadClusterSize + Lane) * Rate + N;
}

/// Position of token \p Q under \p Kind at \p Rate.
constexpr int64_t layoutPosition(LayoutKind Kind, int64_t Q, int64_t Rate) {
  return Kind == LayoutKind::Sequential ? Q : shuffledPosition(Q, Rate);
}

/// Applies Eq. 9 to a host-side input buffer: returns the shuffled buffer
/// S with S[shuffledPosition(q)] = In[q]. The input size must be a
/// multiple of 128*Rate (whole clusters).
template <typename T>
std::vector<T> shuffleInputBuffer(const std::vector<T> &In, int64_t Rate) {
  assert(Rate > 0 && "layout rate must be positive");
  assert(static_cast<int64_t>(In.size()) % (ThreadClusterSize * Rate) == 0 &&
         "input must cover whole 128-thread clusters");
  std::vector<T> Out(In.size());
  for (int64_t Q = 0; Q < static_cast<int64_t>(In.size()); ++Q)
    Out[shuffledPosition(Q, Rate)] = In[Q];
  return Out;
}

/// Inverse of shuffleInputBuffer (used to read back program output).
template <typename T>
std::vector<T> unshuffleOutputBuffer(const std::vector<T> &In, int64_t Rate) {
  assert(Rate > 0 && "layout rate must be positive");
  assert(static_cast<int64_t>(In.size()) % (ThreadClusterSize * Rate) == 0 &&
         "output must cover whole 128-thread clusters");
  std::vector<T> Out(In.size());
  for (int64_t Pos = 0; Pos < static_cast<int64_t>(In.size()); ++Pos)
    Out[naturalFromShuffled(Pos, Rate)] = In[Pos];
  return Out;
}

} // namespace sgpu

#endif // SGPU_LAYOUT_BUFFERLAYOUT_H
