//===- parser/Lexer.cpp - StreamIt-like DSL lexer ----------------------------===//

#include "parser/Lexer.h"

#include "support/Check.h"

#include <cctype>
#include <cstdlib>

using namespace sgpu;

namespace {

bool isIdentStart(char C) { return std::isalpha(C) || C == '_'; }
bool isIdentChar(char C) { return std::isalnum(C) || C == '_'; }

} // namespace

std::vector<Token> sgpu::lexStreamProgram(std::string_view Source) {
  std::vector<Token> Out;
  size_t I = 0;
  int Line = 1;
  size_t N = Source.size();

  auto Push = [&](TokKind K, size_t Begin, size_t Len) {
    Token T;
    T.Kind = K;
    T.Text = Source.substr(Begin, Len);
    T.Line = Line;
    Out.push_back(T);
  };

  while (I < N) {
    char C = Source[I];
    // Whitespace and newlines.
    if (C == '\n') {
      ++Line;
      ++I;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++I;
      continue;
    }
    // Comments: // to end of line, /* */ blocks.
    if (C == '/' && I + 1 < N && Source[I + 1] == '/') {
      while (I < N && Source[I] != '\n')
        ++I;
      continue;
    }
    if (C == '/' && I + 1 < N && Source[I + 1] == '*') {
      I += 2;
      while (I + 1 < N && !(Source[I] == '*' && Source[I + 1] == '/')) {
        if (Source[I] == '\n')
          ++Line;
        ++I;
      }
      I = I + 2 <= N ? I + 2 : N;
      continue;
    }
    // Identifiers / keywords.
    if (isIdentStart(C)) {
      size_t Begin = I;
      while (I < N && isIdentChar(Source[I]))
        ++I;
      Push(TokKind::Identifier, Begin, I - Begin);
      continue;
    }
    // Numbers: 123, 1.5, .5 is not supported; "0..8" must lex as
    // Int DotDot Int, so a '.' followed by '.' ends the number.
    if (std::isdigit(static_cast<unsigned char>(C))) {
      size_t Begin = I;
      bool IsFloat = false;
      while (I < N && std::isdigit(static_cast<unsigned char>(Source[I])))
        ++I;
      if (I < N && Source[I] == '.' &&
          !(I + 1 < N && Source[I + 1] == '.')) {
        IsFloat = true;
        ++I;
        while (I < N &&
               std::isdigit(static_cast<unsigned char>(Source[I])))
          ++I;
      }
      if (I < N && (Source[I] == 'e' || Source[I] == 'E')) {
        IsFloat = true;
        ++I;
        if (I < N && (Source[I] == '+' || Source[I] == '-'))
          ++I;
        while (I < N &&
               std::isdigit(static_cast<unsigned char>(Source[I])))
          ++I;
      }
      std::string Text(Source.substr(Begin, I - Begin));
      Token T;
      T.Kind = IsFloat ? TokKind::FloatLiteral : TokKind::IntLiteral;
      T.Text = Source.substr(Begin, I - Begin);
      T.Line = Line;
      if (IsFloat)
        T.FloatValue = std::strtod(Text.c_str(), nullptr);
      else
        T.IntValue = std::strtoll(Text.c_str(), nullptr, 10);
      Out.push_back(T);
      continue;
    }

    // Multi-character punctuation first.
    auto Two = [&](char A, char B) {
      return C == A && I + 1 < N && Source[I + 1] == B;
    };
    struct Multi {
      char A, B;
      TokKind K;
    };
    static constexpr Multi Multis[] = {
        {'-', '>', TokKind::Arrow}, {'.', '.', TokKind::DotDot},
        {'<', '<', TokKind::Shl},   {'>', '>', TokKind::Shr},
        {'<', '=', TokKind::Le},    {'>', '=', TokKind::Ge},
        {'=', '=', TokKind::EqEq},  {'!', '=', TokKind::Ne},
        {'&', '&', TokKind::AndAnd}, {'|', '|', TokKind::OrOr},
    };
    bool Matched = false;
    for (const Multi &M : Multis) {
      if (Two(M.A, M.B)) {
        Push(M.K, I, 2);
        I += 2;
        Matched = true;
        break;
      }
    }
    if (Matched)
      continue;

    TokKind K;
    switch (C) {
    case '{': K = TokKind::LBrace; break;
    case '}': K = TokKind::RBrace; break;
    case '(': K = TokKind::LParen; break;
    case ')': K = TokKind::RParen; break;
    case '[': K = TokKind::LBracket; break;
    case ']': K = TokKind::RBracket; break;
    case ',': K = TokKind::Comma; break;
    case ';': K = TokKind::Semicolon; break;
    case '=': K = TokKind::Assign; break;
    case '+': K = TokKind::Plus; break;
    case '-': K = TokKind::Minus; break;
    case '*': K = TokKind::Star; break;
    case '/': K = TokKind::Slash; break;
    case '%': K = TokKind::Percent; break;
    case '&': K = TokKind::Amp; break;
    case '|': K = TokKind::Pipe; break;
    case '^': K = TokKind::Caret; break;
    case '~': K = TokKind::Tilde; break;
    case '<': K = TokKind::Lt; break;
    case '>': K = TokKind::Gt; break;
    case '!': K = TokKind::Not; break;
    default:
      Push(TokKind::Error, I, 1);
      ++I;
      continue;
    }
    Push(K, I, 1);
    ++I;
  }

  Token Eof;
  Eof.Kind = TokKind::Eof;
  Eof.Line = Line;
  Out.push_back(Eof);
  return Out;
}

const char *sgpu::tokKindName(TokKind K) {
  switch (K) {
  case TokKind::Identifier: return "identifier";
  case TokKind::IntLiteral: return "integer literal";
  case TokKind::FloatLiteral: return "float literal";
  case TokKind::LBrace: return "'{'";
  case TokKind::RBrace: return "'}'";
  case TokKind::LParen: return "'('";
  case TokKind::RParen: return "')'";
  case TokKind::LBracket: return "'['";
  case TokKind::RBracket: return "']'";
  case TokKind::Comma: return "','";
  case TokKind::Semicolon: return "';'";
  case TokKind::Arrow: return "'->'";
  case TokKind::DotDot: return "'..'";
  case TokKind::Assign: return "'='";
  case TokKind::Plus: return "'+'";
  case TokKind::Minus: return "'-'";
  case TokKind::Star: return "'*'";
  case TokKind::Slash: return "'/'";
  case TokKind::Percent: return "'%'";
  case TokKind::Amp: return "'&'";
  case TokKind::Pipe: return "'|'";
  case TokKind::Caret: return "'^'";
  case TokKind::Tilde: return "'~'";
  case TokKind::Shl: return "'<<'";
  case TokKind::Shr: return "'>>'";
  case TokKind::Lt: return "'<'";
  case TokKind::Le: return "'<='";
  case TokKind::Gt: return "'>'";
  case TokKind::Ge: return "'>='";
  case TokKind::EqEq: return "'=='";
  case TokKind::Ne: return "'!='";
  case TokKind::Not: return "'!'";
  case TokKind::AndAnd: return "'&&'";
  case TokKind::OrOr: return "'||'";
  case TokKind::Eof: return "end of input";
  case TokKind::Error: return "invalid character";
  }
  SGPU_UNREACHABLE("unknown token kind");
}
