//===- parser/Lexer.h - StreamIt-like DSL lexer -----------------*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for the textual stream-program format (see Parser.h for the
/// grammar). Plays the role StreamIt's front end plays in the paper's
/// Figure 5 toolchain.
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_PARSER_LEXER_H
#define SGPU_PARSER_LEXER_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sgpu {

/// Token kinds of the DSL.
enum class TokKind : uint8_t {
  Identifier,
  IntLiteral,
  FloatLiteral,
  // Punctuation.
  LBrace, RBrace, LParen, RParen, LBracket, RBracket,
  Comma, Semicolon, Arrow, DotDot,
  Assign, // =
  // Operators.
  Plus, Minus, Star, Slash, Percent,
  Amp, Pipe, Caret, Tilde, Shl, Shr,
  Lt, Le, Gt, Ge, EqEq, Ne, Not, AndAnd, OrOr,
  Eof,
  Error
};

/// One token with its source location and text.
struct Token {
  TokKind Kind = TokKind::Eof;
  std::string_view Text;
  int Line = 1;
  int64_t IntValue = 0;
  double FloatValue = 0.0;

  bool is(TokKind K) const { return Kind == K; }
  /// Keyword check: identifiers double as contextual keywords.
  bool isIdent(std::string_view S) const {
    return Kind == TokKind::Identifier && Text == S;
  }
};

/// Tokenizes \p Source. Lexical errors yield a trailing Error token whose
/// Text is the offending lexeme; the list always ends with Eof.
std::vector<Token> lexStreamProgram(std::string_view Source);

/// Human-readable token-kind name for diagnostics.
const char *tokKindName(TokKind K);

} // namespace sgpu

#endif // SGPU_PARSER_LEXER_H
