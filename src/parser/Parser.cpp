//===- parser/Parser.cpp - StreamIt-like DSL parser ---------------------------===//

#include "parser/Parser.h"

#include "ir/FilterBuilder.h"
#include "parser/Lexer.h"
#include "support/Check.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <map>
#include <optional>

using namespace sgpu;

namespace {

/// Name -> declaration map inside one filter body.
using Scope = std::map<std::string, const VarDecl *, std::less<>>;

class Parser {
public:
  explicit Parser(std::string_view Source)
      : Toks(lexStreamProgram(Source)) {}

  StreamPtr run(ParseDiagnostic *DiagOut) {
    StreamPtr S = parseStream();
    if (S && !cur().is(TokKind::Eof))
      error("expected end of input after the top-level stream");
    if (Failed) {
      if (DiagOut)
        *DiagOut = Diag;
      return nullptr;
    }
    return S;
  }

private:
  //===------------------------------------------------------------------===//
  // Token plumbing
  //===------------------------------------------------------------------===//

  const Token &cur() const { return Toks[Pos]; }
  const Token &peekTok(int Ahead = 1) const {
    size_t I = Pos + Ahead;
    return I < Toks.size() ? Toks[I] : Toks.back();
  }
  void advance() {
    if (Pos + 1 < Toks.size())
      ++Pos;
  }

  bool accept(TokKind K) {
    if (!cur().is(K))
      return false;
    advance();
    return true;
  }

  bool acceptIdent(std::string_view S) {
    if (!cur().isIdent(S))
      return false;
    advance();
    return true;
  }

  bool expect(TokKind K, const char *Context) {
    if (accept(K))
      return true;
    return error(std::string("expected ") + tokKindName(K) + " " +
                 Context + ", found " + tokKindName(cur().Kind));
  }

  bool error(const std::string &Message) {
    if (!Failed) {
      Failed = true;
      Diag.Line = cur().Line;
      Diag.Message = Message;
    }
    return false;
  }

  //===------------------------------------------------------------------===//
  // Streams
  //===------------------------------------------------------------------===//

  StreamPtr parseStream() {
    if (cur().isIdent("pipeline"))
      return parsePipeline();
    if (cur().isIdent("splitjoin"))
      return parseSplitJoin();
    if (cur().isIdent("filter"))
      return parseFilter();
    error("expected 'pipeline', 'splitjoin' or 'filter'");
    return nullptr;
  }

  StreamPtr parsePipeline() {
    acceptIdent("pipeline");
    if (cur().is(TokKind::Identifier))
      advance(); // Optional name, purely documentary.
    if (!expect(TokKind::LBrace, "to open the pipeline"))
      return nullptr;
    std::vector<StreamPtr> Children;
    while (!cur().is(TokKind::RBrace) && !cur().is(TokKind::Eof)) {
      StreamPtr C = parseStream();
      if (!C)
        return nullptr;
      Children.push_back(std::move(C));
    }
    if (!expect(TokKind::RBrace, "to close the pipeline"))
      return nullptr;
    if (Children.empty()) {
      error("pipeline must contain at least one stream");
      return nullptr;
    }
    return pipelineStream(std::move(Children));
  }

  bool parseWeights(std::vector<int64_t> &Out) {
    if (!expect(TokKind::LParen, "before round-robin weights"))
      return false;
    do {
      if (!cur().is(TokKind::IntLiteral))
        return error("expected an integer weight");
      Out.push_back(cur().IntValue);
      advance();
    } while (accept(TokKind::Comma));
    return expect(TokKind::RParen, "after round-robin weights");
  }

  StreamPtr parseSplitJoin() {
    acceptIdent("splitjoin");
    bool Duplicate = false;
    std::vector<int64_t> SplitW;
    if (acceptIdent("duplicate")) {
      Duplicate = true;
    } else if (acceptIdent("roundrobin")) {
      if (!parseWeights(SplitW))
        return nullptr;
    } else {
      error("expected 'duplicate' or 'roundrobin' after 'splitjoin'");
      return nullptr;
    }
    if (!acceptIdent("join")) {
      error("expected 'join' after the splitter specification");
      return nullptr;
    }
    if (!acceptIdent("roundrobin")) {
      error("joiners are always round robin: expected 'roundrobin'");
      return nullptr;
    }
    std::vector<int64_t> JoinW;
    if (!parseWeights(JoinW))
      return nullptr;
    if (!expect(TokKind::LBrace, "to open the splitjoin"))
      return nullptr;
    std::vector<StreamPtr> Children;
    while (!cur().is(TokKind::RBrace) && !cur().is(TokKind::Eof)) {
      StreamPtr C = parseStream();
      if (!C)
        return nullptr;
      Children.push_back(std::move(C));
    }
    if (!expect(TokKind::RBrace, "to close the splitjoin"))
      return nullptr;
    if (Children.size() != JoinW.size() ||
        (!Duplicate && Children.size() != SplitW.size())) {
      error("splitjoin branch count must match the weight lists");
      return nullptr;
    }
    if (Duplicate)
      return duplicateSplitJoin(std::move(Children), std::move(JoinW));
    return roundRobinSplitJoin(std::move(SplitW), std::move(Children),
                               std::move(JoinW));
  }

  //===------------------------------------------------------------------===//
  // Filters
  //===------------------------------------------------------------------===//

  std::optional<TokenType> parseType() {
    if (acceptIdent("int"))
      return TokenType::Int;
    if (acceptIdent("float"))
      return TokenType::Float;
    error("expected 'int' or 'float'");
    return std::nullopt;
  }

  StreamPtr parseFilter() {
    acceptIdent("filter");
    if (!cur().is(TokKind::Identifier)) {
      error("expected a filter name");
      return nullptr;
    }
    std::string Name(cur().Text);
    advance();
    if (!expect(TokKind::LParen, "after the filter name"))
      return nullptr;
    std::optional<TokenType> In = parseType();
    if (!In || !expect(TokKind::Arrow, "between the filter types"))
      return nullptr;
    std::optional<TokenType> OutTy = parseType();
    if (!OutTy || !expect(TokKind::Comma, "after the filter types"))
      return nullptr;

    auto ParseRate = [&](std::string_view Kw, int64_t &Val) {
      if (!acceptIdent(Kw))
        return error("expected '" + std::string(Kw) + "'");
      if (!cur().is(TokKind::IntLiteral))
        return error("expected an integer rate after '" +
                     std::string(Kw) + "'");
      Val = cur().IntValue;
      advance();
      return true;
    };

    int64_t Pop = 0, Push = 0, Peek = -1;
    if (!ParseRate("pop", Pop))
      return nullptr;
    if (!expect(TokKind::Comma, "after the pop rate"))
      return nullptr;
    if (!ParseRate("push", Push))
      return nullptr;
    if (accept(TokKind::Comma)) {
      if (!ParseRate("peek", Peek))
        return nullptr;
      if (Peek < Pop) {
        error("peek depth must be >= pop rate");
        return nullptr;
      }
    }
    if (Pop == 0 && Push == 0) {
      error("filter must pop or push at least one token");
      return nullptr;
    }
    const int64_t MaxRate = 1000000000;
    if (Pop > MaxRate || Push > MaxRate || Peek > MaxRate) {
      error("filter rate is out of range");
      return nullptr;
    }
    if (!expect(TokKind::RParen, "after the filter rates"))
      return nullptr;
    if (!expect(TokKind::LBrace, "to open the filter body"))
      return nullptr;

    FilterBuilder B(Name, *In, *OutTy);
    B.setRates(Pop, Push, Peek);
    Scope Vars;
    while (!cur().is(TokKind::RBrace) && !cur().is(TokKind::Eof))
      if (!parseFilterStmt(B, Vars))
        return nullptr;
    if (!expect(TokKind::RBrace, "to close the filter body"))
      return nullptr;
    return filterStream(B.build());
  }

  //===------------------------------------------------------------------===//
  // Statements
  //===------------------------------------------------------------------===//

  bool parseBlock(FilterBuilder &B, Scope &Vars) {
    if (!expect(TokKind::LBrace, "to open the block"))
      return false;
    while (!cur().is(TokKind::RBrace) && !cur().is(TokKind::Eof))
      if (!parseFilterStmt(B, Vars))
        return false;
    return expect(TokKind::RBrace, "to close the block");
  }

  bool parseFilterStmt(FilterBuilder &B, Scope &Vars) {
    // Control flow.
    if (cur().isIdent("for"))
      return parseFor(B, Vars);
    if (cur().isIdent("if"))
      return parseIf(B, Vars);
    // push(expr); / pop();
    if (cur().isIdent("push") && peekTok().is(TokKind::LParen)) {
      advance();
      advance();
      const Expr *V = parseExpr(B, Vars);
      if (!V)
        return false;
      if (!expect(TokKind::RParen, "after the push value"))
        return false;
      B.push(V);
      return expect(TokKind::Semicolon, "after push()");
    }
    if (cur().isIdent("pop") && peekTok().is(TokKind::LParen)) {
      advance();
      advance();
      if (!expect(TokKind::RParen, "after 'pop('"))
        return false;
      B.popDiscard();
      return expect(TokKind::Semicolon, "after pop()");
    }
    // Declarations.
    if (cur().isIdent("const") || cur().isIdent("state") ||
        cur().isIdent("int") || cur().isIdent("float"))
      return parseDecl(B, Vars);
    // Assignment.
    if (cur().is(TokKind::Identifier))
      return parseAssign(B, Vars);
    return error("expected a statement");
  }

  bool parseFor(FilterBuilder &B, Scope &Vars) {
    acceptIdent("for");
    if (!expect(TokKind::LParen, "after 'for'"))
      return false;
    if (!cur().is(TokKind::Identifier))
      return error("expected the loop variable name");
    std::string Name(cur().Text);
    advance();
    if (!acceptIdent("in"))
      return error("expected 'in' after the loop variable");
    const Expr *Begin = parseExpr(B, Vars);
    if (!Begin || !expect(TokKind::DotDot, "between the loop bounds"))
      return false;
    const Expr *End = parseExpr(B, Vars);
    if (!End || !expect(TokKind::RParen, "after the loop bounds"))
      return false;
    if (Begin->type() != TokenType::Int || End->type() != TokenType::Int)
      return error("loop bounds must be int expressions");
    const VarDecl *IV = B.beginFor(Name, Begin, End);
    const VarDecl *Shadowed = Vars.count(Name) ? Vars[Name] : nullptr;
    Vars[Name] = IV;
    bool Ok = parseBlock(B, Vars);
    if (Shadowed)
      Vars[Name] = Shadowed;
    else
      Vars.erase(Name);
    if (Ok)
      B.endFor();
    return Ok;
  }

  bool parseIf(FilterBuilder &B, Scope &Vars) {
    acceptIdent("if");
    if (!expect(TokKind::LParen, "after 'if'"))
      return false;
    const Expr *Cond = parseExpr(B, Vars);
    if (!Cond || !expect(TokKind::RParen, "after the condition"))
      return false;
    if (Cond->type() != TokenType::Int)
      return error("if condition must be an int expression");
    B.beginIf(Cond);
    if (!parseBlock(B, Vars))
      return false;
    if (cur().isIdent("else")) {
      advance();
      B.beginElse();
      if (!parseBlock(B, Vars))
        return false;
    }
    B.endIf();
    return true;
  }

  /// Constant literal (with optional leading '-') for field/state
  /// initializers.
  std::optional<Scalar> parseConstScalar(TokenType Ty) {
    bool Neg = accept(TokKind::Minus);
    if (cur().is(TokKind::IntLiteral)) {
      int64_t V = Neg ? -cur().IntValue : cur().IntValue;
      advance();
      return Ty == TokenType::Int ? Scalar::makeInt(V)
                                  : Scalar::makeFloat(double(V));
    }
    if (cur().is(TokKind::FloatLiteral)) {
      if (Ty == TokenType::Int) {
        error("integer initializer required");
        return std::nullopt;
      }
      double V = Neg ? -cur().FloatValue : cur().FloatValue;
      advance();
      return Scalar::makeFloat(V);
    }
    error("expected a constant literal initializer");
    return std::nullopt;
  }

  bool parseDecl(FilterBuilder &B, Scope &Vars) {
    bool IsConst = acceptIdent("const");
    bool IsState = !IsConst && acceptIdent("state");

    std::optional<TokenType> Ty = parseType();
    if (!Ty)
      return false;
    if (!cur().is(TokKind::Identifier))
      return error("expected a variable name");
    std::string Name(cur().Text);
    advance();
    if (Vars.count(Name))
      return error("redeclaration of '" + Name + "'");

    int64_t ArraySize = 0;
    if (accept(TokKind::LBracket)) {
      if (!cur().is(TokKind::IntLiteral))
        return error("expected a constant array size");
      ArraySize = cur().IntValue;
      advance();
      if (!expect(TokKind::RBracket, "after the array size"))
        return false;
      if (ArraySize <= 0)
        return error("array size must be a positive constant");
      if (ArraySize > (int64_t(1) << 20))
        return error("array size is out of range");
    }

    const VarDecl *D = nullptr;
    if (IsConst || IsState) {
      // Initializer is mandatory and must be constant.
      if (!expect(TokKind::Assign, "before the constant initializer"))
        return false;
      std::vector<Scalar> Init;
      if (ArraySize > 0) {
        if (!expect(TokKind::LBrace, "to open the initializer list"))
          return false;
        do {
          std::optional<Scalar> S = parseConstScalar(*Ty);
          if (!S)
            return false;
          Init.push_back(*S);
        } while (accept(TokKind::Comma));
        if (!expect(TokKind::RBrace, "to close the initializer list"))
          return false;
        if (static_cast<int64_t>(Init.size()) != ArraySize)
          return error("initializer count does not match the array size");
      } else {
        std::optional<Scalar> S = parseConstScalar(*Ty);
        if (!S)
          return false;
        Init.push_back(*S);
      }

      if (IsConst) {
        if (ArraySize > 0 && *Ty == TokenType::Int) {
          std::vector<int64_t> V;
          for (const Scalar &S : Init)
            V.push_back(S.asInt());
          D = B.fieldArrayI(Name, V);
        } else if (ArraySize > 0) {
          std::vector<double> V;
          for (const Scalar &S : Init)
            V.push_back(S.asFloat());
          D = B.fieldArrayF(Name, V);
        } else if (*Ty == TokenType::Int) {
          D = B.fieldScalarI(Name, Init[0].asInt());
        } else {
          D = B.fieldScalarF(Name, Init[0].asFloat());
        }
      } else { // state
        if (ArraySize > 0 && *Ty == TokenType::Float) {
          std::vector<double> V;
          for (const Scalar &S : Init)
            V.push_back(S.asFloat());
          D = B.stateArrayF(Name, V);
        } else if (ArraySize > 0) {
          return error("state int arrays are not supported");
        } else if (*Ty == TokenType::Int) {
          D = B.stateScalarI(Name, Init[0].asInt());
        } else {
          D = B.stateScalarF(Name, Init[0].asFloat());
        }
      }
    } else if (ArraySize > 0) {
      D = B.declArray(Name, *Ty, ArraySize);
    } else if (accept(TokKind::Assign)) {
      const Expr *Init = parseExpr(B, Vars);
      if (!Init)
        return false;
      // declVar types from the initializer; cast to the declared type.
      D = B.declVar(Name, *Ty);
      B.assign(D, Init);
    } else {
      D = B.declVar(Name, *Ty);
    }
    Vars[Name] = D;
    return expect(TokKind::Semicolon, "after the declaration");
  }

  bool parseAssign(FilterBuilder &B, Scope &Vars) {
    std::string Name(cur().Text);
    auto It = Vars.find(Name);
    if (It == Vars.end())
      return error("use of undeclared variable '" + Name + "'");
    advance();
    const VarDecl *D = It->second;
    if (accept(TokKind::LBracket)) {
      const Expr *Idx = parseExpr(B, Vars);
      if (!Idx || !expect(TokKind::RBracket, "after the index"))
        return false;
      if (!expect(TokKind::Assign, "in the assignment"))
        return false;
      const Expr *V = parseExpr(B, Vars);
      if (!V)
        return false;
      if (!D->isArray())
        return error("'" + Name + "' is not an array");
      if (D->isField())
        return error("'" + Name + "' is a read-only const");
      if (Idx->type() != TokenType::Int)
        return error("array index must be an int expression");
      B.assignIndex(D, Idx, V);
    } else {
      if (!expect(TokKind::Assign, "in the assignment"))
        return false;
      const Expr *V = parseExpr(B, Vars);
      if (!V)
        return false;
      if (D->isArray())
        return error("cannot assign to a whole array");
      if (D->isField())
        return error("'" + Name + "' is a read-only const");
      B.assign(D, V);
    }
    return expect(TokKind::Semicolon, "after the assignment");
  }

  //===------------------------------------------------------------------===//
  // Expressions (precedence climbing)
  //===------------------------------------------------------------------===//

  /// Binding power of the current token as a binary operator; 0 = none.
  int binPrec() const {
    switch (cur().Kind) {
    case TokKind::OrOr: return 1;
    case TokKind::AndAnd: return 2;
    case TokKind::Pipe: return 3;
    case TokKind::Caret: return 4;
    case TokKind::Amp: return 5;
    case TokKind::EqEq:
    case TokKind::Ne: return 6;
    case TokKind::Lt:
    case TokKind::Le:
    case TokKind::Gt:
    case TokKind::Ge: return 7;
    case TokKind::Shl:
    case TokKind::Shr: return 8;
    case TokKind::Plus:
    case TokKind::Minus: return 9;
    case TokKind::Star:
    case TokKind::Slash:
    case TokKind::Percent: return 10;
    default: return 0;
    }
  }

  const Expr *applyBinary(FilterBuilder &B, TokKind K, const Expr *L,
                          const Expr *R) {
    switch (K) {
    case TokKind::OrOr:
    case TokKind::AndAnd:
    case TokKind::Pipe:
    case TokKind::Caret:
    case TokKind::Amp:
    case TokKind::Shl:
    case TokKind::Shr:
    case TokKind::Percent:
      // Arithmetic and comparisons promote int operands to float; these
      // are int-only (FilterBuilder preconditions).
      if (L->type() != TokenType::Int || R->type() != TokenType::Int) {
        error("bitwise, shift, logical and '%' operators require int "
              "operands");
        return nullptr;
      }
      break;
    default:
      break;
    }
    switch (K) {
    case TokKind::OrOr: return B.logicalOr(L, R);
    case TokKind::AndAnd: return B.logicalAnd(L, R);
    case TokKind::Pipe: return B.bitOr(L, R);
    case TokKind::Caret: return B.bitXor(L, R);
    case TokKind::Amp: return B.bitAnd(L, R);
    case TokKind::EqEq: return B.eq(L, R);
    case TokKind::Ne: return B.ne(L, R);
    case TokKind::Lt: return B.lt(L, R);
    case TokKind::Le: return B.le(L, R);
    case TokKind::Gt: return B.gt(L, R);
    case TokKind::Ge: return B.ge(L, R);
    case TokKind::Shl: return B.shl(L, R);
    case TokKind::Shr: return B.shr(L, R);
    case TokKind::Plus: return B.add(L, R);
    case TokKind::Minus: return B.sub(L, R);
    case TokKind::Star: return B.mul(L, R);
    case TokKind::Slash: return B.div(L, R);
    case TokKind::Percent: return B.rem(L, R);
    default: SGPU_UNREACHABLE("not a binary operator");
    }
  }

  const Expr *parseExpr(FilterBuilder &B, Scope &Vars, int MinPrec = 1) {
    const Expr *L = parseUnary(B, Vars);
    if (!L)
      return nullptr;
    while (true) {
      int Prec = binPrec();
      if (Prec < MinPrec)
        return L;
      TokKind K = cur().Kind;
      advance();
      const Expr *R = parseExpr(B, Vars, Prec + 1);
      if (!R)
        return nullptr;
      L = applyBinary(B, K, L, R);
      if (!L)
        return nullptr;
    }
  }

  const Expr *parseUnary(FilterBuilder &B, Scope &Vars) {
    if (accept(TokKind::Minus)) {
      const Expr *E = parseUnary(B, Vars);
      return E ? B.neg(E) : nullptr;
    }
    if (accept(TokKind::Tilde)) {
      const Expr *E = parseUnary(B, Vars);
      if (!E)
        return nullptr;
      if (E->type() != TokenType::Int) {
        error("'~' requires an int operand");
        return nullptr;
      }
      return B.bitNot(E);
    }
    if (accept(TokKind::Not)) {
      const Expr *E = parseUnary(B, Vars);
      if (!E)
        return nullptr;
      if (E->type() != TokenType::Int) {
        error("'!' requires an int operand");
        return nullptr;
      }
      return B.logicalNot(E);
    }
    return parsePrimary(B, Vars);
  }

  const Expr *parsePrimary(FilterBuilder &B, Scope &Vars) {
    if (cur().is(TokKind::IntLiteral)) {
      const Expr *E = B.litI(cur().IntValue);
      advance();
      return E;
    }
    if (cur().is(TokKind::FloatLiteral)) {
      const Expr *E = B.litF(cur().FloatValue);
      advance();
      return E;
    }
    // Cast or parenthesized expression.
    if (cur().is(TokKind::LParen)) {
      if (peekTok().isIdent("int") || peekTok().isIdent("float")) {
        bool ToInt = peekTok().isIdent("int");
        advance(); // (
        advance(); // type
        if (!expect(TokKind::RParen, "after the cast type"))
          return nullptr;
        const Expr *E = parseUnary(B, Vars);
        if (!E)
          return nullptr;
        return ToInt ? B.castToInt(E) : B.castToFloat(E);
      }
      advance();
      const Expr *E = parseExpr(B, Vars);
      if (!E || !expect(TokKind::RParen, "after the expression"))
        return nullptr;
      return E;
    }
    if (!cur().is(TokKind::Identifier)) {
      error("expected an expression");
      return nullptr;
    }

    std::string Name(cur().Text);
    // Builtin calls and channel primitives.
    if (peekTok().is(TokKind::LParen)) {
      advance();
      advance();
      auto OneArg = [&]() -> const Expr * {
        const Expr *E = parseExpr(B, Vars);
        if (!E || !expect(TokKind::RParen, "after the argument"))
          return nullptr;
        return E;
      };
      auto TwoArgs = [&](const Expr *&A, const Expr *&C) {
        A = parseExpr(B, Vars);
        if (!A || !expect(TokKind::Comma, "between the arguments"))
          return false;
        C = parseExpr(B, Vars);
        return C && expect(TokKind::RParen, "after the arguments");
      };
      if (Name == "pop") {
        if (!expect(TokKind::RParen, "after 'pop('"))
          return nullptr;
        return B.pop();
      }
      if (Name == "peek") {
        const Expr *D = OneArg();
        if (!D)
          return nullptr;
        if (D->type() != TokenType::Int) {
          error("peek depth must be an int expression");
          return nullptr;
        }
        return B.peek(D);
      }
      // The math builtins are float-only at the builder level; int
      // arguments promote implicitly, C-style (castToFloat is a no-op on
      // float operands).
      if (Name == "sin") { const Expr *E = OneArg(); return E ? B.callSin(B.castToFloat(E)) : nullptr; }
      if (Name == "cos") { const Expr *E = OneArg(); return E ? B.callCos(B.castToFloat(E)) : nullptr; }
      if (Name == "sqrt") { const Expr *E = OneArg(); return E ? B.callSqrt(B.castToFloat(E)) : nullptr; }
      if (Name == "abs") { const Expr *E = OneArg(); return E ? B.callAbs(E) : nullptr; }
      if (Name == "exp") { const Expr *E = OneArg(); return E ? B.callExp(B.castToFloat(E)) : nullptr; }
      if (Name == "log") { const Expr *E = OneArg(); return E ? B.callLog(B.castToFloat(E)) : nullptr; }
      if (Name == "floor") { const Expr *E = OneArg(); return E ? B.callFloor(B.castToFloat(E)) : nullptr; }
      if (Name == "pow") {
        const Expr *A, *C;
        return TwoArgs(A, C)
                   ? B.callPow(B.castToFloat(A), B.castToFloat(C))
                   : nullptr;
      }
      if (Name == "min" || Name == "max") {
        const Expr *A, *C;
        if (!TwoArgs(A, C))
          return nullptr;
        if (A->type() != C->type()) {
          A = B.castToFloat(A);
          C = B.castToFloat(C);
        }
        return Name == "min" ? B.callMin(A, C) : B.callMax(A, C);
      }
      error("unknown function '" + Name + "'");
      return nullptr;
    }

    // Variable reference / array index.
    auto It = Vars.find(Name);
    if (It == Vars.end()) {
      error("use of undeclared variable '" + Name + "'");
      return nullptr;
    }
    advance();
    const VarDecl *D = It->second;
    if (accept(TokKind::LBracket)) {
      const Expr *Idx = parseExpr(B, Vars);
      if (!Idx || !expect(TokKind::RBracket, "after the index"))
        return nullptr;
      if (!D->isArray()) {
        error("'" + Name + "' is not an array");
        return nullptr;
      }
      if (Idx->type() != TokenType::Int) {
        error("array index must be an int expression");
        return nullptr;
      }
      return B.index(D, Idx);
    }
    if (D->isArray()) {
      error("array '" + Name + "' must be indexed");
      return nullptr;
    }
    return B.ref(D);
  }

  std::vector<Token> Toks;
  size_t Pos = 0;
  ParseDiagnostic Diag;
  bool Failed = false;
};

} // namespace

StreamPtr sgpu::parseStreamProgram(std::string_view Source,
                                   ParseDiagnostic *DiagOut) {
  StageTimer Timer("parser.parse");
  metricCounter("parser.programs").add(1);
  Parser P(Source);
  StreamPtr S = P.run(DiagOut);
  if (!S)
    metricCounter("parser.errors").add(1);
  return S;
}

const char *sgpu::dslBuiltinName(BuiltinFn Fn) {
  switch (Fn) {
  case BuiltinFn::Sin:
    return "sin";
  case BuiltinFn::Cos:
    return "cos";
  case BuiltinFn::Sqrt:
    return "sqrt";
  case BuiltinFn::Abs:
    return "abs";
  case BuiltinFn::Exp:
    return "exp";
  case BuiltinFn::Log:
    return "log";
  case BuiltinFn::Floor:
    return "floor";
  case BuiltinFn::Pow:
    return "pow";
  case BuiltinFn::Min:
    return "min";
  case BuiltinFn::Max:
    return "max";
  }
  return "?";
}
