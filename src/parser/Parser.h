//===- parser/Parser.h - StreamIt-like DSL parser ---------------*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A recursive-descent front end for a compact StreamIt-like source
/// format, lowering directly onto FilterBuilder / the hierarchical
/// stream constructors. Grammar (contextual keywords, C-like lexing):
///
///   program   := stream
///   stream    := filter | pipeline | splitjoin
///   pipeline  := "pipeline" [name] "{" stream+ "}"
///   splitjoin := "splitjoin" split "join" "roundrobin" "(" ints ")"
///                "{" stream+ "}"
///   split     := "duplicate" | "roundrobin" "(" ints ")"
///   filter    := "filter" name "(" type "->" type "," "pop" int ","
///                "push" int ["," "peek" int] ")" "{" fstmt* "}"
///   fstmt     := ["const"|"state"] type name ["[" int "]"]
///                  ["=" init] ";"              -- declaration
///             | name ["[" expr "]"] "=" expr ";"
///             | "push" "(" expr ")" ";"
///             | "pop" "(" ")" ";"
///             | "for" "(" name "in" expr ".." expr ")" "{" fstmt* "}"
///             | "if" "(" expr ")" "{" fstmt* "}" ["else" "{" fstmt* "}"]
///   init      := expr | "{" expr ("," expr)* "}"
///   type      := "int" | "float"
///   expr      := C precedence; pop(), peek(e), sin/cos/sqrt/abs/exp/
///                log/floor/pow/min/max calls, (int)(e)/(float)(e) casts
///
/// `const` declarations become filter fields (initializers must be
/// constant), `state` declarations become mutable filter state (the
/// stateful extension), plain declarations are per-firing locals.
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_PARSER_PARSER_H
#define SGPU_PARSER_PARSER_H

#include "ir/Ast.h"
#include "ir/Stream.h"

#include <string>
#include <string_view>

namespace sgpu {

/// A parse diagnostic with its 1-based source line.
struct ParseDiagnostic {
  int Line = 0;
  std::string Message;

  std::string str() const {
    return "line " + std::to_string(Line) + ": " + Message;
  }
};

/// Parses a stream program. Returns the hierarchical stream, or null
/// with \p DiagOut filled in on the first error.
StreamPtr parseStreamProgram(std::string_view Source,
                             ParseDiagnostic *DiagOut = nullptr);

/// The DSL spelling of a builtin call ("sqrt", "floor", ...) — the names
/// parsePrimary accepts, as opposed to the CUDA spellings of
/// builtinName(). Used by the DSL printer so emitted programs reparse.
const char *dslBuiltinName(BuiltinFn Fn);

} // namespace sgpu

#endif // SGPU_PARSER_PARSER_H
