//===- profile/ConfigSelection.cpp - Algorithm 7 -----------------------------===//

#include "profile/ConfigSelection.h"

#include "support/Metrics.h"
#include "support/Trace.h"

#include <cmath>

using namespace sgpu;

/// Index of \p Threads in ProfileThreadCounts, or -1.
static int threadIdxOf(int Threads) {
  for (int T = 0; T < ProfileTable::NumThreadCounts; ++T)
    if (ProfileThreadCounts[T] == Threads)
      return T;
  return -1;
}

static int regIdxOf(int RegLimit) {
  for (int R = 0; R < ProfileTable::NumRegLimits; ++R)
    if (ProfileRegLimits[R] == RegLimit)
      return R;
  return -1;
}

/// Work one GPU steady state performs: tokens delivered at the sink
/// (Algorithm 7 line 14's "simple metric"), falling back to covered base
/// iterations for graphs whose exit is a pure sink.
static double steadyStateWork(const SteadyState &SS,
                              const GpuSteadyState &GSS) {
  int64_t PerBaseIter = SS.outputTokensPerIteration();
  if (PerBaseIter <= 0)
    PerBaseIter = 1;
  return static_cast<double>(PerBaseIter) *
         static_cast<double>(GSS.Multiplier);
}

std::optional<ExecutionConfig>
sgpu::selectExecutionConfig(const SteadyState &SS, const ProfileTable &PT,
                            std::vector<ConfigCandidate> *CandidatesOut) {
  StageTimer Timer("profile.select_config");
  metricCounter("profile.config_selections").add(1);
  int N = PT.numNodes();
  std::optional<ExecutionConfig> Best;
  double MinII = ProfileTable::Infeasible;

  for (int R = 0; R < ProfileTable::NumRegLimits; ++R) {
    for (int T = 0; T < ProfileTable::NumThreadCounts; ++T) {
      ConfigCandidate Cand;
      Cand.RegLimit = ProfileRegLimits[R];
      Cand.NumThreads = ProfileThreadCounts[T];

      // feasiblePairs: the pair must be runnable for every node.
      bool PairFeasible = true;
      for (int I = 0; I < N && PairFeasible; ++I)
        PairFeasible = PT.at(I, R, T) < ProfileTable::Infeasible;
      if (!PairFeasible) {
        if (CandidatesOut)
          CandidatesOut->push_back(Cand);
        continue;
      }

      // Lines 3-6: per node, the best thread count k <= numThreads.
      std::vector<int64_t> Threads(N);
      std::vector<double> PerFiring(N);
      bool AllHaveChoice = true;
      for (int I = 0; I < N; ++I) {
        double BestTime = ProfileTable::Infeasible;
        int BestK = -1;
        for (int T2 = 0; T2 <= T; ++T2) {
          double RT = PT.at(I, R, T2);
          if (RT < BestTime) {
            BestTime = RT;
            BestK = ProfileThreadCounts[T2];
          }
        }
        if (BestK < 0) {
          AllHaveChoice = false;
          break;
        }
        Threads[I] = BestK;
        // Line 12's scaling: the run fired numfirings/k GPU iterations.
        PerFiring[I] = BestTime * static_cast<double>(BestK) /
                       static_cast<double>(PT.numFirings());
      }
      if (!AllHaveChoice) {
        if (CandidatesOut)
          CandidatesOut->push_back(Cand);
        continue;
      }

      // Line 7: re-solve the steady state for the coarsened rates.
      GpuSteadyState GSS = computeGpuSteadyState(SS.repetitions(), Threads);

      // Lines 8-13: resource II of this configuration.
      double CurII = 0.0;
      for (int I = 0; I < N; ++I)
        CurII += PerFiring[I] * static_cast<double>(GSS.Instances[I]);

      // Lines 14-15: scale by the work done per steady state.
      double Work = steadyStateWork(SS, GSS);
      CurII /= Work;

      Cand.Feasible = true;
      Cand.WorkScaledII = CurII;
      if (CandidatesOut)
        CandidatesOut->push_back(Cand);

      if (CurII < MinII) {
        MinII = CurII;
        ExecutionConfig C;
        C.RegLimit = ProfileRegLimits[R];
        C.NumThreads = ProfileThreadCounts[T];
        C.Threads = Threads;
        C.Delay = PerFiring;
        Best = std::move(C);
      }
    }
  }
  return Best;
}

std::optional<ExecutionConfig>
sgpu::makeFixedConfig(const SteadyState &SS, const ProfileTable &PT,
                      int RegLimit, int NumThreads) {
  (void)SS;
  int R = regIdxOf(RegLimit);
  int T = threadIdxOf(NumThreads);
  if (R < 0 || T < 0)
    return std::nullopt;
  int N = PT.numNodes();
  ExecutionConfig C;
  C.RegLimit = RegLimit;
  C.NumThreads = NumThreads;
  C.Threads.assign(N, NumThreads);
  C.Delay.resize(N);
  for (int I = 0; I < N; ++I) {
    double RT = PT.at(I, R, T);
    if (!(RT < ProfileTable::Infeasible))
      return std::nullopt;
    C.Delay[I] = RT * static_cast<double>(NumThreads) /
                 static_cast<double>(PT.numFirings());
  }
  return C;
}
