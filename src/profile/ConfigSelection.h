//===- profile/ConfigSelection.h - Algorithm 7 -------------------*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Algorithm 7: pick the globally best execution
/// configuration. All filters must share one register limit (nvcc
/// compiles the software-pipelined kernel as a single compilation unit,
/// Section IV-A), so candidates are (numRegs, numThreads) pairs feasible
/// for every filter; within a pair each filter picks its best thread
/// count k <= numThreads; the resulting resource-II, scaled by the work
/// one steady state performs, ranks the pairs.
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_PROFILE_CONFIGSELECTION_H
#define SGPU_PROFILE_CONFIGSELECTION_H

#include "core/ExecutionModel.h"
#include "profile/Profiler.h"

#include <optional>

namespace sgpu {

/// Diagnostic record of one candidate pair considered by Algorithm 7.
struct ConfigCandidate {
  int RegLimit = 0;
  int NumThreads = 0;
  double WorkScaledII = 0.0; ///< curII after the line 14-15 work scaling.
  bool Feasible = false;
};

/// Runs Algorithm 7 over \p PT. Returns nullopt when no (regs, threads)
/// pair is feasible for all nodes. \p CandidatesOut, when non-null,
/// receives one record per pair for the ablation bench.
std::optional<ExecutionConfig>
selectExecutionConfig(const SteadyState &SS, const ProfileTable &PT,
                      std::vector<ConfigCandidate> *CandidatesOut = nullptr);

/// Builds a fixed configuration (every node at \p NumThreads under
/// \p RegLimit) with delays from \p PT; used by the Serial scheme and the
/// configuration-selection ablation. Returns nullopt if infeasible for
/// some node.
std::optional<ExecutionConfig>
makeFixedConfig(const SteadyState &SS, const ProfileTable &PT, int RegLimit,
                int NumThreads);

} // namespace sgpu

#endif // SGPU_PROFILE_CONFIGSELECTION_H
