//===- profile/Profiler.cpp - Filter profiling sweep -------------------------===//

#include "profile/Profiler.h"

#include "gpusim/Occupancy.h"
#include "support/Metrics.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <cassert>

using namespace sgpu;

ProfileTable::ProfileTable(int NumNodes) { Times.resize(NumNodes); }

double &ProfileTable::at(int Node, int RegIdx, int ThreadIdx) {
  assert(Node >= 0 && Node < numNodes() && "node out of range");
  return Times[Node][RegIdx][ThreadIdx];
}

double ProfileTable::at(int Node, int RegIdx, int ThreadIdx) const {
  assert(Node >= 0 && Node < numNodes() && "node out of range");
  return Times[Node][RegIdx][ThreadIdx];
}

ProfileTable sgpu::profileGraph(const GpuArch &Arch, const StreamGraph &G,
                                LayoutKind Layout, int Jobs,
                                int64_t NumFirings,
                                const TimingModel *Model) {
  StageTimer Timer("profile.sweep");
  metricCounter("profile.sweeps").add(1);
  metricCounter("profile.cells")
      .add(static_cast<int64_t>(G.numNodes()) *
           ProfileTable::NumRegLimits * ProfileTable::NumThreadCounts);

  ProfileTable PT(G.numNodes());
  if (NumFirings > 0)
    PT.setNumFirings(NumFirings);

  // Each node's 4x4 sweep is a pure function of (Arch, node, layout):
  // fan the nodes out across the workers; every worker writes disjoint
  // rows of the table.
  parallelFor(0, G.numNodes(), Jobs, [&](int Idx) {
    const GraphNode &N = G.nodes()[Idx];
    TraceSpan Span("profile.node", "profile");
    Span.argStr("node", N.Name);
    WorkEstimate WE = nodeWorkEstimate(N);
    for (int R = 0; R < ProfileTable::NumRegLimits; ++R) {
      int RegLimit = ProfileRegLimits[R];
      for (int T = 0; T < ProfileTable::NumThreadCounts; ++T) {
        int Threads = ProfileThreadCounts[T];
        Occupancy Occ = computeOccupancy(Arch, Threads, RegLimit,
                                         /*SharedBytesPerBlock=*/0);
        if (!Occ.Feasible) {
          PT.at(N.Id, R, T) = ProfileTable::Infeasible;
          continue;
        }
        // Ceiling division: when the firing count is not a multiple of
        // the thread count, the last partial wave still runs (and must
        // be costed) — every thread count sees the same total work.
        int64_t Iterations =
            (PT.numFirings() + Threads - 1) / Threads;
        if (Model) {
          SimInstance Inst =
              buildSimInstance(Arch, N, WE, Threads, RegLimit, Layout);
          PT.at(N.Id, R, T) = Model->profileRunCycles(Inst, Iterations);
        } else {
          InstanceCost Cost =
              buildInstanceCost(Arch, N, WE, Threads, RegLimit, Layout);
          double PerFiring = instanceCycles(Arch, Cost);
          PT.at(N.Id, R, T) =
              static_cast<double>(Arch.KernelLaunchCycles) +
              static_cast<double>(Iterations) * PerFiring;
        }
      }
    }
  });
  return PT;
}
