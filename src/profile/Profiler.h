//===- profile/Profiler.h - Filter profiling sweep ---------------*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's profiling phase (Fig. 6): each filter is "compiled" under
/// register limits {16, 20, 32, 64} and "executed" with {128, 256, 384,
/// 512} threads, every run performing the same number of single-threaded
/// firings (numfirings, a multiple of all four thread counts). In the
/// paper the runs happen on the GPU via nvcc-built executables; here the
/// run time comes from the analytic simulator over the same filter AST,
/// with spill traffic modelled when the filter's register estimate
/// exceeds the limit. Configurations whose blocks cannot launch (regs *
/// threads > register file) are infeasible and recorded as infinity.
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_PROFILE_PROFILER_H
#define SGPU_PROFILE_PROFILER_H

#include "core/ExecutionModel.h"

#include <array>
#include <limits>
#include <vector>

namespace sgpu {

/// The profile table of one graph: cycles per profile run, indexed
/// [node][regLimitIdx][threadCountIdx]; infinity marks infeasible runs.
class ProfileTable {
public:
  static constexpr int NumRegLimits = 4;
  static constexpr int NumThreadCounts = 4;
  static constexpr double Infeasible =
      std::numeric_limits<double>::infinity();

  explicit ProfileTable(int NumNodes);

  double &at(int Node, int RegIdx, int ThreadIdx);
  double at(int Node, int RegIdx, int ThreadIdx) const;

  /// numfirings: single-threaded firings per profile run; a multiple of
  /// lcm(128, 256, 384, 512) = 1536 so every configuration does the same
  /// work (Fig. 6 requires it).
  int64_t numFirings() const { return NumFirings; }
  void setNumFirings(int64_t N) { NumFirings = N; }

  int numNodes() const { return static_cast<int>(Times.size()); }

private:
  std::vector<
      std::array<std::array<double, NumThreadCounts>, NumRegLimits>>
      Times;
  int64_t NumFirings = 6144;
};

class TimingModel;

/// Runs the Fig. 6 sweep for every node of \p G on \p Arch under
/// \p Layout (profiling is layout-aware: the SWPNC comparison profiles
/// without coalescing, Section V-B). Every [node][regLimit][threads]
/// cell is independent, so the sweep fans out over \p Jobs workers
/// (0 = auto via SGPU_JOBS / hardware_concurrency; results are
/// identical at any worker count). \p NumFirings overrides the default
/// per-run firing count when positive — profile runs whose firings are
/// not a multiple of the thread count still cost their last partial
/// wave (ceiling division). \p Model selects the timing model each cell
/// is costed with; null keeps the historical analytic formula.
ProfileTable profileGraph(const GpuArch &Arch, const StreamGraph &G,
                          LayoutKind Layout, int Jobs = 0,
                          int64_t NumFirings = 0,
                          const TimingModel *Model = nullptr);

} // namespace sgpu

#endif // SGPU_PROFILE_PROFILER_H
