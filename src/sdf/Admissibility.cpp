//===- sdf/Admissibility.cpp - Instance dependences and RecMII --------------===//

#include "sdf/Admissibility.h"

#include "support/Check.h"
#include "support/MathExtras.h"

#include <algorithm>
#include <map>

using namespace sgpu;

std::vector<InstanceDep> sgpu::computeInstanceDeps(int64_t Iuv, int64_t Peek,
                                                   int64_t Ouv, int64_t Muv,
                                                   int64_t Ku, int64_t K) {
  assert(Iuv > 0 && Ouv > 0 && Ku > 0 && K >= 0 && Muv >= 0 &&
         "malformed edge parameters");
  assert(Peek >= Iuv && "peek depth below pop rate");
  std::vector<InstanceDep> Deps;
  for (int64_t L = 1; L <= Peek; ++L) {
    // x_l: global producer firing index (relative to the same iteration)
    // that makes the l-th token of this firing available. Initial tokens
    // shift x_l towards earlier iterations (negative x_l); the resulting
    // constraint still binds in the steady state — iteration j consumes
    // what iteration j + jlag produced — so nothing is dropped here.
    int64_t X = ceilDiv(K * Iuv + L - Muv - Ouv, Ouv);
    InstanceDep D;
    D.JLag = floorDiv(X, Ku);
    D.KProd = floorMod(X, Ku);
    if (Deps.empty() || !(Deps.back() == D))
      Deps.push_back(D);
  }
  // Deduplicate, then drop dominated entries: for one producer instance
  // only the largest jlag (the most recent iteration's copy) constrains
  // the schedule — sigma_cons >= sigma_prod + d + T*jlag is strongest for
  // the largest jlag. At most floor(Peek/Ouv)+2 distinct x survive: the
  // paper's floor(Iuv/Ouv)+1 bound (peek in place of pop), plus one more
  // when the initial tokens straddle a producer-firing boundary.
  std::sort(Deps.begin(), Deps.end());
  Deps.erase(std::unique(Deps.begin(), Deps.end()), Deps.end());
  assert(static_cast<int64_t>(Deps.size()) <= Peek / Ouv + 2 &&
         "more distinct dependences than the paper's bound allows");
  std::vector<InstanceDep> Pruned;
  for (const InstanceDep &D : Deps) {
    bool Dominated = false;
    for (const InstanceDep &E : Deps)
      if (E.KProd == D.KProd && E.JLag > D.JLag)
        Dominated = true;
    if (!Dominated)
      Pruned.push_back(D);
  }
  return Pruned;
}

std::vector<InstanceDepEdge>
sgpu::buildInstanceDepGraph(const SteadyState &SS) {
  const StreamGraph &G = SS.graph();
  std::vector<InstanceDepEdge> Out;
  for (const ChannelEdge &E : G.edges()) {
    int64_t Ku = SS.repetitionsOf(E.Src);
    int64_t Kv = SS.repetitionsOf(E.Dst);
    // Steady-state dependences see the channel *after* the init phase,
    // whose firings deposit the peek slack.
    int64_t Muv = E.InitTokens + SS.initFirings()[E.Src] * E.ProdRate -
                  SS.initFirings()[E.Dst] * E.ConsRate;
    for (int64_t K = 0; K < Kv; ++K) {
      // Dependences are driven by the peek depth, not just the pop rate:
      // a firing may only start once `peek` tokens are available.
      for (const InstanceDep &D : computeInstanceDeps(
               E.ConsRate, E.PeekRate, E.ProdRate, Muv, Ku, K)) {
        InstanceDepEdge IE;
        IE.SrcNode = E.Src;
        IE.SrcK = D.KProd;
        IE.DstNode = E.Dst;
        IE.DstK = K;
        IE.Distance = -D.JLag;
        assert(IE.Distance >= 0 && "forward-in-time dependence");
        Out.push_back(IE);
      }
    }
  }
  return Out;
}

double sgpu::computeRecMII(const SteadyState &SS,
                           const std::vector<double> &Delay) {
  const StreamGraph &G = SS.graph();
  assert(Delay.size() == static_cast<size_t>(G.numNodes()) &&
         "delay vector size mismatch");

  // Build the instance graph with dense vertex ids.
  std::vector<int64_t> Base(G.numNodes());
  int64_t NumVerts = 0;
  for (int V = 0; V < G.numNodes(); ++V) {
    Base[V] = NumVerts;
    NumVerts += SS.repetitionsOf(V);
  }
  struct Arc {
    int64_t From, To;
    double Delay;
    int64_t Distance;
  };
  std::vector<Arc> Arcs;
  for (const InstanceDepEdge &E : buildInstanceDepGraph(SS))
    Arcs.push_back({Base[E.SrcNode] + E.SrcK, Base[E.DstNode] + E.DstK,
                    Delay[E.SrcNode], E.Distance});

  // Binary search on the ratio R: a cycle with sum(delay) > R*sum(dist)
  // exists iff the graph with arc weights (delay - R*distance) has a
  // positive cycle, detected by Bellman-Ford on negated weights.
  auto HasPositiveCycle = [&](double R) {
    std::vector<double> Dist(NumVerts, 0.0);
    for (int64_t It = 0; It < NumVerts; ++It) {
      bool Changed = false;
      for (const Arc &A : Arcs) {
        double W = A.Delay - R * static_cast<double>(A.Distance);
        if (Dist[A.From] + W > Dist[A.To] + 1e-9) {
          Dist[A.To] = Dist[A.From] + W;
          Changed = true;
        }
      }
      if (!Changed)
        return false;
    }
    return true;
  };

  if (!HasPositiveCycle(0.0))
    return 0.0; // Acyclic (after distance-0 filtering): no recurrence.

  double Lo = 0.0, Hi = 0.0;
  for (const Arc &A : Arcs)
    Hi += A.Delay;
  for (int It = 0; It < 60 && Hi - Lo > 1e-6 * std::max(1.0, Hi); ++It) {
    double Mid = 0.5 * (Lo + Hi);
    if (HasPositiveCycle(Mid))
      Lo = Mid;
    else
      Hi = Mid;
  }
  return Hi;
}
