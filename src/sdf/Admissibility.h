//===- sdf/Admissibility.h - Instance dependences and RecMII ----*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The instance-level dependence math of paper Section III-C. For an edge
/// (u,v) with rates I_uv / O_uv and m_uv initial tokens, the k-th firing
/// of v in iteration j depends on producer firings
///
///   x_l = ceil((k * I_uv + l - m_uv - O_uv) / O_uv),   l in [1, I_uv]
///
/// identified within the repetition structure as instance
/// k'_l = x_l mod k_u in iteration j + jlag_l with jlag_l = floor(x_l/k_u)
/// (floor/mod in the mathematical, negative-safe sense). The paper notes
/// at most floor(I_uv / O_uv) + 1 of these are distinct. These dependences
/// feed both the ILP constraint generator and the schedule verifier, and
/// define RecMII for graphs with feedback.
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_SDF_ADMISSIBILITY_H
#define SGPU_SDF_ADMISSIBILITY_H

#include "sdf/SteadyState.h"

#include <vector>

namespace sgpu {

/// One instance-level dependence of consumer instance (j, k, v) on
/// producer instance (j + JLag, KProd, u).
struct InstanceDep {
  int64_t KProd; ///< Producer instance index within its iteration [0,k_u).
  int64_t JLag;  ///< Iteration distance (<= 0; negative looks backwards).

  bool operator==(const InstanceDep &RHS) const {
    return KProd == RHS.KProd && JLag == RHS.JLag;
  }
  bool operator<(const InstanceDep &RHS) const {
    if (JLag != RHS.JLag)
      return JLag < RHS.JLag;
    return KProd < RHS.KProd;
  }
};

/// Computes the distinct dependences of consumer instance \p K (0-based,
/// < k_v) over an edge with consumption \p Iuv, peek depth \p Peek
/// (>= Iuv; pass Iuv for non-peeking consumers, recovering the paper's
/// formula verbatim), production \p Ouv, \p Muv initial tokens, and \p Ku
/// producer repetitions. Firing K needs the first K*Iuv + Peek tokens, so
/// l ranges over [1, Peek]. Dependences entirely satisfied by the initial
/// tokens are dropped.
std::vector<InstanceDep> computeInstanceDeps(int64_t Iuv, int64_t Peek,
                                             int64_t Ouv, int64_t Muv,
                                             int64_t Ku, int64_t K);

/// The instance-level dependence graph of one steady state: node per
/// (filter instance), edge per InstanceDep, annotated with the producer
/// delay. Used for RecMII and by the verifier.
struct InstanceDepEdge {
  int SrcNode;      ///< Producer graph node.
  int64_t SrcK;     ///< Producer instance.
  int DstNode;      ///< Consumer graph node.
  int64_t DstK;     ///< Consumer instance.
  int64_t Distance; ///< Iteration distance (= -JLag, >= 0).
};

/// Enumerates all instance dependences of the steady state \p SS.
std::vector<InstanceDepEdge> buildInstanceDepGraph(const SteadyState &SS);

/// Recurrence-constrained minimum II: the maximum over dependence cycles
/// of (cycle delay) / (cycle distance), with per-instance delays
/// \p Delay[node]. Returns 0 for acyclic instance graphs (all the paper's
/// benchmarks; footnote 1 reports RecMII = 0 throughout). Computed by
/// binary search on the ratio with negative-cycle detection.
double computeRecMII(const SteadyState &SS, const std::vector<double> &Delay);

} // namespace sgpu

#endif // SGPU_SDF_ADMISSIBILITY_H
