//===- sdf/RateSolver.cpp - SDF balance equations ---------------------------===//

#include "sdf/RateSolver.h"

#include "support/MathExtras.h"
#include "support/Rational.h"

using namespace sgpu;

std::optional<std::vector<int64_t>>
sgpu::computeRepetitionVector(const StreamGraph &G) {
  int N = G.numNodes();
  if (N == 0)
    return std::vector<int64_t>();

  // Propagate rational rates with a BFS per connected component.
  std::vector<Rational> Rate(N, Rational(0));
  std::vector<bool> Visited(N, false);

  for (int Start = 0; Start < N; ++Start) {
    if (Visited[Start])
      continue;
    Rate[Start] = Rational(1);
    Visited[Start] = true;
    std::vector<int> Work{Start};
    for (size_t I = 0; I < Work.size(); ++I) {
      int U = Work[I];
      const GraphNode &NU = G.node(U);
      auto Visit = [&](const ChannelEdge &E) {
        // Balance: rate[Src] * ProdRate == rate[Dst] * ConsRate.
        int Other = E.Src == U ? E.Dst : E.Src;
        Rational Implied =
            E.Src == U
                ? Rate[U] * Rational(E.ProdRate, E.ConsRate)
                : Rate[U] * Rational(E.ConsRate, E.ProdRate);
        if (!Visited[Other]) {
          Rate[Other] = Implied;
          Visited[Other] = true;
          Work.push_back(Other);
        } else if (Rate[Other] != Implied) {
          Rate[Other] = Rational(-1); // Mark inconsistency.
        }
      };
      for (int EId : NU.OutEdges)
        Visit(G.edge(EId));
      for (int EId : NU.InEdges)
        Visit(G.edge(EId));
    }
  }

  for (int I = 0; I < N; ++I)
    if (Rate[I] <= Rational(0))
      return std::nullopt;

  // Scale to the smallest integer vector: multiply by lcm of denominators,
  // then divide by the gcd of the numerators.
  int64_t DenLcm = 1;
  for (const Rational &R : Rate)
    DenLcm = lcm64(DenLcm, R.denominator());
  std::vector<int64_t> Reps(N);
  int64_t NumGcd = 0;
  for (int I = 0; I < N; ++I) {
    Reps[I] = Rate[I].numerator() * (DenLcm / Rate[I].denominator());
    NumGcd = gcd64(NumGcd, Reps[I]);
  }
  for (int64_t &K : Reps)
    K /= NumGcd;

  if (!isBalanced(G, Reps))
    return std::nullopt;
  return Reps;
}

bool sgpu::isBalanced(const StreamGraph &G, const std::vector<int64_t> &Reps) {
  if (Reps.size() != static_cast<size_t>(G.numNodes()))
    return false;
  for (const ChannelEdge &E : G.edges())
    if (Reps[E.Src] * E.ProdRate != Reps[E.Dst] * E.ConsRate)
      return false;
  for (int64_t K : Reps)
    if (K <= 0)
      return false;
  return true;
}
