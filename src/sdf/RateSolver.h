//===- sdf/RateSolver.h - SDF balance equations ------------------*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Solves the steady-state rate (balance) equations of Lee/Messerschmitt
/// SDF graphs — paper Section II-B, citing [13]: for every edge (u,v),
/// k_u * O_uv == k_v * I_uv. The smallest positive integer solution is the
/// primitive repetition vector k_v used throughout the compiler.
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_SDF_RATESOLVER_H
#define SGPU_SDF_RATESOLVER_H

#include "ir/StreamGraph.h"

#include <optional>
#include <vector>

namespace sgpu {

/// Computes the primitive repetition vector of \p G. Returns std::nullopt
/// when the graph is rate-inconsistent (no finite-buffer schedule exists,
/// i.e. the balance equations only admit the zero solution).
std::optional<std::vector<int64_t>>
computeRepetitionVector(const StreamGraph &G);

/// Verifies that \p Reps satisfies every balance equation of \p G.
bool isBalanced(const StreamGraph &G, const std::vector<int64_t> &Reps);

} // namespace sgpu

#endif // SGPU_SDF_RATESOLVER_H
