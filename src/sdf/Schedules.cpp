//===- sdf/Schedules.cpp - SAS and buffer-size computation ------------------===//

#include "sdf/Schedules.h"

#include "support/Check.h"

#include <algorithm>

using namespace sgpu;

std::optional<SequentialSchedule>
sgpu::buildSingleAppearanceSchedule(const SteadyState &SS) {
  std::optional<std::vector<int>> Order = SS.graph().topologicalOrder();
  if (!Order)
    return std::nullopt;
  SequentialSchedule Sched;
  for (int NodeId : *Order)
    Sched.Steps.push_back({NodeId, SS.repetitionsOf(NodeId)});
  return Sched;
}

std::optional<SequentialSchedule>
sgpu::buildMinLatencySchedule(const SteadyState &SS) {
  const StreamGraph &G = SS.graph();
  int N = G.numNodes();
  std::vector<int64_t> Tokens(G.numEdges());
  for (const ChannelEdge &E : G.edges())
    Tokens[E.Id] = E.InitTokens;
  std::vector<int64_t> Remaining(N);
  for (int I = 0; I < N; ++I)
    Remaining[I] = SS.repetitionsOf(I);

  auto CanFire = [&](int V) {
    if (Remaining[V] == 0)
      return false;
    for (int EId : G.node(V).InEdges) {
      const ChannelEdge &E = G.edge(EId);
      if (Tokens[EId] < E.PeekRate)
        return false;
    }
    return true;
  };

  // Demand-driven: prefer firing nodes later in topological order (the
  // consumers), which keeps channel occupancy low.
  std::optional<std::vector<int>> Order = G.topologicalOrder();
  if (!Order)
    return std::nullopt;
  std::vector<int> Priority(N);
  for (int I = 0; I < N; ++I)
    Priority[(*Order)[I]] = I;

  SequentialSchedule Sched;
  int64_t TotalRemaining = 0;
  for (int64_t R : Remaining)
    TotalRemaining += R;
  while (TotalRemaining > 0) {
    int Best = -1;
    for (int V = 0; V < N; ++V)
      if (CanFire(V) && (Best < 0 || Priority[V] > Priority[Best]))
        Best = V;
    if (Best < 0)
      return std::nullopt; // Deadlock.
    // Fire once.
    for (int EId : G.node(Best).InEdges)
      Tokens[EId] -= G.edge(EId).ConsRate;
    for (int EId : G.node(Best).OutEdges)
      Tokens[EId] += G.edge(EId).ProdRate;
    --Remaining[Best];
    --TotalRemaining;
    if (!Sched.Steps.empty() && Sched.Steps.back().NodeId == Best)
      ++Sched.Steps.back().Count;
    else
      Sched.Steps.push_back({Best, 1});
  }
  return Sched;
}

std::vector<int64_t>
sgpu::computeBufferOccupancy(const SteadyState &SS,
                             const SequentialSchedule &Sched) {
  const StreamGraph &G = SS.graph();
  std::vector<int64_t> Tokens(G.numEdges()), MaxTokens(G.numEdges());
  for (const ChannelEdge &E : G.edges())
    Tokens[E.Id] = MaxTokens[E.Id] = E.InitTokens;

  auto FireNode = [&](int V, int64_t Count) {
    for (int EId : G.node(V).InEdges)
      Tokens[EId] -= Count * G.edge(EId).ConsRate;
    for (int EId : G.node(V).OutEdges) {
      Tokens[EId] += Count * G.edge(EId).ProdRate;
      MaxTokens[EId] = std::max(MaxTokens[EId], Tokens[EId]);
    }
  };

  // Init phase first (in topological order), then the schedule proper.
  if (std::optional<std::vector<int>> Order = G.topologicalOrder())
    for (int V : *Order)
      if (SS.initFirings()[V] > 0)
        FireNode(V, SS.initFirings()[V]);
  for (const ScheduleStep &S : Sched.Steps)
    FireNode(S.NodeId, S.Count);
  return MaxTokens;
}

int64_t sgpu::totalBufferBytes(const StreamGraph &G,
                               const std::vector<int64_t> &OccupancyTokens) {
  assert(OccupancyTokens.size() == static_cast<size_t>(G.numEdges()) &&
         "occupancy vector size mismatch");
  int64_t Bytes = 0;
  for (const ChannelEdge &E : G.edges())
    Bytes += OccupancyTokens[E.Id] * tokenSizeBytes(E.Ty);
  return Bytes;
}
