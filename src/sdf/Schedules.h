//===- sdf/Schedules.h - SAS and buffer-size computation --------*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sequential steady-state schedules. The Single Appearance Schedule (SAS,
/// [14][8] in the paper) fires each node exactly once with its full
/// repetition count, in topological order; it is the paper's "Serial"
/// comparison scheme and also the CPU baseline order. Buffer-requirement
/// computation for SAS follows the schedule literally (max channel
/// occupancy); the paper notes SAS needs the most buffering of all
/// steady-state schedules.
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_SDF_SCHEDULES_H
#define SGPU_SDF_SCHEDULES_H

#include "sdf/SteadyState.h"

#include <optional>
#include <vector>

namespace sgpu {

/// One step of a sequential schedule: fire node \p NodeId \p Count times.
struct ScheduleStep {
  int NodeId;
  int64_t Count;
};

/// A sequential steady-state schedule (one iteration's firing sequence).
struct SequentialSchedule {
  std::vector<ScheduleStep> Steps;

  /// Total firings in one iteration.
  int64_t totalFirings() const {
    int64_t N = 0;
    for (const ScheduleStep &S : Steps)
      N += S.Count;
    return N;
  }
};

/// Builds the Single Appearance Schedule of \p SS (topological order, each
/// node once with count k_v). Returns nullopt when the graph has a
/// token-free cycle.
std::optional<SequentialSchedule>
buildSingleAppearanceSchedule(const SteadyState &SS);

/// Builds a minimum-buffer (demand-driven, "minimum latency" [15]) style
/// schedule: repeatedly fires any node whose firing rule is satisfied,
/// preferring consumers over producers, until each node has fired k_v
/// times. Returns nullopt when the graph deadlocks.
std::optional<SequentialSchedule>
buildMinLatencySchedule(const SteadyState &SS);

/// Per-edge maximum token occupancy when executing \p Sched once, starting
/// from the initial tokens (plus the init-phase firings of \p SS). This is
/// the buffer requirement of the schedule in tokens.
std::vector<int64_t> computeBufferOccupancy(const SteadyState &SS,
                                            const SequentialSchedule &Sched);

/// Sums per-edge occupancy in bytes (4-byte tokens), the Table II metric
/// for a sequential schedule.
int64_t totalBufferBytes(const StreamGraph &G,
                         const std::vector<int64_t> &OccupancyTokens);

} // namespace sgpu

#endif // SGPU_SDF_SCHEDULES_H
