//===- sdf/SteadyState.cpp - Steady-state schedule facts --------------------===//

#include "sdf/SteadyState.h"

#include "sdf/RateSolver.h"
#include "support/Check.h"
#include "support/MathExtras.h"
#include "support/Metrics.h"
#include "support/Trace.h"

using namespace sgpu;

std::optional<SteadyState> SteadyState::compute(const StreamGraph &G) {
  StageTimer Timer("sdf.rate_solve");
  metricCounter("sdf.rate_solves").add(1);
  std::optional<std::vector<int64_t>> Reps = computeRepetitionVector(G);
  if (!Reps) {
    metricCounter("sdf.rate_inconsistent").add(1);
    return std::nullopt;
  }

  SteadyState SS;
  SS.G = &G;
  SS.Reps = std::move(*Reps);

  // Initialization firings: walking the graph in reverse topological
  // order, require that after the init phase each edge (u,v) holds at
  // least peek - cons surplus tokens beyond what v's init firings consume:
  //   m_uv + init_u * O_uv - init_v * I_uv >= peek_uv - I_uv
  // i.e. init_u >= ceil((peek - I + init_v*I - m) / O).
  std::optional<std::vector<int>> Order = G.topologicalOrder();
  SS.Init.assign(G.numNodes(), 0);
  if (Order) {
    for (auto It = Order->rbegin(); It != Order->rend(); ++It) {
      int V = *It;
      for (int EId : G.node(V).InEdges) {
        const ChannelEdge &E = G.edge(EId);
        int64_t Needed =
            E.PeekRate - E.ConsRate + SS.Init[V] * E.ConsRate - E.InitTokens;
        if (Needed > 0) {
          int64_t Firings = ceilDiv(Needed, E.ProdRate);
          if (Firings > SS.Init[E.Src])
            SS.Init[E.Src] = Firings;
        }
      }
    }
  }
  return SS;
}

int64_t SteadyState::tokensPerIteration(int EdgeId) const {
  const ChannelEdge &E = G->edge(EdgeId);
  int64_t Tokens = Reps[E.Src] * E.ProdRate;
  assert(Tokens == Reps[E.Dst] * E.ConsRate && "unbalanced edge");
  return Tokens;
}

int64_t SteadyState::inputTokensPerIteration() const {
  int Entry = G->entryNode();
  if (Entry < 0)
    return 0;
  const GraphNode &N = G->node(Entry);
  assert(N.isFilter() && "entry node must be a filter");
  return Reps[Entry] * N.TheFilter->popRate();
}

int64_t SteadyState::outputTokensPerIteration() const {
  int Exit = G->exitNode();
  if (Exit < 0)
    return 0;
  const GraphNode &N = G->node(Exit);
  assert(N.isFilter() && "exit node must be a filter");
  return Reps[Exit] * N.TheFilter->pushRate();
}

int64_t SteadyState::inputTokensNeeded(int64_t Iterations) const {
  int Entry = G->entryNode();
  if (Entry < 0)
    return 0;
  const GraphNode &N = G->node(Entry);
  const Filter &F = *N.TheFilter;
  int64_t InitPops = Init[Entry] * F.popRate();
  int64_t SteadyPops = Iterations * Reps[Entry] * F.popRate();
  // The entry node itself may peek beyond what it pops.
  int64_t Slack = F.peekRate() - F.popRate();
  return InitPops + SteadyPops + Slack;
}
