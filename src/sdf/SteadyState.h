//===- sdf/SteadyState.h - Steady-state schedule facts ----------*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Derived facts about one steady-state iteration of a stream graph: the
/// repetition vector, per-edge token traffic, the initialization firings
/// needed before peeking filters reach steady state, and program I/O
/// volumes. One "steady state iteration" is one execution of the steady
/// state schedule (paper Section II-B).
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_SDF_STEADYSTATE_H
#define SGPU_SDF_STEADYSTATE_H

#include "ir/StreamGraph.h"

#include <optional>
#include <vector>

namespace sgpu {

/// Immutable steady-state summary of a graph.
class SteadyState {
public:
  /// Computes the steady state of \p G; nullopt if rate-inconsistent.
  static std::optional<SteadyState> compute(const StreamGraph &G);

  const StreamGraph &graph() const { return *G; }
  const std::vector<int64_t> &repetitions() const { return Reps; }
  int64_t repetitionsOf(int NodeId) const { return Reps[NodeId]; }

  /// Tokens crossing edge \p EdgeId during one steady-state iteration.
  int64_t tokensPerIteration(int EdgeId) const;

  /// Tokens the entry node pops from the program input per iteration
  /// (0 when the graph starts with a source filter).
  int64_t inputTokensPerIteration() const;

  /// Tokens the exit node pushes to the program output per iteration.
  int64_t outputTokensPerIteration() const;

  /// Initialization firings per node that build up the peek slack
  /// (peek - pop tokens) on every peeking edge so that the steady-state
  /// schedule can run in topological order forever. All-zero for graphs
  /// without peeking filters.
  const std::vector<int64_t> &initFirings() const { return Init; }

  /// Program input tokens needed to run the init phase plus \p Iterations
  /// steady-state iterations, including the entry node's own peek slack.
  int64_t inputTokensNeeded(int64_t Iterations) const;

private:
  SteadyState() = default;

  const StreamGraph *G = nullptr;
  std::vector<int64_t> Reps;
  std::vector<int64_t> Init;
};

} // namespace sgpu

#endif // SGPU_SDF_STEADYSTATE_H
