//===- service/GraphHash.cpp - Content-addressed schedule keys ------------===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//

#include "service/GraphHash.h"

#include "gpusim/TimingModel.h"
#include "ir/AstPrinter.h"
#include "support/Check.h"
#include "support/Sha256.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace sgpu {
namespace service {

namespace {

void appendf(std::string &Out, const char *Fmt, ...) {
  char Buf[256];
  va_list Ap;
  va_start(Ap, Fmt);
  std::vsnprintf(Buf, sizeof(Buf), Fmt, Ap);
  va_end(Ap);
  Out += Buf;
}

const char *tokenTypeTag(TokenType Ty) {
  return Ty == TokenType::Int ? "i" : "f";
}

/// Scalars print bit-exactly: int as decimal, float via %a (hex float)
/// so canonically equal graphs cannot drift through decimal rounding.
void appendScalar(std::string &Out, const Scalar &S) {
  if (S.Ty == TokenType::Int)
    appendf(Out, "i%" PRId64, S.asInt());
  else
    appendf(Out, "f%a", S.asFloat());
}

void appendScalarTable(std::string &Out, const char *Tag,
                       const std::vector<Scalar> &Values) {
  appendf(Out, " %s[", Tag);
  for (const Scalar &S : Values) {
    appendScalar(Out, S);
    Out += ' ';
  }
  Out += ']';
}

/// A filter node, without its name: rates, types, constants, and the
/// work-function body as rendered by the symbolic AST printer (local
/// variable names do appear — they are part of the parsed program, not
/// of the filter's identity the satellite invariants cover).
void appendFilter(std::string &Out, const Filter &F) {
  appendf(Out, " filter %s->%s pop=%" PRId64 " push=%" PRId64
               " peek=%" PRId64 "\n",
          tokenTypeTag(F.inputType()), tokenTypeTag(F.outputType()),
          F.popRate(), F.pushRate(), F.peekRate());
  const WorkFunction &W = F.work();
  for (int Slot = 0; Slot < W.numFieldSlots(); ++Slot)
    appendScalarTable(Out, "field", F.fieldValues(Slot));
  if (F.isStateful())
    for (int Slot = 0; Slot < W.numStateSlots(); ++Slot)
      appendScalarTable(Out, "state", F.stateInit(Slot));
  Out += "body{\n";
  Out += printWorkBody(F, symbolicChannelLowering(), /*Indent=*/0);
  Out += "}\n";
}

} // namespace

std::string canonicalizeGraph(const StreamGraph &G) {
  std::string Out;
  appendf(Out, "graph nodes=%d edges=%d entry=%d exit=%d\n", G.numNodes(),
          G.numEdges(), G.entryNode(), G.exitNode());
  for (const GraphNode &N : G.nodes()) {
    appendf(Out, "node %d ", N.Id);
    switch (N.Kind) {
    case NodeKind::Filter:
      appendFilter(Out, *N.TheFilter);
      break;
    case NodeKind::Splitter:
    case NodeKind::Joiner:
      appendf(Out, "%s %s ty=%s w=[",
              N.isSplitter() ? "splitter" : "joiner",
              N.SplitKind == SplitterKind::Duplicate ? "dup" : "rr",
              tokenTypeTag(N.Ty));
      for (int64_t W : N.Weights)
        appendf(Out, "%" PRId64 " ", W);
      Out += "]\n";
      break;
    }
  }
  // Edges already carry the port order through their position in the
  // endpoints' InEdges/OutEdges lists; emitting src/dst plus rates in
  // edge-id order pins the whole connectivity.
  for (const ChannelEdge &E : G.edges())
    appendf(Out,
            "edge %d %d->%d ty=%s prod=%" PRId64 " cons=%" PRId64
            " peek=%" PRId64 " init=%" PRId64 "\n",
            E.Id, E.Src, E.Dst, tokenTypeTag(E.Ty), E.ProdRate, E.ConsRate,
            E.PeekRate, E.InitTokens);
  return Out;
}

std::string canonicalizeOptions(const CompileOptions &O) {
  std::string Out;
  Out += "options\n";
  appendf(Out, "strategy=%s\n", strategyOptionName(O.Strat));
  appendf(Out, "machine=%s\n", machineModeName(O.Machine));
  appendf(Out, "timing=%s\n", timingModelKindName(O.Timing));
  appendf(Out, "warp_sched=%s\n", warpSchedPolicyName(O.WarpSched));
  appendf(Out, "config_select=%s\n", configSelectModeName(O.ConfigSelect));
  appendf(Out, "schema=%s\n", schemaModeName(O.Schema));
  appendf(Out, "coarsening=%d\n", O.Coarsening);
  appendf(Out, "serial_threads=%d\n", O.SerialThreads);

  const GpuArch &A = O.Arch;
  appendf(Out,
          "arch sms=%d su=%d warp=%d tpsm=%d tpb=%d bpsm=%d regs=%d "
          "shmem=%" PRId64 " clk=%a lat=%d cpt=%a cwi=%a sfu=%a mlp=%a "
          "launch=%" PRId64 "\n",
          A.NumSMs, A.ScalarUnitsPerSM, A.WarpSize, A.MaxThreadsPerSM,
          A.MaxThreadsPerBlock, A.MaxBlocksPerSM, A.RegistersPerSM,
          A.SharedMemPerSM, A.CoreClockGHz, A.MemLatencyCycles,
          A.ChipCyclesPerTxn, A.CyclesPerWarpInstr, A.SfuCyclesPerWarpInstr,
          A.MemoryLevelParallelism, A.KernelLaunchCycles);

  const SchedulerOptions &S = O.Sched;
  appendf(Out,
          "sched pmax=%d budget=%a nodes=%d lpiters=%d relax=%a "
          "maxrelax=%a stages=%" PRId64 " ilp=%d maxinst=%d attempts=%d "
          "force=%d\n",
          S.Pmax, S.TimeBudgetSeconds, S.MaxIlpNodes, S.MaxLpIterations,
          S.RelaxFactor, S.MaxRelaxFactor, S.MaxStages, S.UseIlp ? 1 : 0,
          S.MaxIlpInstances, S.MaxIlpAttempts,
          S.IlpEvenIfHeuristicSucceeds ? 1 : 0);

  const CpuModel &C = O.Cpu;
  appendf(Out,
          "cpu clk=%a alu=%a transc=%a chan=%a firing=%a cores=%d "
          "cache=%" PRId64 "\n",
          C.ClockGHz, C.CyclesPerAluOp, C.CyclesPerTransc,
          C.CyclesPerChannelOp, C.CyclesPerFiring, C.NumCores,
          C.CacheBytesPerCore);
  // NumWorkers and IIWindow are intentionally absent: the engine is
  // result-deterministic across worker counts (solver_parallel_test,
  // cyclesim determinism tests), so they must not split the key space.
  return Out;
}

std::string graphHash(const StreamGraph &G, const CompileOptions &Options) {
  Sha256 H;
  char Header[64];
  std::snprintf(Header, sizeof(Header), "sgpu-canon v%d\n",
                kCanonicalFormVersion);
  H.update(Header);
  H.update(canonicalizeGraph(G));
  H.update(canonicalizeOptions(Options));
  return H.digestHex();
}

} // namespace service
} // namespace sgpu
