//===- service/GraphHash.h - Content-addressed schedule keys ----*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Derives the content-addressed cache key of a compile request: a
/// SHA-256 over the *canonical form* of (flattened stream graph, machine
/// model, semantic compile options). The canonical form deliberately
/// excludes everything that cannot change the compile result:
///
///  - filter / splitter / joiner *names* (a renamed filter is the same
///    program; nodes are identified by their flatten-order index),
///  - source-text accidents (whitespace, comments, declaration spelling
///    — the hash is taken after parsing and flattening, never over text),
///  - execution-engine knobs that are determinism-invariant by the
///    repo's own tests (`NumWorkers`, `IIWindow` — final II and report
///    are identical at any worker count).
///
/// Everything that *can* change the result is included: graph structure
/// and rates, work-function bodies (printed through the symbolic AST
/// printer), field constants, the full GpuArch parameter set, strategy,
/// coarsening, timing model, and the solver budget knobs (a different
/// node budget can cut the search at a different incumbent).
///
/// Option spellings are canonicalized through the same functions the CLI
/// parsers use (`parseStrategyName`/`strategyOptionName`,
/// `parseTimingModelKind`/`timingModelKindName`), so "SWP" and "swp"
/// cannot hash apart. See DESIGN.md "Scheduling as a service".
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_SERVICE_GRAPHHASH_H
#define SGPU_SERVICE_GRAPHHASH_H

#include "core/Compiler.h"
#include "ir/StreamGraph.h"

#include <string>

namespace sgpu {
namespace service {

/// Version of the canonical form below. Bump whenever canonicalization
/// output changes; old cache entries then miss by key and are replaced.
/// v2: warp_sched= and config_select= joined the canonical options.
/// v3: schema= (the kernel-schema mode, codegen/schema/) joined the
/// canonical options — a warp-specialized compile produces a different
/// schedule report than a global one, so v2 keys must not alias it.
/// v4: machine= (gpu/hybrid) plus the CPU core count and per-core cache
/// budget joined the canonical options — hybrid schedules assign
/// instances to CPU cores, so gpu-mode keys must not alias them.
constexpr int kCanonicalFormVersion = 4;

/// Renders \p G in the canonical name-free text form described above.
std::string canonicalizeGraph(const StreamGraph &G);

/// Renders the semantic subset of \p Options (strategy, coarsening,
/// timing model, machine model, solver budgets) with canonical
/// spellings, one `key=value` per line in a fixed order.
std::string canonicalizeOptions(const CompileOptions &Options);

/// The cache key: 64 hex characters of
/// SHA-256(canonical header + graph + options).
std::string graphHash(const StreamGraph &G, const CompileOptions &Options);

} // namespace service
} // namespace sgpu

#endif // SGPU_SERVICE_GRAPHHASH_H
