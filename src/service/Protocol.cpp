//===- service/Protocol.cpp - sgpu-served wire protocol -------------------===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//

#include "service/Protocol.h"

#include "gpusim/TimingModel.h"
#include "support/Json.h"

namespace sgpu {
namespace service {

namespace {

bool fail(std::string *Err, const std::string &Msg) {
  if (Err)
    *Err = Msg;
  return false;
}

/// Applies the "options" object onto \p O. Unknown keys are errors (a
/// misspelled knob silently defaulting would poison the cache key).
bool applyOptions(const JsonValue &Obj, CompileOptions &O, std::string *Err) {
  for (const auto &[Key, Val] : Obj.members()) {
    if (Key == "strategy") {
      if (!Val.isString())
        return fail(Err, "options.strategy must be a string");
      std::optional<Strategy> S = parseStrategyName(Val.asString());
      if (!S)
        return fail(Err, "unknown strategy '" + Val.asString() + "'");
      O.Strat = *S;
    } else if (Key == "timing_model") {
      if (!Val.isString())
        return fail(Err, "options.timing_model must be a string");
      std::optional<TimingModelKind> K =
          parseTimingModelKind(Val.asString());
      if (!K)
        return fail(Err, "unknown timing model '" + Val.asString() + "'");
      O.Timing = *K;
    } else if (Key == "schema") {
      if (!Val.isString())
        return fail(Err, "options.schema must be a string");
      std::optional<SchemaMode> M = parseSchemaMode(Val.asString());
      if (!M)
        return fail(Err, "unknown schema '" + Val.asString() + "'");
      O.Schema = *M;
    } else if (Key == "machine") {
      if (!Val.isString())
        return fail(Err, "options.machine must be a string");
      std::optional<MachineMode> M = parseMachineMode(Val.asString());
      if (!M)
        return fail(Err, "unknown machine '" + Val.asString() + "'");
      O.Machine = *M;
    } else if (Key == "coarsening") {
      if (!Val.isNumber() || Val.asNumber() < 1)
        return fail(Err, "options.coarsening must be a positive number");
      O.Coarsening = static_cast<int>(Val.asNumber());
    } else if (Key == "serial_threads") {
      if (!Val.isNumber() || Val.asNumber() < 1)
        return fail(Err, "options.serial_threads must be positive");
      O.SerialThreads = static_cast<int>(Val.asNumber());
    } else if (Key == "sms") {
      int Sms = Val.isNumber() ? static_cast<int>(Val.asNumber()) : 0;
      if (Sms < 1 || Sms > O.Arch.NumSMs)
        return fail(Err, "options.sms out of range");
      O.Sched.Pmax = Sms;
    } else if (Key == "use_ilp") {
      O.Sched.UseIlp = Val.asBool();
    } else if (Key == "max_ilp_nodes") {
      if (!Val.isNumber() || Val.asNumber() < 1)
        return fail(Err, "options.max_ilp_nodes must be positive");
      O.Sched.MaxIlpNodes = static_cast<int>(Val.asNumber());
    } else if (Key == "max_lp_iterations") {
      if (!Val.isNumber() || Val.asNumber() < 1)
        return fail(Err, "options.max_lp_iterations must be positive");
      O.Sched.MaxLpIterations = static_cast<int>(Val.asNumber());
    } else if (Key == "time_budget_s") {
      if (!Val.isNumber() || Val.asNumber() < 0)
        return fail(Err, "options.time_budget_s must be >= 0");
      O.Sched.TimeBudgetSeconds = Val.asNumber();
    } else if (Key == "max_ilp_attempts") {
      if (!Val.isNumber() || Val.asNumber() < 0)
        return fail(Err, "options.max_ilp_attempts must be >= 0");
      O.Sched.MaxIlpAttempts = static_cast<int>(Val.asNumber());
    } else {
      return fail(Err, "unknown option '" + Key + "'");
    }
  }
  return true;
}

} // namespace

std::optional<CompileRequest> parseCompileRequest(const std::string &Line,
                                                  std::string *Err) {
  std::string ParseErr;
  std::optional<JsonValue> Doc = JsonValue::parse(Line, &ParseErr);
  if (!Doc) {
    fail(Err, "malformed JSON: " + ParseErr);
    return std::nullopt;
  }
  if (!Doc->isObject()) {
    fail(Err, "request must be a JSON object");
    return std::nullopt;
  }

  CompileRequest Req;
  if (const JsonValue *Id = Doc->find("id"); Id && Id->isString())
    Req.Id = Id->asString();
  if (const JsonValue *B = Doc->find("benchmark"); B && B->isString())
    Req.Benchmark = B->asString();
  if (const JsonValue *S = Doc->find("source"); S && S->isString())
    Req.Source = S->asString();
  if (const JsonValue *N = Doc->find("no_cache"); N)
    Req.NoCache = N->asBool();

  if (Req.Benchmark.empty() == Req.Source.empty()) {
    fail(Err, "request needs exactly one of \"benchmark\" or \"source\"");
    return std::nullopt;
  }
  if (const JsonValue *Opts = Doc->find("options")) {
    if (!Opts->isObject()) {
      fail(Err, "\"options\" must be an object");
      return std::nullopt;
    }
    if (!applyOptions(*Opts, Req.Options, Err))
      return std::nullopt;
  }
  return Req;
}

std::string makeOkResponse(const CompileRequest &Req, const std::string &Key,
                           bool CacheHit, bool Coalesced, double ElapsedMs,
                           const std::string &ReportJson) {
  JsonWriter W;
  W.beginObject();
  W.writeString("status", "ok");
  if (!Req.Id.empty())
    W.writeString("id", Req.Id);
  W.writeString("key", Key);
  W.writeString("cache", CacheHit ? "hit" : "miss");
  if (Coalesced)
    W.writeBool("coalesced", true);
  W.writeDouble("elapsed_ms", ElapsedMs);
  W.writeRaw("report", ReportJson);
  W.endObject();
  return W.str();
}

std::string makeErrorResponse(const std::string &Id, const std::string &Err) {
  JsonWriter W;
  W.beginObject();
  W.writeString("status", "error");
  if (!Id.empty())
    W.writeString("id", Id);
  W.writeString("error", Err);
  W.endObject();
  return W.str();
}

std::string makeBusyResponse(const std::string &Id, int RetryAfterMs) {
  JsonWriter W;
  W.beginObject();
  W.writeString("status", "busy");
  if (!Id.empty())
    W.writeString("id", Id);
  W.writeInt("retry_after_ms", RetryAfterMs);
  W.endObject();
  return W.str();
}

} // namespace service
} // namespace sgpu
