//===- service/Protocol.h - sgpu-served wire protocol -----------*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The request/response frames `sgpu-served` speaks: newline-delimited
/// JSON documents, one request per line, one response line per request,
/// over a TCP or Unix-domain stream (docs/PROTOCOL.md is the normative
/// spec with worked nc/python examples). Parsing maps the "options"
/// object onto CompileOptions through the same canonicalizing parsers
/// the CLI uses (parseStrategyName, parseTimingModelKind), so a request
/// spelling "SWP" and one spelling "swp" produce identical CompileOptions
/// and therefore identical cache keys.
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_SERVICE_PROTOCOL_H
#define SGPU_SERVICE_PROTOCOL_H

#include "core/Compiler.h"

#include <optional>
#include <string>

namespace sgpu {
namespace service {

/// One parsed compile request. Exactly one of Benchmark/Source is set.
struct CompileRequest {
  std::string Id;        ///< Optional client correlation id, echoed back.
  std::string Benchmark; ///< A Table I registry name ("DES", "FFT", ...).
  std::string Source;    ///< Or inline `.str` program text.
  CompileOptions Options;
  bool NoCache = false;  ///< Bypass lookup (still fills the cache).
};

/// Parses one request line. Returns std::nullopt and fills \p Err on
/// malformed JSON, unknown fields values, or a missing/ambiguous
/// program payload.
std::optional<CompileRequest> parseCompileRequest(const std::string &Line,
                                                  std::string *Err);

/// {"status":"ok","id":...,"key":...,"cache":"hit"|"miss","coalesced":b,
///  "elapsed_ms":...,"report":{...}} — one line, report spliced verbatim.
std::string makeOkResponse(const CompileRequest &Req, const std::string &Key,
                           bool CacheHit, bool Coalesced, double ElapsedMs,
                           const std::string &ReportJson);

/// {"status":"error","id":...,"error":"..."}
std::string makeErrorResponse(const std::string &Id, const std::string &Err);

/// {"status":"busy","id":...,"retry_after_ms":N} — admission control
/// shed the request; the client should back off and resend.
std::string makeBusyResponse(const std::string &Id, int RetryAfterMs);

} // namespace service
} // namespace sgpu

#endif // SGPU_SERVICE_PROTOCOL_H
