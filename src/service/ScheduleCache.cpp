//===- service/ScheduleCache.cpp - LRU schedule/report cache --------------===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//

#include "service/ScheduleCache.h"

#include "support/Json.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace fs = std::filesystem;

namespace sgpu {
namespace service {

ScheduleCache::ScheduleCache(Options O) : Opts(std::move(O)) {}

std::string ScheduleCache::entryPath(const std::string &Key) const {
  if (Opts.Dir.empty())
    return "";
  return (fs::path(Opts.Dir) / (Key + ".json")).string();
}

std::optional<std::string> ScheduleCache::lookup(const std::string &Key) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Index.find(Key);
  if (It != Index.end()) {
    Lru.splice(Lru.begin(), Lru, It->second);
    ++Counts.MemHits;
    return It->second->second;
  }
  if (std::optional<std::string> V = readEntryLocked(Key)) {
    ++Counts.DiskHits;
    // Promote to the hot tier without rewriting the (valid) disk file.
    insertLocked(Key, *V);
    evictOverBudgetLocked();
    return V;
  }
  ++Counts.Misses;
  return std::nullopt;
}

void ScheduleCache::insert(const std::string &Key, const std::string &Value) {
  std::lock_guard<std::mutex> Lock(Mu);
  insertLocked(Key, Value);
  evictOverBudgetLocked();
  if (!Opts.Dir.empty())
    writeEntryLocked(Key, Value);
}

void ScheduleCache::insertLocked(const std::string &Key,
                                 const std::string &Value) {
  auto It = Index.find(Key);
  if (It != Index.end()) {
    Bytes -= static_cast<int64_t>(It->second->second.size());
    Bytes += static_cast<int64_t>(Value.size());
    It->second->second = Value;
    Lru.splice(Lru.begin(), Lru, It->second);
    return;
  }
  Lru.emplace_front(Key, Value);
  Index[Key] = Lru.begin();
  Bytes += static_cast<int64_t>(Value.size());
}

void ScheduleCache::evictOverBudgetLocked() {
  // Keep at least the MRU entry so one oversized report still caches.
  while (Bytes > Opts.MaxBytes && Lru.size() > 1) {
    Bytes -= static_cast<int64_t>(Lru.back().second.size());
    Index.erase(Lru.back().first);
    Lru.pop_back();
    ++Counts.Evictions;
  }
}

bool ScheduleCache::writeEntryLocked(const std::string &Key,
                                     const std::string &Value) {
  std::error_code Ec;
  fs::create_directories(Opts.Dir, Ec);

  JsonWriter W;
  W.beginObject();
  W.writeInt("schema", kCacheSchemaVersion);
  W.writeString("key", Key);
  W.writeString("report_text", Value);
  W.endObject();

  // Atomic publish: write a temp file, then rename over the final path,
  // so a crashed or concurrent writer can never leave a torn entry.
  std::string Final = entryPath(Key);
  std::string Tmp = Final + ".tmp";
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out)
      return false;
    Out << W.str();
    if (!Out.flush())
      return false;
  }
  fs::rename(Tmp, Final, Ec);
  if (Ec) {
    fs::remove(Tmp, Ec);
    return false;
  }
  return true;
}

std::optional<std::string>
ScheduleCache::readEntryLocked(const std::string &Key) {
  if (Opts.Dir.empty())
    return std::nullopt;
  std::string Path = entryPath(Key);
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return std::nullopt;
  std::ostringstream Buf;
  Buf << In.rdbuf();

  auto Invalidate = [&]() -> std::optional<std::string> {
    ++Counts.Corrupt;
    std::error_code Ec;
    fs::remove(Path, Ec);
    return std::nullopt;
  };

  std::optional<JsonValue> Doc = JsonValue::parse(Buf.str());
  if (!Doc || !Doc->isObject())
    return Invalidate();
  const JsonValue *Schema = Doc->find("schema");
  if (!Schema || !Schema->isNumber() ||
      static_cast<int>(Schema->asNumber()) != kCacheSchemaVersion)
    return Invalidate();
  const JsonValue *K = Doc->find("key");
  if (!K || !K->isString() || K->asString() != Key)
    return Invalidate();
  const JsonValue *Report = Doc->find("report_text");
  if (!Report || !Report->isString() || Report->asString().empty())
    return Invalidate();
  return Report->asString();
}

void ScheduleCache::dropMemory() {
  std::lock_guard<std::mutex> Lock(Mu);
  Lru.clear();
  Index.clear();
  Bytes = 0;
}

int64_t ScheduleCache::sizeBytes() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Bytes;
}

int64_t ScheduleCache::entryCount() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return static_cast<int64_t>(Lru.size());
}

ScheduleCache::Stats ScheduleCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Counts;
}

} // namespace service
} // namespace sgpu
