//===- service/ScheduleCache.h - LRU schedule/report cache ------*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The schedule cache behind `sgpu-served`: an in-memory LRU of compile
/// reports keyed by GraphHash keys, bounded by a byte budget, with
/// write-through persistence to an on-disk directory. Memory is the hot
/// tier (eviction never touches disk); disk is the warm tier consulted
/// on a memory miss, so a restarted daemon re-serves its history without
/// re-solving. Disk entries are JSON envelopes stamped with
/// kSchemaVersion and their own key; a version bump, a key mismatch
/// (renamed/corrupted file) or a parse failure invalidates the entry —
/// it is deleted and the request falls through to a fresh solve that
/// rewrites it. Thread-safe; one mutex, I/O done under it (entries are
/// small — tens of KB of report JSON).
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_SERVICE_SCHEDULECACHE_H
#define SGPU_SERVICE_SCHEDULECACHE_H

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <string>

namespace sgpu {
namespace service {

/// On-disk envelope version. Bump when the envelope layout or the report
/// JSON schema changes incompatibly; older entries then self-invalidate.
constexpr int kCacheSchemaVersion = 1;

class ScheduleCache {
public:
  struct Options {
    /// Memory budget over the byte sizes of cached values (keys and
    /// bookkeeping are not charged). Inserting beyond it evicts from the
    /// LRU tail. A single value larger than the budget is still cached
    /// alone (the budget is a high-water mark, not a hard refusal).
    int64_t MaxBytes = 256ll << 20;
    /// Persistence directory; empty disables the disk tier. Created on
    /// first insert.
    std::string Dir;
  };

  struct Stats {
    int64_t MemHits = 0;
    int64_t DiskHits = 0;   ///< Misses in memory served from disk.
    int64_t Misses = 0;
    int64_t Evictions = 0;
    int64_t Corrupt = 0;    ///< Disk entries dropped: parse/version/key.
  };

  explicit ScheduleCache(Options O);

  /// Returns the cached value for \p Key, consulting memory then disk;
  /// a hit from either tier becomes most-recently-used in memory.
  std::optional<std::string> lookup(const std::string &Key);

  /// Inserts (or replaces) \p Key -> \p Value, evicting LRU entries
  /// beyond the byte budget, and writes through to disk when enabled.
  void insert(const std::string &Key, const std::string &Value);

  /// Drops every in-memory entry (disk entries survive — used by tests
  /// to exercise the disk tier).
  void dropMemory();

  int64_t sizeBytes() const;
  int64_t entryCount() const;
  Stats stats() const;

  /// The disk path an entry for \p Key lives at ("" when no disk tier).
  std::string entryPath(const std::string &Key) const;

private:
  /// MRU-first list of (key, value).
  using LruList = std::list<std::pair<std::string, std::string>>;

  void insertLocked(const std::string &Key, const std::string &Value);
  void evictOverBudgetLocked();
  bool writeEntryLocked(const std::string &Key, const std::string &Value);
  std::optional<std::string> readEntryLocked(const std::string &Key);

  Options Opts;
  mutable std::mutex Mu;
  LruList Lru;
  std::map<std::string, LruList::iterator> Index;
  int64_t Bytes = 0;
  Stats Counts;
};

} // namespace service
} // namespace sgpu

#endif // SGPU_SERVICE_SCHEDULECACHE_H
