//===- service/Server.cpp - Socket front end for sgpu-served --------------===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//

#include "service/Server.h"

#include "service/Service.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace sgpu {
namespace service {

namespace {

bool sendAll(int Fd, const std::string &Data) {
  size_t Off = 0;
  while (Off < Data.size()) {
    ssize_t N = ::send(Fd, Data.data() + Off, Data.size() - Off,
#ifdef MSG_NOSIGNAL
                       MSG_NOSIGNAL
#else
                       0
#endif
    );
    if (N <= 0) {
      if (N < 0 && errno == EINTR)
        continue;
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

} // namespace

Server::Server(Service &Svc, ServerOptions O) : Svc(Svc), Opts(std::move(O)) {}

Server::~Server() { stop(); }

bool Server::start(std::string *Err) {
  auto Fail = [&](const std::string &Msg) {
    if (Err)
      *Err = Msg + ": " + std::strerror(errno);
    if (ListenFd >= 0) {
      ::close(ListenFd);
      ListenFd = -1;
    }
    return false;
  };

  if (!Opts.UnixPath.empty()) {
    ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (ListenFd < 0)
      return Fail("socket");
    sockaddr_un Addr;
    std::memset(&Addr, 0, sizeof(Addr));
    Addr.sun_family = AF_UNIX;
    if (Opts.UnixPath.size() >= sizeof(Addr.sun_path))
      return Fail("unix path too long");
    std::strncpy(Addr.sun_path, Opts.UnixPath.c_str(),
                 sizeof(Addr.sun_path) - 1);
    ::unlink(Opts.UnixPath.c_str()); // Stale socket from a dead daemon.
    if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr),
               sizeof(Addr)) != 0)
      return Fail("bind " + Opts.UnixPath);
  } else {
    ListenFd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (ListenFd < 0)
      return Fail("socket");
    int One = 1;
    ::setsockopt(ListenFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
    sockaddr_in Addr;
    std::memset(&Addr, 0, sizeof(Addr));
    Addr.sin_family = AF_INET;
    Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    Addr.sin_port = htons(static_cast<uint16_t>(Opts.Port));
    if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr),
               sizeof(Addr)) != 0)
      return Fail("bind 127.0.0.1:" + std::to_string(Opts.Port));
    socklen_t Len = sizeof(Addr);
    if (::getsockname(ListenFd, reinterpret_cast<sockaddr *>(&Addr), &Len) ==
        0)
      BoundPort = ntohs(Addr.sin_port);
  }

  if (::listen(ListenFd, 64) != 0)
    return Fail("listen");

  Stopping.store(false);
  AcceptThread = std::thread([this] { acceptLoop(); });
  return true;
}

std::string Server::endpoint() const {
  if (!Opts.UnixPath.empty())
    return "unix:" + Opts.UnixPath;
  return "127.0.0.1:" + std::to_string(BoundPort);
}

void Server::acceptLoop() {
  while (!Stopping.load()) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      break; // Listener closed by stop() (or fatal error): wind down.
    }
    std::lock_guard<std::mutex> Lock(Mu);
    if (Stopping.load()) {
      ::close(Fd);
      break;
    }
    OpenFds.insert(Fd);
    Handlers.emplace_back([this, Fd] { connectionLoop(Fd); });
  }
}

void Server::connectionLoop(int Fd) {
  std::string Buf;
  char Chunk[4096];
  for (;;) {
    // Serve every complete line already buffered.
    size_t Nl;
    while ((Nl = Buf.find('\n')) != std::string::npos) {
      std::string Line = Buf.substr(0, Nl);
      Buf.erase(0, Nl + 1);
      if (!Line.empty() && Line.back() == '\r')
        Line.pop_back();
      if (Line.empty())
        continue;
      std::string Response = Svc.handleLine(Line);
      Response.push_back('\n');
      if (!sendAll(Fd, Response))
        goto done;
    }
    ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0)
      break;
    Buf.append(Chunk, static_cast<size_t>(N));
  }
done:
  ::close(Fd);
  std::lock_guard<std::mutex> Lock(Mu);
  OpenFds.erase(Fd);
}

void Server::stop() {
  if (Stopping.exchange(true))
    return;
  if (ListenFd >= 0) {
    // shutdown() unblocks accept(); close() alone does not on all
    // platforms.
    ::shutdown(ListenFd, SHUT_RDWR);
    ::close(ListenFd);
    ListenFd = -1;
  }
  if (AcceptThread.joinable())
    AcceptThread.join();
  {
    std::lock_guard<std::mutex> Lock(Mu);
    for (int Fd : OpenFds)
      ::shutdown(Fd, SHUT_RDWR); // Unblocks recv; handler closes the fd.
  }
  std::vector<std::thread> ToJoin;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    ToJoin.swap(Handlers);
  }
  for (std::thread &T : ToJoin)
    if (T.joinable())
      T.join();
  if (!Opts.UnixPath.empty())
    ::unlink(Opts.UnixPath.c_str());
}

} // namespace service
} // namespace sgpu
