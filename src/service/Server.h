//===- service/Server.h - Socket front end for sgpu-served ------*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transport layer of `sgpu-served`: a loopback TCP (or Unix-domain)
/// stream server speaking the newline-delimited JSON frames of
/// service/Protocol.h. Each accepted connection gets a handler thread
/// that reads request lines and answers with Service::handleLine —
/// connections are cheap (blocked on read), the expensive work is bounded
/// by the Service's compile pool and admission control, not by the
/// connection count. stop() closes the listener and every open
/// connection, then joins all handler threads; the destructor stops too.
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_SERVICE_SERVER_H
#define SGPU_SERVICE_SERVER_H

#include <atomic>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace sgpu {
namespace service {

class Service;

struct ServerOptions {
  /// TCP mode: bind 127.0.0.1:Port. Port 0 picks a free port (tests).
  int Port = 4790;
  /// Unix-domain mode: bind this path instead of TCP when non-empty.
  std::string UnixPath;
};

class Server {
public:
  Server(Service &Svc, ServerOptions O);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds, listens and starts the accept thread. False + \p Err on
  /// failure (port in use, bad unix path, ...).
  bool start(std::string *Err);

  /// Closes the listener and all connections, joins every thread.
  void stop();

  /// The bound TCP port (resolved when Port was 0); -1 in unix mode.
  int port() const { return BoundPort; }

  /// "127.0.0.1:4790" or "unix:/path" — for logs.
  std::string endpoint() const;

private:
  void acceptLoop();
  void connectionLoop(int Fd);

  Service &Svc;
  ServerOptions Opts;
  int ListenFd = -1;
  int BoundPort = -1;
  std::atomic<bool> Stopping{false};

  std::thread AcceptThread;
  std::mutex Mu;
  std::vector<std::thread> Handlers;
  std::set<int> OpenFds;
};

} // namespace service
} // namespace sgpu

#endif // SGPU_SERVICE_SERVER_H
