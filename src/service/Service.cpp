//===- service/Service.cpp - Scheduling-as-a-service core -----------------===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//

#include "service/Service.h"

#include "benchmarks/Registry.h"
#include "core/ReportWriter.h"
#include "parser/Parser.h"
#include "service/GraphHash.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <chrono>

namespace sgpu {
namespace service {

namespace {

double msSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

/// Builds the flattened graph of a request. Returns std::nullopt and
/// fills \p Err on an unknown benchmark or a parse/flatten failure.
std::optional<StreamGraph> buildRequestGraph(const CompileRequest &Req,
                                             std::string *Err) {
  if (!Req.Benchmark.empty()) {
    const bench::BenchmarkSpec *Spec = bench::findBenchmark(Req.Benchmark);
    if (!Spec) {
      *Err = "unknown benchmark '" + Req.Benchmark + "'";
      return std::nullopt;
    }
    return flatten(*Spec->Build());
  }
  ParseDiagnostic Diag;
  StreamPtr Parsed = parseStreamProgram(Req.Source, &Diag);
  if (!Parsed) {
    *Err = "parse error: " + Diag.str();
    return std::nullopt;
  }
  StreamGraph G = flatten(*Parsed);
  if (std::optional<std::string> Invalid = G.validate()) {
    *Err = "invalid graph: " + *Invalid;
    return std::nullopt;
  }
  return G;
}

} // namespace

Service::Service(ServiceOptions O)
    : Opts(O), Cache(O.Cache), Pool(O.Workers) {}

Service::~Service() { Pool.wait(); }

int Service::pendingSolves() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Pending;
}

std::string Service::handleLine(const std::string &Line) {
  auto Start = std::chrono::steady_clock::now();
  metricCounter("service.requests").add();
  TraceSpan Span("service.request", "service");

  std::string Err;
  std::optional<CompileRequest> Req = parseCompileRequest(Line, &Err);
  if (!Req) {
    metricCounter("service.errors").add();
    return makeErrorResponse("", Err);
  }
  std::string Response = handleParsed(*Req);
  metricHistogram("service.request_ms").record(msSince(Start));
  return Response;
}

std::string Service::handleParsed(const CompileRequest &Req) {
  auto Start = std::chrono::steady_clock::now();

  std::string Err;
  std::optional<StreamGraph> G = buildRequestGraph(Req, &Err);
  if (!G) {
    metricCounter("service.errors").add();
    return makeErrorResponse(Req.Id, Err);
  }
  const std::string Key = graphHash(*G, Req.Options);
  TraceSpan Span("service.handle", "service");
  Span.argStr("key", Key);

  if (!Req.NoCache) {
    if (std::optional<std::string> Hit = Cache.lookup(Key)) {
      metricCounter("service.cache_hits").add();
      metricHistogram("service.hit_ms").record(msSince(Start));
      Span.argStr("cache", "hit");
      return makeOkResponse(Req, Key, /*CacheHit=*/true,
                            /*Coalesced=*/false, msSince(Start), *Hit);
    }
    metricCounter("service.cache_misses").add();
  }
  Span.argStr("cache", "miss");

  // Coalesce onto an identical in-flight solve, or become its leader.
  std::shared_ptr<Inflight> Inf;
  bool Leader = false;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = InflightByKey.find(Key);
    if (It != InflightByKey.end()) {
      Inf = It->second;
      metricCounter("service.coalesced").add();
    } else {
      if (Pending >= Opts.MaxQueue) {
        metricCounter("service.shed").add();
        return makeBusyResponse(Req.Id, Opts.RetryAfterMs);
      }
      Inf = std::make_shared<Inflight>();
      InflightByKey[Key] = Inf;
      ++Pending;
      Leader = true;
    }
  }

  if (Leader) {
    // The solve owns the graph; it runs single-worker (request-level
    // parallelism comes from the pool) and publishes to the cache
    // before leaving the in-flight map, so a racing identical request
    // either coalesces or hits.
    auto Task = [this, Inf, Key,
                 Options = Req.Options,
                 Graph = std::make_shared<StreamGraph>(std::move(*G))] {
      TraceSpan SolveSpan("service.solve", "service");
      SolveSpan.argStr("key", Key);
      metricCounter("service.solves").add();
      CompileOptions SolveOpts = Options;
      SolveOpts.Sched.NumWorkers = 1;
      SolveOpts.Sched.IIWindow = 1;
      std::optional<CompileReport> R = compileForGpu(*Graph, SolveOpts);

      std::string Report;
      if (R)
        Report = reportToJson(*Graph, *R);
      if (R)
        Cache.insert(Key, Report);
      {
        std::lock_guard<std::mutex> Lock(Mu);
        InflightByKey.erase(Key);
        --Pending;
      }
      {
        std::lock_guard<std::mutex> Lock(Inf->Mu);
        Inf->Done = true;
        Inf->Ok = R.has_value();
        if (R)
          Inf->ReportJson = std::move(Report);
        else
          Inf->Error = "compilation failed (infeasible or unsupported)";
      }
      Inf->Cv.notify_all();
    };
    Pool.submit(std::move(Task));
  }

  {
    std::unique_lock<std::mutex> Lock(Inf->Mu);
    Inf->Cv.wait(Lock, [&] { return Inf->Done; });
  }
  metricGauge("service.cache_bytes").set(double(Cache.sizeBytes()));
  metricGauge("service.cache_entries").set(double(Cache.entryCount()));

  if (!Inf->Ok) {
    metricCounter("service.errors").add();
    return makeErrorResponse(Req.Id, Inf->Error);
  }
  metricHistogram("service.miss_ms").record(msSince(Start));
  return makeOkResponse(Req, Key, /*CacheHit=*/false, /*Coalesced=*/!Leader,
                        msSince(Start), Inf->ReportJson);
}

} // namespace service
} // namespace sgpu
