//===- service/Service.h - Scheduling-as-a-service core ---------*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon's brain, independent of any transport: `handleLine` takes
/// one request frame (service/Protocol.h) and returns one response
/// frame. The socket Server and the tests both drive this class, so
/// every policy is exercised without a socket in the loop:
///
///  - **Cache:** requests are keyed by GraphHash and served from the
///    ScheduleCache (memory, then disk) when possible.
///  - **Coalescing:** concurrent identical requests (same key) share one
///    solve — followers block on the leader's in-flight entry instead of
///    queueing duplicate MILPs.
///  - **Admission control:** when the number of queued+running solves
///    reaches MaxQueue, new *solve-requiring* work is shed with a
///    `busy`/retry-after response (cache hits and coalesced followers
///    are never shed — they consume no solver capacity).
///  - **Observability:** per-request `service.request` trace spans and
///    `service.*` counters/histograms in the PR 3 metrics registry.
///
/// Solves run single-worker on the service's ThreadPool: the engine is
/// result-deterministic across worker counts, so per-solve parallelism
/// is traded for request-level parallelism (W independent solves).
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_SERVICE_SERVICE_H
#define SGPU_SERVICE_SERVICE_H

#include "service/Protocol.h"
#include "service/ScheduleCache.h"
#include "support/ThreadPool.h"

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace sgpu {
namespace service {

struct ServiceOptions {
  ScheduleCache::Options Cache;
  /// Compile workers (0 = SGPU_JOBS, then hardware_concurrency).
  int Workers = 0;
  /// Queued+running solves beyond which new solves are shed.
  int MaxQueue = 16;
  /// Back-off hint in `busy` responses.
  int RetryAfterMs = 250;
};

class Service {
public:
  explicit Service(ServiceOptions O);
  ~Service();

  Service(const Service &) = delete;
  Service &operator=(const Service &) = delete;

  /// Handles one request frame, returns the response frame (no newline).
  std::string handleLine(const std::string &Line);

  ScheduleCache &cache() { return Cache; }
  const ServiceOptions &options() const { return Opts; }

  /// Queued+running solves right now (tests pin shedding with this).
  int pendingSolves() const;

private:
  /// One in-flight solve; followers with the same key wait on it.
  struct Inflight {
    std::mutex Mu;
    std::condition_variable Cv;
    bool Done = false;
    bool Ok = false;
    std::string ReportJson; ///< Valid when Ok.
    std::string Error;      ///< Valid when !Ok.
  };

  std::string handleParsed(const CompileRequest &Req);

  ServiceOptions Opts;
  ScheduleCache Cache;
  ThreadPool Pool;

  mutable std::mutex Mu;
  std::map<std::string, std::shared_ptr<Inflight>> InflightByKey;
  int Pending = 0; ///< Queued+running solves.
};

} // namespace service
} // namespace sgpu

#endif // SGPU_SERVICE_SERVICE_H
