//===- support/Casting.h - isa/cast/dyn_cast for AST nodes -----*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A hand-rolled, opt-in RTTI scheme in the LLVM style. Classes participate
/// by exposing `static bool classof(const Base *)`; the library is built
/// without C++ RTTI.
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_SUPPORT_CASTING_H
#define SGPU_SUPPORT_CASTING_H

#include <cassert>

namespace sgpu {

/// Returns true if \p Val dynamically is a To. \p Val must be non-null.
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> on a null pointer");
  return To::classof(Val);
}

/// Checked downcast; asserts that the cast is valid.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

/// Checked downcast, const variant.
template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Checking downcast; returns null when the dynamic type does not match.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

/// Checking downcast, const variant.
template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

} // namespace sgpu

#endif // SGPU_SUPPORT_CASTING_H
