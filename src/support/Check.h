//===- support/Check.h - Assertion and unreachable helpers -----*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight assertion helpers used across the library. The library does
/// not use exceptions or RTTI; programmatic errors abort via these helpers
/// and recoverable conditions are reported through return values.
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_SUPPORT_CHECK_H
#define SGPU_SUPPORT_CHECK_H

#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace sgpu {

/// Aborts the program with a message. Marks unreachable control flow, e.g.
/// a fully covered switch over an enumeration.
[[noreturn]] inline void unreachable(const char *Msg, const char *File,
                                     int Line) {
  std::fprintf(stderr, "UNREACHABLE at %s:%d: %s\n", File, Line, Msg);
  std::abort();
}

/// Reports a fatal usage error (bad input that the library cannot recover
/// from) and aborts. Unlike assert, this fires in release builds too.
[[noreturn]] inline void reportFatalError(const char *Msg) {
  std::fprintf(stderr, "fatal error: %s\n", Msg);
  std::abort();
}

} // namespace sgpu

#define SGPU_UNREACHABLE(MSG) ::sgpu::unreachable(MSG, __FILE__, __LINE__)

#endif // SGPU_SUPPORT_CHECK_H
