//===- support/DotWriter.cpp - Graphviz DOT emission ----------------------===//

#include "support/DotWriter.h"

#include <sstream>

using namespace sgpu;

std::string sgpu::escapeDotLabel(const std::string &Label) {
  std::string Out;
  Out.reserve(Label.size());
  for (char C : Label) {
    if (C == '"' || C == '\\')
      Out.push_back('\\');
    Out.push_back(C);
  }
  return Out;
}

DotWriter::DotWriter(std::string GraphName) : Name(std::move(GraphName)) {}

int DotWriter::addNode(int Id, const std::string &Label,
                       const std::string &Attrs) {
  std::ostringstream OS;
  OS << "  n" << Id << " [label=\"" << escapeDotLabel(Label) << "\"";
  if (!Attrs.empty())
    OS << ", " << Attrs;
  OS << "];";
  Nodes.push_back(OS.str());
  return Id;
}

void DotWriter::addEdge(int From, int To, const std::string &Label) {
  std::ostringstream OS;
  OS << "  n" << From << " -> n" << To;
  if (!Label.empty())
    OS << " [label=\"" << escapeDotLabel(Label) << "\"]";
  OS << ";";
  Edges.push_back(OS.str());
}

std::string DotWriter::str() const {
  std::ostringstream OS;
  OS << "digraph \"" << escapeDotLabel(Name) << "\" {\n";
  for (const std::string &N : Nodes)
    OS << N << "\n";
  for (const std::string &E : Edges)
    OS << E << "\n";
  OS << "}\n";
  return OS.str();
}
