//===- support/DotWriter.h - Graphviz DOT emission --------------*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal Graphviz writer used to dump flattened stream graphs and
/// schedules for debugging; mirrors the paper's Figure 4 style diagrams.
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_SUPPORT_DOTWRITER_H
#define SGPU_SUPPORT_DOTWRITER_H

#include <string>
#include <vector>

namespace sgpu {

/// Accumulates nodes and edges and renders a DOT digraph string.
class DotWriter {
public:
  explicit DotWriter(std::string GraphName);

  /// Adds a node; \p Id must be unique. Returns the node id for chaining.
  int addNode(int Id, const std::string &Label,
              const std::string &Attrs = "");

  /// Adds a directed edge between previously added node ids.
  void addEdge(int From, int To, const std::string &Label = "");

  /// Renders the graph.
  std::string str() const;

private:
  std::string Name;
  std::vector<std::string> Nodes;
  std::vector<std::string> Edges;
};

/// Escapes a label for inclusion in a DOT quoted string.
std::string escapeDotLabel(const std::string &Label);

} // namespace sgpu

#endif // SGPU_SUPPORT_DOTWRITER_H
