//===- support/Json.cpp - Minimal JSON writer --------------------------------===//

#include "support/Json.h"

#include <cassert>
#include <cstdio>

using namespace sgpu;

JsonWriter::JsonWriter() { FirstInScope.push_back(true); }

void JsonWriter::comma() {
  assert(!FirstInScope.empty() && "writing outside any scope");
  if (!FirstInScope.back())
    Out += ",";
  FirstInScope.back() = false;
}

void JsonWriter::key(const std::string &Key) {
  comma();
  if (!Key.empty())
    Out += "\"" + escape(Key) + "\":";
}

std::string JsonWriter::escape(const std::string &S) {
  std::string R;
  R.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"': R += "\\\""; break;
    case '\\': R += "\\\\"; break;
    case '\n': R += "\\n"; break;
    case '\t': R += "\\t"; break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        R += Buf;
      } else {
        R += C;
      }
    }
  }
  return R;
}

void JsonWriter::beginObject(const std::string &Key) {
  key(Key);
  Out += "{";
  FirstInScope.push_back(true);
}

void JsonWriter::endObject() {
  assert(FirstInScope.size() > 1 && "endObject without beginObject");
  FirstInScope.pop_back();
  Out += "}";
}

void JsonWriter::beginArray(const std::string &Key) {
  key(Key);
  Out += "[";
  FirstInScope.push_back(true);
}

void JsonWriter::endArray() {
  assert(FirstInScope.size() > 1 && "endArray without beginArray");
  FirstInScope.pop_back();
  Out += "]";
}

void JsonWriter::writeString(const std::string &Key,
                             const std::string &Value) {
  key(Key);
  Out += "\"" + escape(Value) + "\"";
}

void JsonWriter::writeInt(const std::string &Key, int64_t Value) {
  key(Key);
  Out += std::to_string(Value);
}

void JsonWriter::writeDouble(const std::string &Key, double Value) {
  key(Key);
  char Buf[48];
  std::snprintf(Buf, sizeof(Buf), "%.10g", Value);
  Out += Buf;
}

void JsonWriter::writeBool(const std::string &Key, bool Value) {
  key(Key);
  Out += Value ? "true" : "false";
}

std::string JsonWriter::str() const {
  assert(FirstInScope.size() == 1 && "unclosed scopes at str()");
  return Out;
}
