//===- support/Json.cpp - Minimal JSON writer --------------------------------===//

#include "support/Json.h"

#include <cassert>
#include <cctype>
#include <cstdio>
#include <cstdlib>

using namespace sgpu;

std::string sgpu::jsonEscape(const std::string &S) {
  return JsonWriter::escape(S);
}

JsonWriter::JsonWriter() { FirstInScope.push_back(true); }

void JsonWriter::comma() {
  assert(!FirstInScope.empty() && "writing outside any scope");
  if (!FirstInScope.back())
    Out += ",";
  FirstInScope.back() = false;
}

void JsonWriter::key(const std::string &Key) {
  comma();
  if (!Key.empty())
    Out += "\"" + escape(Key) + "\":";
}

std::string JsonWriter::escape(const std::string &S) {
  std::string R;
  R.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"': R += "\\\""; break;
    case '\\': R += "\\\\"; break;
    case '\n': R += "\\n"; break;
    case '\t': R += "\\t"; break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        R += Buf;
      } else {
        R += C;
      }
    }
  }
  return R;
}

void JsonWriter::beginObject(const std::string &Key) {
  key(Key);
  Out += "{";
  FirstInScope.push_back(true);
}

void JsonWriter::endObject() {
  assert(FirstInScope.size() > 1 && "endObject without beginObject");
  FirstInScope.pop_back();
  Out += "}";
}

void JsonWriter::beginArray(const std::string &Key) {
  key(Key);
  Out += "[";
  FirstInScope.push_back(true);
}

void JsonWriter::endArray() {
  assert(FirstInScope.size() > 1 && "endArray without beginArray");
  FirstInScope.pop_back();
  Out += "]";
}

void JsonWriter::writeString(const std::string &Key,
                             const std::string &Value) {
  key(Key);
  Out += "\"" + escape(Value) + "\"";
}

void JsonWriter::writeInt(const std::string &Key, int64_t Value) {
  key(Key);
  Out += std::to_string(Value);
}

void JsonWriter::writeDouble(const std::string &Key, double Value) {
  key(Key);
  char Buf[48];
  std::snprintf(Buf, sizeof(Buf), "%.10g", Value);
  Out += Buf;
}

void JsonWriter::writeBool(const std::string &Key, bool Value) {
  key(Key);
  Out += Value ? "true" : "false";
}

void JsonWriter::writeRaw(const std::string &Key, const std::string &Json) {
  key(Key);
  Out += Json;
}

std::string JsonWriter::str() const {
  assert(FirstInScope.size() == 1 && "unclosed scopes at str()");
  return Out;
}

namespace sgpu {

/// Recursive-descent parser over the document text. Depth-limited so a
/// hostile/corrupt file cannot blow the stack.
class JsonParser {
public:
  JsonParser(std::string_view Text, std::string *Err)
      : Text(Text), Err(Err) {}

  std::optional<JsonValue> run() {
    JsonValue V;
    if (!parseValue(V, 0))
      return std::nullopt;
    skipWs();
    if (Pos != Text.size())
      return fail("trailing characters after document");
    return V;
  }

private:
  static constexpr int MaxDepth = 64;

  std::optional<JsonValue> fail(const std::string &Msg) {
    if (Err && Err->empty())
      *Err = "json: " + Msg + " at offset " + std::to_string(Pos);
    return std::nullopt;
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    skipWs();
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool parseValue(JsonValue &V, int Depth) {
    if (Depth > MaxDepth)
      return !!fail("nesting too deep");
    skipWs();
    if (Pos >= Text.size())
      return !!fail("unexpected end of input");
    char C = Text[Pos];
    if (C == '{')
      return parseObject(V, Depth);
    if (C == '[')
      return parseArray(V, Depth);
    if (C == '"') {
      V.K = JsonValue::Kind::String;
      return parseString(V.Str);
    }
    if (Text.compare(Pos, 4, "true") == 0) {
      V.K = JsonValue::Kind::Bool;
      V.B = true;
      Pos += 4;
      return true;
    }
    if (Text.compare(Pos, 5, "false") == 0) {
      V.K = JsonValue::Kind::Bool;
      V.B = false;
      Pos += 5;
      return true;
    }
    if (Text.compare(Pos, 4, "null") == 0) {
      V.K = JsonValue::Kind::Null;
      Pos += 4;
      return true;
    }
    return parseNumber(V);
  }

  bool parseObject(JsonValue &V, int Depth) {
    V.K = JsonValue::Kind::Object;
    ++Pos; // '{'
    if (consume('}'))
      return true;
    for (;;) {
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != '"')
        return !!fail("expected member name");
      std::string Key;
      if (!parseString(Key))
        return false;
      if (!consume(':'))
        return !!fail("expected ':' after member name");
      JsonValue Member;
      if (!parseValue(Member, Depth + 1))
        return false;
      V.Members.emplace_back(std::move(Key), std::move(Member));
      if (consume(','))
        continue;
      if (consume('}'))
        return true;
      return !!fail("expected ',' or '}' in object");
    }
  }

  bool parseArray(JsonValue &V, int Depth) {
    V.K = JsonValue::Kind::Array;
    ++Pos; // '['
    if (consume(']'))
      return true;
    for (;;) {
      JsonValue Elem;
      if (!parseValue(Elem, Depth + 1))
        return false;
      V.Elems.push_back(std::move(Elem));
      if (consume(','))
        continue;
      if (consume(']'))
        return true;
      return !!fail("expected ',' or ']' in array");
    }
  }

  bool parseString(std::string &Out) {
    ++Pos; // '"'
    Out.clear();
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        break;
      char E = Text[Pos++];
      switch (E) {
      case '"': Out += '"'; break;
      case '\\': Out += '\\'; break;
      case '/': Out += '/'; break;
      case 'b': Out += '\b'; break;
      case 'f': Out += '\f'; break;
      case 'n': Out += '\n'; break;
      case 'r': Out += '\r'; break;
      case 't': Out += '\t'; break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return !!fail("truncated \\u escape");
        unsigned Code = 0;
        for (int I = 0; I < 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= static_cast<unsigned>(H - 'A' + 10);
          else
            return !!fail("bad \\u escape");
        }
        // ASCII-only decoding (our writer never emits higher escapes);
        // anything else round-trips as '?'.
        Out += Code < 0x80 ? static_cast<char>(Code) : '?';
        break;
      }
      default:
        return !!fail("unknown escape");
      }
    }
    return !!fail("unterminated string");
  }

  bool parseNumber(JsonValue &V) {
    size_t Start = Pos;
    if (Pos < Text.size() && (Text[Pos] == '-' || Text[Pos] == '+'))
      ++Pos;
    bool SawDigit = false;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '+' || Text[Pos] == '-')) {
      SawDigit |= std::isdigit(static_cast<unsigned char>(Text[Pos])) != 0;
      ++Pos;
    }
    if (!SawDigit) {
      Pos = Start;
      return !!fail("expected a value");
    }
    V.K = JsonValue::Kind::Number;
    V.Num = std::strtod(std::string(Text.substr(Start, Pos - Start)).c_str(),
                        nullptr);
    return true;
  }

  std::string_view Text;
  std::string *Err;
  size_t Pos = 0;
};

} // namespace sgpu

std::optional<JsonValue> JsonValue::parse(std::string_view Text,
                                          std::string *Err) {
  JsonParser P(Text, Err);
  return P.run();
}

const JsonValue *JsonValue::find(std::string_view Key) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &[Name, V] : Members)
    if (Name == Key)
      return &V;
  return nullptr;
}
