//===- support/Json.h - Minimal JSON writer ---------------------*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small streaming JSON writer used to export compile reports and
/// schedules for downstream analysis (plots, dashboards). Write-only by
/// design: the project never consumes JSON.
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_SUPPORT_JSON_H
#define SGPU_SUPPORT_JSON_H

#include <string>
#include <vector>

namespace sgpu {

/// Emits syntactically valid JSON via begin/end scopes and typed key
/// writers. Scopes must be closed in LIFO order (asserted).
class JsonWriter {
public:
  JsonWriter();

  void beginObject(const std::string &Key = "");
  void endObject();
  void beginArray(const std::string &Key = "");
  void endArray();

  void writeString(const std::string &Key, const std::string &Value);
  void writeInt(const std::string &Key, int64_t Value);
  void writeDouble(const std::string &Key, double Value);
  void writeBool(const std::string &Key, bool Value);

  /// Array-element variants (no key).
  void writeString(const std::string &Value) { writeString("", Value); }
  void writeInt(int64_t Value) { writeInt("", Value); }
  void writeDouble(double Value) { writeDouble("", Value); }

  /// Finalizes and returns the document; all scopes must be closed.
  std::string str() const;

private:
  void comma();
  void key(const std::string &Key);
  static std::string escape(const std::string &S);

  std::string Out;
  std::vector<bool> FirstInScope; ///< Per open scope.
};

} // namespace sgpu

#endif // SGPU_SUPPORT_JSON_H
