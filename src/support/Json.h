//===- support/Json.h - Minimal JSON writer ---------------------*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small streaming JSON writer used to export compile reports, traces
/// and schedules for downstream analysis (plots, dashboards), plus a
/// minimal recursive-descent reader (`JsonValue`) — added for the CI
/// perf gate, which consumes its own checked-in baselines.
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_SUPPORT_JSON_H
#define SGPU_SUPPORT_JSON_H

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sgpu {

/// Escapes \p S for inclusion inside a JSON string literal.
std::string jsonEscape(const std::string &S);

/// Emits syntactically valid JSON via begin/end scopes and typed key
/// writers. Scopes must be closed in LIFO order (asserted).
class JsonWriter {
public:
  JsonWriter();

  void beginObject(const std::string &Key = "");
  void endObject();
  void beginArray(const std::string &Key = "");
  void endArray();

  void writeString(const std::string &Key, const std::string &Value);
  void writeInt(const std::string &Key, int64_t Value);
  void writeDouble(const std::string &Key, double Value);
  void writeBool(const std::string &Key, bool Value);

  /// Splices \p Json — which must itself be a complete, valid JSON value
  /// — verbatim as the member value. Lets documents embed sub-documents
  /// rendered elsewhere (the service responses carry whole compile
  /// reports) without an escape/unescape round trip.
  void writeRaw(const std::string &Key, const std::string &Json);

  /// Array-element variants (no key).
  void writeString(const std::string &Value) { writeString("", Value); }
  void writeInt(int64_t Value) { writeInt("", Value); }
  void writeDouble(double Value) { writeDouble("", Value); }

  /// Finalizes and returns the document; all scopes must be closed.
  std::string str() const;

  /// The escaping used for every emitted string (see jsonEscape).
  static std::string escape(const std::string &S);

private:
  void comma();
  void key(const std::string &Key);

  std::string Out;
  std::vector<bool> FirstInScope; ///< Per open scope.
};

/// A parsed JSON document node. Objects keep member order; lookup is
/// linear (documents here are small — baselines, reports).
class JsonValue {
public:
  enum class Kind : uint8_t { Null, Bool, Number, String, Array, Object };

  /// Parses \p Text (the complete document). Returns std::nullopt and
  /// fills \p Err on malformed input.
  static std::optional<JsonValue> parse(std::string_view Text,
                                        std::string *Err = nullptr);

  Kind kind() const { return K; }
  bool isObject() const { return K == Kind::Object; }
  bool isArray() const { return K == Kind::Array; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }

  bool asBool() const { return B; }
  double asNumber() const { return Num; }
  const std::string &asString() const { return Str; }
  const std::vector<JsonValue> &elements() const { return Elems; }
  const std::vector<std::pair<std::string, JsonValue>> &members() const {
    return Members;
  }

  /// Object member lookup; null when absent or not an object.
  const JsonValue *find(std::string_view Key) const;

private:
  Kind K = Kind::Null;
  bool B = false;
  double Num = 0.0;
  std::string Str;
  std::vector<JsonValue> Elems;
  std::vector<std::pair<std::string, JsonValue>> Members;

  friend class JsonParser;
};

} // namespace sgpu

#endif // SGPU_SUPPORT_JSON_H
