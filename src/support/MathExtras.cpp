//===- support/MathExtras.cpp - Integer math utilities --------------------===//

#include "support/MathExtras.h"

using namespace sgpu;

int64_t sgpu::gcd64(int64_t A, int64_t B) {
  if (A < 0)
    A = -A;
  if (B < 0)
    B = -B;
  while (B != 0) {
    int64_t T = A % B;
    A = B;
    B = T;
  }
  return A;
}

int64_t sgpu::lcm64(int64_t A, int64_t B) {
  if (A == 0 || B == 0)
    return 0;
  int64_t G = gcd64(A, B);
  int64_t L = (A / G) * B;
  assert(L / B == A / G && "lcm64 overflow");
  return L < 0 ? -L : L;
}
