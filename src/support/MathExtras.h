//===- support/MathExtras.h - Integer math utilities -----------*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exact integer helpers used by the SDF rate solver, the dependence
/// constraint generator (which needs floor/ceil division with negative
/// numerators, paper Section III-C) and the buffer layout math.
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_SUPPORT_MATHEXTRAS_H
#define SGPU_SUPPORT_MATHEXTRAS_H

#include <cassert>
#include <cstdint>

namespace sgpu {

/// Greatest common divisor; gcd(0, 0) == 0 by convention.
int64_t gcd64(int64_t A, int64_t B);

/// Least common multiple. Asserts on overflow in debug builds.
int64_t lcm64(int64_t A, int64_t B);

/// Floor division that is correct for negative numerators,
/// e.g. floorDiv(-1, 3) == -1.
constexpr int64_t floorDiv(int64_t Num, int64_t Den) {
  assert(Den > 0 && "floorDiv requires a positive denominator");
  int64_t Q = Num / Den;
  return (Num % Den != 0 && Num < 0) ? Q - 1 : Q;
}

/// Ceiling division that is correct for negative numerators,
/// e.g. ceilDiv(-1, 3) == 0 and ceilDiv(4, 3) == 2.
constexpr int64_t ceilDiv(int64_t Num, int64_t Den) {
  assert(Den > 0 && "ceilDiv requires a positive denominator");
  int64_t Q = Num / Den;
  return (Num % Den != 0 && Num > 0) ? Q + 1 : Q;
}

/// Mathematical modulus with a result in [0, Den), also for negative Num.
constexpr int64_t floorMod(int64_t Num, int64_t Den) {
  assert(Den > 0 && "floorMod requires a positive denominator");
  int64_t R = Num % Den;
  return R < 0 ? R + Den : R;
}

/// Returns true if \p X is a (positive) power of two.
constexpr bool isPowerOf2(int64_t X) { return X > 0 && (X & (X - 1)) == 0; }

/// Rounds \p X up to the next multiple of \p Align (Align > 0).
constexpr int64_t alignTo(int64_t X, int64_t Align) {
  assert(Align > 0 && "alignment must be positive");
  return ceilDiv(X, Align) * Align;
}

} // namespace sgpu

#endif // SGPU_SUPPORT_MATHEXTRAS_H
