//===- support/Metrics.cpp - Process-wide metrics registry -------------------===//

#include "support/Metrics.h"

#include "support/Json.h"

#include <cmath>
#include <cstring>

using namespace sgpu;

uint64_t Gauge::toBits(double D) {
  uint64_t B;
  static_assert(sizeof(B) == sizeof(D));
  std::memcpy(&B, &D, sizeof(B));
  return B;
}

double Gauge::fromBits(uint64_t B) {
  double D;
  std::memcpy(&D, &B, sizeof(D));
  return D;
}

void Gauge::add(double Delta) {
  uint64_t Old = Bits.load(std::memory_order_relaxed);
  while (!Bits.compare_exchange_weak(Old, toBits(fromBits(Old) + Delta),
                                     std::memory_order_relaxed))
    ;
}

Histogram::Histogram()
    : MinBits(Gauge::toBits(std::numeric_limits<double>::infinity())),
      MaxBits(Gauge::toBits(-std::numeric_limits<double>::infinity())) {}

int Histogram::bucketFor(double Value) {
  if (!(Value > 0.0))
    return 0;
  // ilogb(2^-32) == -32 maps to bucket 1; clamp both tails.
  int E = std::ilogb(Value);
  if (E < -32)
    return 0;
  if (E > 30)
    return NumBuckets - 1;
  return E + 33;
}

void Histogram::record(double Value) {
  Count.fetch_add(1, std::memory_order_relaxed);
  Buckets[bucketFor(Value)].fetch_add(1, std::memory_order_relaxed);

  uint64_t Old = SumBits.load(std::memory_order_relaxed);
  while (!SumBits.compare_exchange_weak(
      Old, Gauge::toBits(Gauge::fromBits(Old) + Value),
      std::memory_order_relaxed))
    ;
  Old = MinBits.load(std::memory_order_relaxed);
  while (Gauge::fromBits(Old) > Value &&
         !MinBits.compare_exchange_weak(Old, Gauge::toBits(Value),
                                        std::memory_order_relaxed))
    ;
  Old = MaxBits.load(std::memory_order_relaxed);
  while (Gauge::fromBits(Old) < Value &&
         !MaxBits.compare_exchange_weak(Old, Gauge::toBits(Value),
                                        std::memory_order_relaxed))
    ;
}

double Histogram::sum() const {
  return Gauge::fromBits(SumBits.load(std::memory_order_relaxed));
}

double Histogram::min() const {
  return Gauge::fromBits(MinBits.load(std::memory_order_relaxed));
}

double Histogram::max() const {
  return Gauge::fromBits(MaxBits.load(std::memory_order_relaxed));
}

void Histogram::reset() {
  Count.store(0, std::memory_order_relaxed);
  SumBits.store(Gauge::toBits(0.0), std::memory_order_relaxed);
  MinBits.store(Gauge::toBits(std::numeric_limits<double>::infinity()),
                std::memory_order_relaxed);
  MaxBits.store(Gauge::toBits(-std::numeric_limits<double>::infinity()),
                std::memory_order_relaxed);
  for (auto &B : Buckets)
    B.store(0, std::memory_order_relaxed);
}

MetricsRegistry &MetricsRegistry::global() {
  static MetricsRegistry *R = new MetricsRegistry; // Never destroyed:
  return *R; // instrument references must outlive static destructors.
}

Counter &MetricsRegistry::counter(std::string_view Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Counters.find(Name);
  if (It == Counters.end())
    It = Counters.emplace(std::string(Name), std::make_unique<Counter>())
             .first;
  return *It->second;
}

Gauge &MetricsRegistry::gauge(std::string_view Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Gauges.find(Name);
  if (It == Gauges.end())
    It = Gauges.emplace(std::string(Name), std::make_unique<Gauge>()).first;
  return *It->second;
}

Histogram &MetricsRegistry::histogram(std::string_view Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Histograms.find(Name);
  if (It == Histograms.end())
    It = Histograms.emplace(std::string(Name), std::make_unique<Histogram>())
             .first;
  return *It->second;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> Lock(Mu);
  for (auto &[_, C] : Counters)
    C->reset();
  for (auto &[_, G] : Gauges)
    G->reset();
  for (auto &[_, H] : Histograms)
    H->reset();
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> Lock(Mu);
  Snapshot S;
  for (const auto &[Name, C] : Counters)
    S.Counters[Name] = C->value();
  for (const auto &[Name, G] : Gauges)
    S.Gauges[Name] = G->value();
  for (const auto &[Name, H] : Histograms)
    S.Histograms[Name] = {H->count(), H->sum(), H->min(), H->max()};
  return S;
}

void MetricsRegistry::writeJson(JsonWriter &W) const {
  Snapshot S = snapshot();
  W.beginObject("counters");
  for (const auto &[Name, V] : S.Counters)
    W.writeInt(Name, V);
  W.endObject();
  W.beginObject("gauges");
  for (const auto &[Name, V] : S.Gauges)
    W.writeDouble(Name, V);
  W.endObject();
  W.beginObject("histograms");
  for (const auto &[Name, H] : S.Histograms) {
    W.beginObject(Name);
    W.writeInt("count", H.Count);
    W.writeDouble("sum", H.Sum);
    if (H.Count > 0) {
      W.writeDouble("min", H.Min);
      W.writeDouble("max", H.Max);
    }
    W.endObject();
  }
  W.endObject();
}

Counter &sgpu::metricCounter(std::string_view Name) {
  return MetricsRegistry::global().counter(Name);
}

Gauge &sgpu::metricGauge(std::string_view Name) {
  return MetricsRegistry::global().gauge(Name);
}

Histogram &sgpu::metricHistogram(std::string_view Name) {
  return MetricsRegistry::global().histogram(Name);
}
