//===- support/Metrics.h - Process-wide metrics registry --------*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide registry of named counters, gauges and histograms with
/// lock-free (atomic) updates, shared by every layer of the compilation
/// pipeline: the simplex core counts pivots, the branch & bound counts
/// node lifecycle events, the II search counts candidates, the profiler
/// counts sweep cells, and so on. `tools/perf_gate` snapshots the
/// registry around each benchmark compile and gates CI on the deltas;
/// `ReportWriter` embeds a snapshot in every compile report.
///
/// Lookup (by name) takes a mutex; the returned references are stable
/// for the lifetime of the process, so hot paths look an instrument up
/// once (e.g. in a function-local static or a constructor) and then
/// update it with plain atomics. `reset()` zeroes values but never
/// invalidates references. See DESIGN.md "Observability".
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_SUPPORT_METRICS_H
#define SGPU_SUPPORT_METRICS_H

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace sgpu {

class JsonWriter;

/// Monotonic event count. Updates are relaxed atomics: totals are exact,
/// cross-counter ordering is not promised.
class Counter {
public:
  void add(int64_t Delta = 1) {
    V.fetch_add(Delta, std::memory_order_relaxed);
  }
  int64_t value() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0, std::memory_order_relaxed); }

private:
  std::atomic<int64_t> V{0};
};

/// Last-write-wins double value (plus an atomic read-modify-write add).
class Gauge {
public:
  void set(double Value) {
    Bits.store(toBits(Value), std::memory_order_relaxed);
  }
  void add(double Delta);
  double value() const {
    return fromBits(Bits.load(std::memory_order_relaxed));
  }
  void reset() { set(0.0); }

  /// Bit-preserving double <-> uint64_t casts (shared with Histogram,
  /// which stores its sum/min/max the same way).
  static uint64_t toBits(double D);
  static double fromBits(uint64_t B);

private:
  std::atomic<uint64_t> Bits{0};
};

/// Streaming distribution summary: exact count, compensated-enough sum
/// (CAS add), running min/max, and power-of-two magnitude buckets.
class Histogram {
public:
  /// Bucket I holds values in [2^(I-32), 2^(I-31)); bucket 0 absorbs
  /// everything below (including zero and negatives), the last bucket
  /// everything above.
  static constexpr int NumBuckets = 64;

  void record(double Value);

  int64_t count() const { return Count.load(std::memory_order_relaxed); }
  double sum() const;
  /// Min/max over recorded values; +inf / -inf when empty.
  double min() const;
  double max() const;
  double mean() const {
    int64_t N = count();
    return N > 0 ? sum() / static_cast<double>(N) : 0.0;
  }
  int64_t bucketCount(int I) const {
    return Buckets[I].load(std::memory_order_relaxed);
  }
  static int bucketFor(double Value);

  void reset();

private:
  std::atomic<int64_t> Count{0};
  std::atomic<uint64_t> SumBits{0};
  std::atomic<uint64_t> MinBits, MaxBits; // Initialized in ctor.
  std::atomic<int64_t> Buckets[NumBuckets] = {};

public:
  Histogram();
};

/// The registry. Instruments are created on first lookup and live until
/// process exit; names are independent per instrument kind.
class MetricsRegistry {
public:
  /// The process-wide registry used by the pipeline instrumentation.
  static MetricsRegistry &global();

  Counter &counter(std::string_view Name);
  Gauge &gauge(std::string_view Name);
  Histogram &histogram(std::string_view Name);

  /// Zeroes every instrument. References stay valid.
  void reset();

  /// Point-in-time copy of every instrument's value.
  struct HistogramStats {
    int64_t Count = 0;
    double Sum = 0.0, Min = 0.0, Max = 0.0;
  };
  struct Snapshot {
    std::map<std::string, int64_t> Counters;
    std::map<std::string, double> Gauges;
    std::map<std::string, HistogramStats> Histograms;
  };
  Snapshot snapshot() const;

  /// Writes "counters" / "gauges" / "histograms" members into the JSON
  /// object currently open on \p W.
  void writeJson(JsonWriter &W) const;

private:
  mutable std::mutex Mu;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> Counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> Gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> Histograms;
};

/// Shorthands for the global registry.
Counter &metricCounter(std::string_view Name);
Gauge &metricGauge(std::string_view Name);
Histogram &metricHistogram(std::string_view Name);

} // namespace sgpu

#endif // SGPU_SUPPORT_METRICS_H
