//===- support/PerfGate.cpp - Perf-baseline comparison logic -----------------===//

#include "support/PerfGate.h"

#include "support/Json.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

using namespace sgpu;

MetricClass sgpu::classifyMetric(std::string_view Name) {
  auto EndsWith = [&](std::string_view Suffix) {
    return Name.size() >= Suffix.size() &&
           Name.substr(Name.size() - Suffix.size()) == Suffix;
  };
  if (EndsWith(".seconds") || EndsWith("utilization"))
    return MetricClass::Time;
  if (Name == "final_ii" || Name == "speedup")
    return MetricClass::Quality;
  return MetricClass::Count;
}

bool sgpu::metricBiggerIsBetter(std::string_view Name) {
  return Name == "speedup";
}

std::string PerfFinding::str() const {
  char Buf[256];
  switch (K) {
  case Kind::MissingBenchmark:
    return Benchmark + ": missing from baseline (rerun with --update)";
  case Kind::MissingMetric:
    return Benchmark + "/" + Metric + ": in baseline but not measured";
  case Kind::NewMetric:
    return Benchmark + "/" + Metric +
           ": measured but not in baseline (consider --update)";
  case Kind::Regression:
  case Kind::TimeRegression:
    std::snprintf(Buf, sizeof(Buf),
                  "%s/%s: %.6g -> %.6g (limit %.6g, %+.1f%%)%s",
                  Benchmark.c_str(), Metric.c_str(), Baseline, Measured,
                  Limit,
                  Baseline != 0.0 ? (Measured / Baseline - 1.0) * 100.0
                                  : 0.0,
                  K == Kind::TimeRegression ? " [time, not gated]" : "");
    return Buf;
  }
  return "";
}

PerfComparison sgpu::comparePerf(const std::vector<PerfSample> &Baseline,
                                 const std::vector<PerfSample> &Measured,
                                 const PerfThresholds &Thresholds) {
  PerfComparison Out;

  auto BaseFor = [&](const std::string &Name) -> const PerfSample * {
    for (const PerfSample &S : Baseline)
      if (S.Name == Name)
        return &S;
    return nullptr;
  };

  for (const PerfSample &M : Measured) {
    const PerfSample *B = BaseFor(M.Name);
    if (!B) {
      PerfFinding F;
      F.K = PerfFinding::Kind::MissingBenchmark;
      F.Benchmark = M.Name;
      F.Fails = true;
      Out.Findings.push_back(std::move(F));
      continue;
    }

    for (const auto &[Name, BaseVal] : B->Metrics) {
      auto It = M.Metrics.find(Name);
      if (It == M.Metrics.end()) {
        PerfFinding F;
        F.K = PerfFinding::Kind::MissingMetric;
        F.Benchmark = M.Name;
        F.Metric = Name;
        F.Baseline = BaseVal;
        F.Fails = true;
        Out.Findings.push_back(std::move(F));
        continue;
      }
      double Val = It->second;
      MetricClass MC = classifyMetric(Name);
      double Rel = MC == MetricClass::Time      ? Thresholds.TimeRel
                   : MC == MetricClass::Quality ? Thresholds.QualityRel
                                                : Thresholds.CountRel;
      // Direction-aware limit; a zero baseline allows an absolute slack
      // of Rel so tiny noisy values do not divide by zero.
      bool Bigger = metricBiggerIsBetter(Name);
      double Limit = Bigger ? BaseVal * (1.0 - Rel)
                            : (BaseVal == 0.0 ? Rel : BaseVal * (1.0 + Rel));
      bool Worse = Bigger ? Val < Limit : Val > Limit;
      if (!Worse)
        continue;
      PerfFinding F;
      F.K = MC == MetricClass::Time && !Thresholds.GateTimes
                ? PerfFinding::Kind::TimeRegression
                : PerfFinding::Kind::Regression;
      F.Benchmark = M.Name;
      F.Metric = Name;
      F.Baseline = BaseVal;
      F.Measured = Val;
      F.Limit = Limit;
      F.Fails = F.K == PerfFinding::Kind::Regression;
      Out.Findings.push_back(std::move(F));
    }

    for (const auto &[Name, Val] : M.Metrics)
      if (!B->Metrics.count(Name)) {
        PerfFinding F;
        F.K = PerfFinding::Kind::NewMetric;
        F.Benchmark = M.Name;
        F.Metric = Name;
        F.Measured = Val;
        Out.Findings.push_back(std::move(F));
      }
  }

  std::stable_sort(Out.Findings.begin(), Out.Findings.end(),
                   [](const PerfFinding &A, const PerfFinding &B) {
                     return A.Fails > B.Fails;
                   });
  for (const PerfFinding &F : Out.Findings)
    if (F.Fails)
      Out.Pass = false;
  return Out;
}

std::string sgpu::perfSamplesToJson(const std::vector<PerfSample> &Samples,
                                    const PerfComparison *Comparison) {
  JsonWriter W;
  W.beginObject();
  W.writeString("schema", "sgpu-perf-v1");
  W.beginArray("benchmarks");
  for (const PerfSample &S : Samples) {
    W.beginObject();
    W.writeString("name", S.Name);
    W.beginObject("metrics");
    for (const auto &[Name, Val] : S.Metrics)
      W.writeDouble(Name, Val);
    W.endObject();
    W.endObject();
  }
  W.endArray();
  if (Comparison) {
    W.beginObject("comparison");
    W.writeBool("pass", Comparison->Pass);
    W.beginArray("findings");
    for (const PerfFinding &F : Comparison->Findings) {
      W.beginObject();
      W.writeString("benchmark", F.Benchmark);
      W.writeString("metric", F.Metric);
      W.writeDouble("baseline", F.Baseline);
      W.writeDouble("measured", F.Measured);
      W.writeBool("fails", F.Fails);
      W.writeString("detail", F.str());
      W.endObject();
    }
    W.endArray();
    W.endObject();
  }
  W.endObject();
  return W.str();
}

std::optional<std::vector<PerfSample>>
sgpu::parsePerfSamples(std::string_view Json, std::string *Err) {
  auto Fail = [&](const std::string &Msg) {
    if (Err)
      *Err = Msg;
    return std::nullopt;
  };
  std::optional<JsonValue> Doc = JsonValue::parse(Json, Err);
  if (!Doc)
    return std::nullopt;
  const JsonValue *Benchmarks = Doc->find("benchmarks");
  if (!Benchmarks || !Benchmarks->isArray())
    return Fail("missing 'benchmarks' array");
  std::vector<PerfSample> Samples;
  for (const JsonValue &B : Benchmarks->elements()) {
    const JsonValue *Name = B.find("name");
    const JsonValue *Metrics = B.find("metrics");
    if (!Name || !Name->isString() || !Metrics || !Metrics->isObject())
      return Fail("benchmark entry needs 'name' and 'metrics'");
    PerfSample S;
    S.Name = Name->asString();
    for (const auto &[Key, V] : Metrics->members()) {
      if (!V.isNumber())
        return Fail("metric '" + Key + "' is not a number");
      S.Metrics[Key] = V.asNumber();
    }
    Samples.push_back(std::move(S));
  }
  return Samples;
}
