//===- support/PerfGate.h - Perf-baseline comparison logic ------*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The comparison core of `tools/perf_gate`: per-benchmark metric
/// samples are checked against a checked-in baseline with configurable
/// relative thresholds. Metrics fall into three classes:
///
///   Count    machine-independent work counters (simplex pivots, B&B
///            nodes, II candidates, buffer bytes...) — gated strictly;
///   Quality  schedule quality (final II, modelled speedup) — gated
///            tightest, a change here means the compiler got worse;
///   Time     wall-clock (stage.*.seconds, utilization) — reported and
///            compared, but only *gating* when GateTimes is set, because
///            CI machines differ from the machines baselines were
///            recorded on.
///
/// "Worse" respects direction: most metrics regress upward (more pivots,
/// higher II), `speedup` regresses downward. A benchmark missing from
/// the baseline, or a baseline metric that vanished from the measured
/// run, fails the gate outright. Lives in support (not tools) so the
/// threshold logic is unit-testable against the library.
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_SUPPORT_PERFGATE_H
#define SGPU_SUPPORT_PERFGATE_H

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace sgpu {

/// One benchmark's measured metrics.
struct PerfSample {
  std::string Name;
  std::map<std::string, double> Metrics;
};

/// Relative regression allowances, per metric class.
struct PerfThresholds {
  double CountRel = 0.35;   ///< Counters may grow up to +35%.
  double QualityRel = 0.02; ///< II / speedup may move up to 2%.
  double TimeRel = 0.75;    ///< Stage times may grow up to +75%.
  bool GateTimes = false;   ///< Fail (not just report) time regressions.
};

enum class MetricClass : uint8_t { Count, Quality, Time };

/// Classifies by name: "*.seconds" / "*utilization" are Time,
/// "final_ii" / "speedup" are Quality, everything else Count.
MetricClass classifyMetric(std::string_view Name);

/// True for metrics where larger is better (currently only "speedup").
bool metricBiggerIsBetter(std::string_view Name);

/// One comparison outcome worth reporting.
struct PerfFinding {
  enum class Kind : uint8_t {
    Regression,      ///< Outside the class threshold, gates.
    TimeRegression,  ///< Outside TimeRel but GateTimes is off: warning.
    MissingBenchmark,///< Benchmark absent from the baseline: gates.
    MissingMetric,   ///< Baseline metric absent from this run: gates.
    NewMetric        ///< Measured metric absent from baseline: warning.
  };

  Kind K = Kind::Regression;
  std::string Benchmark;
  std::string Metric;
  double Baseline = 0.0;
  double Measured = 0.0;
  double Limit = 0.0; ///< The threshold the value was held to.
  bool Fails = false;

  std::string str() const;
};

/// Full gate verdict.
struct PerfComparison {
  bool Pass = true;
  std::vector<PerfFinding> Findings; ///< Failures first.
};

/// Compares \p Measured against \p Baseline under \p Thresholds.
PerfComparison comparePerf(const std::vector<PerfSample> &Baseline,
                           const std::vector<PerfSample> &Measured,
                           const PerfThresholds &Thresholds = {});

/// Serializes samples (plus an optional comparison) as the
/// perf_report.json / perf_baseline.json document.
std::string perfSamplesToJson(const std::vector<PerfSample> &Samples,
                              const PerfComparison *Comparison = nullptr);

/// Parses a perf_baseline.json / perf_report.json document back into
/// samples; std::nullopt (with \p Err filled) on malformed input.
std::optional<std::vector<PerfSample>>
parsePerfSamples(std::string_view Json, std::string *Err = nullptr);

} // namespace sgpu

#endif // SGPU_SUPPORT_PERFGATE_H
