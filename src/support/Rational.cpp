//===- support/Rational.cpp - Exact rational arithmetic -------------------===//

#include "support/Rational.h"

#include <cstdio>

using namespace sgpu;

Rational::Rational(int64_t N, int64_t D) {
  assert(D != 0 && "rational with zero denominator");
  if (D < 0) {
    N = -N;
    D = -D;
  }
  int64_t G = gcd64(N, D);
  if (G == 0)
    G = 1;
  Num = N / G;
  Den = D / G;
}

Rational Rational::operator+(const Rational &RHS) const {
  // Reduce via the gcd of the denominators first to delay overflow.
  int64_t G = gcd64(Den, RHS.Den);
  int64_t Scale = RHS.Den / G;
  return Rational(Num * Scale + RHS.Num * (Den / G), Den * Scale);
}

Rational Rational::operator-(const Rational &RHS) const {
  return *this + (-RHS);
}

Rational Rational::operator*(const Rational &RHS) const {
  // Cross-reduce before multiplying to delay overflow.
  int64_t G1 = gcd64(Num, RHS.Den);
  int64_t G2 = gcd64(RHS.Num, Den);
  if (G1 == 0)
    G1 = 1;
  if (G2 == 0)
    G2 = 1;
  return Rational((Num / G1) * (RHS.Num / G2), (Den / G2) * (RHS.Den / G1));
}

Rational Rational::operator/(const Rational &RHS) const {
  assert(!RHS.isZero() && "division by zero rational");
  return *this * Rational(RHS.Den, RHS.Num);
}

bool Rational::operator<(const Rational &RHS) const {
  // Compare via cross multiplication with gcd reduction.
  int64_t G = gcd64(Den, RHS.Den);
  return Num * (RHS.Den / G) < RHS.Num * (Den / G);
}

std::string Rational::str() const {
  char Buf[64];
  if (Den == 1)
    std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(Num));
  else
    std::snprintf(Buf, sizeof(Buf), "%lld/%lld", static_cast<long long>(Num),
                  static_cast<long long>(Den));
  return Buf;
}
