//===- support/Rational.h - Exact rational arithmetic ----------*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An exact rational number. The SDF balance equations (Lee/Messerschmitt,
/// cited as [13] in the paper) are solved over the rationals before scaling
/// to the smallest integer repetition vector; floating point would silently
/// break rate consistency on deep graphs.
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_SUPPORT_RATIONAL_H
#define SGPU_SUPPORT_RATIONAL_H

#include "support/MathExtras.h"

#include <cassert>
#include <cstdint>
#include <string>

namespace sgpu {

/// An always-normalized rational: the denominator is positive and the
/// numerator and denominator are coprime. Zero is represented as 0/1.
class Rational {
public:
  Rational() = default;
  Rational(int64_t Value) : Num(Value) {}
  Rational(int64_t Num, int64_t Den);

  int64_t numerator() const { return Num; }
  int64_t denominator() const { return Den; }

  bool isZero() const { return Num == 0; }
  bool isInteger() const { return Den == 1; }

  /// Returns the integer value; asserts unless isInteger().
  int64_t asInteger() const {
    assert(isInteger() && "rational is not integral");
    return Num;
  }

  Rational operator+(const Rational &RHS) const;
  Rational operator-(const Rational &RHS) const;
  Rational operator*(const Rational &RHS) const;
  Rational operator/(const Rational &RHS) const;
  Rational operator-() const { return Rational(-Num, Den); }

  bool operator==(const Rational &RHS) const {
    return Num == RHS.Num && Den == RHS.Den;
  }
  bool operator!=(const Rational &RHS) const { return !(*this == RHS); }
  bool operator<(const Rational &RHS) const;
  bool operator<=(const Rational &RHS) const {
    return *this < RHS || *this == RHS;
  }
  bool operator>(const Rational &RHS) const { return RHS < *this; }
  bool operator>=(const Rational &RHS) const { return RHS <= *this; }

  std::string str() const;

private:
  int64_t Num = 0;
  int64_t Den = 1;
};

} // namespace sgpu

#endif // SGPU_SUPPORT_RATIONAL_H
