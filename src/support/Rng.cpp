//===- support/Rng.cpp - Deterministic pseudo random numbers --------------===//

#include "support/Rng.h"

#include <cassert>

using namespace sgpu;

Rng::Rng(uint64_t Seed) {
  // splitmix64 scramble of the seed so that nearby seeds diverge.
  uint64_t Z = Seed + 0x9e3779b97f4a7c15ull;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  State = Z ^ (Z >> 31);
  if (State == 0)
    State = 0x1ull;
}

uint64_t Rng::next() {
  // xorshift64*.
  uint64_t X = State;
  X ^= X >> 12;
  X ^= X << 25;
  X ^= X >> 27;
  State = X;
  return X * 0x2545f4914f6cdd1dull;
}

int64_t Rng::nextInt(int64_t Bound) {
  assert(Bound > 0 && "nextInt bound must be positive");
  return static_cast<int64_t>(next() % static_cast<uint64_t>(Bound));
}

int64_t Rng::nextIntInRange(int64_t Lo, int64_t Hi) {
  assert(Lo <= Hi && "empty range");
  return Lo + nextInt(Hi - Lo + 1);
}

double Rng::nextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
}

float Rng::nextFloat(float Scale) {
  return static_cast<float>((nextDouble() * 2.0 - 1.0) * Scale);
}
