//===- support/Rng.h - Deterministic pseudo random numbers -----*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small deterministic RNG (splitmix64 seeded xorshift) used by the
/// benchmark input generators and the property tests. Determinism matters:
/// simulated GPU output is compared bit-for-bit against the CPU reference.
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_SUPPORT_RNG_H
#define SGPU_SUPPORT_RNG_H

#include <cstdint>

namespace sgpu {

/// Deterministic 64-bit PRNG with a tiny state. Not cryptographic.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9e3779b97f4a7c15ull);

  /// Next raw 64-bit value.
  uint64_t next();

  /// Uniform integer in [0, Bound); Bound must be positive.
  int64_t nextInt(int64_t Bound);

  /// Uniform integer in [Lo, Hi] inclusive.
  int64_t nextIntInRange(int64_t Lo, int64_t Hi);

  /// Uniform double in [0, 1).
  double nextDouble();

  /// Uniform float in [-Scale, Scale).
  float nextFloat(float Scale = 1.0f);

private:
  uint64_t State;
};

} // namespace sgpu

#endif // SGPU_SUPPORT_RNG_H
