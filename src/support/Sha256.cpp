//===- support/Sha256.cpp - SHA-256 message digest ------------------------===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//

#include "support/Sha256.h"

#include "support/Check.h"

#include <cstring>

namespace sgpu {

namespace {

constexpr uint32_t kInitialState[8] = {
    0x6a09e667u, 0xbb67ae85u, 0x3c6ef372u, 0xa54ff53au,
    0x510e527fu, 0x9b05688cu, 0x1f83d9abu, 0x5be0cd19u};

constexpr uint32_t kRoundConstants[64] = {
    0x428a2f98u, 0x71374491u, 0xb5c0fbcfu, 0xe9b5dba5u, 0x3956c25bu,
    0x59f111f1u, 0x923f82a4u, 0xab1c5ed5u, 0xd807aa98u, 0x12835b01u,
    0x243185beu, 0x550c7dc3u, 0x72be5d74u, 0x80deb1feu, 0x9bdc06a7u,
    0xc19bf174u, 0xe49b69c1u, 0xefbe4786u, 0x0fc19dc6u, 0x240ca1ccu,
    0x2de92c6fu, 0x4a7484aau, 0x5cb0a9dcu, 0x76f988dau, 0x983e5152u,
    0xa831c66du, 0xb00327c8u, 0xbf597fc7u, 0xc6e00bf3u, 0xd5a79147u,
    0x06ca6351u, 0x14292967u, 0x27b70a85u, 0x2e1b2138u, 0x4d2c6dfcu,
    0x53380d13u, 0x650a7354u, 0x766a0abbu, 0x81c2c92eu, 0x92722c85u,
    0xa2bfe8a1u, 0xa81a664bu, 0xc24b8b70u, 0xc76c51a3u, 0xd192e819u,
    0xd6990624u, 0xf40e3585u, 0x106aa070u, 0x19a4c116u, 0x1e376c08u,
    0x2748774cu, 0x34b0bcb5u, 0x391c0cb3u, 0x4ed8aa4au, 0x5b9cca4fu,
    0x682e6ff3u, 0x748f82eeu, 0x78a5636fu, 0x84c87814u, 0x8cc70208u,
    0x90befffau, 0xa4506cebu, 0xbef9a3f7u, 0xc67178f2u};

inline uint32_t rotr(uint32_t X, int N) {
  return (X >> N) | (X << (32 - N));
}

} // namespace

Sha256::Sha256() { std::memcpy(H, kInitialState, sizeof(H)); }

void Sha256::compress(const uint8_t *Block) {
  uint32_t W[64];
  for (int I = 0; I < 16; ++I)
    W[I] = (uint32_t(Block[4 * I]) << 24) | (uint32_t(Block[4 * I + 1]) << 16) |
           (uint32_t(Block[4 * I + 2]) << 8) | uint32_t(Block[4 * I + 3]);
  for (int I = 16; I < 64; ++I) {
    uint32_t S0 = rotr(W[I - 15], 7) ^ rotr(W[I - 15], 18) ^ (W[I - 15] >> 3);
    uint32_t S1 = rotr(W[I - 2], 17) ^ rotr(W[I - 2], 19) ^ (W[I - 2] >> 10);
    W[I] = W[I - 16] + S0 + W[I - 7] + S1;
  }

  uint32_t A = H[0], B = H[1], C = H[2], D = H[3];
  uint32_t E = H[4], F = H[5], G = H[6], Hh = H[7];
  for (int I = 0; I < 64; ++I) {
    uint32_t S1 = rotr(E, 6) ^ rotr(E, 11) ^ rotr(E, 25);
    uint32_t Ch = (E & F) ^ (~E & G);
    uint32_t T1 = Hh + S1 + Ch + kRoundConstants[I] + W[I];
    uint32_t S0 = rotr(A, 2) ^ rotr(A, 13) ^ rotr(A, 22);
    uint32_t Maj = (A & B) ^ (A & C) ^ (B & C);
    uint32_t T2 = S0 + Maj;
    Hh = G;
    G = F;
    F = E;
    E = D + T1;
    D = C;
    C = B;
    B = A;
    A = T1 + T2;
  }
  H[0] += A;
  H[1] += B;
  H[2] += C;
  H[3] += D;
  H[4] += E;
  H[5] += F;
  H[6] += G;
  H[7] += Hh;
}

void Sha256::update(const void *Data, size_t Len) {
  assert(!Finalized && "update after digest");
  const uint8_t *P = static_cast<const uint8_t *>(Data);
  TotalBytes += Len;
  while (Len > 0) {
    size_t Take = 64 - BufLen;
    if (Take > Len)
      Take = Len;
    std::memcpy(Buf + BufLen, P, Take);
    BufLen += Take;
    P += Take;
    Len -= Take;
    if (BufLen == 64) {
      compress(Buf);
      BufLen = 0;
    }
  }
}

void Sha256::update(std::string_view Data) {
  update(Data.data(), Data.size());
}

std::array<uint8_t, 32> Sha256::digest() {
  assert(!Finalized && "digest called twice");
  Finalized = true;

  // Append 0x80, then zeros until 8 bytes remain in a block, then the
  // big-endian bit length.
  uint64_t BitLen = TotalBytes * 8;
  Buf[BufLen++] = 0x80;
  if (BufLen > 56) {
    while (BufLen < 64)
      Buf[BufLen++] = 0;
    compress(Buf);
    BufLen = 0;
  }
  while (BufLen < 56)
    Buf[BufLen++] = 0;
  for (int I = 7; I >= 0; --I)
    Buf[BufLen++] = uint8_t(BitLen >> (8 * I));
  compress(Buf);

  std::array<uint8_t, 32> Out;
  for (int I = 0; I < 8; ++I) {
    Out[4 * I] = uint8_t(H[I] >> 24);
    Out[4 * I + 1] = uint8_t(H[I] >> 16);
    Out[4 * I + 2] = uint8_t(H[I] >> 8);
    Out[4 * I + 3] = uint8_t(H[I]);
  }
  return Out;
}

std::string Sha256::digestHex() {
  static const char *Hex = "0123456789abcdef";
  std::array<uint8_t, 32> D = digest();
  std::string S;
  S.reserve(64);
  for (uint8_t B : D) {
    S.push_back(Hex[B >> 4]);
    S.push_back(Hex[B & 0xf]);
  }
  return S;
}

std::string sha256Hex(std::string_view Data) {
  Sha256 H;
  H.update(Data);
  return H.digestHex();
}

} // namespace sgpu
