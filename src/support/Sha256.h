//===- support/Sha256.h - SHA-256 message digest ----------------*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A from-scratch SHA-256 (FIPS 180-4) used by the scheduling service to
/// derive content-addressed cache keys from canonicalized compile
/// requests (see service/GraphHash.h). Streaming interface so large
/// canonical forms need not be concatenated; `sha256Hex` is the one-shot
/// convenience. No external dependencies, matching the repo's policy of
/// building everything the paper pipeline needs in-tree.
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_SUPPORT_SHA256_H
#define SGPU_SUPPORT_SHA256_H

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace sgpu {

/// Incremental SHA-256. update() any number of times, then digestHex()
/// (which finalizes; further updates assert).
class Sha256 {
public:
  Sha256();

  /// Absorbs \p Data.
  void update(std::string_view Data);
  void update(const void *Data, size_t Len);

  /// Finalizes and returns the 32-byte digest.
  std::array<uint8_t, 32> digest();

  /// Finalizes and returns the digest as 64 lowercase hex characters.
  std::string digestHex();

private:
  void compress(const uint8_t *Block);

  uint32_t H[8];
  uint8_t Buf[64];
  size_t BufLen = 0;
  uint64_t TotalBytes = 0;
  bool Finalized = false;
};

/// One-shot digest of \p Data as lowercase hex.
std::string sha256Hex(std::string_view Data);

} // namespace sgpu

#endif // SGPU_SUPPORT_SHA256_H
