//===- support/ThreadPool.cpp - Worker pool for solver parallelism ----------===//

#include "support/ThreadPool.h"

#include <atomic>
#include <cstdlib>

using namespace sgpu;

int sgpu::resolveWorkerCount(int Requested) {
  if (Requested > 0)
    return Requested;
  if (const char *Env = std::getenv("SGPU_JOBS")) {
    int N = std::atoi(Env);
    if (N > 0)
      return N;
  }
  unsigned HW = std::thread::hardware_concurrency();
  return HW > 0 ? static_cast<int>(HW) : 1;
}

ThreadPool::ThreadPool(int NumThreads) {
  int N = resolveWorkerCount(NumThreads);
  Workers.reserve(N);
  for (int I = 0; I < N; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    ShuttingDown = true;
  }
  WorkCv.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::submit(std::function<void()> Task) {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Tasks.push_back(std::move(Task));
  }
  WorkCv.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(Mu);
  IdleCv.wait(Lock, [this] { return Tasks.empty() && Active == 0; });
}

void ThreadPool::workerLoop() {
  std::unique_lock<std::mutex> Lock(Mu);
  for (;;) {
    WorkCv.wait(Lock, [this] { return ShuttingDown || !Tasks.empty(); });
    if (Tasks.empty()) // ShuttingDown with a drained queue.
      return;
    std::function<void()> Task = std::move(Tasks.front());
    Tasks.pop_front();
    ++Active;
    Lock.unlock();
    Task();
    Lock.lock();
    --Active;
    if (Tasks.empty() && Active == 0)
      IdleCv.notify_all();
  }
}

void sgpu::parallelFor(int Begin, int End, int Jobs,
                       const std::function<void(int)> &Fn) {
  if (End <= Begin)
    return;
  int N = End - Begin;
  int Workers = std::min(resolveWorkerCount(Jobs), N);
  if (Workers <= 1 || N == 1) {
    for (int I = Begin; I < End; ++I)
      Fn(I);
    return;
  }
  // Self-scheduling over an atomic cursor: cheap and balances uneven
  // per-index work (profile cells and candidate IIs vary widely).
  std::atomic<int> Next{Begin};
  auto Drain = [&] {
    for (;;) {
      int I = Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= End)
        return;
      Fn(I);
    }
  };
  std::vector<std::thread> Threads;
  Threads.reserve(Workers - 1);
  for (int W = 1; W < Workers; ++W)
    Threads.emplace_back(Drain);
  Drain();
  for (std::thread &T : Threads)
    T.join();
}
