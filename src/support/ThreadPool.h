//===- support/ThreadPool.h - Worker pool for solver parallelism -*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size worker pool shared by the parallel layers of the
/// scheduling engine: the branch & bound drains its subproblem queue
/// through one, the II search evaluates a window of candidate IIs on
/// one, and the profiler sweeps filters×configs cells on one. Tasks are
/// plain std::function thunks; wait() gives a barrier so callers can use
/// the pool as a scoped fork/join region. Worker counts resolve through
/// resolveWorkerCount(): an explicit request wins, then the SGPU_JOBS
/// environment variable, then std::thread::hardware_concurrency().
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_SUPPORT_THREADPOOL_H
#define SGPU_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sgpu {

/// Resolves a requested worker count to a concrete positive number:
/// \p Requested > 0 is taken as-is; 0 consults the SGPU_JOBS environment
/// variable and falls back to hardware_concurrency(); the result is
/// always >= 1.
int resolveWorkerCount(int Requested);

/// Fixed-size pool of worker threads draining a FIFO task queue.
class ThreadPool {
public:
  /// Spawns \p NumThreads workers (resolved via resolveWorkerCount, so 0
  /// means "auto"). A pool of size 1 still spawns one worker thread so
  /// submit() never runs tasks inline.
  explicit ThreadPool(int NumThreads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues \p Task for execution by some worker.
  void submit(std::function<void()> Task);

  /// Blocks until every submitted task has finished. The pool is
  /// reusable afterwards.
  void wait();

  int numThreads() const { return static_cast<int>(Workers.size()); }

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::deque<std::function<void()>> Tasks;
  mutable std::mutex Mu;
  std::condition_variable WorkCv;  ///< Signals workers: task or shutdown.
  std::condition_variable IdleCv;  ///< Signals wait(): queue drained.
  int Active = 0;                  ///< Tasks currently executing.
  bool ShuttingDown = false;
};

/// Runs Fn(I) for every I in [Begin, End) with up to \p Jobs concurrent
/// workers (resolved via resolveWorkerCount). Jobs == 1 (or a range of
/// at most one element) runs inline without spawning threads. Blocks
/// until the whole range is done. Fn must be safe to call concurrently
/// for distinct indices.
void parallelFor(int Begin, int End, int Jobs,
                 const std::function<void(int)> &Fn);

} // namespace sgpu

#endif // SGPU_SUPPORT_THREADPOOL_H
