//===- support/Trace.cpp - Scoped spans with Chrome trace export -------------===//

#include "support/Trace.h"

#include "support/Json.h"
#include "support/Metrics.h"

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <mutex>

using namespace sgpu;

namespace {

using Clock = std::chrono::steady_clock;

/// The process-wide event sink. Span *end* takes the mutex once; span
/// start only reads the enabled flag and the epoch.
struct Collector {
  std::mutex Mu;
  std::vector<TraceEvent> Events;
  std::vector<std::pair<int, std::string>> ThreadNames;
  std::atomic<int> NextTid{0};
  Clock::time_point Epoch = Clock::now();
};

Collector &collector() {
  static Collector *C = new Collector; // Leaked: spans may end during
  return *C;                           // static destruction.
}

std::atomic<bool> TraceOn{false};

double nowMicros() {
  return std::chrono::duration<double, std::micro>(Clock::now() -
                                                   collector().Epoch)
      .count();
}

} // namespace

bool sgpu::traceEnabled() {
  return TraceOn.load(std::memory_order_relaxed);
}

void sgpu::traceSetEnabled(bool Enabled) {
  TraceOn.store(Enabled, std::memory_order_relaxed);
}

void sgpu::traceReset() {
  Collector &C = collector();
  std::lock_guard<std::mutex> Lock(C.Mu);
  C.Events.clear();
  C.Epoch = Clock::now();
}

int sgpu::traceCurrentThreadId() {
  thread_local int Tid =
      collector().NextTid.fetch_add(1, std::memory_order_relaxed);
  return Tid;
}

void sgpu::traceSetThreadName(const std::string &Name) {
  Collector &C = collector();
  int Tid = traceCurrentThreadId();
  std::lock_guard<std::mutex> Lock(C.Mu);
  for (auto &[T, N] : C.ThreadNames)
    if (T == Tid) {
      N = Name;
      return;
    }
  C.ThreadNames.emplace_back(Tid, Name);
}

std::vector<TraceEvent> sgpu::traceSnapshot() {
  Collector &C = collector();
  std::lock_guard<std::mutex> Lock(C.Mu);
  return C.Events;
}

std::string sgpu::traceToJson() {
  Collector &C = collector();
  std::vector<TraceEvent> Events;
  std::vector<std::pair<int, std::string>> Names;
  {
    std::lock_guard<std::mutex> Lock(C.Mu);
    Events = C.Events;
    Names = C.ThreadNames;
  }

  std::string Out = "{\"traceEvents\":[";
  bool First = true;
  auto Sep = [&] {
    if (!First)
      Out += ',';
    First = false;
  };
  for (const auto &[Tid, Name] : Names) {
    Sep();
    Out += "{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(Tid) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
           jsonEscape(Name) + "\"}}";
  }
  char Buf[64];
  for (const TraceEvent &E : Events) {
    Sep();
    Out += "{\"name\":\"" + jsonEscape(E.Name) + "\",\"cat\":\"" +
           jsonEscape(E.Cat) + "\",\"ph\":\"X\",\"pid\":1,\"tid\":" +
           std::to_string(E.Tid);
    std::snprintf(Buf, sizeof(Buf), ",\"ts\":%.3f,\"dur\":%.3f",
                  E.StartMicros, E.DurMicros);
    Out += Buf;
    if (!E.Args.empty()) {
      Out += ",\"args\":{";
      for (size_t I = 0; I < E.Args.size(); ++I) {
        if (I)
          Out += ',';
        Out += '"' + jsonEscape(E.Args[I].first) + "\":" + E.Args[I].second;
      }
      Out += '}';
    }
    Out += '}';
  }
  Out += "],\"displayTimeUnit\":\"ms\"}";
  return Out;
}

bool sgpu::traceWriteFile(const std::string &Path) {
  std::ofstream Out(Path);
  if (!Out)
    return false;
  Out << traceToJson() << "\n";
  return Out.good();
}

bool sgpu::traceInitFromEnv(std::string *PathOut) {
  const char *Path = std::getenv("SGPU_TRACE");
  if (!Path || !*Path)
    return false;
  traceSetEnabled(true);
  if (PathOut)
    *PathOut = Path;
  return true;
}

TraceSpan::TraceSpan(const char *Name, const char *Cat)
    : Name(Name), Cat(Cat) {
  if (!traceEnabled())
    return;
  Active = true;
  StartMicros = nowMicros();
}

TraceSpan::~TraceSpan() {
  if (!Active)
    return;
  TraceEvent E;
  E.Name = Name;
  E.Cat = Cat;
  E.Tid = traceCurrentThreadId();
  E.StartMicros = StartMicros;
  E.DurMicros = nowMicros() - StartMicros;
  E.Args = std::move(Args);
  Collector &C = collector();
  std::lock_guard<std::mutex> Lock(C.Mu);
  C.Events.push_back(std::move(E));
}

void TraceSpan::argStr(const std::string &Key, const std::string &Value) {
  if (Active)
    Args.emplace_back(Key, '"' + jsonEscape(Value) + '"');
}

void TraceSpan::argNum(const std::string &Key, double Value) {
  if (!Active)
    return;
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.17g", Value);
  Args.emplace_back(Key, Buf);
}

void TraceSpan::argInt(const std::string &Key, int64_t Value) {
  if (Active)
    Args.emplace_back(Key, std::to_string(Value));
}

StageTimer::StageTimer(const char *Stage)
    : Span(Stage),
      Hist(metricHistogram("stage." + std::string(Stage) + ".seconds")),
      Start(Clock::now()) {}

StageTimer::~StageTimer() {
  Hist.record(std::chrono::duration<double>(Clock::now() - Start).count());
}
