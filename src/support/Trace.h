//===- support/Trace.h - Scoped spans with Chrome trace export --*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pipeline-wide tracing: scoped spans (RAII) recorded per thread and
/// exported in the Chrome `trace_event` JSON format, loadable in
/// `chrome://tracing` or Perfetto. Tracing is off by default — a span is
/// one relaxed atomic load — and is switched on by `sgpu-compile
/// --trace-out`, the `SGPU_TRACE` environment variable (value = output
/// path), or `traceSetEnabled(true)` in tests.
///
/// Threads are attributed by a stable small id handed out on a thread's
/// first recorded event; `traceSetThreadName` attaches the Chrome
/// `thread_name` metadata so solver workers are labelled in the UI.
///
/// `StageTimer` is the one-line way to instrument a pipeline stage: it
/// opens a trace span *and* records the elapsed seconds into the
/// `stage.<name>.seconds` histogram of the metrics registry, so the same
/// annotation feeds both the trace file and `tools/perf_gate`. The span
/// taxonomy is documented in DESIGN.md "Observability".
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_SUPPORT_TRACE_H
#define SGPU_SUPPORT_TRACE_H

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace sgpu {

class Histogram;

/// One completed span ("X" complete event in the Chrome format).
struct TraceEvent {
  std::string Name;
  std::string Cat;
  int Tid = 0;
  double StartMicros = 0.0; ///< Relative to the trace epoch.
  double DurMicros = 0.0;
  /// Args with values pre-rendered as JSON literals (quoted strings,
  /// bare numbers).
  std::vector<std::pair<std::string, std::string>> Args;
};

/// Whether spans are being recorded.
bool traceEnabled();
void traceSetEnabled(bool Enabled);

/// Drops all recorded events and restarts the trace clock.
void traceReset();

/// Stable per-thread id (assigned on first use, starting at 0).
int traceCurrentThreadId();

/// Names the calling thread in the exported trace.
void traceSetThreadName(const std::string &Name);

/// Copy of everything recorded so far.
std::vector<TraceEvent> traceSnapshot();

/// Renders the Chrome trace_event document ({"traceEvents": [...]}).
std::string traceToJson();

/// Writes traceToJson() to \p Path; false on I/O failure.
bool traceWriteFile(const std::string &Path);

/// Enables tracing when the SGPU_TRACE environment variable is set,
/// returning true and storing the variable's value (the output path)
/// into \p PathOut.
bool traceInitFromEnv(std::string *PathOut);

/// RAII span. Construction when tracing is disabled costs one atomic
/// load; when enabled, the span is recorded at destruction.
class TraceSpan {
public:
  explicit TraceSpan(const char *Name, const char *Cat = "pipeline");
  ~TraceSpan();

  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;

  /// Attach key/value args (shown in the trace UI). No-ops when the
  /// span is inactive.
  void argStr(const std::string &Key, const std::string &Value);
  void argNum(const std::string &Key, double Value);
  void argInt(const std::string &Key, int64_t Value);

private:
  bool Active = false;
  const char *Name;
  const char *Cat;
  double StartMicros = 0.0;
  std::vector<std::pair<std::string, std::string>> Args;
};

/// Trace span + `stage.<name>.seconds` metrics histogram, the standard
/// pipeline-stage annotation. The histogram records even when tracing
/// is disabled, so perf_gate always sees stage wall times.
class StageTimer {
public:
  explicit StageTimer(const char *Stage);
  ~StageTimer();

  StageTimer(const StageTimer &) = delete;
  StageTimer &operator=(const StageTimer &) = delete;

  /// The underlying trace span, for attaching args.
  TraceSpan &span() { return Span; }

private:
  TraceSpan Span;
  Histogram &Hist;
  std::chrono::steady_clock::time_point Start;
};

} // namespace sgpu

#endif // SGPU_SUPPORT_TRACE_H
