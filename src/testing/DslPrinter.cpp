//===- testing/DslPrinter.cpp - Stream program to .str source -------------===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//

#include "testing/DslPrinter.h"

#include "ir/Ast.h"
#include "ir/Filter.h"
#include "parser/Parser.h"

#include <cmath>
#include <cstdio>
#include <set>

namespace sgpu {
namespace testing {

namespace {

/// Thrown internally to unwind out of an unprintable construct; converted
/// to DslPrintResult::Error at the entry point.
struct PrintError {
  std::string Message;
};

/// The parser's binary precedence table (Parser.cpp binPrec). A child is
/// parenthesized when reparsing at the parent's level would not rebuild
/// it: right children at <= the parent's precedence (all operators are
/// left-associative), left children at strictly lower precedence.
int binPrec(BinOpKind Op) {
  switch (Op) {
  case BinOpKind::LOr:
    return 1;
  case BinOpKind::LAnd:
    return 2;
  case BinOpKind::Or:
    return 3;
  case BinOpKind::Xor:
    return 4;
  case BinOpKind::And:
    return 5;
  case BinOpKind::Eq:
  case BinOpKind::Ne:
    return 6;
  case BinOpKind::Lt:
  case BinOpKind::Le:
  case BinOpKind::Gt:
  case BinOpKind::Ge:
    return 7;
  case BinOpKind::Shl:
  case BinOpKind::Shr:
    return 8;
  case BinOpKind::Add:
  case BinOpKind::Sub:
    return 9;
  case BinOpKind::Mul:
  case BinOpKind::Div:
  case BinOpKind::Rem:
    return 10;
  }
  return 0;
}

/// Precedence of a whole expression; primaries/unaries bind tighter than
/// any binary operator.
constexpr int PrimaryPrec = 11;

int exprPrec(const Expr *E) {
  if (const auto *B = dyn_cast<BinaryExpr>(E))
    return binPrec(B->op());
  return PrimaryPrec;
}

std::string formatFloat(double V) {
  if (!std::isfinite(V))
    throw PrintError{"non-finite float literal is not expressible"};
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  std::string S(Buf);
  // Bare "5" would lex as an int literal and change the expression type;
  // force a float spelling (the lexer accepts digits '.' digits and
  // exponents but no 'f' suffix).
  if (S.find_first_of(".eE") == std::string::npos)
    S += ".0";
  return S;
}

class DslPrinter {
public:
  DslPrintResult run(const Stream &S) {
    DslPrintResult R;
    try {
      printStream(S, 0);
      R.Ok = true;
      R.Text = std::move(Out);
    } catch (const PrintError &E) {
      R.Error = E.Message;
    }
    return R;
  }

private:
  std::string Out;

  void line(int Indent, const std::string &Text) {
    Out.append(static_cast<size_t>(Indent) * 2, ' ');
    Out += Text;
    Out += '\n';
  }

  //===--------------------------------------------------------------------===//
  // Streams
  //===--------------------------------------------------------------------===//

  void printStream(const Stream &S, int Indent) {
    switch (S.kind()) {
    case Stream::Kind::Filter:
      printFilter(*cast<FilterStream>(&S)->filter(), Indent);
      return;
    case Stream::Kind::Pipeline: {
      line(Indent, "pipeline {");
      for (const StreamPtr &C : cast<PipelineStream>(&S)->children())
        printStream(*C, Indent + 1);
      line(Indent, "}");
      return;
    }
    case Stream::Kind::SplitJoin: {
      const auto *SJ = cast<SplitJoinStream>(&S);
      std::string Header = "splitjoin ";
      if (SJ->splitterKind() == SplitterKind::Duplicate)
        Header += "duplicate";
      else
        Header += "roundrobin(" + weightList(SJ->splitterWeights()) + ")";
      Header += " join roundrobin(" + weightList(SJ->joinerWeights()) + ") {";
      line(Indent, Header);
      for (const StreamPtr &C : SJ->children())
        printStream(*C, Indent + 1);
      line(Indent, "}");
      return;
    }
    case Stream::Kind::FeedbackLoop:
      throw PrintError{"feedback loops are not expressible in the DSL"};
    }
    throw PrintError{"unknown stream kind"};
  }

  static std::string weightList(const std::vector<int64_t> &W) {
    std::string S;
    for (size_t I = 0; I < W.size(); ++I) {
      if (I)
        S += ", ";
      S += std::to_string(W[I]);
    }
    return S;
  }

  //===--------------------------------------------------------------------===//
  // Filters
  //===--------------------------------------------------------------------===//

  void printFilter(const Filter &F, int Indent) {
    std::string Header = "filter " + F.name() + " (";
    Header += tokenTypeName(F.inputType());
    Header += "->";
    Header += tokenTypeName(F.outputType());
    Header += ", pop " + std::to_string(F.popRate());
    Header += ", push " + std::to_string(F.pushRate());
    if (F.isPeeking())
      Header += ", peek " + std::to_string(F.peekRate());
    Header += ") {";
    line(Indent, Header);

    const WorkFunction &W = F.work();
    for (const auto &D : W.fields())
      printConstDecl(F, *D, Indent + 1);
    for (const auto &D : W.stateVars())
      printStateDecl(F, *D, Indent + 1);

    // For-loop induction variables are declared by the `for` statement
    // itself; every other local needs a declaration up front (its
    // initialization, if any, is an ordinary assignment in the body).
    std::set<const VarDecl *> Inductions;
    collectInductions(W.body(), Inductions);
    for (const auto &D : W.locals()) {
      if (Inductions.count(D.get()))
        continue;
      std::string Decl = tokenTypeName(D->type());
      Decl += " " + D->name();
      if (D->isArray())
        Decl += "[" + std::to_string(D->arraySize()) + "]";
      Decl += ";";
      line(Indent + 1, Decl);
    }

    if (W.body())
      for (const Stmt *S : W.body()->body())
        printStmt(S, Indent + 1);
    line(Indent, "}");
  }

  static std::string scalarLiteral(const Scalar &S) {
    return S.Ty == TokenType::Int ? std::to_string(S.asInt())
                                  : formatFloat(S.asFloat());
  }

  static std::string initList(const std::vector<Scalar> &Values) {
    std::string S = "{";
    for (size_t I = 0; I < Values.size(); ++I) {
      if (I)
        S += ", ";
      S += scalarLiteral(Values[I]);
    }
    S += "}";
    return S;
  }

  void printConstDecl(const Filter &F, const VarDecl &D, int Indent) {
    const std::vector<Scalar> &V = F.fieldValues(D.slot());
    std::string S = "const ";
    S += tokenTypeName(D.type());
    S += " " + D.name();
    if (D.isArray())
      S += "[" + std::to_string(D.arraySize()) + "] = " + initList(V) + ";";
    else
      S += " = " + scalarLiteral(V[0]) + ";";
    line(Indent, S);
  }

  void printStateDecl(const Filter &F, const VarDecl &D, int Indent) {
    if (D.isArray() && D.type() == TokenType::Int)
      throw PrintError{"state int arrays are not expressible in the DSL"};
    const std::vector<Scalar> &V = F.stateInit(D.slot());
    std::string S = "state ";
    S += tokenTypeName(D.type());
    S += " " + D.name();
    if (D.isArray())
      S += "[" + std::to_string(D.arraySize()) + "] = " + initList(V) + ";";
    else
      S += " = " + scalarLiteral(V[0]) + ";";
    line(Indent, S);
  }

  static void collectInductions(const Stmt *S,
                                std::set<const VarDecl *> &Out) {
    if (!S)
      return;
    switch (S->kind()) {
    case Stmt::Kind::For: {
      const auto *F = cast<ForStmt>(S);
      Out.insert(F->induction());
      collectInductions(F->body(), Out);
      return;
    }
    case Stmt::Kind::If: {
      const auto *I = cast<IfStmt>(S);
      collectInductions(I->thenBlock(), Out);
      collectInductions(I->elseBlock(), Out);
      return;
    }
    case Stmt::Kind::Block:
      for (const Stmt *C : cast<BlockStmt>(S)->body())
        collectInductions(C, Out);
      return;
    default:
      return;
    }
  }

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//

  void printStmt(const Stmt *S, int Indent) {
    switch (S->kind()) {
    case Stmt::Kind::Assign: {
      const auto *A = cast<AssignStmt>(S);
      line(Indent, lvalue(A->target()) + " = " + expr(A->value()) + ";");
      return;
    }
    case Stmt::Kind::Push:
      line(Indent, "push(" + expr(cast<PushStmt>(S)->value()) + ");");
      return;
    case Stmt::Kind::ExprStmt: {
      const Expr *E = cast<ExprStmt>(S)->expr();
      if (E->kind() != Expr::Kind::Pop)
        throw PrintError{
            "only pop() expression statements are expressible in the DSL"};
      line(Indent, "pop();");
      return;
    }
    case Stmt::Kind::If: {
      const auto *I = cast<IfStmt>(S);
      line(Indent, "if (" + expr(I->cond()) + ") {");
      printBlock(I->thenBlock(), Indent + 1);
      if (I->elseBlock()) {
        line(Indent, "} else {");
        printBlock(I->elseBlock(), Indent + 1);
      }
      line(Indent, "}");
      return;
    }
    case Stmt::Kind::For: {
      const auto *F = cast<ForStmt>(S);
      if (F->step()) {
        const auto *Step = dyn_cast<IntLiteral>(F->step());
        if (!Step || Step->value() != 1)
          throw PrintError{"only unit for-loop steps are expressible"};
      }
      line(Indent, "for (" + F->induction()->name() + " in " +
                       expr(F->begin()) + ".." + expr(F->end()) + ") {");
      printBlock(F->body(), Indent + 1);
      line(Indent, "}");
      return;
    }
    case Stmt::Kind::Block:
      printBlock(cast<BlockStmt>(S), Indent);
      return;
    }
    throw PrintError{"unknown statement kind"};
  }

  void printBlock(const BlockStmt *B, int Indent) {
    if (!B)
      return;
    for (const Stmt *S : B->body())
      printStmt(S, Indent);
  }

  std::string lvalue(const Expr *Target) {
    if (const auto *V = dyn_cast<VarRef>(Target))
      return V->decl()->name();
    if (const auto *A = dyn_cast<ArrayRef>(Target))
      return A->decl()->name() + "[" + expr(A->index()) + "]";
    throw PrintError{"unsupported assignment target"};
  }

  //===--------------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------------===//

  std::string expr(const Expr *E) {
    switch (E->kind()) {
    case Expr::Kind::IntLiteral:
      return std::to_string(cast<IntLiteral>(E)->value());
    case Expr::Kind::FloatLiteral:
      return formatFloat(cast<FloatLiteral>(E)->value());
    case Expr::Kind::VarRef:
      return cast<VarRef>(E)->decl()->name();
    case Expr::Kind::ArrayRef: {
      const auto *A = cast<ArrayRef>(E);
      return A->decl()->name() + "[" + expr(A->index()) + "]";
    }
    case Expr::Kind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      int P = binPrec(B->op());
      std::string L = expr(B->lhs());
      if (exprPrec(B->lhs()) < P)
        L = "(" + L + ")";
      std::string R = expr(B->rhs());
      if (exprPrec(B->rhs()) <= P)
        R = "(" + R + ")";
      return L + " " + binOpSpelling(B->op()) + " " + R;
    }
    case Expr::Kind::Unary: {
      const auto *U = cast<UnaryExpr>(E);
      // Parenthesize non-primary operands, and literal operands of '-'
      // so a negative value never prints as a confusing '--'.
      std::string Op = expr(U->operand());
      bool Wrap = exprPrec(U->operand()) < PrimaryPrec;
      if (!Wrap && !Op.empty() && Op[0] == '-')
        Wrap = true;
      if (Wrap)
        Op = "(" + Op + ")";
      return std::string(unOpSpelling(U->op())) + Op;
    }
    case Expr::Kind::Call: {
      const auto *C = cast<CallExpr>(E);
      std::string S = dslBuiltinName(C->callee());
      S += "(";
      for (size_t I = 0; I < C->args().size(); ++I) {
        if (I)
          S += ", ";
        S += expr(C->args()[I]);
      }
      S += ")";
      return S;
    }
    case Expr::Kind::Cast: {
      const auto *C = cast<CastExpr>(E);
      const char *Ty = C->type() == TokenType::Int ? "int" : "float";
      return "(" + std::string(Ty) + ")(" + expr(C->operand()) + ")";
    }
    case Expr::Kind::Select:
      throw PrintError{"select expressions are not expressible in the DSL"};
    case Expr::Kind::Pop:
      return "pop()";
    case Expr::Kind::Peek:
      return "peek(" + expr(cast<PeekExpr>(E)->depth()) + ")";
    }
    throw PrintError{"unknown expression kind"};
  }
};

} // namespace

DslPrintResult printStreamDsl(const Stream &S) { return DslPrinter().run(S); }

} // namespace testing
} // namespace sgpu
