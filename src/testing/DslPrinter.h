//===- testing/DslPrinter.h - Stream program to .str source -----*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints a hierarchical stream program back to the `.str` DSL accepted
/// by parseStreamProgram(). The fuzzer's minimizer uses this to emit
/// standalone repro files that replay through `sgpu-compile --file`.
///
/// The printer targets semantic round-tripping, not syntactic identity:
/// reparsing the output yields a program with the same rates, structure
/// and observable input->output behaviour (local declarations are split
/// from their initializing assignments, negative literals come back as
/// unary minus, parentheses are re-derived from the parser's precedence
/// table). Constructs the DSL cannot express (feedback loops, select
/// expressions, int state arrays, non-unit for steps, non-finite float
/// literals) fail the print with a diagnostic instead of emitting text
/// that would not reparse.
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_TESTING_DSLPRINTER_H
#define SGPU_TESTING_DSLPRINTER_H

#include "ir/Stream.h"

#include <string>

namespace sgpu {
namespace testing {

struct DslPrintResult {
  bool Ok = false;
  std::string Text;  ///< The `.str` source when Ok.
  std::string Error; ///< Why printing failed when !Ok.
};

/// Prints \p S as a `.str` program.
DslPrintResult printStreamDsl(const Stream &S);

} // namespace testing
} // namespace sgpu

#endif // SGPU_TESTING_DSLPRINTER_H
