//===- testing/GraphGen.cpp - Random stream-graph generator ---------------===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//

#include "testing/GraphGen.h"

#include "ir/FilterBuilder.h"

#include <cassert>

namespace sgpu {
namespace testing {

namespace {

//===----------------------------------------------------------------------===//
// Spec generation
//
// The draw sequence below is load-bearing: with default GraphGenOptions it
// matches tests/random_graph_test.cpp draw for draw, so the historical
// seeds (1..24) keep generating the same programs. Extension flags insert
// extra draws only when enabled — turning one on intentionally produces a
// different stream of graphs.
//===----------------------------------------------------------------------===//

FilterSpec drawFilter(Rng &R, const GraphGenOptions &O, const std::string &Name,
                      bool RateNeutral) {
  FilterSpec F;
  F.Name = Name;
  F.RateNeutral = RateNeutral;
  F.Pop = R.nextIntInRange(1, O.MaxRate);
  F.Push = RateNeutral ? F.Pop : R.nextIntInRange(1, O.MaxRate);
  bool Peeks = R.nextInt(4) == 0 && O.AllowPeeking;
  F.Peek = Peeks ? F.Pop + R.nextIntInRange(1, 3) : F.Pop;
  F.AccInit = R.nextIntInRange(0, 9);
  F.Body = static_cast<int>(R.nextInt(3));
  if (O.AllowStateful)
    F.Stateful = R.nextInt(8) == 0;
  return F;
}

StreamSpec drawStream(Rng &R, const GraphGenOptions &O, int Depth,
                      int &Counter, bool RateNeutral) {
  std::string Tag = std::to_string(Counter++);
  StreamSpec S;
  if (Depth <= 0 || R.nextInt(3) != 0) {
    S.K = StreamSpec::Kind::Filter;
    S.F = drawFilter(R, O, "F" + Tag, RateNeutral);
    return S;
  }

  // A split-join changes the token count (duplicate multiplies it, a
  // round-robin redistributes in splitter-weight units), so it is never
  // emitted inside a rate-neutral region; only pipelines/filters appear
  // there.
  if (RateNeutral || !O.AllowSplitJoin || R.nextInt(2) == 0) {
    S.K = StreamSpec::Kind::Pipeline;
    int64_t N = R.nextIntInRange(2, 3);
    for (int64_t I = 0; I < N; ++I)
      S.Children.push_back(drawStream(R, O, Depth - 1, Counter, RateNeutral));
    return S;
  }

  S.K = StreamSpec::Kind::SplitJoin;
  S.Duplicate = !O.AllowRoundRobin || R.nextInt(2) == 0;
  if (S.Duplicate) {
    // Duplicate over two rate-neutral branches, joined {1, 1} (the legacy
    // shape; joiner weights must mirror the branch output ratio, which
    // rate-neutral branches pin to 1:1).
    S.Children.push_back(drawStream(R, O, Depth - 1, Counter, true));
    S.Children.push_back(drawStream(R, O, Depth - 1, Counter, true));
    S.JoinWeights = {1, 1};
  } else {
    // Round-robin split: branch i receives W[i] tokens per round. With
    // rate-neutral branches, joining with the same weights rebalances
    // exactly.
    S.SplitWeights = {R.nextIntInRange(1, 2), R.nextIntInRange(1, 2)};
    S.Children.push_back(drawStream(R, O, Depth - 1, Counter, true));
    S.Children.push_back(drawStream(R, O, Depth - 1, Counter, true));
    S.JoinWeights = S.SplitWeights;
  }
  return S;
}

StreamPtr lowerStream(const StreamSpec &S, TokenType Ty) {
  switch (S.K) {
  case StreamSpec::Kind::Filter:
    return filterStream(buildFilter(S.F, Ty));
  case StreamSpec::Kind::Pipeline: {
    std::vector<StreamPtr> Parts;
    for (const StreamSpec &C : S.Children)
      Parts.push_back(lowerStream(C, Ty));
    return pipelineStream(std::move(Parts));
  }
  case StreamSpec::Kind::SplitJoin: {
    std::vector<StreamPtr> Branches;
    for (const StreamSpec &C : S.Children)
      Branches.push_back(lowerStream(C, Ty));
    if (S.Duplicate)
      return duplicateSplitJoin(std::move(Branches), S.JoinWeights);
    return roundRobinSplitJoin(S.SplitWeights, std::move(Branches),
                               S.JoinWeights);
  }
  }
  assert(false && "unknown stream spec kind");
  return nullptr;
}

void scaleStream(StreamSpec &S, int64_t C) {
  switch (S.K) {
  case StreamSpec::Kind::Filter:
    S.F.Pop *= C;
    S.F.Push *= C;
    S.F.Peek *= C;
    break;
  case StreamSpec::Kind::Pipeline:
    for (StreamSpec &Child : S.Children)
      scaleStream(Child, C);
    break;
  case StreamSpec::Kind::SplitJoin:
    for (int64_t &W : S.SplitWeights)
      W *= C;
    for (int64_t &W : S.JoinWeights)
      W *= C;
    for (StreamSpec &Child : S.Children)
      scaleStream(Child, C);
    break;
  }
}

int specDepth(const StreamSpec &S) {
  int D = 0;
  for (const StreamSpec &C : S.Children)
    D = std::max(D, 1 + specDepth(C));
  return D;
}

bool anyStateful(const StreamSpec &S) {
  if (S.K == StreamSpec::Kind::Filter)
    return S.F.Stateful;
  for (const StreamSpec &C : S.Children)
    if (anyStateful(C))
      return true;
  return false;
}

} // namespace

GraphSpec generateGraphSpec(uint64_t Seed, const GraphGenOptions &O) {
  Rng R(Seed);
  GraphSpec Spec;
  Spec.Seed = Seed;
  if (O.AllowFloat)
    Spec.Ty = R.nextInt(2) == 0 ? TokenType::Int : TokenType::Float;
  int Counter = 0;
  Spec.Root = drawStream(R, O, O.MaxDepth, Counter, /*RateNeutral=*/false);
  return Spec;
}

FilterPtr buildFilter(const FilterSpec &F, TokenType Ty) {
  FilterBuilder B(F.Name, Ty, Ty);
  B.setRates(F.Pop, F.Push, F.Peek);

  const bool IsInt = Ty == TokenType::Int;
  const VarDecl *Acc =
      B.declVar("acc", IsInt ? B.litI(F.AccInit)
                             : B.litF(static_cast<double>(F.AccInit) * 0.25));
  const VarDecl *I = B.beginFor("i", B.litI(0), B.litI(F.Peek));
  switch (F.Body) {
  case 0:
    B.assign(Acc, B.add(B.ref(Acc), B.peek(B.ref(I))));
    break;
  case 1:
    if (IsInt)
      B.assign(Acc,
               B.bitXor(B.ref(Acc), B.add(B.peek(B.ref(I)), B.litI(3))));
    else
      B.assign(Acc, B.add(B.ref(Acc), B.mul(B.peek(B.ref(I)), B.litF(0.5))));
    break;
  default:
    if (IsInt)
      B.assign(Acc, B.add(B.mul(B.ref(Acc), B.litI(3)), B.peek(B.ref(I))));
    else
      B.assign(Acc, B.add(B.mul(B.ref(Acc), B.litF(0.5)), B.peek(B.ref(I))));
    break;
  }
  B.endFor();

  const VarDecl *Out = Acc;
  if (F.Stateful) {
    const VarDecl *S = IsInt ? B.stateScalarI("s", 0) : B.stateScalarF("s", 0.0);
    B.assign(S, B.add(B.ref(S), B.ref(Acc)));
    Out = S;
  }
  for (int64_t P = 0; P < F.Push; ++P)
    B.push(B.add(B.ref(Out), IsInt ? B.litI(P)
                                   : B.litF(static_cast<double>(P) * 0.5)));
  B.popDiscard(F.Pop);
  return B.build();
}

StreamPtr buildStream(const GraphSpec &Spec) {
  return lowerStream(Spec.Root, Spec.Ty);
}

StreamGraph buildGraph(const GraphSpec &Spec) {
  StreamPtr S = buildStream(Spec);
  return flatten(*S);
}

GraphSpec scaleSpecRates(const GraphSpec &Spec, int64_t C) {
  assert(C > 0 && "rate scale must be positive");
  GraphSpec Scaled = Spec;
  scaleStream(Scaled.Root, C);
  return Scaled;
}

std::vector<Scalar> randomInput(Rng &R, TokenType Ty, int64_t N) {
  std::vector<Scalar> V;
  V.reserve(static_cast<size_t>(N));
  for (int64_t I = 0; I < N; ++I) {
    if (Ty == TokenType::Int)
      V.push_back(Scalar::makeInt(R.nextInt(1000)));
    else
      V.push_back(
          Scalar::makeFloat(static_cast<double>(R.nextInt(1000)) * 0.125));
  }
  return V;
}

int countFilters(const StreamSpec &S) {
  if (S.K == StreamSpec::Kind::Filter)
    return 1;
  int N = 0;
  for (const StreamSpec &C : S.Children)
    N += countFilters(C);
  return N;
}

std::string describeSpec(const GraphSpec &Spec) {
  std::string D = "seed " + std::to_string(Spec.Seed) + ": ";
  D += Spec.Ty == TokenType::Int ? "int" : "float";
  D += ", " + std::to_string(countFilters(Spec.Root)) + " filters";
  D += ", depth " + std::to_string(specDepth(Spec.Root));
  if (anyStateful(Spec.Root))
    D += ", stateful";
  return D;
}

} // namespace testing
} // namespace sgpu
