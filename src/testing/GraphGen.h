//===- testing/GraphGen.h - Random stream-graph generator -------*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The seeded random stream-program generator behind `sgpu-fuzz` and the
/// randomized property tests (promoted from tests/random_graph_test.cpp;
/// with default options the RNG draw sequence is identical, so historical
/// seeds generate the same graphs).
///
/// Programs are represented as a plain-data spec tree (GraphSpec) rather
/// than directly as Stream/Filter objects, for two reasons: the
/// delta-debugging reducer needs to mutate programs structurally, and
/// every oracle needs to rebuild a fresh Stream (flatten() takes the
/// hierarchy by reference and StreamGraph is move-only). Lowering a spec
/// with buildStream()/buildGraph() is deterministic and draw-free.
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_TESTING_GRAPHGEN_H
#define SGPU_TESTING_GRAPHGEN_H

#include "ir/Stream.h"
#include "ir/StreamGraph.h"
#include "support/Rng.h"

#include <cstdint>
#include <string>
#include <vector>

namespace sgpu {
namespace testing {

/// One random filter: rates plus a body shape drawn from the seed. The
/// bodies mix every peekable token into an accumulator (shape 0: add,
/// 1: xor of shifted peeks, 2: multiply-accumulate) and push `Push`
/// staggered copies of it.
struct FilterSpec {
  std::string Name;
  int64_t Pop = 1;
  int64_t Push = 1;
  int64_t Peek = 1; ///< >= Pop; > Pop makes the filter peeking.
  int Body = 0;     ///< Accumulator shape, 0..2.
  int64_t AccInit = 0;
  /// Generation context: the filter sits inside a split-join branch whose
  /// overall rate ratio must stay 1. Shrinks must keep Push == Pop.
  bool RateNeutral = false;
  /// Adds a `state` accumulator carried across firings (the stateful
  /// extension; the GPU compiler rejects such graphs, the sequential
  /// oracles still run).
  bool Stateful = false;
};

/// A node of the program spec tree.
struct StreamSpec {
  enum class Kind : uint8_t { Filter, Pipeline, SplitJoin };

  Kind K = Kind::Filter;
  FilterSpec F;                      ///< Kind::Filter only.
  bool Duplicate = true;             ///< Kind::SplitJoin: splitter kind.
  std::vector<int64_t> SplitWeights; ///< Round-robin splitters only.
  std::vector<int64_t> JoinWeights;  ///< Kind::SplitJoin only.
  std::vector<StreamSpec> Children;  ///< Pipeline / SplitJoin only.
};

/// A complete random program: the spec tree plus the token type every
/// filter uses (one type per program keeps reducer transformations
/// type-safe) and the seed it was drawn from.
struct GraphSpec {
  uint64_t Seed = 0;
  TokenType Ty = TokenType::Int;
  StreamSpec Root;
};

/// Generator knobs. The defaults reproduce the legacy
/// tests/random_graph_test.cpp distribution draw for draw; the extension
/// flags (round-robin splitters, float tokens, stateful filters) spend
/// extra draws and therefore change the stream of graphs when enabled.
struct GraphGenOptions {
  int MaxDepth = 2;        ///< Nesting depth of composite constructs.
  int64_t MaxRate = 4;     ///< Pop/push rates are drawn from [1, MaxRate].
  bool AllowPeeking = true;
  bool AllowSplitJoin = true;
  bool AllowRoundRobin = false; ///< Extension: round-robin split-joins.
  bool AllowFloat = false;      ///< Extension: float token programs.
  bool AllowStateful = false;   ///< Extension: stateful filters.
};

/// Draws a random program spec for \p Seed.
GraphSpec generateGraphSpec(uint64_t Seed, const GraphGenOptions &O = {});

/// Lowers one filter spec to a Filter definition with token type \p Ty.
FilterPtr buildFilter(const FilterSpec &F, TokenType Ty);

/// Lowers the spec tree to a fresh hierarchical stream.
StreamPtr buildStream(const GraphSpec &Spec);

/// Convenience: buildStream + flatten.
StreamGraph buildGraph(const GraphSpec &Spec);

/// Returns the spec with every rate multiplied by \p C > 0: filter
/// pop/push/peek and round-robin splitter / joiner weights. The balance
/// equations are homogeneous in the rates, so the repetition vector of
/// every filter is preserved and per-edge steady-state token traffic
/// scales by exactly C (the metamorphic rate-scaling property).
GraphSpec scaleSpecRates(const GraphSpec &Spec, int64_t C);

/// Deterministic random program input: \p N tokens of type \p Ty.
std::vector<Scalar> randomInput(Rng &R, TokenType Ty, int64_t N);

/// Number of filter leaves in the spec tree (the reducer's size metric).
int countFilters(const StreamSpec &S);

/// One-line human-readable summary ("seed 7: int, 5 filters, depth 2"),
/// also the determinism fingerprint used by the driver's self-check.
std::string describeSpec(const GraphSpec &Spec);

} // namespace testing
} // namespace sgpu

#endif // SGPU_TESTING_GRAPHGEN_H
