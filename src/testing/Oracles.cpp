//===- testing/Oracles.cpp - Differential & metamorphic oracles -----------===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//

#include "testing/Oracles.h"

#include "codegen/schema/SchemaSelect.h"
#include "core/ScheduleVerifier.h"
#include "gpusim/FunctionalSim.h"
#include "ir/Analyzer.h"
#include "ir/Interpreter.h"
#include "parser/Parser.h"
#include "profile/ConfigSelection.h"
#include "profile/Profiler.h"
#include "sdf/RateSolver.h"
#include "sdf/Schedules.h"
#include "testing/DslPrinter.h"

#include <algorithm>
#include <cmath>

namespace sgpu {
namespace testing {

namespace {

//===----------------------------------------------------------------------===//
// Report plumbing
//===----------------------------------------------------------------------===//

struct Ctx {
  const OracleOptions &O;
  OracleReport &R;
  /// Hybrid machine under test; engaged when O.Machine == Hybrid.
  std::optional<MachineModel> Machine;

  /// The machine pointer every scheduling/verification call threads
  /// through (null for the paper's GPU-only mode).
  const MachineModel *machine() const {
    return Machine ? &*Machine : nullptr;
  }

  void check() { ++R.ChecksRun; }
  void fail(const std::string &Oracle, const std::string &Message) {
    R.Failures.push_back({Oracle, Message});
  }
};

/// Deterministic program input for this seed: every consumer draws from
/// the same Rng sequence, so inputs of different lengths are prefixes of
/// one another and all executions see the same token stream.
std::vector<Scalar> seedInput(uint64_t Seed, TokenType Ty, int64_t N) {
  Rng R(Seed ^ 0x5bf0363546316325ull);
  return randomInput(R, Ty, N);
}

TokenType graphInputType(const StreamGraph &G) {
  if (G.entryNode() < 0)
    return TokenType::Int;
  const GraphNode &N = G.node(G.entryNode());
  return N.isFilter() ? N.TheFilter->inputType() : N.Ty;
}

/// Reference executor: the sequential AST interpreter run exactly the way
/// checkScheduleAgainstReference runs it (init firings in topological
/// order, then \p BaseIters steady-state iterations).
std::optional<std::vector<Scalar>>
runReference(const StreamGraph &G, const SteadyState &SS,
             const std::vector<Scalar> &Input, int64_t BaseIters,
             std::string &Err) {
  auto Topo = G.topologicalOrder();
  if (!Topo) {
    Err = "no topological order for the reference run";
    return std::nullopt;
  }
  GraphInterpreter I(G);
  I.feedInput(Input);
  for (int V : *Topo) {
    int64_t Want = SS.initFirings()[V];
    if (I.fireNode(V, Want) != Want) {
      Err = "reference init firing rule failed at node " + G.node(V).Name;
      return std::nullopt;
    }
  }
  if (!I.runSteadyState(SS.repetitions(), BaseIters)) {
    Err = "reference steady-state firing rule failed";
    return std::nullopt;
  }
  return I.output();
}

std::string scalarStr(const Scalar &S) { return S.str(); }

/// First index where the common prefix of \p A and \p B disagrees, or -1.
int64_t firstMismatch(const std::vector<Scalar> &A,
                      const std::vector<Scalar> &B) {
  size_t N = std::min(A.size(), B.size());
  for (size_t I = 0; I < N; ++I)
    if (!(A[I] == B[I]))
      return static_cast<int64_t>(I);
  return -1;
}

//===----------------------------------------------------------------------===//
// Structural / rate oracles
//===----------------------------------------------------------------------===//

void checkStructure(Ctx &C, const StreamGraph &G, const SteadyState &SS) {
  C.check();
  if (auto Err = G.validate())
    C.fail("structure", *Err);

  C.check();
  auto Reps = computeRepetitionVector(G);
  if (!Reps) {
    C.fail("rates", "rate solver found no repetition vector");
    return;
  }
  if (!isBalanced(G, *Reps))
    C.fail("rates", "repetition vector does not balance the graph");
  if (auto Err = validateGraphRates(G))
    C.fail("rates", "declared rates disagree with the AST: " + *Err);
  if (*Reps != SS.repetitions())
    C.fail("rates", "SteadyState and rate solver disagree on repetitions");
}

//===----------------------------------------------------------------------===//
// Sequential differential oracle: SAS vs. min-latency vs. reference
//===----------------------------------------------------------------------===//

/// Executes \p Sched step by step through a fresh interpreter.
std::optional<std::vector<Scalar>>
runSequential(const StreamGraph &G, const SteadyState &SS,
              const SequentialSchedule &Sched,
              const std::vector<Scalar> &Input, int64_t Iters,
              std::string &Err) {
  auto Topo = G.topologicalOrder();
  if (!Topo) {
    Err = "no topological order";
    return std::nullopt;
  }
  GraphInterpreter I(G);
  I.feedInput(Input);
  for (int V : *Topo) {
    int64_t Want = SS.initFirings()[V];
    if (I.fireNode(V, Want) != Want) {
      Err = "init firing rule failed at node " + G.node(V).Name;
      return std::nullopt;
    }
  }
  for (int64_t It = 0; It < Iters; ++It)
    for (const ScheduleStep &S : Sched.Steps)
      if (I.fireNode(S.NodeId, S.Count) != S.Count) {
        Err = "firing rule failed at node " + G.node(S.NodeId).Name +
              " in iteration " + std::to_string(It);
        return std::nullopt;
      }
  return I.output();
}

void checkSequential(Ctx &C, const StreamGraph &G, const SteadyState &SS,
                     uint64_t Seed) {
  const int64_t Iters = 2;
  TokenType Ty = graphInputType(G);
  std::vector<Scalar> Input =
      seedInput(Seed, Ty, SS.inputTokensNeeded(Iters));

  std::string Err;
  auto Ref = runReference(G, SS, Input, Iters, Err);
  C.check();
  if (!Ref) {
    C.fail("sequential", Err);
    return;
  }

  // The min-latency scheduler simulates one bare steady-state iteration
  // from the initial tokens, with no init phase: on a peeking graph the
  // lookahead margin is never primed and it deadlocks by design, so its
  // absence only counts as a violation on peek-free graphs.
  bool Peeks = false;
  for (const ChannelEdge &E : G.edges())
    Peeks |= E.PeekRate > E.ConsRate;

  struct Variant {
    const char *Name;
    std::optional<SequentialSchedule> Sched;
    bool MayDeadlock;
  } Variants[] = {
      {"SAS", buildSingleAppearanceSchedule(SS), false},
      {"min-latency", buildMinLatencySchedule(SS), Peeks},
  };
  for (const Variant &V : Variants) {
    C.check();
    if (!V.Sched) {
      if (!V.MayDeadlock)
        C.fail("sequential",
               std::string(V.Name) + ": no schedule for a balanced graph");
      continue;
    }
    std::string SErr;
    auto Out = runSequential(G, SS, *V.Sched, Input, Iters, SErr);
    if (!Out) {
      C.fail("sequential", std::string(V.Name) + ": " + SErr);
      continue;
    }
    if (Out->size() != Ref->size()) {
      C.fail("sequential", std::string(V.Name) + ": produced " +
                               std::to_string(Out->size()) + " tokens, " +
                               "reference produced " +
                               std::to_string(Ref->size()));
      continue;
    }
    int64_t Bad = firstMismatch(*Out, *Ref);
    if (Bad >= 0)
      C.fail("sequential",
             std::string(V.Name) + ": token " + std::to_string(Bad) + " is " +
                 scalarStr((*Out)[Bad]) + ", reference " +
                 scalarStr((*Ref)[Bad]));
  }
}

//===----------------------------------------------------------------------===//
// SWP compile variants
//===----------------------------------------------------------------------===//

struct SwpVariant {
  std::string Name;
  bool UseIlp = false;
  LayoutKind Layout = LayoutKind::Shuffled;

  bool Compiled = false;
  ExecutionConfig Config;
  GpuSteadyState GSS;
  SwpSchedule Schedule;
  int64_t BaseItersRun = 0;        ///< Base iterations the functional run covered.
  std::vector<Scalar> Output;      ///< Functional output when it ran.
  bool FunctionalRan = false;
};

/// One full compile: profile -> Alg. 7 -> GPU steady state -> SWP
/// schedule -> verifier -> functional sim vs. reference. Everything runs
/// single-worker so a seed's outcome is independent of --jobs.
void compileVariant(Ctx &C, const StreamGraph &G, const SteadyState &SS,
                    uint64_t Seed, SwpVariant &V, bool InjectHere) {
  ProfileTable PT = profileGraph(C.O.Arch, G, V.Layout, /*Jobs=*/1);
  C.check();
  auto Config = selectExecutionConfig(SS, PT);
  if (!Config) {
    C.fail("config", V.Name + ": no feasible execution configuration");
    return;
  }
  GpuSteadyState GSS = computeGpuSteadyState(SS.repetitions(), Config->Threads);

  C.check();
  for (int N = 0; N < G.numNodes(); ++N) {
    if (GSS.Instances[N] * Config->Threads[N] !=
        SS.repetitions()[N] * GSS.Multiplier) {
      C.fail("gpu-steady-state",
             V.Name + ": Instances * Threads != k * Multiplier at node " +
                 G.node(N).Name);
      return;
    }
  }

  SchedulerOptions SO;
  SO.Pmax = C.O.Pmax;
  SO.TimeBudgetSeconds = C.O.TimeBudgetSeconds;
  SO.NumWorkers = 1;
  SO.UseIlp = V.UseIlp;
  if (V.UseIlp) {
    SO.IlpEvenIfHeuristicSucceeds = true;
    // Deterministic node/iteration budgets instead of wall-clock so a
    // seed behaves identically on any machine and at any --jobs.
    SO.MaxIlpNodes = 20000;
    SO.MaxLpIterations = 20000;
    SO.MaxIlpAttempts = 2;
  }

  // Hybrid: CPU cores join the flat processor set; delays for the CPU
  // class land in the config before any scheduling math runs.
  if (C.machine()) {
    computeCpuDelays(*Config, G, C.O.Cpu, C.O.Arch);
    SO.Pmax = C.machine()->totalProcs();
  }

  C.check();
  auto Sched = scheduleSwp(G, SS, *Config, GSS, SO, C.machine());
  if (!Sched) {
    C.fail("schedule", V.Name + ": no schedule found");
    return;
  }

  if (InjectHere)
    injectScheduleBug(Sched->Schedule, C.O.InjectBug);

  C.check();
  if (auto Err = verifySchedule(G, SS, *Config, GSS, Sched->Schedule,
                                C.machine())) {
    C.fail("verifier", V.Name + ": " + *Err);
    return;
  }

  V.Compiled = true;
  V.Config = std::move(*Config);
  V.GSS = GSS;
  V.Schedule = Sched->Schedule;

  // Functional execution, bounded by the firing budget.
  int64_t TotalBase = 0;
  for (int N = 0; N < G.numNodes(); ++N)
    TotalBase += GSS.Instances[N] * V.Config.Threads[N];
  if (TotalBase * C.O.Iterations > C.O.MaxFunctionalBaseFirings)
    return;

  SwpFunctionalSim Sim(G, SS, V.Config, V.GSS, V.Schedule);
  TokenType Ty = graphInputType(G);
  std::vector<Scalar> Input =
      seedInput(Seed, Ty, Sim.inputTokensNeeded(C.O.Iterations));
  C.check();
  FunctionalRunResult FR = Sim.run(Input, C.O.Iterations);
  if (!FR.Ok) {
    C.fail("functional", V.Name + ": " + FR.Error);
    return;
  }

  int64_t BaseIters = C.O.Iterations * V.GSS.Multiplier;
  std::string Err;
  auto Ref = runReference(G, SS, Input, BaseIters, Err);
  if (!Ref) {
    C.fail("functional", V.Name + ": " + Err);
    return;
  }
  if (FR.Output.size() != Ref->size()) {
    C.fail("functional", V.Name + ": produced " +
                             std::to_string(FR.Output.size()) +
                             " tokens, reference produced " +
                             std::to_string(Ref->size()));
    return;
  }
  int64_t Bad = firstMismatch(FR.Output, *Ref);
  if (Bad >= 0) {
    C.fail("functional",
           V.Name + ": token " + std::to_string(Bad) + " is " +
               scalarStr(FR.Output[Bad]) + ", reference " +
               scalarStr((*Ref)[Bad]));
    return;
  }
  V.FunctionalRan = true;
  V.BaseItersRun = BaseIters;
  V.Output = std::move(FR.Output);

  // Schema differential: the same schedule re-run under the
  // warp-specialized per-edge assignment must still reproduce the
  // interpreter reference, with the ring-queue eligibility and capacity
  // rules validated along the way (the run above already covered the
  // all-global assignment).
  if (C.O.Schema != SchemaMode::Global) {
    SchemaAssignment Warp = selectSchemaAssignment(
        C.O.Arch, G, SS, V.Config, V.GSS, V.Schedule,
        SchemaKind::WarpSpecialized, /*Coarsening=*/1, C.machine());
    C.check();
    // Hybrid invariant: a CPU-resident instance must never sit on a
    // shared-memory queue edge — there is no shared memory on the host
    // side of the machine.
    if (C.machine()) {
      int NumGpuSms = C.machine()->numGpuSms();
      for (const ChannelEdge &E : G.edges()) {
        if (!Warp.isQueue(E.Id))
          continue;
        for (const ScheduledInstance &SI : V.Schedule.Instances)
          if ((SI.Node == E.Src || SI.Node == E.Dst) && SI.Sm >= NumGpuSms)
            C.fail("schema-hybrid",
                   V.Name + ": queue edge " + std::to_string(E.Id) +
                       " touches CPU-resident node " + G.node(SI.Node).Name);
      }
    }
    if (auto Err =
            checkScheduleAgainstReference(G, SS, V.Config, V.GSS, V.Schedule,
                                          Input, C.O.Iterations, &Warp))
      C.fail("schema-functional",
             V.Name + " [warp, " + std::to_string(Warp.numQueueEdges()) +
                 " queue edges]: " + *Err);
  }
}

/// Every pair of variants must agree bit for bit on the output prefix
/// they both produced (each covers a different number of base iterations
/// when the configurations differ).
void checkCrossVariant(Ctx &C, const std::vector<SwpVariant> &Variants) {
  for (size_t A = 0; A < Variants.size(); ++A) {
    if (!Variants[A].FunctionalRan)
      continue;
    for (size_t B = A + 1; B < Variants.size(); ++B) {
      if (!Variants[B].FunctionalRan)
        continue;
      C.check();
      int64_t Bad = firstMismatch(Variants[A].Output, Variants[B].Output);
      if (Bad >= 0)
        C.fail("cross-variant",
               Variants[A].Name + " vs " + Variants[B].Name + ": token " +
                   std::to_string(Bad) + " differs (" +
                   scalarStr(Variants[A].Output[Bad]) + " vs " +
                   scalarStr(Variants[B].Output[Bad]) + ")");
    }
  }
}

//===----------------------------------------------------------------------===//
// Metamorphic: kernel coarsening
//===----------------------------------------------------------------------===//

void checkCoarseningTiming(Ctx &C, const StreamGraph &G,
                           const SwpVariant &V) {
  auto Model = createTimingModel(C.O.Timing, C.O.Arch, C.O.WarpSched);
  KernelDesc K1 =
      buildSwpKernelDesc(C.O.Arch, G, V.Config, V.Schedule, V.Layout, 1,
                         /*Schema=*/nullptr, C.machine());
  KernelDesc Kk =
      buildSwpKernelDesc(C.O.Arch, G, V.Config, V.Schedule, V.Layout,
                         static_cast<int>(C.O.CoarseningK),
                         /*Schema=*/nullptr, C.machine());
  KernelSimResult R1 = Model->simulateKernel(K1);
  KernelSimResult Rk = Model->simulateKernel(Kk);

  C.check();
  double Want = R1.Transactions * static_cast<double>(C.O.CoarseningK);
  double Tol = 1e-6 * std::max(1.0, Want);
  if (std::abs(Rk.Transactions - Want) > Tol)
    C.fail("coarsening-timing",
           V.Name + ": transactions at K=" + std::to_string(C.O.CoarseningK) +
               " are " + std::to_string(Rk.Transactions) + ", expected " +
               std::to_string(Want));

  C.check();
  if (Rk.TotalCycles + 1e-9 < R1.TotalCycles)
    C.fail("coarsening-timing",
           V.Name + ": cycles shrank under coarsening (" +
               std::to_string(R1.TotalCycles) + " -> " +
               std::to_string(Rk.TotalCycles) + ")");
}

/// Running K GPU iterations must still match the reference (the
/// functional face of "coarsening preserves outputs").
void checkCoarseningFunctional(Ctx &C, const StreamGraph &G,
                               const SteadyState &SS, uint64_t Seed,
                               const SwpVariant &V) {
  int64_t TotalBase = 0;
  for (int N = 0; N < G.numNodes(); ++N)
    TotalBase += V.GSS.Instances[N] * V.Config.Threads[N];
  if (TotalBase * C.O.CoarseningK > C.O.MaxFunctionalBaseFirings)
    return;

  C.check();
  SwpFunctionalSim Sim(G, SS, V.Config, V.GSS, V.Schedule);
  TokenType Ty = graphInputType(G);
  std::vector<Scalar> Input =
      seedInput(Seed, Ty, Sim.inputTokensNeeded(C.O.CoarseningK));
  FunctionalRunResult FR = Sim.run(Input, C.O.CoarseningK);
  if (!FR.Ok) {
    C.fail("coarsening-functional", V.Name + ": " + FR.Error);
    return;
  }
  std::string Err;
  auto Ref =
      runReference(G, SS, Input, C.O.CoarseningK * V.GSS.Multiplier, Err);
  if (!Ref) {
    C.fail("coarsening-functional", V.Name + ": " + Err);
    return;
  }
  if (FR.Output.size() != Ref->size() ||
      firstMismatch(FR.Output, *Ref) >= 0)
    C.fail("coarsening-functional",
           V.Name + ": output at K=" + std::to_string(C.O.CoarseningK) +
               " iterations no longer matches the reference");
}

//===----------------------------------------------------------------------===//
// Metamorphic: analytic/cycle layout-ordering agreement
//===----------------------------------------------------------------------===//

void checkTimingOrdering(Ctx &C, const StreamGraph &G, const SwpVariant &V) {
  auto Analytic = createTimingModel(TimingModelKind::Analytic, C.O.Arch);
  auto Cycle =
      createTimingModel(TimingModelKind::Cycle, C.O.Arch, C.O.WarpSched);

  KernelDesc Shuf =
      buildSwpKernelDesc(C.O.Arch, G, V.Config, V.Schedule,
                         LayoutKind::Shuffled, 1, /*Schema=*/nullptr,
                         C.machine());
  KernelDesc Seq =
      buildSwpKernelDesc(C.O.Arch, G, V.Config, V.Schedule,
                         LayoutKind::Sequential, 1, /*Schema=*/nullptr,
                         C.machine());

  KernelSimResult AS = Analytic->simulateKernel(Shuf);
  KernelSimResult AQ = Analytic->simulateKernel(Seq);
  KernelSimResult CS = Cycle->simulateKernel(Shuf);
  KernelSimResult CQ = Cycle->simulateKernel(Seq);

  // The cycle simulator derives transactions from actual addresses and
  // must never undercount the analytic closed form.
  C.check();
  if (CS.Transactions < AS.Transactions * 0.999 ||
      CQ.Transactions < AQ.Transactions * 0.999)
    C.fail("timing-ordering",
           V.Name + ": cycle model undercounts transactions (shuffled " +
               std::to_string(CS.Transactions) + " vs " +
               std::to_string(AS.Transactions) + ", linear " +
               std::to_string(CQ.Transactions) + " vs " +
               std::to_string(AQ.Transactions) + ")");

  // The ordering gate only applies when both models see the same memory
  // traffic; the documented divergences (e.g. serialized true peeks)
  // exceed the 5% transaction band and are excluded here.
  bool TxAgree = CS.Transactions <= AS.Transactions * 1.05 &&
                 CQ.Transactions <= AQ.Transactions * 1.05;
  if (!TxAgree)
    return;

  C.check();
  const double Clear = 1.15, Agree = 1.05;
  if (AS.TotalCycles * Clear < AQ.TotalCycles &&
      CS.TotalCycles > CQ.TotalCycles * Agree)
    C.fail("timing-ordering",
           V.Name + ": analytic clearly prefers shuffled (" +
               std::to_string(AS.TotalCycles) + " vs " +
               std::to_string(AQ.TotalCycles) +
               ") but the cycle model disagrees (" +
               std::to_string(CS.TotalCycles) + " vs " +
               std::to_string(CQ.TotalCycles) + ")");
  if (AQ.TotalCycles * Clear < AS.TotalCycles &&
      CQ.TotalCycles > CS.TotalCycles * Agree)
    C.fail("timing-ordering",
           V.Name + ": analytic clearly prefers linear (" +
               std::to_string(AQ.TotalCycles) + " vs " +
               std::to_string(AS.TotalCycles) +
               ") but the cycle model disagrees (" +
               std::to_string(CQ.TotalCycles) + " vs " +
               std::to_string(CS.TotalCycles) + ")");
}

//===----------------------------------------------------------------------===//
// Spec-level: rate scaling
//===----------------------------------------------------------------------===//

void checkRateScaling(Ctx &C, const GraphSpec &Spec) {
  const int64_t Scale = C.O.RateScaleC;
  GraphSpec Scaled = scaleSpecRates(Spec, Scale);
  StreamGraph G = buildGraph(Spec);
  StreamGraph GS = buildGraph(Scaled);

  C.check();
  if (auto Err = GS.validate()) {
    C.fail("rate-scaling", "scaled graph no longer validates: " + *Err);
    return;
  }
  auto SS = SteadyState::compute(G);
  auto SSs = SteadyState::compute(GS);
  if (!SS || !SSs) {
    C.fail("rate-scaling", "scaled graph no longer balances");
    return;
  }
  if (G.numNodes() != GS.numNodes() || G.numEdges() != GS.numEdges()) {
    C.fail("rate-scaling", "scaling changed the graph structure");
    return;
  }

  // Scaling multiplies every port rate by C except on duplicate
  // splitters (which consume one token and copy it, weight-free). The
  // balance equations k_u * prod = k_v * cons then force one ratio
  // R = k'/k shared by every rate-scaled node (filters, joiners,
  // round-robin splitters), with duplicate splitters at R*C, and every
  // edge's steady-state traffic at exactly R*C. R is a rational picked
  // up by the primitive-vector renormalization, so everything is checked
  // by cross-multiplication against a reference node.
  C.check();
  // Rate-unscaled nodes: duplicate splitters, plus the pop-1/push-1
  // boundary identities flatten() wraps around splitter/joiner entry and
  // exit points (synthesized after the spec, so scaling never sees them).
  auto IsDup = [&](int N) {
    const GraphNode &Node = G.node(N);
    if (Node.isSplitter() && Node.SplitKind == SplitterKind::Duplicate)
      return true;
    return Node.isFilter() &&
           (Node.Name == "__input" || Node.Name == "__output");
  };
  int Ref = -1;
  for (int N = 0; N < G.numNodes() && Ref < 0; ++N)
    if (!IsDup(N))
      Ref = N; // Always hits: every graph has at least one spec filter.
  int64_t Num = SSs->repetitions()[Ref]; // R = Num / Den.
  int64_t Den = SS->repetitions()[Ref];
  for (int N = 0; N < G.numNodes(); ++N) {
    int64_t K = SS->repetitions()[N];
    int64_t Ks = SSs->repetitions()[N];
    int64_t Want = IsDup(N) ? K * Num * Scale : K * Num;
    if (Ks * Den != Want) {
      C.fail("rate-scaling",
             "node " + G.node(N).Name + " repetitions went " +
                 std::to_string(K) + " -> " + std::to_string(Ks) +
                 ", breaking the scaling law");
      return;
    }
  }
  for (int E = 0; E < G.numEdges(); ++E)
    if (SSs->tokensPerIteration(E) * Den !=
        SS->tokensPerIteration(E) * Num * Scale) {
      C.fail("rate-scaling",
             "edge " + std::to_string(E) + " traffic scaled non-uniformly");
      return;
    }
}

//===----------------------------------------------------------------------===//
// Spec-level: DSL round trip
//===----------------------------------------------------------------------===//

void checkRoundTrip(Ctx &C, const GraphSpec &Spec) {
  StreamPtr S = buildStream(Spec);
  C.check();
  DslPrintResult P = printStreamDsl(*S);
  if (!P.Ok) {
    C.fail("roundtrip", "printer refused the program: " + P.Error);
    return;
  }
  ParseDiagnostic Diag;
  StreamPtr Re = parseStreamProgram(P.Text, &Diag);
  if (!Re) {
    C.fail("roundtrip", "printed program does not reparse: " + Diag.str());
    return;
  }

  StreamGraph G = flatten(*S);
  StreamGraph GR = flatten(*Re);
  if (G.numNodes() != GR.numNodes() || G.numEdges() != GR.numEdges()) {
    C.fail("roundtrip", "reparsed graph has different structure");
    return;
  }
  auto SS = SteadyState::compute(G);
  auto SSr = SteadyState::compute(GR);
  if (!SS || !SSr || SS->repetitions() != SSr->repetitions()) {
    C.fail("roundtrip", "reparsed graph has different steady-state rates");
    return;
  }

  const int64_t Iters = 2;
  TokenType Ty = graphInputType(G);
  std::vector<Scalar> Input =
      seedInput(Spec.Seed, Ty, std::max(SS->inputTokensNeeded(Iters),
                                        SSr->inputTokensNeeded(Iters)));
  std::string Err;
  auto Ref = runReference(G, *SS, Input, Iters, Err);
  auto RefR = runReference(GR, *SSr, Input, Iters, Err);
  if (!Ref || !RefR) {
    C.fail("roundtrip", "reference run failed: " + Err);
    return;
  }
  if (Ref->size() != RefR->size() || firstMismatch(*Ref, *RefR) >= 0)
    C.fail("roundtrip", "reparsed program computes different output");
}

} // namespace

//===----------------------------------------------------------------------===//
// Bug injection
//===----------------------------------------------------------------------===//

bool injectScheduleBug(SwpSchedule &S, ScheduleBugKind Kind) {
  if (Kind == ScheduleBugKind::None || S.Instances.empty())
    return false;
  switch (Kind) {
  case ScheduleBugKind::None:
    return false;
  case ScheduleBugKind::SwapSlots: {
    // Swap the slots of the first same-SM pair with distinct o.
    for (size_t A = 0; A < S.Instances.size(); ++A)
      for (size_t B = A + 1; B < S.Instances.size(); ++B)
        if (S.Instances[A].Sm == S.Instances[B].Sm &&
            S.Instances[A].O != S.Instances[B].O) {
          std::swap(S.Instances[A].O, S.Instances[B].O);
          return true;
        }
    return false;
  }
  case ScheduleBugKind::ExceedII:
    S.Instances.front().O = S.II + 1.0;
    return true;
  case ScheduleBugKind::DoubleAssign:
    S.Instances.push_back(S.Instances.front());
    return true;
  case ScheduleBugKind::BadSm:
    S.Instances.front().Sm = S.Pmax;
    return true;
  case ScheduleBugKind::DropInstance:
    S.Instances.pop_back();
    return true;
  }
  return false;
}

const char *scheduleBugKindName(ScheduleBugKind Kind) {
  switch (Kind) {
  case ScheduleBugKind::None:
    return "none";
  case ScheduleBugKind::SwapSlots:
    return "swap-slots";
  case ScheduleBugKind::ExceedII:
    return "exceed-ii";
  case ScheduleBugKind::DoubleAssign:
    return "double-assign";
  case ScheduleBugKind::BadSm:
    return "bad-sm";
  case ScheduleBugKind::DropInstance:
    return "drop-instance";
  }
  return "none";
}

std::optional<ScheduleBugKind> parseScheduleBugKind(std::string_view Name) {
  for (ScheduleBugKind K :
       {ScheduleBugKind::None, ScheduleBugKind::SwapSlots,
        ScheduleBugKind::ExceedII, ScheduleBugKind::DoubleAssign,
        ScheduleBugKind::BadSm, ScheduleBugKind::DropInstance})
    if (Name == scheduleBugKindName(K))
      return K;
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// Entry points
//===----------------------------------------------------------------------===//

OracleReport runOraclesOnStream(const Stream &Root, uint64_t Seed,
                                const OracleOptions &O) {
  OracleReport R;
  R.Seed = Seed;
  Ctx C{O, R, std::nullopt};
  if (O.Machine == MachineMode::Hybrid)
    C.Machine = MachineModel::hybrid(O.Arch, O.Pmax, O.Cpu,
                                     /*MaxCoarsen=*/8);

  StreamGraph G = flatten(Root);
  auto SS = SteadyState::compute(G);
  C.check();
  if (!SS) {
    C.fail("rates", "graph does not balance");
    return R;
  }

  checkStructure(C, G, *SS);
  checkSequential(C, G, *SS, Seed);

  // Stateful programs stop here: the GPU pipeline rejects them by design
  // (paper Section II-B), so only the sequential oracles apply.
  if (G.hasStatefulFilter())
    return R;

  auto makeVariant = [](const char *Name, bool UseIlp, LayoutKind Layout) {
    SwpVariant V;
    V.Name = Name;
    V.UseIlp = UseIlp;
    V.Layout = Layout;
    return V;
  };
  std::vector<SwpVariant> Variants;
  Variants.push_back(makeVariant("heuristic/shuffled", false,
                                 LayoutKind::Shuffled));
  Variants.push_back(makeVariant("heuristic/linear", false,
                                 LayoutKind::Sequential));
  if (O.RunIlp) {
    Variants.push_back(makeVariant("ilp/shuffled", true, LayoutKind::Shuffled));
    Variants.push_back(makeVariant("ilp/linear", true, LayoutKind::Sequential));
  }

  for (size_t I = 0; I < Variants.size(); ++I)
    compileVariant(C, G, *SS, Seed, Variants[I],
                   /*InjectHere=*/I == 0 && O.InjectBug != ScheduleBugKind::None);

  checkCrossVariant(C, Variants);

  const SwpVariant &Primary = Variants.front();
  if (Primary.Compiled && O.RunMetamorphic) {
    checkCoarseningTiming(C, G, Primary);
    checkCoarseningFunctional(C, G, *SS, Seed, Primary);
  }
  if (Primary.Compiled && O.RunTimingOrdering)
    checkTimingOrdering(C, G, Primary);

  return R;
}

OracleReport runOraclesOnSpec(const GraphSpec &Spec, const OracleOptions &O) {
  StreamPtr S = buildStream(Spec);
  OracleReport R = runOraclesOnStream(*S, Spec.Seed, O);
  R.Description = describeSpec(Spec);

  Ctx C{O, R, std::nullopt};
  checkRoundTrip(C, Spec);
  if (O.RunMetamorphic)
    checkRateScaling(C, Spec);
  return R;
}

OracleReport runOracles(uint64_t Seed, const GraphGenOptions &Gen,
                        const OracleOptions &O) {
  return runOraclesOnSpec(generateGraphSpec(Seed, Gen), O);
}

} // namespace testing
} // namespace sgpu
