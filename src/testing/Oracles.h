//===- testing/Oracles.h - Differential & metamorphic oracles ---*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The correctness oracles behind `sgpu-fuzz`. The compiler has many
/// independently-implemented answers to the same questions — ILP vs.
/// heuristic scheduling, shuffled vs. linear layouts, SAS vs. min-latency
/// sequential schedules, interpreter vs. functional-sim execution,
/// analytic vs. cycle timing — and every generated program is pushed
/// through all of them and cross-checked:
///
/// Differential oracles:
///  - structure/rates: graph validates, the rate solver balances it, and
///    SteadyState agrees with computeRepetitionVector;
///  - sequential: SAS and min-latency schedules, executed step by step,
///    reproduce the reference interpreter output bit for bit;
///  - swp variants: every {heuristic, ILP} x {shuffled, linear} compile
///    yields a verifier-clean schedule whose functional-sim output equals
///    the reference, and all variants agree pairwise on common prefixes;
///  - gpu steady state: Instances[v] * Threads[v] == k_v * Multiplier.
///
/// Metamorphic oracles:
///  - coarsening: iterating the kernel K times scales analytic/cycle
///    transactions by exactly K and never shrinks cycles; running K GPU
///    iterations still matches the reference;
///  - rate scaling: multiplying every rate by C preserves the repetition
///    vector structure and scales per-edge traffic uniformly;
///  - timing ordering: whenever the analytic and cycle models agree on
///    transaction counts (within 5%), they must agree on which buffer
///    layout is faster (1.15x clear-preference / 1.05x agreement margins,
///    the cyclesim cross-validation gates). Known divergence: the cycle
///    simulator serializes true peeks, so peeking graphs naturally fall
///    out via the transaction gate.
///
/// Round-trip oracle (spec-level): printing the program through the DSL
/// printer and reparsing yields a graph with identical structure, rates
/// and reference output — this is also what makes minimized `.str`
/// repros trustworthy.
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_TESTING_ORACLES_H
#define SGPU_TESTING_ORACLES_H

#include "core/Compiler.h"
#include "testing/GraphGen.h"

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace sgpu {
namespace testing {

/// Deliberate schedule corruptions, for validating that the oracles (and
/// the ScheduleVerifier behind them) actually catch scheduler bugs.
enum class ScheduleBugKind : uint8_t {
  None,
  SwapSlots,    ///< Swap the o slots of two same-SM instances.
  ExceedII,     ///< Move an instance past the II (breaks constraint 4).
  DoubleAssign, ///< Schedule one instance twice.
  BadSm,        ///< Assign an instance to SM Pmax.
  DropInstance  ///< Remove an instance from the schedule.
};

/// Mutates \p S in place. Returns false when the schedule is too small
/// for the requested corruption (nothing mutated).
bool injectScheduleBug(SwpSchedule &S, ScheduleBugKind Kind);

const char *scheduleBugKindName(ScheduleBugKind Kind);
std::optional<ScheduleBugKind> parseScheduleBugKind(std::string_view Name);

/// Oracle knobs. The defaults keep one seed's full check under ~a second
/// so a 200-seed CI sweep stays bounded.
struct OracleOptions {
  GpuArch Arch = GpuArch::geForce8800GTS512();
  int Pmax = 4;
  /// Machine under differential test (`--machine`): Hybrid adds
  /// Cpu.NumCores host cores to the processor set and runs the whole
  /// compile trajectory through the class-indexed hybrid formulation —
  /// still against the same interpreter reference (the assignment moves
  /// work between classes, never changes the program's outputs).
  MachineMode Machine = MachineMode::Gpu;
  /// CPU classes of the hybrid machine (cores, cache, clock).
  CpuModel Cpu;
  double TimeBudgetSeconds = 0.25;
  /// Also compile through the exact ILP solver (doubles the variants).
  bool RunIlp = true;
  bool RunMetamorphic = true;
  bool RunTimingOrdering = true;
  /// Timing model the kernel-level checks run against.
  TimingModelKind Timing = TimingModelKind::Analytic;
  /// Kernel schema under differential test (`--schema`): when not
  /// Global, every compiled schedule also gets the warp-specialized
  /// per-edge assignment computed and its functional run repeated with
  /// the queue semantics validated — both schemas against the same
  /// interpreter reference.
  SchemaMode Schema = SchemaMode::Global;
  /// Warp-scheduler policy for every cycle model the oracles build.
  WarpSchedPolicy WarpSched = WarpSchedPolicy::RoundRobin;
  /// Skip functional execution when one GPU iteration covers more base
  /// firings than this (keeps degenerate steady states bounded).
  int64_t MaxFunctionalBaseFirings = 40000;
  /// GPU iterations per functional run.
  int64_t Iterations = 1;
  /// K of the coarsening metamorphic checks.
  int64_t CoarseningK = 3;
  /// C of the rate-scaling metamorphic check.
  int64_t RateScaleC = 2;
  /// Corrupt the first compiled schedule before verifying it; the run
  /// must then report at least one violation (fault-injection mode).
  ScheduleBugKind InjectBug = ScheduleBugKind::None;
};

/// One oracle violation.
struct OracleFailure {
  std::string Oracle;  ///< Stable oracle name ("verifier", "functional", ...).
  std::string Message; ///< Human-readable details.
};

/// Outcome of running the oracles over one program.
struct OracleReport {
  uint64_t Seed = 0;
  std::string Description; ///< describeSpec() when spec-derived.
  int ChecksRun = 0;
  std::vector<OracleFailure> Failures;

  bool ok() const { return Failures.empty(); }
  /// The first failure's oracle name, or "" (the reducer's match key).
  std::string firstOracle() const {
    return Failures.empty() ? std::string() : Failures.front().Oracle;
  }
};

/// Runs every stream-level oracle over \p Root. \p Seed only labels the
/// report and derives the deterministic program input.
OracleReport runOraclesOnStream(const Stream &Root, uint64_t Seed,
                                const OracleOptions &O = {});

/// Runs the stream-level oracles plus the spec-level ones (DSL round
/// trip, rate scaling) over a generated program.
OracleReport runOraclesOnSpec(const GraphSpec &Spec,
                              const OracleOptions &O = {});

/// generateGraphSpec + runOraclesOnSpec.
OracleReport runOracles(uint64_t Seed, const GraphGenOptions &Gen = {},
                        const OracleOptions &O = {});

} // namespace testing
} // namespace sgpu

#endif // SGPU_TESTING_ORACLES_H
