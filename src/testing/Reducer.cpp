//===- testing/Reducer.cpp - Delta-debugging graph minimizer --------------===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//

#include "testing/Reducer.h"

#include <cassert>

namespace sgpu {
namespace testing {

namespace {

/// A position in the spec tree, as child indices from the root.
using Path = std::vector<int>;

StreamSpec *nodeAt(StreamSpec &Root, const Path &P) {
  StreamSpec *S = &Root;
  for (int I : P)
    S = &S->Children[static_cast<size_t>(I)];
  return S;
}

const StreamSpec *nodeAt(const StreamSpec &Root, const Path &P) {
  return nodeAt(const_cast<StreamSpec &>(Root), P);
}

void collectPaths(const StreamSpec &S, Path &Cur, std::vector<Path> &Out) {
  Out.push_back(Cur);
  for (size_t I = 0; I < S.Children.size(); ++I) {
    Cur.push_back(static_cast<int>(I));
    collectPaths(S.Children[I], Cur, Out);
    Cur.pop_back();
  }
}

std::vector<Path> allPaths(const StreamSpec &Root) {
  std::vector<Path> Out;
  Path Cur;
  collectPaths(Root, Cur, Out);
  return Out;
}

/// One shrink candidate: a copy of \p Spec with a single transformation
/// applied at one position. Generation order is the priority order —
/// structural shrinks (which remove whole filters) come before local
/// filter simplifications.
std::vector<GraphSpec> candidates(const GraphSpec &Spec) {
  std::vector<GraphSpec> Out;
  std::vector<Path> Paths = allPaths(Spec.Root);

  // 1. Replace a composite by one of its children (largest cut first).
  for (const Path &P : Paths) {
    const StreamSpec *S = nodeAt(Spec.Root, P);
    if (S->K == StreamSpec::Kind::Filter)
      continue;
    for (size_t CI = 0; CI < S->Children.size(); ++CI) {
      GraphSpec Cand = Spec;
      StreamSpec *N = nodeAt(Cand.Root, P);
      StreamSpec Child = std::move(N->Children[CI]);
      *N = std::move(Child);
      Out.push_back(std::move(Cand));
    }
  }

  // 2. Drop one stage from a pipeline of >= 2.
  for (const Path &P : Paths) {
    const StreamSpec *S = nodeAt(Spec.Root, P);
    if (S->K != StreamSpec::Kind::Pipeline || S->Children.size() < 2)
      continue;
    for (size_t CI = 0; CI < S->Children.size(); ++CI) {
      GraphSpec Cand = Spec;
      StreamSpec *N = nodeAt(Cand.Root, P);
      N->Children.erase(N->Children.begin() +
                        static_cast<std::ptrdiff_t>(CI));
      Out.push_back(std::move(Cand));
    }
  }

  // 3. Per-filter simplifications.
  for (const Path &P : Paths) {
    const StreamSpec *S = nodeAt(Spec.Root, P);
    if (S->K == StreamSpec::Kind::Filter) {
      const FilterSpec &F = S->F;
      if (F.Peek > F.Pop) {
        GraphSpec Cand = Spec;
        nodeAt(Cand.Root, P)->F.Peek = F.Pop;
        Out.push_back(std::move(Cand));
      }
      if (F.Pop != 1 || F.Push != 1) {
        GraphSpec Cand = Spec;
        FilterSpec &CF = nodeAt(Cand.Root, P)->F;
        CF.Pop = 1;
        CF.Push = 1;
        CF.Peek = std::max<int64_t>(1, CF.Peek - F.Pop + 1);
        Out.push_back(std::move(Cand));
      }
      if (F.Stateful) {
        GraphSpec Cand = Spec;
        nodeAt(Cand.Root, P)->F.Stateful = false;
        Out.push_back(std::move(Cand));
      }
      if (F.Body != 0) {
        GraphSpec Cand = Spec;
        nodeAt(Cand.Root, P)->F.Body = 0;
        Out.push_back(std::move(Cand));
      }
      if (F.AccInit != 0) {
        GraphSpec Cand = Spec;
        nodeAt(Cand.Root, P)->F.AccInit = 0;
        Out.push_back(std::move(Cand));
      }
      continue;
    }
    if (S->K == StreamSpec::Kind::SplitJoin) {
      bool NonUnit = false;
      for (int64_t W : S->SplitWeights)
        NonUnit |= W != 1;
      for (int64_t W : S->JoinWeights)
        NonUnit |= W != 1;
      if (NonUnit) {
        GraphSpec Cand = Spec;
        StreamSpec *N = nodeAt(Cand.Root, P);
        for (int64_t &W : N->SplitWeights)
          W = 1;
        for (int64_t &W : N->JoinWeights)
          W = 1;
        Out.push_back(std::move(Cand));
      }
    }
  }

  return Out;
}

} // namespace

ReduceResult reduceSpec(const GraphSpec &Spec, const ReproPredicate &StillFails,
                        const ReducerOptions &O) {
  assert(StillFails(Spec) && "reducing a spec that does not fail");
  ReduceResult R;
  R.Spec = Spec;

  bool Progress = true;
  while (Progress && R.CandidatesTried < O.MaxCandidates) {
    Progress = false;
    for (GraphSpec &Cand : candidates(R.Spec)) {
      if (R.CandidatesTried >= O.MaxCandidates)
        break;
      ++R.CandidatesTried;
      if (StillFails(Cand)) {
        R.Spec = std::move(Cand);
        ++R.StepsApplied;
        Progress = true;
        break; // Restart the scan from the shrunk spec.
      }
    }
  }
  return R;
}

} // namespace testing
} // namespace sgpu
