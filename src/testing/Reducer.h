//===- testing/Reducer.h - Delta-debugging graph minimizer ------*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shrinks a failing program spec while an oracle violation keeps
/// reproducing, delta-debugging style: structural shrinks first (replace
/// a composite by one child, drop pipeline stages, collapse split-joins),
/// then per-filter simplifications (drop peeking, rates to 1, trivial
/// bodies, zero accumulator seeds, weights to 1). Greedy to a fixpoint:
/// each accepted candidate restarts the scan, so the result is 1-minimal
/// with respect to the transformation set.
///
/// The caller's predicate decides what "still failing" means; `sgpu-fuzz`
/// pins it to the *first* failing oracle's name so the shrink cannot
/// drift onto an unrelated violation (e.g. from an output mismatch to a
/// rate error introduced by the shrink itself).
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_TESTING_REDUCER_H
#define SGPU_TESTING_REDUCER_H

#include "testing/GraphGen.h"

#include <functional>

namespace sgpu {
namespace testing {

/// Returns true when the candidate spec still reproduces the failure
/// being minimized.
using ReproPredicate = std::function<bool(const GraphSpec &)>;

struct ReducerOptions {
  /// Upper bound on predicate evaluations (each one typically replays
  /// the full oracle suite).
  int MaxCandidates = 2000;
};

struct ReduceResult {
  GraphSpec Spec;          ///< The minimized spec (still failing).
  int StepsApplied = 0;    ///< Accepted shrink steps.
  int CandidatesTried = 0; ///< Predicate evaluations performed.
};

/// Minimizes \p Spec under \p StillFails. \p Spec itself must satisfy the
/// predicate (asserted); the result always does.
ReduceResult reduceSpec(const GraphSpec &Spec, const ReproPredicate &StillFails,
                        const ReducerOptions &O = {});

} // namespace testing
} // namespace sgpu

#endif // SGPU_TESTING_REDUCER_H
