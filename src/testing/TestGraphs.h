//===- testing/TestGraphs.h - Shared fixtures for tests ---------*- C++ -*-===//
//
// Part of the streamit-gpu-swp project, reproducing "Software Pipelined
// Execution of Stream Programs on GPUs" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small filters and graphs reused across the unit tests and the fuzzing
/// harness. Promoted from tests/TestGraphs.h so the src/testing library
/// (GraphGen/Oracles/Reducer) and the test binaries share one set of
/// fixtures.
///
//===----------------------------------------------------------------------===//

#ifndef SGPU_TESTING_TESTGRAPHS_H
#define SGPU_TESTING_TESTGRAPHS_H

#include "ir/FilterBuilder.h"
#include "ir/Stream.h"
#include "ir/StreamGraph.h"

#include <vector>

namespace sgpu {
namespace testing {

/// pop 1, push 1: multiplies by an integer constant.
inline FilterPtr makeScaleInt(const std::string &Name, int64_t Factor) {
  FilterBuilder B(Name, TokenType::Int, TokenType::Int);
  B.setRates(1, 1);
  B.push(B.mul(B.pop(), B.litI(Factor)));
  return B.build();
}

/// pop 1, push 1: adds a float constant.
inline FilterPtr makeOffsetFloat(const std::string &Name, double Offset) {
  FilterBuilder B(Name, TokenType::Float, TokenType::Float);
  B.setRates(1, 1);
  B.push(B.add(B.pop(), B.litF(Offset)));
  return B.build();
}

/// The paper's Figure 4 example: A pushes 2 per firing, B pops 3.
inline FilterPtr makeFig4A() {
  FilterBuilder B("A", TokenType::Int, TokenType::Int);
  B.setRates(1, 2);
  const VarDecl *V = B.declVar("v", B.pop());
  B.push(B.ref(V));
  B.push(B.mul(B.ref(V), B.litI(10)));
  return B.build();
}

inline FilterPtr makeFig4B() {
  FilterBuilder B("B", TokenType::Int, TokenType::Int);
  B.setRates(3, 1);
  const VarDecl *S = B.declVar("s", B.pop());
  B.assign(S, B.add(B.ref(S), B.pop()));
  B.assign(S, B.add(B.ref(S), B.pop()));
  B.push(B.ref(S));
  return B.build();
}

/// pop 1, push 1, peek W: moving sum of a W-token window.
inline FilterPtr makeMovingSum(const std::string &Name, int64_t W) {
  FilterBuilder B(Name, TokenType::Float, TokenType::Float);
  B.setRates(1, 1, W);
  const VarDecl *Sum = B.declVar("sum", B.litF(0.0));
  const VarDecl *I = B.beginFor("i", B.litI(0), B.litI(W));
  B.assign(Sum, B.add(B.ref(Sum), B.peek(B.ref(I))));
  B.endFor();
  B.push(B.ref(Sum));
  B.popDiscard();
  return B.build();
}

/// A three-stage int pipeline: x -> 2x -> 2x+... (scale 2, scale 3,
/// scale 5), overall x * 30.
inline StreamGraph makeScalePipeline() {
  std::vector<StreamPtr> Parts;
  Parts.push_back(filterStream(makeScaleInt("S2", 2)));
  Parts.push_back(filterStream(makeScaleInt("S3", 3)));
  Parts.push_back(filterStream(makeScaleInt("S5", 5)));
  return flatten(*pipelineStream(std::move(Parts)));
}

/// The Figure 4 multirate pipeline A(1->2) -> B(3->1).
inline StreamGraph makeFig4Graph() {
  std::vector<StreamPtr> Parts;
  Parts.push_back(filterStream(makeFig4A()));
  Parts.push_back(filterStream(makeFig4B()));
  return flatten(*pipelineStream(std::move(Parts)));
}

/// Duplicate split into (x*2, x*3) joined round-robin.
inline StreamGraph makeDupSplitGraph() {
  std::vector<StreamPtr> Branches;
  Branches.push_back(filterStream(makeScaleInt("Twice", 2)));
  Branches.push_back(filterStream(makeScaleInt("Thrice", 3)));
  std::vector<StreamPtr> Parts;
  Parts.push_back(duplicateSplitJoin(std::move(Branches), {1, 1}));
  Parts.push_back(filterStream(makeScaleInt("Out", 1)));
  return flatten(*pipelineStream(std::move(Parts)));
}

/// A deep single-rate int pipeline of \p Stages scale filters; every
/// stage depends on the previous one, which makes it the canonical
/// fixture for dependence-order schedule mutations.
inline StreamGraph makeDeepScalePipeline(int Stages) {
  std::vector<StreamPtr> Parts;
  for (int I = 0; I < Stages; ++I)
    Parts.push_back(
        filterStream(makeScaleInt("D" + std::to_string(I), 2 + I % 3)));
  return flatten(*pipelineStream(std::move(Parts)));
}

} // namespace testing
} // namespace sgpu

#endif // SGPU_TESTING_TESTGRAPHS_H
