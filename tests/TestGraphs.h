//===- tests/TestGraphs.h - Shared fixtures for the test suite --*- C++ -*-===//
//
// The fixtures moved into the reusable src/testing library so the fuzzing
// harness can use them too; this shim keeps the historical include path
// working for the test binaries.
//
//===----------------------------------------------------------------------===//

#ifndef SGPU_TESTS_TESTGRAPHS_H
#define SGPU_TESTS_TESTGRAPHS_H

#include "testing/TestGraphs.h"

#endif // SGPU_TESTS_TESTGRAPHS_H
