//===- tests/benchmarks_test.cpp - Table I benchmark validation -------------===//

#include "benchmarks/Registry.h"

#include "ir/Interpreter.h"
#include "sdf/RateSolver.h"
#include "sdf/SteadyState.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

using namespace sgpu;
using namespace sgpu::bench;

namespace {

/// Runs one steady-state iteration (plus init) and returns the output.
std::vector<Scalar> runOnce(const StreamGraph &G,
                            const std::vector<Scalar> &Input,
                            int64_t Iterations = 1) {
  auto SS = SteadyState::compute(G);
  EXPECT_TRUE(SS.has_value());
  GraphInterpreter GI(G);
  GI.feedInput(Input);
  auto Order = G.topologicalOrder();
  EXPECT_TRUE(Order.has_value());
  for (int V : *Order)
    EXPECT_EQ(GI.fireNode(V, SS->initFirings()[V]), SS->initFirings()[V]);
  EXPECT_TRUE(GI.runSteadyState(SS->repetitions(), Iterations));
  return GI.output();
}

} // namespace

class BenchmarkStructure
    : public ::testing::TestWithParam<BenchmarkSpec> {};

TEST_P(BenchmarkStructure, FlattensAndValidates) {
  const BenchmarkSpec &Spec = GetParam();
  StreamGraph G = flatten(*Spec.Build());
  auto Err = G.validate();
  EXPECT_FALSE(Err.has_value()) << *Err;
  EXPECT_TRUE(G.topologicalOrder().has_value());
  EXPECT_GE(G.numNodes(), 5) << "benchmarks are not toy graphs";
}

TEST_P(BenchmarkStructure, RatesBalance) {
  const BenchmarkSpec &Spec = GetParam();
  StreamGraph G = flatten(*Spec.Build());
  auto Reps = computeRepetitionVector(G);
  ASSERT_TRUE(Reps.has_value());
  EXPECT_TRUE(isBalanced(G, *Reps));
}

TEST_P(BenchmarkStructure, PeekingFilterCountMatchesTableI) {
  const BenchmarkSpec &Spec = GetParam();
  StreamGraph G = flatten(*Spec.Build());
  EXPECT_EQ(G.numPeekingFilters(), Spec.PaperPeeking)
      << Spec.Name << ": Table I peeking-filter column";
}

TEST_P(BenchmarkStructure, ExecutesOneSteadyState) {
  const BenchmarkSpec &Spec = GetParam();
  StreamGraph G = flatten(*Spec.Build());
  auto SS = SteadyState::compute(G);
  ASSERT_TRUE(SS.has_value());
  std::vector<Scalar> Input =
      makeBenchmarkInput(Spec, SS->inputTokensNeeded(1));
  std::vector<Scalar> Out = runOnce(G, Input);
  EXPECT_EQ(static_cast<int64_t>(Out.size()),
            SS->outputTokensPerIteration() +
                SS->initFirings()[G.exitNode()] *
                    G.node(G.exitNode()).TheFilter->pushRate());
}

INSTANTIATE_TEST_SUITE_P(
    TableI, BenchmarkStructure, ::testing::ValuesIn(allBenchmarks()),
    [](const ::testing::TestParamInfo<BenchmarkSpec> &Info) {
      return Info.param.Name;
    });

//===----------------------------------------------------------------------===//
// Semantic spot checks per benchmark.
//===----------------------------------------------------------------------===//

TEST(BitonicSemantics, SortsEveryFrame) {
  StreamGraph G = flatten(*buildBitonic());
  Rng R(3);
  std::vector<Scalar> Input;
  for (int I = 0; I < 8 * 4; ++I)
    Input.push_back(Scalar::makeInt(R.nextInt(1000)));
  std::vector<Scalar> Out = runOnce(G, Input, 4);
  ASSERT_EQ(Out.size(), Input.size());
  for (int F = 0; F < 4; ++F) {
    std::vector<int64_t> Frame, Sorted;
    for (int I = 0; I < 8; ++I)
      Frame.push_back(Out[F * 8 + I].asInt());
    for (int I = 0; I < 8; ++I)
      Sorted.push_back(Input[F * 8 + I].asInt());
    std::sort(Sorted.begin(), Sorted.end());
    EXPECT_EQ(Frame, Sorted) << "frame " << F;
  }
}

TEST(BitonicSemantics, RecursiveVariantSortsToo) {
  StreamGraph G = flatten(*buildBitonicRec());
  Rng R(5);
  std::vector<Scalar> Input;
  for (int I = 0; I < 8 * 3; ++I)
    Input.push_back(Scalar::makeInt(R.nextInt(1000)));
  std::vector<Scalar> Out = runOnce(G, Input, 3);
  ASSERT_EQ(Out.size(), Input.size());
  for (int F = 0; F < 3; ++F) {
    std::vector<int64_t> Frame, Sorted;
    for (int I = 0; I < 8; ++I)
      Frame.push_back(Out[F * 8 + I].asInt());
    for (int I = 0; I < 8; ++I)
      Sorted.push_back(Input[F * 8 + I].asInt());
    std::sort(Sorted.begin(), Sorted.end());
    EXPECT_EQ(Frame, Sorted) << "frame " << F;
  }
}

TEST(DctSemantics, ConstantBlockConcentratesDc) {
  StreamGraph G = flatten(*buildDct());
  std::vector<Scalar> Input(64, Scalar::makeFloat(1.0));
  std::vector<Scalar> Out = runOnce(G, Input);
  ASSERT_EQ(Out.size(), 64u);
  // All energy in the DC coefficient: DCT(1-block)[0][0] = 8, rest ~0.
  EXPECT_NEAR(Out[0].asFloat(), 8.0, 1e-9);
  for (int I = 1; I < 64; ++I)
    EXPECT_NEAR(Out[I].asFloat(), 0.0, 1e-9) << "coefficient " << I;
}

TEST(DctSemantics, PreservesEnergy) {
  StreamGraph G = flatten(*buildDct());
  Rng R(7);
  std::vector<Scalar> Input;
  double EnergyIn = 0.0;
  for (int I = 0; I < 64; ++I) {
    double V = R.nextFloat(1.0f);
    Input.push_back(Scalar::makeFloat(V));
    EnergyIn += V * V;
  }
  std::vector<Scalar> Out = runOnce(G, Input);
  double EnergyOut = 0.0;
  for (const Scalar &S : Out)
    EnergyOut += S.asFloat() * S.asFloat();
  EXPECT_NEAR(EnergyOut, EnergyIn, 1e-9 * std::max(1.0, EnergyIn))
      << "orthonormal transform preserves energy";
}

TEST(DesSemantics, BitsStayBits) {
  StreamGraph G = flatten(*buildDes());
  const BenchmarkSpec *Spec = findBenchmark("DES");
  ASSERT_NE(Spec, nullptr);
  std::vector<Scalar> Input = makeBenchmarkInput(*Spec, 64 * 2);
  std::vector<Scalar> Out = runOnce(G, Input, 2);
  ASSERT_EQ(Out.size(), Input.size());
  for (const Scalar &S : Out)
    EXPECT_TRUE(S.asInt() == 0 || S.asInt() == 1);
}

TEST(DesSemantics, DeterministicAndInputSensitive) {
  StreamGraph G1 = flatten(*buildDes());
  StreamGraph G2 = flatten(*buildDes());
  const BenchmarkSpec *Spec = findBenchmark("DES");
  std::vector<Scalar> A = makeBenchmarkInput(*Spec, 64, 1);
  std::vector<Scalar> B = makeBenchmarkInput(*Spec, 64, 9);
  std::vector<Scalar> OutA1 = runOnce(G1, A);
  std::vector<Scalar> OutA2 = runOnce(G2, A);
  ASSERT_EQ(OutA1.size(), OutA2.size());
  for (size_t I = 0; I < OutA1.size(); ++I)
    EXPECT_EQ(OutA1[I].asInt(), OutA2[I].asInt());
  StreamGraph G3 = flatten(*buildDes());
  std::vector<Scalar> OutB = runOnce(G3, B);
  int Diff = 0;
  for (size_t I = 0; I < OutA1.size(); ++I)
    Diff += OutA1[I].asInt() != OutB[I].asInt();
  EXPECT_GT(Diff, 8) << "different plaintext must diffuse";
}

TEST(FftSemantics, MatchesDirectDft) {
  StreamGraph G = flatten(*buildFft());
  Rng R(13);
  constexpr int N = 16;
  std::vector<double> Re(N), Im(N);
  std::vector<Scalar> Input;
  for (int I = 0; I < N; ++I) {
    Re[I] = R.nextFloat(1.0f);
    Im[I] = R.nextFloat(1.0f);
    Input.push_back(Scalar::makeFloat(Re[I]));
    Input.push_back(Scalar::makeFloat(Im[I]));
  }
  std::vector<Scalar> Out = runOnce(G, Input);
  ASSERT_EQ(Out.size(), Input.size());
  for (int K = 0; K < N; ++K) {
    double Xr = 0.0, Xi = 0.0;
    for (int J = 0; J < N; ++J) {
      double A = -2.0 * 3.14159265358979323846 * K * J / N;
      Xr += Re[J] * std::cos(A) - Im[J] * std::sin(A);
      Xi += Re[J] * std::sin(A) + Im[J] * std::cos(A);
    }
    EXPECT_NEAR(Out[2 * K].asFloat(), Xr, 1e-9) << "bin " << K;
    EXPECT_NEAR(Out[2 * K + 1].asFloat(), Xi, 1e-9) << "bin " << K;
  }
}

TEST(FilterbankSemantics, LinearInInput) {
  // The whole bank is LTI: doubling the input doubles the output.
  StreamGraph G1 = flatten(*buildFilterbank());
  StreamGraph G2 = flatten(*buildFilterbank());
  auto SS = SteadyState::compute(G1);
  ASSERT_TRUE(SS.has_value());
  int64_t Need = SS->inputTokensNeeded(2);
  Rng R(17);
  std::vector<Scalar> A, B;
  for (int64_t I = 0; I < Need; ++I) {
    double V = R.nextFloat(1.0f);
    A.push_back(Scalar::makeFloat(V));
    B.push_back(Scalar::makeFloat(2.0 * V));
  }
  std::vector<Scalar> OutA = runOnce(G1, A, 2);
  std::vector<Scalar> OutB = runOnce(G2, B, 2);
  ASSERT_EQ(OutA.size(), OutB.size());
  ASSERT_FALSE(OutA.empty());
  for (size_t I = 0; I < OutA.size(); ++I)
    EXPECT_NEAR(OutB[I].asFloat(), 2.0 * OutA[I].asFloat(), 1e-9);
}

TEST(FmRadioSemantics, ProducesBoundedOutput) {
  StreamGraph G = flatten(*buildFmRadio());
  auto SS = SteadyState::compute(G);
  ASSERT_TRUE(SS.has_value());
  const BenchmarkSpec *Spec = findBenchmark("FMRadio");
  std::vector<Scalar> Input =
      makeBenchmarkInput(*Spec, SS->inputTokensNeeded(2));
  std::vector<Scalar> Out = runOnce(G, Input, 2);
  ASSERT_FALSE(Out.empty());
  for (const Scalar &S : Out) {
    EXPECT_TRUE(std::isfinite(S.asFloat()));
    EXPECT_LT(std::fabs(S.asFloat()), 1e4);
  }
}

TEST(MatrixMultSemantics, MatchesDirectProduct) {
  StreamGraph G = flatten(*buildMatrixMult());
  constexpr int N = 4;
  Rng R(23);
  std::vector<double> A(N * N), B(N * N);
  std::vector<Scalar> Input;
  for (double &V : A) {
    V = R.nextFloat(1.0f);
    Input.push_back(Scalar::makeFloat(V));
  }
  for (double &V : B) {
    V = R.nextFloat(1.0f);
    Input.push_back(Scalar::makeFloat(V));
  }
  std::vector<Scalar> Out = runOnce(G, Input);
  ASSERT_EQ(Out.size(), static_cast<size_t>(N * N));
  for (int Row = 0; Row < N; ++Row)
    for (int Col = 0; Col < N; ++Col) {
      double Want = 0.0;
      for (int K = 0; K < N; ++K)
        Want += A[Row * N + K] * B[K * N + Col];
      EXPECT_NEAR(Out[Row * N + Col].asFloat(), Want, 1e-9)
          << "C[" << Row << "][" << Col << "]";
    }
}

TEST(TableI, FilterCountsReported) {
  // Our ports keep the graph shapes but not necessarily the exact
  // flattened node counts of StreamIt 2.1.1; assert they are in the same
  // size class (documented in DESIGN.md).
  for (const BenchmarkSpec &Spec : allBenchmarks()) {
    StreamGraph G = flatten(*Spec.Build());
    EXPECT_GE(G.numNodes(), Spec.PaperFilters / 4)
        << Spec.Name << " is far smaller than the paper's";
    EXPECT_LE(G.numNodes(), Spec.PaperFilters * 4)
        << Spec.Name << " is far larger than the paper's";
  }
}
